#include "engine/eval.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

#include "support/builders.h"

namespace wdl {
namespace {

using test::I;
using test::S;

using test::R;

class EvalTest : public ::testing::Test {
 protected:
  EvalTest() : catalog_("p"), evaluator_(&catalog_, "p", EvalOptions{}) {}

  void Insert(const std::string& rel, Tuple t) {
    Result<bool> r = catalog_.InsertFact(Fact(rel, "p", std::move(t)));
    ASSERT_TRUE(r.ok()) << r.status();
  }

  struct Collected {
    std::vector<Fact> local;
    std::vector<Fact> remote;
    std::vector<Delegation> delegations;
  };

  Collected Run(const Rule& rule, const DeltaMap* delta = nullptr,
                int delta_pos = -1) {
    Collected c;
    RuleEvaluator::Sinks sinks;
    sinks.on_local_fact = [&](const Fact& f) { c.local.push_back(f); };
    sinks.on_remote_fact = [&](const Fact& f) { c.remote.push_back(f); };
    sinks.on_delegation = [&](const Delegation& d) {
      c.delegations.push_back(d);
    };
    evaluator_.Evaluate(rule, delta, delta_pos, sinks);
    return c;
  }

  Catalog catalog_;
  RuleEvaluator evaluator_;
};

TEST_F(EvalTest, SingleAtomProducesAllTuples) {
  Insert("b", {I(1)});
  Insert("b", {I(2)});
  Collected c = Run(R("h@p($x) :- b@p($x)"));
  EXPECT_EQ(c.local.size(), 2u);
}

TEST_F(EvalTest, ConstantsFilterMatches) {
  Insert("b", {I(1), S("keep")});
  Insert("b", {I(2), S("drop")});
  Collected c = Run(R("h@p($x) :- b@p($x, \"keep\")"));
  ASSERT_EQ(c.local.size(), 1u);
  EXPECT_EQ(c.local[0].args[0], I(1));
}

TEST_F(EvalTest, JoinOnSharedVariable) {
  Insert("e", {I(1), I(2)});
  Insert("e", {I(2), I(3)});
  Insert("e", {I(5), I(6)});
  Collected c = Run(R("h@p($x, $z) :- e@p($x, $y), e@p($y, $z)"));
  ASSERT_EQ(c.local.size(), 1u);
  EXPECT_EQ(c.local[0].args, (Tuple{I(1), I(3)}));
}

TEST_F(EvalTest, RepeatedVariableInOneAtomRequiresEquality) {
  Insert("b", {I(1), I(1)});
  Insert("b", {I(1), I(2)});
  Collected c = Run(R("h@p($x) :- b@p($x, $x)"));
  ASSERT_EQ(c.local.size(), 1u);
  EXPECT_EQ(c.local[0].args[0], I(1));
}

TEST_F(EvalTest, RelationVariableResolvedFromBinding) {
  Insert("names", {S("data1")});
  Insert("names", {S("data2")});
  Insert("data1", {I(10)});
  Insert("data2", {I(20)});
  Collected c = Run(R("h@p($x) :- names@p($r), $r@p($x)"));
  EXPECT_EQ(c.local.size(), 2u);
}

TEST_F(EvalTest, NonStringRelationBindingIsDeadBranch) {
  Insert("names", {I(42)});  // an int cannot name a relation
  Insert("data", {I(1)});
  Collected c = Run(R("h@p($x) :- names@p($r), $r@p($x)"));
  EXPECT_TRUE(c.local.empty());
}

TEST_F(EvalTest, RemoteBodyAtomEmitsDelegationPerPrefixBinding) {
  Insert("sel", {S("alice")});
  Insert("sel", {S("bob")});
  Collected c = Run(R("h@p($x) :- sel@p($a), pictures@$a($x)"));
  EXPECT_TRUE(c.local.empty());
  ASSERT_EQ(c.delegations.size(), 2u);
  // Residual rules have the prefix substituted and start at the remote
  // atom with a concrete location.
  for (const Delegation& d : c.delegations) {
    EXPECT_EQ(d.origin_peer, "p");
    ASSERT_EQ(d.rule.body.size(), 1u);
    EXPECT_TRUE(d.rule.body[0].HasConcreteLocation());
    EXPECT_EQ(d.rule.body[0].peer.name(), d.target_peer);
  }
}

TEST_F(EvalTest, SelfPeerAtomIsNotADelegation) {
  Insert("sel", {S("p")});  // selecting *ourselves*
  Insert("pictures", {I(7)});
  Collected c = Run(R("h@p($x) :- sel@p($a), pictures@$a($x)"));
  EXPECT_TRUE(c.delegations.empty());
  ASSERT_EQ(c.local.size(), 1u);
}

TEST_F(EvalTest, RemoteHeadGoesToRemoteSink) {
  Insert("b", {I(1)});
  Collected c = Run(R("h@q($x) :- b@p($x)"));
  EXPECT_TRUE(c.local.empty());
  ASSERT_EQ(c.remote.size(), 1u);
  EXPECT_EQ(c.remote[0].peer, "q");
}

TEST_F(EvalTest, HeadRelationVariableResolves) {
  Insert("proto", {S("email")});
  Insert("payload", {I(9)});
  Collected c = Run(R("$r@p($x) :- proto@p($r), payload@p($x)"));
  ASSERT_EQ(c.local.size(), 1u);
  EXPECT_EQ(c.local[0].relation, "email");
}

TEST_F(EvalTest, NegatedAtomFiltersPresentTuples) {
  Insert("all", {I(1)});
  Insert("all", {I(2)});
  Insert("banned", {I(2)});
  Collected c = Run(R("h@p($x) :- all@p($x), not banned@p($x)"));
  ASSERT_EQ(c.local.size(), 1u);
  EXPECT_EQ(c.local[0].args[0], I(1));
}

TEST_F(EvalTest, NegationOverMissingRelationSucceeds) {
  Insert("all", {I(1)});
  Collected c = Run(R("h@p($x) :- all@p($x), not nonexistent@p($x)"));
  EXPECT_EQ(c.local.size(), 1u);
}

TEST_F(EvalTest, NegatedRemoteAtomDelegates) {
  Insert("all", {I(1)});
  Collected c = Run(R("h@p($x) :- all@p($x), not banned@q($x)"));
  ASSERT_EQ(c.delegations.size(), 1u);
  EXPECT_EQ(c.delegations[0].target_peer, "q");
  EXPECT_TRUE(c.delegations[0].rule.body[0].negated);
  EXPECT_TRUE(c.delegations[0].rule.body[0].IsGround());
}

TEST_F(EvalTest, DeltaRestrictionLimitsMatches) {
  Insert("b", {I(1)});
  Insert("b", {I(2)});
  Insert("b", {I(3)});
  DeltaMap delta;
  delta[Symbol::Intern("b")].Insert(Tuple{I(2)});
  Collected c = Run(R("h@p($x) :- b@p($x)"), &delta, 0);
  ASSERT_EQ(c.local.size(), 1u);
  EXPECT_EQ(c.local[0].args[0], I(2));
}

TEST_F(EvalTest, DeltaOnEmptyRelationYieldsNothing) {
  Insert("b", {I(1)});
  DeltaMap delta;  // no entry for "b"
  Collected c = Run(R("h@p($x) :- b@p($x)"), &delta, 0);
  EXPECT_TRUE(c.local.empty());
}

TEST_F(EvalTest, ArityMismatchYieldsNoMatches) {
  Insert("b", {I(1), I(2)});
  Collected c = Run(R("h@p($x) :- b@p($x)"));  // atom arity 1, stored 2
  EXPECT_TRUE(c.local.empty());
}

TEST_F(EvalTest, IndexAndScanModesAgree) {
  for (int64_t i = 0; i < 30; ++i) {
    Insert("e", {I(i % 5), I(i)});
  }
  Rule rule = R("h@p($x, $y) :- e@p(3, $x), e@p($x, $y)");
  Collected with_index = Run(rule);

  RuleEvaluator scan_eval(&catalog_, "p", EvalOptions{false});
  Collected scanned;
  RuleEvaluator::Sinks sinks;
  sinks.on_local_fact = [&](const Fact& f) { scanned.local.push_back(f); };
  scan_eval.Evaluate(rule, nullptr, -1, sinks);

  auto key = [](const Fact& f) { return f.ToString(); };
  std::set<std::string> a, b;
  for (const Fact& f : with_index.local) a.insert(key(f));
  for (const Fact& f : scanned.local) b.insert(key(f));
  EXPECT_EQ(a, b);
}

TEST_F(EvalTest, CountersTrackWork) {
  Insert("b", {I(1)});
  Insert("b", {I(2)});
  evaluator_.ResetCounters();
  Run(R("h@p($x) :- b@p($x)"));
  EXPECT_GE(evaluator_.counters().tuples_examined, 2u);
  EXPECT_EQ(evaluator_.counters().bindings_completed, 2u);
}

TEST(SubstituteAtomTest, BoundVariablesBecomeConstants) {
  Result<Atom> atom = ParseAtom("pictures@$a($x, $y)");
  ASSERT_TRUE(atom.ok());
  Binding binding;
  binding.Bind("a", S("emilien"));
  binding.Bind("x", I(5));
  Atom out;
  ASSERT_TRUE(SubstituteAtom(*atom, binding, &out));
  EXPECT_EQ(out.peer.name(), "emilien");
  EXPECT_EQ(out.args[0], Term::Constant(I(5)));
  EXPECT_TRUE(out.args[1].is_variable());  // $y unbound, stays
}

TEST(SubstituteAtomTest, NonStringSymBindingFails) {
  Result<Atom> atom = ParseAtom("pictures@$a($x)");
  ASSERT_TRUE(atom.ok());
  Binding binding;
  binding.Bind("a", I(3));
  Atom out;
  EXPECT_FALSE(SubstituteAtom(*atom, binding, &out));
}

TEST(BindingTest, MarkRewindRestoresState) {
  Binding b;
  b.Bind("x", I(1));
  size_t mark = b.Mark();
  b.Bind("y", I(2));
  EXPECT_NE(b.Get("y"), nullptr);
  b.Rewind(mark);
  EXPECT_EQ(b.Get("y"), nullptr);
  ASSERT_NE(b.Get("x"), nullptr);
  EXPECT_EQ(*b.Get("x"), I(1));
}

}  // namespace
}  // namespace wdl
