// Experiment F2 — the Figure 2 topology (DESIGN.md §3).
//
// Regenerates the paper's deployment picture as data: the three Wepic
// peers (Émilien, Jules, sigmod) plus the SigmodFB wrapper, with a LAN
// link between the laptops and a slower "cloud" link to sigmod. Runs
// the §4 demo workload and reports per-edge message counts — the
// arrows of Figure 2 — and the effect of cloud latency on rounds to
// convergence.
//
// Expected shape: traffic concentrates on the attendee->sigmod edges
// (publication) and the delegation edges between laptops; higher cloud
// latency stretches rounds-to-convergence but not message counts.

#include <benchmark/benchmark.h>

#include "wepic/wepic.h"

namespace wdl {
namespace {

void RunDemoWorkload(WepicApp* app) {
  (void)app->UploadPicture("Emilien", 1, "sea.jpg", "b1");
  (void)app->UploadPicture("Jules", 2, "dinner.jpg", "b2");
  (void)app->AuthorizeFacebook("Emilien", 1);
  (void)app->SelectAttendee("Jules", "Emilien");
  (void)app->Converge(10000);
}

void BM_Figure2Topology(benchmark::State& state) {
  // Cloud latency in rounds: 0.5 (LAN-like) scaled by the arg.
  double cloud_latency = 0.5 * static_cast<double>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    WepicApp app;
    (void)app.SetupConference();
    (void)app.AddAttendee("Emilien");
    (void)app.AddAttendee("Jules");
    app.attendee("Emilien")->gate().TrustPeer("Jules");
    app.attendee("Jules")->gate().TrustPeer("Emilien");
    // Laptops are LAN-adjacent; everything to/from the cloud peers is
    // slower.
    SimulatedNetwork& net = app.system().network();
    for (const std::string& laptop : {"Emilien", "Jules"}) {
      for (const std::string& cloud : {"sigmod", "SigmodFB"}) {
        net.SetLink(laptop, cloud, LinkConfig{.latency = cloud_latency});
        net.SetLink(cloud, laptop, LinkConfig{.latency = cloud_latency});
      }
    }
    net.ResetStats();
    int rounds_before = app.system().rounds_run();
    state.ResumeTiming();

    RunDemoWorkload(&app);

    state.PauseTiming();
    state.counters["rounds"] =
        app.system().rounds_run() - rounds_before;
    state.counters["messages"] = static_cast<double>(
        net.stats().messages_submitted);
    state.counters["bytes"] = static_cast<double>(net.stats().bytes_sent);
    // The Figure 2 arrows, aggregated: laptop<->laptop vs laptop<->cloud.
    uint64_t lan = 0, wan = 0;
    for (const auto& [edge, count] : net.edge_message_counts()) {
      bool a_laptop = edge.first == "Emilien" || edge.first == "Jules";
      bool b_laptop = edge.second == "Emilien" || edge.second == "Jules";
      if (a_laptop && b_laptop) {
        lan += count;
      } else {
        wan += count;
      }
    }
    state.counters["lan_msgs"] = static_cast<double>(lan);
    state.counters["wan_msgs"] = static_cast<double>(wan);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_Figure2Topology)->Arg(1)->Arg(3)->Arg(10)
    ->Unit(benchmark::kMillisecond);

// Demo-floor wifi jitter: the same workload with heavy delivery-time
// jitter, which reorders messages across the cloud links. The staged
// protocol is insensitive to reordering (derived sets are full-state
// replacements and updates are idempotent), so the workload converges
// to the same wall contents — at the cost of extra rounds.
void BM_JitteryNetwork(benchmark::State& state) {
  double jitter = 0.5 * static_cast<double>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    WepicApp app(WepicOptions{.network_seed = 7});
    (void)app.SetupConference();
    (void)app.AddAttendee("Emilien");
    (void)app.AddAttendee("Jules");
    app.attendee("Emilien")->gate().TrustPeer("Jules");
    app.attendee("Jules")->gate().TrustPeer("Emilien");
    SimulatedNetwork& net = app.system().network();
    for (const std::string& a : app.system().PeerNames()) {
      for (const std::string& b : app.system().PeerNames()) {
        if (a != b) {
          net.SetLink(a, b, LinkConfig{.latency = 0.5, .jitter = jitter});
        }
      }
    }
    state.ResumeTiming();
    RunDemoWorkload(&app);
    state.PauseTiming();
    state.counters["rounds"] = app.system().rounds_run();
    state.counters["wall_pictures"] = static_cast<double>(
        app.facebook().GroupPictures(kFacebookGroup).size());
    state.ResumeTiming();
  }
}
BENCHMARK(BM_JitteryNetwork)->Arg(0)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wdl

BENCHMARK_MAIN();
