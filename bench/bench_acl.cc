// Experiment A6 — access-control overhead (DESIGN.md §3).
//
// Measures the delegation gate's screening cost on the trusted
// fast-path versus the pending queue, and the AccessPolicy's view-read
// check as provenance chains deepen.
//
// Expected shape: screening is O(1)-ish either way (set lookups);
// provenance-derived view checks grow linearly with chain depth, and
// declassification turns them O(1).

#include <benchmark/benchmark.h>

#include "acl/delegation_gate.h"
#include "acl/policy.h"
#include "parser/parser.h"

namespace wdl {
namespace {

Delegation MakeDelegation(int i) {
  Delegation d;
  d.origin_peer = "origin" + std::to_string(i % 16);
  d.target_peer = "me";
  d.rule = *ParseRule("out@origin" + std::to_string(i % 16) +
                      "($x) :- data@me($x, " + std::to_string(i) + ")");
  d.origin_rule_hash = d.rule.Hash();
  return d;
}

void BM_Gate_TrustedFastPath(benchmark::State& state) {
  DelegationGate gate;
  for (int i = 0; i < 16; ++i) {
    gate.TrustPeer("origin" + std::to_string(i));
  }
  int i = 0;
  for (auto _ : state) {
    Delegation d = MakeDelegation(i++);
    benchmark::DoNotOptimize(gate.OnArrival(d));
  }
}
BENCHMARK(BM_Gate_TrustedFastPath);

void BM_Gate_PendingQueue(benchmark::State& state) {
  DelegationGate gate;
  int i = 0;
  for (auto _ : state) {
    Delegation d = MakeDelegation(i++);
    benchmark::DoNotOptimize(gate.OnArrival(d));
    // Keep the queue bounded so the bench measures screening, not an
    // ever-growing map.
    if (gate.pending_count() > 256) {
      (void)gate.Approve(gate.Pending().front()->Key());
    }
  }
}
BENCHMARK(BM_Gate_PendingQueue);

void BM_Gate_ApproveCycle(benchmark::State& state) {
  DelegationGate gate;
  int i = 0;
  for (auto _ : state) {
    Delegation d = MakeDelegation(i++);
    gate.OnArrival(d);
    Result<Delegation> approved = gate.Approve(d.Key());
    benchmark::DoNotOptimize(approved);
  }
}
BENCHMARK(BM_Gate_ApproveCycle);

void BM_Policy_ViewChainRead(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  AccessPolicy policy;
  (void)policy.RegisterRelation("base@a", "a");
  (void)policy.Grant("base@a", "a", "reader", Privilege::kRead);
  std::string prev = "base@a";
  for (int i = 0; i < depth; ++i) {
    std::string view = "v" + std::to_string(i) + "@a";
    (void)policy.RegisterRelation(view, "a");
    (void)policy.RegisterView(view, {prev});
    prev = view;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.CheckRead(prev, "reader"));
  }
}
BENCHMARK(BM_Policy_ViewChainRead)->Arg(1)->Arg(8)->Arg(64);

void BM_Policy_DeclassifiedRead(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  AccessPolicy policy;
  (void)policy.RegisterRelation("base@a", "a");
  std::string prev = "base@a";
  for (int i = 0; i < depth; ++i) {
    std::string view = "v" + std::to_string(i) + "@a";
    (void)policy.RegisterRelation(view, "a");
    (void)policy.RegisterView(view, {prev});
    prev = view;
  }
  // reader has NO base access, but the top view is declassified: the
  // check short-circuits on the explicit grant.
  (void)policy.Declassify(prev, "a", "reader");
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.CheckRead(prev, "reader"));
  }
}
BENCHMARK(BM_Policy_DeclassifiedRead)->Arg(1)->Arg(8)->Arg(64);

}  // namespace
}  // namespace wdl

BENCHMARK_MAIN();
