#include "runtime/query.h"

#include <atomic>

#include "parser/parser.h"

namespace wdl {

std::string QueryResult::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ", ";
    out += "$" + columns[i];
  }
  out += ")\n";
  for (const Tuple& row : rows) {
    out += "  " + TupleToString(row) + "\n";
  }
  if (rows.empty()) out += "  (no rows)\n";
  return out;
}

Result<QueryResult> RunQuery(System* system, const std::string& peer_name,
                             const std::string& body, int max_rounds) {
  Peer* peer = system->GetPeer(peer_name);
  if (peer == nullptr) {
    return Status::NotFound("no peer named " + peer_name);
  }

  // Unique name per query so concurrent/nested queries never collide.
  static std::atomic<uint64_t> counter{0};
  std::string relation =
      "__query_" + std::to_string(counter.fetch_add(1));

  // Parse the body by wrapping it in a placeholder rule, then rebuild
  // the head from the variables in order of first occurrence.
  WDL_ASSIGN_OR_RETURN(
      Rule skeleton,
      ParseRule(relation + "@" + peer_name + "() :- " + body));

  std::vector<std::string> columns;
  auto note_var = [&](const std::string& v) {
    for (const std::string& existing : columns) {
      if (existing == v) return;
    }
    columns.push_back(v);
  };
  for (const Atom& atom : skeleton.body) {
    if (atom.relation.is_variable()) note_var(atom.relation.var());
    if (atom.peer.is_variable()) note_var(atom.peer.var());
    for (const Term& t : atom.args) {
      if (t.is_variable()) note_var(t.var());
    }
  }

  Rule query_rule = skeleton;
  query_rule.head.args.clear();
  for (const std::string& v : columns) {
    query_rule.head.args.push_back(Term::Variable(v));
  }

  RelationDecl decl;
  decl.relation = relation;
  decl.peer = peer_name;
  decl.kind = RelationKind::kIntensional;
  decl.columns.resize(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) {
    decl.columns[i].name = columns[i];
    decl.columns[i].type = ValueKind::kAny;
  }
  WDL_RETURN_IF_ERROR(peer->engine().DeclareRelation(decl));
  WDL_ASSIGN_OR_RETURN(uint64_t rule_id,
                       peer->engine().AddRule(query_rule));

  int rounds_before = system->rounds_run();
  Result<int> converged = system->RunUntilQuiescent(max_rounds);

  QueryResult result;
  result.columns = columns;
  const Relation* rel = peer->engine().catalog().Get(relation);
  if (rel != nullptr) result.rows = rel->SortedTuples();
  result.rounds =
      (converged.ok() ? *converged : system->rounds_run()) - rounds_before;

  // Tear down: remove the rule and converge again so any delegated
  // residuals are retracted at remote peers.
  Status removed = peer->engine().RemoveRule(rule_id);
  (void)system->RunUntilQuiescent(max_rounds);
  WDL_RETURN_IF_ERROR(removed);
  if (!converged.ok()) return converged.status();
  return result;
}

}  // namespace wdl
