// Generative property tests: random WebdamLog programs, safe by
// construction, pushed through the parser, the wire codec, both
// fixpoint modes, and the distributed runtime. Each TEST_P instance is
// a distinct seed, so failures reproduce exactly.

#include <gtest/gtest.h>

#include "base/rng.h"
#include "engine/engine.h"
#include "net/wire.h"
#include "parser/parser.h"
#include "runtime/system.h"
#include "support/rng_check.h"

namespace wdl {
namespace {

// Guard: the seeds below only reproduce failures if the generator
// itself hasn't drifted. Fail loudly before any property test runs.
TEST(PropertyTestRngGuard, GeneratorMatchesGoldenSequence) {
  EXPECT_TRUE(test::CheckRngGoldenSequence());
}

// Generates random ground facts and safe rules over a small vocabulary
// of relations r0..r4 (arity 2) at the given peers.
class ProgramGenerator {
 public:
  explicit ProgramGenerator(uint64_t seed, std::vector<std::string> peers)
      : rng_(seed), peers_(std::move(peers)) {}

  Value RandomValue() {
    switch (rng_.NextBelow(4)) {
      case 0: return Value::Int(rng_.NextInRange(-5, 5));
      case 1: return Value::Double(static_cast<double>(
                   rng_.NextInRange(-3, 3)) + 0.5);
      case 2: return Value::String("s" + std::to_string(rng_.NextBelow(4)));
      default: return Value::MakeBlob(std::string(
                   1 + rng_.NextBelow(3), static_cast<char>(
                       'a' + rng_.NextBelow(26))));
    }
  }

  std::string RandomRelation() {
    return "r" + std::to_string(rng_.NextBelow(5));
  }
  const std::string& RandomPeer() {
    return peers_[rng_.NextBelow(peers_.size())];
  }

  Fact RandomFact(const std::string& peer) {
    return Fact(RandomRelation(), peer, {RandomValue(), RandomValue()});
  }

  // A safe rule at `peer`: first atom local with two fresh variables,
  // each later atom reuses a bound variable in its first position (so
  // joins are connected) and may sit at a random peer. The head reuses
  // bound variables only.
  Rule RandomRule(const std::string& peer) {
    Rule rule;
    int body_len = 1 + static_cast<int>(rng_.NextBelow(3));
    std::vector<std::string> bound;
    for (int i = 0; i < body_len; ++i) {
      Atom atom;
      atom.relation = SymTerm::Name(RandomRelation());
      atom.peer = SymTerm::Name(i == 0 ? peer : RandomPeer());
      std::string fresh = "v" + std::to_string(var_counter_++);
      if (i == 0) {
        std::string fresh2 = "v" + std::to_string(var_counter_++);
        atom.args = {Term::Variable(fresh), Term::Variable(fresh2)};
        bound.push_back(fresh);
        bound.push_back(fresh2);
      } else {
        const std::string& join_var = bound[rng_.NextBelow(bound.size())];
        atom.args = {Term::Variable(join_var), Term::Variable(fresh)};
        bound.push_back(fresh);
      }
      rule.body.push_back(std::move(atom));
    }
    rule.head.relation = SymTerm::Name("out" +
                                       std::to_string(rng_.NextBelow(3)));
    rule.head.peer = SymTerm::Name(RandomPeer());
    rule.head.args = {
        Term::Variable(bound[rng_.NextBelow(bound.size())]),
        Term::Variable(bound[rng_.NextBelow(bound.size())])};
    return rule;
  }

  Program RandomProgram(const std::string& peer, int facts, int rules) {
    Program program;
    for (int i = 0; i < facts; ++i) {
      program.facts.push_back(RandomFact(peer));
    }
    for (int i = 0; i < rules; ++i) {
      Rule rule = RandomRule(peer);
      // Only keep rules whose heads do not write into relations the
      // generator also seeds as base facts (keeps ext/int kinds clean).
      program.rules.push_back(std::move(rule));
    }
    return program;
  }

 private:
  Rng rng_;
  std::vector<std::string> peers_;
  int var_counter_ = 0;
};

class SeededTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeededTest, ProgramPrintParseRoundTrip) {
  ProgramGenerator gen(GetParam(), {"alice", "bob", "carol"});
  Program program = gen.RandomProgram("alice", 10, 5);
  std::string printed = program.ToString();
  Result<Program> back = ParseProgram(printed);
  ASSERT_TRUE(back.ok()) << back.status() << "\n" << printed;
  EXPECT_EQ(back->facts, program.facts) << printed;
  EXPECT_EQ(back->rules, program.rules) << printed;
}

TEST_P(SeededTest, RulesAndFactsSurviveWireRoundTrip) {
  ProgramGenerator gen(GetParam() ^ 0xabc, {"alice", "bob"});
  for (int i = 0; i < 20; ++i) {
    Rule rule = gen.RandomRule("alice");
    WireEncoder enc;
    enc.PutRule(rule);
    WireDecoder dec(enc.buffer());
    Result<Rule> back = dec.GetRule();
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(*back, rule);
    EXPECT_EQ(back->Hash(), rule.Hash());
  }
  for (int i = 0; i < 20; ++i) {
    Fact fact = gen.RandomFact("bob");
    WireEncoder enc;
    enc.PutFact(fact);
    WireDecoder dec(enc.buffer());
    Result<Fact> back = dec.GetFact();
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(*back, fact);
  }
}

TEST_P(SeededTest, GeneratedRulesAreSafe) {
  ProgramGenerator gen(GetParam() ^ 0x5afe, {"alice", "bob"});
  for (int i = 0; i < 30; ++i) {
    Rule rule = gen.RandomRule("alice");
    EXPECT_TRUE(CheckRuleSafety(rule).ok()) << rule.ToString();
  }
}

TEST_P(SeededTest, DistributedRandomSystemConvergesDeterministically) {
  auto run = [&](uint64_t net_seed) {
    System system(SystemOptions{net_seed, LinkConfig{}});
    std::vector<std::string> names = {"alice", "bob", "carol"};
    ProgramGenerator gen(GetParam() ^ 0xd157, names);
    for (const std::string& name : names) {
      Peer* peer = system.CreatePeer(name);
      for (const std::string& other : names) peer->gate().TrustPeer(other);
    }
    for (const std::string& name : names) {
      Program program = gen.RandomProgram(name, 6, 3);
      Status st = system.GetPeer(name)->LoadProgram(program);
      EXPECT_TRUE(st.ok()) << st << "\n" << program.ToString();
    }
    EXPECT_TRUE(system.RunUntilQuiescent(2000).ok());
    std::string fingerprint;
    for (const std::string& name : names) {
      const Peer* peer = system.GetPeer(name);
      for (const std::string& rel :
           peer->engine().catalog().RelationNames()) {
        fingerprint += peer->RenderRelation(rel);
      }
    }
    return fingerprint;
  };
  // Same generated workload, two network seeds: the converged state
  // must agree (confluence), and a third run replays the first exactly.
  std::string a = run(1);
  std::string b = run(2);
  std::string c = run(1);
  EXPECT_EQ(a, c);
  EXPECT_EQ(a, b);
}

TEST_P(SeededTest, NaiveAndSemiNaiveAgreeOnRandomLocalPrograms) {
  auto run = [&](EvalMode mode) {
    EngineOptions options;
    options.mode = mode;
    Engine engine("alice", options);
    ProgramGenerator gen(GetParam() ^ 0xeea1, {"alice"});
    Program program = gen.RandomProgram("alice", 12, 6);
    EXPECT_TRUE(engine.LoadProgram(program).ok());
    for (int i = 0; i < 30 && engine.HasPendingWork(); ++i) {
      engine.RunStage();
    }
    std::string fingerprint;
    for (const std::string& rel : engine.catalog().RelationNames()) {
      fingerprint += rel + ":";
      for (const Tuple& t : engine.catalog().Get(rel)->SortedTuples()) {
        fingerprint += TupleToString(t);
      }
      fingerprint += "\n";
    }
    return fingerprint;
  };
  EXPECT_EQ(run(EvalMode::kSemiNaive), run(EvalMode::kNaive));
}

// Seeds come from the shared fixed-seed schedule: independent of
// GTEST_SHARD_INDEX and of which other suites run, so a parameter id
// names the same workload in any ctest sharding.
INSTANTIATE_TEST_SUITE_P(Seeds, SeededTest,
                         ::testing::ValuesIn(test::FixedTestSeeds(10)));

}  // namespace
}  // namespace wdl
