#include "net/network.h"

#include "base/logging.h"
#include "net/wire.h"

namespace wdl {

SimulatedNetwork::SimulatedNetwork(uint64_t seed, LinkConfig default_link)
    : rng_(seed), default_link_(default_link) {}

void SimulatedNetwork::SetLink(const std::string& from, const std::string& to,
                               LinkConfig config) {
  links_[{from, to}] = config;
}

void SimulatedNetwork::SetPartitioned(const std::string& a,
                                      const std::string& b,
                                      bool partitioned) {
  if (partitioned) {
    partitions_.insert({a, b});
    partitions_.insert({b, a});
  } else {
    partitions_.erase({a, b});
    partitions_.erase({b, a});
  }
}

const LinkConfig& SimulatedNetwork::LinkFor(const std::string& from,
                                            const std::string& to) const {
  auto it = links_.find({from, to});
  return it == links_.end() ? default_link_ : it->second;
}

void SimulatedNetwork::SetIsolated(const std::string& peer, bool isolated) {
  if (isolated) {
    isolated_.insert(peer);
  } else {
    isolated_.erase(peer);
  }
}

Status SimulatedNetwork::Submit(Envelope envelope, double now) {
  ++stats_.messages_submitted;
  if (partitions_.count({envelope.from, envelope.to}) ||
      (!isolated_.empty() && (isolated_.count(envelope.from) ||
                              isolated_.count(envelope.to)))) {
    ++stats_.messages_partitioned;
    return Status::OK();  // silently lost, like a real partition
  }
  const LinkConfig& link = LinkFor(envelope.from, envelope.to);
  if (link.drop_probability > 0.0 && rng_.NextBool(link.drop_probability)) {
    ++stats_.messages_dropped;
    return Status::OK();
  }
  std::string bytes = EncodeEnvelope(envelope);
  if (track_edge_counts_) ++edge_messages_[{envelope.from, envelope.to}];

  int copies = 1;
  if (link.duplicate_probability > 0.0 &&
      rng_.NextBool(link.duplicate_probability)) {
    ++copies;
    ++stats_.messages_duplicated;
  }
  const size_t frame_size = bytes.size();
  stats_.bytes_sent += frame_size;
  for (int i = 0; i < copies; ++i) {
    // Injected copies occupy the wire but are link fault injection, not
    // sender traffic; account them separately so byte accounting stays
    // comparable across duplicate-probability settings.
    if (i > 0) stats_.bytes_duplicated += frame_size;
    double latency = link.latency;
    if (link.jitter > 0.0) latency += rng_.NextDouble() * link.jitter;

    InFlight f;
    f.deliver_at = now + latency;
    f.seq = next_seq_++;
    f.bytes = (i + 1 == copies) ? std::move(bytes) : bytes;
    in_flight_.push(std::move(f));
  }
  return Status::OK();
}

std::vector<Envelope> SimulatedNetwork::DeliverDue(double now) {
  std::vector<Envelope> due;
  while (!in_flight_.empty() && in_flight_.top().deliver_at <= now) {
    const InFlight& f = in_flight_.top();
    Result<Envelope> decoded = DecodeEnvelope(f.bytes);
    if (decoded.ok()) {
      due.push_back(std::move(decoded).value());
      ++stats_.messages_delivered;
    } else {
      // Can only happen on a codec bug; make it loud.
      WDL_LOG(Error) << "wire decode failed: " << decoded.status();
    }
    in_flight_.pop();
  }
  return due;
}

}  // namespace wdl
