#include "base/thread_pool.h"

namespace wdl {

ThreadPool::ThreadPool(int threads) {
  int spawn = threads - 1;
  if (spawn < 0) spawn = 0;
  workers_.reserve(static_cast<size_t>(spawn));
  for (int i = 0; i < spawn; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (workers_.empty() || n == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_n_ = n;
    next_.store(0, std::memory_order_relaxed);
    outstanding_ = static_cast<int>(workers_.size());
    ++epoch_;
  }
  work_cv_.notify_all();
  // The caller is a worker too: steal indices until the dispenser runs
  // dry, then wait for the spawned workers to drain theirs.
  for (int i; (i = next_.fetch_add(1, std::memory_order_relaxed)) < n;) {
    fn(i);
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return outstanding_ == 0; });
  job_ = nullptr;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job;
    int n;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      job = job_;
      n = job_n_;
    }
    // Every worker joins every epoch exactly once (outstanding_ counts
    // them all), even if it wakes after the dispenser is empty — the
    // barrier in ParallelFor waits for this decrement, which is what
    // makes it safe to reuse job_/next_ for the next epoch.
    for (int i; (i = next_.fetch_add(1, std::memory_order_relaxed)) < n;) {
      (*job)(i);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--outstanding_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace wdl
