#ifndef WDL_ENGINE_BINDING_H_
#define WDL_ENGINE_BINDING_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ast/value.h"

namespace wdl {

/// A variable environment built during left-to-right body matching.
/// Implemented as a trail (vector of name/value pairs) so backtracking
/// is "remember the size, truncate back to it" — no per-branch copies.
/// Rule bodies bind a handful of variables, so linear lookup wins over
/// any map.
class Binding {
 public:
  Binding() = default;

  /// Value bound to `var`, or nullptr when unbound.
  const Value* Get(std::string_view var) const {
    // Scan backwards: inner bindings shadow (never happens in valid
    // rules, but keeps semantics obvious).
    for (auto it = trail_.rbegin(); it != trail_.rend(); ++it) {
      if (it->first == var) return &it->second;
    }
    return nullptr;
  }

  /// Binds `var` to `value`. The caller must have checked the variable
  /// is unbound (match loops compare against Get() first).
  void Bind(std::string var, Value value) {
    trail_.emplace_back(std::move(var), std::move(value));
  }

  /// Checkpoint for backtracking.
  size_t Mark() const { return trail_.size(); }

  /// Undoes all bindings made after `mark`.
  void Rewind(size_t mark) { trail_.resize(mark); }

  size_t size() const { return trail_.size(); }
  bool empty() const { return trail_.empty(); }

  /// All live (name, value) pairs, oldest first.
  const std::vector<std::pair<std::string, Value>>& entries() const {
    return trail_;
  }

 private:
  std::vector<std::pair<std::string, Value>> trail_;
};

}  // namespace wdl

#endif  // WDL_ENGINE_BINDING_H_
