#ifndef WDL_ANALYSIS_ANALYSIS_H_
#define WDL_ANALYSIS_ANALYSIS_H_

#include <string>
#include <vector>

#include "ast/program.h"
#include "base/result.h"

namespace wdl {

/// Language dialect selector.
///  - kPaper2013 reproduces the system exactly as demonstrated: negation
///    is parsed but *rejected at validation time* ("Although negation is
///    supported by the language, it is not yet implemented in the
///    WebdamLog system", §2).
///  - kExtended enables stratified negation, the documented extension.
enum class Dialect : uint8_t {
  kPaper2013 = 0,
  kExtended = 1,
};

/// Checks the WebdamLog well-formedness conditions on a single rule:
///
///  1. Left-to-right bindability: walking the body in order, every
///     relation/peer variable must be bound by a *previous* positive
///     atom by the time its atom is reached (the first atom therefore
///     needs a concrete relation and peer). This is the paper's "rule
///     bodies are evaluated from left to right; the order matters".
///  2. Negation safety: every variable of a negated atom (including its
///     relation/peer position) must be bound by previous positive atoms.
///  3. Head safety (range restriction): every head variable must be
///     bound by the positive body; a body-less rule must be ground.
Status CheckRuleSafety(const Rule& rule);

/// Result of stratifying a rule set for negation.
struct Stratification {
  /// stratum[i] is the stratum of rules[i]; strata are dense from 0.
  std::vector<int> rule_stratum;
  int num_strata = 1;
};

/// Stratifies `rules` by predicate dependency. Atoms whose relation or
/// peer is a variable are modeled with the wildcard predicate "*"
/// (including negated ones — their location resolves at evaluation
/// time). Returns FailedPrecondition when negation occurs inside a
/// dependency cycle.
Result<Stratification> Stratify(const std::vector<Rule>& rules);

/// Validates a whole parsed program under `dialect`:
///  - every rule passes CheckRuleSafety;
///  - under kPaper2013, any negated atom is rejected (Unimplemented);
///  - under kExtended, the rule set must stratify;
///  - declarations are not duplicated and facts respect the arity and
///    column types of matching declarations.
Status ValidateProgram(const Program& program, Dialect dialect);

/// True when `value` is acceptable in a column of type `type`
/// (kAny accepts everything; otherwise tags must match).
bool ValueMatchesType(const Value& value, ValueKind type);

}  // namespace wdl

#endif  // WDL_ANALYSIS_ANALYSIS_H_
