// Experiment S1 — end-to-end picture propagation (DESIGN.md §3).
//
// The §4 claim under test: "a photo uploaded by Émilien into his local
// relation pictures@Émilien is instantly published to pictures@sigmod,
// and then propagated to pictures@SigmodFB". We measure that pipeline —
// upload at an attendee, conference hub, Facebook wall — in wall time
// and in system rounds, as the batch size grows, plus the rating and
// customization pipeline (S2).
//
// Expected shape: rounds to full propagation are constant (pipeline
// depth), wall time grows linearly with batch size.

#include <benchmark/benchmark.h>

#include "parser/parser.h"
#include "runtime/system.h"
#include "wepic/wepic.h"

namespace wdl {
namespace {

Value I(int64_t v) { return Value::Int(v); }

void BM_UploadToFacebookWall(benchmark::State& state) {
  int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    WepicApp app;
    (void)app.SetupConference();
    (void)app.AddAttendee("Emilien");
    (void)app.AddAttendee("Jules");
    (void)app.Converge();
    int rounds_before = app.system().rounds_run();
    state.ResumeTiming();

    for (int i = 0; i < batch; ++i) {
      (void)app.UploadPicture("Emilien", i, "p" + std::to_string(i),
                              std::string(256, 'x'));
      (void)app.AuthorizeFacebook("Emilien", i);
    }
    Result<int> rounds = app.Converge(10000);
    benchmark::DoNotOptimize(rounds);

    state.PauseTiming();
    state.counters["rounds"] =
        rounds.ok() ? (*rounds - rounds_before) : -1;
    state.counters["on_wall"] = static_cast<double>(
        app.facebook().GroupPictures(kFacebookGroup).size());
    state.counters["bytes"] = static_cast<double>(
        app.system().network().stats().bytes_sent);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_UploadToFacebookWall)->Arg(1)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// S2: re-convergence cost of swapping the selection rule for the
// rating filter with a populated system.
void BM_RuleCustomizationReconvergence(benchmark::State& state) {
  int pictures = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    WepicApp app;
    (void)app.SetupConference();
    (void)app.AddAttendee("Emilien");
    (void)app.AddAttendee("Jules");
    app.attendee("Emilien")->gate().TrustPeer("Jules");
    for (int i = 0; i < pictures; ++i) {
      (void)app.UploadPicture("Emilien", i, "p" + std::to_string(i), "d");
      (void)app.RatePicture("Emilien", i, i % 2 == 0 ? 5 : 3);
    }
    (void)app.SelectAttendee("Jules", "Emilien");
    (void)app.Converge(10000);
    state.ResumeTiming();

    (void)app.InstallRatingFilter("Jules", 5);
    Result<int> rounds = app.Converge(10000);
    benchmark::DoNotOptimize(rounds);

    state.PauseTiming();
    state.counters["frame_size"] = static_cast<double>(
        app.attendee("Jules")
            ->engine()
            .catalog()
            .Get("attendeePictures")
            ->size());
    state.ResumeTiming();
  }
}
BENCHMARK(BM_RuleCustomizationReconvergence)->Arg(10)->Arg(100)
    ->Unit(benchmark::kMillisecond);

// P1 — the PR3 claim under test: once a large view has converged, a
// one-tuple change must cost wire bytes and compute proportional to the
// *change*, not the view. Arg0 selects the protocol (0 = full-slice
// oracle, 1 = differential), Arg1 the converged view size; the loop
// body is one insert + reconvergence against a warm two-peer pipeline.
// Expected shape: full-slice grows linearly in view size, differential
// stays flat (the >=2x acceptance gap opens from ~1k tuples up).
void BM_IncrementalChange(benchmark::State& state) {
  const bool differential = state.range(0) != 0;
  const int view_size = static_cast<int>(state.range(1));

  PeerOptions mode;
  mode.engine.use_differential_propagation = differential;
  System system;
  Peer* a = system.CreatePeer("a", mode);
  Peer* hub = system.CreatePeer("hub", mode);
  (void)hub->LoadProgramText("collection int board@hub(x: int);");
  (void)a->LoadProgramText(
      "collection ext data@a(x: int);"
      "rule board@hub($x) :- data@a($x);");
  for (int i = 0; i < view_size; ++i) {
    (void)a->Insert(Fact("data", "a", {I(i)}));
  }
  (void)system.RunUntilQuiescent(10000);

  // Warm-up traffic (seeding the view) is excluded from every counter:
  // the benchmark's claim is about the steady-state per-change cost.
  uint64_t bytes_before = system.network().stats().bytes_sent;
  const PropagationCounters sender_before =
      a->engine().propagation_counters();
  // Gaps are detected at the *receiver* of the delta stream.
  const uint64_t resyncs_before =
      hub->engine().propagation_counters().resyncs_requested;
  int64_t next = view_size;
  for (auto _ : state) {
    (void)a->Insert(Fact("data", "a", {I(next++)}));
    benchmark::DoNotOptimize(system.RunUntilQuiescent(10000));
  }

  const PropagationCounters& pc = a->engine().propagation_counters();
  double iters = static_cast<double>(state.iterations());
  state.counters["wire_bytes_per_change"] =
      static_cast<double>(system.network().stats().bytes_sent -
                          bytes_before) / iters;
  state.counters["delta_tuples_per_change"] =
      static_cast<double>(pc.delta_inserts_shipped +
                          pc.delta_deletes_shipped -
                          sender_before.delta_inserts_shipped -
                          sender_before.delta_deletes_shipped) / iters;
  state.counters["full_tuples_per_change"] =
      static_cast<double>(pc.full_tuples_shipped -
                          sender_before.full_tuples_shipped) / iters;
  state.counters["resyncs"] = static_cast<double>(
      hub->engine().propagation_counters().resyncs_requested -
      resyncs_before);
}
BENCHMARK(BM_IncrementalChange)
    ->ArgsProduct({{0, 1}, {100, 1000, 10000}})
    ->Unit(benchmark::kMicrosecond);

// P2 — same comparison for churn with deletions: each iteration swaps
// one tuple (insert one, delete another), the canonical "one user
// changed one thing" round of the north-star workload.
void BM_IncrementalSwap(benchmark::State& state) {
  const bool differential = state.range(0) != 0;
  const int view_size = static_cast<int>(state.range(1));

  PeerOptions mode;
  mode.engine.use_differential_propagation = differential;
  System system;
  Peer* a = system.CreatePeer("a", mode);
  Peer* hub = system.CreatePeer("hub", mode);
  (void)hub->LoadProgramText("collection int board@hub(x: int);");
  (void)a->LoadProgramText(
      "collection ext data@a(x: int);"
      "rule board@hub($x) :- data@a($x);");
  for (int i = 0; i < view_size; ++i) {
    (void)a->Insert(Fact("data", "a", {I(i)}));
  }
  (void)system.RunUntilQuiescent(10000);

  int64_t next = view_size;
  int64_t oldest = 0;
  for (auto _ : state) {
    (void)a->Insert(Fact("data", "a", {I(next++)}));
    (void)a->Remove(Fact("data", "a", {I(oldest++)}));
    benchmark::DoNotOptimize(system.RunUntilQuiescent(10000));
  }
  state.counters["view_size"] = static_cast<double>(
      hub->engine().catalog().Get("board")->size());
}
BENCHMARK(BM_IncrementalSwap)
    ->ArgsProduct({{0, 1}, {1000, 10000}})
    ->Unit(benchmark::kMicrosecond);

// P3 — the PR4 claim under test: with incremental maintenance, the
// *compute* cost of a stage tracks the change size, not the view size
// (PR3 already made the wire cost O(change)). A converged recursive
// view (transitive closure over a chain; 10k or 100k tuples) absorbs a
// one-tuple change per stage: each iteration appends one edge at the
// chain's end (Δ-driven forward derivation) and removes it again
// (support-counted DRed retraction), so state is steady across
// iterations. Arg0 selects the mode (0 = clear-and-recompute oracle,
// 1 = incremental), Arg1 the chain length (142 -> ~10k-tuple view,
// 448 -> ~100k). Expected shape: recompute grows with the view,
// incremental stays flat; the `examined_per_change` /
// `retracted_per_change` counters prove the work is O(change).
void BM_IncrementalStage(benchmark::State& state) {
  const bool incremental = state.range(0) != 0;
  const int chain = static_cast<int>(state.range(1));

  EngineOptions opts;
  opts.use_incremental_maintenance = incremental;
  Engine engine("a", opts);
  Result<Program> program = ParseProgram(R"(
    collection ext edge@a(x: int, y: int);
    collection int tc@a(x: int, y: int);
    rule tc@a($x, $y) :- edge@a($x, $y);
    rule tc@a($x, $z) :- edge@a($x, $y), tc@a($y, $z);
  )");
  if (!program.ok() || !engine.LoadProgram(*program).ok()) {
    state.SkipWithError("program load failed");
    return;
  }
  for (int i = 0; i + 1 < chain; ++i) {
    (void)engine.InsertFact(Fact("edge", "a", {I(i), I(i + 1)}));
  }
  while (engine.HasPendingWork()) (void)engine.RunStage();

  const EvalCounters& ec = engine.eval_counters();
  const uint64_t examined_before = ec.tuples_examined;
  const uint64_t retracted_before = ec.tuples_retracted;
  const uint64_t rederive_before = ec.rederive_checks;
  const Fact extra("edge", "a", {I(chain - 1), I(chain)});
  for (auto _ : state) {
    (void)engine.InsertFact(extra);
    while (engine.HasPendingWork()) (void)engine.RunStage();
    (void)engine.RemoveFact(extra);
    while (engine.HasPendingWork()) (void)engine.RunStage();
  }

  const double changes = 2.0 * static_cast<double>(state.iterations());
  state.counters["view_size"] = static_cast<double>(
      engine.catalog().Get("tc")->size());
  state.counters["examined_per_change"] =
      static_cast<double>(ec.tuples_examined - examined_before) / changes;
  state.counters["retracted_per_change"] =
      static_cast<double>(ec.tuples_retracted - retracted_before) / changes;
  state.counters["rederive_checks_per_change"] =
      static_cast<double>(ec.rederive_checks - rederive_before) / changes;
  state.counters["stages_incremental"] =
      static_cast<double>(ec.stages_incremental);
  state.counters["stages_full"] = static_cast<double>(ec.stages_full);
}
BENCHMARK(BM_IncrementalStage)
    ->ArgsProduct({{0, 1}, {142, 448}})
    ->Unit(benchmark::kMicrosecond);

// Incremental propagation: with the pipeline warm, one more upload.
void BM_SingleIncrementalUpload(benchmark::State& state) {
  WepicApp app;
  (void)app.SetupConference();
  (void)app.AddAttendee("Emilien");
  (void)app.Converge();
  int64_t next_id = 0;
  for (auto _ : state) {
    (void)app.UploadPicture("Emilien", next_id, "inc.jpg", "d");
    (void)app.AuthorizeFacebook("Emilien", next_id);
    ++next_id;
    benchmark::DoNotOptimize(app.Converge(10000));
  }
  state.counters["wall_size"] = static_cast<double>(
      app.facebook().GroupPictures(kFacebookGroup).size());
}
BENCHMARK(BM_SingleIncrementalUpload)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace wdl

BENCHMARK_MAIN();
