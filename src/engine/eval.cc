#include "engine/eval.h"

#include "base/logging.h"
#include "engine/plan_cache.h"

namespace wdl {

const std::string* ResolveSym(const SymTerm& sym, const Binding& binding,
                              std::string* storage) {
  if (sym.is_name()) return &sym.name();
  const Value* v = binding.Get(sym.var());
  if (v == nullptr || !v->is_string()) return nullptr;
  *storage = v->AsString();
  return storage;
}

bool SubstituteAtom(const Atom& atom, const Binding& binding, Atom* out) {
  auto sub_sym = [&](const SymTerm& sym, SymTerm* dst) {
    if (sym.is_name()) {
      *dst = sym;
      return true;
    }
    const Value* v = binding.Get(sym.var());
    if (v == nullptr) {
      *dst = sym;
      return true;
    }
    if (!v->is_string()) return false;
    *dst = SymTerm::Name(v->AsString());
    return true;
  };

  Atom result;
  result.negated = atom.negated;
  if (!sub_sym(atom.relation, &result.relation)) return false;
  if (!sub_sym(atom.peer, &result.peer)) return false;
  result.args.reserve(atom.args.size());
  for (const Term& t : atom.args) {
    if (t.is_constant()) {
      result.args.push_back(t);
      continue;
    }
    const Value* v = binding.Get(t.var());
    result.args.push_back(v != nullptr ? Term::Constant(*v) : t);
  }
  *out = std::move(result);
  return true;
}

void RuleEvaluator::Evaluate(const Rule& rule, const DeltaMap* delta,
                             int delta_pos, const Sinks& sinks) {
  if (!options_.use_compiled_plans) {
    Binding binding;
    MatchFrom(rule, 0, &binding, delta, delta_pos, sinks);
    return;
  }
  EvaluatePlan(PlanFor(rule), delta, delta_pos, sinks);
}

void RuleEvaluator::EvaluatePlan(const RulePlan& plan, const DeltaMap* delta,
                                 int delta_pos, const Sinks& sinks) {
  slots_.assign(plan.num_slots, nullptr);
  // A Δ-restricted evaluation prefers the Δ-first variant: the
  // iteration's work becomes proportional to |Δ| (later atoms probe
  // indexes through the Δ tuple's bindings) instead of a scan of the
  // leading atom. Valid only when the body's one constant peer is this
  // evaluator — otherwise atom 0 delegates and order is semantics.
  if (delta != nullptr && delta_pos >= 0 &&
      static_cast<size_t>(delta_pos) < plan.delta_variants.size()) {
    const DeltaVariant& v = plan.delta_variants[delta_pos];
    if (v.valid && plan.common_body_peer == self_sym_) {
      ExecFrom(plan, v.atoms, v.order.data(), 0, delta, 0, sinks);
      return;
    }
  }
  ExecFrom(plan, plan.atoms, nullptr, 0, delta, delta_pos, sinks);
}

const RulePlan& RuleEvaluator::PlanFor(const Rule& rule) {
  std::vector<LocalPlanEntry>& bucket = plans_[rule.Hash()];
  for (const LocalPlanEntry& entry : bucket) {
    if (entry.rule == rule) {
      ++counters_.plan_cache_hits;
      return *entry.plan;
    }
  }
  // First acquisition by this evaluator; the shared cache compiles only
  // if no α-equivalent plan is live anywhere in the process.
  // plans_compiled keeps its per-evaluator meaning (distinct rules this
  // evaluator resolved to plans) — the process-wide compile count is
  // SharedPlanCache::stats().
  bucket.push_back(LocalPlanEntry{rule, SharedPlanCache::Instance().Acquire(rule)});
  ++counters_.plans_compiled;
  return *bucket.back().plan;
}

bool RuleEvaluator::ExistsDerivation(const Rule& rule, const Fact& target) {
  // Note: callers decide what a match *means* — for derivation rules it
  // sustains the tuple (re-derivation), for deletion rules it re-arms a
  // deletion verdict. Both need the raw body-match answer.
  if (options_.use_compiled_plans) {
    return ExistsViaPlan(HeadBoundPlanFor(rule), target);
  }
  Binding binding;
  if (!UnifyHeadWithFact(rule, target, &binding)) return false;
  ++counters_.rederive_checks;
  exists_mode_ = true;
  exists_found_ = false;
  static const Sinks kNoSinks;
  MatchFrom(rule, 0, &binding, nullptr, -1, kNoSinks);
  exists_mode_ = false;
  return exists_found_;
}

const RulePlan& RuleEvaluator::HeadBoundPlanFor(const Rule& rule) {
  std::vector<LocalPlanEntry>& bucket = head_bound_plans_[rule.Hash()];
  for (const LocalPlanEntry& entry : bucket) {
    if (entry.rule == rule) {
      ++counters_.plan_cache_hits;
      return *entry.plan;
    }
  }
  bucket.push_back(LocalPlanEntry{
      rule, SharedPlanCache::Instance().AcquireHeadBound(rule)});
  ++counters_.plans_compiled;
  return *bucket.back().plan;
}

bool RuleEvaluator::ExistsViaPlan(const RulePlan& plan, const Fact& target) {
  if (plan.head.terms.size() != target.args.size()) return false;
  slots_.assign(plan.num_slots, nullptr);
  seed_values_.clear();
  seed_values_.reserve(target.args.size() + 2);

  // The compiled analogue of UnifyHeadWithFact: constants compare,
  // first occurrences seed their slot, repeats compare against the
  // seed.
  auto seed_slot = [&](uint16_t slot, const Value& v) {
    if (slots_[slot] != nullptr) return *slots_[slot] == v;
    seed_values_.push_back(v);
    slots_[slot] = &seed_values_.back();
    return true;
  };
  auto seed_sym = [&](const PlanSym& ps, const std::string& name) {
    if (ps.is_const) return ps.text == name;
    const Value* v = slots_[ps.slot];
    if (v != nullptr) return v->is_string() && v->AsString() == name;
    seed_values_.push_back(Value::String(name));
    slots_[ps.slot] = &seed_values_.back();
    return true;
  };
  if (!seed_sym(plan.head.relation, target.relation)) return false;
  if (!seed_sym(plan.head.peer, target.peer)) return false;
  for (size_t i = 0; i < target.args.size(); ++i) {
    const PlanTerm& pt = plan.head.terms[i];
    if (pt.op == PlanTerm::Op::kConst) {
      if (!(pt.value == target.args[i])) return false;
    } else {
      if (!seed_slot(pt.slot, target.args[i])) return false;
    }
  }

  ++counters_.rederive_checks;
  exists_mode_ = true;
  exists_found_ = false;
  static const Sinks kNoSinks;
  ExecFrom(plan, plan.atoms, nullptr, 0, nullptr, -1, kNoSinks);
  exists_mode_ = false;
  return exists_found_;
}

void RuleEvaluator::EvictPlan(const Rule& rule) {
  // Drops this evaluator's strong references (natural and head-bound
  // flavor alike); a shared entry expires when the last evaluator
  // holding the plan evicts it.
  auto evict_from =
      [&](std::unordered_map<uint64_t, std::vector<LocalPlanEntry>>* plans) {
        auto it = plans->find(rule.Hash());
        if (it == plans->end()) return;
        std::vector<LocalPlanEntry>& bucket = it->second;
        for (auto p = bucket.begin(); p != bucket.end(); ++p) {
          if (p->rule == rule) {
            bucket.erase(p);
            break;
          }
        }
        if (bucket.empty()) plans->erase(it);
      };
  evict_from(&plans_);
  evict_from(&head_bound_plans_);
}

// Unifies one stored tuple against the atom's compiled op sequence.
// Bind ops store pointers into resident tuple storage — no Value copy,
// no allocation. On failure, slots bound so far stay set; the caller
// unconditionally nulls `atom.bound_slots` after the attempt.
bool RuleEvaluator::UnifyTuple(const PlanAtom& atom, const Tuple& tuple) {
  const PlanTerm* terms = atom.terms.data();
  const size_t n = atom.terms.size();
  for (size_t i = 0; i < n; ++i) {
    const PlanTerm& pt = terms[i];
    switch (pt.op) {
      case PlanTerm::Op::kConst:
        if (!(pt.value == tuple[i])) return false;
        break;
      case PlanTerm::Op::kCheck:
        if (!(*slots_[pt.slot] == tuple[i])) return false;
        break;
      case PlanTerm::Op::kBind:
        slots_[pt.slot] = &tuple[i];
        break;
    }
  }
  return true;
}

void RuleEvaluator::ExecFrom(const RulePlan& plan,
                             const std::vector<PlanAtom>& atoms,
                             const uint16_t* order, size_t atom_index,
                             const DeltaMap* delta, int delta_pos,
                             const Sinks& sinks) {
  if (exists_mode_ && exists_found_) return;  // short-circuit: answered
  if (atom_index == atoms.size()) {
    if (exists_mode_) {
      exists_found_ = true;
      return;
    }
    EmitHeadPlan(plan, sinks);
    return;
  }
  const PlanAtom& atom = atoms[atom_index];
  const size_t source_index =
      order != nullptr ? order[atom_index] : atom_index;

  // Resolve the atom's location. Constant names were interned at
  // compile time; a variable name is read out of its slot. A slot that
  // is unbound (unsafe rule) or holds a non-string value makes the
  // branch dead, mirroring the interpreter's ResolveSym.
  Symbol rel_sym;  // invalid when a variable name is not interned
  if (atom.relation.is_const) {
    rel_sym = atom.relation.sym;
  } else {
    const Value* v = slots_[atom.relation.slot];
    if (v == nullptr || !v->is_string()) return;
    // Find, not Intern: a data string that names nothing must neither
    // match nor grow the symbol table.
    rel_sym = Symbol::Find(v->AsString());
  }

  const std::string* remote_peer = nullptr;
  if (atom.peer.is_const) {
    if (atom.peer.sym != self_sym_) remote_peer = &atom.peer.text;
  } else {
    const Value* v = slots_[atom.peer.slot];
    if (v == nullptr || !v->is_string()) return;
    if (v->AsString() != self_peer_) remote_peer = &v->AsString();
  }
  if (remote_peer != nullptr) {
    // Remote atom: delegate the residual rule to that peer. Never
    // reached under a Δ-first variant (single-peer body, evaluated at
    // that peer) or an existence check (local-only by definition).
    if (order == nullptr && !exists_mode_) {
      EmitDelegationPlan(plan, atom_index, *remote_peer, sinks);
    }
    return;
  }

  Relation* relation = rel_sym.valid() ? catalog_->Get(rel_sym) : nullptr;

  if (atom.negated) {
    if (atom.negated_unbound) {
      // Statically never ground; same diagnostic as the interpreter.
      Atom substituted;
      if (SubstituteCompiled(atom.relation, atom.peer, atom.terms,
                             plan.rule.body[source_index], slots_.data(),
                             &substituted)) {
        WDL_LOG(Error) << "negated atom not ground at evaluation time: "
                       << substituted.ToString();
      }
      return;
    }
    // Safety guarantees every slot read here was bound by the prefix.
    probe_scratch_.clear();
    for (const PlanTerm& pt : atom.terms) {
      probe_scratch_.push_back(pt.op == PlanTerm::Op::kConst
                                   ? pt.value
                                   : *slots_[pt.slot]);
    }
    ++counters_.negation_probes;
    bool present = relation != nullptr &&
                   probe_scratch_.size() == relation->arity() &&
                   relation->Contains(probe_scratch_);
    if (!present) {
      ExecFrom(plan, atoms, order, atom_index + 1, delta, delta_pos, sinks);
    }
    return;
  }

  // Unify one stored tuple with the atom's compiled ops, recurse on
  // success, then undo this atom's bindings. `visit` is passed to the
  // storage layer as a template parameter — no std::function, and with
  // the relation's reusable snapshot buffers the steady-state loop
  // performs no per-tuple heap allocation.
  auto visit = [&](const Tuple& tuple) {
    if (exists_mode_ && exists_found_) return;  // drain remaining probes
    ++counters_.tuples_examined;
    if (UnifyTuple(atom, tuple)) {
      counters_.slot_bindings += atom.bound_slots.size();
      ExecFrom(plan, atoms, order, atom_index + 1, delta, delta_pos, sinks);
    }
    for (uint16_t s : atom.bound_slots) slots_[s] = nullptr;
  };

  // Semi-naive: this atom is restricted to the Δ of its relation. The
  // compile-time access path applies here too — a bound key column
  // probes the Δ's lazy index instead of scanning the whole set.
  if (delta != nullptr && delta_pos == static_cast<int>(atom_index)) {
    if (!rel_sym.valid()) return;  // never derived: empty Δ
    auto it = delta->find(rel_sym);
    if (it == delta->end()) return;
    const DeltaSet& ds = it->second;
    if (options_.use_indexes && atom.index_column >= 0) {
      const Value& key = atom.index_key_is_const ? atom.index_const
                                                 : *slots_[atom.index_slot];
      ++counters_.delta_index_probes;
      ds.LookupEqual(static_cast<size_t>(atom.index_column), key,
                     [&](const Tuple& tuple) {
                       if (tuple.size() == atom.terms.size()) visit(tuple);
                     });
      return;
    }
    ++counters_.delta_scans;
    for (const Tuple& tuple : ds.tuples()) {
      if (tuple.size() == atom.terms.size()) visit(tuple);
    }
    return;
  }

  if (relation == nullptr) return;  // empty: no matches
  if (atom.terms.size() != relation->arity()) return;  // arity mismatch

  // Existence checks usually arrive with the atom fully ground (the
  // seeded head bound every variable, so the atom has no bind ops):
  // answer with one O(1) membership probe instead of walking an index
  // bucket — the compiled twin of the interpreter's ground fast path.
  if (exists_mode_ && atom.bound_slots.empty()) {
    probe_scratch_.clear();
    bool ground = true;
    for (const PlanTerm& pt : atom.terms) {
      if (pt.op == PlanTerm::Op::kConst) {
        probe_scratch_.push_back(pt.value);
        continue;
      }
      const Value* v = slots_[pt.slot];
      if (v == nullptr) {
        ground = false;
        break;
      }
      probe_scratch_.push_back(*v);
    }
    if (ground) {
      ++counters_.tuples_examined;
      if (relation->Contains(probe_scratch_)) {
        ExecFrom(plan, atoms, order, atom_index + 1, delta, delta_pos, sinks);
      }
      return;
    }
  }

  // Access path was chosen at compile time: the first column whose key
  // is known before the atom runs drives an index probe.
  if (options_.use_indexes && atom.index_column >= 0) {
    const Value& key = atom.index_key_is_const ? atom.index_const
                                               : *slots_[atom.index_slot];
    ++counters_.index_lookups;
    if (options_.concurrent_reads) {
      relation->LookupEqualShared(static_cast<size_t>(atom.index_column), key,
                                  visit);
    } else {
      relation->LookupEqual(static_cast<size_t>(atom.index_column), key,
                            visit);
    }
    return;
  }
  ++counters_.full_scans;
  if (options_.concurrent_reads) {
    relation->ForEachShared(visit);
  } else {
    relation->ForEach(visit);
  }
}

void RuleEvaluator::EmitHeadPlan(const RulePlan& plan, const Sinks& sinks) {
  const PlanHead& head = plan.head;
  if (head.dead) return;  // unsafe rule: a head variable never binds

  Fact& fact = fact_scratch_;
  if (head.relation.is_const) {
    fact.relation = head.relation.text;
  } else {
    const Value* v = slots_[head.relation.slot];
    if (v == nullptr || !v->is_string()) return;  // non-string name: dead
    fact.relation = v->AsString();
  }
  if (head.peer.is_const) {
    fact.peer = head.peer.text;
  } else {
    const Value* v = slots_[head.peer.slot];
    if (v == nullptr || !v->is_string()) return;
    fact.peer = v->AsString();
  }

  fact.args.clear();
  for (const PlanTerm& pt : head.terms) {
    if (pt.op == PlanTerm::Op::kConst) {
      fact.args.push_back(pt.value);
    } else {
      const Value* v = slots_[pt.slot];
      if (v == nullptr) return;  // unreachable for safe rules
      fact.args.push_back(*v);
    }
  }
  ++counters_.bindings_completed;
  if (fact.peer == self_peer_) {
    if (sinks.on_local_fact) sinks.on_local_fact(fact);
  } else {
    if (sinks.on_remote_fact) sinks.on_remote_fact(fact);
  }
}

void RuleEvaluator::EmitDelegationPlan(const RulePlan& plan,
                                       size_t split_index,
                                       const std::string& target,
                                       const Sinks& sinks) {
  Delegation d;
  d.origin_peer = self_peer_;
  d.target_peer = target;
  d.origin_rule_hash = plan.rule_hash;
  // The residual must keep the deletion flag: a split "-head :- body"
  // still deletes when its head finally derives at the target.
  d.rule.head_deletes = plan.rule.head_deletes;
  if (!SubstituteCompiled(plan.head.relation, plan.head.peer,
                          plan.head.terms, plan.rule.head, slots_.data(),
                          &d.rule.head)) {
    return;
  }
  d.rule.body.reserve(plan.atoms.size() - split_index);
  for (size_t i = split_index; i < plan.atoms.size(); ++i) {
    const PlanAtom& atom = plan.atoms[i];
    Atom substituted;
    if (!SubstituteCompiled(atom.relation, atom.peer, atom.terms,
                            plan.rule.body[i], slots_.data(),
                            &substituted)) {
      return;
    }
    d.rule.body.push_back(std::move(substituted));
  }
  ++counters_.delegations_emitted;
  if (sinks.on_delegation) sinks.on_delegation(d);
}

// --- AST interpreter (the seed semantics, kept as the oracle) ---------

void RuleEvaluator::MatchFrom(const Rule& rule, size_t atom_index,
                              Binding* binding, const DeltaMap* delta,
                              int delta_pos, const Sinks& sinks) {
  if (exists_mode_ && exists_found_) return;  // short-circuit: answered
  if (atom_index == rule.body.size()) {
    if (exists_mode_) {
      exists_found_ = true;
      return;
    }
    EmitHead(rule, *binding, sinks);
    return;
  }
  const Atom& atom = rule.body[atom_index];

  // Resolve the atom's location. Safety analysis guarantees relation and
  // peer variables are bound here; a binding of the wrong type (e.g. a
  // peer variable bound to an int) makes the branch dead.
  std::string rel_storage, peer_storage;
  const std::string* rel = ResolveSym(atom.relation, *binding, &rel_storage);
  const std::string* peer = ResolveSym(atom.peer, *binding, &peer_storage);
  if (rel == nullptr || peer == nullptr) return;

  if (*peer != self_peer_) {
    // Remote atom: delegate the residual rule to that peer. An
    // existence check asks for a complete *local* derivation, so a
    // remote atom is a dead branch there.
    if (!exists_mode_) EmitDelegation(rule, atom_index, *peer, *binding, sinks);
    return;
  }

  Relation* relation = catalog_->Get(*rel);

  if (atom.negated) {
    // Safety guarantees the atom is ground under `binding`.
    Atom ground;
    if (!SubstituteAtom(atom, *binding, &ground)) return;
    if (!ground.IsGround()) {
      WDL_LOG(Error) << "negated atom not ground at evaluation time: "
                     << ground.ToString();
      return;
    }
    Tuple probe;
    probe.reserve(ground.args.size());
    for (const Term& t : ground.args) probe.push_back(t.value());
    bool present = relation != nullptr &&
                   probe.size() == relation->arity() &&
                   relation->Contains(probe);
    if (!present) {
      MatchFrom(rule, atom_index + 1, binding, delta, delta_pos, sinks);
    }
    return;
  }

  if (relation == nullptr) return;  // empty: no matches
  if (atom.args.size() != relation->arity()) return;  // arity mismatch

  // Unify one stored tuple with the atom's argument terms.
  auto try_tuple = [&](const Tuple& tuple) {
    if (exists_mode_ && exists_found_) return;  // drain remaining probes
    ++counters_.tuples_examined;
    size_t mark = binding->Mark();
    bool ok = true;
    for (size_t i = 0; i < atom.args.size() && ok; ++i) {
      const Term& t = atom.args[i];
      if (t.is_constant()) {
        ok = t.value() == tuple[i];
        continue;
      }
      const Value* bound = binding->Get(t.var());
      if (bound != nullptr) {
        ok = *bound == tuple[i];
      } else {
        binding->Bind(t.var(), tuple[i]);
      }
    }
    if (ok) {
      MatchFrom(rule, atom_index + 1, binding, delta, delta_pos, sinks);
    }
    binding->Rewind(mark);
  };

  // Semi-naive: this atom is restricted to the Δ of its relation.
  if (delta != nullptr && delta_pos == static_cast<int>(atom_index)) {
    Symbol rel_sym = Symbol::Find(*rel);
    if (!rel_sym.valid()) return;  // never derived: empty Δ
    auto it = delta->find(rel_sym);
    if (it == delta->end()) return;
    for (const Tuple& tuple : it->second.tuples()) {
      if (tuple.size() == atom.args.size()) try_tuple(tuple);
    }
    return;
  }

  // Existence checks usually arrive with the atom fully ground (the
  // head target bound every variable): answer with one O(1) membership
  // probe instead of walking an index bucket.
  if (exists_mode_) {
    bool ground = true;
    probe_scratch_.clear();
    for (const Term& t : atom.args) {
      const Value* v = t.is_constant() ? &t.value() : binding->Get(t.var());
      if (v == nullptr) {
        ground = false;
        break;
      }
      probe_scratch_.push_back(*v);
    }
    if (ground) {
      ++counters_.tuples_examined;
      if (relation->Contains(probe_scratch_)) {
        MatchFrom(rule, atom_index + 1, binding, delta, delta_pos, sinks);
      }
      return;
    }
  }

  // Access-path selection: the first argument position carrying a
  // constant (literal or bound variable) drives an index lookup;
  // otherwise scan.
  if (options_.use_indexes) {
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const Term& t = atom.args[i];
      const Value* key = nullptr;
      if (t.is_constant()) {
        key = &t.value();
      } else {
        key = binding->Get(t.var());
      }
      if (key != nullptr) {
        relation->LookupEqual(i, *key, try_tuple);
        return;
      }
    }
  }
  relation->ForEach(try_tuple);
}

void RuleEvaluator::EmitHead(const Rule& rule, const Binding& binding,
                             const Sinks& sinks) {
  std::string rel_storage, peer_storage;
  const std::string* rel =
      ResolveSym(rule.head.relation, binding, &rel_storage);
  const std::string* peer = ResolveSym(rule.head.peer, binding, &peer_storage);
  if (rel == nullptr || peer == nullptr) return;  // non-string name: dead

  Fact fact;
  fact.relation = *rel;
  fact.peer = *peer;
  fact.args.reserve(rule.head.args.size());
  for (const Term& t : rule.head.args) {
    if (t.is_constant()) {
      fact.args.push_back(t.value());
    } else {
      const Value* v = binding.Get(t.var());
      if (v == nullptr) return;  // unreachable for safe rules
      fact.args.push_back(*v);
    }
  }
  ++counters_.bindings_completed;
  if (fact.peer == self_peer_) {
    if (sinks.on_local_fact) sinks.on_local_fact(fact);
  } else {
    if (sinks.on_remote_fact) sinks.on_remote_fact(fact);
  }
}

void RuleEvaluator::EmitDelegation(const Rule& rule, size_t split_index,
                                   const std::string& target,
                                   const Binding& binding,
                                   const Sinks& sinks) {
  Delegation d;
  d.origin_peer = self_peer_;
  d.target_peer = target;
  d.origin_rule_hash = rule.Hash();
  // Keep the deletion flag on the residual (see EmitDelegationPlan).
  d.rule.head_deletes = rule.head_deletes;
  if (!SubstituteAtom(rule.head, binding, &d.rule.head)) return;
  d.rule.body.reserve(rule.body.size() - split_index);
  for (size_t i = split_index; i < rule.body.size(); ++i) {
    Atom substituted;
    if (!SubstituteAtom(rule.body[i], binding, &substituted)) return;
    d.rule.body.push_back(std::move(substituted));
  }
  ++counters_.delegations_emitted;
  if (sinks.on_delegation) sinks.on_delegation(d);
}

}  // namespace wdl
