#include "wrappers/email_wrapper.h"

namespace wdl {

EmailWrapper::EmailWrapper(std::string peer_name, EmailService* service,
                           std::string address)
    : peer_name_(std::move(peer_name)),
      service_(service),
      address_(std::move(address)) {}

Status EmailWrapper::Setup(Peer* peer) {
  RelationDecl d;
  d.relation = "email";
  d.peer = peer_name_;
  d.kind = RelationKind::kExtensional;
  // Generic payload columns: the Wepic transfer rule sends
  // (attendee, name, id, owner); other applications may send anything
  // of the same arity.
  d.columns = {{"to", ValueKind::kAny},
               {"subject", ValueKind::kAny},
               {"ref", ValueKind::kAny},
               {"sender", ValueKind::kAny}};
  return peer->engine().DeclareRelation(d);
}

Status EmailWrapper::Sync(Peer* peer) {
  Relation* email = peer->engine().catalog().Get("email");
  if (email == nullptr) {
    return Status::Internal("email relation missing");
  }
  std::vector<const Tuple*> fresh;
  email->ForEach([&](const Tuple& t) {
    if (!delivered_.count(t)) fresh.push_back(&t);
  });
  for (const Tuple* t : fresh) {
    EmailService::Email mail;
    mail.to = address_;
    mail.from = "wepic@" + peer_name_;
    mail.subject = (*t)[1].is_string() ? (*t)[1].AsString()
                                       : (*t)[1].ToString();
    mail.body = TupleToString(*t);
    service_->Send(std::move(mail));
    delivered_.insert(*t);
    ++emails_sent_;
  }
  return Status::OK();
}

}  // namespace wdl
