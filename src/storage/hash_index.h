#ifndef WDL_STORAGE_HASH_INDEX_H_
#define WDL_STORAGE_HASH_INDEX_H_

#include <cstdint>
#include <map>
#include <vector>

#include "storage/tuple.h"

namespace wdl {

/// An open-addressing hash index: 64-bit value hash -> chain of tuple
/// pointers. Purpose-built for the join inner loop, where the probe is
/// the hot operation:
///
///  - power-of-two capacity, so a probe is a mask, not the modulo
///    division a std::unordered_* bucket lookup pays;
///  - linear probing over a contiguous slot array (one cache line
///    covers several slots), entries in a contiguous pool;
///  - the caller supplies the hash (Values cache theirs), so probing
///    never touches value bytes.
///
/// Keys are hashes, so distinct values can share a chain — callers must
/// confirm equality on the surfaced tuples (see Relation::LookupEqual).
/// Not thread-safe, like everything per-peer.
class HashIndex {
 public:
  void Clear() {
    slots_.clear();
    pool_.clear();
    keys_ = 0;
    live_keys_ = 0;
    free_head_ = kNil;
  }

  /// Pre-sizes for `expected` distinct keys.
  void Reserve(size_t expected) {
    size_t want = SizeFor(expected);
    if (want > slots_.size()) Rehash(want);
    pool_.reserve(expected);
  }

  void Insert(uint64_t hash, const Tuple* tuple) {
    if (slots_.empty() || (keys_ + 1) * 4 > slots_.size() * 3) {
      // Load counts dead keys too (they lengthen probe sequences), but
      // the new size is chosen from *live* keys: a rehash drops dead
      // keys, so insert/remove churn compacts instead of ratcheting
      // capacity upward forever.
      Rehash(SizeFor(live_keys_ + 1));
    }
    Slot& s = slots_[FindSlot(hash)];
    if (s.head == kEmpty) {
      s.hash = hash;
      s.head = kNil;
      ++keys_;
      ++live_keys_;
    } else if (s.head == kNil) {
      ++live_keys_;  // resurrecting a dead key
    }
    uint32_t idx;
    if (free_head_ != kNil) {
      idx = free_head_;
      free_head_ = pool_[idx].next;
      pool_[idx] = Entry{tuple, s.head};
    } else {
      idx = static_cast<uint32_t>(pool_.size());
      pool_.push_back(Entry{tuple, s.head});
    }
    s.head = idx;
  }

  /// Unlinks one chain entry for (hash, tuple); no-op when absent.
  /// An emptied chain leaves its key slot in place as a dead key
  /// (probing must keep walking past it) until the next rehash.
  void Remove(uint64_t hash, const Tuple* tuple) {
    if (slots_.empty()) return;
    Slot& s = slots_[FindSlot(hash)];
    if (s.head == kEmpty) return;
    uint32_t* link = &s.head;
    while (*link != kNil) {
      Entry& e = pool_[*link];
      if (e.tuple == tuple) {
        uint32_t dead = *link;
        *link = e.next;
        e.tuple = nullptr;
        e.next = free_head_;
        free_head_ = dead;
        if (s.head == kNil) --live_keys_;  // chain emptied: key is dead
        return;
      }
      link = &e.next;
    }
  }

  /// Slot-array capacity (tests assert churn does not ratchet it).
  size_t SlotCapacityForTesting() const { return slots_.size(); }

  /// Invokes `fn(const Tuple*)` on every entry whose key equals `hash`,
  /// newest first. `fn` must not mutate this index.
  template <typename Fn>
  void ForEachWithHash(uint64_t hash, Fn&& fn) const {
    if (slots_.empty()) return;
    const Slot& s = slots_[FindSlot(hash)];
    if (s.head == kEmpty) return;
    for (uint32_t e = s.head; e != kNil; e = pool_[e].next) {
      fn(pool_[e].tuple);
    }
  }

 private:
  static constexpr uint32_t kEmpty = 0xFFFFFFFFu;  // unoccupied slot
  static constexpr uint32_t kNil = 0xFFFFFFFEu;    // chain terminator

  struct Slot {
    uint64_t hash = 0;
    uint32_t head = kEmpty;
  };
  struct Entry {
    const Tuple* tuple;
    uint32_t next;
  };

  /// First slot that is empty or keyed by `hash` (keys are never
  /// displaced, so the probe sequence is stable).
  size_t FindSlot(uint64_t hash) const {
    const size_t mask = slots_.size() - 1;
    size_t i = static_cast<size_t>(hash) & mask;
    while (slots_[i].head != kEmpty && slots_[i].hash != hash) {
      i = (i + 1) & mask;
    }
    return i;
  }

  /// Smallest power-of-two capacity keeping `keys` under 3/4 load.
  static size_t SizeFor(size_t keys) {
    size_t want = 16;
    while (want * 3 < keys * 4) want <<= 1;
    return want;
  }

  void Rehash(size_t new_size) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_size, Slot{});
    keys_ = 0;
    for (const Slot& s : old) {
      if (s.head == kEmpty || s.head == kNil) continue;  // empty/dead key
      const size_t mask = slots_.size() - 1;
      size_t i = static_cast<size_t>(s.hash) & mask;
      while (slots_[i].head != kEmpty) i = (i + 1) & mask;
      slots_[i] = s;
      ++keys_;
    }
    live_keys_ = keys_;
  }

  std::vector<Slot> slots_;   // power-of-two size (or empty)
  std::vector<Entry> pool_;   // chain storage; freed entries recycled
  size_t keys_ = 0;           // occupied key slots, live and dead
  size_t live_keys_ = 0;      // keys with a non-empty chain
  uint32_t free_head_ = kNil;
};

/// A family of per-column HashIndexes built lazily on first probe — the
/// access pattern shared by `Relation` (persistent storage) and the
/// evaluator's `DeltaSet` (per-iteration Δ): a column is indexed only
/// once a join actually probes it, and already-built indexes are kept
/// current on every subsequent insert/remove. Centralizing it here
/// keeps the build-on-first-probe and collision-confirming-probe logic
/// in one place (ROADMAP item); only Relation's snapshot/version layer
/// stays outside.
///
/// Tuples too short for a column are simply not indexed on it, so the
/// helper is safe for heterogeneous scratch sets.
class LazyColumnIndexes {
 public:
  /// The index on `column`, built from `tuples` (any iterable of Tuple
  /// with stable element addresses) when probed for the first time.
  template <typename Container>
  const HashIndex& Ensure(size_t column, const Container& tuples) {
    auto it = indexes_.find(column);
    if (it == indexes_.end()) {
      it = indexes_.emplace(column, HashIndex()).first;
      it->second.Reserve(tuples.size());
      for (const Tuple& t : tuples) {
        if (column < t.size()) it->second.Insert(t[column].Hash(), &t);
      }
    }
    return it->second;
  }

  /// Keeps already-built indexes current; columns never probed stay
  /// unindexed (and unpaid-for).
  void OnInsert(const Tuple* stored) {
    for (auto& [col, index] : indexes_) {
      if (col < stored->size()) index.Insert((*stored)[col].Hash(), stored);
    }
  }
  void OnRemove(const Tuple* stored) {
    for (auto& [col, index] : indexes_) {
      if (col < stored->size()) index.Remove((*stored)[col].Hash(), stored);
    }
  }

  /// Empties every built index without dropping it (the container was
  /// cleared; probed columns stay hot).
  void ClearEntries() {
    for (auto& [col, index] : indexes_) index.Clear();
  }

  bool Has(size_t column) const { return indexes_.count(column) > 0; }

  /// The already-built index on `column`, or nullptr. The concurrent
  /// read path (Relation::LookupEqualShared) must never build — it
  /// probes what the coordinator pre-built and falls back to a scan.
  const HashIndex* Built(size_t column) const {
    auto it = indexes_.find(column);
    return it == indexes_.end() ? nullptr : &it->second;
  }

  /// Collision-confirming probe: invokes `fn(const Tuple&)` on entries
  /// of `index` whose `column`-th value *equals* `value` (the index is
  /// keyed by hash only, so equality must be re-checked on every hit).
  template <typename Fn>
  static void ProbeEqual(const HashIndex& index, size_t column,
                         const Value& value, Fn&& fn) {
    index.ForEachWithHash(value.Hash(), [&](const Tuple* t) {
      if ((*t)[column] == value) fn(*t);
    });
  }

 private:
  std::map<size_t, HashIndex> indexes_;
};

}  // namespace wdl

#endif  // WDL_STORAGE_HASH_INDEX_H_
