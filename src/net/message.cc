#include "net/message.h"

#include "base/string_util.h"

namespace wdl {

const char* MessageTypeToString(MessageType type) {
  switch (type) {
    case MessageType::kFactInserts: return "FactInserts";
    case MessageType::kFactDeletes: return "FactDeletes";
    case MessageType::kDerivedSet: return "DerivedSet";
    case MessageType::kDelegationInstall: return "DelegationInstall";
    case MessageType::kDelegationRetract: return "DelegationRetract";
    case MessageType::kHello: return "Hello";
    case MessageType::kDerivedDelta: return "DerivedDelta";
    case MessageType::kResyncRequest: return "ResyncRequest";
    case MessageType::kStreamForget: return "StreamForget";
  }
  return "?";
}

Message Message::FactInserts(std::vector<Fact> facts) {
  Message m;
  m.type = MessageType::kFactInserts;
  m.facts = std::move(facts);
  return m;
}

Message Message::FactDeletes(std::vector<Fact> facts) {
  Message m;
  m.type = MessageType::kFactDeletes;
  m.facts = std::move(facts);
  return m;
}

Message Message::MakeDerivedSet(DerivedSet set) {
  Message m;
  m.type = MessageType::kDerivedSet;
  m.derived = std::move(set);
  return m;
}

Message Message::MakeDerivedDelta(DerivedDelta delta) {
  Message m;
  m.type = MessageType::kDerivedDelta;
  m.delta = std::move(delta);
  return m;
}

Message Message::ResyncRequest(std::string relation) {
  Message m;
  m.type = MessageType::kResyncRequest;
  m.text = std::move(relation);
  return m;
}

Message Message::StreamForget(std::string relation) {
  Message m;
  m.type = MessageType::kStreamForget;
  m.text = std::move(relation);
  return m;
}

Message Message::DelegationInstall(Delegation d) {
  Message m;
  m.type = MessageType::kDelegationInstall;
  m.delegation = std::move(d);
  return m;
}

Message Message::DelegationRetract(uint64_t key) {
  Message m;
  m.type = MessageType::kDelegationRetract;
  m.delegation_key = key;
  return m;
}

Message Message::Hello(std::string peer_name) {
  Message m;
  m.type = MessageType::kHello;
  m.text = std::move(peer_name);
  return m;
}

std::string Message::ToString() const {
  std::string out = MessageTypeToString(type);
  switch (type) {
    case MessageType::kFactInserts:
    case MessageType::kFactDeletes:
      out += StrFormat("(%zu facts)", facts.size());
      break;
    case MessageType::kDerivedSet:
      out += StrFormat("(%s@%s, %zu tuples)", derived.relation.c_str(),
                       derived.target_peer.c_str(), derived.tuples.size());
      break;
    case MessageType::kDelegationInstall:
      out += "(" + delegation.rule.ToString() + ")";
      break;
    case MessageType::kDelegationRetract:
      out += StrFormat("(key=%llu)",
                       static_cast<unsigned long long>(delegation_key));
      break;
    case MessageType::kHello:
      out += "(" + text + ")";
      break;
    case MessageType::kDerivedDelta:
      out += StrFormat("(%s@%s, v%llu->%llu%s, +%zu/-%zu)",
                       delta.relation.c_str(), delta.target_peer.c_str(),
                       static_cast<unsigned long long>(delta.base_version),
                       static_cast<unsigned long long>(delta.version),
                       delta.snapshot ? " snapshot" : "",
                       delta.inserts.size(), delta.deletes.size());
      break;
    case MessageType::kResyncRequest:
    case MessageType::kStreamForget:
      out += "(" + text + ")";
      break;
  }
  return out;
}

std::string Envelope::ToString() const {
  return StrFormat("[%s -> %s #%llu] ", from.c_str(), to.c_str(),
                   static_cast<unsigned long long>(seq)) +
         message.ToString();
}

}  // namespace wdl
