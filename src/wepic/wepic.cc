#include "wepic/wepic.h"

#include "base/string_util.h"
#include "parser/parser.h"
#include "wrappers/email_wrapper.h"
#include "wrappers/facebook_wrapper.h"

namespace wdl {

WepicApp::WepicApp(WepicOptions options)
    : options_(options),
      system_(SystemOptions{options.network_seed, LinkConfig{}}) {}

std::string WepicApp::AttendeeProgramText(const std::string& name) {
  const char* n = name.c_str();
  std::string out;
  out += StrFormat(
      "collection ext persistent pictures@%s(id: int, name: string, "
      "owner: string, data: blob);\n", n);
  out += StrFormat(
      "collection ext selectedAttendee@%s(attendee: string);\n", n);
  out += StrFormat(
      "collection ext selectedPictures@%s(name: string, id: int, "
      "owner: string);\n", n);
  out += StrFormat("collection ext communicate@%s(protocol: string);\n", n);
  out += StrFormat("collection ext rate@%s(id: int, rating: int);\n", n);
  out += StrFormat(
      "collection ext comment@%s(id: int, author: string, text: string);\n",
      n);
  out += StrFormat("collection ext tag@%s(id: int, person: string);\n", n);
  out += StrFormat(
      "collection ext authorized@%s(service: string, id: int, "
      "owner: string);\n", n);
  out += StrFormat(
      "collection int attendeePictures@%s(id: int, name: string, "
      "owner: string, data: blob);\n", n);

  // The paper's selection rule (§3): delegation retrieves the pictures
  // of each highlighted attendee.
  out += StrFormat(
      "rule attendeePictures@%s($id, $name, $owner, $data) :- "
      "selectedAttendee@%s($attendee), "
      "pictures@$attendee($id, $name, $owner, $data);\n", n, n);

  // The paper's transfer rule (§3): route selected pictures to each
  // highlighted attendee over that attendee's preferred protocol.
  out += StrFormat(
      "rule $protocol@$attendee($attendee, $name, $id, $owner) :- "
      "selectedAttendee@%s($attendee), "
      "communicate@$attendee($protocol), "
      "selectedPictures@%s($name, $id, $owner);\n", n, n);

  // Publication to the conference peer (§4 "a photo uploaded by Émilien
  // into his local relation pictures@Émilien is instantly published to
  // pictures@sigmod").
  out += StrFormat(
      "rule pictures@sigmod($id, $name, $owner, $data) :- "
      "pictures@%s($id, $name, $owner, $data);\n", n);
  return out;
}

std::string WepicApp::SigmodProgramText() {
  std::string out;
  out +=
      "collection ext persistent pictures@sigmod(id: int, name: string, "
      "owner: string, data: blob);\n";
  out += "collection ext attendees@sigmod(name: string);\n";
  // Publication to the Facebook group, gated per owner (§4): the
  // authorized atom is delegated to each picture's owner.
  out +=
      "rule pictures@SigmodFB($id, $name, $owner, $data) :- "
      "pictures@sigmod($id, $name, $owner, $data), "
      "authorized@$owner(\"Facebook\", $id, $owner);\n";
  // Conversely, pictures appearing on the Facebook wall are retrieved
  // and published at the sigmod peer (whole-rule delegation to the
  // SigmodFB wrapper peer).
  out +=
      "rule pictures@sigmod($id, $name, $owner, $data) :- "
      "pictures@SigmodFB($id, $name, $owner, $data);\n";
  return out;
}

Status WepicApp::SetupConference() {
  if (conference_ready_) {
    return Status::FailedPrecondition("conference already set up");
  }
  facebook_.CreateGroup(kFacebookGroup);

  PeerOptions peer_options;
  peer_options.engine = options_.engine;

  Peer* sigmod_peer = system_.CreatePeer(kSigmodPeer, peer_options);
  WDL_RETURN_IF_ERROR(sigmod_peer->LoadProgramText(SigmodProgramText()));

  // The SigmodFB peer is the wrapper's face; it trusts the sigmod peer
  // so the retrieval rule's delegation installs unattended.
  Peer* fb_peer = system_.CreatePeer(kSigmodFBPeer, peer_options);
  fb_peer->gate().TrustPeer(kSigmodPeer);
  WDL_RETURN_IF_ERROR(system_.AttachWrapper(
      std::make_unique<FacebookGroupWrapper>(kSigmodFBPeer, &facebook_,
                                             kFacebookGroup)));
  conference_ready_ = true;
  return Status::OK();
}

Status WepicApp::AddAttendee(const std::string& name) {
  if (!conference_ready_) {
    return Status::FailedPrecondition("call SetupConference() first");
  }
  if (system_.GetPeer(name) != nullptr) {
    return Status::AlreadyExists("attendee " + name + " already exists");
  }
  PeerOptions peer_options;
  peer_options.engine = options_.engine;
  Peer* peer = system_.CreatePeer(name, peer_options);
  // "By default, all peers except the sigmod peer will be considered
  // untrusted." — everyone trusts sigmod, nobody else.
  peer->gate().TrustPeer(kSigmodPeer);
  WDL_RETURN_IF_ERROR(peer->LoadProgramText(AttendeeProgramText(name)));

  // Remember the selection rule id so the customization scenario can
  // replace it (it is the first rule of the attendee program).
  std::vector<const InstalledRule*> rules = peer->engine().rules();
  if (!rules.empty()) selection_rule_id_[name] = rules.front()->id;

  // Subscribe at the conference registry.
  WDL_RETURN_IF_ERROR(
      system_.GetPeer(kSigmodPeer)
          ->Insert(Fact("attendees", kSigmodPeer, {Value::String(name)}))
          .status());

  // Both demo users "are members of the SigmodFB group" and have email.
  facebook_.AddUser(name);
  WDL_RETURN_IF_ERROR(facebook_.JoinGroup(kFacebookGroup, name));
  WDL_RETURN_IF_ERROR(system_.AttachWrapper(std::make_unique<EmailWrapper>(
      name, &email_, name + "@example.org")));

  attendees_.push_back(name);
  return Status::OK();
}

Status WepicApp::InsertAt(const std::string& peer_name, const Fact& fact) {
  Peer* peer = system_.GetPeer(peer_name);
  if (peer == nullptr) {
    return Status::NotFound("no peer named " + peer_name);
  }
  return peer->Insert(fact).status();
}

Status WepicApp::UploadPicture(const std::string& attendee, int64_t id,
                               const std::string& picture_name,
                               const std::string& data) {
  return InsertAt(attendee,
                  Fact("pictures", attendee,
                       {Value::Int(id), Value::String(picture_name),
                        Value::String(attendee), Value::MakeBlob(data)}));
}

Status WepicApp::SelectAttendee(const std::string& who,
                                const std::string& selected) {
  return InsertAt(who, Fact("selectedAttendee", who,
                            {Value::String(selected)}));
}

Status WepicApp::DeselectAttendee(const std::string& who,
                                  const std::string& selected) {
  Peer* peer = system_.GetPeer(who);
  if (peer == nullptr) return Status::NotFound("no peer named " + who);
  return peer
      ->Remove(Fact("selectedAttendee", who, {Value::String(selected)}))
      .status();
}

Status WepicApp::SelectPicture(const std::string& who,
                               const std::string& picture_name, int64_t id,
                               const std::string& owner) {
  return InsertAt(who, Fact("selectedPictures", who,
                            {Value::String(picture_name), Value::Int(id),
                             Value::String(owner)}));
}

Status WepicApp::SetCommunicationProtocol(const std::string& attendee,
                                          const std::string& protocol) {
  return InsertAt(attendee,
                  Fact("communicate", attendee, {Value::String(protocol)}));
}

Status WepicApp::RatePicture(const std::string& attendee, int64_t id,
                             int rating) {
  return InsertAt(attendee, Fact("rate", attendee,
                                 {Value::Int(id), Value::Int(rating)}));
}

Status WepicApp::CommentPicture(const std::string& attendee, int64_t id,
                                const std::string& author,
                                const std::string& text) {
  return InsertAt(attendee,
                  Fact("comment", attendee,
                       {Value::Int(id), Value::String(author),
                        Value::String(text)}));
}

Status WepicApp::TagPicture(const std::string& attendee, int64_t id,
                            const std::string& person) {
  return InsertAt(attendee, Fact("tag", attendee,
                                 {Value::Int(id), Value::String(person)}));
}

Status WepicApp::AuthorizeFacebook(const std::string& attendee, int64_t id) {
  return InsertAt(attendee,
                  Fact("authorized", attendee,
                       {Value::String("Facebook"), Value::Int(id),
                        Value::String(attendee)}));
}

Result<uint64_t> WepicApp::InstallRatingFilter(const std::string& attendee,
                                               int min_rating) {
  Peer* peer = system_.GetPeer(attendee);
  if (peer == nullptr) return Status::NotFound("no peer named " + attendee);
  auto it = selection_rule_id_.find(attendee);
  if (it != selection_rule_id_.end()) {
    WDL_RETURN_IF_ERROR(peer->engine().RemoveRule(it->second));
    selection_rule_id_.erase(it);
  }
  // §4 "Customizing rules": only pictures whose owner rated them
  // `min_rating` appear in the frame.
  std::string rule_text = StrFormat(
      "attendeePictures@%s($id, $name, $owner, $data) :- "
      "selectedAttendee@%s($attendee), "
      "pictures@$attendee($id, $name, $owner, $data), "
      "rate@$owner($id, %d)",
      attendee.c_str(), attendee.c_str(), min_rating);
  WDL_ASSIGN_OR_RETURN(uint64_t id, peer->AddRuleText(rule_text));
  selection_rule_id_[attendee] = id;
  return id;
}

Result<int> WepicApp::Converge(int max_rounds) {
  return system_.RunUntilQuiescent(max_rounds);
}

std::string WepicApp::RenderAttendeePicturesFrame(
    const std::string& who) const {
  const Peer* peer = system_.GetPeer(who);
  if (peer == nullptr) return "(unknown peer " + who + ")\n";
  const Relation* rel = peer->engine().catalog().Get("attendeePictures");
  std::string out = "+-- Attendee pictures (" + who + ") --+\n";
  if (rel == nullptr || rel->empty()) {
    out += "|  (empty)\n";
  } else {
    for (const Tuple& t : rel->SortedTuples()) {
      // (id, name, owner, data) -> one line per picture, data elided.
      out += StrFormat("|  #%s  %-20s  by %s\n", t[0].ToString().c_str(),
                       t[1].is_string() ? t[1].AsString().c_str() : "?",
                       t[2].is_string() ? t[2].AsString().c_str() : "?");
    }
  }
  out += "+--------------------------------------+\n";
  return out;
}

}  // namespace wdl
