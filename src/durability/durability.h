#ifndef WDL_DURABILITY_DURABILITY_H_
#define WDL_DURABILITY_DURABILITY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "durability/snapshot.h"
#include "durability/wal.h"
#include "net/message.h"

namespace wdl {

/// Per-peer durability configuration (DESIGN.md §11). The empty `dir`
/// default keeps durability off — the fully in-memory runtime stays
/// the oracle, exactly like the compiled-plan / differential /
/// incremental options — so every existing path is byte-identical
/// unless a host opts in.
struct DurabilityOptions {
  /// Directory holding this peer's snapshot + WAL generations; created
  /// on open. Empty disables durability.
  std::string dir;
  FsyncPolicy fsync_policy = FsyncPolicy::kBatch;
  /// Write a snapshot (and truncate the log) once this many records
  /// have been appended since the last one; 0 never snapshots (the
  /// log grows until the host rotates it by hand).
  uint64_t snapshot_interval_records = 4096;
};

/// WAL record taxonomy (DESIGN.md §11 has the full table). Everything
/// that mutates durable peer state is logged *before* it is applied;
/// replay re-applies records in order against the restored snapshot.
enum class WalRecordType : uint8_t {
  /// A received envelope, re-encoded with the wire codec. Replay feeds
  /// it back through Peer::HandleEnvelope; the SliceStore version gate
  /// makes duplicated deltas idempotent. Heartbeats, Hellos, and
  /// resync requests are not logged (no durable state change).
  kEnvelope = 1,
  kLocalFactInsert = 2,   // Fact, logged when the insert changed state
  kLocalFactDelete = 3,   // Fact, logged when the delete changed state
  kLocalDecl = 4,         // RelationDecl
  kLocalRuleAdd = 5,      // engine rule id + Rule
  kLocalRuleRemove = 6,   // engine rule id
  /// What one stage shipped: derived deltas (resync snapshots and
  /// full-slice sets are logged as snapshot-deltas), delegation
  /// installs, and delegation retracts. Replay advances the engine's
  /// SentContribution / sent-delegation state to match, so a recovered
  /// peer diffs its next emission against what receivers actually
  /// hold.
  kStageOutbound = 7,
  kDelegationApprove = 8,  // delegation key
  kDelegationReject = 9,   // delegation key
};

const char* WalRecordTypeToString(WalRecordType type);

/// One WAL record. Exactly the payload fields for `type` are
/// meaningful (the Message pattern).
struct WalRecord {
  WalRecordType type = WalRecordType::kEnvelope;
  Envelope envelope;  // kEnvelope
  Fact fact;          // kLocalFactInsert / kLocalFactDelete
  RelationDecl decl;  // kLocalDecl
  uint64_t id = 0;    // kLocalRuleAdd/Remove: rule id; approvals: key
  Rule rule;          // kLocalRuleAdd
  // kStageOutbound:
  std::vector<DerivedDelta> shipped_deltas;
  std::vector<Delegation> shipped_delegations;
  std::vector<uint64_t> shipped_delegation_retracts;
};

std::string EncodeWalRecord(const WalRecord& record);
Result<WalRecord> DecodeWalRecord(std::string_view bytes);

/// Durability-plane telemetry, surfaced by wdl_peerd's recovery log
/// line and asserted by the crash-recovery tests.
struct DurabilityCounters {
  uint64_t records_appended = 0;
  uint64_t bytes_appended = 0;
  uint64_t fsyncs = 0;
  uint64_t snapshots_written = 0;
  uint64_t snapshot_bytes = 0;
  // Recovery-time facts, fixed at Open:
  bool snapshot_recovered = false;
  uint64_t wal_records_recovered = 0;
  bool torn_tail_truncated = false;
  uint64_t torn_bytes_dropped = 0;
  uint64_t generation = 0;
};

/// One peer's durability manager: owns the data directory, appends WAL
/// records, rotates snapshot/WAL generations, and carries the
/// recovered state from Open until the peer has replayed it.
///
/// File layout inside `options.dir`:
///   snap-<G>.wdls   snapshot of generation G (absent for G = 0)
///   wal-<G>.log     records appended since snapshot G
///
/// Rotation order makes every crash window recoverable: the new
/// snapshot is written tmp+rename+dir-fsync first, then the fresh
/// (empty) log is created, then older generations are deleted. A crash
/// between any two steps leaves either the old generation complete or
/// the new one complete — recovery picks the newest snapshot that
/// passes its CRC and replays its matching log, truncating any torn
/// tail so appends resume after the last valid record.
///
/// Not thread-safe: owned by one Peer and driven from whichever thread
/// runs that peer's stage (the per-peer concurrency contract of
/// DESIGN.md §8).
class PeerDurability {
 public:
  /// Opens (creating the directory if needed) and performs the disk
  /// side of recovery: selects the newest valid snapshot, reads the
  /// matching WAL, truncates a torn tail. The decoded snapshot and
  /// records stay available until FinishRecovery().
  static Result<std::unique_ptr<PeerDurability>> Open(
      DurabilityOptions options);

  /// True when Open found anything to restore.
  bool has_recovery() const {
    return snapshot_.has_value() || !recovered_records_.empty();
  }
  const SnapshotData* snapshot() const {
    return snapshot_.has_value() ? &*snapshot_ : nullptr;
  }
  const std::vector<WalRecord>& recovered_records() const {
    return recovered_records_;
  }
  /// Frees the recovery buffers once the peer has replayed them.
  void FinishRecovery();

  Status Append(const WalRecord& record);
  /// The FsyncPolicy::kBatch sync point; peers call it at the end of
  /// every stage (and after local write batches).
  Status EndBatch();

  /// True once snapshot_interval_records have been appended since the
  /// last snapshot; the peer then builds a SnapshotData at its next
  /// safe point and calls WriteSnapshot.
  bool ShouldSnapshot() const;
  /// Writes `snap` as generation G+1 and rotates the WAL (compaction:
  /// the old log's records are all covered by the new snapshot).
  Status WriteSnapshot(const SnapshotData& snap);

  const DurabilityCounters& counters() const { return counters_; }
  const DurabilityOptions& options() const { return options_; }
  uint64_t generation() const { return generation_; }
  /// Records appended since the last snapshot (including recovered
  /// ones — they are in the current log).
  uint64_t records_in_log() const { return records_in_log_; }
  std::string WalPath() const;
  std::string SnapshotPath(uint64_t generation) const;

 private:
  explicit PeerDurability(DurabilityOptions options)
      : options_(std::move(options)) {}

  DurabilityOptions options_;
  uint64_t generation_ = 0;
  uint64_t records_in_log_ = 0;
  std::unique_ptr<WalWriter> writer_;
  bool batch_dirty_ = false;
  std::optional<SnapshotData> snapshot_;
  std::vector<WalRecord> recovered_records_;
  DurabilityCounters counters_;
};

}  // namespace wdl

#endif  // WDL_DURABILITY_DURABILITY_H_
