// The full Wepic demonstration of §4: the Figure 2 topology (Émilien's
// and Jules' laptops, the sigmod cloud peer, the SigmodFB wrapper),
// picture upload and propagation, the Figure 1 "Attendee pictures"
// frame, and the protocol-based transfer over email.
//
// Run:  ./build/examples/wepic_demo

#include <cstdio>

#include "wepic/wepic.h"

namespace {

void Banner(const char* title) {
  std::printf("\n================ %s ================\n", title);
}

}  // namespace

int main() {
  wdl::WepicApp app;
  if (!app.SetupConference().ok()) return 1;
  if (!app.AddAttendee("Emilien").ok()) return 1;
  if (!app.AddAttendee("Jules").ok()) return 1;
  // The two demo laptops trust each other (§4 focuses the delegation-
  // control scenario on Julia; see examples/delegation_control.cpp).
  app.attendee("Emilien")->gate().TrustPeer("Jules");
  app.attendee("Jules")->gate().TrustPeer("Emilien");

  Banner("Setup (Figure 2)");
  std::printf("peers: ");
  for (const std::string& name : app.system().PeerNames()) {
    std::printf("%s ", name.c_str());
  }
  std::printf("\n\nThe standard attendee program (Jules):\n%s",
              wdl::WepicApp::AttendeeProgramText("Jules").c_str());

  Banner("Scenario: upload & publication");
  (void)app.UploadPicture("Emilien", 1, "sea.jpg", "\x89PNG...sea");
  (void)app.UploadPicture("Emilien", 2, "boat.jpg", "\x89PNG...boat");
  (void)app.UploadPicture("Jules", 3, "dinner.jpg", "\x89PNG...dinner");
  wdl::Result<int> rounds = app.Converge();
  if (!rounds.ok()) return 1;
  std::printf("converged in %d rounds\n", *rounds);
  std::printf("%s", app.sigmod()->RenderRelation("pictures").c_str());

  Banner("Scenario: the Attendee-pictures frame (Figure 1)");
  (void)app.SelectAttendee("Jules", "Emilien");
  (void)app.Converge();
  std::printf("%s", app.RenderAttendeePicturesFrame("Jules").c_str());

  Banner("Scenario: Facebook publication (authorized only)");
  (void)app.AuthorizeFacebook("Emilien", 1);  // sea.jpg only
  (void)app.Converge();
  std::printf("pictures on the SigmodFB wall:\n");
  for (const auto& pic : app.facebook().GroupPictures(wdl::kFacebookGroup)) {
    std::printf("  #%lld %s (by %s)\n", static_cast<long long>(pic.id),
                pic.name.c_str(), pic.owner.c_str());
  }

  Banner("Scenario: transfer over the preferred protocol");
  (void)app.SetCommunicationProtocol("Emilien", "email");
  (void)app.SelectPicture("Jules", "dinner.jpg", 3, "Jules");
  (void)app.Converge();
  const auto& inbox = app.email().InboxOf("Emilien@example.org");
  std::printf("Emilien's inbox has %zu message(s)\n", inbox.size());
  for (const auto& mail : inbox) {
    std::printf("  from %s: %s\n", mail.from.c_str(), mail.subject.c_str());
  }

  Banner("Network statistics");
  const wdl::NetworkStats& stats = app.system().network().stats();
  std::printf("messages: %llu submitted, %llu delivered, %llu bytes\n",
              static_cast<unsigned long long>(stats.messages_submitted),
              static_cast<unsigned long long>(stats.messages_delivered),
              static_cast<unsigned long long>(stats.bytes_sent));
  std::printf("per-edge traffic (the Figure 2 arrows):\n");
  for (const auto& [edge, count] :
       app.system().network().edge_message_counts()) {
    std::printf("  %-10s -> %-10s : %llu\n", edge.first.c_str(),
                edge.second.c_str(), static_cast<unsigned long long>(count));
  }
  return 0;
}
