#include "engine/engine.h"

#include <algorithm>
#include <cstdlib>

#include "base/logging.h"
#include "base/string_util.h"
#include "base/thread_pool.h"

namespace wdl {

int DefaultEvalThreads() {
  static const int v = [] {
    const char* s = std::getenv("WDL_EVAL_THREADS");
    if (s == nullptr) return 1;
    int n = std::atoi(s);
    return n >= 1 ? n : 1;
  }();
  return v;
}

Engine::Engine(std::string self_peer, EngineOptions options)
    : self_peer_(std::move(self_peer)),
      self_sym_(Symbol::Intern(self_peer_)),
      options_(options),
      catalog_(self_peer_),
      evaluator_(&catalog_, self_peer_,
                 EvalOptions{options_.use_indexes,
                             options_.use_compiled_plans}) {}

Engine::~Engine() = default;

/// Intra-peer parallel Δ-rounds (DESIGN.md §8). A semi-naive round is
/// parallelized by partitioning the previous iteration's Δ by tuple
/// content hash across P workers, evaluating every rule's Δ-first plan
/// variants on each partition against *frozen* relations (the workers'
/// evaluators use the concurrent read paths and never mutate anything
/// outside their own buffers), and replaying the per-worker emit
/// buffers through the engine's ordinary serial sinks at the round
/// barrier, in stable partition order. All bookkeeping — derivation
/// tracker, contribution maps, next-Δ chaining, stats — therefore runs
/// exactly the serial code on exactly the same events, just discovered
/// concurrently. The final fixpoint is bit-identical across thread
/// counts: rules are monotone within a round and relations are frozen
/// mid-round, so a derivation the serial path finds via mid-round
/// visibility is found here at most one round later (textbook
/// semi-naive), converging to the same set.
struct Engine::ParallelEval {
  /// The per-round view of an active rule: its resolved plan and
  /// whether its head deletes (replay must set the engine's
  /// current-rule flag before invoking the sinks).
  struct ParallelRule {
    const RulePlan* plan;
    bool deletes;
  };
  struct FactEmit {
    uint32_t rule;
    bool remote;
    Fact fact;
  };
  struct Buffer {
    std::vector<FactEmit> facts;
    std::vector<Delegation> delegations;
  };

  ParallelEval(Catalog* catalog, const std::string& self_peer,
               const EngineOptions& opts)
      : pool(opts.eval_threads) {
    EvalOptions wopts;
    wopts.use_indexes = opts.use_indexes;
    wopts.use_compiled_plans = true;
    wopts.concurrent_reads = true;
    workers.reserve(static_cast<size_t>(opts.eval_threads));
    for (int i = 0; i < opts.eval_threads; ++i) {
      workers.push_back(
          std::make_unique<RuleEvaluator>(catalog, self_peer, wopts));
    }
    parts.resize(workers.size());
    buffers.resize(workers.size());
  }

  /// One parallel semi-naive round. Partition assignment is by tuple
  /// content hash, so it is independent of DeltaMap iteration order and
  /// identical across runs; replay order (worker 0..P-1, emission order
  /// within each) is therefore deterministic at a fixed thread count.
  void RunRound(
      const std::vector<ParallelRule>& rules, const DeltaMap& delta,
      const std::function<void(uint32_t, bool, const Fact&)>& replay_fact,
      const std::function<void(const Delegation&)>& replay_delegation,
      EvalCounters* counters) {
    const size_t p = workers.size();
    for (DeltaMap& part : parts) part.clear();
    TupleHasher hasher;
    for (const auto& [sym, ds] : delta) {
      for (const Tuple& t : ds.tuples()) {
        parts[hasher(t) % p][sym].Insert(t);
      }
    }
    for (Buffer& b : buffers) {
      b.facts.clear();
      b.delegations.clear();
    }
    pool.ParallelFor(static_cast<int>(p), [&](int w) {
      const DeltaMap& part = parts[static_cast<size_t>(w)];
      if (part.empty()) return;
      RuleEvaluator& ev = *workers[static_cast<size_t>(w)];
      Buffer& buf = buffers[static_cast<size_t>(w)];
      uint32_t current = 0;
      RuleEvaluator::Sinks s;
      s.on_local_fact = [&](const Fact& f) {
        buf.facts.push_back(FactEmit{current, false, f});
      };
      s.on_remote_fact = [&](const Fact& f) {
        buf.facts.push_back(FactEmit{current, true, f});
      };
      s.on_delegation = [&](const Delegation& d) {
        buf.delegations.push_back(d);
      };
      for (size_t r = 0; r < rules.size(); ++r) {
        current = static_cast<uint32_t>(r);
        const RulePlan& plan = *rules[r].plan;
        const Rule& rule = plan.rule;
        for (size_t pos = 0; pos < rule.body.size(); ++pos) {
          if (rule.body[pos].negated) continue;
          ev.EvaluatePlan(plan, &part, static_cast<int>(pos), s);
        }
      }
    });
    for (size_t w = 0; w < p; ++w) {
      for (const FactEmit& e : buffers[w].facts) {
        replay_fact(e.rule, e.remote, e.fact);
      }
      for (const Delegation& d : buffers[w].delegations) {
        replay_delegation(d);
      }
    }
    for (auto& ev : workers) {
      counters->MergeFrom(ev->counters());
      ev->ResetCounters();
    }
  }

  ThreadPool pool;
  std::vector<std::unique_ptr<RuleEvaluator>> workers;
  std::vector<DeltaMap> parts;   // reused across rounds
  std::vector<Buffer> buffers;   // reused across rounds
};

namespace {

/// True when `plan` may run inside a parallel Δ-round: compiled, a
/// valid Δ-first variant at every positive body position (so per-
/// partition work is |Δ-partition|-proportional, not a P-times
/// duplicated prefix scan), and no delegation can arise (workers have
/// no serial order for residual emission; the gate also implies every
/// body atom lives at the evaluating peer, so no remote atom stops
/// evaluation mid-body).
bool PlanRoundEligible(const RulePlan* plan, Symbol self) {
  if (plan == nullptr) return false;
  if (plan->info.CanDelegate(self)) return false;
  const std::vector<Atom>& body = plan->rule.body;
  // A single-atom body compiles without variants (nothing to rotate),
  // but the base plan's Δ-restriction at position 0 already iterates
  // only the Δ — per-partition work is |Δ-partition|-proportional.
  if (body.size() == 1) return true;
  if (plan->delta_variants.size() < body.size()) return false;
  for (size_t pos = 0; pos < body.size(); ++pos) {
    if (body[pos].negated) continue;
    if (!plan->delta_variants[pos].valid) return false;
  }
  return true;
}

/// Pre-builds every relation index `plan`'s access paths probe. The
/// worker evaluators read concurrently and never build; already-built
/// indexes stay current through the replayed inserts (OnInsert), so
/// once per stage is enough.
void PrebuildPlanIndexes(Catalog* catalog, const RulePlan& plan) {
  ForEachIndexUse(plan, [&](Symbol rel_sym, size_t col) {
    Relation* rel = catalog->Get(rel_sym);
    if (rel != nullptr) rel->PrebuildIndex(col);
  });
}

}  // namespace

Engine::ParallelEval* Engine::EnsureParallelEval() {
  if (options_.eval_threads <= 1) return nullptr;
  if (parallel_ == nullptr) {
    parallel_ =
        std::make_unique<ParallelEval>(&catalog_, self_peer_, options_);
  }
  return parallel_.get();
}

Status Engine::LoadProgram(const Program& program,
                           std::vector<uint64_t>* rule_ids) {
  WDL_RETURN_IF_ERROR(ValidateProgram(program, options_.dialect));
  for (const RelationDecl& d : program.declarations) {
    WDL_RETURN_IF_ERROR(DeclareRelation(d));
  }
  for (const Fact& f : program.facts) {
    WDL_RETURN_IF_ERROR(InsertFact(f).status());
  }
  for (const Rule& r : program.rules) {
    WDL_ASSIGN_OR_RETURN(uint64_t id, AddRule(r));
    if (rule_ids != nullptr) rule_ids->push_back(id);
  }
  return Status::OK();
}

Status Engine::DeclareRelation(const RelationDecl& decl) {
  return catalog_.Declare(decl);
}

Status Engine::ValidateNewRule(const Rule& rule) const {
  WDL_RETURN_IF_ERROR(CheckRuleSafety(rule));
  if (rule.head_deletes && rule.head.HasConcreteLocation() &&
      rule.head.peer.name() == self_peer_) {
    const Relation* rel = catalog_.Get(rule.head.relation.name());
    if (rel != nullptr && rel->kind() == RelationKind::kIntensional) {
      return Status::FailedPrecondition(
          "deletion rule targets intensional relation " +
          rule.head.PredicateId() + "; views cannot be deleted from");
    }
  }
  bool negated = false;
  for (const Atom& a : rule.body) negated |= a.negated;
  if (negated && options_.dialect == Dialect::kPaper2013) {
    return Status::Unimplemented(
        "negation is not implemented in the 2013 system (rule: " +
        rule.ToString() + ")");
  }
  if (negated) {
    // The new rule must stratify together with the existing program.
    std::vector<Rule> all;
    all.reserve(rules_.size() + 1);
    for (const InstalledRule& ir : rules_) all.push_back(ir.rule);
    all.push_back(rule);
    WDL_ASSIGN_OR_RETURN(Stratification s, Stratify(all));
    (void)s;
  }
  return Status::OK();
}

void Engine::NoteRuleSetChanged() {
  dirty_ = true;
  rules_changed_ = true;
}

Result<uint64_t> Engine::AddRule(const Rule& rule) {
  WDL_RETURN_IF_ERROR(ValidateNewRule(rule));
  InstalledRule ir;
  ir.id = next_rule_id_++;
  ir.rule = rule;
  ir.origin_peer = self_peer_;
  ir.rule_hash = rule.Hash();
  ir.info = ComputeStaticInfo(rule);
  rules_.push_back(std::move(ir));
  NoteRuleSetChanged();
  return rules_.back().id;
}

Status Engine::RemoveRule(uint64_t id) {
  for (auto it = rules_.begin(); it != rules_.end(); ++it) {
    if (it->id == id) {
      evaluator_.EvictPlan(it->rule);
      rules_.erase(it);
      NoteRuleSetChanged();
      return Status::OK();
    }
  }
  return Status::NotFound("no rule with id " + std::to_string(id));
}

Status Engine::InstallDelegatedRule(const Delegation& delegation) {
  if (delegation.target_peer != self_peer_) {
    return Status::InvalidArgument(StrFormat(
        "delegation targets peer '%s', not '%s'",
        delegation.target_peer.c_str(), self_peer_.c_str()));
  }
  WDL_RETURN_IF_ERROR(ValidateNewRule(delegation.rule));
  uint64_t key = delegation.Key();
  for (const InstalledRule& ir : rules_) {
    if (ir.delegation_key == key) return Status::OK();  // idempotent
  }
  InstalledRule ir;
  ir.id = next_rule_id_++;
  ir.rule = delegation.rule;
  ir.origin_peer = delegation.origin_peer;
  ir.delegation_key = key;
  ir.rule_hash = delegation.rule.Hash();
  ir.info = ComputeStaticInfo(delegation.rule);
  rules_.push_back(std::move(ir));
  NoteRuleSetChanged();
  return Status::OK();
}

void Engine::RetractDelegatedRule(uint64_t delegation_key) {
  dirty_ = true;
  size_t before = rules_.size();
  rules_.erase(std::remove_if(rules_.begin(), rules_.end(),
                              [&](const InstalledRule& ir) {
                                if (ir.delegation_key != delegation_key) {
                                  return false;
                                }
                                evaluator_.EvictPlan(ir.rule);
                                return true;
                              }),
               rules_.end());
  if (rules_.size() != before) NoteRuleSetChanged();
}

Status Engine::RestoreInstalledRule(uint64_t id, const Rule& rule,
                                    const std::string& origin_peer,
                                    uint64_t delegation_key) {
  WDL_RETURN_IF_ERROR(ValidateNewRule(rule));
  InstalledRule ir;
  ir.id = id;
  ir.rule = rule;
  ir.origin_peer = origin_peer;
  ir.delegation_key = delegation_key;
  ir.rule_hash = rule.Hash();
  ir.info = ComputeStaticInfo(rule);
  rules_.push_back(std::move(ir));
  if (id >= next_rule_id_) next_rule_id_ = id + 1;
  NoteRuleSetChanged();
  return Status::OK();
}

void Engine::SetNextRuleId(uint64_t id) {
  if (id > next_rule_id_) next_rule_id_ = id;
}

void Engine::RestoreSliceStream(const std::string& relation,
                                const std::string& sender, uint64_t version,
                                const std::vector<Tuple>& tuples) {
  TupleSet slice;
  slice.reserve(tuples.size());
  for (const Tuple& t : tuples) slice.insert(t);
  slice_store_.RestoreStream(relation, sender, version, std::move(slice));
}

void Engine::RestoreSentContribution(const std::string& target_peer,
                                     const std::string& relation,
                                     uint64_t version,
                                     const std::vector<Tuple>& tuples) {
  SentContribution& sent =
      sent_contributions_[ContributionKey{target_peer, relation}];
  sent.version = version;
  sent.tuples.clear();
  sent.tuples.reserve(tuples.size());
  for (const Tuple& t : tuples) sent.tuples.insert(t);
}

void Engine::RestoreSentDelegation(const Delegation& delegation) {
  sent_delegations_[delegation.Key()] = delegation;
}

void Engine::ApplyShippedDelta(const DerivedDelta& delta) {
  SentContribution& sent = sent_contributions_[ContributionKey{
      delta.target_peer, delta.relation}];
  if (delta.snapshot) {
    // Resync snapshots re-ship the current set at the current version;
    // only a snapshot at-or-ahead of the restored state replaces it.
    if (delta.version < sent.version) return;
    sent.version = delta.version;
    sent.tuples.clear();
    for (const Tuple& t : delta.inserts) sent.tuples.insert(t);
    return;
  }
  // Deltas move the stream base_version -> version; a replayed
  // duplicate (version already reached) must not re-apply.
  if (delta.version <= sent.version) return;
  sent.version = delta.version;
  for (const Tuple& t : delta.deletes) sent.tuples.erase(t);
  for (const Tuple& t : delta.inserts) sent.tuples.insert(t);
}

void Engine::ApplyShippedDelegationRetract(uint64_t delegation_key) {
  sent_delegations_.erase(delegation_key);
}

uint64_t Engine::SentStreamVersion(const std::string& target_peer,
                                   const std::string& relation) const {
  auto it =
      sent_contributions_.find(ContributionKey{target_peer, relation});
  return it == sent_contributions_.end() ? 0 : it->second.version;
}

Result<bool> Engine::InsertFact(const Fact& fact) {
  if (fact.peer != self_peer_) {
    return Status::InvalidArgument("InsertFact of remote fact " +
                                   fact.ToString() +
                                   "; route it through the runtime");
  }
  const Relation* rel = catalog_.Get(fact.relation);
  if (rel != nullptr && rel->kind() == RelationKind::kIntensional) {
    return Status::FailedPrecondition(
        "relation " + fact.PredicateId() +
        " is intensional (a view); base updates are not allowed");
  }
  dirty_ = true;
  Result<bool> r = catalog_.InsertFact(fact);
  if (options_.use_incremental_maintenance && r.ok() && *r) {
    direct_changes_.RecordInsert(fact.relation, fact.args);
  }
  return r;
}

Result<bool> Engine::RemoveFact(const Fact& fact) {
  if (fact.peer != self_peer_) {
    return Status::InvalidArgument("RemoveFact of remote fact " +
                                   fact.ToString());
  }
  const Relation* rel = catalog_.Get(fact.relation);
  if (rel != nullptr && rel->kind() == RelationKind::kIntensional) {
    return Status::FailedPrecondition(
        "relation " + fact.PredicateId() +
        " is intensional (a view); base updates are not allowed");
  }
  dirty_ = true;
  Result<bool> r = catalog_.RemoveFact(fact);
  if (options_.use_incremental_maintenance && r.ok() && *r) {
    direct_changes_.RecordRemove(fact.relation, fact.args);
  }
  return r;
}

void Engine::EnqueueFactInserts(std::vector<Fact> facts) {
  for (Fact& f : facts) inbound_inserts_.push_back(std::move(f));
}

void Engine::EnqueueFactDeletes(std::vector<Fact> facts) {
  for (Fact& f : facts) inbound_deletes_.push_back(std::move(f));
}

void Engine::EnqueueDerivedSet(const std::string& sender, DerivedSet set) {
  // Full-slice sets are version-less snapshots: both protocols flow
  // through one queue so application order matches arrival order.
  InboundDerived in;
  in.sender = sender;
  in.versioned = false;
  in.delta.target_peer = std::move(set.target_peer);
  in.delta.relation = std::move(set.relation);
  in.delta.snapshot = true;
  in.delta.inserts = std::move(set.tuples);
  inbound_derived_.push_back(std::move(in));
}

void Engine::EnqueueDerivedDelta(const std::string& sender,
                                 DerivedDelta delta) {
  InboundDerived in;
  in.sender = sender;
  in.versioned = true;
  in.delta = std::move(delta);
  inbound_derived_.push_back(std::move(in));
}

void Engine::EnqueueResyncRequest(const std::string& peer,
                                  const std::string& relation) {
  pending_resync_serves_.emplace(peer, relation);
  dirty_ = true;  // the snapshot must go out even with no local change
}

void Engine::NoteLinkReset(const std::string& peer) {
  if (peer == self_peer_) return;
  if (options_.preserve_streams_on_reset) {
    // Durable-peer mode: stream versions on both sides survived the
    // restart, so the amnesty below would only buy redundant full
    // snapshots. Delegations still re-ship (installs are idempotent by
    // key and the receiver may genuinely lack one), and any real gap —
    // deltas shipped while the link was down — surfaces through
    // heartbeats and is repaired per stream.
    for (const auto& [dkey, d] : sent_delegations_) {
      if (d.target_peer == peer) pending_delegation_reships_.insert(dkey);
    }
    dirty_ = true;
    return;
  }
  // Outbound: re-ship every stream and delegation held for `peer`, as
  // if it had requested a resync of each.
  for (const auto& [key, sent] : sent_contributions_) {
    if (key.target_peer == peer) {
      pending_resync_serves_.emplace(peer, key.relation);
    }
  }
  for (const auto& [dkey, d] : sent_delegations_) {
    if (d.target_peer == peer) pending_delegation_reships_.insert(dkey);
  }
  // Inbound: version continuity of `peer`'s streams is gone. Forget the
  // positions and ask for fresh snapshots; any snapshot that arrives
  // before the request goes out (version >= 1 against the reset
  // position) heals the stream and suppresses the request.
  for (const std::string& relation :
       slice_store_.RelationsFromSender(peer)) {
    uint64_t& missing = resync_needed_[{peer, relation}];
    missing = std::max<uint64_t>(missing, 1);
  }
  slice_store_.ResetStreamVersions(peer);
  dirty_ = true;  // the re-ships and requests must go out in a stage
}

bool Engine::HasPendingWork() const {
  return dirty_ || !inbound_inserts_.empty() || !inbound_deletes_.empty() ||
         !inbound_derived_.empty() || !pending_resync_serves_.empty() ||
         !pending_delegation_reships_.empty() ||
         !pending_stream_forgets_.empty() ||
         !pending_self_updates_.empty() || !pending_self_deletes_.empty() ||
         !pending_delete_rechecks_.empty() || !ran_any_stage_;
}

void Engine::ApplyInputs(StageStats* stats, bool* changed,
                         StageChangeLog* log) {
  (void)stats;
  // Deferred self-updates from the previous stage land first.
  for (const Fact& f : pending_self_updates_) {
    Result<bool> r = catalog_.InsertFact(f);
    if (!r.ok()) {
      WDL_LOG(Error) << "self-update " << f.ToString()
                     << " failed: " << r.status();
    } else if (*r) {
      *changed = true;
      if (log != nullptr) log->RecordInsert(f.relation, f.args);
    }
  }
  pending_self_updates_.clear();

  for (const Fact& f : pending_self_deletes_) {
    Result<bool> r = catalog_.RemoveFact(f);
    if (r.ok() && *r) {
      *changed = true;
      if (log != nullptr) log->RecordRemove(f.relation, f.args);
    }
  }
  pending_self_deletes_.clear();

  for (const Fact& f : inbound_inserts_) {
    const Relation* rel = catalog_.Get(f.relation);
    if (rel != nullptr && rel->kind() == RelationKind::kIntensional) {
      WDL_LOG(Warning) << "dropping base insert into intensional relation "
                       << f.PredicateId();
      continue;
    }
    Result<bool> r = catalog_.InsertFact(f);
    if (!r.ok()) {
      WDL_LOG(Error) << "inbound insert " << f.ToString()
                     << " failed: " << r.status();
    } else if (*r) {
      *changed = true;
      if (log != nullptr) log->RecordInsert(f.relation, f.args);
    }
  }
  inbound_inserts_.clear();

  for (const Fact& f : inbound_deletes_) {
    if (log != nullptr) {
      // Incremental mode: a base delete aimed at a view has no durable
      // effect (the recompute oracle re-seeds the view in the same
      // stage, netting it out) — skip it instead of corrupting the
      // persistent view state.
      const Relation* rel = catalog_.Get(f.relation);
      if (rel != nullptr && rel->kind() == RelationKind::kIntensional) {
        continue;
      }
    }
    Result<bool> r = catalog_.RemoveFact(f);
    if (r.ok() && *r) {
      *changed = true;
      if (log != nullptr) log->RecordRemove(f.relation, f.args);
    }
  }
  inbound_deletes_.clear();

  for (InboundDerived& in : inbound_derived_) {
    ApplyInboundDerived(in, changed, log);
  }
  inbound_derived_.clear();
}

void Engine::ApplyInboundDerived(InboundDerived& in, bool* changed,
                                 StageChangeLog* log) {
  DerivedDelta& d = in.delta;

  // Version-only heartbeat (version == base_version, no payload): the
  // sender is telling us where its stream stands. If we have applied
  // less, a frame was lost and no later traffic repaired it — ask for a
  // resync; otherwise ignore. Never commits a version or applies data.
  if (in.versioned && !d.snapshot && d.version == d.base_version) {
    if (slice_store_.StreamVersion(d.relation, in.sender) < d.version) {
      uint64_t& missing = resync_needed_[{in.sender, d.relation}];
      missing = std::max(missing, d.version);
      ++prop_counters_.heartbeat_gaps_detected;
    }
    return;
  }

  Relation* rel = catalog_.Get(d.relation);
  if (rel == nullptr) {
    // A peer is telling us about a relation we do not know yet: the
    // paper's "peers may discover new relations". Create it as
    // extensional with inferred arity. A tuple-less update to an
    // unknown relation has nothing to create or apply — but a
    // *versioned* one still moves the stream: without the commit, an
    // empty resync snapshot would leave the applied version behind and
    // every later heartbeat would re-request the same resync forever.
    if (d.inserts.empty()) {
      if (in.versioned) {
        SliceStore::Gate gate =
            d.snapshot
                ? slice_store_.CheckSnapshot(d.relation, in.sender, d.version)
                : slice_store_.CheckDelta(d.relation, in.sender,
                                          d.base_version, d.version);
        if (gate == SliceStore::Gate::kApply) {
          if (d.snapshot) ++prop_counters_.snapshots_applied;
          slice_store_.CommitVersion(d.relation, in.sender, d.version);
        } else if (gate == SliceStore::Gate::kGap) {
          uint64_t& missing = resync_needed_[{in.sender, d.relation}];
          missing = std::max(missing, d.version);
        }
      }
      return;
    }
    RelationDecl decl;
    decl.relation = d.relation;
    decl.peer = self_peer_;
    decl.kind = RelationKind::kExtensional;
    decl.columns.resize(d.inserts[0].size());
    for (size_t i = 0; i < decl.columns.size(); ++i) {
      decl.columns[i].name = "c" + std::to_string(i);
    }
    Status st = catalog_.Declare(decl);
    if (!st.ok()) {
      WDL_LOG(Error) << "auto-declare failed: " << st;
      return;
    }
    rel = catalog_.Get(d.relation);
  }

  if (rel->kind() == RelationKind::kExtensional) {
    // Updates are persistent: union-insert, never delete. Inserts apply
    // regardless of stream position (monotone, so replays and gapped
    // deltas can only add facts the sender really derived); the version
    // gate below only decides bookkeeping and gap repair.
    for (Tuple& t : d.inserts) {
      // Copy instead of move when recording: the change log needs the
      // tuple after a successful insert.
      Result<bool> r =
          log != nullptr ? rel->Insert(t) : rel->Insert(std::move(t));
      if (!r.ok()) {
        WDL_LOG(Error) << "inbound derived tuple rejected by "
                       << rel->decl().PredicateId() << ": " << r.status();
      } else if (*r) {
        *changed = true;
        if (log != nullptr) log->RecordInsert(d.relation, t);
      }
    }
    if (in.versioned) {
      SliceStore::Gate gate =
          d.snapshot
              ? slice_store_.CheckSnapshot(d.relation, in.sender, d.version)
              : slice_store_.CheckDelta(d.relation, in.sender,
                                        d.base_version, d.version);
      if (gate == SliceStore::Gate::kApply) {
        if (d.snapshot) ++prop_counters_.snapshots_applied;
        slice_store_.CommitVersion(d.relation, in.sender, d.version);
      } else if (gate == SliceStore::Gate::kGap) {
        uint64_t& missing = resync_needed_[{in.sender, d.relation}];
        missing = std::max(missing, d.version);
      }
    }
    return;
  }

  // View semantics: the update targets this sender's slice. Only
  // schema-valid tuples enter the slice (invalid ones could never seed
  // the view anyway).
  auto filtered = [&](std::vector<Tuple>& tuples) {
    TupleSet set;
    set.reserve(tuples.size());
    for (Tuple& t : tuples) {
      if (rel->CheckTuple(t).ok()) set.insert(std::move(t));
    }
    return set;
  };

  // Support transitions (view membership gained/lost) feed the
  // incremental maintenance log; the recompute oracle re-seeds views
  // from the aggregate support map instead and skips the bookkeeping.
  std::vector<Tuple> gained_storage, lost_storage;
  std::vector<Tuple>* gained = log != nullptr ? &gained_storage : nullptr;
  std::vector<Tuple>* lost = log != nullptr ? &lost_storage : nullptr;
  auto record_transitions = [&]() {
    if (log == nullptr) return;
    for (Tuple& t : gained_storage) {
      log->RecordSliceGain(d.relation, std::move(t));
    }
    for (Tuple& t : lost_storage) {
      log->RecordSliceLoss(d.relation, std::move(t));
    }
  };

  if (!in.versioned) {
    // Full-slice protocol: replace wholesale. Change detection compares
    // the stored and arriving sets directly — a hash collision must
    // never suppress a real view change.
    *changed |= slice_store_.ReplaceSlice(d.relation, in.sender,
                                          filtered(d.inserts), gained, lost);
    record_transitions();
    return;
  }

  SliceStore::Gate gate =
      d.snapshot
          ? slice_store_.CheckSnapshot(d.relation, in.sender, d.version)
          : slice_store_.CheckDelta(d.relation, in.sender, d.base_version,
                                    d.version);
  switch (gate) {
    case SliceStore::Gate::kApply:
      if (d.snapshot) {
        ++prop_counters_.snapshots_applied;
        *changed |= slice_store_.ApplySnapshot(d.relation, in.sender,
                                               filtered(d.inserts),
                                               d.version, gained, lost);
      } else {
        // Validate in place; ApplyDelta dedups per tuple itself.
        d.inserts.erase(
            std::remove_if(d.inserts.begin(), d.inserts.end(),
                           [&](const Tuple& t) {
                             return !rel->CheckTuple(t).ok();
                           }),
            d.inserts.end());
        *changed |= slice_store_.ApplyDelta(d.relation, in.sender,
                                            std::move(d.inserts),
                                            d.deletes, d.version, gained,
                                            lost);
      }
      record_transitions();
      break;
    case SliceStore::Gate::kStale:
      break;  // duplicate or reordered-old update: already reflected
    case SliceStore::Gate::kGap: {
      // A predecessor was lost; applying would corrupt the slice. Ask
      // the sender for a snapshot instead (step 3 ships the request).
      uint64_t& missing = resync_needed_[{in.sender, d.relation}];
      missing = std::max(missing, d.version);
      break;
    }
  }
}

void Engine::ClearIntensionalRelations() {
  catalog_.ForEachRelation([](Relation& rel) {
    if (rel.kind() == RelationKind::kIntensional) rel.Clear();
  });
}

void Engine::SeedIntensionalFromContributions(bool track_support) {
  slice_store_.ForEachContributedRelation([&](const std::string& name) {
    Relation* rel = catalog_.Get(name);
    if (rel == nullptr || rel->kind() != RelationKind::kIntensional) return;
    slice_store_.ForEachContribution(name, [&](const Tuple& t) {
      Result<bool> r = rel->Insert(t);
      if (!r.ok()) {
        WDL_LOG(Warning) << "contribution tuple rejected: " << r.status();
        return;
      }
      if (track_support) tracker_.Ensure(name, t).external = true;
    });
  });
}

void Engine::RunFixpoint(
    StageStats* stats, std::map<ContributionKey, TupleSet>* contributions,
    std::map<uint64_t, Delegation>* delegations,
    std::unordered_set<Fact, FactHasher>* self_updates,
    std::unordered_set<Fact, FactHasher>* self_deletes,
    std::unordered_set<Fact, FactHasher>* remote_deletes,
    DerivationTracker* tracker) {
  // Stratify the active rule set (single stratum when negation-free).
  std::vector<Rule> rule_bodies;
  rule_bodies.reserve(rules_.size());
  for (const InstalledRule& ir : rules_) rule_bodies.push_back(ir.rule);
  Stratification strat;
  Result<Stratification> strat_result = Stratify(rule_bodies);
  if (strat_result.ok()) {
    strat = std::move(strat_result).value();
  } else {
    // A delegated rule may have broken stratification after install
    // validation (dynamic arrivals); fall back to one stratum and log.
    WDL_LOG(Error) << "stratification failed; evaluating in one stratum: "
                   << strat_result.status();
    strat.rule_stratum.assign(rules_.size(), 0);
    strat.num_strata = 1;
  }
  stats->strata = strat.num_strata;

  // The evaluator (and its plan cache) lives across stages; stage stats
  // report the delta of its cumulative counters.
  uint64_t tuples_before = evaluator_.counters().tuples_examined;

  for (int stratum = 0; stratum < strat.num_strata; ++stratum) {
    // Resolve each active rule's compiled plan once per stage; the
    // iteration loops below re-drive the plan directly instead of
    // re-hashing the rule through the cache every call. `plan` stays
    // null on the interpreter path.
    struct ActiveRule {
      const Rule* rule;
      const RulePlan* plan;
    };
    std::vector<ActiveRule> active;
    for (size_t i = 0; i < rules_.size(); ++i) {
      if (strat.rule_stratum[i] != stratum) continue;
      const Rule& rule = rules_[i].rule;
      active.push_back(ActiveRule{
          &rule, options_.use_compiled_plans ? &evaluator_.PlanFor(rule)
                                             : nullptr});
    }
    if (active.empty()) continue;

    DeltaMap delta;      // tuples new in the previous iteration
    DeltaMap next_delta; // tuples new in this iteration

    // Set per evaluation: whether the rule being evaluated is a
    // deletion rule (its head derivations remove instead of insert).
    bool current_rule_deletes = false;

    RuleEvaluator::Sinks sinks;
    sinks.on_local_fact = [&](const Fact& f) {
      Relation* rel = catalog_.Get(f.relation);
      bool intensional =
          rel != nullptr && rel->kind() == RelationKind::kIntensional;
      if (current_rule_deletes) {
        if (intensional) {
          WDL_LOG(Warning) << "deletion rule derived into view "
                           << f.PredicateId() << "; dropped";
        } else if (rel != nullptr && rel->Contains(f.args)) {
          self_deletes->insert(f);  // deferred, Bud's <-
        }
        return;
      }
      if (intensional) {
        // Every derivation event marks rule support, including events
        // for tuples already resident (slice-seeded or re-derived):
        // semi-naive evaluation fires each valid derivation at least
        // once, so after the fixpoint the derived bit is exact.
        if (tracker != nullptr) {
          tracker->Ensure(f.relation, f.args).derived = true;
        }
        Result<bool> r = rel->Insert(f.args);
        if (r.ok() && *r) {
          next_delta[rel->symbol()].Insert(f.args);
          ++stats->local_derivations;
        }
      } else {
        // Local update rule: deferred to the next stage (Bud's <+).
        if (rel == nullptr || !rel->Contains(f.args)) {
          self_updates->insert(f);
        }
      }
    };
    sinks.on_remote_fact = [&](const Fact& f) {
      if (current_rule_deletes) {
        remote_deletes->insert(f);
      } else {
        (*contributions)[ContributionKey{f.peer, f.relation}].insert(
            f.args);
      }
    };
    sinks.on_delegation = [&](const Delegation& d) {
      delegations->emplace(d.Key(), d);
    };

    auto evaluate = [&](const ActiveRule& ar, const DeltaMap* d, int pos) {
      current_rule_deletes = ar.rule->head_deletes;
      if (ar.plan != nullptr) {
        evaluator_.EvaluatePlan(*ar.plan, d, pos, sinks);
      } else {
        evaluator_.Evaluate(*ar.rule, d, pos, sinks);
      }
    };

    // Iteration 1: full evaluation.
    int iterations = 1;
    for (const ActiveRule& ar : active) evaluate(ar, nullptr, -1);

    if (options_.mode == EvalMode::kNaive) {
      // Naive: re-run everything until no new local facts appear.
      while (!next_delta.empty() &&
             iterations < options_.max_fixpoint_iterations) {
        next_delta.clear();
        ++iterations;
        for (const ActiveRule& ar : active) evaluate(ar, nullptr, -1);
      }
    } else {
      // Semi-naive: only join against the Δ of the previous iteration.
      // When eval_threads > 1, the round-eligible rules run
      // Δ-partitioned across the engine's worker pool with buffered
      // emissions replayed through the sinks above (DESIGN.md §8);
      // ineligible rules (delegation-capable, non-rotatable body) run
      // the serial loop against the same frozen Δ after the replay
      // barrier — a per-*rule* fallback, so one such rule no longer
      // forces the whole round off the parallel path. The serial loop
      // stays the oracle and the no-eligible-rules fallback.
      ParallelEval* par = nullptr;
      std::vector<ParallelEval::ParallelRule> prules;
      std::vector<const ActiveRule*> serial_rules;
      if (options_.eval_threads > 1 && options_.use_compiled_plans) {
        std::vector<const ActiveRule*> eligible;
        for (const ActiveRule& ar : active) {
          (PlanRoundEligible(ar.plan, self_sym_) ? eligible : serial_rules)
              .push_back(&ar);
        }
        if (!eligible.empty()) par = EnsureParallelEval();
        if (par != nullptr) {
          prules.reserve(eligible.size());
          for (const ActiveRule* ar : eligible) {
            prules.push_back(
                ParallelEval::ParallelRule{ar->plan, ar->rule->head_deletes});
            PrebuildPlanIndexes(&catalog_, *ar->plan);
          }
        } else {
          serial_rules.clear();  // plain serial loop covers everything
        }
      }
      auto replay_fact = [&](uint32_t r, bool remote, const Fact& f) {
        current_rule_deletes = prules[r].deletes;
        if (remote) {
          sinks.on_remote_fact(f);
        } else {
          sinks.on_local_fact(f);
        }
      };
      auto replay_delegation = [&](const Delegation& d) {
        sinks.on_delegation(d);
      };
      while (!next_delta.empty() &&
             iterations < options_.max_fixpoint_iterations) {
        delta = std::move(next_delta);
        next_delta = DeltaMap();
        ++iterations;
        if (par != nullptr) {
          ++evaluator_.mutable_counters()->parallel_rounds;
          if (!serial_rules.empty()) {
            ++evaluator_.mutable_counters()->parallel_mixed_rounds;
          }
          par->RunRound(prules, delta, replay_fact, replay_delegation,
                        evaluator_.mutable_counters());
          // Ineligible rules see the same frozen Δ, on the driving
          // thread, after the parallel replay (emissions land in
          // order-independent sets/maps, and semi-naive finds any
          // derivation enabled by this round's parallel inserts at most
          // one round later — same fixpoint as all-serial).
          for (const ActiveRule* ar : serial_rules) {
            for (size_t pos = 0; pos < ar->rule->body.size(); ++pos) {
              if (ar->rule->body[pos].negated) continue;
              evaluate(*ar, &delta, static_cast<int>(pos));
            }
          }
          continue;
        }
        for (const ActiveRule& ar : active) {
          for (size_t pos = 0; pos < ar.rule->body.size(); ++pos) {
            if (ar.rule->body[pos].negated) continue;
            evaluate(ar, &delta, static_cast<int>(pos));
          }
        }
      }
    }
    if (iterations >= options_.max_fixpoint_iterations) {
      WDL_LOG(Error) << "fixpoint iteration limit reached at peer "
                     << self_peer_;
    }
    stats->iterations += iterations;
  }
  stats->tuples_examined =
      evaluator_.counters().tuples_examined - tuples_before;
}

namespace {
std::vector<Tuple> SortedVector(
    const std::unordered_set<Tuple, TupleHasher>& set) {
  std::vector<Tuple> out(set.begin(), set.end());
  std::sort(out.begin(), out.end());  // deterministic wire
  return out;
}
}  // namespace

void Engine::ClearDeleteSuppression(const std::string& relation,
                                    const std::string& peer,
                                    const Tuple& tuple) {
  Fact f(relation, peer, tuple);
  if (sent_remote_deletes_.erase(f) == 0) return;
  // The fact went out as an insert after we had shipped its deletion:
  // if a deletion rule still derives it, the deletion must ship again.
  // The next stage settles the verdict — the recompute oracle re-fires
  // every deletion rule there anyway; the incremental path re-checks
  // exactly the queued facts.
  pending_delete_rechecks_.insert(std::move(f));
  dirty_ = true;
}

/// Contribution sets ship only when they changed — decided by direct
/// set comparison against what was last sent (hash-collision-proof).
/// Under full-slice the whole contribution is re-sent; under the
/// differential protocol only the inserts/deletes against the last-sent
/// state go out, with stream versions so the receiver can order them.
/// An emptied contribution ships once (as an empty set, or as a delta
/// deleting the remainder) so the receiver clears its slice.
void Engine::EmitContributions(
    std::map<ContributionKey, TupleSet>* contributions,
    StageResult* result) {
  const bool differential = options_.use_differential_propagation;

  // Vanished contributions first: keys we shipped before that this
  // stage derived nothing for.
  for (auto& [key, sent] : sent_contributions_) {
    if (contributions->count(key) || sent.tuples.empty()) continue;
    if (differential) {
      DerivedDelta dd;
      dd.target_peer = key.target_peer;
      dd.relation = key.relation;
      dd.base_version = sent.version;
      dd.version = sent.version + 1;
      dd.deletes = SortedVector(sent.tuples);
      result->stats.derived_tuples_out += dd.deletes.size();
      prop_counters_.delta_deletes_shipped += dd.deletes.size();
      ++prop_counters_.deltas_shipped;
      result->outbound[key.target_peer].derived_deltas.push_back(
          std::move(dd));
    } else {
      DerivedSet empty_set;
      empty_set.target_peer = key.target_peer;
      empty_set.relation = key.relation;
      ++prop_counters_.full_sets_shipped;
      result->outbound[key.target_peer].derived_sets.push_back(
          std::move(empty_set));
    }
    sent.tuples.clear();
    ++sent.version;
  }

  // Changed contributions.
  for (auto& [key, set] : *contributions) {
    SentContribution& sent = sent_contributions_[key];
    if (sent.tuples == set) continue;  // unchanged, stay silent
    if (differential) {
      DerivedDelta dd;
      dd.target_peer = key.target_peer;
      dd.relation = key.relation;
      dd.base_version = sent.version;
      dd.version = sent.version + 1;
      for (const Tuple& t : set) {
        if (!sent.tuples.count(t)) dd.inserts.push_back(t);
      }
      for (const Tuple& t : sent.tuples) {
        if (!set.count(t)) dd.deletes.push_back(t);
      }
      std::sort(dd.inserts.begin(), dd.inserts.end());
      std::sort(dd.deletes.begin(), dd.deletes.end());
      for (const Tuple& t : dd.inserts) {
        ClearDeleteSuppression(key.relation, key.target_peer, t);
      }
      result->stats.derived_tuples_out +=
          dd.inserts.size() + dd.deletes.size();
      prop_counters_.delta_inserts_shipped += dd.inserts.size();
      prop_counters_.delta_deletes_shipped += dd.deletes.size();
      ++prop_counters_.deltas_shipped;
      result->outbound[key.target_peer].derived_deltas.push_back(
          std::move(dd));
    } else {
      DerivedSet ds;
      ds.target_peer = key.target_peer;
      ds.relation = key.relation;
      ds.tuples = SortedVector(set);
      // The full set re-sends every tuple as an insert; each one lands
      // at the receiver again, so each one lifts its suppression.
      for (const Tuple& t : ds.tuples) {
        ClearDeleteSuppression(key.relation, key.target_peer, t);
      }
      result->stats.derived_tuples_out += ds.tuples.size();
      prop_counters_.full_tuples_shipped += ds.tuples.size();
      ++prop_counters_.full_sets_shipped;
      result->outbound[key.target_peer].derived_sets.push_back(
          std::move(ds));
    }
    sent.tuples = std::move(set);
    ++sent.version;
  }

  ServeResyncs(result);
}

/// The O(change) emission path of incremental stages: only keys whose
/// contribution actually changed this stage are visited, and the delta
/// payload comes straight from the recorded per-stage changes instead
/// of a full set diff.
void Engine::EmitContributionsIncremental(
    std::map<ContributionKey, TupleSet>* contrib_added,
    std::map<ContributionKey, TupleSet>* contrib_removed,
    StageResult* result) {
  const bool differential = options_.use_differential_propagation;
  std::set<ContributionKey> dirty;
  for (const auto& [key, tuples] : *contrib_added) {
    if (!tuples.empty()) dirty.insert(key);
  }
  for (const auto& [key, tuples] : *contrib_removed) {
    if (!tuples.empty()) dirty.insert(key);
  }

  for (const ContributionKey& key : dirty) {
    SentContribution& sent = sent_contributions_[key];
    TupleSet& adds = (*contrib_added)[key];
    TupleSet& rems = (*contrib_removed)[key];
    if (differential) {
      DerivedDelta dd;
      dd.target_peer = key.target_peer;
      dd.relation = key.relation;
      dd.base_version = sent.version;
      dd.version = sent.version + 1;
      dd.inserts = SortedVector(adds);
      dd.deletes = SortedVector(rems);
      for (const Tuple& t : dd.inserts) {
        sent.tuples.insert(t);
        ClearDeleteSuppression(key.relation, key.target_peer, t);
      }
      for (const Tuple& t : dd.deletes) sent.tuples.erase(t);
      result->stats.derived_tuples_out +=
          dd.inserts.size() + dd.deletes.size();
      prop_counters_.delta_inserts_shipped += dd.inserts.size();
      prop_counters_.delta_deletes_shipped += dd.deletes.size();
      ++prop_counters_.deltas_shipped;
      result->outbound[key.target_peer].derived_deltas.push_back(
          std::move(dd));
    } else {
      DerivedSet ds;
      ds.target_peer = key.target_peer;
      ds.relation = key.relation;
      auto it = current_contributions_.find(key);
      if (it != current_contributions_.end()) {
        ds.tuples = SortedVector(it->second);
        sent.tuples = it->second;
      } else {
        sent.tuples.clear();
      }
      for (const Tuple& t : ds.tuples) {
        ClearDeleteSuppression(key.relation, key.target_peer, t);
      }
      result->stats.derived_tuples_out += ds.tuples.size();
      prop_counters_.full_tuples_shipped += ds.tuples.size();
      ++prop_counters_.full_sets_shipped;
      result->outbound[key.target_peer].derived_sets.push_back(
          std::move(ds));
    }
    ++sent.version;
    // Emptied contributions leave the current map (mirrors the
    // recompute path, where an underived key simply stops appearing).
    auto cur = current_contributions_.find(key);
    if (cur != current_contributions_.end() && cur->second.empty()) {
      current_contributions_.erase(cur);
    }
  }

  ServeResyncs(result);
}

void Engine::ServeResyncs(StageResult* result) {
  // Serve resync requests: a full snapshot of the current contribution
  // at its current version (possibly just updated by contribution
  // emission — if a regular delta for the same key also shipped this
  // stage, the snapshot subsumes it at the receiver).
  for (const auto& [peer, relation] : pending_resync_serves_) {
    ContributionKey key{peer, relation};
    DerivedDelta dd;
    dd.snapshot = true;
    dd.target_peer = peer;
    dd.relation = relation;
    auto it = sent_contributions_.find(key);
    if (it != sent_contributions_.end()) {
      dd.version = it->second.version;
      dd.inserts = SortedVector(it->second.tuples);
    }
    // A snapshot re-ships every tuple as an insert, exactly like a full
    // set: each one lands at the receiver again and lifts any pending
    // delete suppression for that fact.
    for (const Tuple& t : dd.inserts) {
      ClearDeleteSuppression(relation, peer, t);
    }
    result->stats.derived_tuples_out += dd.inserts.size();
    ++prop_counters_.snapshots_shipped;
    result->outbound[peer].derived_deltas.push_back(std::move(dd));
  }
  pending_resync_serves_.clear();

  // Re-ship delegations whose target's link was reset: the target may
  // have restarted and lost the installed rule. Installs are
  // idempotent by delegation key, so a target that kept the rule is
  // unaffected.
  for (uint64_t key : pending_delegation_reships_) {
    auto it = sent_delegations_.find(key);
    if (it == sent_delegations_.end()) continue;  // retracted since
    result->outbound[it->second.target_peer].delegation_installs.push_back(
        it->second);
  }
  pending_delegation_reships_.clear();

  // Tell former senders to forget streams for relations dropped here,
  // so a recycled scratch name starts from version 0 on both ends
  // instead of eating a gap->resync round trip on first reuse.
  for (const auto& [sender, relation] : pending_stream_forgets_) {
    result->outbound[sender].stream_forgets.push_back(relation);
  }
  pending_stream_forgets_.clear();

  // And raise our own: gaps detected while applying inbound deltas —
  // unless a later message of the same batch (duplicate, reordered
  // original, snapshot) already advanced the stream past the missing
  // update, in which case the gap healed itself.
  for (const auto& [key, missing_version] : resync_needed_) {
    const auto& [sender, relation] = key;
    if (slice_store_.StreamVersion(relation, sender) >= missing_version) {
      continue;
    }
    result->outbound[sender].resync_requests.push_back(relation);
    ++prop_counters_.resyncs_requested;
  }
  resync_needed_.clear();
}

void Engine::EmitDelegationDiff(std::map<uint64_t, Delegation> delegations,
                                StageResult* result) {
  for (const auto& [key, d] : delegations) {
    if (!sent_delegations_.count(key)) {
      result->outbound[d.target_peer].delegation_installs.push_back(d);
    }
  }
  for (const auto& [key, d] : sent_delegations_) {
    if (!delegations.count(key)) {
      result->outbound[d.target_peer].delegation_retracts.push_back(key);
    }
  }
  sent_delegations_ = std::move(delegations);
  result->stats.delegations_active = sent_delegations_.size();
}

void Engine::FinalizeOutbound(StageResult* result) {
  for (auto it = result->outbound.begin(); it != result->outbound.end();) {
    if (it->second.empty()) {
      it = result->outbound.erase(it);
    } else {
      result->stats.messages_out += it->second.MessageCount();
      ++it;
    }
  }
}

uint64_t Engine::IntensionalContentHash() const {
  uint64_t h = 0;
  TupleHasher hasher;
  for (const std::string& name : catalog_.RelationNames()) {
    const Relation* rel = catalog_.Get(name);
    if (rel->kind() != RelationKind::kIntensional) continue;
    uint64_t rel_hash = HashString(name);
    rel->ForEach([&](const Tuple& t) { rel_hash ^= hasher(t) | 1; });
    h = HashCombine(h, rel_hash);
  }
  return h;
}

void Engine::RefreshProgramInfo() {
  program_info_ = ProgramInfo();
  // The naive-mode ablation measures full-fixpoint cost; Δ-driven
  // stages would bypass exactly what it measures.
  program_info_.incremental_ok = options_.mode == EvalMode::kSemiNaive;
  bool any_negation = false;
  for (const InstalledRule& ir : rules_) {
    if (ir.info.negated_relation_var) {
      // A negated atom that names its relation with a variable can read
      // any relation: no change is provably outside its footprint.
      program_info_.incremental_ok = false;
      any_negation = true;
    }
    for (Symbol s : ir.info.negated_relations) {
      any_negation = true;
      program_info_.negated_ids.insert(s.id());
    }
  }
  if (any_negation) {
    // Derivations must never write a negated relation, or stratified
    // re-evaluation order matters mid-Δ and the incremental pass is
    // unsound. Direct EDB changes to negated relations are caught per
    // stage in ChangesEligible.
    for (const InstalledRule& ir : rules_) {
      if (ir.info.head_relation_var ||
          program_info_.negated_ids.count(ir.info.head_relation.id())) {
        program_info_.incremental_ok = false;
        break;
      }
    }
  }
}

bool Engine::ChangesEligible(const StageChangeLog& log) const {
  if (log.empty()) return true;  // nothing to propagate: trivially sound
  if (!program_info_.incremental_ok) return false;
  bool ok = true;
  log.ForEachChangedRelation([&](const std::string& name) {
    Symbol s = Symbol::Find(name);
    if (s.valid() && program_info_.negated_ids.count(s.id())) ok = false;
  });
  return ok;
}

bool Engine::HasLocalDerivation(const Fact& target) {
  for (const InstalledRule& ir : rules_) {
    if (ir.rule.head_deletes) continue;
    if (evaluator_.ExistsDerivation(ir.rule, target)) return true;
  }
  return false;
}

StageResult Engine::RunStage() {
  StageResult result;
  result.stats.active_rules = rules_.size();
  ran_any_stage_ = true;
  dirty_ = false;

  const bool rule_set_changed = rules_changed_;
  if (rule_set_changed) {
    RefreshProgramInfo();
    rules_changed_ = false;
  }

  bool changed_local = false;
  if (!options_.use_incremental_maintenance) {
    // Step 1: load inputs received since the previous stage.
    ApplyInputs(&result.stats, &changed_local, nullptr);
    RunStageRecompute(&result, changed_local,
                      /*rebuild_derived_state=*/false);
    return result;
  }

  StageChangeLog log = std::move(direct_changes_);
  direct_changes_ = StageChangeLog();
  ApplyInputs(&result.stats, &changed_local, &log);

  if (!derived_state_ready_ || rule_set_changed || !ChangesEligible(log)) {
    RunStageRecompute(&result, changed_local, /*rebuild_derived_state=*/true);
  } else {
    RunStageIncremental(&result, changed_local, &log);
  }
  return result;
}

void Engine::RunStageRecompute(StageResult* result, bool changed_local,
                               bool rebuild_derived_state) {
  DerivationTracker* tracker = nullptr;
  uint64_t pre_hash = 0;
  // A full fixpoint re-derives every deletion-rule verdict, so the
  // queued per-fact rechecks are subsumed (this path *is* the oracle
  // behavior the rechecks emulate).
  pending_delete_rechecks_.clear();
  if (rebuild_derived_state) {
    ++evaluator_.mutable_counters()->stages_full;
    pre_hash = IntensionalContentHash();
    tracker_.Clear();
    tracker = &tracker_;
  }

  // Step 2: local fixpoint. Intensional relations are views: reset, then
  // re-seed with remote contributions, then derive.
  ClearIntensionalRelations();
  SeedIntensionalFromContributions(/*track_support=*/tracker != nullptr);

  std::map<ContributionKey, TupleSet> contributions;
  std::map<uint64_t, Delegation> delegations;
  std::unordered_set<Fact, FactHasher> self_updates;
  std::unordered_set<Fact, FactHasher> self_deletes;
  std::unordered_set<Fact, FactHasher> remote_deletes;
  RunFixpoint(&result->stats, &contributions, &delegations, &self_updates,
              &self_deletes, &remote_deletes, tracker);

  pending_self_updates_ = std::move(self_updates);
  pending_self_deletes_ = std::move(self_deletes);

  // Remote deletions ship once per unique fact (idempotent at the
  // receiver; re-sending is pure waste until an insert re-ships it).
  for (const Fact& f : remote_deletes) {
    if (sent_remote_deletes_.insert(f).second) {
      result->outbound[f.peer].fact_deletes.push_back(f);
    }
  }

  if (rebuild_derived_state) {
    // Snapshot the derived outputs before emission consumes them: they
    // are the baseline the next incremental stages evolve.
    current_contributions_ = contributions;
    current_delegations_ = delegations;
  }

  // Step 3: emit facts (updates) and rules (delegations) to other peers.
  EmitContributions(&contributions, result);
  EmitDelegationDiff(std::move(delegations), result);
  FinalizeOutbound(result);

  bool views_changed;
  uint64_t intensional_hash = IntensionalContentHash();
  if (rebuild_derived_state) {
    // Incremental stages don't maintain the cross-stage hash, so a
    // fallback stage compares its own before/after states instead.
    views_changed = intensional_hash != pre_hash;
    derived_state_ready_ = true;
  } else {
    views_changed = intensional_hash != prev_intensional_hash_;
  }
  prev_intensional_hash_ = intensional_hash;

  result->changed = changed_local || views_changed ||
                    !result->outbound.empty() ||
                    !pending_self_updates_.empty() ||
                    !pending_self_deletes_.empty() ||
                    !pending_delete_rechecks_.empty();
}

void Engine::RunStageIncremental(StageResult* result, bool changed_local,
                                 StageChangeLog* log) {
  EvalCounters* counters = evaluator_.mutable_counters();
  ++counters->stages_incremental;
  StageStats* stats = &result->stats;
  uint64_t tuples_before = evaluator_.counters().tuples_examined;
  bool state_mutated = false;

  // Per-stage contribution changes, netted (a tuple removed by the
  // deletion cascade and restored by re-derivation or the insert pass
  // must not ship at all).
  std::map<ContributionKey, TupleSet> contrib_added;
  std::map<ContributionKey, TupleSet> contrib_removed;
  auto record_contrib_add = [&](const ContributionKey& key, const Tuple& t) {
    auto it = contrib_removed.find(key);
    if (it != contrib_removed.end() && it->second.erase(t) > 0) return;
    contrib_added[key].insert(t);
  };
  auto record_contrib_remove = [&](const ContributionKey& key,
                                   const Tuple& t) {
    auto it = contrib_added.find(key);
    if (it != contrib_added.end() && it->second.erase(t) > 0) return;
    contrib_removed[key].insert(t);
  };

  std::unordered_set<Fact, FactHasher> self_updates;
  std::unordered_set<Fact, FactHasher> self_deletes;
  std::unordered_set<Fact, FactHasher> remote_deletes;

  // Resolve each active rule's compiled plan once (mirrors RunFixpoint).
  struct ActiveRule {
    const InstalledRule* ir;
    const RulePlan* plan;
  };
  std::vector<ActiveRule> active;
  active.reserve(rules_.size());
  for (const InstalledRule& ir : rules_) {
    active.push_back(ActiveRule{
        &ir, options_.use_compiled_plans ? &evaluator_.PlanFor(ir.rule)
                                         : nullptr});
  }
  auto body_reads_delta = [](const ActiveRule& ar, const DeltaMap& delta) {
    for (const auto& [sym, ds] : delta) {
      if (!ds.empty() && ar.ir->info.BodyReads(sym)) return true;
    }
    return false;
  };

  bool current_rule_deletes = false;
  DeltaMap next_delta;

  // The forward (insert) sinks: also used by the full re-fires below —
  // every action is idempotent against resident state.
  RuleEvaluator::Sinks sinks;
  sinks.on_local_fact = [&](const Fact& f) {
    Relation* rel = catalog_.Get(f.relation);
    bool intensional =
        rel != nullptr && rel->kind() == RelationKind::kIntensional;
    if (current_rule_deletes) {
      if (intensional) {
        WDL_LOG(Warning) << "deletion rule derived into view "
                         << f.PredicateId() << "; dropped";
      } else if (rel != nullptr && rel->Contains(f.args)) {
        self_deletes.insert(f);  // deferred, Bud's <-
      }
      return;
    }
    if (intensional) {
      tracker_.Ensure(f.relation, f.args).derived = true;
      Result<bool> r = rel->Insert(f.args);
      if (r.ok() && *r) {
        next_delta[rel->symbol()].Insert(f.args);
        ++stats->local_derivations;
        state_mutated = true;
      }
    } else if (rel == nullptr || !rel->Contains(f.args)) {
      self_updates.insert(f);  // deferred, Bud's <+
    }
  };
  sinks.on_remote_fact = [&](const Fact& f) {
    if (current_rule_deletes) {
      remote_deletes.insert(f);
      return;
    }
    ContributionKey key{f.peer, f.relation};
    if (current_contributions_[key].insert(f.args).second) {
      record_contrib_add(key, f.args);
    }
  };
  bool delegations_changed = false;
  sinks.on_delegation = [&](const Delegation& d) {
    delegations_changed |= current_delegations_.emplace(d.Key(), d).second;
  };

  auto evaluate = [&](const ActiveRule& ar, const RuleEvaluator::Sinks& s,
                      const DeltaMap* delta, int pos) {
    current_rule_deletes = ar.ir->rule.head_deletes;
    if (ar.plan != nullptr) {
      evaluator_.EvaluatePlan(*ar.plan, delta, pos, s);
    } else {
      evaluator_.Evaluate(ar.ir->rule, delta, pos, s);
    }
  };
  auto evaluate_delta_positions = [&](const ActiveRule& ar,
                                      const RuleEvaluator::Sinks& s,
                                      const DeltaMap* delta) {
    const Rule& rule = ar.ir->rule;
    for (size_t pos = 0; pos < rule.body.size(); ++pos) {
      if (rule.body[pos].negated) continue;
      evaluate(ar, s, delta, static_cast<int>(pos));
    }
  };

  // ---- Deletion-verdict rechecks queued by insert re-ships ----------
  for (const Fact& f : pending_delete_rechecks_) {
    for (const ActiveRule& ar : active) {
      if (!ar.ir->rule.head_deletes) continue;
      if (evaluator_.ExistsDerivation(ar.ir->rule, f)) {
        remote_deletes.insert(f);
        break;
      }
    }
  }
  pending_delete_rechecks_.clear();

  // ---- Deletion phase: seeds ----------------------------------------
  // Net-removed extensional tuples were already taken out by
  // ApplyInputs; ghost-reinsert them so over-delete matching sees the
  // pre-deletion database (a derivation joining two deleted tuples must
  // still be discoverable from either Δ⁻ position).
  DeltaMap frontier;
  std::vector<std::pair<Relation*, const Tuple*>> ghosts;
  for (const auto& [rel_name, tuples] : log->removed()) {
    Relation* rel = catalog_.Get(rel_name);
    if (rel == nullptr) continue;
    for (const Tuple& t : tuples) {
      Result<bool> r = rel->Insert(t);
      if (r.ok() && *r) ghosts.emplace_back(rel, &t);
      frontier[rel->symbol()].Insert(t);
    }
  }
  // View tuples whose slice support withdrew: external bit drops; the
  // tuple dies — and cascades — only when no rule derivation holds it
  // either (the support count hitting zero).
  std::map<std::string, TupleSet> marked;
  for (const auto& [rel_name, tuples] : log->slice_lost()) {
    Relation* rel = catalog_.Get(rel_name);
    if (rel == nullptr || rel->kind() != RelationKind::kIntensional) {
      continue;
    }
    for (const Tuple& t : tuples) {
      TupleSupport* s = tracker_.Find(rel_name, t);
      if (s != nullptr) s->external = false;
      if (s != nullptr && s->derived) continue;  // count still positive
      if (rel->Contains(t)) {
        frontier[rel->symbol()].Insert(t);
        marked[rel_name].insert(t);
      }
    }
  }
  // Slice support gained: the external bit rises immediately (so the
  // cascade below never retracts through these tuples); the physical
  // insert seeds the forward pass after deletions settle.
  for (const auto& [rel_name, tuples] : log->slice_gained()) {
    Relation* rel = catalog_.Get(rel_name);
    if (rel == nullptr || rel->kind() != RelationKind::kIntensional) {
      continue;
    }
    for (const Tuple& t : tuples) {
      tracker_.Ensure(rel_name, t).external = true;
    }
  }

  // ---- Over-delete closure (marking; nothing removed yet) -----------
  std::map<ContributionKey, TupleSet> marked_contrib;
  std::unordered_set<Fact, FactHasher> recheck_derived;
  const bool any_deletions = !frontier.empty();

  RuleEvaluator::Sinks del_sinks;
  del_sinks.on_local_fact = [&](const Fact& f) {
    if (current_rule_deletes) return;  // deletion rules sustain nothing
    Relation* rel = catalog_.Get(f.relation);
    if (rel == nullptr || rel->kind() != RelationKind::kIntensional) {
      return;  // extensional updates persist; never retract them
    }
    if (!rel->Contains(f.args)) return;
    TupleSet& m = marked[f.relation];
    if (m.count(f.args) > 0) return;
    TupleSupport* s = tracker_.Find(f.relation, f.args);
    if (s != nullptr && s->external) {
      // Remote support keeps the count positive: no cascade. The
      // derived bit may have just gone stale, though — re-check it once
      // the deletions have settled.
      recheck_derived.insert(f);
      return;
    }
    m.insert(f.args);
    next_delta[rel->symbol()].Insert(f.args);
  };
  del_sinks.on_remote_fact = [&](const Fact& f) {
    if (current_rule_deletes) return;
    ContributionKey key{f.peer, f.relation};
    auto it = current_contributions_.find(key);
    if (it == current_contributions_.end() || it->second.count(f.args) == 0) {
      return;
    }
    marked_contrib[key].insert(f.args);  // leaf: nothing local reads it
  };

  while (!frontier.empty()) {
    next_delta = DeltaMap();
    for (const ActiveRule& ar : active) {
      if (ar.ir->rule.head_deletes) continue;
      if (!body_reads_delta(ar, frontier)) continue;
      evaluate_delta_positions(ar, del_sinks, &frontier);
    }
    frontier = std::move(next_delta);
    next_delta = DeltaMap();
  }

  // ---- Apply deletions, then re-derive survivors --------------------
  for (auto& [rel, tuple] : ghosts) (void)rel->Remove(*tuple);
  struct Candidate {
    const std::string* relation;
    Relation* rel;
    const Tuple* tuple;
  };
  std::vector<Candidate> candidates;
  for (auto& [rel_name, tuples] : marked) {
    Relation* rel = catalog_.Get(rel_name);
    if (rel == nullptr) continue;
    for (const Tuple& t : tuples) {
      Result<bool> r = rel->Remove(t);
      if (!r.ok() || !*r) continue;
      tracker_.Erase(rel_name, t);
      candidates.push_back(Candidate{&rel_name, rel, &t});
    }
  }
  if (!candidates.empty()) state_mutated = true;

  // DRed re-derivation loop: a candidate with an alternative derivation
  // over the post-deletion database returns; returned tuples can in
  // turn sustain other candidates, so iterate to a fixpoint. Everything
  // here is bounded by the over-deleted set, not the view.
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = candidates.begin(); it != candidates.end();) {
      Fact f(*it->relation, self_peer_, *it->tuple);
      if (HasLocalDerivation(f)) {
        (void)it->rel->Insert(*it->tuple);
        tracker_.Ensure(*it->relation, *it->tuple).derived = true;
        ++counters->tuples_rederived;
        it = candidates.erase(it);
        progress = true;
      } else {
        ++it;
      }
    }
  }
  counters->tuples_retracted += candidates.size();

  // Contribution candidates re-derive against the settled local state.
  for (const auto& [key, tuples] : marked_contrib) {
    auto cur = current_contributions_.find(key);
    if (cur == current_contributions_.end()) continue;
    for (const Tuple& t : tuples) {
      Fact f(key.relation, key.target_peer, t);
      if (HasLocalDerivation(f)) {
        ++counters->tuples_rederived;
        continue;
      }
      cur->second.erase(t);
      record_contrib_remove(key, t);
      ++counters->tuples_retracted;
    }
  }

  // Externally-supported tuples the cascade reached: their rule-support
  // bit must reflect the post-deletion database, or a later slice
  // withdrawal would trust a stale count and fail to cascade.
  for (const Fact& f : recheck_derived) {
    TupleSupport* s = tracker_.Find(f.relation, f.args);
    if (s == nullptr || !s->derived) continue;
    if (!HasLocalDerivation(f)) s->derived = false;
  }

  // ---- Delegation rebuild -------------------------------------------
  // A deletion can invalidate the prefix binding a delegation was
  // emitted from, and emitted residuals carry no back-pointers to their
  // prefix tuples. Rules that can delegate and whose body may read a
  // deleted relation rebuild their delegation output from scratch;
  // everything else keeps its entries.
  if (any_deletions) {
    DeltaMap deleted;
    for (const auto& [rel_name, tuples] : log->removed()) {
      Relation* rel = catalog_.Get(rel_name);
      if (rel == nullptr) continue;
      for (const Tuple& t : tuples) deleted[rel->symbol()].Insert(t);
    }
    for (const auto& [rel_name, tuples] : marked) {
      Relation* rel = catalog_.Get(rel_name);
      if (rel == nullptr) continue;
      for (const Tuple& t : tuples) deleted[rel->symbol()].Insert(t);
    }
    RuleEvaluator::Sinks delegation_only;
    delegation_only.on_delegation = sinks.on_delegation;
    for (const ActiveRule& ar : active) {
      if (!ar.ir->info.CanDelegate(self_sym_)) continue;
      if (!body_reads_delta(ar, deleted)) continue;
      for (auto it = current_delegations_.begin();
           it != current_delegations_.end();) {
        if (it->second.origin_rule_hash == ar.ir->rule_hash) {
          it = current_delegations_.erase(it);
          delegations_changed = true;
        } else {
          ++it;
        }
      }
      evaluate(ar, delegation_only, nullptr, -1);
    }
  }

  // ---- Forward pass: semi-naive from the Δ⁺ seeds -------------------
  DeltaMap delta;
  for (const auto& [rel_name, tuples] : log->added()) {
    Relation* rel = catalog_.Get(rel_name);
    if (rel == nullptr) continue;
    for (const Tuple& t : tuples) delta[rel->symbol()].Insert(t);
  }
  for (const auto& [rel_name, tuples] : log->slice_gained()) {
    Relation* rel = catalog_.Get(rel_name);
    if (rel == nullptr || rel->kind() != RelationKind::kIntensional) {
      continue;
    }
    for (const Tuple& t : tuples) {
      if (rel->Contains(t)) continue;  // already resident (e.g. derived)
      Result<bool> r = rel->Insert(t);
      if (r.ok() && *r) {
        delta[rel->symbol()].Insert(t);
        state_mutated = true;
      }
    }
  }

  // Continuous-enforcement re-fires, seeding the loop: a deletion rule
  // whose head relation regained tuples must delete them again, and an
  // update rule whose (extensional) head relation lost tuples must
  // re-assert them — exactly what the recompute oracle does by
  // re-firing everything every stage.
  next_delta = DeltaMap();
  {
    std::unordered_set<uint32_t> added_ids, removed_ids;
    for (const auto& [rel_name, tuples] : log->added()) {
      if (tuples.empty()) continue;
      Symbol s = Symbol::Find(rel_name);
      if (s.valid()) added_ids.insert(s.id());
    }
    for (const auto& [rel_name, tuples] : log->removed()) {
      if (tuples.empty()) continue;
      Symbol s = Symbol::Find(rel_name);
      if (s.valid()) removed_ids.insert(s.id());
    }
    for (const ActiveRule& ar : active) {
      const PlanStaticInfo& info = ar.ir->info;
      bool refire = false;
      if (ar.ir->rule.head_deletes) {
        refire = !added_ids.empty() &&
                 (info.head_relation_var ||
                  added_ids.count(info.head_relation.id()) > 0);
      } else if (!removed_ids.empty()) {
        // Only local extensional heads re-assert; remote heads are
        // contributions (receiver-persistent) and view heads were
        // handled by the cascade.
        bool head_local =
            info.head_peer_var || info.head_peer == self_sym_;
        bool head_ext = info.head_relation_var;
        if (!info.head_relation_var) {
          const Relation* head_rel =
              catalog_.Get(info.head_relation.str());
          head_ext = head_rel == nullptr ||
                     head_rel->kind() == RelationKind::kExtensional;
        }
        refire = head_local && head_ext &&
                 (info.head_relation_var ||
                  removed_ids.count(info.head_relation.id()) > 0);
      }
      if (refire) evaluate(ar, sinks, nullptr, -1);
    }
  }
  for (auto& [sym, ds] : next_delta) {
    for (const Tuple& t : ds.tuples()) delta[sym].Insert(t);
  }

  int iterations = 0;
  // Parallel forward rounds under the same per-rule gate as
  // RunFixpoint: round-eligible rules (compiled, Δ-first variants
  // everywhere, no delegation possible) run Δ-partitioned; ineligible
  // rules fall back to the serial loop within the same round, after the
  // replay barrier. Replay routes buffered emissions through the
  // ordinary sinks above, so tracker/contribution/delta bookkeeping is
  // the serial code verbatim. (The serial path's body_reads_delta
  // filter is skipped for the eligible rules — a rule whose body cannot
  // read the Δ exits its variant's leading Δ-probe immediately, so the
  // filter buys nothing in parallel mode; serial-fallback rules keep
  // it.)
  ParallelEval* par = nullptr;
  std::vector<ParallelEval::ParallelRule> prules;
  std::vector<const ActiveRule*> serial_rules;
  if (options_.eval_threads > 1 && options_.use_compiled_plans) {
    std::vector<const ActiveRule*> eligible;
    for (const ActiveRule& ar : active) {
      (PlanRoundEligible(ar.plan, self_sym_) ? eligible : serial_rules)
          .push_back(&ar);
    }
    if (!eligible.empty()) par = EnsureParallelEval();
    if (par != nullptr) {
      prules.reserve(eligible.size());
      for (const ActiveRule* ar : eligible) {
        prules.push_back(
            ParallelEval::ParallelRule{ar->plan, ar->ir->rule.head_deletes});
        PrebuildPlanIndexes(&catalog_, *ar->plan);
      }
    } else {
      serial_rules.clear();  // plain serial loop covers everything
    }
  }
  auto replay_fact = [&](uint32_t r, bool remote, const Fact& f) {
    current_rule_deletes = prules[r].deletes;
    if (remote) {
      sinks.on_remote_fact(f);
    } else {
      sinks.on_local_fact(f);
    }
  };
  auto replay_delegation = [&](const Delegation& d) { sinks.on_delegation(d); };
  while (!delta.empty() && iterations < options_.max_fixpoint_iterations) {
    ++iterations;
    next_delta = DeltaMap();
    if (par != nullptr) {
      ++evaluator_.mutable_counters()->parallel_rounds;
      if (!serial_rules.empty()) {
        ++evaluator_.mutable_counters()->parallel_mixed_rounds;
      }
      par->RunRound(prules, delta, replay_fact, replay_delegation,
                    evaluator_.mutable_counters());
      for (const ActiveRule* ar : serial_rules) {
        if (!body_reads_delta(*ar, delta)) continue;
        evaluate_delta_positions(*ar, sinks, &delta);
      }
    } else {
      for (const ActiveRule& ar : active) {
        if (!body_reads_delta(ar, delta)) continue;
        evaluate_delta_positions(ar, sinks, &delta);
      }
    }
    delta = std::move(next_delta);
    next_delta = DeltaMap();
  }
  if (iterations >= options_.max_fixpoint_iterations) {
    WDL_LOG(Error) << "incremental pass iteration limit reached at peer "
                   << self_peer_;
  }
  stats->iterations += iterations;
  stats->strata = 1;

  // ---- Finalize: deferred updates, shipping, diffs ------------------
  pending_self_updates_ = std::move(self_updates);
  pending_self_deletes_ = std::move(self_deletes);
  for (const Fact& f : remote_deletes) {
    if (sent_remote_deletes_.insert(f).second) {
      result->outbound[f.peer].fact_deletes.push_back(f);
    }
  }
  EmitContributionsIncremental(&contrib_added, &contrib_removed, result);
  if (delegations_changed) {
    EmitDelegationDiff(current_delegations_, result);
  } else {
    // Nothing touched the delegation set: skip the copy + full-map
    // diff so stage cost stays proportional to the change.
    result->stats.delegations_active = sent_delegations_.size();
  }
  FinalizeOutbound(result);

  stats->tuples_examined =
      evaluator_.counters().tuples_examined - tuples_before;

  result->changed = changed_local || state_mutated ||
                    !result->outbound.empty() ||
                    !pending_self_updates_.empty() ||
                    !pending_self_deletes_.empty() ||
                    !pending_delete_rechecks_.empty();
}

std::vector<DerivedDelta> Engine::CollectHeartbeats() {
  std::vector<DerivedDelta> out;
  if (!options_.use_differential_propagation) return out;
  for (const auto& [key, sent] : sent_contributions_) {
    if (sent.version == 0) continue;  // nothing ever shipped
    DerivedDelta dd;
    dd.target_peer = key.target_peer;
    dd.relation = key.relation;
    dd.base_version = sent.version;
    dd.version = sent.version;
    out.push_back(std::move(dd));
    ++prop_counters_.heartbeats_shipped;
  }
  return out;
}

Status Engine::DropScratchRelation(const std::string& relation) {
  for (const InstalledRule& ir : rules_) {
    auto mentions = [&](const Atom& a) {
      return !a.relation.is_variable() && a.relation.name() == relation;
    };
    bool referenced = mentions(ir.rule.head);
    for (const Atom& a : ir.rule.body) referenced |= mentions(a);
    if (referenced) {
      return Status::FailedPrecondition(
          "relation " + relation + " is still referenced by rule " +
          ir.rule.ToString());
    }
  }
  // Queue stream-forget notices before the streams disappear: each
  // remote sender keeps a SentContribution toward us keyed by this
  // relation, and without the notice a recycled name's first remote
  // contribution arrives as a mid-stream delta we must reject (one
  // gap->resync round trip). Dropping the relation is a local act, so
  // self never appears as a sender here.
  for (const std::string& sender : slice_store_.SendersForRelation(relation)) {
    if (sender == self_peer_) continue;
    pending_stream_forgets_.emplace(sender, relation);
    dirty_ = true;  // the notices must go out in a stage
  }
  slice_store_.DropRelation(relation);
  tracker_.DropRelation(relation);
  if (!catalog_.Undeclare(relation)) {
    return Status::NotFound("relation " + relation + " is not declared");
  }
  return Status::OK();
}

void Engine::ForgetSentStream(const std::string& target_peer,
                              const std::string& relation) {
  sent_contributions_.erase(ContributionKey{target_peer, relation});
}

std::string Engine::DumpAsProgramText() const {
  Program program;
  for (const std::string& name : catalog_.RelationNames()) {
    const Relation* rel = catalog_.Get(name);
    if (StartsWith(name, "__query_")) continue;  // ad-hoc query scratch
    program.declarations.push_back(rel->decl());
    if (rel->kind() == RelationKind::kExtensional) {
      for (Tuple& t : rel->SortedTuples()) {
        program.facts.emplace_back(name, self_peer_, std::move(t));
      }
    }
  }
  for (const InstalledRule& ir : rules_) {
    if (ir.delegation_key == 0) program.rules.push_back(ir.rule);
  }
  return program.ToString();
}

std::vector<const InstalledRule*> Engine::rules() const {
  std::vector<const InstalledRule*> out;
  out.reserve(rules_.size());
  for (const InstalledRule& ir : rules_) out.push_back(&ir);
  return out;
}

std::string Engine::ProgramListing() const {
  std::string out = "program of peer " + self_peer_ + ":\n";
  for (const InstalledRule& ir : rules_) {
    out += "  [" + std::to_string(ir.id) + "] ";
    out += ir.rule.ToString();
    if (ir.delegation_key != 0) {
      out += "   (delegated by " + ir.origin_peer + ")";
    }
    out += "\n";
  }
  if (rules_.empty()) out += "  (no rules)\n";
  return out;
}

}  // namespace wdl
