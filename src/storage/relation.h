#ifndef WDL_STORAGE_RELATION_H_
#define WDL_STORAGE_RELATION_H_

#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ast/program.h"
#include "base/result.h"
#include "storage/tuple.h"

namespace wdl {

/// An in-memory stored relation: a set of tuples with a fixed schema and
/// lazily built per-column hash indexes. The container is node-based
/// (unordered_set), so pointers to resident tuples stay valid until that
/// tuple is erased — indexes store such pointers.
///
/// Not thread-safe: a Relation belongs to exactly one Peer, and peers
/// are share-nothing (see DESIGN.md).
class Relation {
 public:
  explicit Relation(RelationDecl decl) : decl_(std::move(decl)) {}

  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  const RelationDecl& decl() const { return decl_; }
  const std::string& name() const { return decl_.relation; }
  const std::string& peer() const { return decl_.peer; }
  RelationKind kind() const { return decl_.kind; }
  size_t arity() const { return decl_.arity(); }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Inserts a tuple after checking arity and column types.
  /// Returns true when the tuple was new, false when already present.
  Result<bool> Insert(Tuple tuple);

  /// Removes a tuple; returns true when it was present.
  Result<bool> Remove(const Tuple& tuple);

  bool Contains(const Tuple& tuple) const {
    return tuples_.count(tuple) > 0;
  }

  /// Drops all tuples (used for intensional relations at stage start).
  void Clear();

  /// Invokes `fn` on every tuple resident at call time, in unspecified
  /// order. `fn` may insert into this relation (new tuples are not
  /// visited); it must not remove from it.
  void ForEach(const std::function<void(const Tuple&)>& fn) const;

  /// Invokes `fn` on tuples whose `column`-th value equals `value`,
  /// using (and if needed building) a hash index on that column. The
  /// same callback contract as ForEach applies.
  void LookupEqual(size_t column, const Value& value,
                   const std::function<void(const Tuple&)>& fn);

  /// Index-free variant of LookupEqual, for benchmarking the index
  /// ablation (bench_join): always scans.
  void ScanEqual(size_t column, const Value& value,
                 const std::function<void(const Tuple&)>& fn) const;

  /// Snapshot of the contents sorted into canonical order; used by
  /// tests, examples, and the textual "UI frames".
  std::vector<Tuple> SortedTuples() const;

  /// Validates a tuple against the schema without inserting.
  Status CheckTuple(const Tuple& tuple) const;

  /// True when a hash index exists on `column` (observability for tests).
  bool HasIndex(size_t column) const { return indexes_.count(column) > 0; }

 private:
  void IndexInsert(const Tuple* stored);
  void IndexRemove(const Tuple* stored);

  RelationDecl decl_;
  std::unordered_set<Tuple, TupleHasher> tuples_;
  // column -> (value hash -> tuples with that value in that column).
  std::map<size_t,
           std::unordered_multimap<uint64_t, const Tuple*>> indexes_;
};

}  // namespace wdl

#endif  // WDL_STORAGE_RELATION_H_
