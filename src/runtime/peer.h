#ifndef WDL_RUNTIME_PEER_H_
#define WDL_RUNTIME_PEER_H_

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "acl/delegation_gate.h"
#include "durability/durability.h"
#include "engine/engine.h"
#include "net/message.h"

namespace wdl {

struct PeerOptions {
  EngineOptions engine;
  /// Durability (DESIGN.md §11): a non-empty `durability.dir` gives the
  /// peer a write-ahead log plus periodic snapshots there, and makes a
  /// Peer constructed over an existing directory recover its state from
  /// disk before serving anything. Empty (the default) keeps the peer
  /// fully in-memory — the oracle path, byte-identical to the pre-WAL
  /// runtime. Enabling durability also flips the engine into
  /// preserve-streams-on-reset mode (see EngineOptions), which assumes
  /// every peer of the cluster is durable too.
  DurabilityOptions durability;
  /// When true, every origin is treated as trusted and delegations
  /// install without approval (the behavior of peers that opted out of
  /// delegation control; the default mirrors the paper: untrusted).
  bool trust_all_delegations = false;
  /// When true, the Engine (catalog, evaluator, slice store, trackers)
  /// is not built until the peer first needs it: first fact, first
  /// rule, or first inbound frame that carries engine work. An idle
  /// peer is then a name plus a few empty containers — the property
  /// that lets one process host 100k+ simulated peers (DESIGN.md §9).
  /// False (the default for standalone peers; System sets it from
  /// SystemOptions::lazy_peer_state) allocates eagerly at construction
  /// — the oracle path, byte-identical to the pre-lazy runtime.
  bool lazy_engine = false;
};

/// One WebdamLog peer: an engine plus the delegation gate and the glue
/// that turns engine stage output into network envelopes and inbound
/// envelopes into engine inputs. Peers are driven by a System but can
/// also be used standalone in tests.
///
/// Concurrency contract (DESIGN.md §8): a Peer's state is touched by
/// exactly one thread at a time, but *different* peers' RunStage calls
/// may run concurrently — everything a stage reads or writes is owned
/// by this peer (engine, catalog, gate, sequence numbers, WAL) or is
/// one of the process-wide thread-safe structures (the Symbol intern
/// table). Envelope delivery (HandleEnvelope) and the returned
/// envelopes' submission stay on the System's driving thread.
///
/// Durability semantics (DESIGN.md §11), active only with a data dir
/// configured: every state-changing input — local writes through the
/// Peer-level API, inbound envelopes, delegation decisions — is
/// appended to the WAL before/as it applies, each stage's shipped
/// output is logged so emission diff bases survive, and construction
/// over an existing directory replays snapshot + log before the peer
/// serves anything. Writes that bypass the Peer API (calling
/// engine().InsertFact directly) are NOT logged; durable hosts must go
/// through Insert/Remove/AddRuleText/RemoveRule. Check
/// durability_status() after constructing a durable peer.
class Peer {
 public:
  explicit Peer(std::string name, PeerOptions options = {});

  Peer(const Peer&) = delete;
  Peer& operator=(const Peer&) = delete;

  const std::string& name() const { return name_; }
  /// The peer's engine, materializing it on first touch in lazy mode
  /// (const access too — callers that merely *inspect* an idle peer
  /// without forcing allocation should check has_engine() first).
  Engine& engine() { return EnsureEngine(); }
  const Engine& engine() const { return EnsureEngine(); }
  /// True when the engine has been materialized (always, in eager
  /// mode). An engine-less peer holds no facts, no rules, no streams.
  bool has_engine() const { return engine_ != nullptr; }
  DelegationGate& gate() { return gate_; }
  const DelegationGate& gate() const { return gate_; }

  /// Parses `source` as WebdamLog text and loads it into the engine.
  Status LoadProgramText(std::string_view source);
  Status LoadProgram(const Program& program);

  /// The user API: immediate base-fact updates and rule edits, WAL-
  /// logged when durable. Durable hosts must use these (not the engine
  /// directly) or the write is invisible to recovery.
  Result<bool> Insert(const Fact& fact);
  Result<bool> Remove(const Fact& fact);
  Result<uint64_t> AddRuleText(std::string_view rule_text);
  Status RemoveRule(uint64_t rule_id);

  /// Routes one arriving envelope into the engine / delegation gate.
  void HandleEnvelope(const Envelope& envelope);

  /// Runs one engine stage and returns the envelopes to transmit.
  std::vector<Envelope> RunStage();

  /// Version-only heartbeat envelopes for every contribution stream
  /// this peer has shipped (see Engine::CollectHeartbeats). The runtime
  /// submits these periodically so a receiver that lost the last frame
  /// of a then-silent stream detects the gap within one heartbeat
  /// interval instead of waiting for the next organic change.
  std::vector<Envelope> MakeHeartbeats();

  bool HasPendingWork() const {
    return engine_ != nullptr && engine_->HasPendingWork();
  }

  /// A transport-level link to `remote` was lost/re-established; streams
  /// re-establish through the resync machinery. No-op for an engine-less
  /// peer (it has no streams), without materializing it.
  void NoteLinkReset(const std::string& remote) {
    if (engine_ != nullptr) engine_->NoteLinkReset(remote);
  }

  /// Approximate resident bytes of this peer's fixed bookkeeping: the
  /// Peer object plus its heap-allocated name/known-peer strings. For a
  /// materialized peer this *excludes* engine state (catalog tuples,
  /// plans, streams scale with data, not peer count); the idle-peer
  /// memory model (DESIGN.md §9) and its regression ceiling are about
  /// the per-peer fixed cost.
  size_t ApproxIdleBytes() const;

  /// Approves a pending delegation: installs the rule ("the program of
  /// Jules is changed once the approval is granted", §4).
  Status ApproveDelegation(uint64_t delegation_key);
  Status RejectDelegation(uint64_t delegation_key);

  /// Peers this peer has heard of (populated from traffic — envelope
  /// senders and Hello announcements — or explicitly by a host that
  /// wires up a static topology, e.g. wdl_peerd).
  const std::set<std::string>& known_peers() const { return known_peers_; }
  void AddKnownPeer(const std::string& peer) { known_peers_.insert(peer); }

  // --- durability (DESIGN.md §11) -------------------------------------
  /// Non-null iff this peer was constructed with a data dir and the
  /// directory opened cleanly.
  const PeerDurability* durability() const { return durability_.get(); }
  /// True when construction restored state from disk (snapshot and/or
  /// WAL records were found and replayed).
  bool recovered() const { return recovered_; }
  /// OK for a memory-only peer or a durable peer whose open + recovery
  /// succeeded. A durable host must check this after construction: a
  /// non-OK status means the peer is running WITHOUT durability (the
  /// data dir was unusable or its contents did not replay).
  const Status& durability_status() const { return durability_status_; }

  /// Textual UI: program listing plus the pending-delegation queue
  /// (the paper's Figure 3 view).
  std::string RenderProgramView() const;

  /// Textual UI: contents of one relation as a table-ish frame
  /// (the paper's Figure 1 frames).
  std::string RenderRelation(const std::string& relation) const;

 private:
  /// Materializes the engine (lazy mode) or returns the existing one.
  /// Const because materialization is a caching concern, not a logical
  /// state change: a fresh engine holds exactly the state an idle peer
  /// logically has (nothing).
  Engine& EnsureEngine() const;

  /// Appends one record to the WAL; no-op for memory-only peers and
  /// during replay. A failed append logs and latches
  /// durability_status_ — the peer keeps serving, degraded to memory-
  /// only semantics, rather than dropping writes.
  void LogDurable(const WalRecord& record);
  /// True when `envelope` must be logged before applying: it carries
  /// state a recovered peer cannot reconstruct otherwise. Heartbeats,
  /// Hellos, and resync requests are pure control plane and are
  /// regenerated by the protocol itself.
  static bool ShouldLogEnvelope(const Envelope& envelope);
  /// Applies one replayed WAL record (replaying_ is set by the caller).
  void ApplyWalRecord(const WalRecord& record);
  /// Restores snapshot + WAL via durability_; called from the ctor.
  Status RecoverFromDurability();
  /// Serializes current peer state for WriteSnapshot.
  SnapshotData MakeSnapshot() const;
  /// End-of-stage durability hook: batch fsync, then snapshot + log
  /// rotation when the interval elapsed.
  void FinishDurableStage();

  std::string name_;
  PeerOptions options_;
  // The only heavyweight member, lazily allocated when lazy_engine is
  // set; everything else an idle peer carries is a few empty containers.
  mutable std::unique_ptr<Engine> engine_;
  DelegationGate gate_;
  std::set<std::string> known_peers_;
  uint64_t next_seq_ = 0;

  std::unique_ptr<PeerDurability> durability_;
  bool replaying_ = false;  // WAL replay in progress: do not re-log
  bool recovered_ = false;
  Status durability_status_;
};

}  // namespace wdl

#endif  // WDL_RUNTIME_PEER_H_
