#ifndef WDL_DURABILITY_SNAPSHOT_H_
#define WDL_DURABILITY_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ast/program.h"
#include "base/result.h"
#include "engine/delegation.h"
#include "storage/tuple.h"

namespace wdl {

/// Everything one peer needs on disk to restart without rebuilding
/// derived state over the wire (DESIGN.md §11). A snapshot captures the
/// peer at a stage boundary — inbound queues drained, emission diffs
/// settled — so restoring it and replaying the WAL suffix reproduces
/// the peer exactly:
///
///  - catalog declarations, plus tuples for extensional relations
///    (intensional views rebuild from slices on the first stage);
///  - installed rules with their engine-local ids, origin peers, and
///    delegation keys;
///  - `SliceStore` streams: per-(relation, sender) slices with their
///    applied stream versions (support counts rebuild on restore);
///  - `SentContribution` state: per-(target, relation) shipped tuple
///    sets with their stream versions — the diffing base that lets a
///    recovered peer resume emitting precise deltas instead of blanket
///    re-snapshots;
///  - shipped delegations and the gate's pending-approval queue.
///
/// Plain data; encode/decode below reuse the binary wire codec's
/// primitives, with a whole-payload CRC-32 so a half-written or
/// bit-rotted snapshot is rejected and recovery falls back to the
/// previous generation.
struct SnapshotData {
  std::string peer;
  uint64_t next_rule_id = 1;
  uint64_t next_seq = 0;
  std::vector<std::string> known_peers;

  struct RelationState {
    RelationDecl decl;
    std::vector<Tuple> tuples;  // extensional only; empty for views
  };
  std::vector<RelationState> relations;

  struct RuleState {
    uint64_t id = 0;
    std::string origin_peer;
    uint64_t delegation_key = 0;
    Rule rule;
  };
  std::vector<RuleState> rules;

  struct StreamState {
    std::string relation;
    std::string sender;
    uint64_t version = 0;
    std::vector<Tuple> tuples;
  };
  std::vector<StreamState> slices;

  struct SentState {
    std::string target_peer;
    std::string relation;
    uint64_t version = 0;
    std::vector<Tuple> tuples;
  };
  std::vector<SentState> sent;

  std::vector<Delegation> sent_delegations;
  std::vector<Delegation> pending_delegations;  // gate approval queue
};

/// Self-contained file image: magic "WDLS" | format version u16 |
/// payload CRC-32 u32 | payload length u32 | payload.
std::string EncodeSnapshot(const SnapshotData& snap);
Result<SnapshotData> DecodeSnapshot(std::string_view bytes);

}  // namespace wdl

#endif  // WDL_DURABILITY_SNAPSHOT_H_
