#include "acl/delegation_gate.h"

#include <algorithm>

namespace wdl {

const char* DecisionToString(DelegationGate::Decision decision) {
  switch (decision) {
    case DelegationGate::Decision::kAccepted: return "accepted";
    case DelegationGate::Decision::kPending: return "pending";
    case DelegationGate::Decision::kRejected: return "rejected";
  }
  return "?";
}

DelegationGate::Decision DelegationGate::OnArrival(
    const Delegation& delegation) {
  Decision decision;
  if (IsBlocked(delegation.origin_peer)) {
    decision = Decision::kRejected;
  } else if (IsTrusted(delegation.origin_peer)) {
    decision = Decision::kAccepted;
  } else {
    decision = Decision::kPending;
    uint64_t key = delegation.Key();
    if (pending_.emplace(key, delegation).second) {
      pending_order_.push_back(key);
    }
  }
  audit_log_.push_back(AuditEntry{delegation.origin_peer, delegation.Key(),
                                  decision, delegation.rule.ToString()});
  return decision;
}

void DelegationGate::RestorePending(const Delegation& delegation) {
  uint64_t key = delegation.Key();
  if (pending_.emplace(key, delegation).second) {
    pending_order_.push_back(key);
  }
}

bool DelegationGate::OnRetraction(uint64_t delegation_key) {
  auto it = pending_.find(delegation_key);
  if (it == pending_.end()) return false;
  pending_.erase(it);
  pending_order_.erase(std::remove(pending_order_.begin(),
                                   pending_order_.end(), delegation_key),
                       pending_order_.end());
  return true;
}

std::vector<const Delegation*> DelegationGate::Pending() const {
  std::vector<const Delegation*> out;
  out.reserve(pending_order_.size());
  for (uint64_t key : pending_order_) {
    auto it = pending_.find(key);
    if (it != pending_.end()) out.push_back(&it->second);
  }
  return out;
}

Result<Delegation> DelegationGate::Approve(uint64_t delegation_key) {
  auto it = pending_.find(delegation_key);
  if (it == pending_.end()) {
    return Status::NotFound("no pending delegation with key " +
                            std::to_string(delegation_key));
  }
  Delegation d = std::move(it->second);
  pending_.erase(it);
  pending_order_.erase(std::remove(pending_order_.begin(),
                                   pending_order_.end(), delegation_key),
                       pending_order_.end());
  audit_log_.push_back(AuditEntry{d.origin_peer, delegation_key,
                                  Decision::kAccepted, d.rule.ToString()});
  return d;
}

Status DelegationGate::Reject(uint64_t delegation_key) {
  auto it = pending_.find(delegation_key);
  if (it == pending_.end()) {
    return Status::NotFound("no pending delegation with key " +
                            std::to_string(delegation_key));
  }
  audit_log_.push_back(AuditEntry{it->second.origin_peer, delegation_key,
                                  Decision::kRejected,
                                  it->second.rule.ToString()});
  pending_.erase(it);
  pending_order_.erase(std::remove(pending_order_.begin(),
                                   pending_order_.end(), delegation_key),
                       pending_order_.end());
  return Status::OK();
}

std::string DelegationGate::RenderPending() const {
  if (pending_order_.empty()) return "(no pending delegations)\n";
  std::string out;
  for (uint64_t key : pending_order_) {
    auto it = pending_.find(key);
    if (it == pending_.end()) continue;
    out += "pending delegation from " + it->second.origin_peer + " (key " +
           std::to_string(key) + "):\n    " + it->second.rule.ToString() +
           "\n";
  }
  return out;
}

}  // namespace wdl
