#include "storage/slice_store.h"

namespace wdl {

SliceStore::Gate SliceStore::CheckDelta(const std::string& relation,
                                        const std::string& sender,
                                        uint64_t base_version,
                                        uint64_t version) const {
  // A well-formed delta moves the stream forward; anything else is a
  // corrupt or hostile frame and must not commit the version backwards.
  if (version <= base_version) return Gate::kStale;
  uint64_t current = StreamVersion(relation, sender);
  if (base_version == current) return Gate::kApply;
  if (version <= current) return Gate::kStale;
  return Gate::kGap;
}

SliceStore::Gate SliceStore::CheckSnapshot(const std::string& relation,
                                           const std::string& sender,
                                           uint64_t version) const {
  // A snapshot carries the full slice, so it may jump the stream
  // forward over any number of lost updates; only going backward in
  // time (a reordered old snapshot) would roll back newer state.
  return version >= StreamVersion(relation, sender) ? Gate::kApply
                                                    : Gate::kStale;
}

void SliceStore::CommitVersion(const std::string& relation,
                               const std::string& sender,
                               uint64_t version) {
  streams_[relation][sender].version = version;
}

bool SliceStore::ReplaceSlice(const std::string& relation,
                              const std::string& sender, TupleSet slice,
                              std::vector<Tuple>* gained,
                              std::vector<Tuple>* lost) {
  Stream& stream = streams_[relation][sender];
  if (stream.slice == slice) return false;
  for (const Tuple& t : stream.slice) {
    if (!slice.count(t) && DropSupport(relation, t) && lost != nullptr) {
      lost->push_back(t);
    }
  }
  for (const Tuple& t : slice) {
    if (!stream.slice.count(t) && AddSupport(relation, t) &&
        gained != nullptr) {
      gained->push_back(t);
    }
  }
  stream.slice = std::move(slice);
  return true;
}

bool SliceStore::ApplySnapshot(const std::string& relation,
                               const std::string& sender, TupleSet slice,
                               uint64_t version, std::vector<Tuple>* gained,
                               std::vector<Tuple>* lost) {
  bool changed = ReplaceSlice(relation, sender, std::move(slice), gained, lost);
  streams_[relation][sender].version = version;
  return changed;
}

bool SliceStore::ApplyDelta(const std::string& relation,
                            const std::string& sender,
                            std::vector<Tuple> inserts,
                            const std::vector<Tuple>& deletes,
                            uint64_t version, std::vector<Tuple>* gained,
                            std::vector<Tuple>* lost) {
  Stream& stream = streams_[relation][sender];
  bool changed = false;
  for (Tuple& t : inserts) {
    auto [it, inserted] = stream.slice.insert(std::move(t));
    if (inserted) {
      if (AddSupport(relation, *it) && gained != nullptr) {
        gained->push_back(*it);
      }
      changed = true;
    }
  }
  for (const Tuple& t : deletes) {
    if (stream.slice.erase(t) > 0) {
      if (DropSupport(relation, t) && lost != nullptr) lost->push_back(t);
      changed = true;
    }
  }
  stream.version = version;
  return changed;
}

void SliceStore::DropRelation(const std::string& relation) {
  streams_.erase(relation);
  support_.erase(relation);
}

std::vector<std::string> SliceStore::RelationsFromSender(
    const std::string& sender) const {
  std::vector<std::string> out;
  for (const auto& [relation, senders] : streams_) {
    if (senders.count(sender)) out.push_back(relation);
  }
  return out;
}

std::vector<std::string> SliceStore::SendersForRelation(
    const std::string& relation) const {
  std::vector<std::string> out;
  auto it = streams_.find(relation);
  if (it == streams_.end()) return out;
  for (const auto& [sender, stream] : it->second) out.push_back(sender);
  return out;
}

void SliceStore::RestoreStream(const std::string& relation,
                               const std::string& sender, uint64_t version,
                               TupleSet slice) {
  Stream& stream = streams_[relation][sender];
  for (const Tuple& t : stream.slice) DropSupport(relation, t);
  for (const Tuple& t : slice) AddSupport(relation, t);
  stream.slice = std::move(slice);
  stream.version = version;
}

void SliceStore::ResetStreamVersions(const std::string& sender) {
  for (auto& [relation, senders] : streams_) {
    auto it = senders.find(sender);
    if (it != senders.end()) it->second.version = 0;
  }
}

uint64_t SliceStore::StreamVersion(const std::string& relation,
                                   const std::string& sender) const {
  auto rel_it = streams_.find(relation);
  if (rel_it == streams_.end()) return 0;
  auto it = rel_it->second.find(sender);
  return it == rel_it->second.end() ? 0 : it->second.version;
}

size_t SliceStore::ContributorCount(const std::string& relation) const {
  auto rel_it = streams_.find(relation);
  if (rel_it == streams_.end()) return 0;
  size_t n = 0;
  for (const auto& [sender, stream] : rel_it->second) {
    if (!stream.slice.empty()) ++n;
  }
  return n;
}

uint32_t SliceStore::SupportCount(const std::string& relation,
                                  const Tuple& tuple) const {
  auto rel_it = support_.find(relation);
  if (rel_it == support_.end()) return 0;
  auto it = rel_it->second.find(tuple);
  return it == rel_it->second.end() ? 0 : it->second;
}

const SliceStore::TupleSet* SliceStore::Slice(
    const std::string& relation, const std::string& sender) const {
  auto rel_it = streams_.find(relation);
  if (rel_it == streams_.end()) return nullptr;
  auto it = rel_it->second.find(sender);
  return it == rel_it->second.end() ? nullptr : &it->second.slice;
}

bool SliceStore::AddSupport(const std::string& relation,
                            const Tuple& tuple) {
  return ++support_[relation][tuple] == 1;
}

bool SliceStore::DropSupport(const std::string& relation,
                             const Tuple& tuple) {
  auto rel_it = support_.find(relation);
  if (rel_it == support_.end()) return false;
  auto it = rel_it->second.find(tuple);
  if (it == rel_it->second.end()) return false;
  if (--it->second == 0) {
    rel_it->second.erase(it);
    return true;
  }
  return false;
}

}  // namespace wdl
