#include "support/counters.h"

#include <sstream>

namespace wdl {
namespace test {

NetworkCounters::NetworkCounters(const NetworkStats& stats)
    : messages_submitted(stats.messages_submitted),
      messages_delivered(stats.messages_delivered),
      messages_dropped(stats.messages_dropped),
      messages_partitioned(stats.messages_partitioned),
      bytes_sent(stats.bytes_sent) {}

NetworkCounters::NetworkCounters(const SimulatedNetwork& network)
    : NetworkCounters(network.stats()) {}

NetworkCounters NetworkCounters::operator-(
    const NetworkCounters& earlier) const {
  NetworkCounters d;
  d.messages_submitted = messages_submitted - earlier.messages_submitted;
  d.messages_delivered = messages_delivered - earlier.messages_delivered;
  d.messages_dropped = messages_dropped - earlier.messages_dropped;
  d.messages_partitioned = messages_partitioned - earlier.messages_partitioned;
  d.bytes_sent = bytes_sent - earlier.bytes_sent;
  return d;
}

std::string NetworkCounters::ToString() const {
  std::ostringstream os;
  os << "{submitted=" << messages_submitted
     << " delivered=" << messages_delivered
     << " dropped=" << messages_dropped
     << " partitioned=" << messages_partitioned
     << " bytes=" << bytes_sent << "}";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const NetworkCounters& c) {
  return os << c.ToString();
}

}  // namespace test
}  // namespace wdl
