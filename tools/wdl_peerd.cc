// wdl_peerd: hosts one WebdamLog peer as an OS process over TCP.
//
// This is the deployment shape of the paper — every participant runs
// its own peer with its own data and program, and peers exchange facts
// (updates) and rules (delegations) over the network. One daemon = one
// peer: it loads a program file, listens on a TCP port, connects to
// the peers named in its address map, and runs stages whenever there
// is work. When the peer has been locally quiescent for --idle-ms it
// publishes its canonical state fingerprint to --fingerprint (and
// republishes after every later burst of activity), which is how the
// multi-process convergence tests — and operators — observe it.
//
// Rendezvous: with --listen 0 the OS picks the port; --addr-file
// publishes "host:port" for the others, and --peer name=@file entries
// are re-read on every connect attempt, so a cluster can start in any
// order and a restarted peer can come back on a fresh port.
//
// Example 3-peer cluster (see README):
//   wdl_peerd --name alice --program alice.wdl --listen 0 \
//     --addr-file /tmp/w/alice.addr --peer bob=@/tmp/w/bob.addr \
//     --peer carol=@/tmp/w/carol.addr --fingerprint /tmp/w/alice.fp

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/tcp_network.h"
#include "runtime/fingerprint.h"
#include "runtime/system.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop = true; }

struct PeerdArgs {
  std::string name;
  std::string program_path;
  std::string bind_address = "127.0.0.1";
  int listen_port = 0;
  std::string addr_file;
  std::string fingerprint_path;
  int idle_ms = 200;
  int heartbeat_rounds = 0;
  int max_runtime_ms = 0;  // 0: run until a signal arrives
  bool trust_all = true;
  // Durability (OPERATIONS.md): empty --data-dir = memory-only peer.
  std::string data_dir;
  std::string fsync = "batch";
  uint64_t snapshot_every = 4096;
  // name -> "host:port" or "@/path/to/addr/file"
  std::vector<std::pair<std::string, std::string>> peers;
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --name NAME --program FILE [--listen PORT]\n"
      "  [--bind ADDR] [--addr-file PATH] [--peer NAME=HOST:PORT|NAME=@FILE]...\n"
      "  [--fingerprint PATH] [--idle-ms N] [--heartbeat-rounds N]\n"
      "  [--max-runtime-ms N] [--no-trust]\n"
      "  [--data-dir DIR] [--fsync never|batch|always] [--snapshot-every N]\n",
      argv0);
  return 2;
}

bool WriteFileAtomic(const std::string& path, const std::string& content) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << content;
    if (!out.flush()) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  PeerdArgs args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--name" && (v = next())) {
      args.name = v;
    } else if (arg == "--program" && (v = next())) {
      args.program_path = v;
    } else if (arg == "--bind" && (v = next())) {
      args.bind_address = v;
    } else if (arg == "--listen" && (v = next())) {
      args.listen_port = std::atoi(v);
    } else if (arg == "--addr-file" && (v = next())) {
      args.addr_file = v;
    } else if (arg == "--fingerprint" && (v = next())) {
      args.fingerprint_path = v;
    } else if (arg == "--idle-ms" && (v = next())) {
      args.idle_ms = std::atoi(v);
    } else if (arg == "--heartbeat-rounds" && (v = next())) {
      args.heartbeat_rounds = std::atoi(v);
    } else if (arg == "--max-runtime-ms" && (v = next())) {
      args.max_runtime_ms = std::atoi(v);
    } else if (arg == "--no-trust") {
      args.trust_all = false;
    } else if (arg == "--data-dir" && (v = next())) {
      args.data_dir = v;
    } else if (arg == "--fsync" && (v = next())) {
      args.fsync = v;
    } else if (arg == "--snapshot-every" && (v = next())) {
      args.snapshot_every = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--peer" && (v = next())) {
      std::string spec = v;
      size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        std::fprintf(stderr, "bad --peer spec: %s\n", spec.c_str());
        return Usage(argv[0]);
      }
      args.peers.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else {
      std::fprintf(stderr, "unknown or incomplete argument: %s\n",
                   arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (args.name.empty() || args.program_path.empty()) return Usage(argv[0]);

  std::ifstream program_in(args.program_path);
  if (!program_in) {
    std::fprintf(stderr, "cannot read program file %s\n",
                 args.program_path.c_str());
    return 1;
  }
  std::stringstream program_text;
  program_text << program_in.rdbuf();

  wdl::TcpNetworkOptions net_options;
  net_options.bind_address = args.bind_address;
  net_options.listen_port = static_cast<uint16_t>(args.listen_port);
  auto network = std::make_unique<wdl::TcpNetwork>(net_options);
  wdl::TcpNetwork* tcp = network.get();
  wdl::Status started = tcp->Start();
  if (!started.ok()) {
    std::fprintf(stderr, "transport start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  tcp->AddLocalPeer(args.name);
  for (const auto& [peer, where] : args.peers) {
    if (!where.empty() && where[0] == '@') {
      tcp->SetPeerAddressFile(peer, where.substr(1));
    } else {
      size_t colon = where.rfind(':');
      int port = colon == std::string::npos
                     ? 0
                     : std::atoi(where.c_str() + colon + 1);
      if (port <= 0 || port > 65535) {
        std::fprintf(stderr, "bad --peer address for %s: %s\n", peer.c_str(),
                     where.c_str());
        return 1;
      }
      tcp->SetPeerAddress(peer, where.substr(0, colon),
                          static_cast<uint16_t>(port));
    }
  }
  if (!args.addr_file.empty()) {
    std::string addr =
        args.bind_address + ":" + std::to_string(tcp->port()) + "\n";
    if (!WriteFileAtomic(args.addr_file, addr)) {
      std::fprintf(stderr, "cannot write addr file %s\n",
                   args.addr_file.c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "wdl_peerd %s listening on %s:%u\n",
               args.name.c_str(), args.bind_address.c_str(), tcp->port());

  wdl::SystemOptions system_options;
  system_options.heartbeat_interval_rounds = args.heartbeat_rounds;
  wdl::System system(std::move(network), system_options);
  wdl::PeerOptions peer_options;
  peer_options.trust_all_delegations = args.trust_all;
  if (!args.data_dir.empty()) {
    wdl::Result<wdl::FsyncPolicy> policy = wdl::ParseFsyncPolicy(args.fsync);
    if (!policy.ok()) {
      std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
      return 1;
    }
    peer_options.durability.dir = args.data_dir;
    peer_options.durability.fsync_policy = *policy;
    peer_options.durability.snapshot_interval_records = args.snapshot_every;
  }
  wdl::Peer* peer = system.CreatePeer(args.name, peer_options);
  if (!args.data_dir.empty()) {
    // A daemon started with --data-dir must not silently run
    // memory-only: fail hard so the operator sees it.
    if (!peer->durability_status().ok()) {
      std::fprintf(stderr, "durability open/recovery failed: %s\n",
                   peer->durability_status().ToString().c_str());
      return 1;
    }
    const wdl::DurabilityCounters& dc = peer->durability()->counters();
    std::fprintf(stderr,
                 "wdl_peerd %s durability: dir=%s fsync=%s generation=%llu "
                 "snapshot=%s wal_records=%llu torn_tail=%s\n",
                 args.name.c_str(), args.data_dir.c_str(),
                 wdl::FsyncPolicyToString(
                     peer_options.durability.fsync_policy),
                 static_cast<unsigned long long>(dc.generation),
                 dc.snapshot_recovered ? "yes" : "no",
                 static_cast<unsigned long long>(dc.wal_records_recovered),
                 dc.torn_tail_truncated ? "truncated" : "clean");
  }
  for (const auto& [remote, where] : args.peers) {
    (void)where;
    peer->AddKnownPeer(remote);
  }
  if (peer->recovered()) {
    // State came back from disk; the program already lives in it.
    // Re-loading would duplicate facts benignly but also re-log the
    // whole program every restart.
    std::fprintf(stderr, "wdl_peerd %s recovered from %s\n",
                 args.name.c_str(), args.data_dir.c_str());
  } else {
    wdl::Status loaded = peer->LoadProgramText(program_text.str());
    if (!loaded.ok()) {
      std::fprintf(stderr, "program load failed: %s\n",
                   loaded.ToString().c_str());
      return 1;
    }
  }

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  Clock::time_point last_activity = start;
  bool published = false;
  while (!g_stop) {
    if (args.max_runtime_ms > 0 &&
        Clock::now() - start >=
            std::chrono::milliseconds(args.max_runtime_ms)) {
      break;
    }
    wdl::RoundReport report = system.RunRound();
    bool worked = report.envelopes_delivered > 0 || report.stages_run > 0;
    if (worked) {
      last_activity = Clock::now();
      published = false;  // state may have moved; republish when idle
      continue;
    }
    if (!published && system.IsQuiescent() &&
        Clock::now() - last_activity >=
            std::chrono::milliseconds(args.idle_ms)) {
      if (!args.fingerprint_path.empty()) {
        if (!WriteFileAtomic(args.fingerprint_path,
                             wdl::PeerStateFingerprint(*peer))) {
          std::fprintf(stderr, "cannot write fingerprint %s\n",
                       args.fingerprint_path.c_str());
        }
      }
      if (peer->has_engine()) {
        // One parseable line per quiescent point; the durable-cluster
        // test greps these to assert recovery needed no full resyncs.
        const wdl::PropagationCounters& pc =
            peer->engine().propagation_counters();
        std::fprintf(
            stderr,
            "wdl_peerd %s idle: resyncs_requested=%llu "
            "snapshots_applied=%llu deltas_shipped=%llu\n",
            args.name.c_str(),
            static_cast<unsigned long long>(pc.resyncs_requested),
            static_cast<unsigned long long>(pc.snapshots_applied),
            static_cast<unsigned long long>(pc.deltas_shipped));
      }
      published = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::fprintf(stderr, "wdl_peerd %s exiting\n", args.name.c_str());
  return 0;
}
