#include "net/wire.h"

#include <gtest/gtest.h>

#include "base/rng.h"
#include "parser/parser.h"

#include "support/builders.h"

namespace wdl {
namespace {

using test::I;
using test::S;

Envelope RoundTrip(const Envelope& e) {
  std::string bytes = EncodeEnvelope(e);
  Result<Envelope> decoded = DecodeEnvelope(bytes);
  EXPECT_TRUE(decoded.ok()) << decoded.status();
  return decoded.ok() ? std::move(decoded).value() : Envelope{};
}

TEST(WireTest, PrimitivesRoundTrip) {
  WireEncoder enc;
  enc.PutU8(0xab);
  enc.PutU16(0xbeef);
  enc.PutU32(0xdeadbeef);
  enc.PutU64(0x0123456789abcdefULL);
  enc.PutDouble(-2.5);
  enc.PutString("héllo\0world");  // embedded NUL truncated by literal; fine

  WireDecoder dec(enc.buffer());
  EXPECT_EQ(*dec.GetU8(), 0xab);
  EXPECT_EQ(*dec.GetU16(), 0xbeef);
  EXPECT_EQ(*dec.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(*dec.GetU64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(*dec.GetDouble(), -2.5);
  EXPECT_EQ(*dec.GetString(), "héllo");
  EXPECT_TRUE(dec.AtEnd());
}

TEST(WireTest, ValueKindsRoundTrip) {
  std::vector<Value> values = {
      I(0), I(-1), I(INT64_MAX), I(INT64_MIN),
      Value::Double(0.0), Value::Double(-1.5e300),
      S(""), S("sea.jpg"), S(std::string("nul\0byte", 8)),
      Value::MakeBlob(""), Value::MakeBlob(std::string("\x00\xff\x7f", 3))};
  for (const Value& v : values) {
    WireEncoder enc;
    enc.PutValue(v);
    WireDecoder dec(enc.buffer());
    Result<Value> back = dec.GetValue();
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(*back, v) << v.ToString();
  }
}

TEST(WireTest, FactBatchEnvelopeRoundTrips) {
  Envelope e;
  e.from = "emilien";
  e.to = "sigmod";
  e.seq = 42;
  e.message = Message::FactInserts(
      {Fact("pictures", "sigmod", {I(1), S("sea.jpg")}),
       Fact("pictures", "sigmod", {I(2), S("boat.jpg")})});
  Envelope back = RoundTrip(e);
  EXPECT_EQ(back.from, "emilien");
  EXPECT_EQ(back.seq, 42u);
  ASSERT_EQ(back.message.facts.size(), 2u);
  EXPECT_EQ(back.message.facts[1].args[1], S("boat.jpg"));
}

TEST(WireTest, DelegationEnvelopeRoundTrips) {
  Result<Rule> rule = ParseRule(
      "attendeePictures@Jules($id, $n) :- pictures@Emilien($id, $n)");
  ASSERT_TRUE(rule.ok());
  Delegation d;
  d.origin_peer = "Jules";
  d.target_peer = "Emilien";
  d.origin_rule_hash = 0x1234;
  d.rule = *rule;

  Envelope e;
  e.from = "Jules";
  e.to = "Emilien";
  e.message = Message::DelegationInstall(d);
  Envelope back = RoundTrip(e);
  EXPECT_EQ(back.message.delegation.rule, *rule);
  EXPECT_EQ(back.message.delegation.Key(), d.Key());
}

TEST(WireTest, RuleWithAllTermShapesRoundTrips) {
  Result<Rule> rule = ParseRule(
      "$r@$q($x, 5, \"s\", 2.5, 0xff) :- names@p($r), peers@p($q), "
      "not banned@p($x), data@p($x)");
  // not-banned before data violates safety but the codec doesn't care;
  // parse it in two steps instead.
  if (!rule.ok()) {
    rule = ParseRule(
        "$r@$q($x, 5, \"s\", 2.5, 0xff) :- names@p($r), peers@p($q), "
        "data@p($x), not banned@p($x)");
  }
  ASSERT_TRUE(rule.ok()) << rule.status();
  WireEncoder enc;
  enc.PutRule(*rule);
  WireDecoder dec(enc.buffer());
  Result<Rule> back = dec.GetRule();
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, *rule);
}

TEST(WireTest, DerivedSetRoundTrips) {
  DerivedSet s;
  s.target_peer = "jules";
  s.relation = "attendeePictures";
  s.tuples = {{I(1), S("a")}, {I(2), S("b")}};
  Envelope e;
  e.from = "emilien";
  e.to = "jules";
  e.message = Message::MakeDerivedSet(s);
  Envelope back = RoundTrip(e);
  EXPECT_EQ(back.message.derived.relation, "attendeePictures");
  ASSERT_EQ(back.message.derived.tuples.size(), 2u);
  EXPECT_EQ(back.message.derived.tuples[1][1], S("b"));
}

TEST(WireTest, RetractAndHelloRoundTrip) {
  Envelope e1;
  e1.from = "a";
  e1.to = "b";
  e1.message = Message::DelegationRetract(0xdeadbeefcafef00dULL);
  EXPECT_EQ(RoundTrip(e1).message.delegation_key, 0xdeadbeefcafef00dULL);

  Envelope e2;
  e2.from = "a";
  e2.to = "b";
  e2.message = Message::Hello("charlie");
  EXPECT_EQ(RoundTrip(e2).message.text, "charlie");

  Envelope e3;
  e3.from = "a";
  e3.to = "b";
  e3.message = Message::StreamForget("__query_0");
  Envelope back = RoundTrip(e3);
  EXPECT_EQ(back.message.type, MessageType::kStreamForget);
  EXPECT_EQ(back.message.text, "__query_0");
}

TEST(WireTest, BadMagicRejected) {
  Envelope e;
  e.from = "a";
  e.to = "b";
  e.message = Message::Hello("x");
  std::string bytes = EncodeEnvelope(e);
  bytes[0] = 'X';
  EXPECT_FALSE(DecodeEnvelope(bytes).ok());
}

TEST(WireTest, BadVersionRejected) {
  Envelope e;
  e.from = "a";
  e.to = "b";
  e.message = Message::Hello("x");
  std::string bytes = EncodeEnvelope(e);
  bytes[4] = '\x7f';  // version low byte
  EXPECT_FALSE(DecodeEnvelope(bytes).ok());
}

TEST(WireTest, TruncationAtEveryByteIsRejectedNotCrashing) {
  Envelope e;
  e.from = "emilien";
  e.to = "sigmod";
  e.message = Message::FactInserts(
      {Fact("pictures", "sigmod", {I(1), S("sea.jpg"),
                                   Value::MakeBlob("\x01\x02\x03")})});
  std::string bytes = EncodeEnvelope(e);
  for (size_t len = 0; len < bytes.size(); ++len) {
    Result<Envelope> r = DecodeEnvelope(bytes.substr(0, len));
    EXPECT_FALSE(r.ok()) << "prefix of length " << len << " decoded";
  }
}

TEST(WireTest, TrailingBytesRejected) {
  Envelope e;
  e.from = "a";
  e.to = "b";
  e.message = Message::Hello("x");
  std::string bytes = EncodeEnvelope(e) + "junk";
  EXPECT_FALSE(DecodeEnvelope(bytes).ok());
}

TEST(WireTest, RandomBytesNeverCrashDecoder) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    size_t len = rng.NextBelow(200);
    std::string bytes;
    bytes.reserve(len + 6);
    // Start with valid magic+version half the time to reach deeper code.
    if (trial % 2 == 0) {
      bytes += "WDLM";
      bytes += '\x01';
      bytes += '\x00';
    }
    for (size_t i = 0; i < len; ++i) {
      bytes += static_cast<char>(rng.NextBelow(256));
    }
    Result<Envelope> r = DecodeEnvelope(bytes);  // must not crash/UB
    (void)r;
  }
}

TEST(WireTest, HostileLengthPrefixRejectedWithoutAllocation) {
  // A DerivedSet claiming 2^24+ tuples in 10 bytes of payload.
  WireEncoder enc;
  enc.PutEnvelope(Envelope{});  // template for framing
  std::string bytes;
  {
    WireEncoder e2;
    bytes += "WDLM";
    bytes += '\x01';
    bytes += '\x00';
    e2.PutString("a");        // from
    e2.PutString("b");        // to
    e2.PutU64(0);             // seq
    e2.PutU8(2);              // kDerivedSet
    e2.PutString("b");        // target
    e2.PutString("rel");      // relation
    e2.PutU32(0xffffffffu);   // hostile count
    bytes += e2.buffer();
  }
  Result<Envelope> r = DecodeEnvelope(bytes);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace wdl
