#ifndef WDL_BASE_STRING_UTIL_H_
#define WDL_BASE_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace wdl {

/// Splits `input` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view input, char sep);

/// Joins `pieces` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Escapes a string for inclusion in double quotes in WebdamLog surface
/// syntax: backslash, quote, newline, tab, CR become escape sequences.
std::string EscapeString(std::string_view s);

/// Inverse of EscapeString. Returns false on a malformed escape.
bool UnescapeString(std::string_view s, std::string* out);

/// True iff `s` is a valid WebdamLog identifier: [A-Za-z_][A-Za-z0-9_]*.
bool IsIdentifier(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace wdl

#endif  // WDL_BASE_STRING_UTIL_H_
