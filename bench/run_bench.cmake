# Bench harness (cmake -P script). Runs every bench binary with Google
# Benchmark's JSON reporter and merges the per-binary reports into one
# machine-readable baseline file.
#
# Arguments (via -D):
#   BENCH_BINARIES  comma-separated list of bench executable paths
#   OUTPUT          path of the merged JSON baseline to write
#   MIN_TIME        --benchmark_min_time value in seconds (default 0.01)
#   RSS_RUN         optional path to the rss_run wrapper; when set, each
#                   suite's report gains a top-level "peak_rss_mb" key
#                   with the bench process's measured peak resident size
#
# Output shape:
#   { "schema": "wdl-bench-baseline-v1",
#     "min_time": "<seconds>",
#     "suites": { "<bench name>": <google-benchmark JSON report
#                                  (+ "peak_rss_mb")>, ... } }

if(NOT DEFINED BENCH_BINARIES OR NOT DEFINED OUTPUT)
  message(FATAL_ERROR "run_bench.cmake needs -DBENCH_BINARIES=... -DOUTPUT=...")
endif()
if(NOT DEFINED MIN_TIME)
  set(MIN_TIME 0.01)
endif()

string(REPLACE "," ";" bench_list "${BENCH_BINARIES}")
get_filename_component(out_dir "${OUTPUT}" DIRECTORY)

set(suites "")
foreach(bench_path IN LISTS bench_list)
  get_filename_component(bench_name "${bench_path}" NAME_WE)
  set(report "${out_dir}/${bench_name}.report.json")
  message(STATUS "bench: running ${bench_name} (min_time=${MIN_TIME}s)")
  set(bench_cmd "${bench_path}"
    "--benchmark_min_time=${MIN_TIME}"
    "--benchmark_repetitions=1"
    "--benchmark_out=${report}"
    "--benchmark_out_format=json")
  if(DEFINED RSS_RUN)
    set(rss_file "${out_dir}/${bench_name}.rss")
    set(bench_cmd "${RSS_RUN}" "${rss_file}" ${bench_cmd})
  endif()
  execute_process(
    COMMAND ${bench_cmd}
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench ${bench_name} exited with ${rc}")
  endif()
  file(READ "${report}" report_json)
  if(DEFINED RSS_RUN)
    file(READ "${rss_file}" peak_rss_mb)
    string(STRIP "${peak_rss_mb}" peak_rss_mb)
    # Graft the measurement into the report object's first line.
    string(REGEX REPLACE "^\\{" "{\n  \"peak_rss_mb\": ${peak_rss_mb},"
      report_json "${report_json}")
  endif()
  if(suites)
    string(APPEND suites ",\n")
  endif()
  string(APPEND suites "    \"${bench_name}\": ${report_json}")
endforeach()

file(WRITE "${OUTPUT}" "{
  \"schema\": \"wdl-bench-baseline-v1\",
  \"min_time\": \"${MIN_TIME}\",
  \"suites\": {
${suites}
  }
}
")
message(STATUS "bench: wrote merged baseline to ${OUTPUT}")
