// End-to-end convergence over real sockets, in one process: three
// Systems, each hosting one peer on its own TcpNetwork, run a
// recursive + delegation workload and must reach exactly the state the
// deterministic simulator computes — same canonical fingerprints. The
// second test kills one node mid-run and checks that the link-reset /
// resync machinery rebuilds it: restart is just a long message gap.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "net/tcp_network.h"
#include "runtime/fingerprint.h"
#include "runtime/system.h"

namespace wdl {
namespace {

const char* kAlice = R"(
  collection ext edge@alice(src: string, dst: string);
  collection int reach@alice(src: string, dst: string);
  collection ext selected@alice(p: string);
  collection int gallery@alice(id: int, name: string);
  fact edge@alice("a", "b");
  fact edge@alice("b", "c");
  fact edge@alice("c", "d");
  rule reach@alice($x, $y) :- edge@alice($x, $y);
  rule reach@alice($x, $z) :- reach@alice($x, $y), edge@alice($y, $z);
  fact selected@alice("bob");
  fact selected@alice("carol");
  rule gallery@alice($id, $n) :- selected@alice($p), pictures@$p($id, $n);
  rule mirror@bob($x, $y) :- reach@alice($x, $y);
)";

const char* kBob = R"(
  collection ext pictures@bob(id: int, name: string);
  fact pictures@bob(1, "sea.jpg");
  fact pictures@bob(2, "boat.jpg");
)";

const char* kCarol = R"(
  collection ext pictures@carol(id: int, name: string);
  fact pictures@carol(3, "cat.jpg");
)";

const std::vector<std::pair<std::string, const char*>> kCluster = {
    {"alice", kAlice}, {"bob", kBob}, {"carol", kCarol}};

/// Per-peer fingerprints from the deterministic simulator — the oracle
/// every TCP run must match.
std::map<std::string, std::string> SimulatorOracle() {
  System sim;
  PeerOptions po;
  po.trust_all_delegations = true;
  std::vector<Peer*> peers;
  for (const auto& [name, program] : kCluster) {
    peers.push_back(sim.CreatePeer(name, po));
  }
  for (size_t i = 0; i < peers.size(); ++i) {
    EXPECT_TRUE(peers[i]->LoadProgramText(kCluster[i].second).ok());
  }
  EXPECT_TRUE(sim.RunUntilQuiescent().ok());
  std::map<std::string, std::string> fps;
  for (Peer* p : peers) fps[p->name()] = PeerStateFingerprint(*p);
  return fps;
}

void WriteAddrFile(const std::string& path, uint16_t port) {
  std::string tmp = path + ".tmp";
  FILE* f = ::fopen(tmp.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "127.0.0.1:%u\n", port);
  ::fclose(f);
  ASSERT_EQ(::rename(tmp.c_str(), path.c_str()), 0);
}

struct Node {
  std::unique_ptr<System> system;
  Peer* peer = nullptr;
  TcpNetwork* tcp = nullptr;  // owned by system
};

Node MakeNode(const std::string& name, const char* program,
              const std::string& dir) {
  TcpNetworkOptions options;
  options.connect_retry_initial_ms = 5;
  options.connect_retry_max_ms = 50;
  auto net = std::make_unique<TcpNetwork>(options);
  EXPECT_TRUE(net->Start().ok());
  net->AddLocalPeer(name);
  for (const auto& [other, unused] : kCluster) {
    (void)unused;
    if (other != name) net->SetPeerAddressFile(other, dir + "/" + other + ".addr");
  }
  WriteAddrFile(dir + "/" + name + ".addr", net->port());

  Node node;
  node.tcp = net.get();
  node.system = std::make_unique<System>(std::move(net));
  PeerOptions po;
  po.trust_all_delegations = true;
  node.peer = node.system->CreatePeer(name, po);
  for (const auto& [other, unused] : kCluster) {
    (void)unused;
    if (other != name) node.peer->AddKnownPeer(other);
  }
  EXPECT_TRUE(node.peer->LoadProgramText(program).ok());
  return node;
}

/// Pumps every system round-robin until all of them have been locally
/// quiescent — nothing delivered, no stage run, nothing in flight —
/// for `idle_ms` of wall time. The idle window is what absorbs real
/// network latency: locally-quiet is not globally-done until frames
/// stop arriving too.
bool ConvergeAll(const std::vector<System*>& systems, int idle_ms = 300,
                 int max_wall_ms = 30000) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(max_wall_ms);
  Clock::time_point last_work = Clock::now();
  while (Clock::now() < deadline) {
    bool worked = false;
    for (System* s : systems) {
      RoundReport r = s->RunRound();
      worked |= r.envelopes_delivered > 0 || r.stages_run > 0;
    }
    if (worked) {
      last_work = Clock::now();
      continue;
    }
    bool all_quiet = true;
    for (System* s : systems) all_quiet &= s->IsQuiescent();
    if (all_quiet &&
        Clock::now() - last_work >= std::chrono::milliseconds(idle_ms)) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

std::string MakeTestDir() {
  std::string tmpl = ::testing::TempDir() + "/tcp_system_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr);
  return tmpl;
}

TEST(TcpSystemTest, ThreeNodesConvergeToSimulatorFingerprints) {
  auto oracle = SimulatorOracle();
  std::string dir = MakeTestDir();

  std::vector<Node> nodes;
  for (const auto& [name, program] : kCluster) {
    nodes.push_back(MakeNode(name, program, dir));
  }
  std::vector<System*> systems;
  for (Node& n : nodes) systems.push_back(n.system.get());

  ASSERT_TRUE(ConvergeAll(systems));
  for (Node& n : nodes) {
    EXPECT_EQ(PeerStateFingerprint(*n.peer), oracle[n.peer->name()])
        << "diverged: " << n.peer->name();
  }
}

TEST(TcpSystemTest, KilledAndRestartedNodeHealsToTheSameState) {
  auto oracle = SimulatorOracle();
  std::string dir = MakeTestDir();

  std::vector<Node> nodes;
  for (const auto& [name, program] : kCluster) {
    nodes.push_back(MakeNode(name, program, dir));
  }
  ASSERT_TRUE(ConvergeAll(
      {nodes[0].system.get(), nodes[1].system.get(), nodes[2].system.get()}));

  // Kill bob: all of bob's state — alice's mirror tuples, the delegated
  // gallery rule, the contribution slices — dies with the process.
  nodes[1] = Node{};  // dtor closes every socket mid-conversation

  // Restart from nothing but the program, on a brand-new port. The
  // survivors see their links to bob reset, re-ship delegations and
  // contribution snapshots, and ask for bob's streams again; bob
  // rebuilds from its base facts plus what the resync brings back.
  nodes[1] = MakeNode("bob", kBob, dir);

  ASSERT_TRUE(ConvergeAll(
      {nodes[0].system.get(), nodes[1].system.get(), nodes[2].system.get()}));
  for (Node& n : nodes) {
    EXPECT_EQ(PeerStateFingerprint(*n.peer), oracle[n.peer->name()])
        << "diverged after restart: " << n.peer->name();
  }
}

}  // namespace
}  // namespace wdl
