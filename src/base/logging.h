#ifndef WDL_BASE_LOGGING_H_
#define WDL_BASE_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace wdl {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Process-wide minimum level; messages below it are dropped.
/// Defaults to kWarning so tests and benches stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink: LogMessage(...) << "text";
/// Flushes one line to stderr on destruction; kFatal aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define WDL_LOG(level)                                              \
  ::wdl::internal_logging::LogMessage(::wdl::LogLevel::k##level,    \
                                      __FILE__, __LINE__)

// Invariant check that stays on in release builds: databases corrupt
// data silently when invariants are assumed away.
#define WDL_CHECK(cond)                                     \
  if (!(cond))                                              \
  ::wdl::internal_logging::LogMessage(::wdl::LogLevel::kFatal, __FILE__, \
                                      __LINE__)             \
      << "Check failed: " #cond " "

}  // namespace wdl

#endif  // WDL_BASE_LOGGING_H_
