#include "durability/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "base/logging.h"

namespace wdl {

namespace {

// A single frame never legitimately approaches this; a length field
// past it is corruption (or a file that is not a WAL at all), and
// treating it as a torn tail keeps recovery from attempting a
// gigabyte-sized allocation on a flipped bit.
constexpr uint64_t kMaxFrameBytes = 1ull << 30;

std::string ErrnoMessage(const char* op, const std::string& path) {
  return std::string(op) + " " + path + ": " + std::strerror(errno);
}

uint32_t ReadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;  // files are read on the machine that wrote them
}

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}

}  // namespace

const char* FsyncPolicyToString(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNever:
      return "never";
    case FsyncPolicy::kBatch:
      return "batch";
    case FsyncPolicy::kAlways:
      return "always";
  }
  return "unknown";
}

Result<FsyncPolicy> ParseFsyncPolicy(std::string_view text) {
  if (text == "never") return FsyncPolicy::kNever;
  if (text == "batch") return FsyncPolicy::kBatch;
  if (text == "always") return FsyncPolicy::kAlways;
  return Status::InvalidArgument("unknown fsync policy '" +
                                 std::string(text) +
                                 "' (expected never|batch|always)");
}

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char ch : data) {
    crc = kTable[(crc ^ ch) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::Unavailable(ErrnoMessage("open", path));
  }
  return std::unique_ptr<WalWriter>(new WalWriter(path, fd));
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::Append(std::string_view payload) {
  std::string frame;
  frame.reserve(8 + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload));
  frame.append(payload.data(), payload.size());
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n = ::write(fd_, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(ErrnoMessage("write", path_));
    }
    off += static_cast<size_t>(n);
  }
  ++records_;
  bytes_ += frame.size();
  return Status::OK();
}

Status WalWriter::Sync() {
  if (::fsync(fd_) != 0) {
    return Status::Unavailable(ErrnoMessage("fsync", path_));
  }
  return Status::OK();
}

Result<WalReadResult> ReadWalFile(const std::string& path) {
  WalReadResult out;
  Result<std::string> bytes = ReadEntireFile(path);
  if (!bytes.ok()) {
    if (bytes.status().code() == StatusCode::kNotFound) return out;
    return bytes.status();
  }
  const std::string& data = *bytes;
  uint64_t pos = 0;
  while (pos + 8 <= data.size()) {
    uint64_t len = ReadU32(data.data() + pos);
    uint32_t crc = ReadU32(data.data() + pos + 4);
    if (len > kMaxFrameBytes || pos + 8 + len > data.size()) break;
    std::string_view payload(data.data() + pos + 8, len);
    if (Crc32(payload) != crc) break;
    out.offsets.push_back(pos);
    out.payloads.emplace_back(payload);
    pos += 8 + len;
  }
  out.valid_bytes = pos;
  if (pos < data.size()) {
    out.torn_tail = true;
    out.dropped_bytes = data.size() - pos;
  }
  return out;
}

Status TruncateFile(const std::string& path, uint64_t length) {
  if (::truncate(path.c_str(), static_cast<off_t>(length)) != 0) {
    return Status::Unavailable(ErrnoMessage("truncate", path));
  }
  return Status::OK();
}

Result<std::string> ReadEntireFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return Status::Unavailable(ErrnoMessage("open", path));
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = Status::Unavailable(ErrnoMessage("read", path));
      ::close(fd);
      return st;
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Unavailable(ErrnoMessage("open dir", dir));
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Unavailable(ErrnoMessage("fsync dir", dir));
  }
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Unavailable(ErrnoMessage("open", tmp));
  }
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = Status::Unavailable(ErrnoMessage("write", tmp));
      ::close(fd);
      return st;
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status st = Status::Unavailable(ErrnoMessage("fsync", tmp));
    ::close(fd);
    return st;
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Unavailable(ErrnoMessage("rename", path));
  }
  size_t slash = path.find_last_of('/');
  return SyncDir(slash == std::string::npos ? "." : path.substr(0, slash));
}

}  // namespace wdl
