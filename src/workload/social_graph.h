#ifndef WDL_WORKLOAD_SOCIAL_GRAPH_H_
#define WDL_WORKLOAD_SOCIAL_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/result.h"
#include "runtime/peer.h"

namespace wdl {

class System;

/// Parameters of a synthetic follower graph. Popularity is
/// Zipf-distributed over peer ids: peer 0 is the biggest hub, peer 1
/// the second, and so on — the id *is* the popularity rank, which
/// keeps generation deterministic and hub selection trivial.
struct SocialGraphOptions {
  uint32_t num_peers = 1000;
  /// Average out-degree; total sampled edges ~= num_peers * this
  /// (slightly fewer survive self-loop and duplicate removal).
  uint32_t mean_followers = 8;
  /// Skew of the follow-target distribution: weight(rank r) = 1/(r+1)^s.
  /// 1.0 is the classic social-graph skew; 0.0 degenerates to uniform.
  double zipf_exponent = 1.0;
  uint64_t seed = 42;
};

/// A generated follower graph. "f follows v" means f's feed aggregates
/// v's posts; v's follower list is who a post of v fans out to.
struct SocialGraph {
  uint32_t num_peers = 0;
  size_t edge_count = 0;
  /// followers[v] = sorted, duplicate-free follower ids of v.
  std::vector<std::vector<uint32_t>> followers;

  uint32_t InDegree(uint32_t v) const {
    return static_cast<uint32_t>(followers[v].size());
  }
};

/// "u00000042" — fixed width so peer-name (map) order equals id order
/// and every name costs the same (fits std::string's inline buffer).
std::string SocialPeerName(uint32_t id);

SocialGraph GenerateSocialGraph(const SocialGraphOptions& options);

/// The WebdamLog program every social peer runs. One delegating rule:
///
///   rule feed@u($id, $who) :- follows@u($who), post@$who($id);
///
/// The body's variable-peer atom makes each followed peer a delegation
/// target: following installs a residual rule at the followee,
/// unfollowing retracts it, and a post at a hub fans out through the
/// hub's installed residuals to every follower's feed.
std::string SocialProgramText(const std::string& peer);

/// Options social peers are created with (delegations auto-trusted, so
/// follow storms install residuals without an approval step).
PeerOptions SocialPeerOptions();

/// One step of a churn script. Scripts are plain data so the same
/// sequence can drive a production (lazy) system and the eager oracle,
/// then compare fingerprints.
struct SocialOp {
  enum class Kind : uint8_t { kFollow, kUnfollow, kPost };
  Kind kind;
  uint32_t actor = 0;   // the follower (kFollow/kUnfollow) or author
  uint32_t target = 0;  // the followee; unused for kPost
  int64_t post_id = 0;  // unused for follow ops
};

/// Deterministic op sequence over actors [0, num_actors): ~half
/// follows (Zipf-picked targets, so hubs accrete followers), a quarter
/// unfollows of currently-followed targets, a quarter posts by
/// Zipf-picked authors. Unfollows are only emitted for live edges, so
/// every op does real work.
std::vector<SocialOp> MakeChurnScript(uint32_t num_peers,
                                      uint32_t num_actors, size_t num_ops,
                                      double zipf_exponent, uint64_t seed);

/// Applies ops / graph edges to a System, creating and programming
/// peers on first touch (so idle peers stay engine-less slots).
class SocialDriver {
 public:
  explicit SocialDriver(System* system) : system_(system) {}

  /// Creates `id`'s peer if absent and loads the social program once.
  Status EnsurePeer(uint32_t id);

  /// Installs the static graph: every edge becomes a follows-fact (and
  /// hence, after stages run, a residual rule at the followee).
  Status SeedFollows(const SocialGraph& graph);

  Status Follow(uint32_t follower, uint32_t followee);
  Status Unfollow(uint32_t follower, uint32_t followee);
  Status Post(uint32_t author, int64_t post_id);
  Status Apply(const SocialOp& op);

 private:
  System* system_;
  std::vector<bool> programmed_;
};

}  // namespace wdl

#endif  // WDL_WORKLOAD_SOCIAL_GRAPH_H_
