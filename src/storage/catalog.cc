#include "storage/catalog.h"

#include "base/string_util.h"

namespace wdl {

Status Catalog::Declare(const RelationDecl& decl) {
  if (decl.peer != owner_peer_) {
    return Status::InvalidArgument(StrFormat(
        "relation %s declared at peer '%s' cannot live in the catalog of "
        "peer '%s'",
        decl.PredicateId().c_str(), decl.peer.c_str(), owner_peer_.c_str()));
  }
  auto it = relations_.find(decl.relation);
  if (it != relations_.end()) {
    if (it->second->decl() == decl) return Status::OK();  // idempotent
    return Status::AlreadyExists(
        "relation " + decl.PredicateId() +
        " already declared with a different schema");
  }
  auto inserted =
      relations_.emplace(decl.relation, std::make_unique<Relation>(decl));
  Relation* rel = inserted.first->second.get();
  by_symbol_[rel->symbol().id()] = rel;
  return Status::OK();
}

bool Catalog::Undeclare(const std::string& relation) {
  auto it = relations_.find(relation);
  if (it == relations_.end()) return false;
  by_symbol_.erase(it->second->symbol().id());
  relations_.erase(it);
  return true;
}

Relation* Catalog::Get(const std::string& relation) {
  auto it = relations_.find(relation);
  return it == relations_.end() ? nullptr : it->second.get();
}

const Relation* Catalog::Get(const std::string& relation) const {
  auto it = relations_.find(relation);
  return it == relations_.end() ? nullptr : it->second.get();
}

Result<bool> Catalog::InsertFact(const Fact& fact) {
  if (fact.peer != owner_peer_) {
    return Status::InvalidArgument(StrFormat(
        "fact %s belongs to peer '%s', not '%s'", fact.ToString().c_str(),
        fact.peer.c_str(), owner_peer_.c_str()));
  }
  Relation* rel = Get(fact.relation);
  if (rel == nullptr) {
    if (!auto_declare_) {
      return Status::NotFound("relation " + fact.PredicateId() +
                              " is not declared");
    }
    RelationDecl decl;
    decl.relation = fact.relation;
    decl.peer = owner_peer_;
    decl.kind = RelationKind::kExtensional;
    decl.columns.resize(fact.arity());
    for (size_t i = 0; i < fact.arity(); ++i) {
      decl.columns[i].name = "c" + std::to_string(i);
      decl.columns[i].type = ValueKind::kAny;
    }
    WDL_RETURN_IF_ERROR(Declare(decl));
    rel = Get(fact.relation);
  }
  return rel->Insert(fact.args);
}

Result<bool> Catalog::RemoveFact(const Fact& fact) {
  if (fact.peer != owner_peer_) {
    return Status::InvalidArgument(StrFormat(
        "fact %s belongs to peer '%s', not '%s'", fact.ToString().c_str(),
        fact.peer.c_str(), owner_peer_.c_str()));
  }
  Relation* rel = Get(fact.relation);
  if (rel == nullptr) {
    return Status::NotFound("relation " + fact.PredicateId() +
                            " is not declared");
  }
  return rel->Remove(fact.args);
}

std::vector<std::string> Catalog::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;  // std::map iterates in sorted order
}

Result<std::vector<Fact>> Catalog::Snapshot(
    const std::string& relation) const {
  const Relation* rel = Get(relation);
  if (rel == nullptr) {
    return Status::NotFound("relation " + relation + "@" + owner_peer_ +
                            " is not declared");
  }
  std::vector<Fact> facts;
  for (Tuple& t : rel->SortedTuples()) {
    facts.emplace_back(relation, owner_peer_, std::move(t));
  }
  return facts;
}

size_t Catalog::TotalTuples() const {
  size_t total = 0;
  for (const auto& [name, rel] : relations_) total += rel->size();
  return total;
}

void Catalog::ForEachRelation(
    const std::function<void(Relation&)>& fn) {
  for (auto& [name, rel] : relations_) fn(*rel);
}

}  // namespace wdl
