#ifndef WDL_ACL_PROVENANCE_POLICY_H_
#define WDL_ACL_PROVENANCE_POLICY_H_

#include <vector>

#include "acl/policy.h"
#include "analysis/lineage.h"
#include "ast/rule.h"
#include "base/result.h"

namespace wdl {

/// Derives the paper's sketched default view policy from rule
/// provenance: every head predicate of `rules` is registered in
/// `policy` as a view over its lineage (the base predicates it
/// transitively reads), owned by the peer component of its predicate
/// id. After this call, AccessPolicy::CheckRead on a derived predicate
/// implements "access rights are derived according to system-wide
/// conventions" — readable only by peers that may read every base —
/// until the owner declassifies.
///
/// Base predicates in the lineage that are not yet registered are
/// registered on the fly, owned by their peer component. Views whose
/// lineage contains the wildcard "*" (an atom with a variable relation
/// or peer) are registered over a wildcard relation owned by nobody,
/// so provenance-derived reads on them always deny — the conservative
/// choice for a view that may read anything.
Status DerivePolicyFromRules(const std::vector<Rule>& rules,
                             AccessPolicy* policy);

/// The peer component of a "relation@peer" predicate id ("" if none).
std::string PredicateOwner(const std::string& predicate);

}  // namespace wdl

#endif  // WDL_ACL_PROVENANCE_POLICY_H_
