// Incremental-vs-recompute oracle suite (ISSUE PR4, DESIGN.md §6).
//
// With use_incremental_maintenance=true intensional relations persist
// across stages: Δ-sets (local EDB changes + slice-store support
// transitions) drive semi-naive evaluation forward, and deletions
// retract by support-counted DRed-style over-delete/re-derive. The
// recompute path (clear views + full fixpoint every stage) stays behind
// the flag as the oracle: every scenario here runs once per mode and
// the converged GlobalStateFingerprints must match byte for byte —
// including deletions, delegation installs/retracts, negation (which
// falls back to recompute transparently), and randomized multi-peer
// workloads.

#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "runtime/system.h"
#include "support/builders.h"
#include "support/fixture.h"

namespace wdl {
namespace {

using test::F;
using test::GlobalStateFingerprint;
using test::I;
using test::Settle;

PeerOptions Mode(bool incremental) {
  PeerOptions o;
  o.engine.use_incremental_maintenance = incremental;
  o.trust_all_delegations = true;
  return o;
}

void ExpectModesAgree(
    const std::function<void(System&, PeerOptions)>& scenario,
    SystemOptions sys_opts = {}) {
  std::string recompute;
  std::string incremental;
  {
    System system(sys_opts);
    scenario(system, Mode(false));
    recompute = GlobalStateFingerprint(system);
  }
  {
    System system(sys_opts);
    scenario(system, Mode(true));
    incremental = GlobalStateFingerprint(system);
  }
  EXPECT_EQ(recompute, incremental);
}

// --- single-engine unit coverage -------------------------------------

EngineOptions IncrementalOptions() {
  EngineOptions o;
  o.use_incremental_maintenance = true;
  return o;
}

void LoadChain(Engine* engine, int nodes) {
  Program p = test::P(R"(
    collection ext edge@a(x: int, y: int);
    collection int tc@a(x: int, y: int);
    rule tc@a($x, $y) :- edge@a($x, $y);
    rule tc@a($x, $z) :- edge@a($x, $y), tc@a($y, $z);
  )");
  ASSERT_TRUE(engine->LoadProgram(p).ok());
  for (int i = 0; i + 1 < nodes; ++i) {
    ASSERT_TRUE(engine->InsertFact(F("edge", "a", {I(i), I(i + 1)})).ok());
  }
  Settle(engine);
}

TEST(IncrementalEngineTest, InsertExtendsRecursiveViewSubLinearly) {
  Engine engine("a", IncrementalOptions());
  LoadChain(&engine, 50);  // tc = 50*49/2 = 1225 tuples
  const Relation* tc = engine.catalog().Get("tc");
  ASSERT_NE(tc, nullptr);
  EXPECT_EQ(tc->size(), 1225u);
  ASSERT_GE(engine.eval_counters().stages_full, 1u);

  uint64_t examined_before = engine.eval_counters().tuples_examined;
  uint64_t incr_before = engine.eval_counters().stages_incremental;
  ASSERT_TRUE(engine.InsertFact(F("edge", "a", {I(49), I(50)})).ok());
  Settle(&engine);
  EXPECT_EQ(tc->size(), 1275u);  // +50 pairs ending at 50
  EXPECT_GT(engine.eval_counters().stages_incremental, incr_before);
  // Δ-driven: the stage touches the new chains, not the whole view.
  // A recompute would re-examine >> |view| tuples.
  EXPECT_LT(engine.eval_counters().tuples_examined - examined_before, 1000u);
}

TEST(IncrementalEngineTest, DeleteRetractsCascadeAndReAddRestores) {
  Engine engine("a", IncrementalOptions());
  LoadChain(&engine, 20);
  const Relation* tc = engine.catalog().Get("tc");
  ASSERT_EQ(tc->size(), 190u);

  // Cutting edge (9,10) kills every path crossing it: 10 sources (0..9)
  // times 10 targets (10..19) = 100 pairs.
  ASSERT_TRUE(engine.RemoveFact(F("edge", "a", {I(9), I(10)})).ok());
  Settle(&engine);
  EXPECT_EQ(tc->size(), 90u);
  EXPECT_FALSE(tc->Contains({I(0), I(19)}));
  EXPECT_TRUE(tc->Contains({I(0), I(9)}));
  EXPECT_TRUE(tc->Contains({I(10), I(19)}));
  EXPECT_GE(engine.eval_counters().tuples_retracted, 100u);

  ASSERT_TRUE(engine.InsertFact(F("edge", "a", {I(9), I(10)})).ok());
  Settle(&engine);
  EXPECT_EQ(tc->size(), 190u);
  EXPECT_TRUE(tc->Contains({I(0), I(19)}));
}

TEST(IncrementalEngineTest, AlternativeDerivationSurvivesByRederivation) {
  Engine engine("a", IncrementalOptions());
  Program p = test::P(R"(
    collection ext e1@a(x: int);
    collection ext e2@a(x: int);
    collection int both@a(x: int);
    collection int chained@a(x: int);
    rule both@a($x) :- e1@a($x);
    rule both@a($x) :- e2@a($x);
    rule chained@a($x) :- both@a($x);
  )");
  ASSERT_TRUE(engine.LoadProgram(p).ok());
  ASSERT_TRUE(engine.InsertFact(F("e1", "a", {I(7)})).ok());
  ASSERT_TRUE(engine.InsertFact(F("e2", "a", {I(7)})).ok());
  Settle(&engine);
  const Relation* both = engine.catalog().Get("both");
  ASSERT_TRUE(both->Contains({I(7)}));

  // Deleting one source over-deletes both(7), but re-derivation finds
  // the second rule and nothing downstream churns away.
  ASSERT_TRUE(engine.RemoveFact(F("e1", "a", {I(7)})).ok());
  Settle(&engine);
  EXPECT_TRUE(both->Contains({I(7)}));
  EXPECT_TRUE(engine.catalog().Get("chained")->Contains({I(7)}));
  EXPECT_GE(engine.eval_counters().tuples_rederived, 1u);

  ASSERT_TRUE(engine.RemoveFact(F("e2", "a", {I(7)})).ok());
  Settle(&engine);
  EXPECT_FALSE(both->Contains({I(7)}));
  EXPECT_FALSE(engine.catalog().Get("chained")->Contains({I(7)}));
}

TEST(IncrementalEngineTest, RuleChangesFallBackToFullRecompute) {
  Engine engine("a", IncrementalOptions());
  LoadChain(&engine, 5);
  uint64_t full_before = engine.eval_counters().stages_full;
  Result<uint64_t> id = engine.AddRule(test::R(
      "rule tc@a($x, $x) :- edge@a($x, $y);"));
  ASSERT_TRUE(id.ok());
  Settle(&engine);
  EXPECT_GT(engine.eval_counters().stages_full, full_before);
  EXPECT_TRUE(engine.catalog().Get("tc")->Contains({I(0), I(0)}));

  ASSERT_TRUE(engine.RemoveRule(*id).ok());
  Settle(&engine);
  EXPECT_FALSE(engine.catalog().Get("tc")->Contains({I(0), I(0)}));
}

TEST(IncrementalEngineTest, NegationTouchingChangeFallsBack) {
  Engine engine("a", IncrementalOptions());
  Program p = test::P(R"(
    collection ext item@a(x: int);
    collection ext banned@a(x: int);
    collection int visible@a(x: int);
    rule visible@a($x) :- item@a($x), not banned@a($x);
  )");
  ASSERT_TRUE(engine.LoadProgram(p).ok());
  ASSERT_TRUE(engine.InsertFact(F("item", "a", {I(1)})).ok());
  ASSERT_TRUE(engine.InsertFact(F("item", "a", {I(2)})).ok());
  Settle(&engine);
  const Relation* visible = engine.catalog().Get("visible");
  EXPECT_EQ(visible->size(), 2u);

  // A change to the negated relation is incremental-ineligible; the
  // stage must fall back and still converge to the right answer.
  uint64_t full_before = engine.eval_counters().stages_full;
  ASSERT_TRUE(engine.InsertFact(F("banned", "a", {I(1)})).ok());
  Settle(&engine);
  EXPECT_GT(engine.eval_counters().stages_full, full_before);
  EXPECT_FALSE(visible->Contains({I(1)}));
  EXPECT_TRUE(visible->Contains({I(2)}));

  ASSERT_TRUE(engine.RemoveFact(F("banned", "a", {I(1)})).ok());
  Settle(&engine);
  EXPECT_TRUE(visible->Contains({I(1)}));
}

TEST(IncrementalEngineTest, SupportCountsKeepMultiSourceTuplesAlive) {
  // Two senders contribute overlapping slices into one view; the view
  // peer also derives one overlapping tuple locally. Tuples must leave
  // exactly when their last support (remote or derived) disappears.
  System system;
  Peer* hub = system.CreatePeer("hub", Mode(true));
  Peer* a = system.CreatePeer("a", Mode(true));
  Peer* b = system.CreatePeer("b", Mode(true));
  ASSERT_TRUE(hub->LoadProgramText(R"(
    collection ext own@hub(x: int);
    collection int board@hub(x: int);
    rule board@hub($x) :- own@hub($x);
  )").ok());
  ASSERT_TRUE(a->LoadProgramText(R"(
    collection ext data@a(x: int);
    rule board@hub($x) :- data@a($x);
  )").ok());
  ASSERT_TRUE(b->LoadProgramText(R"(
    collection ext data@b(x: int);
    rule board@hub($x) :- data@b($x);
  )").ok());
  ASSERT_TRUE(a->Insert(F("data", "a", {I(1)})).ok());
  ASSERT_TRUE(b->Insert(F("data", "b", {I(1)})).ok());
  ASSERT_TRUE(hub->Insert(F("own", "hub", {I(1)})).ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  const Relation* board = hub->engine().catalog().Get("board");
  ASSERT_TRUE(board->Contains({I(1)}));

  // Withdraw supports one at a time: the tuple survives until the last.
  ASSERT_TRUE(a->Remove(F("data", "a", {I(1)})).ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  EXPECT_TRUE(board->Contains({I(1)}));
  ASSERT_TRUE(hub->Remove(F("own", "hub", {I(1)})).ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  EXPECT_TRUE(board->Contains({I(1)}));  // b still contributes
  ASSERT_TRUE(b->Remove(F("data", "b", {I(1)})).ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  EXPECT_FALSE(board->Contains({I(1)}));
}

// --- multi-peer oracle scenarios -------------------------------------

void RecursiveViewScenario(System& system, PeerOptions mode) {
  Peer* a = system.CreatePeer("a", mode);
  ASSERT_TRUE(a->LoadProgramText(R"(
    collection ext edge@a(x: int, y: int);
    collection int tc@a(x: int, y: int);
    rule tc@a($x, $y) :- edge@a($x, $y);
    rule tc@a($x, $z) :- edge@a($x, $y), tc@a($y, $z);
  )").ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(a->Insert(F("edge", "a", {I(i), I(i + 1)})).ok());
  }
  ASSERT_TRUE(a->Insert(F("edge", "a", {I(4), I(9)})).ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  ASSERT_TRUE(a->Remove(F("edge", "a", {I(6), I(7)})).ok());
  ASSERT_TRUE(a->Remove(F("edge", "a", {I(0), I(1)})).ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  ASSERT_TRUE(a->Insert(F("edge", "a", {I(6), I(7)})).ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
}

TEST(IncrementalOracleTest, RecursiveViewWithChurn) {
  ExpectModesAgree(RecursiveViewScenario);
}

void MultiPeerDeletionScenario(System& system, PeerOptions mode) {
  Peer* hub = system.CreatePeer("hub", mode);
  Peer* a = system.CreatePeer("a", mode);
  Peer* b = system.CreatePeer("b", mode);
  ASSERT_TRUE(hub->LoadProgramText(R"(
    collection int board@hub(x: int);
    collection int big@hub(x: int);
    rule big@hub($x) :- board@hub($x), threshold@hub($x);
    collection ext threshold@hub(x: int);
  )").ok());
  ASSERT_TRUE(a->LoadProgramText(R"(
    collection ext data@a(x: int);
    rule board@hub($x) :- data@a($x);
  )").ok());
  ASSERT_TRUE(b->LoadProgramText(R"(
    collection ext data@b(x: int);
    rule board@hub($x) :- data@b($x);
  )").ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(a->Insert(F("data", "a", {I(i)})).ok());
    ASSERT_TRUE(hub->Insert(F("threshold", "hub", {I(i)})).ok());
  }
  for (int i = 5; i < 12; ++i) {
    ASSERT_TRUE(b->Insert(F("data", "b", {I(i)})).ok());
  }
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  // Overlapping deletion (6 survives via b), full deletion (0), and a
  // downstream-view cascade through big@hub.
  ASSERT_TRUE(a->Remove(F("data", "a", {I(6)})).ok());
  ASSERT_TRUE(a->Remove(F("data", "a", {I(0)})).ok());
  ASSERT_TRUE(b->Remove(F("data", "b", {I(11)})).ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  ASSERT_TRUE(hub->Remove(F("threshold", "hub", {I(3)})).ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
}

TEST(IncrementalOracleTest, MultiPeerOverlapAndDownstreamCascade) {
  ExpectModesAgree(MultiPeerDeletionScenario);
}

void DelegationChurnScenario(System& system, PeerOptions mode) {
  Peer* a = system.CreatePeer("a", mode);
  Peer* b = system.CreatePeer("b", mode);
  system.CreatePeer("c", mode);
  ASSERT_TRUE(a->LoadProgramText(R"(
    collection ext friends@a(who: string);
    collection int spotted@a(who: string);
  )").ok());
  ASSERT_TRUE(b->LoadProgramText(R"(
    collection ext seen@b(who: string);
    fact seen@b("carol");
    fact seen@b("erin");
  )").ok());
  ASSERT_TRUE(a->Insert(F("friends", "a", {test::S("carol")})).ok());
  ASSERT_TRUE(a->Insert(F("friends", "a", {test::S("dave")})).ok());
  // The remote body atom delegates one residual per friends binding.
  ASSERT_TRUE(a->AddRuleText(
      "rule spotted@a($w) :- friends@a($w), seen@b($w);").ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  // Deleting a friend must retract its residual at b and drain the
  // contribution; adding one must install a new residual.
  ASSERT_TRUE(a->Remove(F("friends", "a", {test::S("carol")})).ok());
  ASSERT_TRUE(a->Insert(F("friends", "a", {test::S("erin")})).ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
}

TEST(IncrementalOracleTest, DelegationInstallAndRetractOnDeletion) {
  ExpectModesAgree(DelegationChurnScenario);

  // Shape probe on the incremental run: carol's residual really left b.
  System system;
  DelegationChurnScenario(system, Mode(true));
  for (const InstalledRule* ir : system.GetPeer("b")->engine().rules()) {
    EXPECT_EQ(ir->rule.ToString().find("carol"), std::string::npos)
        << ir->rule.ToString();
  }
}

void DeletionRuleScenario(System& system, PeerOptions mode) {
  Peer* a = system.CreatePeer("a", mode);
  Peer* b = system.CreatePeer("b", mode);
  ASSERT_TRUE(a->LoadProgramText(R"(
    collection ext src@a(x: int);
    collection ext kill@a(x: int);
    rule p@b($x) :- src@a($x);
    rule -p@b($x) :- src@a($x), kill@a($x);
  )").ok());
  ASSERT_TRUE(b->LoadProgramText(
      "collection ext p@b(x: int);").ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(a->Insert(F("src", "a", {I(i)})).ok());
  }
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  ASSERT_TRUE(a->Insert(F("kill", "a", {I(2)})).ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  ASSERT_TRUE(a->Remove(F("kill", "a", {I(2)})).ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
}

TEST(IncrementalOracleTest, DeletionRulesAgree) {
  ExpectModesAgree(DeletionRuleScenario);
}

void NegationScenario(System& system, PeerOptions mode) {
  Peer* hub = system.CreatePeer("hub", mode);
  Peer* a = system.CreatePeer("a", mode);
  ASSERT_TRUE(hub->LoadProgramText(R"(
    collection ext blocked@hub(x: int);
    collection int feed@hub(x: int);
    collection int inbox@hub(x: int);
    rule feed@hub($x) :- inbox@hub($x), not blocked@hub($x);
  )").ok());
  ASSERT_TRUE(a->LoadProgramText(R"(
    collection ext posts@a(x: int);
    rule inbox@hub($x) :- posts@a($x);
  )").ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(a->Insert(F("posts", "a", {I(i)})).ok());
  }
  ASSERT_TRUE(hub->Insert(F("blocked", "hub", {I(2)})).ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  ASSERT_TRUE(hub->Insert(F("blocked", "hub", {I(4)})).ok());
  ASSERT_TRUE(a->Remove(F("posts", "a", {I(1)})).ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  ASSERT_TRUE(hub->Remove(F("blocked", "hub", {I(2)})).ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
}

TEST(IncrementalOracleTest, StratifiedNegationAgrees) {
  ExpectModesAgree(NegationScenario);
}

// Randomized multi-peer churn: the same seeded op sequence (inserts,
// deletes, delegation-producing rule add/remove) replayed against both
// modes, converging and fingerprint-comparing after every batch.
TEST(IncrementalOracleTest, RandomizedWorkloadsConvergeIdentically) {
  for (uint64_t seed : {7ull, 21ull, 1234ull}) {
    auto scenario = [seed](System& system, PeerOptions mode) {
      Peer* hub = system.CreatePeer("hub", mode);
      Peer* a = system.CreatePeer("a", mode);
      Peer* b = system.CreatePeer("b", mode);
      ASSERT_TRUE(hub->LoadProgramText(R"(
        collection int board@hub(x: int);
        collection int reach@hub(x: int);
        rule reach@hub($x) :- board@hub($x), links@hub($x, $y);
        rule reach@hub($y) :- reach@hub($x), links@hub($x, $y);
        collection ext links@hub(x: int, y: int);
      )").ok());
      ASSERT_TRUE(a->LoadProgramText(R"(
        collection ext data@a(x: int);
        rule board@hub($x) :- data@a($x);
      )").ok());
      ASSERT_TRUE(b->LoadProgramText(R"(
        collection ext data@b(x: int);
        rule board@hub($x) :- data@b($x);
      )").ok());
      Rng rng(seed);
      uint64_t spot_rule = 0;
      for (int batch = 0; batch < 6; ++batch) {
        for (int op = 0; op < 10; ++op) {
          int v = static_cast<int>(rng.NextBelow(12));
          switch (rng.NextBelow(6)) {
            case 0:
              ASSERT_TRUE(a->Insert(F("data", "a", {I(v)})).ok());
              break;
            case 1:
              ASSERT_TRUE(b->Insert(F("data", "b", {I(v)})).ok());
              break;
            case 2:
              (void)a->Remove(F("data", "a", {I(v)}));
              break;
            case 3:
              (void)b->Remove(F("data", "b", {I(v)}));
              break;
            case 4:
              ASSERT_TRUE(hub->Insert(
                  F("links", "hub", {I(v), I((v + 3) % 12)})).ok());
              break;
            case 5:
              (void)hub->Remove(F("links", "hub", {I(v), I((v + 3) % 12)}));
              break;
          }
        }
        // Occasionally churn a delegating rule (installs + retracts).
        if (batch == 2) {
          Result<uint64_t> id = b->AddRuleText(
              "rule spotted@b($x) :- data@b($x), data@a($x);");
          ASSERT_TRUE(id.ok());
          spot_rule = *id;
        }
        if (batch == 4 && spot_rule != 0) {
          ASSERT_TRUE(b->engine().RemoveRule(spot_rule).ok());
        }
        ASSERT_TRUE(system.RunUntilQuiescent(5000).ok());
      }
    };
    std::string recompute;
    std::string incremental;
    {
      System system;
      scenario(system, Mode(false));
      recompute = GlobalStateFingerprint(system);
    }
    {
      System system;
      scenario(system, Mode(true));
      incremental = GlobalStateFingerprint(system);
      // The incremental run must actually have exercised the Δ path.
      uint64_t incr_stages = 0;
      for (const std::string& name : system.PeerNames()) {
        incr_stages += system.GetPeer(name)
                           ->engine()
                           .eval_counters()
                           .stages_incremental;
      }
      EXPECT_GT(incr_stages, 0u) << "seed " << seed;
    }
    EXPECT_EQ(recompute, incremental) << "seed " << seed;
  }
}

}  // namespace
}  // namespace wdl
