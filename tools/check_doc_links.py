#!/usr/bin/env python3
"""Fail on broken relative links in the repo's markdown docs.

Checks every [text](target) whose target is not an absolute URL or a
bare #anchor: the referenced file must exist relative to the doc, and
a #section anchor into a checked markdown file must match one of its
headings (GitHub slug rules, approximately).
"""
import os
import re
import sys

DOCS = ["README.md", "DESIGN.md", "OPERATIONS.md", "ROADMAP.md", "CHANGES.md"]
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def slug(heading):
    s = heading.strip().lower()
    s = re.sub(r"[^\w\- ]", "", s, flags=re.UNICODE)
    return s.replace(" ", "-")


def anchors(path):
    with open(path, encoding="utf-8") as f:
        return {slug(m.group(1)) for m in re.finditer(r"^#+\s+(.*)$", f.read(), re.M)}


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    bad = []
    for doc in DOCS:
        doc_path = os.path.join(root, doc)
        if not os.path.exists(doc_path):
            continue
        with open(doc_path, encoding="utf-8") as f:
            text = f.read()
        for target in LINK.findall(text):
            if re.match(r"^[a-z]+://", target) or target.startswith("#"):
                continue
            file_part, _, anchor = target.partition("#")
            ref = os.path.normpath(os.path.join(os.path.dirname(doc_path), file_part))
            if not os.path.exists(ref):
                bad.append(f"{doc}: broken link target '{target}'")
            elif anchor and ref.endswith(".md") and slug(anchor) not in anchors(ref):
                bad.append(f"{doc}: no heading for anchor '{target}'")
    for b in bad:
        print(b, file=sys.stderr)
    print(f"check_doc_links: {len(bad)} broken link(s)")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
