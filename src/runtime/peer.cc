#include "runtime/peer.h"

#include "base/logging.h"
#include "parser/parser.h"

namespace wdl {

Peer::Peer(std::string name, PeerOptions options)
    : name_(std::move(name)),
      options_(options),
      engine_(name_, options.engine) {}

Status Peer::LoadProgramText(std::string_view source) {
  WDL_ASSIGN_OR_RETURN(Program program, ParseProgram(source));
  return engine_.LoadProgram(program);
}

Status Peer::LoadProgram(const Program& program) {
  return engine_.LoadProgram(program);
}

Result<uint64_t> Peer::AddRuleText(std::string_view rule_text) {
  WDL_ASSIGN_OR_RETURN(Rule rule, ParseRule(rule_text));
  return engine_.AddRule(rule);
}

void Peer::HandleEnvelope(const Envelope& envelope) {
  known_peers_.insert(envelope.from);
  const Message& m = envelope.message;
  switch (m.type) {
    case MessageType::kFactInserts:
      engine_.EnqueueFactInserts(m.facts);
      break;
    case MessageType::kFactDeletes:
      engine_.EnqueueFactDeletes(m.facts);
      break;
    case MessageType::kDerivedSet:
      engine_.EnqueueDerivedSet(envelope.from, m.derived);
      break;
    case MessageType::kDerivedDelta:
      engine_.EnqueueDerivedDelta(envelope.from, m.delta);
      break;
    case MessageType::kResyncRequest:
      engine_.EnqueueResyncRequest(envelope.from, m.text);
      break;
    case MessageType::kDelegationInstall: {
      DelegationGate::Decision decision =
          options_.trust_all_delegations
              ? DelegationGate::Decision::kAccepted
              : gate_.OnArrival(m.delegation);
      if (decision == DelegationGate::Decision::kAccepted) {
        Status st = engine_.InstallDelegatedRule(m.delegation);
        if (!st.ok()) {
          WDL_LOG(Warning) << name_ << ": rejected delegation from "
                           << m.delegation.origin_peer << ": " << st;
        }
      }
      break;
    }
    case MessageType::kDelegationRetract:
      if (!gate_.OnRetraction(m.delegation_key)) {
        engine_.RetractDelegatedRule(m.delegation_key);
      }
      break;
    case MessageType::kHello:
      known_peers_.insert(m.text);
      break;
  }
}

std::vector<Envelope> Peer::RunStage() {
  StageResult result = engine_.RunStage();
  std::vector<Envelope> out;
  for (auto& [target, outbound] : result.outbound) {
    auto make_envelope = [&](Message message) {
      Envelope e;
      e.from = name_;
      e.to = target;
      e.seq = next_seq_++;
      e.message = std::move(message);
      out.push_back(std::move(e));
    };
    for (DerivedSet& ds : outbound.derived_sets) {
      make_envelope(Message::MakeDerivedSet(std::move(ds)));
    }
    for (DerivedDelta& dd : outbound.derived_deltas) {
      make_envelope(Message::MakeDerivedDelta(std::move(dd)));
    }
    for (std::string& relation : outbound.resync_requests) {
      make_envelope(Message::ResyncRequest(std::move(relation)));
    }
    if (!outbound.fact_deletes.empty()) {
      make_envelope(Message::FactDeletes(std::move(outbound.fact_deletes)));
    }
    for (Delegation& d : outbound.delegation_installs) {
      make_envelope(Message::DelegationInstall(std::move(d)));
    }
    for (uint64_t key : outbound.delegation_retracts) {
      make_envelope(Message::DelegationRetract(key));
    }
  }
  return out;
}

std::vector<Envelope> Peer::MakeHeartbeats() {
  std::vector<Envelope> out;
  for (DerivedDelta& dd : engine_.CollectHeartbeats()) {
    Envelope e;
    e.from = name_;
    e.to = dd.target_peer;
    e.seq = next_seq_++;
    e.message = Message::MakeDerivedDelta(std::move(dd));
    out.push_back(std::move(e));
  }
  return out;
}

Status Peer::ApproveDelegation(uint64_t delegation_key) {
  WDL_ASSIGN_OR_RETURN(Delegation d, gate_.Approve(delegation_key));
  return engine_.InstallDelegatedRule(d);
}

Status Peer::RejectDelegation(uint64_t delegation_key) {
  return gate_.Reject(delegation_key);
}

std::string Peer::RenderProgramView() const {
  std::string out = "=== " + name_ + " ===\n";
  out += engine_.ProgramListing();
  out += gate_.RenderPending();
  return out;
}

std::string Peer::RenderRelation(const std::string& relation) const {
  const Relation* rel = engine_.catalog().Get(relation);
  std::string out = relation + "@" + name_;
  if (rel == nullptr) {
    return out + ": (not declared)\n";
  }
  out += " [" + std::string(RelationKindToString(rel->kind())) + ", " +
         std::to_string(rel->size()) + " tuples]\n";
  for (const Tuple& t : rel->SortedTuples()) {
    out += "  " + TupleToString(t) + "\n";
  }
  return out;
}

}  // namespace wdl
