#include "storage/slice_store.h"

#include <gtest/gtest.h>

#include "support/builders.h"

namespace wdl {
namespace {

using test::I;

using Gate = SliceStore::Gate;
using TupleSet = SliceStore::TupleSet;

TupleSet Set(std::initializer_list<int64_t> xs) {
  TupleSet s;
  for (int64_t x : xs) s.insert(Tuple{I(x)});
  return s;
}

std::vector<Tuple> Vec(std::initializer_list<int64_t> xs) {
  std::vector<Tuple> v;
  for (int64_t x : xs) v.push_back(Tuple{I(x)});
  return v;
}

std::vector<Tuple> Union(const SliceStore& store,
                         const std::string& relation) {
  std::vector<Tuple> out;
  store.ForEachContribution(relation, [&](const Tuple& t) {
    out.push_back(t);
  });
  std::sort(out.begin(), out.end());
  return out;
}

TEST(SliceStoreTest, ReplaceSliceDetectsRealChangesOnly) {
  SliceStore store;
  EXPECT_TRUE(store.ReplaceSlice("v", "q", Set({1, 2})));
  EXPECT_FALSE(store.ReplaceSlice("v", "q", Set({1, 2})));  // no-op
  EXPECT_TRUE(store.ReplaceSlice("v", "q", Set({2, 3})));
  EXPECT_EQ(Union(store, "v"), Vec({2, 3}));
  EXPECT_TRUE(store.ReplaceSlice("v", "q", Set({})));
  EXPECT_TRUE(Union(store, "v").empty());
}

TEST(SliceStoreTest, MultiSenderSupportCountsResolveOverlap) {
  SliceStore store;
  store.ReplaceSlice("v", "q", Set({1, 2}));
  store.ReplaceSlice("v", "r", Set({2, 3}));
  EXPECT_EQ(store.SupportCount("v", Tuple{I(1)}), 1u);
  EXPECT_EQ(store.SupportCount("v", Tuple{I(2)}), 2u);
  EXPECT_EQ(store.ContributorCount("v"), 2u);
  EXPECT_EQ(Union(store, "v"), Vec({1, 2, 3}));

  // q withdraws tuple 2: r still supports it, so the union keeps it.
  store.ReplaceSlice("v", "q", Set({1}));
  EXPECT_EQ(store.SupportCount("v", Tuple{I(2)}), 1u);
  EXPECT_EQ(Union(store, "v"), Vec({1, 2, 3}));

  // r withdraws it too: the last supporter is gone.
  store.ReplaceSlice("v", "r", Set({3}));
  EXPECT_EQ(store.SupportCount("v", Tuple{I(2)}), 0u);
  EXPECT_EQ(Union(store, "v"), Vec({1, 3}));
}

TEST(SliceStoreTest, ApplyDeltaIsIdempotentPerTuple) {
  SliceStore store;
  EXPECT_TRUE(store.ApplyDelta("v", "q", Vec({1, 2}), {}, 1));
  // Replaying the same inserts must not double-count support.
  EXPECT_FALSE(store.ApplyDelta("v", "q", Vec({1, 2}), {}, 1));
  EXPECT_EQ(store.SupportCount("v", Tuple{I(1)}), 1u);
  // Deleting an absent tuple is a no-op.
  EXPECT_FALSE(store.ApplyDelta("v", "q", {}, Vec({9}), 2));
  EXPECT_TRUE(store.ApplyDelta("v", "q", {}, Vec({1}), 3));
  EXPECT_EQ(Union(store, "v"), Vec({2}));
  EXPECT_EQ(store.StreamVersion("v", "q"), 3u);
}

TEST(SliceStoreTest, VersionGateOrdersOneStream) {
  SliceStore store;
  // Fresh stream is at version 0.
  EXPECT_EQ(store.CheckDelta("v", "q", 0, 1), Gate::kApply);
  store.ApplyDelta("v", "q", Vec({1}), {}, 1);

  EXPECT_EQ(store.CheckDelta("v", "q", 1, 2), Gate::kApply);
  EXPECT_EQ(store.CheckDelta("v", "q", 0, 1), Gate::kStale);  // duplicate
  EXPECT_EQ(store.CheckDelta("v", "q", 2, 3), Gate::kGap);    // lost v2
  // Malformed (non-increasing) deltas never commit a version backwards.
  EXPECT_EQ(store.CheckDelta("v", "q", 1, 0), Gate::kStale);
  EXPECT_EQ(store.CheckDelta("v", "q", 1, 1), Gate::kStale);

  // Snapshots repair gaps: anything at-or-ahead applies, older is stale.
  EXPECT_EQ(store.CheckSnapshot("v", "q", 0), Gate::kStale);
  EXPECT_EQ(store.CheckSnapshot("v", "q", 1), Gate::kApply);
  EXPECT_EQ(store.CheckSnapshot("v", "q", 5), Gate::kApply);

  // Streams are independent per sender and per relation.
  EXPECT_EQ(store.CheckDelta("v", "r", 0, 1), Gate::kApply);
  EXPECT_EQ(store.CheckDelta("w", "q", 0, 1), Gate::kApply);
}

TEST(SliceStoreTest, SnapshotReplacesSliceAndCommitsVersion) {
  SliceStore store;
  store.ApplyDelta("v", "q", Vec({1, 2}), {}, 1);
  EXPECT_TRUE(store.ApplySnapshot("v", "q", Set({2, 3}), 7));
  EXPECT_EQ(Union(store, "v"), Vec({2, 3}));
  EXPECT_EQ(store.StreamVersion("v", "q"), 7u);
  // Identical snapshot: version moves, content does not.
  EXPECT_FALSE(store.ApplySnapshot("v", "q", Set({2, 3}), 8));
  EXPECT_EQ(store.StreamVersion("v", "q"), 8u);
}

TEST(SliceStoreTest, CommitVersionTracksSliceLessStreams) {
  // Extensional targets keep no slice; only the stream position.
  SliceStore store;
  store.CommitVersion("inbox", "q", 4);
  EXPECT_EQ(store.StreamVersion("inbox", "q"), 4u);
  EXPECT_TRUE(Union(store, "inbox").empty());
  EXPECT_EQ(store.CheckDelta("inbox", "q", 4, 5), Gate::kApply);
}

TEST(SliceStoreTest, DropRelationForgetsEverything) {
  SliceStore store;
  store.ApplyDelta("v", "q", Vec({1}), {}, 3);
  store.DropRelation("v");
  EXPECT_TRUE(Union(store, "v").empty());
  EXPECT_EQ(store.StreamVersion("v", "q"), 0u);
  EXPECT_EQ(store.SupportCount("v", Tuple{I(1)}), 0u);
}

}  // namespace
}  // namespace wdl
