#ifndef WDL_ACL_POLICY_H_
#define WDL_ACL_POLICY_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "base/result.h"

namespace wdl {

/// Privileges on a relation.
enum class Privilege : uint8_t {
  kRead = 0,
  kWrite = 1,
  kGrant = 2,  // may extend grants to further peers
};

const char* PrivilegeToString(Privilege privilege);

/// The access-control model the paper sketches as "under active
/// investigation" (§2): a combination of
///  - discretionary grants — owners grant rights on stored relations
///    they own, and may delegate granting itself (kGrant);
///  - mandatory provenance-derived policy for views — by default, a
///    peer may read a derived relation only if it may read *every* base
///    relation the view is derived from (intersection semantics);
///  - declassification — the view owner may override the derived
///    policy with explicit grants, "declassifying" some data.
///
/// Relations are identified by predicate id ("relation@peer"). This
/// module is policy bookkeeping only; enforcement points live in the
/// runtime (delegation screening) and in applications.
class AccessPolicy {
 public:
  AccessPolicy() = default;

  /// Registers a stored relation with its owning peer. Owners hold all
  /// privileges implicitly.
  Status RegisterRelation(const std::string& predicate,
                          const std::string& owner);

  /// Registers `view` as derived from `bases` (predicate ids). The view
  /// must already be registered (it has an owner too).
  Status RegisterView(const std::string& view,
                      const std::vector<std::string>& bases);

  /// `grantor` grants `privilege` on `predicate` to `grantee`.
  /// Requires grantor to be the owner or to hold kGrant on it.
  Status Grant(const std::string& predicate, const std::string& grantor,
               const std::string& grantee, Privilege privilege);

  /// Removes a previously granted privilege (owner or kGrant holder).
  Status Revoke(const std::string& predicate, const std::string& revoker,
                const std::string& grantee, Privilege privilege);

  /// Direct privilege check against stored grants (no view derivation).
  bool CheckDirect(const std::string& predicate, const std::string& peer,
                   Privilege privilege) const;

  /// Full read check: for plain relations this is CheckDirect; for
  /// views, explicit grants on the view win (declassification),
  /// otherwise read access is the intersection over all base relations
  /// (computed recursively through view-over-view chains).
  bool CheckRead(const std::string& predicate,
                 const std::string& peer) const;

  /// Declassifies: the view's owner grants `grantee` read access that
  /// overrides the provenance-derived policy. Sugar over Grant(kRead).
  Status Declassify(const std::string& view, const std::string& owner,
                    const std::string& grantee);

  /// The owner of a registered predicate, or empty when unknown.
  std::string OwnerOf(const std::string& predicate) const;

 private:
  struct Entry {
    std::string owner;
    // privilege -> peers holding it via explicit grant
    std::map<Privilege, std::set<std::string>> grants;
    std::vector<std::string> bases;  // nonempty => view
  };

  bool CheckReadRec(const std::string& predicate, const std::string& peer,
                    std::set<std::string>* visiting) const;

  const Entry* Find(const std::string& predicate) const;

  std::map<std::string, Entry> entries_;
};

}  // namespace wdl

#endif  // WDL_ACL_POLICY_H_
