#ifndef WDL_RUNTIME_WRAPPER_H_
#define WDL_RUNTIME_WRAPPER_H_

#include <string>

#include "base/status.h"

namespace wdl {

class Peer;

/// Adapter between a peer and an external system (§2 "Wrappers"): it
/// "exports to WebdamLog one or more relations corresponding to the
/// data in X, as well as rules to access/update this data".
///
/// Setup() runs once when the wrapper is attached (declare relations,
/// install access rules); Sync() runs every system round and moves data
/// both ways: external changes become fact updates, and tuples that
/// rules derived into the exported relations become external actions
/// (posts, emails, ...).
class Wrapper {
 public:
  virtual ~Wrapper() = default;

  /// The peer this wrapper is bound to.
  virtual const std::string& peer_name() const = 0;

  virtual Status Setup(Peer* peer) = 0;
  virtual Status Sync(Peer* peer) = 0;
};

}  // namespace wdl

#endif  // WDL_RUNTIME_WRAPPER_H_
