#include "wrappers/facebook_wrapper.h"

#include "base/logging.h"

namespace wdl {

namespace {

RelationDecl MakeDecl(const std::string& relation, const std::string& peer,
                      std::vector<ColumnSpec> columns) {
  RelationDecl d;
  d.relation = relation;
  d.peer = peer;
  d.kind = RelationKind::kExtensional;
  d.columns = std::move(columns);
  return d;
}

}  // namespace

FacebookGroupWrapper::FacebookGroupWrapper(std::string peer_name,
                                           FacebookService* service,
                                           std::string group)
    : peer_name_(std::move(peer_name)),
      service_(service),
      group_(std::move(group)) {}

Status FacebookGroupWrapper::Setup(Peer* peer) {
  WDL_RETURN_IF_ERROR(peer->engine().DeclareRelation(
      MakeDecl("pictures", peer_name_,
               {{"id", ValueKind::kInt},
                {"name", ValueKind::kString},
                {"owner", ValueKind::kString},
                {"data", ValueKind::kBlob}})));
  WDL_RETURN_IF_ERROR(peer->engine().DeclareRelation(
      MakeDecl("comments", peer_name_,
               {{"picId", ValueKind::kInt},
                {"author", ValueKind::kString},
                {"text", ValueKind::kString}})));
  return Status::OK();
}

Status FacebookGroupWrapper::Sync(Peer* peer) {
  Relation* pictures = peer->engine().catalog().Get("pictures");
  Relation* comments = peer->engine().catalog().Get("comments");
  if (pictures == nullptr || comments == nullptr) {
    return Status::Internal("FacebookGroupWrapper relations missing");
  }

  // Outbound first: tuples rules derived into pictures@<peer> that the
  // wall does not have yet are posted to the service.
  std::vector<Tuple> to_post;
  pictures->ForEach([&](const Tuple& t) {
    if (t.size() == 4 && t[0].is_int() &&
        !service_->GroupHasPicture(group_, t[0].AsInt())) {
      to_post.push_back(t);
    }
  });
  for (const Tuple& t : to_post) {
    FacebookService::Picture pic;
    pic.id = t[0].AsInt();
    pic.name = t[1].is_string() ? t[1].AsString() : t[1].ToString();
    pic.owner = t[2].is_string() ? t[2].AsString() : t[2].ToString();
    pic.data = t[3].is_blob() ? t[3].AsBlob().bytes : t[3].ToString();
    Status st = service_->PostPicture(group_, pic);
    if (st.ok()) {
      ++pictures_posted_;
    } else {
      ++rejected_posts_;
      WDL_LOG(Warning) << "Facebook rejected post of picture " << pic.id
                       << ": " << st;
      // Remove the tuple so the rejection is visible in the relation
      // too (the wall is the source of truth for this peer).
      Result<bool> removed = pictures->Remove(t);
      (void)removed;
    }
  }

  // Inbound: changes on the wall become local fact insertions.
  if (service_->version() == last_seen_version_) return Status::OK();
  last_seen_version_ = service_->version();

  for (const FacebookService::Picture& pic :
       service_->GroupPictures(group_)) {
    Tuple t{Value::Int(pic.id), Value::String(pic.name),
            Value::String(pic.owner), Value::MakeBlob(pic.data)};
    if (!pictures->Contains(t)) {
      Fact f("pictures", peer_name_, std::move(t));
      Result<bool> r = peer->engine().InsertFact(f);
      if (r.ok() && *r) ++pictures_imported_;
    }
  }
  for (const FacebookService::Comment& c :
       service_->GroupComments(group_)) {
    Tuple t{Value::Int(c.picture_id), Value::String(c.author),
            Value::String(c.text)};
    if (!comments->Contains(t)) {
      Fact f("comments", peer_name_, std::move(t));
      Result<bool> r = peer->engine().InsertFact(f);
      (void)r;
    }
  }
  return Status::OK();
}

FacebookUserWrapper::FacebookUserWrapper(std::string peer_name,
                                         FacebookService* service,
                                         std::string user)
    : peer_name_(std::move(peer_name)),
      service_(service),
      user_(std::move(user)) {}

Status FacebookUserWrapper::Setup(Peer* peer) {
  WDL_RETURN_IF_ERROR(peer->engine().DeclareRelation(
      MakeDecl("friends", peer_name_,
               {{"userID", ValueKind::kString},
                {"friendName", ValueKind::kString}})));
  WDL_RETURN_IF_ERROR(peer->engine().DeclareRelation(
      MakeDecl("pictures", peer_name_,
               {{"picID", ValueKind::kInt},
                {"owner", ValueKind::kString},
                {"url", ValueKind::kString}})));
  return Status::OK();
}

Status FacebookUserWrapper::Sync(Peer* peer) {
  if (service_->version() == last_seen_version_) return Status::OK();
  last_seen_version_ = service_->version();

  for (const std::string& friend_name : service_->FriendsOf(user_)) {
    Fact f("friends", peer_name_,
           {Value::String(user_), Value::String(friend_name)});
    Result<bool> r = peer->engine().InsertFact(f);
    (void)r;
  }
  for (const FacebookService::Picture& pic : service_->UserPictures(user_)) {
    Fact f("pictures", peer_name_,
           {Value::Int(pic.id), Value::String(pic.owner),
            Value::String("fb://" + user_ + "/" + pic.name)});
    Result<bool> r = peer->engine().InsertFact(f);
    (void)r;
  }
  return Status::OK();
}

}  // namespace wdl
