#include "runtime/query.h"

#include <cctype>
#include <cstdlib>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "engine/demand.h"
#include "parser/parser.h"

namespace wdl {

namespace {

// Scratch relation names are recycled through a free pool: every name
// ever minted interns one permanent symbol-table entry (base/symbol.h),
// so a long-lived System issuing millions of ad-hoc queries must reuse
// a bounded set of names instead of minting "__query_<n>" forever. The
// pool is process-wide (names must be unique across concurrent queries
// on any System in the process, like the old atomic counter).
std::mutex g_query_names_mu;
std::vector<std::string>& QueryNamePool() {
  static std::vector<std::string> pool;
  return pool;
}

std::string AcquireQueryName() {
  static uint64_t counter = 0;
  std::lock_guard<std::mutex> lock(g_query_names_mu);
  std::vector<std::string>& pool = QueryNamePool();
  if (!pool.empty()) {
    std::string name = std::move(pool.back());
    pool.pop_back();
    return name;
  }
  return "__query_" + std::to_string(counter++);
}

void ReleaseQueryName(std::string name) {
  std::lock_guard<std::mutex> lock(g_query_names_mu);
  QueryNamePool().push_back(std::move(name));
}

// The demand path's placeholder head relation: parses the body without
// drawing from the scratch-name pool (the demand path installs
// nothing, so the name never reaches a catalog).
constexpr char kDemandQueryRelation[] = "__demand_query";

bool DefaultUseDemandEvaluation() {
  static const bool value = [] {
    // Both fixed demand-path names intern exactly once, up front, so
    // issuing queries never grows the symbol table (the scratch-name
    // recycling invariant).
    Symbol::Intern(kDemandQueryRelation);
    Symbol::Intern(kDemandAtomName);
    const char* env = std::getenv("WDL_QUERY_DEMAND");
    if (env == nullptr) return true;
    std::string v(env);
    for (char& c : v) c = static_cast<char>(std::tolower(c));
    return !(v == "0" || v == "off" || v == "false");
  }();
  return value;
}

/// Parses `body` under a placeholder head and rebuilds the head from
/// the body's variables in order of first occurrence — the query rule
/// both evaluation paths run, and the result's column list.
Result<Rule> BuildQueryRule(const std::string& relation,
                            const std::string& peer_name,
                            const std::string& body,
                            std::vector<std::string>* columns) {
  WDL_ASSIGN_OR_RETURN(
      Rule skeleton,
      ParseRule(relation + "@" + peer_name + "() :- " + body));

  auto note_var = [&](const std::string& v) {
    for (const std::string& existing : *columns) {
      if (existing == v) return;
    }
    columns->push_back(v);
  };
  for (const Atom& atom : skeleton.body) {
    if (atom.relation.is_variable()) note_var(atom.relation.var());
    if (atom.peer.is_variable()) note_var(atom.peer.var());
    for (const Term& t : atom.args) {
      if (t.is_variable()) note_var(t.var());
    }
  }

  Rule query_rule = std::move(skeleton);
  query_rule.head.args.clear();
  for (const std::string& v : *columns) {
    query_rule.head.args.push_back(Term::Variable(v));
  }
  return query_rule;
}

}  // namespace

QueryOptions::QueryOptions()
    : use_demand_evaluation(DefaultUseDemandEvaluation()) {}

std::string QueryResult::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ", ";
    out += "$" + columns[i];
  }
  out += ")\n";
  for (const Tuple& row : rows) {
    out += "  " + TupleToString(row) + "\n";
  }
  if (rows.empty()) out += "  (no rows)\n";
  return out;
}

Result<QueryResult> RunQuery(System* system, const std::string& peer_name,
                             const std::string& body, int max_rounds) {
  QueryOptions options;
  options.max_rounds = max_rounds;
  return RunQuery(system, peer_name, body, options);
}

Result<QueryResult> RunQuery(System* system, const std::string& peer_name,
                             const std::string& body,
                             const QueryOptions& options) {
  Peer* peer = system->GetPeer(peer_name);
  if (peer == nullptr) {
    return Status::NotFound("no peer named " + peer_name);
  }

  if (options.use_demand_evaluation) {
    // The demand path installs nothing, so it parses under a fixed
    // placeholder head (one permanent symbol process-wide) instead of
    // drawing from the scratch-name pool. Parse failures fall through:
    // the full path re-parses and reports the identical error.
    std::vector<std::string> columns;
    Result<Rule> query_rule =
        BuildQueryRule(kDemandQueryRelation, peer_name, body, &columns);
    if (query_rule.ok()) {
      // Demand evaluation is only sound against a converged system
      // (engine/demand.h); convergence must come first because it can
      // install delegated rules that change the reachability analysis.
      int rounds_before = system->rounds_run();
      if (!system->IsQuiescent()) {
        WDL_ASSIGN_OR_RETURN(int ignored,
                             system->RunUntilQuiescent(options.max_rounds));
        (void)ignored;
      }
      DemandEvaluator evaluator(&peer->engine());
      if (evaluator.Prepare(*query_rule).ok()) {
        QueryResult result;
        result.columns = std::move(columns);
        result.rows = evaluator.Run();
        result.rounds = system->rounds_run() - rounds_before;
        result.demand_path = true;
        result.tuples_examined = evaluator.stats().tuples_examined;
        return result;
      }
      // Ineligible (unbound, cross-peer, negation, deletion rules, ...):
      // fall through to the full fixpoint.
    }
  }

  // Unique while in use (concurrent/nested queries never collide),
  // recycled afterwards so the symbol table stays bounded.
  std::string relation = AcquireQueryName();

  std::vector<std::string> columns;
  Result<Rule> query_rule_result =
      BuildQueryRule(relation, peer_name, body, &columns);
  if (!query_rule_result.ok()) {
    ReleaseQueryName(std::move(relation));  // nothing was declared
    return query_rule_result.status();
  }
  Rule query_rule = std::move(query_rule_result).value();

  RelationDecl decl;
  decl.relation = relation;
  decl.peer = peer_name;
  decl.kind = RelationKind::kIntensional;
  decl.columns.resize(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) {
    decl.columns[i].name = columns[i];
    decl.columns[i].type = ValueKind::kAny;
  }
  Status declared = peer->engine().DeclareRelation(decl);
  if (!declared.ok()) {
    ReleaseQueryName(std::move(relation));
    return declared;
  }
  Result<uint64_t> rule_id = peer->engine().AddRule(query_rule);
  if (!rule_id.ok()) {
    if (peer->engine().DropScratchRelation(relation).ok()) {
      ReleaseQueryName(std::move(relation));
    }
    return rule_id.status();
  }

  int rounds_before = system->rounds_run();
  uint64_t tuples_before = peer->engine().eval_counters().tuples_examined;
  Result<int> converged = system->RunUntilQuiescent(options.max_rounds);

  QueryResult result;
  result.columns = columns;
  const Relation* rel = peer->engine().catalog().Get(relation);
  if (rel != nullptr) result.rows = rel->SortedTuples();
  result.rounds =
      (converged.ok() ? *converged : system->rounds_run()) - rounds_before;
  result.tuples_examined =
      peer->engine().eval_counters().tuples_examined - tuples_before;

  // Tear down: remove the rule and converge again so any delegated
  // residuals are retracted at remote peers, then drop the scratch
  // relation and recycle its name. A system that failed to quiesce may
  // still have scratch traffic in flight, so the name is abandoned
  // (leaked, like the pre-recycling behavior) rather than reused.
  // Dropping queues kStreamForget notices toward every remote sender
  // that streamed a contribution here; the final converge flushes them
  // so both ends of the stream restart at version 0 and the recycled
  // name's next use begins with a clean snapshot instead of a
  // gap->resync round trip. Purely local queries queue nothing and the
  // flush converge is a no-op.
  Status removed = peer->engine().RemoveRule(*rule_id);
  bool torn_down = system->RunUntilQuiescent(options.max_rounds).ok();
  if (removed.ok() && torn_down &&
      peer->engine().DropScratchRelation(relation).ok() &&
      system->RunUntilQuiescent(options.max_rounds).ok()) {
    ReleaseQueryName(std::move(relation));
  }
  WDL_RETURN_IF_ERROR(removed);
  if (!converged.ok()) return converged.status();
  return result;
}

}  // namespace wdl
