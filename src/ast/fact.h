#ifndef WDL_AST_FACT_H_
#define WDL_AST_FACT_H_

#include <ostream>
#include <string>
#include <vector>

#include "ast/value.h"

namespace wdl {

/// A ground fact m@p(a1,...,an): a tuple of values located in relation
/// `relation` at peer `peer`. Facts are the unit of data exchanged
/// between peers.
struct Fact {
  std::string relation;
  std::string peer;
  std::vector<Value> args;

  Fact() = default;
  Fact(std::string relation_in, std::string peer_in,
       std::vector<Value> args_in)
      : relation(std::move(relation_in)),
        peer(std::move(peer_in)),
        args(std::move(args_in)) {}

  size_t arity() const { return args.size(); }

  /// "rel@peer" — the locator of the relation this fact belongs to.
  std::string PredicateId() const { return relation + "@" + peer; }

  /// Surface syntax: rel@peer(v1, v2, ...).
  std::string ToString() const;

  uint64_t Hash() const;

  bool operator==(const Fact& o) const {
    return relation == o.relation && peer == o.peer && args == o.args;
  }
  bool operator!=(const Fact& o) const { return !(*this == o); }
  /// Lexicographic on (peer, relation, args): canonical print order.
  bool operator<(const Fact& o) const;
};

inline std::ostream& operator<<(std::ostream& os, const Fact& f) {
  return os << f.ToString();
}

struct FactHasher {
  size_t operator()(const Fact& f) const {
    return static_cast<size_t>(f.Hash());
  }
};

}  // namespace wdl

#endif  // WDL_AST_FACT_H_
