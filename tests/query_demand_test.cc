// Demand-driven query evaluation (DESIGN.md §10): the magic-set path
// and the full-fixpoint scratch-rule path must return identical
// QueryResults on every query — the demand path is an optimization,
// never a semantics change. Ineligible queries (unbound, cross-peer,
// negation or deletion rules in the reachable cone) must fall back to
// the full path transparently.

#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/query.h"
#include "support/builders.h"

namespace wdl {
namespace {

using test::I;
using test::S;

QueryOptions Demand(bool on) {
  QueryOptions o;
  o.use_demand_evaluation = on;
  return o;
}

/// Runs `body` at `peer` in both modes and requires identical columns
/// and rows (the full path is the demand path's differential oracle).
/// Returns the demand-mode result for extra assertions.
QueryResult ExpectModesAgree(System* system, const std::string& peer,
                             const std::string& body) {
  Result<QueryResult> demand = RunQuery(system, peer, body, Demand(true));
  Result<QueryResult> full = RunQuery(system, peer, body, Demand(false));
  EXPECT_EQ(demand.ok(), full.ok()) << body;
  if (!demand.ok() || !full.ok()) return QueryResult{};
  EXPECT_EQ(demand->columns, full->columns) << body;
  EXPECT_EQ(demand->rows, full->rows) << body;
  EXPECT_FALSE(full->demand_path) << body;
  return std::move(demand).value();
}

class QueryDemandTest : public ::testing::Test {
 protected:
  void LoadChainProgram(Peer* peer, int nodes) {
    ASSERT_TRUE(peer->LoadProgramText(R"(
      collection ext edge@a(x: int, y: int);
      collection int path@a(x: int, y: int);
      rule path@a($x, $y) :- edge@a($x, $y);
      rule path@a($x, $z) :- edge@a($x, $y), path@a($y, $z);
    )").ok());
    for (int i = 0; i + 1 < nodes; ++i) {
      ASSERT_TRUE(peer->engine()
                      .InsertFact(Fact("edge", "a", {I(i), I(i + 1)}))
                      .ok());
    }
  }
};

TEST_F(QueryDemandTest, BoundPointQueryTakesDemandPath) {
  System system;
  Peer* a = system.CreatePeer("a");
  LoadChainProgram(a, 8);
  ASSERT_TRUE(system.RunUntilQuiescent().ok());

  QueryResult r = ExpectModesAgree(&system, "a", "path@a(2, $y)");
  EXPECT_TRUE(r.demand_path);
  ASSERT_EQ(r.rows.size(), 5u);  // 3..7
  EXPECT_EQ(r.rows.front(), (Tuple{I(3)}));
  EXPECT_EQ(r.rows.back(), (Tuple{I(7)}));
}

TEST_F(QueryDemandTest, FullyBoundMembershipQuery) {
  System system;
  Peer* a = system.CreatePeer("a");
  LoadChainProgram(a, 8);
  ASSERT_TRUE(system.RunUntilQuiescent().ok());

  QueryResult hit = ExpectModesAgree(&system, "a", "path@a(1, 6)");
  EXPECT_TRUE(hit.demand_path);
  EXPECT_EQ(hit.rows.size(), 1u);  // the empty tuple: membership holds
  QueryResult miss = ExpectModesAgree(&system, "a", "path@a(6, 1)");
  EXPECT_TRUE(miss.demand_path);
  EXPECT_TRUE(miss.rows.empty());
}

TEST_F(QueryDemandTest, LastPositionBoundQuery) {
  System system;
  Peer* a = system.CreatePeer("a");
  LoadChainProgram(a, 8);
  ASSERT_TRUE(system.RunUntilQuiescent().ok());

  // Adornment 0b10: who reaches node 5?
  QueryResult r = ExpectModesAgree(&system, "a", "path@a($x, 5)");
  EXPECT_TRUE(r.demand_path);
  EXPECT_EQ(r.rows.size(), 5u);  // 0..4
}

TEST_F(QueryDemandTest, UnboundQueryFallsBack) {
  System system;
  Peer* a = system.CreatePeer("a");
  LoadChainProgram(a, 6);
  ASSERT_TRUE(system.RunUntilQuiescent().ok());

  QueryResult r = ExpectModesAgree(&system, "a", "path@a($x, $y)");
  EXPECT_FALSE(r.demand_path);
  EXPECT_EQ(r.rows.size(), 15u);  // C(6,2) pairs on a 6-chain
}

TEST_F(QueryDemandTest, BoundExtensionalOnlyQuery) {
  System system;
  Peer* a = system.CreatePeer("a");
  LoadChainProgram(a, 6);
  ASSERT_TRUE(system.RunUntilQuiescent().ok());

  QueryResult r = ExpectModesAgree(&system, "a", "edge@a(3, $y)");
  EXPECT_TRUE(r.demand_path);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0], (Tuple{I(4)}));
}

TEST_F(QueryDemandTest, JoinThroughIntensionalAndExtensional) {
  System system;
  Peer* a = system.CreatePeer("a");
  LoadChainProgram(a, 8);
  ASSERT_TRUE(system.RunUntilQuiescent().ok());

  QueryResult r = ExpectModesAgree(
      &system, "a", "edge@a(0, $y), path@a($y, $z)");
  EXPECT_TRUE(r.demand_path);
  EXPECT_EQ(r.rows.size(), 6u);  // y=1, z in 2..7
}

TEST_F(QueryDemandTest, NonlinearRecursionProbesItsOwnFragment) {
  // Nonlinear transitive closure: the recursive rule reads its own
  // head's fragment twice, so EmitHead fires while a probe of that same
  // fragment (and RegisterDemand while a probe of its own demand set)
  // is live on the stack. Regression test for the mid-iteration-insert
  // bug: emits must land in `pending` and only reach `all` at the
  // rotation, or the live scan/index over `all` is invalidated and the
  // demand path silently diverges from the oracle.
  System system;
  Peer* a = system.CreatePeer("a");
  ASSERT_TRUE(a->LoadProgramText(R"(
    collection ext edge@a(x: int, y: int);
    collection int p@a(x: int, y: int);
    rule p@a($x, $y) :- edge@a($x, $y);
    rule p@a($x, $z) :- p@a($x, $y), p@a($y, $z);
  )").ok());
  const int kNodes = 24;  // long chain => many rounds, many rehashes
  for (int i = 0; i + 1 < kNodes; ++i) {
    ASSERT_TRUE(
        a->engine().InsertFact(Fact("edge", "a", {I(i), I(i + 1)})).ok());
  }
  ASSERT_TRUE(system.RunUntilQuiescent().ok());

  QueryResult fwd = ExpectModesAgree(&system, "a", "p@a(0, $y)");
  EXPECT_TRUE(fwd.demand_path);
  EXPECT_EQ(fwd.rows.size(), static_cast<size_t>(kNodes - 1));
  // Last-position-bound adornment: the recursive body's first fragment
  // atom has no bound column, forcing the full-scan probe path.
  QueryResult bwd = ExpectModesAgree(&system, "a", "p@a($x, 23)");
  EXPECT_TRUE(bwd.demand_path);
  EXPECT_EQ(bwd.rows.size(), static_cast<size_t>(kNodes - 1));
  QueryResult member = ExpectModesAgree(&system, "a", "p@a(3, 19)");
  EXPECT_TRUE(member.demand_path);
  EXPECT_EQ(member.rows.size(), 1u);
}

TEST_F(QueryDemandTest, RecursionOverSeededFragment) {
  // A slice-store-seeded fragment (received cross-peer contributions)
  // feeding a local nonlinear-recursive writer: the seeded tuples enter
  // through `pending` and the first Δ rotation, then the recursion
  // probes the fragment it is growing — the other reviewer-flagged
  // route into the mid-iteration insert.
  System system;
  Peer* a = system.CreatePeer("a");
  Peer* b = system.CreatePeer("b");
  a->gate().TrustPeer("b");
  b->gate().TrustPeer("a");
  ASSERT_TRUE(a->LoadProgramText(R"(
    collection ext link@a(x: int, y: int);
    rule hop@b($x, $y) :- link@a($x, $y);
  )").ok());
  ASSERT_TRUE(b->LoadProgramText(R"(
    collection int hop@b(x: int, y: int);
    collection int reach@b(x: int, y: int);
    rule reach@b($x, $y) :- hop@b($x, $y);
    rule reach@b($x, $z) :- reach@b($x, $y), reach@b($y, $z);
  )").ok());
  for (int i = 0; i + 1 < 10; ++i) {
    ASSERT_TRUE(
        a->engine().InsertFact(Fact("link", "a", {I(i), I(i + 1)})).ok());
  }
  ASSERT_TRUE(system.RunUntilQuiescent().ok());

  QueryResult r = ExpectModesAgree(&system, "b", "reach@b(0, $y)");
  EXPECT_TRUE(r.demand_path);
  EXPECT_EQ(r.rows.size(), 9u);
}

TEST_F(QueryDemandTest, NegationInConeFallsBack) {
  System system;
  Peer* a = system.CreatePeer("a");
  ASSERT_TRUE(a->LoadProgramText(R"(
    collection ext node@a(x: int);
    collection ext blocked@a(x: int);
    collection int open@a(x: int);
    rule open@a($x) :- node@a($x), not blocked@a($x);
    fact node@a(1); fact node@a(2); fact node@a(3);
    fact blocked@a(2);
  )").ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());

  QueryResult r = ExpectModesAgree(&system, "a", "open@a(1)");
  EXPECT_FALSE(r.demand_path);
  EXPECT_EQ(r.rows.size(), 1u);
  // Negation on an extensional atom directly in the query body is
  // equally ineligible.
  QueryResult q =
      ExpectModesAgree(&system, "a", "node@a(3), not blocked@a(3)");
  EXPECT_FALSE(q.demand_path);
}

TEST_F(QueryDemandTest, DeletionRuleInConeFallsBack) {
  System system;
  Peer* a = system.CreatePeer("a");
  ASSERT_TRUE(a->LoadProgramText(R"(
    collection ext stock@a(item: string);
    collection ext sold@a(item: string);
    rule -stock@a($i) :- sold@a($i);
    fact stock@a("kept");
  )").ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());

  // stock is extensional — readable from the catalog — so a bound query
  // on it stays demand-eligible even with the deletion rule installed.
  QueryResult r = ExpectModesAgree(&system, "a", "stock@a(\"kept\")");
  EXPECT_TRUE(r.demand_path);
  EXPECT_EQ(r.rows.size(), 1u);
}

TEST_F(QueryDemandTest, CrossPeerQueryFallsBack) {
  System system;
  Peer* a = system.CreatePeer("a");
  Peer* b = system.CreatePeer("b");
  a->gate().TrustPeer("b");
  b->gate().TrustPeer("a");
  ASSERT_TRUE(a->LoadProgramText(R"(
    collection ext likes@a(who: string, what: string);
    fact likes@a("a", "jazz");
  )").ok());
  ASSERT_TRUE(b->LoadProgramText(R"(
    collection ext likes@b(who: string, what: string);
    fact likes@b("b", "jazz");
  )").ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());

  QueryResult r = ExpectModesAgree(
      &system, "a", "likes@a(\"a\", $x), likes@b($other, $x)");
  EXPECT_FALSE(r.demand_path);
  EXPECT_EQ(r.rows.size(), 1u);
}

TEST_F(QueryDemandTest, RemoteContributionsSeedFragments) {
  // b's view is fed by a rule at a deriving into b: the demand path
  // must see those received contributions (slice store), not recompute
  // them.
  System system;
  Peer* a = system.CreatePeer("a");
  Peer* b = system.CreatePeer("b");
  a->gate().TrustPeer("b");
  b->gate().TrustPeer("a");
  ASSERT_TRUE(a->LoadProgramText(R"(
    collection ext local@a(x: int);
    rule seen@b($x) :- local@a($x);
    fact local@a(1); fact local@a(2);
  )").ok());
  ASSERT_TRUE(b->LoadProgramText(R"(
    collection int seen@b(x: int);
    collection int doubled@b(x: int);
    rule doubled@b($x) :- seen@b($x);
  )").ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());

  QueryResult direct = ExpectModesAgree(&system, "b", "seen@b(2)");
  EXPECT_TRUE(direct.demand_path);
  EXPECT_EQ(direct.rows.size(), 1u);
  QueryResult derived = ExpectModesAgree(&system, "b", "doubled@b(1)");
  EXPECT_TRUE(derived.demand_path);
  EXPECT_EQ(derived.rows.size(), 1u);
}

TEST_F(QueryDemandTest, DemandTouchesOnlyReachableTuples) {
  System system;
  Peer* a = system.CreatePeer("a");
  // 50 disjoint chains of length 4: a bound query on one chain head
  // must not look at the other 49 chains.
  ASSERT_TRUE(a->LoadProgramText(R"(
    collection ext edge@a(x: int, y: int);
    collection int path@a(x: int, y: int);
    rule path@a($x, $y) :- edge@a($x, $y);
    rule path@a($x, $z) :- edge@a($x, $y), path@a($y, $z);
  )").ok());
  for (int c = 0; c < 50; ++c) {
    for (int i = 0; i < 4; ++i) {
      int node = c * 10 + i;
      ASSERT_TRUE(a->engine()
                      .InsertFact(Fact("edge", "a", {I(node), I(node + 1)}))
                      .ok());
    }
  }
  ASSERT_TRUE(system.RunUntilQuiescent().ok());

  Result<QueryResult> demand =
      RunQuery(&system, "a", "path@a(0, $y)", Demand(true));
  Result<QueryResult> full =
      RunQuery(&system, "a", "path@a(0, $y)", Demand(false));
  ASSERT_TRUE(demand.ok() && full.ok());
  ASSERT_TRUE(demand->demand_path);
  EXPECT_EQ(demand->rows, full->rows);
  EXPECT_EQ(demand->rows.size(), 4u);
  // O(relevant): one chain's worth of tuples, not the whole graph. The
  // full path re-derives all 50 chains' closures (200 edges, 500 path
  // tuples); the demand cone is bounded by one chain.
  EXPECT_GT(demand->tuples_examined, 0u);
  EXPECT_LT(demand->tuples_examined, 100u);
  EXPECT_LT(demand->tuples_examined * 5, full->tuples_examined);
}

TEST_F(QueryDemandTest, QueriesLeaveNoTraceBehind) {
  System system;
  Peer* a = system.CreatePeer("a");
  LoadChainProgram(a, 6);
  ASSERT_TRUE(system.RunUntilQuiescent().ok());

  ASSERT_TRUE(RunQuery(&system, "a", "path@a(0, $y)", Demand(true)).ok());
  size_t symbols = Symbol::TableSizeForTesting();
  size_t rules = a->engine().rules().size();
  std::vector<std::string> names = a->engine().catalog().RelationNames();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        RunQuery(&system, "a", "path@a(0, $y)", Demand(true)).ok());
    ASSERT_TRUE(
        RunQuery(&system, "a", "path@a($x, 3)", Demand(true)).ok());
  }
  EXPECT_EQ(Symbol::TableSizeForTesting(), symbols);
  EXPECT_EQ(a->engine().rules().size(), rules);
  EXPECT_EQ(a->engine().catalog().RelationNames(), names);
}

TEST_F(QueryDemandTest, RandomizedBindingPatternSweep) {
  // Random sparse graph, every binding pattern of path/edge queries,
  // random constants (present and absent): both modes must agree on
  // every single query.
  System system;
  Peer* a = system.CreatePeer("a");
  ASSERT_TRUE(a->LoadProgramText(R"(
    collection ext edge@a(x: int, y: int);
    collection int path@a(x: int, y: int);
    collection int back@a(x: int, y: int);
    rule path@a($x, $y) :- edge@a($x, $y);
    rule path@a($x, $z) :- edge@a($x, $y), path@a($y, $z);
    rule back@a($y, $x) :- path@a($x, $y);
  )").ok());
  std::mt19937 rng(1234);
  const int kNodes = 24;
  std::uniform_int_distribution<int> node(0, kNodes - 1);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(a->engine()
                    .InsertFact(Fact("edge", "a", {I(node(rng)), I(node(rng))}))
                    .ok());
  }
  ASSERT_TRUE(system.RunUntilQuiescent().ok());

  std::uniform_int_distribution<int> constant(0, kNodes + 3);  // some misses
  const std::vector<std::string> relations = {"edge", "path", "back"};
  std::uniform_int_distribution<size_t> pick(0, relations.size() - 1);
  std::uniform_int_distribution<int> pattern(0, 2);  // 01, 10, 11
  for (int q = 0; q < 60; ++q) {
    const std::string& rel = relations[pick(rng)];
    int pat = pattern(rng);
    std::string first = (pat == 1) ? "$x" : std::to_string(constant(rng));
    std::string second = (pat == 0) ? "$y" : std::to_string(constant(rng));
    std::string body = rel + "@a(" + first + ", " + second + ")";
    QueryResult r = ExpectModesAgree(&system, "a", body);
    EXPECT_TRUE(r.demand_path) << body;
  }
  // And a handful of random two-atom joins with a bound seed.
  for (int q = 0; q < 20; ++q) {
    std::string body = "edge@a(" + std::to_string(constant(rng)) +
                       ", $y), path@a($y, $z)";
    ExpectModesAgree(&system, "a", body);
  }
}

TEST_F(QueryDemandTest, MutateBetweenQueriesStaysConsistent) {
  // The demand path recomputes from base state on every call; inserts
  // and deletes between queries must be reflected exactly like the
  // full path reflects them.
  System system;
  Peer* a = system.CreatePeer("a");
  LoadChainProgram(a, 5);
  ASSERT_TRUE(system.RunUntilQuiescent().ok());

  QueryResult before = ExpectModesAgree(&system, "a", "path@a(0, $y)");
  EXPECT_EQ(before.rows.size(), 4u);

  // Extend the chain: 4 -> 5.
  ASSERT_TRUE(a->engine().InsertFact(Fact("edge", "a", {I(4), I(5)})).ok());
  QueryResult extended = ExpectModesAgree(&system, "a", "path@a(0, $y)");
  EXPECT_TRUE(extended.demand_path);
  EXPECT_EQ(extended.rows.size(), 5u);

  // Cut the chain at 2 -> 3.
  ASSERT_TRUE(a->engine().RemoveFact(Fact("edge", "a", {I(2), I(3)})).ok());
  QueryResult cut = ExpectModesAgree(&system, "a", "path@a(0, $y)");
  EXPECT_EQ(cut.rows.size(), 2u);
}

}  // namespace
}  // namespace wdl
