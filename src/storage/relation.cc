#include "storage/relation.h"

#include <algorithm>

#include "base/string_util.h"

namespace wdl {

Status Relation::CheckTuple(const Tuple& tuple) const {
  if (tuple.size() != decl_.arity()) {
    return Status::OutOfRange(StrFormat(
        "tuple %s has arity %zu; relation %s expects %zu",
        TupleToString(tuple).c_str(), tuple.size(),
        decl_.PredicateId().c_str(), decl_.arity()));
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    ValueKind want = decl_.columns[i].type;
    if (want != ValueKind::kAny && tuple[i].kind() != want) {
      return Status::InvalidArgument(StrFormat(
          "tuple %s: column %zu (%s) of %s expects %s but got %s",
          TupleToString(tuple).c_str(), i, decl_.columns[i].name.c_str(),
          decl_.PredicateId().c_str(), ValueKindToString(want),
          ValueKindToString(tuple[i].kind())));
    }
  }
  return Status::OK();
}

Result<bool> Relation::Insert(Tuple tuple) {
  WDL_RETURN_IF_ERROR(CheckTuple(tuple));
  auto [it, inserted] = tuples_.insert(std::move(tuple));
  if (inserted) {
    ++version_;
    indexes_.OnInsert(&*it);
  }
  return inserted;
}

Result<bool> Relation::Remove(const Tuple& tuple) {
  WDL_RETURN_IF_ERROR(CheckTuple(tuple));
  auto it = tuples_.find(tuple);
  if (it == tuples_.end()) return false;
  indexes_.OnRemove(&*it);
  tuples_.erase(it);
  ++version_;
  return true;
}

void Relation::Clear() {
  if (!tuples_.empty()) ++version_;
  tuples_.clear();
  indexes_.ClearEntries();
}

std::vector<Tuple> Relation::SortedTuples() const {
  std::vector<Tuple> out(tuples_.begin(), tuples_.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace wdl
