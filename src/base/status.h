#ifndef WDL_BASE_STATUS_H_
#define WDL_BASE_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>

namespace wdl {

// Error taxonomy for the whole library. Codes are stable and compact so
// they can cross the wire inside control messages.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,   // caller passed something malformed
  kNotFound = 2,          // relation / peer / rule does not exist
  kAlreadyExists = 3,     // duplicate schema / peer registration
  kFailedPrecondition = 4,// operation illegal in current state
  kOutOfRange = 5,        // index / arity violation
  kUnimplemented = 6,     // dialect feature disabled (e.g. negation in 2013 mode)
  kInternal = 7,          // invariant broken; a bug in this library
  kParseError = 8,        // surface-syntax error with position info
  kPermissionDenied = 9,  // access-control rejection
  kUnavailable = 10,      // peer unreachable / network partitioned
};

/// Returns a human-readable name for `code` ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A Status carries either success (`kOk`) or an error code plus message.
/// This library does not use exceptions; every fallible operation returns
/// Status or Result<T>. Statuses are cheap to copy in the OK case (the
/// message string is empty).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Propagates a non-OK Status to the caller.
#define WDL_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::wdl::Status _wdl_status = (expr);             \
    if (!_wdl_status.ok()) return _wdl_status;      \
  } while (false)

}  // namespace wdl

#endif  // WDL_BASE_STATUS_H_
