#ifndef WDL_RUNTIME_PEER_H_
#define WDL_RUNTIME_PEER_H_

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "acl/delegation_gate.h"
#include "engine/engine.h"
#include "net/message.h"

namespace wdl {

struct PeerOptions {
  EngineOptions engine;
  /// When true, every origin is treated as trusted and delegations
  /// install without approval (the behavior of peers that opted out of
  /// delegation control; the default mirrors the paper: untrusted).
  bool trust_all_delegations = false;
  /// When true, the Engine (catalog, evaluator, slice store, trackers)
  /// is not built until the peer first needs it: first fact, first
  /// rule, or first inbound frame that carries engine work. An idle
  /// peer is then a name plus a few empty containers — the property
  /// that lets one process host 100k+ simulated peers (DESIGN.md §9).
  /// False (the default for standalone peers; System sets it from
  /// SystemOptions::lazy_peer_state) allocates eagerly at construction
  /// — the oracle path, byte-identical to the pre-lazy runtime.
  bool lazy_engine = false;
};

/// One WebdamLog peer: an engine plus the delegation gate and the glue
/// that turns engine stage output into network envelopes and inbound
/// envelopes into engine inputs. Peers are driven by a System but can
/// also be used standalone in tests.
///
/// Concurrency contract (DESIGN.md §8): a Peer's state is touched by
/// exactly one thread at a time, but *different* peers' RunStage calls
/// may run concurrently — everything a stage reads or writes is owned
/// by this peer (engine, catalog, gate, sequence numbers) or is one of
/// the process-wide thread-safe structures (the Symbol intern table).
/// Envelope delivery (HandleEnvelope) and the returned envelopes'
/// submission stay on the System's driving thread.
class Peer {
 public:
  explicit Peer(std::string name, PeerOptions options = {});

  Peer(const Peer&) = delete;
  Peer& operator=(const Peer&) = delete;

  const std::string& name() const { return name_; }
  /// The peer's engine, materializing it on first touch in lazy mode
  /// (const access too — callers that merely *inspect* an idle peer
  /// without forcing allocation should check has_engine() first).
  Engine& engine() { return EnsureEngine(); }
  const Engine& engine() const { return EnsureEngine(); }
  /// True when the engine has been materialized (always, in eager
  /// mode). An engine-less peer holds no facts, no rules, no streams.
  bool has_engine() const { return engine_ != nullptr; }
  DelegationGate& gate() { return gate_; }
  const DelegationGate& gate() const { return gate_; }

  /// Parses `source` as WebdamLog text and loads it into the engine.
  Status LoadProgramText(std::string_view source);
  Status LoadProgram(const Program& program);

  /// Convenience passthroughs for the user API.
  Result<bool> Insert(const Fact& fact) {
    return EnsureEngine().InsertFact(fact);
  }
  Result<bool> Remove(const Fact& fact) {
    return EnsureEngine().RemoveFact(fact);
  }
  Result<uint64_t> AddRuleText(std::string_view rule_text);

  /// Routes one arriving envelope into the engine / delegation gate.
  void HandleEnvelope(const Envelope& envelope);

  /// Runs one engine stage and returns the envelopes to transmit.
  std::vector<Envelope> RunStage();

  /// Version-only heartbeat envelopes for every contribution stream
  /// this peer has shipped (see Engine::CollectHeartbeats). The runtime
  /// submits these periodically so a receiver that lost the last frame
  /// of a then-silent stream detects the gap within one heartbeat
  /// interval instead of waiting for the next organic change.
  std::vector<Envelope> MakeHeartbeats();

  bool HasPendingWork() const {
    return engine_ != nullptr && engine_->HasPendingWork();
  }

  /// A transport-level link to `remote` was lost/re-established; streams
  /// re-establish through the resync machinery. No-op for an engine-less
  /// peer (it has no streams), without materializing it.
  void NoteLinkReset(const std::string& remote) {
    if (engine_ != nullptr) engine_->NoteLinkReset(remote);
  }

  /// Approximate resident bytes of this peer's fixed bookkeeping: the
  /// Peer object plus its heap-allocated name/known-peer strings. For a
  /// materialized peer this *excludes* engine state (catalog tuples,
  /// plans, streams scale with data, not peer count); the idle-peer
  /// memory model (DESIGN.md §9) and its regression ceiling are about
  /// the per-peer fixed cost.
  size_t ApproxIdleBytes() const;

  /// Approves a pending delegation: installs the rule ("the program of
  /// Jules is changed once the approval is granted", §4).
  Status ApproveDelegation(uint64_t delegation_key);
  Status RejectDelegation(uint64_t delegation_key);

  /// Peers this peer has heard of (populated from traffic — envelope
  /// senders and Hello announcements — or explicitly by a host that
  /// wires up a static topology, e.g. wdl_peerd).
  const std::set<std::string>& known_peers() const { return known_peers_; }
  void AddKnownPeer(const std::string& peer) { known_peers_.insert(peer); }

  /// Textual UI: program listing plus the pending-delegation queue
  /// (the paper's Figure 3 view).
  std::string RenderProgramView() const;

  /// Textual UI: contents of one relation as a table-ish frame
  /// (the paper's Figure 1 frames).
  std::string RenderRelation(const std::string& relation) const;

 private:
  /// Materializes the engine (lazy mode) or returns the existing one.
  /// Const because materialization is a caching concern, not a logical
  /// state change: a fresh engine holds exactly the state an idle peer
  /// logically has (nothing).
  Engine& EnsureEngine() const;

  std::string name_;
  PeerOptions options_;
  // The only heavyweight member, lazily allocated when lazy_engine is
  // set; everything else an idle peer carries is a few empty containers.
  mutable std::unique_ptr<Engine> engine_;
  DelegationGate gate_;
  std::set<std::string> known_peers_;
  uint64_t next_seq_ = 0;
};

}  // namespace wdl

#endif  // WDL_RUNTIME_PEER_H_
