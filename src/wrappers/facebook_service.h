#ifndef WDL_WRAPPERS_FACEBOOK_SERVICE_H_
#define WDL_WRAPPERS_FACEBOOK_SERVICE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "base/result.h"

namespace wdl {

/// An in-memory stand-in for the Facebook backend the paper's wrapper
/// talked to: users, friendships, groups, group picture walls, and
/// comments. It is the *external system X* of §2's wrapper definition —
/// deliberately knowing nothing about WebdamLog. The substitution
/// argument (DESIGN.md §2) is that the wrapper contract only needs an
/// external store with reads and writes, which this provides.
///
/// A monotone version counter lets wrappers detect changes cheaply.
class FacebookService {
 public:
  struct Picture {
    int64_t id = 0;
    std::string name;
    std::string owner;
    std::string data;  // binary payload

    bool operator<(const Picture& o) const { return id < o.id; }
  };

  struct Comment {
    int64_t picture_id = 0;
    std::string author;
    std::string text;
  };

  FacebookService() = default;

  // --- account management ------------------------------------------
  void AddUser(const std::string& user);
  bool HasUser(const std::string& user) const;
  /// Symmetric friendship; users are created on demand.
  void AddFriendship(const std::string& a, const std::string& b);
  std::vector<std::string> FriendsOf(const std::string& user) const;

  // --- groups --------------------------------------------------------
  void CreateGroup(const std::string& group);
  bool HasGroup(const std::string& group) const;
  Status JoinGroup(const std::string& group, const std::string& user);
  std::vector<std::string> GroupMembers(const std::string& group) const;

  // --- content ---------------------------------------------------------
  /// Posts a picture on a group wall; owner must be a member.
  /// Duplicate picture ids on the same wall are ignored (idempotent).
  Status PostPicture(const std::string& group, const Picture& picture);
  std::vector<Picture> GroupPictures(const std::string& group) const;
  bool GroupHasPicture(const std::string& group, int64_t picture_id) const;

  /// Pictures on a user's own profile (used by user-account wrappers).
  void AddUserPicture(const std::string& user, const Picture& picture);
  std::vector<Picture> UserPictures(const std::string& user) const;

  Status AddComment(const std::string& group, const Comment& comment);
  std::vector<Comment> GroupComments(const std::string& group) const;

  /// Bumped on every successful mutation.
  uint64_t version() const { return version_; }

 private:
  std::set<std::string> users_;
  std::map<std::string, std::set<std::string>> friends_;
  std::map<std::string, std::set<std::string>> group_members_;
  std::map<std::string, std::map<int64_t, Picture>> group_pictures_;
  std::map<std::string, std::vector<Comment>> group_comments_;
  std::map<std::string, std::map<int64_t, Picture>> user_pictures_;
  uint64_t version_ = 0;
};

}  // namespace wdl

#endif  // WDL_WRAPPERS_FACEBOOK_SERVICE_H_
