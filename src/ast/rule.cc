#include "ast/rule.h"

#include "base/logging.h"

namespace wdl {

bool Atom::IsGround() const {
  if (relation.is_variable() || peer.is_variable()) return false;
  for (const Term& t : args) {
    if (t.is_variable()) return false;
  }
  return true;
}

Fact Atom::ToFact() const {
  WDL_CHECK(IsGround()) << "ToFact on non-ground atom " << ToString();
  std::vector<Value> values;
  values.reserve(args.size());
  for (const Term& t : args) values.push_back(t.value());
  return Fact(relation.name(), peer.name(), std::move(values));
}

void Atom::CollectVariables(std::set<std::string>* out) const {
  if (relation.is_variable()) out->insert(relation.var());
  if (peer.is_variable()) out->insert(peer.var());
  for (const Term& t : args) {
    if (t.is_variable()) out->insert(t.var());
  }
}

std::string Atom::ToString() const {
  std::string out;
  if (negated) out += "not ";
  out += relation.ToString() + "@" + peer.ToString() + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString();
  }
  out += ")";
  return out;
}

uint64_t Atom::Hash() const {
  uint64_t h = negated ? 0x517cc1b727220a95ULL : 0;
  h = HashCombine(h, relation.Hash());
  h = HashCombine(h, peer.Hash());
  for (const Term& t : args) h = HashCombine(h, t.Hash());
  return h;
}

std::set<std::string> Rule::Variables() const {
  std::set<std::string> vars;
  head.CollectVariables(&vars);
  for (const Atom& a : body) a.CollectVariables(&vars);
  return vars;
}

std::set<std::string> Rule::PositiveBodyVariables() const {
  std::set<std::string> vars;
  for (const Atom& a : body) {
    if (!a.negated) a.CollectVariables(&vars);
  }
  return vars;
}

std::string Rule::ToString() const {
  std::string out = head_deletes ? "-" + head.ToString() : head.ToString();
  if (body.empty()) return out;
  out += " :- ";
  for (size_t i = 0; i < body.size(); ++i) {
    if (i > 0) out += ", ";
    out += body[i].ToString();
  }
  return out;
}

uint64_t Rule::Hash() const {
  uint64_t h = head.Hash();
  if (head_deletes) h = HashCombine(h, 0xde1e7e0000000001ULL);
  for (const Atom& a : body) h = HashCombine(h, a.Hash());
  return h;
}

}  // namespace wdl
