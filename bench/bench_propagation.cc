// Experiment S1 — end-to-end picture propagation (DESIGN.md §3).
//
// The §4 claim under test: "a photo uploaded by Émilien into his local
// relation pictures@Émilien is instantly published to pictures@sigmod,
// and then propagated to pictures@SigmodFB". We measure that pipeline —
// upload at an attendee, conference hub, Facebook wall — in wall time
// and in system rounds, as the batch size grows, plus the rating and
// customization pipeline (S2).
//
// Expected shape: rounds to full propagation are constant (pipeline
// depth), wall time grows linearly with batch size.

#include <benchmark/benchmark.h>

#include "wepic/wepic.h"

namespace wdl {
namespace {

void BM_UploadToFacebookWall(benchmark::State& state) {
  int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    WepicApp app;
    (void)app.SetupConference();
    (void)app.AddAttendee("Emilien");
    (void)app.AddAttendee("Jules");
    (void)app.Converge();
    int rounds_before = app.system().rounds_run();
    state.ResumeTiming();

    for (int i = 0; i < batch; ++i) {
      (void)app.UploadPicture("Emilien", i, "p" + std::to_string(i),
                              std::string(256, 'x'));
      (void)app.AuthorizeFacebook("Emilien", i);
    }
    Result<int> rounds = app.Converge(10000);
    benchmark::DoNotOptimize(rounds);

    state.PauseTiming();
    state.counters["rounds"] =
        rounds.ok() ? (*rounds - rounds_before) : -1;
    state.counters["on_wall"] = static_cast<double>(
        app.facebook().GroupPictures(kFacebookGroup).size());
    state.counters["bytes"] = static_cast<double>(
        app.system().network().stats().bytes_sent);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_UploadToFacebookWall)->Arg(1)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// S2: re-convergence cost of swapping the selection rule for the
// rating filter with a populated system.
void BM_RuleCustomizationReconvergence(benchmark::State& state) {
  int pictures = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    WepicApp app;
    (void)app.SetupConference();
    (void)app.AddAttendee("Emilien");
    (void)app.AddAttendee("Jules");
    app.attendee("Emilien")->gate().TrustPeer("Jules");
    for (int i = 0; i < pictures; ++i) {
      (void)app.UploadPicture("Emilien", i, "p" + std::to_string(i), "d");
      (void)app.RatePicture("Emilien", i, i % 2 == 0 ? 5 : 3);
    }
    (void)app.SelectAttendee("Jules", "Emilien");
    (void)app.Converge(10000);
    state.ResumeTiming();

    (void)app.InstallRatingFilter("Jules", 5);
    Result<int> rounds = app.Converge(10000);
    benchmark::DoNotOptimize(rounds);

    state.PauseTiming();
    state.counters["frame_size"] = static_cast<double>(
        app.attendee("Jules")
            ->engine()
            .catalog()
            .Get("attendeePictures")
            ->size());
    state.ResumeTiming();
  }
}
BENCHMARK(BM_RuleCustomizationReconvergence)->Arg(10)->Arg(100)
    ->Unit(benchmark::kMillisecond);

// Incremental propagation: with the pipeline warm, one more upload.
void BM_SingleIncrementalUpload(benchmark::State& state) {
  WepicApp app;
  (void)app.SetupConference();
  (void)app.AddAttendee("Emilien");
  (void)app.Converge();
  int64_t next_id = 0;
  for (auto _ : state) {
    (void)app.UploadPicture("Emilien", next_id, "inc.jpg", "d");
    (void)app.AuthorizeFacebook("Emilien", next_id);
    ++next_id;
    benchmark::DoNotOptimize(app.Converge(10000));
  }
  state.counters["wall_size"] = static_cast<double>(
      app.facebook().GroupPictures(kFacebookGroup).size());
}
BENCHMARK(BM_SingleIncrementalUpload)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace wdl

BENCHMARK_MAIN();
