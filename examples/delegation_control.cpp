// The §4 "Illustration of the control of delegation" scenario and the
// Figure 3 program view: Julia's rule needs to install a residual rule
// at Jules' peer; Jules is shown the pending delegation, and his
// program only changes once he approves it.
//
// Run:  ./build/examples/delegation_control

#include <cstdio>

#include "wepic/wepic.h"

int main() {
  wdl::WepicApp app;
  if (!app.SetupConference().ok()) return 1;
  if (!app.AddAttendee("Jules").ok()) return 1;
  if (!app.AddAttendee("Julia").ok()) return 1;

  (void)app.UploadPicture("Jules", 5, "keynote.jpg", "bytes");

  // Julia writes a rule that reads Jules' pictures. Jules does not
  // trust Julia, so the delegation will sit in his approval queue.
  wdl::Status st = app.attendee("Julia")->LoadProgramText(R"(
    collection int julesPics@Julia(id: int, name: string, owner: string,
                                   data: blob);
    collection ext watch@Julia(who: string);
    fact watch@Julia("Jules");
    rule julesPics@Julia($i, $n, $o, $d) :-
        watch@Julia($w), pictures@$w($i, $n, $o, $d);
  )");
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  (void)app.Converge();

  std::printf("---- Jules' program view (Figure 3) ----\n%s\n",
              app.attendee("Jules")->RenderProgramView().c_str());
  std::printf("Julia sees %zu picture(s) before approval\n\n",
              app.attendee("Julia")
                  ->engine()
                  .catalog()
                  .Get("julesPics")
                  ->size());

  // Jules approves via the UI; here, via the API.
  auto pending = app.attendee("Jules")->gate().Pending();
  if (pending.empty()) {
    std::fprintf(stderr, "expected a pending delegation\n");
    return 1;
  }
  uint64_t key = pending.front()->Key();
  std::printf(">>> Jules approves delegation %llu from %s\n\n",
              static_cast<unsigned long long>(key),
              pending.front()->origin_peer.c_str());
  st = app.attendee("Jules")->ApproveDelegation(key);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  (void)app.Converge();

  std::printf("---- Jules' program after approval ----\n%s\n",
              app.attendee("Jules")->RenderProgramView().c_str());
  std::printf("Julia sees %zu picture(s) after approval\n",
              app.attendee("Julia")
                  ->engine()
                  .catalog()
                  .Get("julesPics")
                  ->size());

  std::printf("\naudit log at Jules:\n");
  for (const auto& entry : app.attendee("Jules")->gate().audit_log()) {
    std::printf("  [%s] from %s: %s\n", DecisionToString(entry.decision),
                entry.origin_peer.c_str(), entry.rule_text.c_str());
  }
  return 0;
}
