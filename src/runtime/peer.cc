#include "runtime/peer.h"

#include "base/logging.h"
#include "parser/parser.h"

namespace wdl {

Peer::Peer(std::string name, PeerOptions options)
    : name_(std::move(name)), options_(std::move(options)) {
  if (!options_.lazy_engine) EnsureEngine();
}

Engine& Peer::EnsureEngine() const {
  if (engine_ == nullptr) {
    engine_ = std::make_unique<Engine>(name_, options_.engine);
  }
  return *engine_;
}

size_t Peer::ApproxIdleBytes() const {
  auto string_heap = [](const std::string& s) {
    // Strings short enough for the small-string buffer cost no heap.
    return s.capacity() > sizeof(std::string) ? s.capacity() + 1 : 0;
  };
  size_t bytes = sizeof(Peer) + string_heap(name_);
  for (const std::string& p : known_peers_) {
    // One red-black tree node: three pointers + color word + the key.
    bytes += 4 * sizeof(void*) + sizeof(std::string) + string_heap(p);
  }
  return bytes;
}

Status Peer::LoadProgramText(std::string_view source) {
  WDL_ASSIGN_OR_RETURN(Program program, ParseProgram(source));
  return EnsureEngine().LoadProgram(program);
}

Status Peer::LoadProgram(const Program& program) {
  return EnsureEngine().LoadProgram(program);
}

Result<uint64_t> Peer::AddRuleText(std::string_view rule_text) {
  WDL_ASSIGN_OR_RETURN(Rule rule, ParseRule(rule_text));
  return EnsureEngine().AddRule(rule);
}

void Peer::HandleEnvelope(const Envelope& envelope) {
  known_peers_.insert(envelope.from);
  const Message& m = envelope.message;
  // Inbound frames that carry engine work materialize a lazy engine
  // ("first inbound frame"); pure control-plane traffic (Hello, a
  // retraction of something never installed) must not — a peer that
  // only ever hears greetings stays idle-cheap.
  switch (m.type) {
    case MessageType::kFactInserts:
      EnsureEngine().EnqueueFactInserts(m.facts);
      break;
    case MessageType::kFactDeletes:
      EnsureEngine().EnqueueFactDeletes(m.facts);
      break;
    case MessageType::kDerivedSet:
      EnsureEngine().EnqueueDerivedSet(envelope.from, m.derived);
      break;
    case MessageType::kDerivedDelta:
      EnsureEngine().EnqueueDerivedDelta(envelope.from, m.delta);
      break;
    case MessageType::kResyncRequest:
      EnsureEngine().EnqueueResyncRequest(envelope.from, m.text);
      break;
    case MessageType::kDelegationInstall: {
      DelegationGate::Decision decision =
          options_.trust_all_delegations
              ? DelegationGate::Decision::kAccepted
              : gate_.OnArrival(m.delegation);
      if (decision == DelegationGate::Decision::kAccepted) {
        Status st = EnsureEngine().InstallDelegatedRule(m.delegation);
        if (!st.ok()) {
          WDL_LOG(Warning) << name_ << ": rejected delegation from "
                           << m.delegation.origin_peer << ": " << st;
        }
      }
      break;
    }
    case MessageType::kDelegationRetract:
      if (!gate_.OnRetraction(m.delegation_key) && engine_ != nullptr) {
        engine_->RetractDelegatedRule(m.delegation_key);
      }
      break;
    case MessageType::kStreamForget:
      // Control-plane only: clearing stream state on a peer that never
      // materialized its engine would force a pointless lazy load.
      if (engine_ != nullptr) {
        engine_->ForgetSentStream(envelope.from, m.text);
      }
      break;
    case MessageType::kHello:
      known_peers_.insert(m.text);
      break;
  }
}

std::vector<Envelope> Peer::RunStage() {
  if (engine_ == nullptr) return {};
  StageResult result = engine_->RunStage();
  std::vector<Envelope> out;
  for (auto& [target, outbound] : result.outbound) {
    auto make_envelope = [&](Message message) {
      Envelope e;
      e.from = name_;
      e.to = target;
      e.seq = next_seq_++;
      e.message = std::move(message);
      out.push_back(std::move(e));
    };
    for (DerivedSet& ds : outbound.derived_sets) {
      make_envelope(Message::MakeDerivedSet(std::move(ds)));
    }
    for (DerivedDelta& dd : outbound.derived_deltas) {
      make_envelope(Message::MakeDerivedDelta(std::move(dd)));
    }
    for (std::string& relation : outbound.resync_requests) {
      make_envelope(Message::ResyncRequest(std::move(relation)));
    }
    if (!outbound.fact_deletes.empty()) {
      make_envelope(Message::FactDeletes(std::move(outbound.fact_deletes)));
    }
    for (Delegation& d : outbound.delegation_installs) {
      make_envelope(Message::DelegationInstall(std::move(d)));
    }
    for (uint64_t key : outbound.delegation_retracts) {
      make_envelope(Message::DelegationRetract(key));
    }
    for (std::string& relation : outbound.stream_forgets) {
      make_envelope(Message::StreamForget(std::move(relation)));
    }
  }
  return out;
}

std::vector<Envelope> Peer::MakeHeartbeats() {
  if (engine_ == nullptr) return {};
  std::vector<Envelope> out;
  for (DerivedDelta& dd : engine_->CollectHeartbeats()) {
    Envelope e;
    e.from = name_;
    e.to = dd.target_peer;
    e.seq = next_seq_++;
    e.message = Message::MakeDerivedDelta(std::move(dd));
    out.push_back(std::move(e));
  }
  return out;
}

Status Peer::ApproveDelegation(uint64_t delegation_key) {
  WDL_ASSIGN_OR_RETURN(Delegation d, gate_.Approve(delegation_key));
  return EnsureEngine().InstallDelegatedRule(d);
}

Status Peer::RejectDelegation(uint64_t delegation_key) {
  return gate_.Reject(delegation_key);
}

std::string Peer::RenderProgramView() const {
  std::string out = "=== " + name_ + " ===\n";
  // Rendering is inspection; an idle peer renders as empty without
  // being materialized by the act of looking at it.
  if (engine_ != nullptr) out += engine_->ProgramListing();
  out += gate_.RenderPending();
  return out;
}

std::string Peer::RenderRelation(const std::string& relation) const {
  const Relation* rel =
      engine_ == nullptr ? nullptr : engine_->catalog().Get(relation);
  std::string out = relation + "@" + name_;
  if (rel == nullptr) {
    return out + ": (not declared)\n";
  }
  out += " [" + std::string(RelationKindToString(rel->kind())) + ", " +
         std::to_string(rel->size()) + " tuples]\n";
  for (const Tuple& t : rel->SortedTuples()) {
    out += "  " + TupleToString(t) + "\n";
  }
  return out;
}

}  // namespace wdl
