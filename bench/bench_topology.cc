// Experiment F2 + S9 — topology and social scale (DESIGN.md §3, §9).
//
// Part 1 regenerates the paper's deployment picture as data: the three
// Wepic peers (Émilien, Jules, sigmod) plus the SigmodFB wrapper, with
// a LAN link between the laptops and a slower "cloud" link to sigmod.
//
// Part 2 is the million-peer runtime workload: one process hosting a
// Zipf-distributed follower graph (src/workload/social_graph.h) where
// peers follow/unfollow (delegation install/retract storms), hubs post
// (viral fan-out through the installed residuals), and regions
// partition and heal (heartbeat-driven resync). Reports peers/sec,
// deltas/sec, bytes-per-idle-peer, plan-cache compile/hit counts, and
// peak RSS. The 1M-peer footprint point registers only when
// WDL_BENCH_BIG is set, so routine smoke runs stay small; the manual
// CI job (bench-100k) and operators opt in.

#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "engine/plan_cache.h"
#include "runtime/system.h"
#include "wepic/wepic.h"
#include "workload/social_graph.h"

namespace wdl {

double PeakRssMb() {
  struct rusage usage = {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KB on Linux
}

// --- Part 1: the Figure 2 topology -----------------------------------

void RunDemoWorkload(WepicApp* app) {
  (void)app->UploadPicture("Emilien", 1, "sea.jpg", "b1");
  (void)app->UploadPicture("Jules", 2, "dinner.jpg", "b2");
  (void)app->AuthorizeFacebook("Emilien", 1);
  (void)app->SelectAttendee("Jules", "Emilien");
  (void)app->Converge(10000);
}

void BM_Figure2Topology(benchmark::State& state) {
  // Cloud latency in rounds: 0.5 (LAN-like) scaled by the arg.
  double cloud_latency = 0.5 * static_cast<double>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    WepicApp app;
    (void)app.SetupConference();
    (void)app.AddAttendee("Emilien");
    (void)app.AddAttendee("Jules");
    app.attendee("Emilien")->gate().TrustPeer("Jules");
    app.attendee("Jules")->gate().TrustPeer("Emilien");
    // Laptops are LAN-adjacent; everything to/from the cloud peers is
    // slower.
    SimulatedNetwork& net = app.system().network();
    for (const std::string& laptop : {"Emilien", "Jules"}) {
      for (const std::string& cloud : {"sigmod", "SigmodFB"}) {
        net.SetLink(laptop, cloud, LinkConfig{.latency = cloud_latency});
        net.SetLink(cloud, laptop, LinkConfig{.latency = cloud_latency});
      }
    }
    net.ResetStats();
    int rounds_before = app.system().rounds_run();
    state.ResumeTiming();

    RunDemoWorkload(&app);

    state.PauseTiming();
    state.counters["rounds"] =
        app.system().rounds_run() - rounds_before;
    state.counters["messages"] = static_cast<double>(
        net.stats().messages_submitted);
    state.counters["bytes"] = static_cast<double>(net.stats().bytes_sent);
    // The Figure 2 arrows, aggregated: laptop<->laptop vs laptop<->cloud.
    uint64_t lan = 0, wan = 0;
    for (const auto& [edge, count] : net.edge_message_counts()) {
      bool a_laptop = edge.first == "Emilien" || edge.first == "Jules";
      bool b_laptop = edge.second == "Emilien" || edge.second == "Jules";
      if (a_laptop && b_laptop) {
        lan += count;
      } else {
        wan += count;
      }
    }
    state.counters["lan_msgs"] = static_cast<double>(lan);
    state.counters["wan_msgs"] = static_cast<double>(wan);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_Figure2Topology)->Arg(1)->Arg(3)->Arg(10)
    ->Unit(benchmark::kMillisecond);

// Demo-floor wifi jitter: the same workload with heavy delivery-time
// jitter, which reorders messages across every link. The staged
// protocol is insensitive to reordering (derived sets are full-state
// replacements and updates are idempotent), so the workload converges
// to the same wall contents — at the cost of extra rounds.
void BM_JitteryNetwork(benchmark::State& state) {
  double jitter = 0.5 * static_cast<double>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    WepicApp app(WepicOptions{.network_seed = 7});
    (void)app.SetupConference();
    (void)app.AddAttendee("Emilien");
    (void)app.AddAttendee("Jules");
    app.attendee("Emilien")->gate().TrustPeer("Jules");
    app.attendee("Jules")->gate().TrustPeer("Emilien");
    // One O(1) default-link change shapes every edge — the all-pairs
    // SetLink loop this replaced is exactly the O(peers²) pattern the
    // scale benches below cannot afford.
    app.system().network().SetDefaultLink(
        LinkConfig{.latency = 0.5, .jitter = jitter});
    state.ResumeTiming();
    RunDemoWorkload(&app);
    state.PauseTiming();
    state.counters["rounds"] = app.system().rounds_run();
    state.counters["wall_pictures"] = static_cast<double>(
        app.facebook().GroupPictures(kFacebookGroup).size());
    state.ResumeTiming();
  }
}
BENCHMARK(BM_JitteryNetwork)->Arg(0)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// --- Part 2: social scale --------------------------------------------

// How much does an idle registered user cost? Creates N peers and
// touches none of them: no engines materialize, and the per-peer bytes
// stay under the committed 1 KB ceiling (tests/scale_test.cc holds the
// line; this reports the actual number at depth).
void BM_SocialIdleFootprint(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  uint64_t peers_created = 0;
  double bytes_per_peer = 0.0;
  double materialized = 0.0;
  for (auto _ : state) {
    System system;
    system.network().set_track_edge_counts(false);
    for (uint32_t i = 0; i < n; ++i) {
      system.CreatePeer(SocialPeerName(i), SocialPeerOptions());
    }
    (void)system.RunRound();  // an all-idle round is ~free
    peers_created += n;
    state.PauseTiming();
    materialized = static_cast<double>(system.MaterializedPeerCount());
    size_t sampled = 0;
    size_t total = 0;
    const uint32_t stride = n > 4096 ? n / 4096 : 1;
    for (uint32_t i = 0; i < n; i += stride) {
      total += system.ApproxPeerBytes(SocialPeerName(i));
      ++sampled;
    }
    bytes_per_peer = static_cast<double>(total) /
                     static_cast<double>(sampled ? sampled : 1);
    state.ResumeTiming();
  }
  state.counters["peers_per_sec"] = benchmark::Counter(
      static_cast<double>(peers_created), benchmark::Counter::kIsRate);
  state.counters["bytes_per_peer"] = bytes_per_peer;
  state.counters["materialized_peers"] = materialized;
  state.counters["peak_rss_mb"] = PeakRssMb();
}
BENCHMARK(BM_SocialIdleFootprint)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// Follow/unfollow storm over a Zipf world: every follow ships a
// residual rule to the followee (delegation install), every unfollow
// retracts it, every post streams deltas through whatever residuals
// are installed. Only the actors and the peers they touch materialize.
void BM_SocialFollowChurn(benchmark::State& state) {
  const uint32_t peers = static_cast<uint32_t>(state.range(0));
  const uint32_t actors = std::min<uint32_t>(peers / 8 + 1, 256);
  const std::vector<SocialOp> script =
      MakeChurnScript(peers, actors, 600, /*zipf_exponent=*/1.0,
                      /*seed=*/11);
  const SharedPlanCache::Stats cache_before =
      SharedPlanCache::Instance().stats();
  uint64_t ops_applied = 0;
  uint64_t deltas = 0;
  uint64_t rounds = 0;
  double materialized = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    System system;
    system.network().set_track_edge_counts(false);
    for (uint32_t i = 0; i < peers; ++i) {
      system.CreatePeer(SocialPeerName(i), SocialPeerOptions());
    }
    SocialDriver driver(&system);
    state.ResumeTiming();

    size_t since_round = 0;
    for (const SocialOp& op : script) {
      (void)driver.Apply(op);
      ++ops_applied;
      if (++since_round % 8 == 0) {
        RoundReport r = system.RunRound();
        deltas += r.delta_tuples_sent;
        ++rounds;
      }
    }
    for (int guard = 0; !system.IsQuiescent() && guard < 10000; ++guard) {
      RoundReport r = system.RunRound();
      deltas += r.delta_tuples_sent;
      ++rounds;
    }

    state.PauseTiming();
    materialized = static_cast<double>(system.MaterializedPeerCount());
    state.ResumeTiming();
  }
  const SharedPlanCache::Stats cache_after =
      SharedPlanCache::Instance().stats();
  state.counters["ops_per_sec"] = benchmark::Counter(
      static_cast<double>(ops_applied), benchmark::Counter::kIsRate);
  state.counters["deltas_per_sec"] = benchmark::Counter(
      static_cast<double>(deltas), benchmark::Counter::kIsRate);
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["materialized_peers"] = materialized;
  state.counters["plan_compiles"] =
      static_cast<double>(cache_after.compiles - cache_before.compiles);
  state.counters["plan_cache_hits"] =
      static_cast<double>(cache_after.hits - cache_before.hits);
  state.counters["peak_rss_mb"] = PeakRssMb();
}
BENCHMARK(BM_SocialFollowChurn)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// Viral fan-out: the biggest hub's followers subscribe (one residual
// each at the hub), then the hub posts a burst; every post streams one
// delta tuple per follower. Throughput is residual-rule evaluation +
// delta shipping at high fan-out.
void BM_SocialViralPost(benchmark::State& state) {
  const uint32_t peers = static_cast<uint32_t>(state.range(0));
  SocialGraphOptions gopt;
  gopt.num_peers = peers;
  SocialGraph graph = GenerateSocialGraph(gopt);
  std::vector<uint32_t> fans = graph.followers[0];
  if (fans.size() > 1200) fans.resize(1200);
  constexpr int kPosts = 8;
  uint64_t deltas = 0;
  uint64_t posts = 0;
  uint64_t rounds = 0;
  for (auto _ : state) {
    state.PauseTiming();
    System system;
    system.network().set_track_edge_counts(false);
    for (uint32_t i = 0; i < peers; ++i) {
      system.CreatePeer(SocialPeerName(i), SocialPeerOptions());
    }
    SocialDriver driver(&system);
    for (uint32_t f : fans) (void)driver.Follow(f, 0);
    (void)system.RunUntilQuiescent(100000);
    state.ResumeTiming();

    for (int k = 0; k < kPosts; ++k) {
      (void)driver.Post(0, 1000 + k);
      ++posts;
      for (int guard = 0; !system.IsQuiescent() && guard < 1000; ++guard) {
        RoundReport r = system.RunRound();
        deltas += r.delta_tuples_sent;
        ++rounds;
      }
    }
  }
  state.counters["fanout"] = static_cast<double>(fans.size());
  state.counters["posts_per_sec"] = benchmark::Counter(
      static_cast<double>(posts), benchmark::Counter::kIsRate);
  state.counters["deltas_per_sec"] = benchmark::Counter(
      static_cast<double>(deltas), benchmark::Counter::kIsRate);
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["peak_rss_mb"] = PeakRssMb();
}
BENCHMARK(BM_SocialViralPost)->Arg(10000)->Unit(benchmark::kMillisecond);

// Regional partition + heal: a slice of the hub's followers goes dark
// (O(1)/peer isolation), the hub posts into the void, the region heals,
// and heartbeat-driven resync repairs every stale feed.
void BM_SocialPartitionHeal(benchmark::State& state) {
  const uint32_t peers = static_cast<uint32_t>(state.range(0));
  SocialGraphOptions gopt;
  gopt.num_peers = peers;
  SocialGraph graph = GenerateSocialGraph(gopt);
  std::vector<uint32_t> fans = graph.followers[0];
  if (fans.size() > 400) fans.resize(400);
  const size_t dark = fans.size() / 10 + 1;
  uint64_t resyncs = 0;
  uint64_t rounds = 0;
  double stale_after_heal = 0.0;
  int64_t post_id = 5000;
  for (auto _ : state) {
    state.PauseTiming();
    SystemOptions options;
    options.heartbeat_interval_rounds = 4;
    System system(options);
    system.network().set_track_edge_counts(false);
    for (uint32_t i = 0; i < peers; ++i) {
      system.CreatePeer(SocialPeerName(i), SocialPeerOptions());
    }
    SocialDriver driver(&system);
    for (uint32_t f : fans) (void)driver.Follow(f, 0);
    (void)system.RunUntilQuiescent(100000);
    state.ResumeTiming();

    // Lights out for the region, post into it, heal, repair.
    for (size_t i = 0; i < dark; ++i) {
      system.network().SetIsolated(SocialPeerName(fans[i]), true);
    }
    const int64_t id = post_id++;
    (void)driver.Post(0, id);
    for (int guard = 0; !system.IsQuiescent() && guard < 1000; ++guard) {
      RoundReport r = system.RunRound();
      resyncs += r.resync_requests;
      ++rounds;
    }
    for (size_t i = 0; i < dark; ++i) {
      system.network().SetIsolated(SocialPeerName(fans[i]), false);
    }
    // One heartbeat interval plus the resync round trip, then settle.
    for (int round = 0; round < 16; ++round) {
      RoundReport r = system.RunRound();
      resyncs += r.resync_requests;
      ++rounds;
    }
    for (int guard = 0; !system.IsQuiescent() && guard < 1000; ++guard) {
      RoundReport r = system.RunRound();
      resyncs += r.resync_requests;
      ++rounds;
    }

    state.PauseTiming();
    stale_after_heal = 0.0;
    for (size_t i = 0; i < dark; ++i) {
      const Peer* fan = system.GetPeer(SocialPeerName(fans[i]));
      const Relation* feed = fan->engine().catalog().Get("feed");
      if (feed == nullptr ||
          !feed->Contains({Value::Int(id),
                           Value::String(SocialPeerName(0))})) {
        stale_after_heal += 1.0;
      }
    }
    state.ResumeTiming();
  }
  state.counters["dark_peers"] = static_cast<double>(dark);
  state.counters["resyncs"] = static_cast<double>(resyncs);
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["stale_after_heal"] = stale_after_heal;
  state.counters["peak_rss_mb"] = PeakRssMb();
}
BENCHMARK(BM_SocialPartitionHeal)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace wdl

int main(int argc, char** argv) {
  // The million-peer footprint point costs real memory and minutes;
  // keep it out of routine smoke runs, in reach of the manual CI job.
  if (std::getenv("WDL_BENCH_BIG") != nullptr) {
    benchmark::RegisterBenchmark("BM_SocialIdleFootprint",
                                 &wdl::BM_SocialIdleFootprint)
        ->Arg(1000000)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
