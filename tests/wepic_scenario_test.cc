#include "wepic/wepic.h"

#include <gtest/gtest.h>

namespace wdl {
namespace {

class WepicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(app_.SetupConference().ok());
    ASSERT_TRUE(app_.AddAttendee("Emilien").ok());
    ASSERT_TRUE(app_.AddAttendee("Jules").ok());
    // The two demo laptops trust each other for the data-flow scenarios
    // (delegation *control* is tested separately below and in acl_test).
    app_.attendee("Emilien")->gate().TrustPeer("Jules");
    app_.attendee("Jules")->gate().TrustPeer("Emilien");
  }

  WepicApp app_;
};

// F1: the "Attendee pictures" frame of Figure 1.
TEST_F(WepicTest, SelectionRulePopulatesAttendeePicturesFrame) {
  ASSERT_TRUE(app_.UploadPicture("Emilien", 1, "sea.jpg", "\x01\x02").ok());
  ASSERT_TRUE(app_.UploadPicture("Emilien", 2, "boat.jpg", "\x03").ok());
  ASSERT_TRUE(app_.SelectAttendee("Jules", "Emilien").ok());
  ASSERT_TRUE(app_.Converge().ok());

  const Relation* frame =
      app_.attendee("Jules")->engine().catalog().Get("attendeePictures");
  ASSERT_NE(frame, nullptr);
  EXPECT_EQ(frame->size(), 2u);

  std::string rendered = app_.RenderAttendeePicturesFrame("Jules");
  EXPECT_NE(rendered.find("sea.jpg"), std::string::npos);
  EXPECT_NE(rendered.find("by Emilien"), std::string::npos);
}

TEST_F(WepicTest, SelectingMultipleAttendeesMergesTheirPictures) {
  ASSERT_TRUE(app_.AddAttendee("Julia").ok());
  app_.attendee("Julia")->gate().TrustPeer("Jules");
  ASSERT_TRUE(app_.UploadPicture("Emilien", 1, "sea.jpg", "a").ok());
  ASSERT_TRUE(app_.UploadPicture("Julia", 10, "talk.jpg", "b").ok());
  ASSERT_TRUE(app_.SelectAttendee("Jules", "Emilien").ok());
  ASSERT_TRUE(app_.SelectAttendee("Jules", "Julia").ok());
  ASSERT_TRUE(app_.Converge().ok());

  const Relation* frame =
      app_.attendee("Jules")->engine().catalog().Get("attendeePictures");
  EXPECT_EQ(frame->size(), 2u);
}

// S1: upload propagates to sigmod, then (once authorized) to SigmodFB
// and the Facebook wall itself.
TEST_F(WepicTest, UploadPropagatesToSigmodAndFacebookWhenAuthorized) {
  ASSERT_TRUE(app_.UploadPicture("Emilien", 1, "sea.jpg", "abc").ok());
  ASSERT_TRUE(app_.Converge().ok());

  // Published to pictures@sigmod automatically.
  const Relation* at_sigmod =
      app_.sigmod()->engine().catalog().Get("pictures");
  ASSERT_NE(at_sigmod, nullptr);
  EXPECT_EQ(at_sigmod->size(), 1u);

  // Not on Facebook yet: no authorization.
  EXPECT_FALSE(app_.facebook().GroupHasPicture(kFacebookGroup, 1));

  ASSERT_TRUE(app_.AuthorizeFacebook("Emilien", 1).ok());
  ASSERT_TRUE(app_.Converge().ok());
  EXPECT_TRUE(app_.facebook().GroupHasPicture(kFacebookGroup, 1));
}

TEST_F(WepicTest, UnauthorizedPicturesStayOffFacebook) {
  ASSERT_TRUE(app_.UploadPicture("Emilien", 1, "private.jpg", "x").ok());
  ASSERT_TRUE(app_.UploadPicture("Emilien", 2, "public.jpg", "y").ok());
  ASSERT_TRUE(app_.AuthorizeFacebook("Emilien", 2).ok());
  ASSERT_TRUE(app_.Converge().ok());

  EXPECT_FALSE(app_.facebook().GroupHasPicture(kFacebookGroup, 1));
  EXPECT_TRUE(app_.facebook().GroupHasPicture(kFacebookGroup, 2));
}

// S1 reverse direction: pictures posted on the Facebook wall are
// retrieved and published at the sigmod peer.
TEST_F(WepicTest, FacebookWallPicturesFlowBackToSigmod) {
  FacebookService::Picture pic;
  pic.id = 77;
  pic.name = "wall.jpg";
  pic.owner = "Jules";
  pic.data = "wall-bytes";
  ASSERT_TRUE(app_.facebook().PostPicture(kFacebookGroup, pic).ok());
  ASSERT_TRUE(app_.Converge().ok());

  const Relation* at_sigmod =
      app_.sigmod()->engine().catalog().Get("pictures");
  ASSERT_NE(at_sigmod, nullptr);
  EXPECT_TRUE(at_sigmod->Contains({Value::Int(77), Value::String("wall.jpg"),
                                   Value::String("Jules"),
                                   Value::MakeBlob("wall-bytes")}));
}

// S2: customizing the selection rule to the rating-5 filter changes the
// frame contents.
TEST_F(WepicTest, RatingFilterCustomizationChangesFrame) {
  ASSERT_TRUE(app_.UploadPicture("Emilien", 1, "good.jpg", "a").ok());
  ASSERT_TRUE(app_.UploadPicture("Emilien", 2, "meh.jpg", "b").ok());
  ASSERT_TRUE(app_.RatePicture("Emilien", 1, 5).ok());
  ASSERT_TRUE(app_.RatePicture("Emilien", 2, 3).ok());
  ASSERT_TRUE(app_.SelectAttendee("Jules", "Emilien").ok());
  ASSERT_TRUE(app_.Converge().ok());

  const Relation* frame =
      app_.attendee("Jules")->engine().catalog().Get("attendeePictures");
  ASSERT_EQ(frame->size(), 2u);

  ASSERT_TRUE(app_.InstallRatingFilter("Jules", 5).ok());
  ASSERT_TRUE(app_.Converge().ok());
  EXPECT_EQ(frame->size(), 1u);
  EXPECT_TRUE(frame->Contains({Value::Int(1), Value::String("good.jpg"),
                               Value::String("Emilien"),
                               Value::MakeBlob("a")}));
}

// S5: the protocol-based transfer rule routes over email.
TEST_F(WepicTest, TransferRuleRoutesPicturesOverEmail) {
  ASSERT_TRUE(app_.SetCommunicationProtocol("Emilien", "email").ok());
  ASSERT_TRUE(app_.UploadPicture("Jules", 3, "dinner.jpg", "d").ok());
  ASSERT_TRUE(app_.SelectAttendee("Jules", "Emilien").ok());
  ASSERT_TRUE(app_.SelectPicture("Jules", "dinner.jpg", 3, "Jules").ok());
  ASSERT_TRUE(app_.Converge().ok());

  // The chained delegation lands facts in email@Emilien, which the
  // email wrapper delivers to Emilien's inbox.
  const Relation* email =
      app_.attendee("Emilien")->engine().catalog().Get("email");
  ASSERT_NE(email, nullptr);
  EXPECT_EQ(email->size(), 1u);
  EXPECT_GE(app_.email().InboxOf("Emilien@example.org").size(), 1u);
}

// S3 + F3: delegation from an untrusted peer waits for approval; the
// program changes only once approval is granted.
TEST_F(WepicTest, DelegationControlRequiresApproval) {
  ASSERT_TRUE(app_.AddAttendee("Julia").ok());
  // Julia writes a rule whose body reads Jules' pictures: evaluating it
  // delegates a residual rule to Jules — who does NOT trust Julia.
  ASSERT_TRUE(app_.attendee("Julia")->LoadProgramText(R"(
    collection int spied@Julia(id: int, name: string, owner: string, data: blob);
    collection ext target@Julia(who: string);
    fact target@Julia("Jules");
    rule spied@Julia($i, $n, $o, $d) :-
      target@Julia($w), pictures@$w($i, $n, $o, $d);
  )").ok());
  ASSERT_TRUE(app_.UploadPicture("Jules", 5, "secret.jpg", "s").ok());
  ASSERT_TRUE(app_.Converge().ok());

  Peer* jules = app_.attendee("Jules");
  // Pending, not installed.
  EXPECT_EQ(jules->gate().pending_count(), 1u);
  for (const InstalledRule* r : jules->engine().rules()) {
    EXPECT_NE(r->origin_peer, "Julia");
  }
  const Relation* spied =
      app_.attendee("Julia")->engine().catalog().Get("spied");
  EXPECT_EQ(spied->size(), 0u);

  // Approve: the program of Jules changes and data flows.
  uint64_t key = jules->gate().Pending().front()->Key();
  ASSERT_TRUE(jules->ApproveDelegation(key).ok());
  ASSERT_TRUE(app_.Converge().ok());

  bool installed = false;
  for (const InstalledRule* r : jules->engine().rules()) {
    installed |= r->origin_peer == "Julia";
  }
  EXPECT_TRUE(installed);
  EXPECT_EQ(spied->size(), 1u);
}

TEST_F(WepicTest, RejectedDelegationNeverInstalls) {
  ASSERT_TRUE(app_.AddAttendee("Julia").ok());
  ASSERT_TRUE(app_.attendee("Julia")->LoadProgramText(R"(
    collection int spied@Julia(id: int, name: string, owner: string, data: blob);
    collection ext target@Julia(who: string);
    fact target@Julia("Jules");
    rule spied@Julia($i, $n, $o, $d) :-
      target@Julia($w), pictures@$w($i, $n, $o, $d);
  )").ok());
  ASSERT_TRUE(app_.UploadPicture("Jules", 5, "secret.jpg", "s").ok());
  ASSERT_TRUE(app_.Converge().ok());

  Peer* jules = app_.attendee("Jules");
  ASSERT_EQ(jules->gate().pending_count(), 1u);
  uint64_t key = jules->gate().Pending().front()->Key();
  ASSERT_TRUE(jules->RejectDelegation(key).ok());
  ASSERT_TRUE(app_.Converge().ok());

  for (const InstalledRule* r : jules->engine().rules()) {
    EXPECT_NE(r->origin_peer, "Julia");
  }
  EXPECT_EQ(
      app_.attendee("Julia")->engine().catalog().Get("spied")->size(), 0u);
}

// S4: audience members launch their own peers and join dynamically.
TEST_F(WepicTest, AudiencePeersJoinDynamically) {
  ASSERT_TRUE(app_.UploadPicture("Emilien", 1, "sea.jpg", "a").ok());
  ASSERT_TRUE(app_.Converge().ok());

  ASSERT_TRUE(app_.AddAttendee("Visitor1").ok());
  ASSERT_TRUE(app_.AddAttendee("Visitor2").ok());
  app_.attendee("Emilien")->gate().TrustPeer("Visitor1");
  ASSERT_TRUE(app_.UploadPicture("Visitor1", 100, "phone.jpg", "p").ok());
  ASSERT_TRUE(app_.SelectAttendee("Visitor1", "Emilien").ok());
  ASSERT_TRUE(app_.Converge().ok());

  // Visitor1 sees Emilien's picture; sigmod saw both uploads; the
  // registry knows four attendees.
  EXPECT_EQ(app_.attendee("Visitor1")
                ->engine()
                .catalog()
                .Get("attendeePictures")
                ->size(),
            1u);
  EXPECT_EQ(app_.sigmod()->engine().catalog().Get("pictures")->size(), 2u);
  EXPECT_EQ(app_.sigmod()->engine().catalog().Get("attendees")->size(), 4u);
}

TEST_F(WepicTest, AnnotationsAreStoredLocally) {
  ASSERT_TRUE(app_.UploadPicture("Jules", 1, "pic.jpg", "x").ok());
  ASSERT_TRUE(app_.CommentPicture("Jules", 1, "Emilien", "nice shot").ok());
  ASSERT_TRUE(app_.TagPicture("Jules", 1, "Serge").ok());
  ASSERT_TRUE(app_.Converge().ok());

  const Catalog& cat = app_.attendee("Jules")->engine().catalog();
  EXPECT_EQ(cat.Get("comment")->size(), 1u);
  EXPECT_EQ(cat.Get("tag")->size(), 1u);
}

TEST_F(WepicTest, DeselectionEmptiesFrameAfterReconvergence) {
  ASSERT_TRUE(app_.UploadPicture("Emilien", 1, "sea.jpg", "a").ok());
  ASSERT_TRUE(app_.SelectAttendee("Jules", "Emilien").ok());
  ASSERT_TRUE(app_.Converge().ok());
  ASSERT_EQ(app_.attendee("Jules")
                ->engine()
                .catalog()
                .Get("attendeePictures")
                ->size(),
            1u);

  ASSERT_TRUE(app_.DeselectAttendee("Jules", "Emilien").ok());
  ASSERT_TRUE(app_.Converge().ok());
  EXPECT_EQ(app_.attendee("Jules")
                ->engine()
                .catalog()
                .Get("attendeePictures")
                ->size(),
            0u);
}

}  // namespace
}  // namespace wdl
