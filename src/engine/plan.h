#ifndef WDL_ENGINE_PLAN_H_
#define WDL_ENGINE_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ast/rule.h"
#include "base/symbol.h"

namespace wdl {

/// Compiled rule plans (DESIGN.md §4). A Rule is compiled once, at
/// install time, into a RulePlan that the evaluator executes directly:
///
///  - every variable is numbered into a dense *slot*, so the runtime
///    binding is a flat array of `const Value*` (O(1) indexed access,
///    no name comparison, no value copies — slots point at resident
///    tuple storage);
///  - constant relation/peer names are pre-resolved to interned Symbols
///    (integer compare against the evaluating peer, O(1) catalog and
///    Δ-set lookup by id);
///  - each atom's unification is a fixed op sequence (compare-constant,
///    compare-slot, bind-slot), and its access path — which column can
///    drive an index probe — is chosen at compile time, because
///    left-to-right evaluation makes "which slots are bound before atom
///    k" a static property.
///
/// Plans are immutable once compiled and self-contained (they own a
/// copy of the source rule, from which delegation residuals are
/// substituted). They are peer-agnostic: the same plan is valid for any
/// evaluating peer; remoteness of an atom is an id compare at runtime.

/// One argument position of a compiled atom.
struct PlanTerm {
  enum class Op : uint8_t {
    kConst,  // tuple value must equal `value`
    kCheck,  // tuple value must equal the value bound in `slot`
    kBind,   // first occurrence: bind `slot` to the tuple's value
  };

  static PlanTerm Const(Value v) {
    PlanTerm t;
    t.op = Op::kConst;
    t.value = std::move(v);
    return t;
  }
  static PlanTerm Check(uint16_t slot) {
    PlanTerm t;
    t.op = Op::kCheck;
    t.slot = slot;
    return t;
  }
  static PlanTerm Bind(uint16_t slot) {
    PlanTerm t;
    t.op = Op::kBind;
    t.slot = slot;
    return t;
  }

  Op op = Op::kConst;
  uint16_t slot = 0;  // kCheck/kBind
  Value value;        // kConst
};

/// A relation- or peer-position reference: a pre-interned constant name
/// or a slot holding the (string) name at runtime. The constant's text
/// is duplicated into the plan so hot paths (head emission, remoteness
/// checks) never touch the symbol table's lock.
struct PlanSym {
  bool is_const = true;
  Symbol sym;         // is_const
  std::string text;   // is_const: == sym.str()
  uint16_t slot = 0;  // !is_const

  static PlanSym Const(Symbol s) {
    PlanSym p;
    p.is_const = true;
    p.sym = s;
    p.text = s.str();
    return p;
  }
  static PlanSym Slot(uint16_t slot) {
    PlanSym p;
    p.is_const = false;
    p.slot = slot;
    return p;
  }
};

/// One compiled body atom.
struct PlanAtom {
  PlanSym relation;
  PlanSym peer;
  bool negated = false;
  /// Statically detected dead branch: a negated atom containing a
  /// variable no positive atom can ever bind is never ground at
  /// evaluation time (the interpreter discovers this per binding and
  /// logs; the plan knows it up front).
  bool negated_unbound = false;

  std::vector<PlanTerm> terms;
  /// Slots this atom's kBind ops fill — nulled after the atom's match
  /// loop returns (the entire backtracking "trail").
  std::vector<uint16_t> bound_slots;

  /// Access path: the first column whose key value is known before the
  /// atom runs (a constant, or a slot bound by an earlier atom) drives
  /// an index probe; -1 means full scan. Chosen at compile time.
  int index_column = -1;
  bool index_key_is_const = false;
  Value index_const;       // index_key_is_const
  uint16_t index_slot = 0; // !index_key_is_const
};

/// The compiled head: same shape as an atom minus matching concerns.
struct PlanHead {
  PlanSym relation;
  PlanSym peer;
  std::vector<PlanTerm> terms;  // kConst / kCheck only (heads never bind)
  /// True when a head variable (argument, relation, or peer position)
  /// can never be bound by the body — every emission would fail its
  /// runtime unbound check, so emission is skipped entirely. Only
  /// unsafe rules compile to dead heads; residual delegation still
  /// substitutes whatever is bound.
  bool dead = false;
};

/// A fully compiled rule.
struct RulePlan {
  Rule rule;  // owned source; delegation residuals substitute from it
  uint64_t rule_hash = 0;  // rule.Hash(), precomputed
  PlanHead head;
  std::vector<PlanAtom> atoms;
  uint16_t num_slots = 0;
  std::vector<std::string> slot_vars;  // slot -> variable name

  /// Human-readable plan listing (slots, per-atom ops and access path);
  /// for tests and diagnostics.
  std::string DebugString() const;
};

/// Compiles `rule` into an executable plan. Never fails: rules that
/// safety analysis would reject compile to plans whose dead branches
/// mirror the interpreter's runtime checks (unbound head -> no
/// emission, never-ground negation -> logged dead branch).
RulePlan CompileRule(const Rule& rule);

/// Applies the current slot bindings to `src` (the source atom the
/// compiled `rel`/`peer`/`terms` were built from): bound slots become
/// constants (string bindings in sym position become names), unbound
/// variables stay. Returns false when a sym-position slot holds a
/// non-string value — such a residual cannot name a relation or peer.
/// Used for delegation residuals; equivalent to SubstituteAtom on the
/// interpreter path.
bool SubstituteCompiled(const PlanSym& rel, const PlanSym& peer,
                        const std::vector<PlanTerm>& terms, const Atom& src,
                        const Value* const* slots, Atom* out);

}  // namespace wdl

#endif  // WDL_ENGINE_PLAN_H_
