#include "engine/plan.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/eval.h"
#include "parser/parser.h"
#include "storage/tuple.h"

#include "support/builders.h"

namespace wdl {
namespace {

using test::I;
using test::R;
using test::S;

// --- Plan shape: slots, op sequences, compile-time access paths -------

TEST(CompileRuleTest, SlotsAreNumberedDenselyInFirstOccurrenceOrder) {
  RulePlan plan = CompileRule(R("h@p($x, $z) :- e@p($x, $y), e@p($y, $z)"));
  ASSERT_EQ(plan.num_slots, 3u);
  EXPECT_EQ(plan.slot_vars, (std::vector<std::string>{"x", "y", "z"}));

  ASSERT_EQ(plan.atoms.size(), 2u);
  const PlanAtom& a0 = plan.atoms[0];
  ASSERT_EQ(a0.terms.size(), 2u);
  EXPECT_EQ(a0.terms[0].op, PlanTerm::Op::kBind);
  EXPECT_EQ(a0.terms[0].slot, 0);
  EXPECT_EQ(a0.terms[1].op, PlanTerm::Op::kBind);
  EXPECT_EQ(a0.terms[1].slot, 1);
  EXPECT_EQ(a0.bound_slots, (std::vector<uint16_t>{0, 1}));
  // Nothing bound before the first atom: full scan.
  EXPECT_EQ(a0.index_column, -1);

  const PlanAtom& a1 = plan.atoms[1];
  EXPECT_EQ(a1.terms[0].op, PlanTerm::Op::kCheck);
  EXPECT_EQ(a1.terms[0].slot, 1);
  EXPECT_EQ(a1.terms[1].op, PlanTerm::Op::kBind);
  EXPECT_EQ(a1.terms[1].slot, 2);
  // $y is bound by atom 0, so column 0 drives an index probe.
  EXPECT_EQ(a1.index_column, 0);
  EXPECT_FALSE(a1.index_key_is_const);
  EXPECT_EQ(a1.index_slot, 1);

  ASSERT_EQ(plan.head.terms.size(), 2u);
  EXPECT_EQ(plan.head.terms[0].op, PlanTerm::Op::kCheck);
  EXPECT_EQ(plan.head.terms[0].slot, 0);
  EXPECT_EQ(plan.head.terms[1].slot, 2);
  EXPECT_FALSE(plan.head.dead);
  EXPECT_TRUE(plan.head.relation.is_const);
  EXPECT_EQ(plan.head.relation.sym, Symbol::Intern("h"));
}

TEST(CompileRuleTest, ConstantArgumentDrivesIndexColumn) {
  RulePlan plan = CompileRule(R("h@p($x) :- e@p(3, $x)"));
  const PlanAtom& a = plan.atoms[0];
  EXPECT_EQ(a.index_column, 0);
  EXPECT_TRUE(a.index_key_is_const);
  EXPECT_EQ(a.index_const, I(3));
}

TEST(CompileRuleTest, RepeatedVariableWithinAtomChecksButCannotKey) {
  // $x's first occurrence is position 0 of this very atom: position 1
  // is a check, but the access path cannot use an in-atom binding.
  RulePlan plan = CompileRule(R("h@p($x) :- b@p($x, $x)"));
  const PlanAtom& a = plan.atoms[0];
  EXPECT_EQ(a.terms[0].op, PlanTerm::Op::kBind);
  EXPECT_EQ(a.terms[1].op, PlanTerm::Op::kCheck);
  EXPECT_EQ(a.index_column, -1);
}

TEST(CompileRuleTest, RelationAndPeerVariablesCompileToSlots) {
  RulePlan plan = CompileRule(R("h@p($x) :- names@p($r), $r@p($x)"));
  EXPECT_TRUE(plan.atoms[0].relation.is_const);
  EXPECT_FALSE(plan.atoms[1].relation.is_const);
  EXPECT_EQ(plan.slot_vars[plan.atoms[1].relation.slot], "r");
  EXPECT_TRUE(plan.atoms[1].peer.is_const);
}

TEST(CompileRuleTest, NegatedAtomNeverBindsAndDetectsUnboundStatically) {
  RulePlan bound = CompileRule(R("h@p($x) :- all@p($x), not ban@p($x)"));
  EXPECT_TRUE(bound.atoms[1].negated);
  EXPECT_FALSE(bound.atoms[1].negated_unbound);
  EXPECT_TRUE(bound.atoms[1].bound_slots.empty());
  EXPECT_EQ(bound.atoms[1].terms[0].op, PlanTerm::Op::kCheck);

  // $y can never be bound: the negation is statically never ground.
  RulePlan unbound = CompileRule(R("h@p($x) :- all@p($x), not ban@p($y)"));
  EXPECT_TRUE(unbound.atoms[1].negated_unbound);
}

TEST(CompileRuleTest, UnboundHeadVariableMarksHeadDead) {
  RulePlan plan = CompileRule(R("h@p($q) :- b@p($x)"));
  EXPECT_TRUE(plan.head.dead);
  EXPECT_FALSE(CompileRule(R("h@p($x) :- b@p($x)")).head.dead);
}

TEST(CompileRuleTest, DebugStringDescribesSlotsAndAccessPath) {
  RulePlan plan = CompileRule(R("h@p($x, $z) :- e@p($x, $y), e@p($y, $z)"));
  std::string s = plan.DebugString();
  EXPECT_NE(s.find("slots: 0=$x 1=$y 2=$z"), std::string::npos) << s;
  EXPECT_NE(s.find("access=scan"), std::string::npos) << s;
  EXPECT_NE(s.find("access=index col 0 key=s1"), std::string::npos) << s;
}

// --- Plan cache -------------------------------------------------------

TEST(PlanCacheTest, CompilesOncePerRuleAndCountsHits) {
  Catalog catalog("p");
  (void)catalog.InsertFact(Fact("b", "p", {I(1)}));
  RuleEvaluator evaluator(&catalog, "p", EvalOptions{});
  RuleEvaluator::Sinks sinks;
  sinks.on_local_fact = [](const Fact&) {};

  Rule rule = R("h@p($x) :- b@p($x)");
  evaluator.Evaluate(rule, nullptr, -1, sinks);
  evaluator.Evaluate(rule, nullptr, -1, sinks);
  evaluator.Evaluate(rule, nullptr, -1, sinks);
  EXPECT_EQ(evaluator.counters().plans_compiled, 1u);
  EXPECT_EQ(evaluator.counters().plan_cache_hits, 2u);

  evaluator.Evaluate(R("h2@p($x) :- b@p($x)"), nullptr, -1, sinks);
  EXPECT_EQ(evaluator.counters().plans_compiled, 2u);
}

TEST(PlanCacheTest, EvictedPlansRecompileAndDoNotAccumulate) {
  Catalog catalog("p");
  RuleEvaluator evaluator(&catalog, "p", EvalOptions{});
  Rule rule = R("h@p($x) :- b@p($x)");
  (void)evaluator.PlanFor(rule);
  evaluator.EvictPlan(rule);
  (void)evaluator.PlanFor(rule);  // must compile again, not hit the cache
  EXPECT_EQ(evaluator.counters().plans_compiled, 2u);
  EXPECT_EQ(evaluator.counters().plan_cache_hits, 0u);
  evaluator.EvictPlan(rule);
  evaluator.EvictPlan(rule);  // idempotent
  evaluator.EvictPlan(R("never@p($x) :- cached@p($x)"));  // absent: no-op
}

TEST(PlanCacheTest, EngineEvictsPlansForRemovedRules) {
  // One-off rules (ad-hoc queries, retracted delegations) must not
  // accumulate plans in the engine-lifetime cache: re-adding after
  // removal recompiles instead of hitting a stale entry.
  Engine engine("p");
  (void)engine.DeclareRelation(RelationDecl{
      "b", "p", RelationKind::kExtensional, {{"x", ValueKind::kInt}}});
  Rule rule = R("h@p($x) :- b@p($x)");
  Result<uint64_t> id = engine.AddRule(rule);
  ASSERT_TRUE(id.ok());
  (void)engine.RunStage();
  EXPECT_EQ(engine.eval_counters().plans_compiled, 1u);
  ASSERT_TRUE(engine.RemoveRule(*id).ok());
  (void)engine.AddRule(rule);
  (void)engine.RunStage();
  EXPECT_EQ(engine.eval_counters().plans_compiled, 2u);
}

TEST(PlanCacheTest, AccessPathCountersAttributeTheWork) {
  Catalog catalog("p");
  for (int64_t i = 0; i < 10; ++i) {
    (void)catalog.InsertFact(Fact("e", "p", {I(i), I(i + 1)}));
  }
  RuleEvaluator evaluator(&catalog, "p", EvalOptions{});
  RuleEvaluator::Sinks sinks;
  sinks.on_local_fact = [](const Fact&) {};
  evaluator.Evaluate(R("h@p($x, $z) :- e@p($x, $y), e@p($y, $z)"),
                     nullptr, -1, sinks);
  // Atom 0 scans once; atom 1 probes the index once per outer tuple.
  EXPECT_EQ(evaluator.counters().full_scans, 1u);
  EXPECT_EQ(evaluator.counters().index_lookups, 10u);
  EXPECT_GT(evaluator.counters().slot_bindings, 0u);
}

// --- Plan/interpreter equivalence (golden) ----------------------------

// Runs `program_text` to quiescence on a fresh engine and renders every
// relation's sorted contents. The compiled-plan and interpreter paths
// must produce byte-identical renderings.
std::string FixpointFingerprint(const std::string& program_text,
                                bool use_compiled_plans,
                                int stages = 10) {
  EngineOptions options;
  options.use_compiled_plans = use_compiled_plans;
  Engine engine("p", options);
  Result<Program> program = ParseProgram(program_text);
  EXPECT_TRUE(program.ok()) << program.status();
  Status loaded = engine.LoadProgram(*program);
  EXPECT_TRUE(loaded.ok()) << loaded;
  for (int i = 0; i < stages && engine.HasPendingWork(); ++i) {
    (void)engine.RunStage();
  }
  std::string out;
  for (const std::string& name : engine.catalog().RelationNames()) {
    out += name + ":";
    for (const Tuple& t : engine.catalog().Get(name)->SortedTuples()) {
      out += " " + TupleToString(t);
    }
    out += "\n";
  }
  return out;
}

void ExpectModesAgree(const std::string& program_text) {
  std::string compiled = FixpointFingerprint(program_text, true);
  std::string interpreted = FixpointFingerprint(program_text, false);
  EXPECT_EQ(compiled, interpreted) << program_text;
  EXPECT_FALSE(compiled.empty());
}

TEST(PlanEquivalenceTest, TransitiveClosure) {
  ExpectModesAgree(
      "collection ext edge@p(x: int, y: int);"
      "collection int tc@p(x: int, y: int);"
      "fact edge@p(1, 2); fact edge@p(2, 3); fact edge@p(3, 4);"
      "fact edge@p(4, 2);"
      "rule tc@p($x, $y) :- edge@p($x, $y);"
      "rule tc@p($x, $z) :- tc@p($x, $y), edge@p($y, $z);");
}

TEST(PlanEquivalenceTest, StratifiedNegation) {
  ExpectModesAgree(
      "collection ext all@p(x: int);"
      "collection ext banned@p(x: int);"
      "collection int ok@p(x: int);"
      "fact all@p(1); fact all@p(2); fact all@p(3);"
      "fact banned@p(2);"
      "rule ok@p($x) :- all@p($x), not banned@p($x);");
}

TEST(PlanEquivalenceTest, DeletionRules) {
  ExpectModesAgree(
      "collection ext pending@p(x: int);"
      "collection ext done@p(x: int);"
      "fact pending@p(1); fact pending@p(2); fact pending@p(3);"
      "fact done@p(2);"
      "rule -pending@p($x) :- done@p($x), pending@p($x);");
}

TEST(PlanEquivalenceTest, RelationVariables) {
  ExpectModesAgree(
      "collection ext names@p(r: string);"
      "collection ext data1@p(x: int);"
      "collection ext data2@p(x: int);"
      "collection int gathered@p(x: int);"
      "fact names@p(\"data1\"); fact names@p(\"data2\");"
      "fact data1@p(10); fact data2@p(20);"
      "rule gathered@p($x) :- names@p($r), $r@p($x);");
}

TEST(PlanEquivalenceTest, MixedConstantsAndRepeatedVariables) {
  ExpectModesAgree(
      "collection ext b@p(x: int, y: int, tag: string);"
      "collection int h@p(x: int);"
      "fact b@p(1, 1, \"keep\"); fact b@p(1, 2, \"keep\");"
      "fact b@p(2, 2, \"drop\"); fact b@p(3, 3, \"keep\");"
      "rule h@p($x) :- b@p($x, $x, \"keep\");");
}

TEST(PlanEquivalenceTest, DelegationSplitsMatchInterpreter) {
  // A remote body atom stops local evaluation; the residual rules (one
  // per prefix binding) must be identical in both modes.
  auto collect = [](bool use_compiled) {
    Catalog catalog("p");
    (void)catalog.InsertFact(Fact("sel", "p", {S("alice")}));
    (void)catalog.InsertFact(Fact("sel", "p", {S("bob")}));
    (void)catalog.InsertFact(Fact("kind", "p", {S("pictures")}));
    EvalOptions options;
    options.use_compiled_plans = use_compiled;
    RuleEvaluator evaluator(&catalog, "p", options);
    std::multiset<std::string> delegations;
    RuleEvaluator::Sinks sinks;
    sinks.on_delegation = [&](const Delegation& d) {
      delegations.insert(d.ToString() + "#" +
                         std::to_string(d.Key()));
    };
    evaluator.Evaluate(
        R("h@p($x) :- sel@p($a), kind@p($r), $r@$a($x, $a)"),
        nullptr, -1, sinks);
    return delegations;
  };
  std::multiset<std::string> compiled = collect(true);
  EXPECT_EQ(compiled.size(), 2u);
  EXPECT_EQ(compiled, collect(false));
}

TEST(PlanEquivalenceTest, DelegatedDeletionRulesKeepTheDeletionFlag) {
  // "-head :- body" split at a remote atom must still delete when the
  // residual's head derives at the target (the flag travels the wire;
  // dropping it silently turns deletion into insertion).
  for (bool use_compiled : {true, false}) {
    Catalog catalog("p");
    (void)catalog.InsertFact(Fact("sel", "p", {S("q")}));
    EvalOptions options;
    options.use_compiled_plans = use_compiled;
    RuleEvaluator evaluator(&catalog, "p", options);
    std::vector<Delegation> delegations;
    RuleEvaluator::Sinks sinks;
    sinks.on_delegation = [&](const Delegation& d) {
      delegations.push_back(d);
    };
    evaluator.Evaluate(R("-pending@p($x) :- sel@p($a), trig@$a($x)"),
                       nullptr, -1, sinks);
    ASSERT_EQ(delegations.size(), 1u) << "compiled=" << use_compiled;
    EXPECT_TRUE(delegations[0].rule.head_deletes)
        << "compiled=" << use_compiled;
    EXPECT_EQ(delegations[0].target_peer, "q");
  }
}

TEST(PlanEquivalenceTest, RemoteHeadsMatchInterpreter) {
  auto collect = [](bool use_compiled) {
    Catalog catalog("p");
    (void)catalog.InsertFact(Fact("b", "p", {I(7)}));
    EvalOptions options;
    options.use_compiled_plans = use_compiled;
    RuleEvaluator evaluator(&catalog, "p", options);
    std::multiset<std::string> remote;
    RuleEvaluator::Sinks sinks;
    sinks.on_remote_fact = [&](const Fact& f) {
      remote.insert(f.ToString());
    };
    evaluator.Evaluate(R("h@q($x) :- b@p($x)"), nullptr, -1, sinks);
    return remote;
  };
  std::multiset<std::string> compiled = collect(true);
  EXPECT_EQ(compiled.size(), 1u);
  EXPECT_EQ(compiled, collect(false));
}

TEST(PlanEquivalenceTest, SemiNaiveAndNaiveModesAgreeUnderPlans) {
  const char* kProgram =
      "collection ext edge@p(x: int, y: int);"
      "collection int tc@p(x: int, y: int);"
      "fact edge@p(1, 2); fact edge@p(2, 3); fact edge@p(3, 1);"
      "rule tc@p($x, $y) :- edge@p($x, $y);"
      "rule tc@p($x, $z) :- tc@p($x, $y), edge@p($y, $z);";
  auto run = [&](EvalMode mode) {
    EngineOptions options;
    options.mode = mode;
    Engine engine("p", options);
    (void)engine.LoadProgram(*ParseProgram(kProgram));
    (void)engine.RunStage();
    std::string out;
    for (const Tuple& t : engine.catalog().Get("tc")->SortedTuples()) {
      out += TupleToString(t);
    }
    return out;
  };
  EXPECT_EQ(run(EvalMode::kSemiNaive), run(EvalMode::kNaive));
}

}  // namespace
}  // namespace wdl
