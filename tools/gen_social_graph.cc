// gen_social_graph: generates the power-law follower graph behind the
// social-scale benchmarks (bench_topology) and prints it — either a
// degree summary for eyeballing the skew, or the full edge list /
// per-peer WebdamLog programs for driving external deployments
// (wdl_peerd clusters) with the same workload the in-process benches
// use. Deterministic for a given --seed.
//
// Examples:
//   gen_social_graph --peers 100000 --mean-followers 8 --zipf 1.0
//   gen_social_graph --peers 1000 --edges          # "follower followee" lines
//   gen_social_graph --peers 1000 --program u00000000

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "workload/social_graph.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: gen_social_graph [--peers N] [--mean-followers K]\n"
               "                        [--zipf S] [--seed X]\n"
               "                        [--edges | --program PEERNAME]\n");
}

}  // namespace

int main(int argc, char** argv) {
  wdl::SocialGraphOptions options;
  bool print_edges = false;
  std::string program_peer;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--peers") {
      options.num_peers = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--mean-followers") {
      options.mean_followers =
          static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--zipf") {
      options.zipf_exponent = std::strtod(next(), nullptr);
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--edges") {
      print_edges = true;
    } else if (arg == "--program") {
      program_peer = next();
    } else {
      Usage();
      return 2;
    }
  }

  if (!program_peer.empty()) {
    std::fputs(wdl::SocialProgramText(program_peer).c_str(), stdout);
    return 0;
  }

  wdl::SocialGraph graph = wdl::GenerateSocialGraph(options);

  if (print_edges) {
    for (uint32_t v = 0; v < graph.num_peers; ++v) {
      for (uint32_t f : graph.followers[v]) {
        std::printf("%s %s\n", wdl::SocialPeerName(f).c_str(),
                    wdl::SocialPeerName(v).c_str());
      }
    }
    return 0;
  }

  // Degree summary: the top hubs plus a log2 histogram of in-degree,
  // which makes the Zipf tail visible at a glance.
  std::printf("peers=%u edges=%zu mean_followers=%u zipf=%.2f seed=%" PRIu64
              "\n",
              graph.num_peers, graph.edge_count, options.mean_followers,
              options.zipf_exponent, options.seed);
  std::printf("top hubs (peer: followers):\n");
  for (uint32_t v = 0; v < graph.num_peers && v < 8; ++v) {
    std::printf("  %s: %u\n", wdl::SocialPeerName(v).c_str(),
                graph.InDegree(v));
  }
  std::vector<uint64_t> histogram;
  for (uint32_t v = 0; v < graph.num_peers; ++v) {
    uint32_t d = graph.InDegree(v);
    size_t bucket = 0;
    while ((1u << bucket) <= d) ++bucket;  // bucket 0 = degree 0
    if (bucket >= histogram.size()) histogram.resize(bucket + 1, 0);
    ++histogram[bucket];
  }
  std::printf("in-degree histogram (bucket = [2^(k-1), 2^k)):\n");
  for (size_t k = 0; k < histogram.size(); ++k) {
    if (k == 0) {
      std::printf("  degree 0: %" PRIu64 " peers\n", histogram[k]);
    } else {
      std::printf("  <%u: %" PRIu64 " peers\n", 1u << k, histogram[k]);
    }
  }
  return 0;
}
