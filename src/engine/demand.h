#ifndef WDL_ENGINE_DEMAND_H_
#define WDL_ENGINE_DEMAND_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ast/rule.h"
#include "base/result.h"
#include "base/symbol.h"
#include "engine/eval.h"
#include "engine/plan.h"
#include "storage/tuple.h"

namespace wdl {

class Engine;

/// Demand-driven (magic-set) evaluation of one bound query against a
/// quiescent engine (DESIGN.md §10).
///
/// A bound query ("path@a(42, $y)") does not need the full fixpoint the
/// scratch-rule query path runs: only the tuples *reachable from the
/// query's constants* can contribute to an answer. This evaluator
/// restricts evaluation to exactly that cone:
///
///  - the query rule runs once, joining extensional atoms directly and
///    registering a *demand* — the atom's statically prebound argument
///    positions (plan.h `prebound_args`) plus their runtime values —
///    for every intensional atom it reaches;
///  - each demand (relation, adornment) activates the demand-compiled
///    plans of that relation's local writer rules
///    (SharedPlanCache::AcquireDemand): the rule body prefixed with a
///    synthetic demand atom matched against the registered demand
///    tuples, so a rule instance only runs for bindings some demand
///    asked for, and registers the sub-demands its own body needs;
///  - derived tuples accumulate in per-relation *fragments* (the
///    demand-reachable subset of each intensional relation), and a
///    semi-naive Δ loop — uniform over fragments and demand sets, using
///    the plans' Δ-first variants — runs the cone to fixpoint.
///
/// Soundness rests on quiescence: with no deltas in flight, a local
/// intensional relation equals the least fixpoint of its local writer
/// rules over extensional state plus received cross-peer contributions
/// (the slice store), which is exactly what the fragment fixpoint
/// computes, demand-restricted (the magic-set transformation theorem).
/// Prepare() therefore rejects — and the caller falls back to the full
/// fixpoint for — anything outside that model: unbound queries, bodies
/// that cross peers, negation, deletion rules, or variable relation /
/// peer positions anywhere in the reachable rule set.
class DemandEvaluator {
 public:
  struct Stats {
    uint64_t tuples_examined = 0;    // candidate tuples unified against
    uint64_t demands_registered = 0; // distinct (relation, pattern, keys)
    uint64_t activations = 0;        // demand-compiled rule instances
    uint64_t fragment_tuples = 0;    // tuples materialized in fragments
    uint64_t rounds = 0;             // Δ rounds to fixpoint
  };

  explicit DemandEvaluator(Engine* engine) : engine_(engine) {}

  /// Analyzes `query_rule` (head = one variable per result column, body
  /// = the parsed query atoms) against the engine's installed rules.
  /// Returns OK when the query is demand-eligible; a FailedPrecondition
  /// naming the first disqualifier otherwise — the caller then runs the
  /// full-fixpoint path instead. Must be called on a quiescent engine.
  Status Prepare(const Rule& query_rule);

  /// Runs the demand-restricted fixpoint. Returns the distinct result
  /// rows in ascending tuple order (the same order the scratch-relation
  /// snapshot of the full path reports). Call once, after Prepare().
  std::vector<Tuple> Run();

  const Stats& stats() const { return stats_; }

 private:
  /// One demand-reachable relation subset (or one demand set), with the
  /// semi-naive bookkeeping: `all` and `delta` are what passes read (and
  /// may hold live iterators / lazy indexes into), `pending` is the only
  /// set a pass writes. Rotation — between passes, never during one —
  /// folds `pending` into `all` and makes it the next round's `delta`,
  /// so an emit can never rehash a set something is iterating.
  struct Fragment {
    DeltaSet all;
    DeltaSet delta;
    DeltaSet pending;
  };

  /// A demand set is keyed by (relation, adornment bitmask).
  using MagicKey = std::pair<Symbol, uint64_t>;

  /// One runnable rule instance: a writer rule demand-compiled for one
  /// adornment (reading its demand set through the synthetic atom), or
  /// the root query rule itself.
  struct Activation {
    std::shared_ptr<const RulePlan> shared_plan;  // owns writer plans
    const RulePlan* plan = nullptr;
    Symbol head_relation;  // fragment the head feeds (writers only)
    MagicKey magic_key{};
    bool is_root = false;
  };

  void EnsureActivations(const MagicKey& key);
  void ExecActivation(size_t index, int delta_orig,
                      const DeltaSet* delta_set);
  void ExecStep(const Activation& act, const std::vector<PlanAtom>& atoms,
                const std::vector<uint16_t>* order, size_t atom_index,
                int delta_orig, const DeltaSet* delta_set);
  bool UnifyTuple(const PlanAtom& atom, const Tuple& tuple);
  void EmitHead(const Activation& act);
  void RegisterDemand(Symbol relation, const PlanAtom& atom);

  Engine* engine_;
  Catalog* catalog_ = nullptr;
  Symbol self_sym_;
  Rule query_rule_;
  RulePlan root_plan_;
  Stats stats_;

  /// Local writer rules per reachable intensional relation; pointers
  /// into the engine's installed-rule storage (stable while we run).
  std::unordered_map<Symbol, std::vector<const Rule*>, SymbolHasher>
      writers_;
  /// Fragments of every reachable intensional relation (fixed at
  /// Prepare); extensional relations are read from the catalog.
  std::unordered_map<Symbol, Fragment, SymbolHasher> fragments_;
  std::map<MagicKey, Fragment> magic_;
  std::set<MagicKey> activated_;
  std::vector<MagicKey> pending_activations_;
  std::vector<Activation> activations_;
  /// Δ subscriptions: fragment -> (activation index, extended original
  /// atom position); demand sets subscribe their activations at the
  /// synthetic atom (extended position 0).
  std::unordered_map<Symbol, std::vector<std::pair<size_t, size_t>>,
                     SymbolHasher>
      subs_;
  std::map<MagicKey, std::vector<size_t>> magic_subs_;
  std::vector<const Value*> slots_;
  std::set<Tuple> results_;
};

}  // namespace wdl

#endif  // WDL_ENGINE_DEMAND_H_
