#include "support/builders.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

namespace wdl {
namespace test {

Value I(int64_t v) { return Value::Int(v); }
Value S(const std::string& v) { return Value::String(v); }
Value D(double v) { return Value::Double(v); }

Program P(const std::string& text) {
  Result<Program> p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  return p.ok() ? std::move(p).value() : Program{};
}

Rule R(const std::string& text) {
  Result<Rule> r = ParseRule(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? std::move(r).value() : Rule{};
}

Fact F(const std::string& relation, const std::string& peer,
       std::vector<Value> args) {
  return Fact(relation, peer, std::move(args));
}

void Settle(Engine* engine, int max_stages) {
  for (int i = 0; i < max_stages && engine->HasPendingWork(); ++i) {
    engine->RunStage();
  }
}

}  // namespace test
}  // namespace wdl
