#include "acl/policy.h"

namespace wdl {

const char* PrivilegeToString(Privilege privilege) {
  switch (privilege) {
    case Privilege::kRead: return "read";
    case Privilege::kWrite: return "write";
    case Privilege::kGrant: return "grant";
  }
  return "?";
}

Status AccessPolicy::RegisterRelation(const std::string& predicate,
                                      const std::string& owner) {
  auto [it, inserted] = entries_.emplace(predicate, Entry{});
  if (!inserted) {
    return Status::AlreadyExists("relation " + predicate +
                                 " already registered");
  }
  it->second.owner = owner;
  return Status::OK();
}

Status AccessPolicy::RegisterView(const std::string& view,
                                  const std::vector<std::string>& bases) {
  auto it = entries_.find(view);
  if (it == entries_.end()) {
    return Status::NotFound("view " + view + " is not registered");
  }
  for (const std::string& base : bases) {
    if (!entries_.count(base)) {
      return Status::NotFound("base relation " + base +
                              " of view " + view + " is not registered");
    }
  }
  it->second.bases = bases;
  return Status::OK();
}

const AccessPolicy::Entry* AccessPolicy::Find(
    const std::string& predicate) const {
  auto it = entries_.find(predicate);
  return it == entries_.end() ? nullptr : &it->second;
}

Status AccessPolicy::Grant(const std::string& predicate,
                           const std::string& grantor,
                           const std::string& grantee,
                           Privilege privilege) {
  auto it = entries_.find(predicate);
  if (it == entries_.end()) {
    return Status::NotFound("relation " + predicate + " is not registered");
  }
  Entry& e = it->second;
  bool may_grant = grantor == e.owner ||
                   (e.grants.count(Privilege::kGrant) &&
                    e.grants.at(Privilege::kGrant).count(grantor));
  if (!may_grant) {
    return Status::PermissionDenied("peer " + grantor +
                                    " may not grant on " + predicate);
  }
  e.grants[privilege].insert(grantee);
  return Status::OK();
}

Status AccessPolicy::Revoke(const std::string& predicate,
                            const std::string& revoker,
                            const std::string& grantee,
                            Privilege privilege) {
  auto it = entries_.find(predicate);
  if (it == entries_.end()) {
    return Status::NotFound("relation " + predicate + " is not registered");
  }
  Entry& e = it->second;
  bool may_revoke = revoker == e.owner ||
                    (e.grants.count(Privilege::kGrant) &&
                     e.grants.at(Privilege::kGrant).count(revoker));
  if (!may_revoke) {
    return Status::PermissionDenied("peer " + revoker +
                                    " may not revoke on " + predicate);
  }
  auto grants_it = e.grants.find(privilege);
  if (grants_it == e.grants.end() || !grants_it->second.erase(grantee)) {
    return Status::NotFound("no such grant to revoke");
  }
  return Status::OK();
}

bool AccessPolicy::CheckDirect(const std::string& predicate,
                               const std::string& peer,
                               Privilege privilege) const {
  const Entry* e = Find(predicate);
  if (e == nullptr) return false;
  if (peer == e->owner) return true;
  auto it = e->grants.find(privilege);
  return it != e->grants.end() && it->second.count(peer) > 0;
}

bool AccessPolicy::CheckRead(const std::string& predicate,
                             const std::string& peer) const {
  std::set<std::string> visiting;
  return CheckReadRec(predicate, peer, &visiting);
}

bool AccessPolicy::CheckReadRec(const std::string& predicate,
                                const std::string& peer,
                                std::set<std::string>* visiting) const {
  const Entry* e = Find(predicate);
  if (e == nullptr) return false;
  if (peer == e->owner) return true;
  // Explicit read grant on the predicate itself wins — for views this
  // is the declassification override.
  auto it = e->grants.find(Privilege::kRead);
  if (it != e->grants.end() && it->second.count(peer)) return true;
  if (e->bases.empty()) return false;  // plain relation, no grant
  // Provenance-derived default: readable iff every base is readable.
  if (!visiting->insert(predicate).second) {
    return false;  // cyclic view definition: deny conservatively
  }
  for (const std::string& base : e->bases) {
    if (!CheckReadRec(base, peer, visiting)) {
      visiting->erase(predicate);
      return false;
    }
  }
  visiting->erase(predicate);
  return true;
}

Status AccessPolicy::Declassify(const std::string& view,
                                const std::string& owner,
                                const std::string& grantee) {
  const Entry* e = Find(view);
  if (e == nullptr) {
    return Status::NotFound("view " + view + " is not registered");
  }
  if (e->bases.empty()) {
    return Status::FailedPrecondition(view + " is not a view");
  }
  return Grant(view, owner, grantee, Privilege::kRead);
}

std::string AccessPolicy::OwnerOf(const std::string& predicate) const {
  const Entry* e = Find(predicate);
  return e == nullptr ? "" : e->owner;
}

}  // namespace wdl
