#include "analysis/analysis.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

#include "support/builders.h"

namespace wdl {
namespace {

using test::R;

TEST(SafetyTest, AcceptsSimpleSafeRule) {
  EXPECT_TRUE(CheckRuleSafety(R("h@p($x) :- b@p($x)")).ok());
}

TEST(SafetyTest, AcceptsPaperSelectionRule) {
  EXPECT_TRUE(CheckRuleSafety(R(
      "attendeePictures@Jules($id, $n, $o, $d) :- "
      "selectedAttendee@Jules($a), pictures@$a($id, $n, $o, $d)")).ok());
}

TEST(SafetyTest, RejectsUnboundHeadVariable) {
  Status s = CheckRuleSafety(R("h@p($x, $y) :- b@p($x)"));
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("$y"), std::string::npos);
}

TEST(SafetyTest, RejectsPeerVariableNotBoundByPreviousAtoms) {
  // $a appears first in the *same* atom's peer position: too late —
  // the engine would not know where to evaluate it.
  Status s = CheckRuleSafety(R("h@p($x) :- pictures@$a($x, $a)"));
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("left to right"), std::string::npos);
}

TEST(SafetyTest, OrderMattersLeftToRight) {
  // Same atoms, two orders: only one is well-formed. This is the
  // paper's "the order matters, unlike in datalog".
  EXPECT_TRUE(CheckRuleSafety(R(
      "h@p($x) :- sel@p($a), pictures@$a($x)")).ok());
  EXPECT_FALSE(CheckRuleSafety(R(
      "h@p($x) :- pictures@$a($x), sel@p($a)")).ok());
}

TEST(SafetyTest, RelationVariableMustBeBoundBeforeUse) {
  EXPECT_TRUE(CheckRuleSafety(R(
      "h@p($x) :- protos@p($r), $r@p($x)")).ok());
  EXPECT_FALSE(CheckRuleSafety(R("h@p($x) :- $r@p($x), protos@p($r)")).ok());
}

TEST(SafetyTest, NegatedAtomVariablesMustBeBound) {
  EXPECT_TRUE(CheckRuleSafety(R(
      "h@p($x) :- b@p($x), not c@p($x)")).ok());
  EXPECT_FALSE(CheckRuleSafety(R(
      "h@p($x) :- b@p($x), not c@p($y)")).ok());
}

TEST(SafetyTest, NegatedAtomsBindNothing) {
  EXPECT_FALSE(CheckRuleSafety(R(
      "h@p($y) :- b@p($x), not c@p($x, $y)")).ok());
}

TEST(SafetyTest, GroundBodylessRuleIsFine) {
  Rule fact_rule;
  Result<Atom> head = ParseAtom(R"(greet@p("hi"))");
  ASSERT_TRUE(head.ok());
  fact_rule.head = *head;
  EXPECT_TRUE(CheckRuleSafety(fact_rule).ok());
}

TEST(StratifyTest, PositiveProgramIsOneStratum) {
  std::vector<Rule> rules = {R("t@p($x,$y) :- e@p($x,$y)"),
                             R("t@p($x,$z) :- t@p($x,$y), e@p($y,$z)")};
  Result<Stratification> s = Stratify(rules);
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s->num_strata, 1);
}

TEST(StratifyTest, NegationAddsStratum) {
  std::vector<Rule> rules = {
      R("reach@p($x) :- edge@p($x)"),
      R("unreach@p($x) :- node@p($x), not reach@p($x)")};
  Result<Stratification> s = Stratify(rules);
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s->num_strata, 2);
  EXPECT_EQ(s->rule_stratum[0], 0);
  EXPECT_EQ(s->rule_stratum[1], 1);
}

TEST(StratifyTest, NegationThroughRecursionIsRejected) {
  std::vector<Rule> rules = {R("a@p($x) :- b@p($x), not a@p($x)")};
  EXPECT_FALSE(Stratify(rules).ok());
}

TEST(StratifyTest, MutualRecursionWithNegationIsRejected) {
  std::vector<Rule> rules = {R("a@p($x) :- s@p($x), not b@p($x)"),
                             R("b@p($x) :- s@p($x), not a@p($x)")};
  EXPECT_FALSE(Stratify(rules).ok());
}

TEST(StratifyTest, NegatedVariableLocationUsesWildcard) {
  // The negated atom's peer resolves at evaluation time; statically it
  // depends on the wildcard and stratifies above it.
  std::vector<Rule> rules = {
      R("h@p($x) :- sel@p($a), not pictures@$a($x, $x)")};
  Result<Stratification> s = Stratify(rules);
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s->num_strata, 2);
}

TEST(StratifyTest, WildcardCycleWithNegationIsRejected) {
  // A variable-headed rule defines "*"; negating through "*" inside
  // the cycle must still be caught.
  std::vector<Rule> rules = {
      R("$r@p($x) :- names@p($r), src@p($x), not out@p($x)"),
      R("out@p($x) :- names@p($q), $q@p($x)")};
  EXPECT_FALSE(Stratify(rules).ok());
}

TEST(StratifyTest, ThreeLevelChain) {
  std::vector<Rule> rules = {
      R("a@p($x) :- base@p($x)"),
      R("b@p($x) :- node@p($x), not a@p($x)"),
      R("c@p($x) :- node@p($x), not b@p($x)")};
  Result<Stratification> s = Stratify(rules);
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s->num_strata, 3);
}

TEST(ValidateTest, Paper2013DialectRejectsNegation) {
  Result<Program> p = ParseProgram(
      "rule h@p($x) :- b@p($x), not c@p($x);");
  ASSERT_TRUE(p.ok());
  Status s2013 = ValidateProgram(*p, Dialect::kPaper2013);
  EXPECT_EQ(s2013.code(), StatusCode::kUnimplemented);
  EXPECT_TRUE(ValidateProgram(*p, Dialect::kExtended).ok());
}

TEST(ValidateTest, DuplicateDeclarationRejected) {
  Result<Program> p = ParseProgram(
      "collection ext r@p(x);\ncollection ext r@p(x, y);");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(ValidateProgram(*p, Dialect::kExtended).code(),
            StatusCode::kAlreadyExists);
}

TEST(ValidateTest, FactArityCheckedAgainstDeclaration) {
  Result<Program> p = ParseProgram(
      "collection ext r@p(x: int, y: int);\nfact r@p(1);");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(ValidateProgram(*p, Dialect::kExtended).code(),
            StatusCode::kOutOfRange);
}

TEST(ValidateTest, FactTypeCheckedAgainstDeclaration) {
  Result<Program> p = ParseProgram(
      "collection ext r@p(x: int);\nfact r@p(\"not an int\");");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(ValidateProgram(*p, Dialect::kExtended).code(),
            StatusCode::kInvalidArgument);
}

TEST(ValidateTest, UndeclaredFactIsAllowed) {
  Result<Program> p = ParseProgram("fact fresh@p(1, 2);");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(ValidateProgram(*p, Dialect::kExtended).ok());
}

TEST(ValueTypeTest, AnyAcceptsEverything) {
  EXPECT_TRUE(ValueMatchesType(Value::Int(1), ValueKind::kAny));
  EXPECT_TRUE(ValueMatchesType(Value::String("s"), ValueKind::kAny));
  EXPECT_TRUE(ValueMatchesType(Value::Int(1), ValueKind::kInt));
  EXPECT_FALSE(ValueMatchesType(Value::Int(1), ValueKind::kString));
}

}  // namespace
}  // namespace wdl
