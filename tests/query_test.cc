#include "runtime/query.h"

#include <gtest/gtest.h>

#include "support/builders.h"

namespace wdl {
namespace {

using test::I;
using test::S;

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    alice_ = system_.CreatePeer("alice");
    bob_ = system_.CreatePeer("bob");
    alice_->gate().TrustPeer("bob");
    bob_->gate().TrustPeer("alice");
    ASSERT_TRUE(alice_->LoadProgramText(R"(
      collection ext likes@alice(who: string, what: string);
      fact likes@alice("alice", "jazz");
      fact likes@alice("alice", "rock");
    )").ok());
    ASSERT_TRUE(bob_->LoadProgramText(R"(
      collection ext likes@bob(who: string, what: string);
      fact likes@bob("bob", "jazz");
    )").ok());
    ASSERT_TRUE(system_.RunUntilQuiescent().ok());
  }

  System system_;
  Peer* alice_ = nullptr;
  Peer* bob_ = nullptr;
};

TEST_F(QueryTest, LocalSingleAtomQuery) {
  Result<QueryResult> r =
      RunQuery(&system_, "alice", "likes@alice($w, $x)");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->columns, (std::vector<std::string>{"w", "x"}));
  EXPECT_EQ(r->rows.size(), 2u);
}

TEST_F(QueryTest, ConstantsFilterRows) {
  Result<QueryResult> r =
      RunQuery(&system_, "alice", "likes@alice($w, \"jazz\")");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->columns, (std::vector<std::string>{"w"}));
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0], S("alice"));
}

TEST_F(QueryTest, DistributedJoinQuery) {
  // Who shares a taste with alice? Crosses to bob via delegation.
  Result<QueryResult> r = RunQuery(
      &system_, "alice", "likes@alice($me, $x), likes@bob($other, $x)");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0], (Tuple{S("alice"), S("jazz"), S("bob")}));
}

TEST_F(QueryTest, QueryCleansUpDelegations) {
  Result<QueryResult> r = RunQuery(
      &system_, "alice", "likes@alice($me, $x), likes@bob($other, $x)");
  ASSERT_TRUE(r.ok());
  // After teardown, bob has no leftover delegated rules.
  for (const InstalledRule* ir : bob_->engine().rules()) {
    EXPECT_EQ(ir->delegation_key, 0u)
        << "leftover: " << ir->rule.ToString();
  }
}

TEST_F(QueryTest, RepeatedQueriesDoNotCollide) {
  for (int i = 0; i < 3; ++i) {
    Result<QueryResult> r =
        RunQuery(&system_, "alice", "likes@alice($w, $x)");
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->rows.size(), 2u);
  }
}

TEST_F(QueryTest, ScratchRelationsAreRecycled) {
  // The first query may mint a fresh "__query_<n>" name (one interned
  // symbol); every later sequential query must reuse a recycled name
  // instead of growing the symbol table and the catalog.
  ASSERT_TRUE(RunQuery(&system_, "alice", "likes@alice($w, $x)").ok());
  size_t symbols_after_first = Symbol::TableSizeForTesting();
  std::vector<std::string> catalog_after_first =
      alice_->engine().catalog().RelationNames();

  for (int i = 0; i < 10; ++i) {
    // Alternate shapes (different arity) to prove the recycled relation
    // is fully redeclared, not reused with a stale schema.
    Result<QueryResult> wide =
        RunQuery(&system_, "alice", "likes@alice($w, $x)");
    ASSERT_TRUE(wide.ok()) << wide.status();
    EXPECT_EQ(wide->rows.size(), 2u);
    Result<QueryResult> narrow =
        RunQuery(&system_, "alice", "likes@alice($w, \"jazz\")");
    ASSERT_TRUE(narrow.ok()) << narrow.status();
    EXPECT_EQ(narrow->rows.size(), 1u);
    // Distributed flavor: delegations still tear down cleanly.
    Result<QueryResult> remote = RunQuery(
        &system_, "alice", "likes@alice($me, $x), likes@bob($other, $x)");
    ASSERT_TRUE(remote.ok()) << remote.status();
  }

  EXPECT_EQ(Symbol::TableSizeForTesting(), symbols_after_first);
  EXPECT_EQ(alice_->engine().catalog().RelationNames(),
            catalog_after_first);
}

TEST_F(QueryTest, RecycledNamesTriggerNoResyncs) {
  // A distributed query makes bob stream a contribution into alice's
  // scratch relation. Teardown drops the relation and tells bob to
  // forget his side of the stream (kStreamForget), so a later query
  // reusing the recycled name starts with a fresh snapshot on a clean
  // stream. Without the notice bob would resume mid-stream and alice
  // would detect a gap — one resync round trip per recycled
  // distributed query.
  for (int i = 0; i < 4; ++i) {
    Result<QueryResult> r = RunQuery(
        &system_, "alice", "likes@alice($me, $x), likes@bob($other, $x)");
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_EQ(r->rows.size(), 1u);
  }
  EXPECT_EQ(alice_->engine().propagation_counters().resyncs_requested, 0u);
  EXPECT_EQ(bob_->engine().propagation_counters().resyncs_requested, 0u);
}

TEST_F(QueryTest, UnsafeQueryRejected) {
  // $p is a peer variable not bound by a previous atom.
  Result<QueryResult> r = RunQuery(&system_, "alice", "likes@$p($w, $x)");
  EXPECT_FALSE(r.ok());
}

TEST_F(QueryTest, UnknownPeerRejected) {
  EXPECT_EQ(RunQuery(&system_, "ghost", "likes@alice($w, $x)")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(QueryTest, EmptyResultIsOkNotError) {
  Result<QueryResult> r =
      RunQuery(&system_, "alice", "likes@alice($w, \"opera\")");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->rows.empty());
}

TEST_F(QueryTest, VariablePeerQueryFansOut) {
  ASSERT_TRUE(alice_->LoadProgramText(R"(
    collection ext friends@alice(p: string);
    fact friends@alice("bob");
  )").ok());
  ASSERT_TRUE(system_.RunUntilQuiescent().ok());
  Result<QueryResult> r = RunQuery(
      &system_, "alice", "friends@alice($p), likes@$p($who, $what)");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0], (Tuple{S("bob"), S("bob"), S("jazz")}));
}

TEST_F(QueryTest, ToStringRendersColumnsAndRows) {
  Result<QueryResult> r =
      RunQuery(&system_, "alice", "likes@alice($w, $x)");
  ASSERT_TRUE(r.ok());
  std::string rendered = r->ToString();
  EXPECT_NE(rendered.find("$w"), std::string::npos);
  EXPECT_NE(rendered.find("jazz"), std::string::npos);
}

}  // namespace
}  // namespace wdl
