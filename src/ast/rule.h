#ifndef WDL_AST_RULE_H_
#define WDL_AST_RULE_H_

#include <cstdint>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "ast/fact.h"
#include "ast/term.h"

namespace wdl {

/// One atom of a rule: $R@$P($U), possibly negated when in a body.
/// Relation and peer positions admit variables (SymTerm); argument
/// positions admit constants and variables (Term).
struct Atom {
  SymTerm relation;
  SymTerm peer;
  std::vector<Term> args;
  bool negated = false;

  Atom() = default;
  Atom(SymTerm relation_in, SymTerm peer_in, std::vector<Term> args_in,
       bool negated_in = false)
      : relation(std::move(relation_in)),
        peer(std::move(peer_in)),
        args(std::move(args_in)),
        negated(negated_in) {}

  bool IsGround() const;

  /// True when relation and peer are concrete names (arguments may still
  /// contain variables). Only locatable atoms can be evaluated or routed.
  bool HasConcreteLocation() const {
    return relation.is_name() && peer.is_name();
  }

  /// "rel@peer" (requires HasConcreteLocation()).
  std::string PredicateId() const {
    return relation.name() + "@" + peer.name();
  }

  /// Converts a fully ground atom to a Fact. Requires IsGround() and
  /// HasConcreteLocation().
  Fact ToFact() const;

  /// Adds every variable occurring in this atom (including relation/peer
  /// variables) to `out`.
  void CollectVariables(std::set<std::string>* out) const;

  std::string ToString() const;

  bool operator==(const Atom& o) const {
    return negated == o.negated && relation == o.relation &&
           peer == o.peer && args == o.args;
  }
  bool operator!=(const Atom& o) const { return !(*this == o); }

  uint64_t Hash() const;
};

/// A WebdamLog rule: head :- body, with the body evaluated left to
/// right (the order is semantically significant — §2 of the paper).
struct Rule {
  Atom head;
  std::vector<Atom> body;
  /// Deletion rule ("-head :- body"): derived head facts are *removed*
  /// from the target extensional relation at the next stage instead of
  /// inserted — the update language's deletion form.
  bool head_deletes = false;

  Rule() = default;
  Rule(Atom head_in, std::vector<Atom> body_in)
      : head(std::move(head_in)), body(std::move(body_in)) {}

  /// Variables appearing anywhere in the rule.
  std::set<std::string> Variables() const;
  /// Variables appearing in at least one positive body atom's argument,
  /// relation, or peer position — the ones "bound by the body".
  std::set<std::string> PositiveBodyVariables() const;

  std::string ToString() const;

  /// Content id, stable across peers and runs; used to identify rules in
  /// delegation provenance and retraction messages.
  uint64_t Hash() const;

  bool operator==(const Rule& o) const {
    return head_deletes == o.head_deletes && head == o.head &&
           body == o.body;
  }
  bool operator!=(const Rule& o) const { return !(*this == o); }
};

inline std::ostream& operator<<(std::ostream& os, const Atom& a) {
  return os << a.ToString();
}
inline std::ostream& operator<<(std::ostream& os, const Rule& r) {
  return os << r.ToString();
}

}  // namespace wdl

#endif  // WDL_AST_RULE_H_
