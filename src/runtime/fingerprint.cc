#include "runtime/fingerprint.h"

#include <algorithm>
#include <vector>

namespace wdl {

std::string PeerStateFingerprint(const Peer& peer) {
  std::string fp = "== " + peer.name() + "\n";
  if (!peer.has_engine()) {
    // A never-materialized peer logically holds the empty state; render
    // it directly instead of touching peer.engine(), which would
    // allocate 100k engines just to fingerprint an idle 100k-peer
    // system. Byte-identical to the eager rendering of an empty engine.
    fp += "rules of peer " + peer.name() + ":\n  (no rules)\n";
    return fp;
  }
  for (const std::string& rel : peer.engine().catalog().RelationNames()) {
    fp += peer.RenderRelation(rel);
  }
  std::vector<std::string> rules;
  for (const InstalledRule* ir : peer.engine().rules()) {
    std::string line = "  " + ir->rule.ToString();
    if (ir->delegation_key != 0) {
      line += "   (delegated by " + ir->origin_peer + ")";
    }
    rules.push_back(std::move(line));
  }
  std::sort(rules.begin(), rules.end());
  fp += "rules of peer " + peer.name() + ":\n";
  for (const std::string& line : rules) fp += line + "\n";
  if (rules.empty()) fp += "  (no rules)\n";
  return fp;
}

std::string GlobalStateFingerprint(const System& system) {
  std::string fp;
  for (const std::string& name : system.PeerNames()) {
    fp += PeerStateFingerprint(*system.GetPeer(name));
  }
  return fp;
}

}  // namespace wdl
