#ifndef WDL_AST_VALUE_H_
#define WDL_AST_VALUE_H_

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>

#include "base/hash.h"

namespace wdl {

/// Runtime type of a Value. kAny is only legal in schema declarations
/// (a column that accepts any value), never as the tag of a live Value.
enum class ValueKind : uint8_t {
  kInt = 0,
  kDouble = 1,
  kString = 2,
  kBlob = 3,
  kAny = 4,
};

const char* ValueKindToString(ValueKind kind);

/// A ground data value flowing through the system: the `a1,...,an` of a
/// WebdamLog fact m@p(a1,...,an). Values are immutable once built and
/// freely copyable. Blobs model binary picture payloads; they compare by
/// content like everything else.
class Value {
 public:
  struct Blob {
    std::string bytes;
    bool operator==(const Blob& o) const { return bytes == o.bytes; }
    bool operator<(const Blob& o) const { return bytes < o.bytes; }
  };

  Value() : rep_(int64_t{0}) {}

  // The atomic hash cache deletes the implicit copy/move operations;
  // these reproduce them exactly (the cached hash travels with the
  // value, so a copy never recomputes). A moved-from Value keeps its
  // old cache, matching the pre-atomic behavior: its rep_ is
  // unspecified and it is only ever assigned-to or destroyed.
  Value(const Value& o)
      : rep_(o.rep_), hash_(o.hash_.load(std::memory_order_relaxed)) {}
  Value(Value&& o) noexcept
      : rep_(std::move(o.rep_)),
        hash_(o.hash_.load(std::memory_order_relaxed)) {}
  Value& operator=(const Value& o) {
    rep_ = o.rep_;
    hash_.store(o.hash_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    return *this;
  }
  Value& operator=(Value&& o) noexcept {
    rep_ = std::move(o.rep_);
    hash_.store(o.hash_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    return *this;
  }

  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }
  static Value MakeBlob(std::string bytes) {
    return Value(Rep(Blob{std::move(bytes)}));
  }

  ValueKind kind() const {
    return static_cast<ValueKind>(rep_.index());
  }
  bool is_int() const { return kind() == ValueKind::kInt; }
  bool is_double() const { return kind() == ValueKind::kDouble; }
  bool is_string() const { return kind() == ValueKind::kString; }
  bool is_blob() const { return kind() == ValueKind::kBlob; }

  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  const Blob& AsBlob() const { return std::get<Blob>(rep_); }

  /// Surface-syntax rendering: ints/doubles bare, strings quoted and
  /// escaped, blobs as 0x-prefixed hex.
  std::string ToString() const;

  /// Stable 64-bit content hash (used in indexes and provenance ids).
  /// Memoized on first use — values are immutable, and string/blob
  /// payloads flow through TupleHasher and index probes far more often
  /// than they are hashed, so the steady state is a plain load, while
  /// construction-only paths (e.g. wire decode) never pay for hashing.
  /// 0 marks "not yet computed"; a real hash of 0 is remapped to 1.
  /// The cache is a relaxed atomic so concurrent readers (parallel Δ
  /// rounds probing shared frozen relations, DESIGN.md §8) race only on
  /// which thread publishes the identical value — the hash is a pure
  /// function of the immutable rep_, so no ordering is needed.
  uint64_t Hash() const {
    uint64_t h = hash_.load(std::memory_order_relaxed);
    if (h == 0) {
      h = ComputeHash();
      if (h == 0) h = 1;
      hash_.store(h, std::memory_order_relaxed);
    }
    return h;
  }

  /// Test-only: a copy of `v` whose cached hash is forced to `hash`.
  /// Lets storage tests manufacture hash collisions between distinct
  /// values (index keys and hash buckets collide, equality must still
  /// discriminate) without hunting for real FNV-1a collisions.
  static Value WithHashForTesting(Value v, uint64_t hash) {
    v.hash_.store(hash, std::memory_order_relaxed);
    return v;
  }

  /// Equality first compares the content hashes: in join loops most
  /// comparisons fail, and a differing hash proves inequality with one
  /// integer compare — no variant dispatch, no byte scan. Join-loop
  /// operands (stored tuples, plan constants) have their hash memoized
  /// already, so Hash() is a load there. (Values with a test-forced
  /// hash must carry consistent forced hashes on both sides of a
  /// comparison.)
  bool operator==(const Value& o) const {
    return Hash() == o.Hash() && rep_ == o.rep_;
  }
  bool operator!=(const Value& o) const { return !(*this == o); }
  /// Total order: by kind tag first, then by content. Gives relations a
  /// canonical sort for deterministic iteration and printing.
  bool operator<(const Value& o) const;

 private:
  using Rep = std::variant<int64_t, double, std::string, Blob>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}
  uint64_t ComputeHash() const;
  Rep rep_;
  // Memoized Hash(); 0 = not yet computed. Relaxed atomic: see Hash().
  mutable std::atomic<uint64_t> hash_{0};
};

inline std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

struct ValueHasher {
  size_t operator()(const Value& v) const {
    return static_cast<size_t>(v.Hash());
  }
};

}  // namespace wdl

#endif  // WDL_AST_VALUE_H_
