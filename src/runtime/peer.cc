#include "runtime/peer.h"

#include <algorithm>

#include "base/logging.h"
#include "parser/parser.h"

namespace wdl {

Peer::Peer(std::string name, PeerOptions options)
    : name_(std::move(name)), options_(std::move(options)) {
  if (!options_.durability.dir.empty()) {
    // Durable peers keep their stream versions across restarts, so the
    // link-reset amnesty would only buy redundant full re-sends.
    options_.engine.preserve_streams_on_reset = true;
    Result<std::unique_ptr<PeerDurability>> opened =
        PeerDurability::Open(options_.durability);
    if (!opened.ok()) {
      durability_status_ = opened.status();
      WDL_LOG(Error) << name_ << ": durability disabled: "
                     << durability_status_;
    } else {
      durability_ = std::move(*opened);
      durability_status_ = RecoverFromDurability();
      if (!durability_status_.ok()) {
        WDL_LOG(Error) << name_ << ": recovery failed, durability disabled: "
                       << durability_status_;
        durability_.reset();
      }
    }
  }
  if (!options_.lazy_engine) EnsureEngine();
}

Status Peer::RecoverFromDurability() {
  if (!durability_->has_recovery()) return Status::OK();
  if (const SnapshotData* snap = durability_->snapshot()) {
    Engine& engine = EnsureEngine();
    for (const SnapshotData::RelationState& rs : snap->relations) {
      WDL_RETURN_IF_ERROR(engine.DeclareRelation(rs.decl));
      if (rs.tuples.empty()) continue;
      Relation* rel = engine.catalog().Get(rs.decl.relation);
      if (rel == nullptr) {
        return Status::Internal("restored relation vanished: " +
                                rs.decl.relation);
      }
      for (const Tuple& t : rs.tuples) {
        WDL_RETURN_IF_ERROR(rel->Insert(t).status());
      }
    }
    for (const SnapshotData::RuleState& rule : snap->rules) {
      WDL_RETURN_IF_ERROR(engine.RestoreInstalledRule(
          rule.id, rule.rule, rule.origin_peer, rule.delegation_key));
    }
    engine.SetNextRuleId(snap->next_rule_id);
    for (const SnapshotData::StreamState& ss : snap->slices) {
      engine.RestoreSliceStream(ss.relation, ss.sender, ss.version,
                                ss.tuples);
    }
    for (const SnapshotData::SentState& sent : snap->sent) {
      engine.RestoreSentContribution(sent.target_peer, sent.relation,
                                     sent.version, sent.tuples);
    }
    for (const Delegation& d : snap->sent_delegations) {
      engine.RestoreSentDelegation(d);
    }
    for (const Delegation& d : snap->pending_delegations) {
      gate_.RestorePending(d);
    }
    for (const std::string& p : snap->known_peers) known_peers_.insert(p);
    next_seq_ = snap->next_seq;
  }
  replaying_ = true;
  for (const WalRecord& record : durability_->recovered_records()) {
    ApplyWalRecord(record);
  }
  replaying_ = false;
  recovered_ = true;
  durability_->FinishRecovery();
  return Status::OK();
}

void Peer::ApplyWalRecord(const WalRecord& record) {
  switch (record.type) {
    case WalRecordType::kEnvelope:
      HandleEnvelope(record.envelope);
      break;
    case WalRecordType::kLocalFactInsert: {
      Result<bool> r = EnsureEngine().InsertFact(record.fact);
      if (!r.ok()) {
        WDL_LOG(Warning) << name_ << ": replayed insert failed: "
                         << r.status();
      }
      break;
    }
    case WalRecordType::kLocalFactDelete:
      (void)EnsureEngine().RemoveFact(record.fact);
      break;
    case WalRecordType::kLocalDecl: {
      Status st = EnsureEngine().DeclareRelation(record.decl);
      // A duplicate declaration means the record also reached the
      // snapshot (re-replay); identical redeclares are harmless.
      if (!st.ok() && st.code() != StatusCode::kAlreadyExists) {
        WDL_LOG(Warning) << name_ << ": replayed declare failed: " << st;
      }
      break;
    }
    case WalRecordType::kLocalRuleAdd: {
      Engine& engine = EnsureEngine();
      bool present = false;
      for (const InstalledRule* ir : engine.rules()) {
        present |= ir->id == record.id;
      }
      if (present) break;  // duplicate replay
      Status st = engine.RestoreInstalledRule(record.id, record.rule, name_,
                                              /*delegation_key=*/0);
      if (!st.ok()) {
        WDL_LOG(Warning) << name_ << ": replayed rule add failed: " << st;
      }
      break;
    }
    case WalRecordType::kLocalRuleRemove:
      (void)EnsureEngine().RemoveRule(record.id);
      break;
    case WalRecordType::kStageOutbound: {
      Engine& engine = EnsureEngine();
      for (const DerivedDelta& d : record.shipped_deltas) {
        engine.ApplyShippedDelta(d);
      }
      for (const Delegation& d : record.shipped_delegations) {
        engine.RestoreSentDelegation(d);
      }
      for (uint64_t key : record.shipped_delegation_retracts) {
        engine.ApplyShippedDelegationRetract(key);
      }
      break;
    }
    case WalRecordType::kDelegationApprove:
      (void)ApproveDelegation(record.id);
      break;
    case WalRecordType::kDelegationReject:
      (void)RejectDelegation(record.id);
      break;
  }
}

void Peer::LogDurable(const WalRecord& record) {
  if (durability_ == nullptr || replaying_) return;
  Status st = durability_->Append(record);
  if (!st.ok()) {
    // Keep serving (memory-only semantics) but latch the failure so
    // hosts can see the peer is no longer recoverable past this point.
    WDL_LOG(Error) << name_ << ": WAL append ("
                   << WalRecordTypeToString(record.type)
                   << ") failed, durability degraded: " << st;
    durability_status_ = st;
  }
}

bool Peer::ShouldLogEnvelope(const Envelope& envelope) {
  const Message& m = envelope.message;
  switch (m.type) {
    case MessageType::kHello:
    case MessageType::kResyncRequest:
      // Pure control plane: a recovered peer re-learns names from
      // traffic, and resync serves regenerate from gap detection.
      return false;
    case MessageType::kDerivedDelta:
      // Version-only heartbeats carry no state (see CollectHeartbeats);
      // gap repair after recovery re-detects from live heartbeats.
      return m.delta.snapshot || m.delta.version != m.delta.base_version;
    default:
      return true;
  }
}

Engine& Peer::EnsureEngine() const {
  if (engine_ == nullptr) {
    engine_ = std::make_unique<Engine>(name_, options_.engine);
  }
  return *engine_;
}

size_t Peer::ApproxIdleBytes() const {
  auto string_heap = [](const std::string& s) {
    // Strings short enough for the small-string buffer cost no heap.
    return s.capacity() > sizeof(std::string) ? s.capacity() + 1 : 0;
  };
  size_t bytes = sizeof(Peer) + string_heap(name_);
  for (const std::string& p : known_peers_) {
    // One red-black tree node: three pointers + color word + the key.
    bytes += 4 * sizeof(void*) + sizeof(std::string) + string_heap(p);
  }
  return bytes;
}

Status Peer::LoadProgramText(std::string_view source) {
  WDL_ASSIGN_OR_RETURN(Program program, ParseProgram(source));
  return LoadProgram(program);
}

Status Peer::LoadProgram(const Program& program) {
  std::vector<uint64_t> rule_ids;
  WDL_RETURN_IF_ERROR(EnsureEngine().LoadProgram(program, &rule_ids));
  if (durability_ != nullptr && !replaying_) {
    // Log the program decomposed into its records, in apply order, so
    // replay retraces exactly what LoadProgram did.
    for (const RelationDecl& decl : program.declarations) {
      WalRecord record;
      record.type = WalRecordType::kLocalDecl;
      record.decl = decl;
      LogDurable(record);
    }
    for (const Fact& fact : program.facts) {
      WalRecord record;
      record.type = WalRecordType::kLocalFactInsert;
      record.fact = fact;
      LogDurable(record);
    }
    for (size_t i = 0; i < program.rules.size(); ++i) {
      WalRecord record;
      record.type = WalRecordType::kLocalRuleAdd;
      record.id = rule_ids[i];
      record.rule = program.rules[i];
      LogDurable(record);
    }
    (void)durability_->EndBatch();
  }
  return Status::OK();
}

Result<bool> Peer::Insert(const Fact& fact) {
  Result<bool> r = EnsureEngine().InsertFact(fact);
  if (r.ok() && *r) {
    WalRecord record;
    record.type = WalRecordType::kLocalFactInsert;
    record.fact = fact;
    LogDurable(record);
  }
  return r;
}

Result<bool> Peer::Remove(const Fact& fact) {
  Result<bool> r = EnsureEngine().RemoveFact(fact);
  if (r.ok() && *r) {
    WalRecord record;
    record.type = WalRecordType::kLocalFactDelete;
    record.fact = fact;
    LogDurable(record);
  }
  return r;
}

Result<uint64_t> Peer::AddRuleText(std::string_view rule_text) {
  WDL_ASSIGN_OR_RETURN(Rule rule, ParseRule(rule_text));
  WDL_ASSIGN_OR_RETURN(uint64_t id, EnsureEngine().AddRule(rule));
  WalRecord record;
  record.type = WalRecordType::kLocalRuleAdd;
  record.id = id;
  record.rule = rule;
  LogDurable(record);
  return id;
}

Status Peer::RemoveRule(uint64_t rule_id) {
  WDL_RETURN_IF_ERROR(EnsureEngine().RemoveRule(rule_id));
  WalRecord record;
  record.type = WalRecordType::kLocalRuleRemove;
  record.id = rule_id;
  LogDurable(record);
  return Status::OK();
}

void Peer::HandleEnvelope(const Envelope& envelope) {
  // Log-before-apply: once an envelope is accepted it must survive a
  // crash, because the sender's stream version has moved past it and a
  // plain restart will never see it again.
  if (durability_ != nullptr && !replaying_ && ShouldLogEnvelope(envelope)) {
    WalRecord record;
    record.type = WalRecordType::kEnvelope;
    record.envelope = envelope;
    LogDurable(record);
  }
  known_peers_.insert(envelope.from);
  const Message& m = envelope.message;
  // Inbound frames that carry engine work materialize a lazy engine
  // ("first inbound frame"); pure control-plane traffic (Hello, a
  // retraction of something never installed) must not — a peer that
  // only ever hears greetings stays idle-cheap.
  switch (m.type) {
    case MessageType::kFactInserts:
      EnsureEngine().EnqueueFactInserts(m.facts);
      break;
    case MessageType::kFactDeletes:
      EnsureEngine().EnqueueFactDeletes(m.facts);
      break;
    case MessageType::kDerivedSet:
      EnsureEngine().EnqueueDerivedSet(envelope.from, m.derived);
      break;
    case MessageType::kDerivedDelta:
      EnsureEngine().EnqueueDerivedDelta(envelope.from, m.delta);
      break;
    case MessageType::kResyncRequest:
      EnsureEngine().EnqueueResyncRequest(envelope.from, m.text);
      break;
    case MessageType::kDelegationInstall: {
      DelegationGate::Decision decision =
          options_.trust_all_delegations
              ? DelegationGate::Decision::kAccepted
              : gate_.OnArrival(m.delegation);
      if (decision == DelegationGate::Decision::kAccepted) {
        Status st = EnsureEngine().InstallDelegatedRule(m.delegation);
        if (!st.ok()) {
          WDL_LOG(Warning) << name_ << ": rejected delegation from "
                           << m.delegation.origin_peer << ": " << st;
        }
      }
      break;
    }
    case MessageType::kDelegationRetract:
      if (!gate_.OnRetraction(m.delegation_key) && engine_ != nullptr) {
        engine_->RetractDelegatedRule(m.delegation_key);
      }
      break;
    case MessageType::kStreamForget:
      // Control-plane only: clearing stream state on a peer that never
      // materialized its engine would force a pointless lazy load.
      if (engine_ != nullptr) {
        engine_->ForgetSentStream(envelope.from, m.text);
      }
      break;
    case MessageType::kHello:
      known_peers_.insert(m.text);
      break;
  }
}

std::vector<Envelope> Peer::RunStage() {
  if (engine_ == nullptr) return {};
  StageResult result = engine_->RunStage();
  if (durability_ != nullptr) {
    // Log what this stage shipped before the envelope builder below
    // moves the payloads out. Shipped deltas (and full-slice sets /
    // resync snapshots, logged as snapshot-deltas at their stream
    // version) advance the emission diff bases on replay, so a
    // recovered peer diffs against what receivers actually hold
    // instead of re-shipping its whole view.
    WalRecord record;
    record.type = WalRecordType::kStageOutbound;
    for (const auto& [target, outbound] : result.outbound) {
      for (const DerivedDelta& dd : outbound.derived_deltas) {
        record.shipped_deltas.push_back(dd);
      }
      for (const DerivedSet& ds : outbound.derived_sets) {
        DerivedDelta as_snapshot;
        as_snapshot.target_peer = ds.target_peer;
        as_snapshot.relation = ds.relation;
        as_snapshot.snapshot = true;
        as_snapshot.version =
            engine_->SentStreamVersion(ds.target_peer, ds.relation);
        as_snapshot.inserts = ds.tuples;
        record.shipped_deltas.push_back(std::move(as_snapshot));
      }
      for (const Delegation& d : outbound.delegation_installs) {
        record.shipped_delegations.push_back(d);
      }
      for (uint64_t key : outbound.delegation_retracts) {
        record.shipped_delegation_retracts.push_back(key);
      }
    }
    if (!record.shipped_deltas.empty() ||
        !record.shipped_delegations.empty() ||
        !record.shipped_delegation_retracts.empty()) {
      LogDurable(record);
    }
  }
  std::vector<Envelope> out;
  for (auto& [target, outbound] : result.outbound) {
    auto make_envelope = [&](Message message) {
      Envelope e;
      e.from = name_;
      e.to = target;
      e.seq = next_seq_++;
      e.message = std::move(message);
      out.push_back(std::move(e));
    };
    for (DerivedSet& ds : outbound.derived_sets) {
      make_envelope(Message::MakeDerivedSet(std::move(ds)));
    }
    for (DerivedDelta& dd : outbound.derived_deltas) {
      make_envelope(Message::MakeDerivedDelta(std::move(dd)));
    }
    for (std::string& relation : outbound.resync_requests) {
      make_envelope(Message::ResyncRequest(std::move(relation)));
    }
    if (!outbound.fact_deletes.empty()) {
      make_envelope(Message::FactDeletes(std::move(outbound.fact_deletes)));
    }
    for (Delegation& d : outbound.delegation_installs) {
      make_envelope(Message::DelegationInstall(std::move(d)));
    }
    for (uint64_t key : outbound.delegation_retracts) {
      make_envelope(Message::DelegationRetract(key));
    }
    for (std::string& relation : outbound.stream_forgets) {
      make_envelope(Message::StreamForget(std::move(relation)));
    }
  }
  FinishDurableStage();
  return out;
}

void Peer::FinishDurableStage() {
  if (durability_ == nullptr || replaying_) return;
  Status st = durability_->EndBatch();
  if (!st.ok()) {
    WDL_LOG(Error) << name_ << ": WAL sync failed: " << st;
    durability_status_ = st;
    return;
  }
  if (!durability_->ShouldSnapshot()) return;
  // A stage boundary is the safe point: inbound queues were drained at
  // stage start and the emission diffs above are settled.
  st = durability_->WriteSnapshot(MakeSnapshot());
  if (!st.ok()) {
    WDL_LOG(Error) << name_ << ": snapshot failed: " << st;
    durability_status_ = st;
  }
}

SnapshotData Peer::MakeSnapshot() const {
  SnapshotData snap;
  snap.peer = name_;
  snap.next_seq = next_seq_;
  snap.known_peers.assign(known_peers_.begin(), known_peers_.end());
  if (engine_ != nullptr) {
    snap.next_rule_id = engine_->next_rule_id();
    const Catalog& catalog = engine_->catalog();
    for (const std::string& name : catalog.RelationNames()) {
      const Relation* rel = catalog.Get(name);
      if (rel == nullptr) continue;
      SnapshotData::RelationState rs;
      rs.decl = rel->decl();
      // Intensional views rebuild from slices on the first recovered
      // stage; only base tuples are durable.
      if (rel->kind() == RelationKind::kExtensional) {
        rs.tuples = rel->SortedTuples();
      }
      snap.relations.push_back(std::move(rs));
    }
    for (const InstalledRule* ir : engine_->rules()) {
      SnapshotData::RuleState rule;
      rule.id = ir->id;
      rule.origin_peer = ir->origin_peer;
      rule.delegation_key = ir->delegation_key;
      rule.rule = ir->rule;
      snap.rules.push_back(std::move(rule));
    }
    engine_->slice_store().ForEachStream(
        [&](const std::string& relation, const std::string& sender,
            uint64_t version, const SliceStore::TupleSet& slice) {
          SnapshotData::StreamState ss;
          ss.relation = relation;
          ss.sender = sender;
          ss.version = version;
          ss.tuples.assign(slice.begin(), slice.end());
          std::sort(ss.tuples.begin(), ss.tuples.end());
          snap.slices.push_back(std::move(ss));
        });
    engine_->ForEachSentContribution(
        [&](const std::string& target, const std::string& relation,
            const std::unordered_set<Tuple, TupleHasher>& tuples,
            uint64_t version) {
          SnapshotData::SentState sent;
          sent.target_peer = target;
          sent.relation = relation;
          sent.version = version;
          sent.tuples.assign(tuples.begin(), tuples.end());
          std::sort(sent.tuples.begin(), sent.tuples.end());
          snap.sent.push_back(std::move(sent));
        });
    engine_->ForEachSentDelegation(
        [&](const Delegation& d) { snap.sent_delegations.push_back(d); });
  }
  for (const Delegation* d : gate_.Pending()) {
    snap.pending_delegations.push_back(*d);
  }
  return snap;
}

std::vector<Envelope> Peer::MakeHeartbeats() {
  if (engine_ == nullptr) return {};
  std::vector<Envelope> out;
  for (DerivedDelta& dd : engine_->CollectHeartbeats()) {
    Envelope e;
    e.from = name_;
    e.to = dd.target_peer;
    e.seq = next_seq_++;
    e.message = Message::MakeDerivedDelta(std::move(dd));
    out.push_back(std::move(e));
  }
  return out;
}

Status Peer::ApproveDelegation(uint64_t delegation_key) {
  WDL_ASSIGN_OR_RETURN(Delegation d, gate_.Approve(delegation_key));
  WDL_RETURN_IF_ERROR(EnsureEngine().InstallDelegatedRule(d));
  WalRecord record;
  record.type = WalRecordType::kDelegationApprove;
  record.id = delegation_key;
  LogDurable(record);
  return Status::OK();
}

Status Peer::RejectDelegation(uint64_t delegation_key) {
  WDL_RETURN_IF_ERROR(gate_.Reject(delegation_key));
  WalRecord record;
  record.type = WalRecordType::kDelegationReject;
  record.id = delegation_key;
  LogDurable(record);
  return Status::OK();
}

std::string Peer::RenderProgramView() const {
  std::string out = "=== " + name_ + " ===\n";
  // Rendering is inspection; an idle peer renders as empty without
  // being materialized by the act of looking at it.
  if (engine_ != nullptr) out += engine_->ProgramListing();
  out += gate_.RenderPending();
  return out;
}

std::string Peer::RenderRelation(const std::string& relation) const {
  const Relation* rel =
      engine_ == nullptr ? nullptr : engine_->catalog().Get(relation);
  std::string out = relation + "@" + name_;
  if (rel == nullptr) {
    return out + ": (not declared)\n";
  }
  out += " [" + std::string(RelationKindToString(rel->kind())) + ", " +
         std::to_string(rel->size()) + " tuples]\n";
  for (const Tuple& t : rel->SortedTuples()) {
    out += "  " + TupleToString(t) + "\n";
  }
  return out;
}

}  // namespace wdl
