// Experiment A5 — wire-format throughput (DESIGN.md §3).
//
// Every inter-peer message round-trips through the binary codec, so its
// cost is on every experiment's critical path. Measures encode and
// decode throughput for fact batches (the bulk traffic), derived sets,
// and rule delegations (the structured traffic).
//
// Expected shape: linear in payload size; decode within ~2x of encode.

#include <benchmark/benchmark.h>

#include "net/wire.h"
#include "parser/parser.h"

namespace wdl {
namespace {

Envelope MakeFactBatch(int facts, int payload_bytes) {
  Envelope e;
  e.from = "emilien";
  e.to = "sigmod";
  e.seq = 7;
  std::vector<Fact> batch;
  batch.reserve(facts);
  for (int i = 0; i < facts; ++i) {
    batch.push_back(Fact(
        "pictures", "sigmod",
        {Value::Int(i), Value::String("pic" + std::to_string(i) + ".jpg"),
         Value::String("emilien"),
         Value::MakeBlob(std::string(payload_bytes, 'x'))}));
  }
  e.message = Message::FactInserts(std::move(batch));
  return e;
}

void BM_EncodeFactBatch(benchmark::State& state) {
  Envelope e = MakeFactBatch(static_cast<int>(state.range(0)), 64);
  size_t bytes = 0;
  for (auto _ : state) {
    std::string encoded = EncodeEnvelope(e);
    bytes = encoded.size();
    benchmark::DoNotOptimize(encoded);
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes) * state.iterations());
}
BENCHMARK(BM_EncodeFactBatch)->Arg(1)->Arg(64)->Arg(1024);

void BM_DecodeFactBatch(benchmark::State& state) {
  std::string bytes =
      EncodeEnvelope(MakeFactBatch(static_cast<int>(state.range(0)), 64));
  for (auto _ : state) {
    Result<Envelope> decoded = DecodeEnvelope(bytes);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes.size()) *
                          state.iterations());
}
BENCHMARK(BM_DecodeFactBatch)->Arg(1)->Arg(64)->Arg(1024);

void BM_RoundTripDelegation(benchmark::State& state) {
  Delegation d;
  d.origin_peer = "Jules";
  d.target_peer = "Emilien";
  d.origin_rule_hash = 0x1234;
  d.rule = *ParseRule(
      "attendeePictures@Jules($id, $name, $owner, $data) :- "
      "pictures@Emilien($id, $name, $owner, $data), "
      "rate@Emilien($id, 5)");
  Envelope e;
  e.from = "Jules";
  e.to = "Emilien";
  e.message = Message::DelegationInstall(d);
  for (auto _ : state) {
    std::string bytes = EncodeEnvelope(e);
    Result<Envelope> back = DecodeEnvelope(bytes);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_RoundTripDelegation);

void BM_RoundTripDerivedSet(benchmark::State& state) {
  DerivedSet s;
  s.target_peer = "jules";
  s.relation = "attendeePictures";
  int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    s.tuples.push_back({Value::Int(i), Value::String("name"),
                        Value::Double(0.5)});
  }
  Envelope e;
  e.from = "emilien";
  e.to = "jules";
  e.message = Message::MakeDerivedSet(s);
  for (auto _ : state) {
    std::string bytes = EncodeEnvelope(e);
    Result<Envelope> back = DecodeEnvelope(bytes);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_RoundTripDerivedSet)->Arg(10)->Arg(1000);

// Blob-heavy payloads (picture data dominates Wepic traffic).
void BM_RoundTripBlobPayload(benchmark::State& state) {
  Envelope e = MakeFactBatch(1, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::string bytes = EncodeEnvelope(e);
    Result<Envelope> back = DecodeEnvelope(bytes);
    benchmark::DoNotOptimize(back);
    state.SetBytesProcessed(state.bytes_processed() +
                            static_cast<int64_t>(bytes.size()));
  }
}
BENCHMARK(BM_RoundTripBlobPayload)->Arg(1024)->Arg(65536)->Arg(1 << 20);

}  // namespace
}  // namespace wdl

BENCHMARK_MAIN();
