#ifndef WDL_AST_PROGRAM_H_
#define WDL_AST_PROGRAM_H_

#include <ostream>
#include <string>
#include <vector>

#include "ast/fact.h"
#include "ast/rule.h"

namespace wdl {

/// Storage discipline of a relation (the WebdamLog model's dichotomy):
/// extensional relations persist across stages and accept updates;
/// intensional relations are views, recomputed from scratch each stage.
enum class RelationKind : uint8_t {
  kExtensional = 0,
  kIntensional = 1,
};

const char* RelationKindToString(RelationKind kind);

/// One column of a relation schema. kAny admits any value kind, which
/// wrappers use for loosely typed external data.
struct ColumnSpec {
  std::string name;
  ValueKind type = ValueKind::kAny;

  bool operator==(const ColumnSpec& o) const {
    return name == o.name && type == o.type;
  }
};

/// Declaration of a relation `name@peer` with a fixed schema, e.g.
///   collection ext persistent pictures@alice(id: int, name: string);
struct RelationDecl {
  std::string relation;
  std::string peer;
  RelationKind kind = RelationKind::kExtensional;
  std::vector<ColumnSpec> columns;

  size_t arity() const { return columns.size(); }
  std::string PredicateId() const { return relation + "@" + peer; }
  std::string ToString() const;

  bool operator==(const RelationDecl& o) const {
    return relation == o.relation && peer == o.peer && kind == o.kind &&
           columns == o.columns;
  }
};

/// A parsed WebdamLog program: declarations, base facts, and rules, in
/// source order. This is the unit a peer is initialized with and the
/// unit the parser produces.
struct Program {
  std::vector<RelationDecl> declarations;
  std::vector<Fact> facts;
  std::vector<Rule> rules;

  bool empty() const {
    return declarations.empty() && facts.empty() && rules.empty();
  }

  /// Re-renders the program in surface syntax (one statement per line,
  /// each terminated with ';'). Parsing the output yields an equal
  /// Program — round-tripping is covered by tests.
  std::string ToString() const;
};

inline std::ostream& operator<<(std::ostream& os, const Program& p) {
  return os << p.ToString();
}

}  // namespace wdl

#endif  // WDL_AST_PROGRAM_H_
