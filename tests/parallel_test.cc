// Multi-core Δ-driven evaluation (DESIGN.md §8): the parallel paths
// must be *bit-identical* to the single-threaded oracle. Every test
// here compares fingerprints across thread counts against the
// threads == 1 configuration, which preserves the exact pre-parallel
// code path. Engagement is asserted through the parallel_rounds
// counter so a gate that silently fell back to serial cannot pass
// these checks vacuously.

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/thread_pool.h"
#include "runtime/fingerprint.h"
#include "runtime/system.h"
#include "support/builders.h"
#include "support/fixture.h"

namespace wdl {
namespace {

using test::F;
using test::I;
using test::S;

// ---------------------------------------------------------------------
// ThreadPool unit tests.

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  constexpr int kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](int i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (int i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  // The barrier must fully retire each job before the next reuses the
  // shared job slot — run many back-to-back jobs of varying widths.
  ThreadPool pool(3);
  for (int job = 1; job <= 64; ++job) {
    std::atomic<int> sum{0};
    pool.ParallelFor(job, [&](int i) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), job * (job + 1) / 2);
  }
}

TEST(ThreadPoolTest, SingleThreadAndEmptyJobsRunInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  int count = 0;
  pool.ParallelFor(5, [&](int) { ++count; });
  EXPECT_EQ(count, 5);
  pool.ParallelFor(0, [&](int) { ++count; });
  pool.ParallelFor(-3, [&](int) { ++count; });
  EXPECT_EQ(count, 5);
}

// ---------------------------------------------------------------------
// Intra-peer partitioned evaluation: single-peer fixpoints across
// eval_threads counts vs the serial oracle.

constexpr const char* kTcProgram =
    "collection ext edge@p(x: int, y: int);"
    "collection int tc@p(x: int, y: int);"
    "rule tc@p($x, $y) :- edge@p($x, $y);"
    "rule tc@p($x, $z) :- tc@p($x, $y), edge@p($y, $z);";

std::unique_ptr<Peer> MakeTcChainPeer(int eval_threads, int n) {
  PeerOptions opts;
  opts.engine.eval_threads = eval_threads;
  auto peer = std::make_unique<Peer>("p", opts);
  EXPECT_TRUE(peer->LoadProgramText(kTcProgram).ok());
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(peer->Insert(F("edge", "p", {I(i), I(i + 1)})).ok());
  }
  return peer;
}

TEST(ParallelEngineTest, TcChainFingerprintIdenticalAcrossThreadCounts) {
  constexpr int kChain = 64;
  std::unique_ptr<Peer> oracle = MakeTcChainPeer(1, kChain);
  (void)oracle->RunStage();
  EXPECT_EQ(oracle->engine().eval_counters().parallel_rounds, 0u);
  const std::string want = PeerStateFingerprint(*oracle);
  ASSERT_EQ(oracle->engine().catalog().Get("tc")->size(),
            size_t{kChain} * (kChain + 1) / 2);

  for (int threads : {2, 4, 8}) {
    std::unique_ptr<Peer> peer = MakeTcChainPeer(threads, kChain);
    (void)peer->RunStage();
    EXPECT_EQ(PeerStateFingerprint(*peer), want) << "threads=" << threads;
    EXPECT_GT(peer->engine().eval_counters().parallel_rounds, 0u)
        << "threads=" << threads << ": parallel path never engaged";
  }
}

TEST(ParallelEngineTest, SameGenFingerprintIdenticalAcrossThreadCounts) {
  // Bushier deltas than the chain: a complete binary tree's
  // same-generation pairs, stressing partition merge with wide rounds.
  constexpr const char* kSgProgram =
      "collection ext par@p(c: int, d: int);"
      "collection int sg@p(x: int, y: int);"
      "rule sg@p($x, $x) :- par@p($x, $_);"
      "rule sg@p($x, $y) :- par@p($x, $xp), sg@p($xp, $yp), "
      "par@p($y, $yp);";
  auto run = [&](int threads) {
    PeerOptions opts;
    opts.engine.eval_threads = threads;
    Peer peer("p", opts);
    EXPECT_TRUE(peer.LoadProgramText(kSgProgram).ok());
    for (int parent = 1; parent < (1 << 5); ++parent) {
      EXPECT_TRUE(
          peer.Insert(F("par", "p", {I(2 * parent), I(parent)})).ok());
      EXPECT_TRUE(
          peer.Insert(F("par", "p", {I(2 * parent + 1), I(parent)})).ok());
    }
    (void)peer.RunStage();
    if (threads > 1) {
      EXPECT_GT(peer.engine().eval_counters().parallel_rounds, 0u)
          << "threads=" << threads;
    }
    return PeerStateFingerprint(peer);
  };
  const std::string want = run(1);
  for (int threads : {2, 4, 8}) {
    EXPECT_EQ(run(threads), want) << "threads=" << threads;
  }
}

TEST(ParallelEngineTest, MixedRuleSetsRunEligibleRulesParallel) {
  // A rule set mixing round-eligible rules (the TC pair) with a
  // delegation-capable one (variable body peer — must stay serial)
  // used to fall back to the serial loop for the *whole stage*. Now
  // only the ineligible rule runs serially, against the same frozen Δ
  // the partitioned rules consumed; parallel_mixed_rounds counts the
  // rounds that took the combined path.
  constexpr const char* kMixedProgram =
      "collection ext edge@p(x: int, y: int);"
      "collection int tc@p(x: int, y: int);"
      "collection ext follows@p(w: string);"
      "collection ext post@p(id: int);"
      "collection int feed@p(id: int, author: string);"
      "rule tc@p($x, $y) :- edge@p($x, $y);"
      "rule tc@p($x, $z) :- tc@p($x, $y), edge@p($y, $z);"
      "rule feed@p($id, $w) :- follows@p($w), post@$w($id);";
  auto run = [&](int threads) {
    PeerOptions opts;
    opts.engine.eval_threads = threads;
    Peer peer("p", opts);
    EXPECT_TRUE(peer.LoadProgramText(kMixedProgram).ok());
    for (int i = 0; i < 48; ++i) {
      EXPECT_TRUE(peer.Insert(F("edge", "p", {I(i), I(i + 1)})).ok());
    }
    // Self-follow keeps the delegating rule entirely local, so the
    // whole mixed stage settles in one RunStage.
    EXPECT_TRUE(peer.Insert(F("follows", "p", {S("p")})).ok());
    EXPECT_TRUE(peer.Insert(F("post", "p", {I(3)})).ok());
    (void)peer.RunStage();
    const EvalCounters& counters = peer.engine().eval_counters();
    if (threads == 1) {
      EXPECT_EQ(counters.parallel_rounds, 0u);
      EXPECT_EQ(counters.parallel_mixed_rounds, 0u);
    } else {
      EXPECT_GT(counters.parallel_rounds, 0u) << "threads=" << threads;
      EXPECT_GT(counters.parallel_mixed_rounds, 0u)
          << "threads=" << threads
          << ": ineligible rule forced the whole stage serial";
    }
    EXPECT_TRUE(peer.engine().catalog().Get("feed")->Contains(
        {I(3), S("p")}));
    return PeerStateFingerprint(peer);
  };
  const std::string want = run(1);
  for (int threads : {2, 4}) {
    EXPECT_EQ(run(threads), want) << "threads=" << threads;
  }
}

TEST(ParallelEngineTest, IncrementalDeletionChurnMatchesSerialOracle) {
  // Δ-driven incremental stages (insertions *and* DRed retraction) must
  // agree with the oracle after every settle, not just at the end.
  constexpr int kChain = 32;
  auto step = [](Peer& peer, int round) {
    // Deterministic churn: delete one edge, re-add another.
    int del = (round * 7) % kChain;
    int add = (round * 11 + 3) % kChain;
    EXPECT_TRUE(peer.Remove(F("edge", "p", {I(del), I(del + 1)})).ok());
    EXPECT_TRUE(peer.Insert(F("edge", "p", {I(add), I(add + 1)})).ok());
    (void)peer.RunStage();
  };

  std::unique_ptr<Peer> oracle = MakeTcChainPeer(1, kChain);
  std::unique_ptr<Peer> parallel = MakeTcChainPeer(4, kChain);
  (void)oracle->RunStage();
  (void)parallel->RunStage();
  for (int round = 0; round < 6; ++round) {
    step(*oracle, round);
    step(*parallel, round);
    EXPECT_EQ(PeerStateFingerprint(*parallel), PeerStateFingerprint(*oracle))
        << "round " << round;
  }
  EXPECT_EQ(oracle->engine().eval_counters().parallel_rounds, 0u);
  EXPECT_GT(parallel->engine().eval_counters().parallel_rounds, 0u);
  EXPECT_GT(oracle->engine().eval_counters().tuples_retracted, 0u);
  EXPECT_EQ(parallel->engine().eval_counters().tuples_retracted,
            oracle->engine().eval_counters().tuples_retracted);
}

TEST(ParallelEngineTest, CountersDeterministicAcrossRepeatedParallelRuns) {
  // At a fixed thread count the partitioning is content-hashed and the
  // merge order is fixed, so two identical runs must report *identical*
  // work counters — not merely identical states.
  auto counters = [](int threads) {
    std::unique_ptr<Peer> peer = MakeTcChainPeer(threads, 48);
    (void)peer->RunStage();
    return peer->engine().eval_counters();
  };
  const EvalCounters a = counters(4);
  const EvalCounters b = counters(4);
  EXPECT_GT(a.parallel_rounds, 0u);
  EXPECT_EQ(a.parallel_rounds, b.parallel_rounds);
  EXPECT_EQ(a.tuples_examined, b.tuples_examined);
  EXPECT_EQ(a.bindings_completed, b.bindings_completed);
  EXPECT_EQ(a.slot_bindings, b.slot_bindings);
  EXPECT_EQ(a.index_lookups, b.index_lookups);
  EXPECT_EQ(a.full_scans, b.full_scans);
  EXPECT_EQ(a.delta_index_probes, b.delta_index_probes);
  EXPECT_EQ(a.delta_scans, b.delta_scans);
}

// ---------------------------------------------------------------------
// Inter-peer worker pool: whole-system fingerprints across
// worker_threads x eval_threads vs the (1, 1) oracle.

// A randomized multi-peer workload exercising the shapes that stress
// parallel rounds: delegation churn (the variable-peer rule re-targets
// as selections toggle), deletions, and local recursion at one peer.
std::string RunMultiPeerWorkload(int worker_threads, int eval_threads,
                                 uint64_t* parallel_rounds_out = nullptr) {
  SystemOptions sys_opts;
  sys_opts.network_seed = 7;
  sys_opts.worker_threads = worker_threads;
  System system(sys_opts);
  PeerOptions peer_opts;
  peer_opts.engine.eval_threads = eval_threads;
  peer_opts.trust_all_delegations = true;
  Peer* hub = system.CreatePeer("hub", peer_opts);
  Peer* b = system.CreatePeer("b", peer_opts);
  Peer* c = system.CreatePeer("c", peer_opts);

  EXPECT_TRUE(hub->LoadProgramText(R"(
    collection ext selected@hub(who: string);
    collection int gallery@hub(id: int);
    rule gallery@hub($id) :- selected@hub($w), pictures@$w($id);
  )").ok());
  EXPECT_TRUE(b->LoadProgramText(R"(
    collection ext pictures@b(id: int);
    collection ext edge@b(x: int, y: int);
    collection int tc@b(x: int, y: int);
    rule tc@b($x, $y) :- edge@b($x, $y);
    rule tc@b($x, $z) :- tc@b($x, $y), edge@b($y, $z);
    rule summary@hub($x) :- tc@b($x, $_);
  )").ok());
  EXPECT_TRUE(c->LoadProgramText(R"(
    collection ext pictures@c(id: int);
  )").ok());
  for (int i = 0; i < 24; ++i) {
    EXPECT_TRUE(b->Insert(F("edge", "b", {I(i), I(i + 1)})).ok());
  }

  // Deterministic LCG drives the churn so every configuration replays
  // the exact same script of inserts, deletes, and re-delegations.
  uint64_t s = 99;
  auto next = [&s](int mod) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<int>((s >> 33) % mod);
  };
  const std::vector<std::string> names = {"b", "c"};
  for (int round = 0; round < 10; ++round) {
    const std::string& who = names[next(2)];
    if (next(3) == 0) {
      EXPECT_TRUE(hub->Remove(F("selected", "hub", {S(who)})).ok());
    } else {
      EXPECT_TRUE(hub->Insert(F("selected", "hub", {S(who)})).ok());
    }
    Peer* owner = system.GetPeer(who);
    int id = next(16);
    if (next(4) == 0) {
      EXPECT_TRUE(owner->Remove(F("pictures", who, {I(id)})).ok());
    } else {
      EXPECT_TRUE(owner->Insert(F("pictures", who, {I(id)})).ok());
    }
    int e = next(24);
    if (next(5) == 0) {
      EXPECT_TRUE(b->Remove(F("edge", "b", {I(e), I(e + 1)})).ok());
    } else {
      EXPECT_TRUE(b->Insert(F("edge", "b", {I(e), I(e + 1)})).ok());
    }
    EXPECT_TRUE(system.RunUntilQuiescent().ok());
  }

  if (parallel_rounds_out != nullptr) {
    *parallel_rounds_out = hub->engine().eval_counters().parallel_rounds +
                           b->engine().eval_counters().parallel_rounds +
                           c->engine().eval_counters().parallel_rounds;
  }
  return test::GlobalStateFingerprint(system);
}

TEST(ParallelSystemTest, RandomizedWorkloadFingerprintSweep) {
  uint64_t oracle_parallel = 0;
  const std::string want = RunMultiPeerWorkload(1, 1, &oracle_parallel);
  EXPECT_EQ(oracle_parallel, 0u);

  for (int threads : {2, 4, 8}) {
    uint64_t parallel = 0;
    EXPECT_EQ(RunMultiPeerWorkload(threads, threads, &parallel), want)
        << "threads=" << threads;
    EXPECT_GT(parallel, 0u) << "threads=" << threads;
  }
  // Mixed configurations: each level's parallelism is independent.
  EXPECT_EQ(RunMultiPeerWorkload(4, 1), want);
  EXPECT_EQ(RunMultiPeerWorkload(1, 4), want);
}

TEST(ParallelSystemTest, LossyLinkResyncMatchesSerialOracle) {
  // Loss, heartbeats, and resync snapshots ride the same buffered
  // envelope path: because stage output is submitted in peer-name order
  // regardless of worker count, the simulated network draws the same
  // RNG stream and the repaired state is identical to the oracle's.
  auto run = [](int worker_threads) {
    SystemOptions opts;
    opts.network_seed = 11;
    opts.worker_threads = worker_threads;
    opts.heartbeat_interval_rounds = 4;
    System system(opts);
    PeerOptions peer_opts;
    peer_opts.engine.eval_threads = worker_threads;
    Peer* a = system.CreatePeer("a", peer_opts);
    Peer* hub = system.CreatePeer("hub", peer_opts);
    EXPECT_TRUE(hub->LoadProgramText(
        "collection int board@hub(x: int);").ok());
    EXPECT_TRUE(a->LoadProgramText(R"(
      collection ext data@a(x: int);
      rule board@hub($x) :- data@a($x);
    )").ok());
    EXPECT_TRUE(a->Insert(F("data", "a", {I(1)})).ok());
    EXPECT_TRUE(system.RunUntilQuiescent().ok());

    // Lose the last frame of the stream, go silent, let the heartbeat
    // expose the gap and the resync repair it.
    LinkConfig dead;
    dead.drop_probability = 1.0;
    system.network().SetLink("a", "hub", dead);
    EXPECT_TRUE(a->Insert(F("data", "a", {I(2)})).ok());
    EXPECT_TRUE(system.RunUntilQuiescent().ok());
    system.network().SetLink("a", "hub", LinkConfig{});
    for (int round = 0; round < 12; ++round) (void)system.RunRound();
    EXPECT_TRUE(system.RunUntilQuiescent().ok());
    EXPECT_EQ(hub->engine().catalog().Get("board")->size(), 2u);
    return test::GlobalStateFingerprint(system);
  };
  const std::string want = run(1);
  for (int threads : {2, 4}) {
    EXPECT_EQ(run(threads), want) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace wdl
