#include "ast/value.h"

#include <cmath>
#include <cstdio>

#include "base/string_util.h"

namespace wdl {

const char* ValueKindToString(ValueKind kind) {
  switch (kind) {
    case ValueKind::kInt: return "int";
    case ValueKind::kDouble: return "double";
    case ValueKind::kString: return "string";
    case ValueKind::kBlob: return "blob";
    case ValueKind::kAny: return "any";
  }
  return "?";
}

std::string Value::ToString() const {
  switch (kind()) {
    case ValueKind::kInt:
      return std::to_string(AsInt());
    case ValueKind::kDouble: {
      // %.17g round-trips doubles; strip to shortest that still parses
      // as a double (must contain '.' or exponent to stay a double).
      std::string s = StrFormat("%.17g", AsDouble());
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case ValueKind::kString:
      return "\"" + EscapeString(AsString()) + "\"";
    case ValueKind::kBlob: {
      const std::string& b = AsBlob().bytes;
      std::string out = "0x";
      out.reserve(2 + b.size() * 2);
      static const char* kHex = "0123456789abcdef";
      for (unsigned char c : b) {
        out += kHex[c >> 4];
        out += kHex[c & 0xf];
      }
      return out;
    }
    case ValueKind::kAny:
      break;
  }
  return "?";
}

uint64_t Value::ComputeHash() const {
  uint64_t tag = static_cast<uint64_t>(kind());
  switch (kind()) {
    case ValueKind::kInt: {
      uint64_t bits = static_cast<uint64_t>(AsInt());
      return HashCombine(tag, Fnv1a64(&bits, sizeof(bits)));
    }
    case ValueKind::kDouble: {
      // Normalize -0.0 to 0.0 so equal doubles hash equally.
      double d = AsDouble();
      if (d == 0.0) d = 0.0;
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return HashCombine(tag, Fnv1a64(&bits, sizeof(bits)));
    }
    case ValueKind::kString:
      return HashCombine(tag, HashString(AsString()));
    case ValueKind::kBlob:
      return HashCombine(tag, HashString(AsBlob().bytes));
    case ValueKind::kAny:
      break;
  }
  return tag;
}

bool Value::operator<(const Value& o) const {
  if (kind() != o.kind()) {
    return static_cast<int>(kind()) < static_cast<int>(o.kind());
  }
  switch (kind()) {
    case ValueKind::kInt: return AsInt() < o.AsInt();
    case ValueKind::kDouble: return AsDouble() < o.AsDouble();
    case ValueKind::kString: return AsString() < o.AsString();
    case ValueKind::kBlob: return AsBlob() < o.AsBlob();
    case ValueKind::kAny: break;
  }
  return false;
}

}  // namespace wdl
