#include <gtest/gtest.h>

#include "runtime/system.h"
#include "wrappers/email_wrapper.h"
#include "wrappers/facebook_wrapper.h"

#include "support/builders.h"

namespace wdl {
namespace {

using test::I;
using test::S;

TEST(FacebookServiceTest, FriendshipsAreSymmetric) {
  FacebookService fb;
  fb.AddFriendship("emilien", "jules");
  EXPECT_EQ(fb.FriendsOf("emilien"), std::vector<std::string>{"jules"});
  EXPECT_EQ(fb.FriendsOf("jules"), std::vector<std::string>{"emilien"});
}

TEST(FacebookServiceTest, PostingRequiresMembership) {
  FacebookService fb;
  fb.CreateGroup("sigmod");
  FacebookService::Picture pic{1, "x.jpg", "outsider", "d"};
  EXPECT_EQ(fb.PostPicture("sigmod", pic).code(),
            StatusCode::kPermissionDenied);
  ASSERT_TRUE(fb.JoinGroup("sigmod", "outsider").ok());
  EXPECT_TRUE(fb.PostPicture("sigmod", pic).ok());
  EXPECT_TRUE(fb.GroupHasPicture("sigmod", 1));
}

TEST(FacebookServiceTest, DuplicatePostIsIdempotent) {
  FacebookService fb;
  fb.CreateGroup("g");
  ASSERT_TRUE(fb.JoinGroup("g", "u").ok());
  FacebookService::Picture pic{1, "x.jpg", "u", "d"};
  ASSERT_TRUE(fb.PostPicture("g", pic).ok());
  uint64_t v = fb.version();
  ASSERT_TRUE(fb.PostPicture("g", pic).ok());
  EXPECT_EQ(fb.version(), v);
  EXPECT_EQ(fb.GroupPictures("g").size(), 1u);
}

TEST(FacebookServiceTest, VersionBumpsOnMutation) {
  FacebookService fb;
  uint64_t v0 = fb.version();
  fb.AddUser("u");
  EXPECT_GT(fb.version(), v0);
}

TEST(FacebookServiceTest, CommentsRequireExistingGroup) {
  FacebookService fb;
  EXPECT_FALSE(fb.AddComment("ghost", {1, "a", "t"}).ok());
  fb.CreateGroup("g");
  EXPECT_TRUE(fb.AddComment("g", {1, "a", "t"}).ok());
  EXPECT_EQ(fb.GroupComments("g").size(), 1u);
}

TEST(GroupWrapperTest, ImportsWallIntoRelation) {
  System system;
  FacebookService fb;
  fb.CreateGroup("sigmod");
  ASSERT_TRUE(fb.JoinGroup("sigmod", "emilien").ok());
  ASSERT_TRUE(
      fb.PostPicture("sigmod", {7, "wall.jpg", "emilien", "bytes"}).ok());

  system.CreatePeer("SigmodFB");
  ASSERT_TRUE(system.AttachWrapper(std::make_unique<FacebookGroupWrapper>(
      "SigmodFB", &fb, "sigmod")).ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());

  const Relation* pics =
      system.GetPeer("SigmodFB")->engine().catalog().Get("pictures");
  ASSERT_NE(pics, nullptr);
  EXPECT_TRUE(pics->Contains({I(7), S("wall.jpg"), S("emilien"),
                              Value::MakeBlob("bytes")}));
}

TEST(GroupWrapperTest, ExportsDerivedTuplesToWall) {
  System system;
  FacebookService fb;
  fb.CreateGroup("sigmod");
  ASSERT_TRUE(fb.JoinGroup("sigmod", "emilien").ok());

  Peer* peer = system.CreatePeer("SigmodFB");
  ASSERT_TRUE(system.AttachWrapper(std::make_unique<FacebookGroupWrapper>(
      "SigmodFB", &fb, "sigmod")).ok());
  // Simulate a rule-derived insertion into the exported relation.
  ASSERT_TRUE(peer->Insert(Fact("pictures", "SigmodFB",
                                {I(3), S("derived.jpg"), S("emilien"),
                                 Value::MakeBlob("x")})).ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  EXPECT_TRUE(fb.GroupHasPicture("sigmod", 3));
}

TEST(GroupWrapperTest, NonMemberPostIsRejectedAndRemoved) {
  System system;
  FacebookService fb;
  fb.CreateGroup("sigmod");

  Peer* peer = system.CreatePeer("SigmodFB");
  auto wrapper = std::make_unique<FacebookGroupWrapper>("SigmodFB", &fb,
                                                        "sigmod");
  FacebookGroupWrapper* w = wrapper.get();
  ASSERT_TRUE(system.AttachWrapper(std::move(wrapper)).ok());
  ASSERT_TRUE(peer->Insert(Fact("pictures", "SigmodFB",
                                {I(3), S("x.jpg"), S("stranger"),
                                 Value::MakeBlob("x")})).ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  EXPECT_FALSE(fb.GroupHasPicture("sigmod", 3));
  EXPECT_EQ(w->rejected_posts(), 1u);
  EXPECT_EQ(peer->engine().catalog().Get("pictures")->size(), 0u);
}

TEST(UserWrapperTest, ExportsFriendsAndPictures) {
  System system;
  FacebookService fb;
  fb.AddFriendship("emilien", "jules");
  fb.AddFriendship("emilien", "serge");
  fb.AddUserPicture("emilien", {1, "profile.jpg", "emilien", "d"});

  system.CreatePeer("EmilienFB");
  ASSERT_TRUE(system.AttachWrapper(std::make_unique<FacebookUserWrapper>(
      "EmilienFB", &fb, "emilien")).ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());

  const Catalog& cat = system.GetPeer("EmilienFB")->engine().catalog();
  EXPECT_EQ(cat.Get("friends")->size(), 2u);
  ASSERT_EQ(cat.Get("pictures")->size(), 1u);
  EXPECT_TRUE(cat.Get("friends")->Contains({S("emilien"), S("jules")}));
}

TEST(UserWrapperTest, RulesCanJoinOverWrapperRelations) {
  // §2's point: wrapper relations "can then be used in WebdamLog
  // rules". A rule over friends@EmilienFB runs like over any relation.
  System system;
  FacebookService fb;
  fb.AddFriendship("emilien", "jules");

  Peer* peer = system.CreatePeer("EmilienFB");
  ASSERT_TRUE(system.AttachWrapper(std::make_unique<FacebookUserWrapper>(
      "EmilienFB", &fb, "emilien")).ok());
  ASSERT_TRUE(peer->LoadProgramText(R"(
    collection int friendNames@EmilienFB(name: string);
    rule friendNames@EmilienFB($f) :- friends@EmilienFB($u, $f);
  )").ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  EXPECT_TRUE(peer->engine().catalog().Get("friendNames")->Contains(
      {S("jules")}));
}

TEST(EmailWrapperTest, DeliversEachTupleOnce) {
  System system;
  EmailService mail;
  Peer* peer = system.CreatePeer("jules");
  ASSERT_TRUE(system.AttachWrapper(std::make_unique<EmailWrapper>(
      "jules", &mail, "jules@example.org")).ok());

  ASSERT_TRUE(peer->Insert(Fact("email", "jules",
                                {S("jules"), S("dinner.jpg"), I(3),
                                 S("emilien")})).ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  ASSERT_EQ(mail.InboxOf("jules@example.org").size(), 1u);
  EXPECT_EQ(mail.InboxOf("jules@example.org")[0].subject, "dinner.jpg");

  // Re-running the system must not re-deliver.
  for (int i = 0; i < 5; ++i) system.RunRound();
  EXPECT_EQ(mail.InboxOf("jules@example.org").size(), 1u);
}

TEST(EmailWrapperTest, MultipleTuplesMultipleEmails) {
  System system;
  EmailService mail;
  Peer* peer = system.CreatePeer("jules");
  ASSERT_TRUE(system.AttachWrapper(std::make_unique<EmailWrapper>(
      "jules", &mail, "jules@example.org")).ok());
  for (int64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(peer->Insert(Fact("email", "jules",
                                  {S("jules"), S("pic"), I(i), S("x")}))
                    .ok());
  }
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  EXPECT_EQ(mail.InboxOf("jules@example.org").size(), 4u);
  EXPECT_EQ(mail.sent_count(), 4u);
}

}  // namespace
}  // namespace wdl
