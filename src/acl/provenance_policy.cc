#include "acl/provenance_policy.h"

namespace wdl {

std::string PredicateOwner(const std::string& predicate) {
  size_t at = predicate.find('@');
  return at == std::string::npos ? "" : predicate.substr(at + 1);
}

Status DerivePolicyFromRules(const std::vector<Rule>& rules,
                             AccessPolicy* policy) {
  LineageMap lineage = ComputeLineage(rules);

  auto ensure_registered = [&](const std::string& predicate) {
    if (!policy->OwnerOf(predicate).empty()) return;
    // The wildcard gets an owner nobody can be ("*"), so provenance
    // checks through it always deny for real peers.
    std::string owner = predicate == kWildcardPredicate
                            ? "*"
                            : PredicateOwner(predicate);
    (void)policy->RegisterRelation(predicate, owner);
  };

  for (const auto& [view, bases] : lineage) {
    ensure_registered(view);
    std::vector<std::string> base_list;
    for (const std::string& base : bases) {
      ensure_registered(base);
      base_list.push_back(base);
    }
    if (!base_list.empty()) {
      WDL_RETURN_IF_ERROR(policy->RegisterView(view, base_list));
    }
  }
  return Status::OK();
}

}  // namespace wdl
