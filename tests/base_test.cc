#include <gtest/gtest.h>

#include "base/hash.h"
#include "base/result.h"
#include "base/rng.h"
#include "base/status.h"
#include "base/string_util.h"
#include "base/symbol.h"

namespace wdl {
namespace {

TEST(StatusTest, OkIsDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  Status s = Status::NotFound("missing relation");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing relation");
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    WDL_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok = 5;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  Result<int> err = Status::InvalidArgument("bad");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.value_or(9), 9);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = [](bool fail) -> Result<std::string> {
    if (fail) return Status::NotFound("nope");
    return std::string("value");
  };
  auto consume = [&](bool fail) -> Result<size_t> {
    WDL_ASSIGN_OR_RETURN(std::string s, produce(fail));
    return s.size();
  };
  EXPECT_EQ(*consume(false), 5u);
  EXPECT_EQ(consume(true).status().code(), StatusCode::kNotFound);
}

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), std::vector<std::string>{""});
}

TEST(StringUtilTest, JoinInvertsSplit) {
  std::vector<std::string> pieces{"x", "y", "z"};
  EXPECT_EQ(StrJoin(pieces, ", "), "x, y, z");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  ab c \t\n"), "ab c");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("pictures@sigmod", "pictures"));
  EXPECT_FALSE(StartsWith("pic", "pictures"));
  EXPECT_TRUE(EndsWith("sea.jpg", ".jpg"));
  EXPECT_FALSE(EndsWith("jpg", "sea.jpg"));
}

TEST(StringUtilTest, EscapeUnescapeRoundTrip) {
  std::string original = "a\"b\\c\nd\te\rf";
  std::string escaped = EscapeString(original);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  std::string back;
  ASSERT_TRUE(UnescapeString(escaped, &back));
  EXPECT_EQ(back, original);
}

TEST(StringUtilTest, UnescapeRejectsBadEscapes) {
  std::string out;
  EXPECT_FALSE(UnescapeString("\\q", &out));
  EXPECT_FALSE(UnescapeString("trailing\\", &out));
}

TEST(StringUtilTest, IsIdentifier) {
  EXPECT_TRUE(IsIdentifier("pictures"));
  EXPECT_TRUE(IsIdentifier("_x9"));
  EXPECT_FALSE(IsIdentifier("9x"));
  EXPECT_FALSE(IsIdentifier(""));
  EXPECT_FALSE(IsIdentifier("has space"));
  EXPECT_FALSE(IsIdentifier("has-dash"));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%s", ""), "");
  // Long output exercises the two-pass sizing.
  std::string big(500, 'a');
  EXPECT_EQ(StrFormat("%s", big.c_str()).size(), 500u);
}

TEST(HashTest, Fnv1aIsStable) {
  // Known-answer: hash must never change across platforms/builds, since
  // it participates in delegation keys on the wire.
  EXPECT_EQ(HashString("webdamlog"), Fnv1a64("webdamlog", 9));
  EXPECT_NE(HashString("a"), HashString("b"));
  EXPECT_EQ(HashString(""), 1469598103934665603ULL);
}

TEST(HashTest, CombineIsOrderDependent) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(RngTest, DeterministicSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(0), 0u);
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoolEdgeCases) {
  Rng rng(5);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.NextBool(0.5);
  EXPECT_NEAR(heads / 10000.0, 0.5, 0.03);
}

TEST(SymbolTest, InternIsIdempotentAndIdentityComparable) {
  Symbol a = Symbol::Intern("base_test_sym_a");
  Symbol b = Symbol::Intern("base_test_sym_b");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, Symbol::Intern("base_test_sym_a"));
  EXPECT_EQ(a.str(), "base_test_sym_a");
  EXPECT_EQ(a.hash(), HashString("base_test_sym_a"));
  EXPECT_TRUE(a.valid());
}

TEST(SymbolTest, FindDoesNotGrowTheTable) {
  size_t before = Symbol::TableSizeForTesting();
  Symbol missing = Symbol::Find("base_test_never_interned");
  EXPECT_FALSE(missing.valid());
  EXPECT_EQ(missing.str(), "");
  EXPECT_EQ(Symbol::TableSizeForTesting(), before);
  Symbol::Intern("base_test_now_interned");
  EXPECT_TRUE(Symbol::Find("base_test_now_interned").valid());
}

TEST(SymbolTest, InvalidSymbolIsDistinctAndStable) {
  Symbol invalid;
  EXPECT_FALSE(invalid.valid());
  EXPECT_EQ(invalid, Symbol());
  EXPECT_NE(invalid, Symbol::Intern("base_test_sym_a"));
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

}  // namespace
}  // namespace wdl
