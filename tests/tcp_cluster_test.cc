// The paper's deployment, for real: N separate OS processes, each a
// wdl_peerd hosting one peer, rendezvousing through address files and
// converging over TCP to exactly the state the in-process simulator
// computes. The restart test SIGKILLs one daemon mid-conversation and
// starts a fresh one from nothing but its program file: the survivors'
// link-reset handling plus the resync protocol must rebuild it.
//
// The daemon binary path is injected by CMake as WDL_PEERD_PATH.

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/fingerprint.h"
#include "runtime/system.h"

namespace wdl {
namespace {

const char* kAlice = R"(
  collection ext edge@alice(src: string, dst: string);
  collection int reach@alice(src: string, dst: string);
  collection ext selected@alice(p: string);
  collection int gallery@alice(id: int, name: string);
  fact edge@alice("a", "b");
  fact edge@alice("b", "c");
  fact edge@alice("c", "d");
  rule reach@alice($x, $y) :- edge@alice($x, $y);
  rule reach@alice($x, $z) :- reach@alice($x, $y), edge@alice($y, $z);
  fact selected@alice("bob");
  fact selected@alice("carol");
  rule gallery@alice($id, $n) :- selected@alice($p), pictures@$p($id, $n);
  rule mirror@bob($x, $y) :- reach@alice($x, $y);
)";

const char* kBob = R"(
  collection ext pictures@bob(id: int, name: string);
  fact pictures@bob(1, "sea.jpg");
  fact pictures@bob(2, "boat.jpg");
)";

const char* kCarol = R"(
  collection ext pictures@carol(id: int, name: string);
  fact pictures@carol(3, "cat.jpg");
)";

const std::vector<std::pair<std::string, const char*>> kCluster = {
    {"alice", kAlice}, {"bob", kBob}, {"carol", kCarol}};

std::map<std::string, std::string> SimulatorOracle() {
  System sim;
  PeerOptions po;
  po.trust_all_delegations = true;
  std::vector<Peer*> peers;
  for (const auto& [name, program] : kCluster) {
    (void)program;
    peers.push_back(sim.CreatePeer(name, po));
  }
  for (size_t i = 0; i < peers.size(); ++i) {
    EXPECT_TRUE(peers[i]->LoadProgramText(kCluster[i].second).ok());
  }
  EXPECT_TRUE(sim.RunUntilQuiescent().ok());
  std::map<std::string, std::string> fps;
  for (Peer* p : peers) fps[p->name()] = PeerStateFingerprint(*p);
  return fps;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class TcpClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string tmpl = ::testing::TempDir() + "/wdl_cluster_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl.data()), nullptr);
    dir_ = tmpl;
    for (const auto& [name, program] : kCluster) {
      std::ofstream out(dir_ + "/" + name + ".wdl");
      out << program;
      ASSERT_TRUE(out.good());
    }
  }

  void TearDown() override {
    // StopPeer erases from pids_; don't iterate the live map.
    std::vector<std::string> names;
    for (const auto& [name, pid] : pids_) names.push_back(name);
    for (const std::string& name : names) StopPeer(name);
  }

  /// fork+exec one wdl_peerd; stderr goes to <dir>/<name>.log.
  void SpawnPeer(const std::string& name,
                 const std::vector<std::string>& extra_args = {}) {
    std::vector<std::string> args = {
        WDL_PEERD_PATH,
        "--name",        name,
        "--program",     dir_ + "/" + name + ".wdl",
        "--listen",      "0",
        "--addr-file",   dir_ + "/" + name + ".addr",
        "--fingerprint", dir_ + "/" + name + ".fp",
        "--idle-ms",     "150",
    };
    args.insert(args.end(), extra_args.begin(), extra_args.end());
    for (const auto& [other, program] : kCluster) {
      (void)program;
      if (other == name) continue;
      args.push_back("--peer");
      args.push_back(other + "=@" + dir_ + "/" + other + ".addr");
    }
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Send both streams to the log: a daemon that inherited the
      // test's stdout pipe would keep ctest waiting on it even after
      // the test exits.
      std::string log = dir_ + "/" + name + ".log";
      int fd = ::open(log.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (fd >= 0) {
        ::dup2(fd, 1);
        ::dup2(fd, 2);
        ::close(fd);
      }
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      ::_exit(127);  // exec failed
    }
    pids_[name] = pid;
  }

  void KillPeerHard(const std::string& name) {
    auto it = pids_.find(name);
    ASSERT_NE(it, pids_.end());
    ASSERT_EQ(::kill(it->second, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(it->second, &status, 0), it->second);
    pids_.erase(it);
  }

  void StopPeer(const std::string& name) {
    auto it = pids_.find(name);
    if (it == pids_.end()) return;
    ::kill(it->second, SIGTERM);
    // Bounded graceful wait, then the hammer.
    for (int i = 0; i < 500; ++i) {
      int status = 0;
      if (::waitpid(it->second, &status, WNOHANG) == it->second) {
        pids_.erase(it);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ::kill(it->second, SIGKILL);
    int status = 0;
    ::waitpid(it->second, &status, 0);
    pids_.erase(it);
  }

  /// Waits until every peer's published fingerprint equals the oracle's.
  bool AwaitFingerprints(const std::map<std::string, std::string>& oracle,
                         int timeout_ms) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      bool all = true;
      for (const auto& [name, want] : oracle) {
        if (ReadFileOrEmpty(dir_ + "/" + name + ".fp") != want) {
          all = false;
          break;
        }
      }
      if (all) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return false;
  }

  void DumpStateOnFailure(const std::map<std::string, std::string>& oracle) {
    for (const auto& [name, want] : oracle) {
      std::string got = ReadFileOrEmpty(dir_ + "/" + name + ".fp");
      if (got != want) {
        ADD_FAILURE() << name << " fingerprint mismatch.\n--- want:\n"
                      << want << "--- got:\n"
                      << got << "--- log:\n"
                      << ReadFileOrEmpty(dir_ + "/" + name + ".log");
      }
    }
  }

  std::string dir_;
  std::map<std::string, pid_t> pids_;
};

TEST_F(TcpClusterTest, ThreeProcessesConvergeAndHealAfterKill) {
  auto oracle = SimulatorOracle();
  ASSERT_EQ(oracle.size(), 3u);

  for (const auto& [name, program] : kCluster) {
    (void)program;
    SpawnPeer(name);
  }
  bool converged = AwaitFingerprints(oracle, 90000);
  if (!converged) DumpStateOnFailure(oracle);
  ASSERT_TRUE(converged) << "initial convergence timed out";

  // Kill bob without ceremony; its fingerprint file is stale evidence,
  // so remove it before demanding fresh convergence.
  KillPeerHard("bob");
  ASSERT_EQ(::unlink((dir_ + "/bob.fp").c_str()), 0);

  // A fresh daemon restarts from the program file alone — everything
  // bob had learned (alice's mirror, the delegated gallery rule) must
  // come back through the survivors' link-reset + resync handling.
  SpawnPeer("bob");
  converged = AwaitFingerprints(oracle, 90000);
  if (!converged) DumpStateOnFailure(oracle);
  ASSERT_TRUE(converged) << "post-restart convergence timed out";
}

// The durable variant (DESIGN.md §11, OPERATIONS.md): every daemon
// runs with --data-dir, bob is SIGKILLed at convergence and restarted
// over the same directory. It must come back from disk — the recovery
// banner in its log, the same fingerprint on the wire, and crucially
// ZERO resync requests and ZERO applied snapshots: the log covered
// everything, so nothing is rebuilt over the network.
TEST_F(TcpClusterTest, DurableClusterRecoversFromDiskWithoutResync) {
  auto oracle = SimulatorOracle();
  ASSERT_EQ(oracle.size(), 3u);

  for (const auto& [name, program] : kCluster) {
    (void)program;
    SpawnPeer(name, {"--data-dir", dir_ + "/data/" + name});
  }
  bool converged = AwaitFingerprints(oracle, 90000);
  if (!converged) DumpStateOnFailure(oracle);
  ASSERT_TRUE(converged) << "initial convergence timed out";

  KillPeerHard("bob");
  ASSERT_EQ(::unlink((dir_ + "/bob.fp").c_str()), 0);
  // Fresh log so the greps below only see the restarted process.
  ASSERT_EQ(::unlink((dir_ + "/bob.log").c_str()), 0);

  SpawnPeer("bob", {"--data-dir", dir_ + "/data/bob"});
  converged = AwaitFingerprints(oracle, 90000);
  if (!converged) DumpStateOnFailure(oracle);
  ASSERT_TRUE(converged) << "post-restart convergence timed out";

  std::string log = ReadFileOrEmpty(dir_ + "/bob.log");
  EXPECT_NE(log.find("wdl_peerd bob recovered from"), std::string::npos)
      << log;
  // The daemon prints one parseable counter line per quiescent point;
  // a recovery that needed the network would show nonzero counters on
  // some line. Counters are monotonic, so "every occurrence is 0" is
  // exactly "recovery used the network zero times".
  EXPECT_NE(log.find("resyncs_requested=0"), std::string::npos) << log;
  for (const char* key : {"resyncs_requested=", "snapshots_applied="}) {
    for (size_t at = log.find(key); at != std::string::npos;
         at = log.find(key, at + 1)) {
      EXPECT_EQ(log[at + std::strlen(key)], '0') << key << "\n" << log;
    }
  }
}

}  // namespace
}  // namespace wdl
