#include "net/tcp_network.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>

#include "base/logging.h"
#include "base/string_util.h"
#include "net/wire.h"

namespace wdl {

namespace {

constexpr size_t kFramePrefixBytes = 4;

/// Reads exactly `n` bytes; false on EOF, error, or shutdown.
bool ReadFully(int fd, char* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r > 0) {
      got += static_cast<size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return false;  // EOF (0) or hard error
  }
  return true;
}

bool SendFully(int fd, const char* buf, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r > 0) {
      sent += static_cast<size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

void CloseFd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

TcpNetwork::TcpNetwork(TcpNetworkOptions options)
    : options_(std::move(options)) {}

TcpNetwork::~TcpNetwork() { Shutdown(); }

Status TcpNetwork::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("TcpNetwork already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Unavailable(StrFormat("socket: %s", strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.listen_port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    CloseFd(listen_fd_);
    return Status::InvalidArgument("bad bind address " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = Status::Unavailable(StrFormat(
        "bind %s:%u: %s", options_.bind_address.c_str(),
        options_.listen_port, strerror(errno)));
    CloseFd(listen_fd_);
    return st;
  }
  if (::listen(listen_fd_, 64) < 0) {
    Status st = Status::Unavailable(StrFormat("listen: %s", strerror(errno)));
    CloseFd(listen_fd_);
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpNetwork::Shutdown() {
  if (stopping_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    // Unblocks accept(); some platforms need the close, not just the
    // shutdown, for a listening socket.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  {
    std::lock_guard<std::mutex> lk(inbound_mutex_);
    for (auto& conn : inbound_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  // Join outside the lock: readers take inbound_mutex_-free paths only,
  // but keep the shape obviously deadlock-free anyway.
  std::vector<std::unique_ptr<InboundConn>> conns;
  {
    std::lock_guard<std::mutex> lk(inbound_mutex_);
    conns.swap(inbound_);
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
    CloseFd(conn->fd);
  }

  std::map<std::string, std::unique_ptr<Link>> links;
  {
    std::lock_guard<std::mutex> lk(links_mutex_);
    links.swap(links_);
  }
  for (auto& [peer, link] : links) {
    {
      std::lock_guard<std::mutex> lk(link->mutex);
      if (link->fd >= 0) ::shutdown(link->fd, SHUT_RDWR);
    }
    link->cv.notify_all();
    if (link->thread.joinable()) link->thread.join();
    std::lock_guard<std::mutex> lk(link->mutex);
    CloseFd(link->fd);
  }
}

void TcpNetwork::AddLocalPeer(const std::string& peer) {
  std::lock_guard<std::mutex> lk(links_mutex_);
  local_peers_.insert(peer);
}

void TcpNetwork::SetPeerAddress(const std::string& peer, std::string host,
                                uint16_t port) {
  std::lock_guard<std::mutex> lk(links_mutex_);
  addresses_[peer] = LinkAddress{std::move(host), port, {}};
}

void TcpNetwork::SetPeerAddressFile(const std::string& peer,
                                    std::string path) {
  std::lock_guard<std::mutex> lk(links_mutex_);
  addresses_[peer] = LinkAddress{{}, 0, std::move(path)};
}

void TcpNetwork::PushInbox(Envelope e) {
  std::lock_guard<std::mutex> lk(inbox_mutex_);
  inbox_.push_back(std::move(e));
}

void TcpNetwork::NoteReset(const std::string& peer) {
  if (stopping_) return;  // our own teardown is not a peer failure
  std::lock_guard<std::mutex> lk(resets_mutex_);
  resets_.push_back(peer);
}

TcpNetwork::Link* TcpNetwork::GetOrCreateLink(const std::string& peer) {
  std::lock_guard<std::mutex> lk(links_mutex_);
  auto it = links_.find(peer);
  if (it != links_.end()) return it->second.get();
  auto addr = addresses_.find(peer);
  if (addr == addresses_.end()) return nullptr;
  auto link = std::make_unique<Link>();
  link->peer = peer;
  link->address = addr->second;
  Link* raw = link.get();
  links_.emplace(peer, std::move(link));
  raw->thread = std::thread([this, raw] { SendLoop(raw); });
  return raw;
}

Status TcpNetwork::Submit(Envelope envelope, double /*now*/) {
  if (!started_ || stopping_) {
    return Status::FailedPrecondition("TcpNetwork is not running");
  }
  std::string bytes = EncodeEnvelope(envelope);
  {
    std::lock_guard<std::mutex> lk(stats_mutex_);
    ++stats_.messages_submitted;
  }

  bool local;
  {
    std::lock_guard<std::mutex> lk(links_mutex_);
    local = local_peers_.count(envelope.to) > 0;
  }
  if (local) {
    // Same-process peer: still round-trip the codec so byte accounting
    // and format coverage match the socket path.
    Result<Envelope> decoded = DecodeEnvelope(bytes);
    if (!decoded.ok()) {
      return Status::Internal("loopback decode failed: " +
                              decoded.status().ToString());
    }
    {
      std::lock_guard<std::mutex> lk(stats_mutex_);
      stats_.bytes_sent += bytes.size();
      ++stats_.messages_delivered;
    }
    PushInbox(std::move(decoded).value());
    return Status::OK();
  }

  Link* link = GetOrCreateLink(envelope.to);
  if (link == nullptr) {
    return Status::NotFound("no address for peer " + envelope.to);
  }
  std::string frame;
  frame.reserve(kFramePrefixBytes + bytes.size());
  uint32_t len = static_cast<uint32_t>(bytes.size());
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<char>(len >> (8 * i)));
  }
  frame += bytes;
  {
    std::lock_guard<std::mutex> lk(link->mutex);
    link->queue.push_back(std::move(frame));
  }
  link->cv.notify_one();
  return Status::OK();
}

int TcpNetwork::ConnectOnce(Link* link) {
  std::string host = link->address.host;
  uint16_t port = link->address.port;
  if (!link->address.file.empty()) {
    std::ifstream in(link->address.file);
    std::string line;
    if (!in || !std::getline(in, line)) return -1;  // not rendezvoused yet
    size_t colon = line.rfind(':');
    if (colon == std::string::npos) return -1;
    host = line.substr(0, colon);
    int p = std::atoi(line.c_str() + colon + 1);
    if (p <= 0 || p > 65535) return -1;
    port = static_cast<uint16_t>(p);
  }
  if (host.empty() || port == 0) return -1;

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &res) != 0) {
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd >= 0) {
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

void TcpNetwork::SendLoop(Link* link) {
  int backoff_ms = options_.connect_retry_initial_ms;
  std::unique_lock<std::mutex> lk(link->mutex);
  while (true) {
    link->cv.wait(lk, [&] { return stopping_ || !link->queue.empty(); });
    if (stopping_) break;

    if (link->fd < 0) {
      lk.unlock();
      int fd = ConnectOnce(link);  // address fields are set-once
      lk.lock();
      if (stopping_) {
        if (fd >= 0) ::close(fd);
        break;
      }
      if (fd < 0) {
        // Interruptible backoff, then try again.
        link->cv.wait_for(lk, std::chrono::milliseconds(backoff_ms),
                          [&] { return stopping_.load(); });
        backoff_ms = std::min(backoff_ms * 2, options_.connect_retry_max_ms);
        continue;
      }
      backoff_ms = options_.connect_retry_initial_ms;
      link->fd = fd;
      bool reconnect = link->ever_connected;
      link->ever_connected = true;
      {
        std::lock_guard<std::mutex> slk(stats_mutex_);
        ++tcp_stats_.connects;
        if (reconnect) ++tcp_stats_.reconnects;
      }
      // A fresh session after a live one: whatever the peer missed (or
      // forgot, if it restarted) must be re-established. The runtime
      // turns this into snapshot re-ships and resync requests.
      if (reconnect) NoteReset(link->peer);
    }

    // Send the head frame outside the lock; it stays queued (and
    // HasInFlight stays true via `sending`) until fully on the wire.
    std::string frame = link->queue.front();
    int fd = link->fd;
    link->sending = true;
    lk.unlock();
    bool ok = SendFully(fd, frame.data(), frame.size());
    lk.lock();
    link->sending = false;
    if (ok) {
      link->queue.pop_front();
      std::lock_guard<std::mutex> slk(stats_mutex_);
      stats_.bytes_sent += frame.size() - kFramePrefixBytes;
    } else {
      {
        std::lock_guard<std::mutex> slk(stats_mutex_);
        ++tcp_stats_.send_failures;
      }
      CloseFd(link->fd);
      // The frame stays at the head of the queue: it is re-sent after
      // reconnect. The receiver may see it twice (a partial write
      // followed by the retry) — the first copy arrives truncated,
      // fails to decode, and drops that connection; duplicates of the
      // full copy are absorbed by the version gate.
    }
  }
}

void TcpNetwork::AcceptLoop() {
  while (!stopping_) {
    sockaddr_in peer_addr{};
    socklen_t len = sizeof(peer_addr);
    int fd = ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer_addr),
                      &len);
    if (fd < 0) {
      if (stopping_) break;
      if (errno == EINTR) continue;
      break;  // listening socket is gone
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      std::lock_guard<std::mutex> slk(stats_mutex_);
      ++tcp_stats_.connections_accepted;
    }
    auto conn = std::make_unique<InboundConn>();
    conn->fd = fd;
    InboundConn* raw = conn.get();
    std::lock_guard<std::mutex> lk(inbound_mutex_);
    // Reap finished readers so a long-lived daemon doesn't accumulate
    // one zombie thread per reconnection.
    for (auto it = inbound_.begin(); it != inbound_.end();) {
      if ((*it)->done) {
        if ((*it)->thread.joinable()) (*it)->thread.join();
        CloseFd((*it)->fd);
        it = inbound_.erase(it);
      } else {
        ++it;
      }
    }
    inbound_.push_back(std::move(conn));
    raw->thread = std::thread([this, raw] { ReadLoop(raw); });
  }
}

void TcpNetwork::ReadLoop(InboundConn* conn) {
  while (!stopping_) {
    char prefix[kFramePrefixBytes];
    if (!ReadFully(conn->fd, prefix, sizeof(prefix))) break;
    uint32_t len = 0;
    for (size_t i = 0; i < kFramePrefixBytes; ++i) {
      len |= static_cast<uint32_t>(static_cast<uint8_t>(prefix[i]))
             << (8 * i);
    }
    if (len == 0 || len > options_.max_frame_bytes) {
      // Reject before allocating anything sized by the hostile length.
      std::lock_guard<std::mutex> slk(stats_mutex_);
      ++tcp_stats_.oversized_frames;
      break;
    }
    std::string payload(len, '\0');
    if (!ReadFully(conn->fd, payload.data(), len)) break;
    Result<Envelope> decoded = DecodeEnvelope(payload);
    if (!decoded.ok()) {
      // A frame that does not decode means the stream is corrupt or
      // hostile; there is no way to re-synchronize mid-stream, so drop
      // the connection. Nothing of the frame reached the engine, and
      // the sender's reconnect triggers the resync path.
      WDL_LOG(Warning) << "tcp frame decode failed, dropping connection: "
                       << decoded.status();
      std::lock_guard<std::mutex> slk(stats_mutex_);
      ++tcp_stats_.decode_failures;
      break;
    }
    conn->senders.insert(decoded.value().from);
    {
      std::lock_guard<std::mutex> slk(stats_mutex_);
      ++tcp_stats_.frames_received;
      ++stats_.messages_delivered;
    }
    PushInbox(std::move(decoded).value());
  }
  ::shutdown(conn->fd, SHUT_RDWR);
  // The peers behind a dead inbound connection may have crashed (their
  // next frames are lost until they reconnect): treat it as a link
  // reset so the runtime re-requests their streams.
  for (const std::string& sender : conn->senders) NoteReset(sender);
  conn->done = true;
}

std::vector<Envelope> TcpNetwork::DeliverDue(double /*now*/) {
  std::vector<Envelope> out;
  std::lock_guard<std::mutex> lk(inbox_mutex_);
  out.swap(inbox_);
  return out;
}

bool TcpNetwork::HasInFlight() const {
  {
    std::lock_guard<std::mutex> lk(inbox_mutex_);
    if (!inbox_.empty()) return true;
  }
  std::lock_guard<std::mutex> lk(links_mutex_);
  for (const auto& [peer, link] : links_) {
    std::lock_guard<std::mutex> llk(link->mutex);
    if (!link->queue.empty() || link->sending) return true;
  }
  return false;
}

NetworkStats TcpNetwork::StatsSnapshot() const {
  std::lock_guard<std::mutex> lk(stats_mutex_);
  return stats_;
}

TcpTransportStats TcpNetwork::TcpStatsSnapshot() const {
  std::lock_guard<std::mutex> lk(stats_mutex_);
  return tcp_stats_;
}

std::vector<std::string> TcpNetwork::TakePeerResets() {
  std::vector<std::string> taken;
  {
    std::lock_guard<std::mutex> lk(resets_mutex_);
    taken.swap(resets_);
  }
  // Dedupe, preserving first-seen order.
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (std::string& peer : taken) {
    if (seen.insert(peer).second) out.push_back(std::move(peer));
  }
  return out;
}

}  // namespace wdl
