#ifndef WDL_ENGINE_EVAL_H_
#define WDL_ENGINE_EVAL_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "ast/fact.h"
#include "ast/rule.h"
#include "engine/binding.h"
#include "engine/delegation.h"
#include "storage/catalog.h"

namespace wdl {

/// Newly derived tuples per relation name in the previous fixpoint
/// iteration — the Δ of semi-naive evaluation.
using DeltaMap =
    std::unordered_map<std::string, std::unordered_set<Tuple, TupleHasher>>;

struct EvalOptions {
  /// When false, every atom match scans the full relation; used by the
  /// join ablation (bench_join) to quantify what the indexes buy.
  bool use_indexes = true;
};

/// Per-evaluation counters (observability and bench instrumentation).
struct EvalCounters {
  uint64_t tuples_examined = 0;
  uint64_t bindings_completed = 0;
  uint64_t delegations_emitted = 0;
};

/// Evaluates single rules against a peer's local catalog, left to right,
/// producing head instantiations and delegation splits.
///
/// Routing of results follows the WebdamLog stage semantics:
///  - a completed body with a head located at this peer derives a local
///    fact (`on_local_fact`);
///  - a completed body with a remote head contributes to the derived set
///    shipped to that peer (`on_remote_fact`);
///  - hitting a body atom located at a *remote* peer stops local
///    evaluation and emits the residual rule as a Delegation
///    (`on_delegation`) — the paper's signature feature.
class RuleEvaluator {
 public:
  struct Sinks {
    std::function<void(const Fact&)> on_local_fact;
    std::function<void(const Fact&)> on_remote_fact;
    std::function<void(const Delegation&)> on_delegation;
  };

  RuleEvaluator(Catalog* catalog, std::string self_peer, EvalOptions options)
      : catalog_(catalog),
        self_peer_(std::move(self_peer)),
        options_(options) {}

  /// Evaluates `rule`. When `delta` is non-null and `delta_pos >= 0`,
  /// the positive body atom at index `delta_pos` matches only tuples in
  /// the Δ-set of its resolved relation (semi-naive restriction); all
  /// other atoms match full relations. Pass delta == nullptr for a full
  /// (naive / first-iteration) evaluation.
  void Evaluate(const Rule& rule, const DeltaMap* delta, int delta_pos,
                const Sinks& sinks);

  const EvalCounters& counters() const { return counters_; }
  void ResetCounters() { counters_ = EvalCounters(); }

 private:
  void MatchFrom(const Rule& rule, size_t atom_index, Binding* binding,
                 const DeltaMap* delta, int delta_pos, const Sinks& sinks);
  void EmitHead(const Rule& rule, const Binding& binding,
                const Sinks& sinks);
  void EmitDelegation(const Rule& rule, size_t split_index,
                      const std::string& target, const Binding& binding,
                      const Sinks& sinks);

  Catalog* catalog_;
  std::string self_peer_;
  EvalOptions options_;
  EvalCounters counters_;
};

/// Resolves a relation/peer term under `binding`. Returns nullptr when
/// the term is a variable bound to a non-string value (such a binding
/// cannot name a relation or peer, so the branch is dead) and points to
/// the resolved name otherwise. `storage` provides space when the name
/// must be materialized from the binding.
const std::string* ResolveSym(const SymTerm& sym, const Binding& binding,
                              std::string* storage);

/// Applies `binding` to every term of `atom`; bound variables become
/// constants (string bindings in relation/peer position become names),
/// unbound variables stay. Returns false when a relation/peer variable
/// is bound to a non-string value.
bool SubstituteAtom(const Atom& atom, const Binding& binding, Atom* out);

}  // namespace wdl

#endif  // WDL_ENGINE_EVAL_H_
