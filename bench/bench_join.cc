// Experiment A4 — join strategy ablation (DESIGN.md §3).
//
// The evaluator picks, per body atom, the first argument position with
// a constant or bound variable and probes a lazily built hash index;
// with indexes disabled it scans. This bench measures both paths on a
// two-atom join of growing size, plus the sensitivity of left-to-right
// evaluation to body-atom order (the paper: "the order matters").
//
// Expected shape: indexed join ~O(output), scan join ~O(n^2); the
// selective-first body order beats the unselective-first order.

#include <benchmark/benchmark.h>

#include "engine/eval.h"
#include "parser/parser.h"

namespace wdl {
namespace {

Value I(int64_t v) { return Value::Int(v); }

// edge(x,y) x edge(y,z) over a chain of length n.
void JoinBench(benchmark::State& state, bool use_indexes) {
  int n = static_cast<int>(state.range(0));
  Catalog catalog("p");
  for (int64_t i = 0; i < n; ++i) {
    (void)catalog.InsertFact(Fact("edge", "p", {I(i), I(i + 1)}));
  }
  Rule rule = *ParseRule("h@p($x, $z) :- edge@p($x, $y), edge@p($y, $z)");
  RuleEvaluator evaluator(&catalog, "p", EvalOptions{use_indexes});

  for (auto _ : state) {
    size_t results = 0;
    RuleEvaluator::Sinks sinks;
    sinks.on_local_fact = [&](const Fact&) { ++results; };
    evaluator.Evaluate(rule, nullptr, -1, sinks);
    benchmark::DoNotOptimize(results);
    state.counters["results"] = static_cast<double>(results);
  }
  const EvalCounters& c = evaluator.counters();
  state.counters["tuples_examined"] = benchmark::Counter(
      static_cast<double>(c.tuples_examined),
      benchmark::Counter::kAvgIterations);
  state.counters["plans_compiled"] = static_cast<double>(c.plans_compiled);
  state.counters["plan_cache_hits"] =
      static_cast<double>(c.plan_cache_hits);
  state.counters["slot_bindings"] = benchmark::Counter(
      static_cast<double>(c.slot_bindings),
      benchmark::Counter::kAvgIterations);
  state.counters["index_lookups"] = benchmark::Counter(
      static_cast<double>(c.index_lookups),
      benchmark::Counter::kAvgIterations);
  state.counters["full_scans"] = benchmark::Counter(
      static_cast<double>(c.full_scans),
      benchmark::Counter::kAvgIterations);
}

void BM_Join_Indexed(benchmark::State& state) { JoinBench(state, true); }
void BM_Join_Scan(benchmark::State& state) { JoinBench(state, false); }
BENCHMARK(BM_Join_Indexed)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_Join_Scan)->Arg(100)->Arg(1000)->Arg(10000);

// Left-to-right order sensitivity: selective atom first vs last.
// sel(x) has 1 tuple; big(x,y) has n.
void OrderBench(benchmark::State& state, bool selective_first) {
  int n = static_cast<int>(state.range(0));
  Catalog catalog("p");
  (void)catalog.InsertFact(Fact("sel", "p", {I(n / 2)}));
  for (int64_t i = 0; i < n; ++i) {
    (void)catalog.InsertFact(Fact("big", "p", {I(i), I(i * 7)}));
  }
  Rule rule = selective_first
                  ? *ParseRule("h@p($y) :- sel@p($x), big@p($x, $y)")
                  : *ParseRule("h@p($y) :- big@p($x, $y), sel@p($x)");
  RuleEvaluator evaluator(&catalog, "p", EvalOptions{true});

  for (auto _ : state) {
    size_t results = 0;
    RuleEvaluator::Sinks sinks;
    sinks.on_local_fact = [&](const Fact&) { ++results; };
    evaluator.Evaluate(rule, nullptr, -1, sinks);
    benchmark::DoNotOptimize(results);
  }
  state.counters["tuples_examined"] = benchmark::Counter(
      static_cast<double>(evaluator.counters().tuples_examined),
      benchmark::Counter::kAvgIterations);
}

void BM_Order_SelectiveFirst(benchmark::State& state) {
  OrderBench(state, true);
}
void BM_Order_SelectiveLast(benchmark::State& state) {
  OrderBench(state, false);
}
BENCHMARK(BM_Order_SelectiveFirst)->Arg(1000)->Arg(10000);
BENCHMARK(BM_Order_SelectiveLast)->Arg(1000)->Arg(10000);

// Point lookup vs scan on a single relation (storage-level).
void BM_Storage_IndexedLookup(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Relation rel(RelationDecl{
      "r", "p", RelationKind::kExtensional,
      {{"k", ValueKind::kInt}, {"v", ValueKind::kInt}}});
  for (int64_t i = 0; i < n; ++i) {
    (void)rel.Insert({I(i), I(i * 3)});
  }
  int64_t probe = 0;
  for (auto _ : state) {
    size_t hits = 0;
    rel.LookupEqual(0, I(probe++ % n), [&](const Tuple&) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
}
void BM_Storage_ScanLookup(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Relation rel(RelationDecl{
      "r", "p", RelationKind::kExtensional,
      {{"k", ValueKind::kInt}, {"v", ValueKind::kInt}}});
  for (int64_t i = 0; i < n; ++i) {
    (void)rel.Insert({I(i), I(i * 3)});
  }
  int64_t probe = 0;
  for (auto _ : state) {
    size_t hits = 0;
    rel.ScanEqual(0, I(probe++ % n), [&](const Tuple&) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_Storage_IndexedLookup)->Arg(1000)->Arg(100000);
BENCHMARK(BM_Storage_ScanLookup)->Arg(1000)->Arg(100000);

}  // namespace
}  // namespace wdl

BENCHMARK_MAIN();
