#include "support/fixture.h"

namespace wdl {
namespace test {

std::string GlobalStateFingerprint(const System& system) {
  std::string fp;
  for (const std::string& name : system.PeerNames()) {
    const Peer* peer = system.GetPeer(name);
    fp += "== " + name + "\n";
    for (const std::string& rel : peer->engine().catalog().RelationNames()) {
      fp += peer->RenderRelation(rel);
    }
    fp += peer->engine().ProgramListing();
  }
  return fp;
}

Peer* MultiPeerFixture::AddPeer(const std::string& name,
                                PeerOptions options) {
  return system_.CreatePeer(name, std::move(options));
}

std::vector<Peer*> MultiPeerFixture::AddTrustedPeers(
    const std::vector<std::string>& names) {
  std::vector<Peer*> peers;
  peers.reserve(names.size());
  for (const std::string& name : names) {
    peers.push_back(AddPeer(name));
  }
  for (Peer* a : peers) {
    for (const std::string& other : names) {
      if (other != a->name()) a->gate().TrustPeer(other);
    }
  }
  return peers;
}

}  // namespace test
}  // namespace wdl
