#ifndef WDL_BASE_SYMBOL_H_
#define WDL_BASE_SYMBOL_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

#include "base/hash.h"

namespace wdl {

/// An interned identifier: relation names, peer names, and other
/// program-level strings mapped to a dense uint32 id with a cached
/// content hash. Interning happens at program-load/compile time; the
/// evaluator's inner loops then compare and hash ids instead of
/// re-scanning string bytes (see DESIGN.md §4).
///
/// Ids are process-local and assigned in intern order; they never
/// appear on the wire or in provenance hashes — `hash()` returns the
/// stable content hash (HashString) for that.
///
/// The table is process-wide, append-only, and thread-safe: it is the
/// one structure every peer shares, so parallel stage evaluation
/// (DESIGN.md §8) hits it from many threads at once. Intern/Find go
/// through a shared_mutex (exclusive only on a first-time intern);
/// id -> entry resolution (str()/hash(), the evaluator's inner-loop
/// path) is lock-free over chunked storage whose entries never move.
///
/// Append-only means every distinct interned name costs one permanent
/// small entry. Program identifiers are finite; the one unbounded
/// producer is ad-hoc query scratch relations ("__query_<n>"), which
/// leak one entry per query until scratch names are recycled (tracked
/// in ROADMAP). Data strings never intern — runtime name resolution
/// goes through the non-inserting Find().
class Symbol {
 public:
  static constexpr uint32_t kNone = 0xFFFFFFFFu;

  /// Invalid symbol (valid() == false).
  Symbol() = default;

  /// Interns `text`, creating a table entry when absent.
  static Symbol Intern(std::string_view text);

  /// Looks `text` up without inserting; invalid Symbol when it was
  /// never interned. Used when a runtime string (e.g. a data value in
  /// relation position) may or may not name anything known — absence
  /// means no local relation or peer can match, and the table must not
  /// grow with arbitrary data strings.
  static Symbol Find(std::string_view text);

  /// Number of interned symbols (observability for tests).
  static size_t TableSizeForTesting();

  uint32_t id() const { return id_; }
  bool valid() const { return id_ != kNone; }

  /// The interned text; empty string for the invalid symbol. The
  /// reference is stable for the lifetime of the process.
  const std::string& str() const;

  /// Stable content hash (== HashString(str())), cached at intern time.
  uint64_t hash() const;

  bool operator==(Symbol o) const { return id_ == o.id_; }
  bool operator!=(Symbol o) const { return id_ != o.id_; }
  bool operator<(Symbol o) const { return id_ < o.id_; }

 private:
  explicit Symbol(uint32_t id) : id_(id) {}

  uint32_t id_ = kNone;
};

/// Hashes by id (dense, process-local) — for unordered containers whose
/// lifetime is in-process only, like the evaluator's DeltaMap.
struct SymbolHasher {
  size_t operator()(Symbol s) const {
    return static_cast<size_t>(
        (uint64_t{s.id()} + 1) * 0x9e3779b97f4a7c15ULL >> 32);
  }
};

inline std::ostream& operator<<(std::ostream& os, Symbol s) {
  return os << s.str();
}

}  // namespace wdl

#endif  // WDL_BASE_SYMBOL_H_
