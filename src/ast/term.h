#ifndef WDL_AST_TERM_H_
#define WDL_AST_TERM_H_

#include <ostream>
#include <string>
#include <utility>

#include "ast/value.h"

namespace wdl {

/// A term in an argument position of an atom: either a constant Value or
/// a variable. Variables are stored without the leading '$' of the
/// surface syntax ("$x" parses to Variable("x")).
class Term {
 public:
  Term() : is_variable_(false), value_(Value::Int(0)) {}

  static Term Constant(Value v) {
    Term t;
    t.is_variable_ = false;
    t.value_ = std::move(v);
    return t;
  }
  static Term Variable(std::string name) {
    Term t;
    t.is_variable_ = true;
    t.var_ = std::move(name);
    return t;
  }

  bool is_variable() const { return is_variable_; }
  bool is_constant() const { return !is_variable_; }

  const Value& value() const { return value_; }
  const std::string& var() const { return var_; }

  /// "$x" for variables; Value::ToString() for constants.
  std::string ToString() const {
    return is_variable_ ? "$" + var_ : value_.ToString();
  }

  bool operator==(const Term& o) const {
    if (is_variable_ != o.is_variable_) return false;
    return is_variable_ ? var_ == o.var_ : value_ == o.value_;
  }
  bool operator!=(const Term& o) const { return !(*this == o); }

  uint64_t Hash() const {
    return is_variable_ ? HashCombine(1, HashString(var_))
                        : HashCombine(2, value_.Hash());
  }

 private:
  bool is_variable_;
  Value value_;      // valid iff !is_variable_
  std::string var_;  // valid iff is_variable_
};

/// A term in relation or peer position: a concrete name (identifier,
/// printed unquoted) or a variable. The possibility of variables here —
/// `$R@$P(...)` — is one of the paper's two headline novelties.
class SymTerm {
 public:
  SymTerm() : is_variable_(false) {}

  static SymTerm Name(std::string name) {
    SymTerm t;
    t.is_variable_ = false;
    t.text_ = std::move(name);
    return t;
  }
  static SymTerm Variable(std::string name) {
    SymTerm t;
    t.is_variable_ = true;
    t.text_ = std::move(name);
    return t;
  }

  bool is_variable() const { return is_variable_; }
  bool is_name() const { return !is_variable_; }

  /// The concrete name (requires is_name()).
  const std::string& name() const { return text_; }
  /// The variable name without '$' (requires is_variable()).
  const std::string& var() const { return text_; }

  std::string ToString() const {
    return is_variable_ ? "$" + text_ : text_;
  }

  bool operator==(const SymTerm& o) const {
    return is_variable_ == o.is_variable_ && text_ == o.text_;
  }
  bool operator!=(const SymTerm& o) const { return !(*this == o); }

  uint64_t Hash() const {
    return HashCombine(is_variable_ ? 3 : 4, HashString(text_));
  }

 private:
  bool is_variable_;
  std::string text_;
};

inline std::ostream& operator<<(std::ostream& os, const Term& t) {
  return os << t.ToString();
}
inline std::ostream& operator<<(std::ostream& os, const SymTerm& t) {
  return os << t.ToString();
}

}  // namespace wdl

#endif  // WDL_AST_TERM_H_
