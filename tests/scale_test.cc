// Million-peer runtime invariants (DESIGN.md §9): idle peers are
// engine-less slots under a committed byte ceiling, engines materialize
// exactly on first fact / first rule / first inbound work frame, the
// process-global plan cache compiles each distinct rule once, and the
// lazy runtime is fingerprint-equivalent to the eager oracle under
// social churn (follow/unfollow storms, hub fan-out, partition + heal).

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "engine/plan_cache.h"
#include "net/message.h"
#include "runtime/fingerprint.h"
#include "runtime/system.h"
#include "support/builders.h"
#include "workload/social_graph.h"

namespace wdl {
namespace {

using test::I;
using test::R;

// The committed ceiling from ISSUE/ROADMAP: one idle peer may cost at
// most 1 KB of fixed bookkeeping. (Measured cost is ~200 bytes; the
// headroom keeps the test stable across libstdc++ container layouts.)
constexpr size_t kIdlePeerByteCeiling = 1024;

// --- Idle footprint ---------------------------------------------------

TEST(ScaleTest, TenThousandIdlePeersStayEngineFree) {
  System system;  // lazy_peer_state defaults on (production)
  const uint32_t n = 10000;
  for (uint32_t i = 0; i < n; ++i) {
    system.CreatePeer(SocialPeerName(i), SocialPeerOptions());
  }
  EXPECT_EQ(system.PeerCount(), n);
  EXPECT_EQ(system.MaterializedPeerCount(), 0u);

  size_t total = 0;
  size_t worst = 0;
  for (uint32_t i = 0; i < n; ++i) {
    size_t bytes = system.ApproxPeerBytes(SocialPeerName(i));
    ASSERT_GT(bytes, 0u);
    total += bytes;
    worst = std::max(worst, bytes);
  }
  EXPECT_LE(worst, kIdlePeerByteCeiling);
  EXPECT_LE(total / n, kIdlePeerByteCeiling);

  // Driving rounds over an all-idle system does no work and
  // materializes nothing.
  (void)system.RunRound();
  EXPECT_EQ(system.MaterializedPeerCount(), 0u);
  EXPECT_TRUE(system.IsQuiescent());
}

TEST(ScaleTest, EagerOracleMaterializesAtCreatePeer) {
  SystemOptions options;
  options.lazy_peer_state = false;
  System system(options);
  for (uint32_t i = 0; i < 64; ++i) {
    system.CreatePeer(SocialPeerName(i), SocialPeerOptions());
  }
  EXPECT_EQ(system.MaterializedPeerCount(), 64u);
}

// --- Materialization triggers ----------------------------------------

TEST(ScaleTest, FirstRuleMaterializes) {
  System system;
  Peer* peer = system.CreatePeer("alice", SocialPeerOptions());
  EXPECT_FALSE(peer->has_engine());
  ASSERT_TRUE(peer->LoadProgramText(SocialProgramText("alice")).ok());
  EXPECT_TRUE(peer->has_engine());
  EXPECT_EQ(system.MaterializedPeerCount(), 1u);
}

TEST(ScaleTest, FirstFactMaterializes) {
  PeerOptions options = SocialPeerOptions();
  options.lazy_engine = true;
  Peer peer("alice", options);
  EXPECT_FALSE(peer.has_engine());
  // Even a rejected insert forces the engine: the fact path is engine
  // work by definition.
  (void)peer.Insert(Fact("scratch", "alice", {I(1)}));
  EXPECT_TRUE(peer.has_engine());
}

TEST(ScaleTest, HelloFrameDoesNotMaterialize) {
  PeerOptions options = SocialPeerOptions();
  options.lazy_engine = true;
  Peer peer("alice", options);
  Envelope hello;
  hello.from = "bob";
  hello.to = "alice";
  hello.message.type = MessageType::kHello;
  hello.message.text = "bob";
  peer.HandleEnvelope(hello);
  // Discovery is control-plane traffic; only engine work allocates.
  EXPECT_FALSE(peer.has_engine());
  EXPECT_EQ(peer.known_peers().count("bob"), 1u);
}

TEST(ScaleTest, InboundDelegationMaterializesTheTarget) {
  System system;
  Peer* hub = system.CreatePeer(SocialPeerName(0), SocialPeerOptions());
  SocialDriver driver(&system);
  ASSERT_TRUE(driver.EnsurePeer(1).ok());
  // u00000001 follows the (still idle) hub: its stage ships a residual
  // rule to the hub, whose engine must materialize to install it.
  Peer* follower = system.GetPeer(SocialPeerName(1));
  ASSERT_TRUE(
      follower
          ->Insert(Fact("follows", SocialPeerName(1),
                        {Value::String(SocialPeerName(0))}))
          .ok());
  EXPECT_FALSE(hub->has_engine());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  EXPECT_TRUE(hub->has_engine());
  EXPECT_EQ(hub->engine().rules().size(), 1u);  // the delegated residual
}

// --- Shared plan cache ------------------------------------------------

TEST(ScaleTest, AlphaVariantRulesShareOneCompiledPlan) {
  SharedPlanCache& cache = SharedPlanCache::Instance();
  cache.ResetStatsForTesting();
  std::shared_ptr<const RulePlan> p1 =
      cache.Acquire(R("h@p($x, $y) :- e@p($x, $y), f@p($y)"));
  std::shared_ptr<const RulePlan> p2 =
      cache.Acquire(R("h@p($a, $b) :- e@p($a, $b), f@p($b)"));
  EXPECT_EQ(p1.get(), p2.get());
  EXPECT_EQ(cache.stats().compiles, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);

  // Structurally different rules do not share...
  std::shared_ptr<const RulePlan> p3 =
      cache.Acquire(R("h@p($x, $y) :- e@p($y, $x), f@p($y)"));
  EXPECT_NE(p1.get(), p3.get());
  // ...and neither do non-bijective variable patterns (repeated var vs
  // distinct vars must stay distinct plans).
  std::shared_ptr<const RulePlan> p4 = cache.Acquire(R("h@p($x, $x) :- e@p($x, $x), f@p($x)"));
  EXPECT_NE(p1.get(), p4.get());
  EXPECT_EQ(cache.stats().compiles, 3u);
}

TEST(ScaleTest, PlanLifetimeIsBoundedByItsHolders) {
  SharedPlanCache& cache = SharedPlanCache::Instance();
  cache.ResetStatsForTesting();
  Rule rule = R("h@q($x) :- e@q($x), g@q($x)");
  std::shared_ptr<const RulePlan> held = cache.Acquire(rule);
  EXPECT_EQ(cache.Acquire(rule).get(), held.get());
  EXPECT_EQ(cache.stats().hits, 1u);
  held.reset();
  // Last holder gone: the weak entry expired and the next acquire
  // compiles afresh (plans die with the engines that use them — the
  // cache never pins memory).
  (void)cache.Acquire(rule);
  EXPECT_EQ(cache.stats().compiles, 2u);
}

TEST(ScaleTest, IdenticalRuleSetsAcrossSystemsCompileOnce) {
  SharedPlanCache& cache = SharedPlanCache::Instance();
  cache.ResetStatsForTesting();
  // Two whole systems (production lazy + eager oracle) run the same
  // social moment: u1 follows the hub u0, the hub posts. Every rule —
  // the feed rule at u1 and the delegated residual at u0 — exists in
  // both systems, but each distinct rule compiles exactly once
  // process-wide; the second system's evaluators get cache hits.
  auto run = [](bool lazy) {
    SystemOptions options;
    options.lazy_peer_state = lazy;
    auto system = std::make_unique<System>(options);
    SocialDriver driver(system.get());
    EXPECT_TRUE(driver.Follow(1, 0).ok());
    EXPECT_TRUE(driver.Post(0, 7).ok());
    EXPECT_TRUE(system->RunUntilQuiescent().ok());
    return system;
  };
  std::unique_ptr<System> production = run(/*lazy=*/true);
  std::unique_ptr<System> oracle = run(/*lazy=*/false);

  EXPECT_EQ(GlobalStateFingerprint(*production),
            GlobalStateFingerprint(*oracle));
  SharedPlanCache::Stats stats = cache.stats();
  EXPECT_GT(stats.compiles, 0u);
  // One hit per compile: each distinct rule was compiled by the first
  // system and reused by the second.
  EXPECT_EQ(stats.hits, stats.compiles);
}

// --- Lazy vs eager equivalence under churn ---------------------------

TEST(ScaleTest, SocialChurnIsFingerprintEquivalentToEagerOracle) {
  const uint32_t kPeers = 160;
  const uint32_t kActors = 40;
  std::vector<SocialOp> script =
      MakeChurnScript(kPeers, kActors, 220, /*zipf_exponent=*/1.0,
                      /*seed=*/7);
  ASSERT_FALSE(script.empty());

  auto run = [&](bool lazy) {
    SystemOptions options;
    options.lazy_peer_state = lazy;
    options.heartbeat_interval_rounds = 4;
    auto system = std::make_unique<System>(options);
    // The world has kPeers registered users; only the actors (and the
    // peers they touch) ever materialize.
    for (uint32_t i = 0; i < kPeers; ++i) {
      system->CreatePeer(SocialPeerName(i), SocialPeerOptions());
    }
    SocialDriver driver(system.get());
    size_t applied = 0;
    for (const SocialOp& op : script) {
      EXPECT_TRUE(driver.Apply(op).ok());
      // Let deltas interleave with churn (every 8 ops), like a live
      // system; the tail settles below.
      if (++applied % 8 == 0) (void)system->RunRound();
    }
    EXPECT_TRUE(system->RunUntilQuiescent(4000).ok());

    // Regional partition: cut the three hottest hubs' neighborhoods
    // off, post through a hub into the void, then heal; heartbeats
    // expose the gaps and resyncs repair the followers.
    for (uint32_t i = 10; i < 20; ++i) {
      system->network().SetIsolated(SocialPeerName(i), true);
    }
    EXPECT_TRUE(driver.Post(0, 9001).ok());
    EXPECT_TRUE(driver.Post(1, 9002).ok());
    EXPECT_TRUE(system->RunUntilQuiescent(4000).ok());
    for (uint32_t i = 10; i < 20; ++i) {
      system->network().SetIsolated(SocialPeerName(i), false);
    }
    for (int round = 0; round < 20; ++round) (void)system->RunRound();
    EXPECT_TRUE(system->RunUntilQuiescent(4000).ok());
    return system;
  };

  auto production = run(/*lazy=*/true);
  auto oracle = run(/*lazy=*/false);

  // The production system really was lazy: bystander peers never
  // materialized. The oracle really was eager: everything did.
  EXPECT_LT(production->MaterializedPeerCount(), production->PeerCount());
  EXPECT_EQ(oracle->MaterializedPeerCount(), oracle->PeerCount());

  EXPECT_EQ(GlobalStateFingerprint(*production),
            GlobalStateFingerprint(*oracle));
}

}  // namespace
}  // namespace wdl
