#ifndef WDL_NET_TCP_NETWORK_H_
#define WDL_NET_TCP_NETWORK_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "base/result.h"
#include "net/network.h"

namespace wdl {

struct TcpNetworkOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read the actual one with port() after
  /// Start() (the wdl_peerd rendezvous files are built on this).
  uint16_t listen_port = 0;
  /// Frames longer than this are rejected before any allocation and
  /// the connection is dropped — a hostile length prefix must not
  /// drive a reserve.
  size_t max_frame_bytes = 64u << 20;
  int connect_retry_initial_ms = 25;
  int connect_retry_max_ms = 1000;
};

/// Transport-level counters beyond the protocol-level NetworkStats.
struct TcpTransportStats {
  uint64_t frames_received = 0;
  uint64_t decode_failures = 0;   // each one dropped its connection
  uint64_t oversized_frames = 0;  // each one dropped its connection
  uint64_t connections_accepted = 0;
  uint64_t connects = 0;    // successful outbound connects
  uint64_t reconnects = 0;  // connects after a previously live session
  uint64_t send_failures = 0;
};

/// Real TCP transport between peers: one listening endpoint per
/// process, one outbound connection per remote peer, thread-per-
/// connection on both sides.
///
/// Framing is a u32 little-endian length prefix followed by one
/// envelope in the binary wire format (net/wire.h) — the codec the
/// simulator has exercised since the seed. Decoding happens entirely
/// inside the reader thread into a local Envelope; a frame that fails
/// to decode (truncated, corrupt, hostile counts) NEVER reaches the
/// engine: the reader drops the connection instead of trying to
/// re-synchronize the byte stream, and the reconnect machinery heals
/// the lost state through the kResyncRequest path.
///
/// Submit() never blocks on the network: frames queue per link and a
/// sender thread per remote peer connects (with exponential backoff),
/// sends, and reconnects as needed. A successful reconnect after a
/// live session — and a closed inbound connection — surface the
/// affected peer through TakePeerResets(), which the runtime turns
/// into stream resyncs (Engine::NoteLinkReset).
///
/// `now` timestamps are ignored: delivery is as fast as the wire.
/// HasInFlight()/IsQuiescent() are *local* judgments (queued or
/// undelivered frames at this endpoint); a remote peer may still be
/// computing, so distributed convergence is detected by idle time, not
/// by the simulator's global quiescence.
class TcpNetwork : public Network {
 public:
  explicit TcpNetwork(TcpNetworkOptions options = {});
  ~TcpNetwork() override;

  TcpNetwork(const TcpNetwork&) = delete;
  TcpNetwork& operator=(const TcpNetwork&) = delete;

  /// Binds, listens, and starts the acceptor. Must be called (once)
  /// before Submit.
  Status Start();
  /// Stops every thread and closes every socket; idempotent. Queued
  /// but unsent frames are discarded (the peers' resync machinery owns
  /// loss recovery, not the transport).
  void Shutdown();

  uint16_t port() const { return port_; }

  /// Peers hosted by this process: envelopes addressed to them loop
  /// back through an encode/decode round trip (same codec coverage and
  /// byte accounting as the simulator) without touching a socket.
  void AddLocalPeer(const std::string& peer);
  void SetPeerAddress(const std::string& peer, std::string host,
                      uint16_t port);
  /// The address is re-read from `path` (first line "host:port") on
  /// every connect attempt, so a cluster can rendezvous through the
  /// filesystem before every process is up — and keeps working when a
  /// restarted peer comes back on a different port.
  void SetPeerAddressFile(const std::string& peer, std::string path);

  Status Submit(Envelope envelope, double now) override;
  std::vector<Envelope> DeliverDue(double now) override;
  bool HasInFlight() const override;
  NetworkStats StatsSnapshot() const override;
  std::vector<std::string> TakePeerResets() override;

  TcpTransportStats TcpStatsSnapshot() const;

 private:
  struct LinkAddress {
    std::string host;
    uint16_t port = 0;
    std::string file;  // non-empty: resolve host:port from this file
  };

  /// One outbound connection (queue + sender thread) per remote peer.
  struct Link {
    std::string peer;
    LinkAddress address;
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::string> queue;  // length-prefixed frames
    bool sending = false;           // a frame is mid-send
    int fd = -1;
    bool ever_connected = false;
    std::thread thread;
  };

  struct InboundConn {
    int fd = -1;
    std::thread thread;
    std::set<std::string> senders;  // peer names seen on this conn
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ReadLoop(InboundConn* conn);
  void SendLoop(Link* link);
  /// One connect attempt against the link's (possibly file-resolved)
  /// address; returns a connected fd or -1.
  int ConnectOnce(Link* link);
  Link* GetOrCreateLink(const std::string& peer);
  void NoteReset(const std::string& peer);
  void PushInbox(Envelope e);

  TcpNetworkOptions options_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;

  mutable std::mutex links_mutex_;
  std::map<std::string, LinkAddress> addresses_;
  std::map<std::string, std::unique_ptr<Link>> links_;
  std::set<std::string> local_peers_;

  std::mutex inbound_mutex_;
  std::vector<std::unique_ptr<InboundConn>> inbound_;

  mutable std::mutex inbox_mutex_;
  std::vector<Envelope> inbox_;

  std::mutex resets_mutex_;
  std::vector<std::string> resets_;

  mutable std::mutex stats_mutex_;
  NetworkStats stats_;
  TcpTransportStats tcp_stats_;
};

}  // namespace wdl

#endif  // WDL_NET_TCP_NETWORK_H_
