#include "ast/value.h"

#include <gtest/gtest.h>

#include <set>

namespace wdl {
namespace {

TEST(ValueTest, IntRoundTrip) {
  Value v = Value::Int(42);
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.kind(), ValueKind::kInt);
  EXPECT_EQ(v.AsInt(), 42);
  EXPECT_EQ(v.ToString(), "42");
}

TEST(ValueTest, NegativeInt) {
  Value v = Value::Int(-7);
  EXPECT_EQ(v.AsInt(), -7);
  EXPECT_EQ(v.ToString(), "-7");
}

TEST(ValueTest, DoubleRoundTrip) {
  Value v = Value::Double(3.5);
  EXPECT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.AsDouble(), 3.5);
  EXPECT_EQ(v.ToString(), "3.5");
}

TEST(ValueTest, WholeDoublePrintsWithFraction) {
  // A whole-valued double must not print as an int: it would change
  // type on a parse round-trip.
  EXPECT_EQ(Value::Double(2.0).ToString(), "2.0");
}

TEST(ValueTest, StringEscaping) {
  Value v = Value::String("a\"b\\c\nd");
  EXPECT_EQ(v.ToString(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(ValueTest, BlobHexRendering) {
  Value v = Value::MakeBlob(std::string("\xde\xad\xbe\xef", 4));
  EXPECT_TRUE(v.is_blob());
  EXPECT_EQ(v.ToString(), "0xdeadbeef");
}

TEST(ValueTest, EqualityIsKindAndContent) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_NE(Value::Int(1), Value::Int(2));
  EXPECT_NE(Value::Int(1), Value::Double(1.0));
  EXPECT_NE(Value::String("1"), Value::Int(1));
  EXPECT_EQ(Value::String("x"), Value::String("x"));
}

TEST(ValueTest, HashAgreesWithEquality) {
  EXPECT_EQ(Value::Int(5).Hash(), Value::Int(5).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
  EXPECT_NE(Value::Int(5).Hash(), Value::String("5").Hash());
  // -0.0 == 0.0 for doubles, so hashes must match.
  EXPECT_EQ(Value::Double(0.0).Hash(), Value::Double(-0.0).Hash());
}

TEST(ValueTest, TotalOrderSortsByKindThenContent) {
  std::set<Value> values{Value::String("b"), Value::Int(2), Value::Int(1),
                         Value::Double(0.5), Value::String("a")};
  std::vector<Value> sorted(values.begin(), values.end());
  ASSERT_EQ(sorted.size(), 5u);
  EXPECT_EQ(sorted[0], Value::Int(1));
  EXPECT_EQ(sorted[1], Value::Int(2));
  EXPECT_EQ(sorted[2], Value::Double(0.5));
  EXPECT_EQ(sorted[3], Value::String("a"));
  EXPECT_EQ(sorted[4], Value::String("b"));
}

TEST(ValueTest, DefaultIsIntZero) {
  Value v;
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.AsInt(), 0);
}

TEST(ValueTest, HashIsMemoizedAndCopiesWithTheValue) {
  Value s = Value::String("payload");
  uint64_t h = s.Hash();
  EXPECT_NE(h, 0u);  // 0 is the not-yet-computed sentinel
  Value copy = s;    // copies the memoized hash
  EXPECT_EQ(copy.Hash(), h);
  Value assigned;
  assigned = s;
  EXPECT_EQ(assigned.Hash(), h);
  // Equal content built independently hashes equally (the cache is a
  // pure function of content, so wire checksums stay stable).
  EXPECT_EQ(Value::String("payload").Hash(), h);
  EXPECT_EQ(Value::MakeBlob("bytes").Hash(), Value::MakeBlob("bytes").Hash());
  EXPECT_NE(Value::String("a").Hash(), Value::String("b").Hash());
  // -0.0 and 0.0 are equal and must hash equally.
  EXPECT_EQ(Value::Double(0.0), Value::Double(-0.0));
  EXPECT_EQ(Value::Double(0.0).Hash(), Value::Double(-0.0).Hash());
}

TEST(ValueTest, ForcedHashStillDiscriminatesByContent) {
  Value a = Value::WithHashForTesting(Value::String("a"), 99);
  Value b = Value::WithHashForTesting(Value::String("b"), 99);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(a == Value::WithHashForTesting(Value::String("a"), 99));
}

}  // namespace
}  // namespace wdl
