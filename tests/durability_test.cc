// Durability suite (ISSUE PR10, DESIGN.md §11).
//
// The contract under test: a durable peer that dies at ANY point and
// restarts from its data dir converges to exactly the state of a twin
// that never crashed — and a peer that shut down cleanly recovers
// without requesting a single resync or applying a single inbound
// snapshot (the log covered everything). Crashes are simulated by
// destroying the System mid-script (in-flight envelopes are lost, like
// a real process kill) and, for torn writes, by truncating the WAL at
// every byte offset of its final record.

#include <unistd.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "durability/durability.h"
#include "durability/snapshot.h"
#include "durability/wal.h"
#include "runtime/fingerprint.h"
#include "runtime/system.h"
#include "support/builders.h"

namespace wdl {
namespace {

using test::I;

std::string MakeTempRoot() {
  std::string tmpl = ::testing::TempDir() + "/wdl_durability_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr);
  return tmpl;
}

// --- WAL unit tests ---------------------------------------------------

TEST(WalTest, AppendAndReadBack) {
  std::string path = MakeTempRoot() + "/wal.log";
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append("alpha").ok());
    ASSERT_TRUE((*writer)->Append("").ok());  // empty payloads are legal
    ASSERT_TRUE((*writer)->Append(std::string(5000, 'x')).ok());
    ASSERT_TRUE((*writer)->Sync().ok());
  }
  Result<WalReadResult> read = ReadWalFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->torn_tail);
  ASSERT_EQ(read->payloads.size(), 3u);
  EXPECT_EQ(read->payloads[0], "alpha");
  EXPECT_EQ(read->payloads[1], "");
  EXPECT_EQ(read->payloads[2], std::string(5000, 'x'));
}

TEST(WalTest, MissingFileIsEmptyLog) {
  Result<WalReadResult> read =
      ReadWalFile(MakeTempRoot() + "/never-created.log");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->payloads.empty());
  EXPECT_FALSE(read->torn_tail);
}

TEST(WalTest, CorruptRecordEndsTheReadablePrefix) {
  std::string path = MakeTempRoot() + "/wal.log";
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append("first").ok());
    ASSERT_TRUE((*writer)->Append("second").ok());
    ASSERT_TRUE((*writer)->Append("third").ok());
  }
  Result<std::string> bytes = ReadEntireFile(path);
  ASSERT_TRUE(bytes.ok());
  // Flip one payload byte of the middle record: its CRC fails, so only
  // the first record survives — a mid-file corruption must not let
  // later records replay against a state missing the damaged one.
  std::string damaged = *bytes;
  damaged[8 + 5 + 8 + 2] ^= 0x40;
  ASSERT_TRUE(AtomicWriteFile(path, damaged).ok());
  Result<WalReadResult> read = ReadWalFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->torn_tail);
  ASSERT_EQ(read->payloads.size(), 1u);
  EXPECT_EQ(read->payloads[0], "first");
}

// Truncate the log at every byte offset inside its final record: every
// prefix must read back as exactly the complete frames it contains,
// flagging the remainder as a torn tail (the wire_corruption_test
// truncation-sweep pattern, applied to the log).
TEST(WalTest, TornFinalRecordTruncationSweep) {
  std::string dir = MakeTempRoot();
  std::string path = dir + "/wal.log";
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append("steady-one").ok());
    ASSERT_TRUE((*writer)->Append("steady-two").ok());
    ASSERT_TRUE((*writer)->Append("the final record, cut short").ok());
  }
  Result<WalReadResult> intact = ReadWalFile(path);
  ASSERT_TRUE(intact.ok());
  ASSERT_EQ(intact->payloads.size(), 3u);
  Result<std::string> bytes = ReadEntireFile(path);
  ASSERT_TRUE(bytes.ok());
  const uint64_t full = bytes->size();
  const uint64_t last_start = intact->offsets[2];
  for (uint64_t cut = last_start; cut < full; ++cut) {
    std::string trimmed = dir + "/trimmed.log";
    ASSERT_TRUE(AtomicWriteFile(trimmed, bytes->substr(0, cut)).ok());
    Result<WalReadResult> read = ReadWalFile(trimmed);
    ASSERT_TRUE(read.ok()) << "cut at " << cut;
    EXPECT_EQ(read->payloads.size(), 2u) << "cut at " << cut;
    EXPECT_EQ(read->valid_bytes, last_start) << "cut at " << cut;
    EXPECT_EQ(read->torn_tail, cut != last_start) << "cut at " << cut;
    EXPECT_EQ(read->dropped_bytes, cut - last_start) << "cut at " << cut;
  }
}

TEST(SnapshotTest, RoundTripAndCorruptionRejected) {
  SnapshotData snap;
  snap.peer = "alice";
  snap.next_rule_id = 7;
  snap.next_seq = 42;
  snap.known_peers = {"bob", "carol"};
  SnapshotData::RelationState rs;
  rs.decl.relation = "data";
  rs.decl.peer = "alice";
  rs.decl.kind = RelationKind::kExtensional;
  rs.decl.columns.resize(1);
  rs.decl.columns[0].name = "x";
  rs.decl.columns[0].type = ValueKind::kInt;
  rs.tuples = {{I(1)}, {I(2)}};
  snap.relations.push_back(rs);
  SnapshotData::StreamState ss;
  ss.relation = "view";
  ss.sender = "bob";
  ss.version = 9;
  ss.tuples = {{I(5)}};
  snap.slices.push_back(ss);
  SnapshotData::SentState sent;
  sent.target_peer = "bob";
  sent.relation = "view";
  sent.version = 4;
  sent.tuples = {{I(6)}};
  snap.sent.push_back(sent);

  std::string bytes = EncodeSnapshot(snap);
  Result<SnapshotData> decoded = DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->peer, "alice");
  EXPECT_EQ(decoded->next_rule_id, 7u);
  EXPECT_EQ(decoded->next_seq, 42u);
  EXPECT_EQ(decoded->known_peers, snap.known_peers);
  ASSERT_EQ(decoded->relations.size(), 1u);
  EXPECT_EQ(decoded->relations[0].tuples.size(), 2u);
  ASSERT_EQ(decoded->slices.size(), 1u);
  EXPECT_EQ(decoded->slices[0].version, 9u);
  ASSERT_EQ(decoded->sent.size(), 1u);
  EXPECT_EQ(decoded->sent[0].version, 4u);

  for (size_t i = 0; i < bytes.size(); i += 7) {
    std::string damaged = bytes;
    damaged[i] ^= 0x01;
    EXPECT_FALSE(DecodeSnapshot(damaged).ok()) << "flip at " << i;
  }
}

TEST(WalRecordTest, AllTypesRoundTrip) {
  std::vector<WalRecord> records;
  {
    WalRecord r;
    r.type = WalRecordType::kEnvelope;
    r.envelope.from = "bob";
    r.envelope.to = "alice";
    r.envelope.seq = 3;
    r.envelope.message = Message::FactInserts({Fact("data", "alice", {I(1)})});
    records.push_back(r);
  }
  {
    WalRecord r;
    r.type = WalRecordType::kLocalFactInsert;
    r.fact = Fact("data", "alice", {I(2)});
    records.push_back(r);
    r.type = WalRecordType::kLocalFactDelete;
    records.push_back(r);
  }
  {
    WalRecord r;
    r.type = WalRecordType::kLocalDecl;
    r.decl.relation = "data";
    r.decl.peer = "alice";
    r.decl.kind = RelationKind::kExtensional;
    r.decl.columns.resize(2);
    r.decl.columns[0].name = "x";
    r.decl.columns[0].type = ValueKind::kInt;
    r.decl.columns[1].name = "who";
    r.decl.columns[1].type = ValueKind::kString;
    records.push_back(r);
  }
  {
    WalRecord r;
    r.type = WalRecordType::kLocalRuleRemove;
    r.id = 12;
    records.push_back(r);
    r.type = WalRecordType::kDelegationApprove;
    records.push_back(r);
    r.type = WalRecordType::kDelegationReject;
    records.push_back(r);
  }
  {
    WalRecord r;
    r.type = WalRecordType::kStageOutbound;
    DerivedDelta d;
    d.target_peer = "bob";
    d.relation = "view";
    d.base_version = 2;
    d.version = 3;
    d.inserts = {{I(7)}};
    d.deletes = {{I(6)}};
    r.shipped_deltas.push_back(d);
    r.shipped_delegation_retracts = {99, 100};
    records.push_back(r);
  }
  for (const WalRecord& r : records) {
    std::string bytes = EncodeWalRecord(r);
    Result<WalRecord> decoded = DecodeWalRecord(bytes);
    ASSERT_TRUE(decoded.ok()) << WalRecordTypeToString(r.type) << ": "
                              << decoded.status();
    EXPECT_EQ(decoded->type, r.type);
    EXPECT_EQ(EncodeWalRecord(*decoded), bytes)
        << WalRecordTypeToString(r.type);
  }
  EXPECT_FALSE(DecodeWalRecord("").ok());
  // Unknown record type.
  EXPECT_FALSE(DecodeWalRecord("\x7F").ok());
  // Valid record followed by trailing garbage.
  WalRecord rr;
  rr.type = WalRecordType::kLocalRuleRemove;
  rr.id = 1;
  EXPECT_FALSE(DecodeWalRecord(EncodeWalRecord(rr) + "x").ok());
}

// --- peer recovery scenarios -----------------------------------------

/// One scripted step against the live system; peers are looked up by
/// name so the script can be replayed against a recovered system.
using Op = std::function<void(System&)>;

SystemOptions DurableSystemOptions(const std::string& root) {
  SystemOptions o;
  o.durability_root = root;
  // Interval 1 would heartbeat on every round and RunUntilQuiescent
  // could never observe an empty round.
  o.heartbeat_interval_rounds = 2;
  return o;
}

Fact DataFact(const std::string& peer, int64_t x) {
  return Fact("data", peer, {I(x)});
}

/// The shared two-peer script: declarations, a remote-headed rule
/// (contribution streams), a delegating rule (residual rule installed
/// at bob), inserts, deletes, and interleaved convergence points.
std::vector<Op> TwoPeerScript() {
  std::vector<Op> ops;
  ops.push_back([](System& s) {
    ASSERT_TRUE(s.GetPeer("alice")
                    ->LoadProgramText("collection ext data@alice(x: int);"
                                      "collection int both@alice(x: int);")
                    .ok());
  });
  ops.push_back([](System& s) {
    ASSERT_TRUE(s.GetPeer("bob")
                    ->LoadProgramText("collection ext data@bob(x: int);"
                                      "collection int view@bob(x: int);")
                    .ok());
  });
  ops.push_back([](System& s) {
    ASSERT_TRUE(s.GetPeer("alice")
                    ->AddRuleText("rule view@bob($x) :- data@alice($x);")
                    .ok());
  });
  ops.push_back([](System& s) {
    for (int64_t x = 1; x <= 3; ++x) {
      ASSERT_TRUE(s.GetPeer("alice")->Insert(DataFact("alice", x)).ok());
    }
  });
  ops.push_back([](System& s) {
    for (int64_t x = 2; x <= 4; ++x) {
      ASSERT_TRUE(s.GetPeer("bob")->Insert(DataFact("bob", x)).ok());
    }
  });
  ops.push_back([](System& s) { ASSERT_TRUE(s.RunUntilQuiescent().ok()); });
  ops.push_back([](System& s) {
    // Body spans both peers: the bob-resident part delegates.
    ASSERT_TRUE(s.GetPeer("alice")
                    ->AddRuleText(
                        "rule both@alice($x) :- data@alice($x), data@bob($x);")
                    .ok());
  });
  ops.push_back([](System& s) { ASSERT_TRUE(s.RunUntilQuiescent().ok()); });
  ops.push_back([](System& s) {
    ASSERT_TRUE(s.GetPeer("alice")->Insert(DataFact("alice", 5)).ok());
    ASSERT_TRUE(s.GetPeer("bob")->Insert(DataFact("bob", 5)).ok());
  });
  ops.push_back([](System& s) {
    ASSERT_TRUE(s.GetPeer("alice")->Remove(DataFact("alice", 2)).ok());
  });
  ops.push_back([](System& s) { ASSERT_TRUE(s.RunUntilQuiescent().ok()); });
  ops.push_back([](System& s) {
    ASSERT_TRUE(s.GetPeer("bob")->Insert(DataFact("bob", 1)).ok());
    ASSERT_TRUE(s.GetPeer("alice")->Insert(DataFact("alice", 4)).ok());
  });
  return ops;
}

void CreateScriptPeers(System& system) {
  PeerOptions options;
  options.trust_all_delegations = true;
  system.CreatePeer("alice", options);
  system.CreatePeer("bob", options);
}

/// Converges a possibly-just-recovered system: plain rounds first so
/// heartbeats fire and any post-crash stream gaps get detected and
/// repaired, then drain to quiescence.
void SettleWithHeartbeats(System& system) {
  for (int pass = 0; pass < 3; ++pass) {
    for (int i = 0; i < 6; ++i) system.RunRound();
    ASSERT_TRUE(system.RunUntilQuiescent().ok());
  }
}

/// Runs the script start-to-finish with no crash and returns the
/// converged fingerprint — the oracle every crashed run must match.
std::string NeverCrashedFingerprint(const std::vector<Op>& ops,
                                    bool durable) {
  std::string root = MakeTempRoot();
  SystemOptions sys =
      durable ? DurableSystemOptions(root) : SystemOptions{};
  sys.heartbeat_interval_rounds = 2;
  System system(sys);
  CreateScriptPeers(system);
  for (const Op& op : ops) {
    op(system);
    if (::testing::Test::HasFatalFailure()) return "";
  }
  SettleWithHeartbeats(system);
  return GlobalStateFingerprint(system);
}

// Kill the whole process group at every script position: run ops
// [0, crash_at), destroy the System (in-flight envelopes die with it),
// recover a fresh System over the same data dirs, run the remaining
// ops, converge. Every run must land on the never-crashed twin's
// fingerprint.
TEST(DurabilityRecoveryTest, CrashAtEveryScriptPositionConverges) {
  std::vector<Op> ops = TwoPeerScript();
  std::string oracle = NeverCrashedFingerprint(ops, /*durable=*/false);
  ASSERT_FALSE(oracle.empty());

  for (size_t crash_at = 0; crash_at <= ops.size(); ++crash_at) {
    SCOPED_TRACE("crash after op " + std::to_string(crash_at));
    std::string root = MakeTempRoot();
    {
      System system(DurableSystemOptions(root));
      CreateScriptPeers(system);
      for (size_t i = 0; i < crash_at; ++i) ops[i](system);
      ASSERT_FALSE(::testing::Test::HasFatalFailure());
      // System (and its network, with anything still in flight) is
      // destroyed here without any orderly shutdown: the crash.
    }
    System recovered(DurableSystemOptions(root));
    CreateScriptPeers(recovered);
    for (size_t i = crash_at; i < ops.size(); ++i) ops[i](recovered);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    SettleWithHeartbeats(recovered);
    EXPECT_EQ(GlobalStateFingerprint(recovered), oracle);
  }
}

// The acceptance bar for clean restarts: recovery must converge from
// the log alone — zero resync requests, zero inbound snapshots applied
// — because nothing was in flight when the processes died.
TEST(DurabilityRecoveryTest, CleanShutdownRecoversWithoutAnyResync) {
  std::vector<Op> ops = TwoPeerScript();
  std::string root = MakeTempRoot();
  std::string before;
  {
    System system(DurableSystemOptions(root));
    CreateScriptPeers(system);
    for (const Op& op : ops) op(system);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    SettleWithHeartbeats(system);
    before = GlobalStateFingerprint(system);
  }
  System recovered(DurableSystemOptions(root));
  CreateScriptPeers(recovered);
  EXPECT_TRUE(recovered.GetPeer("alice")->recovered());
  EXPECT_TRUE(recovered.GetPeer("bob")->recovered());
  SettleWithHeartbeats(recovered);
  EXPECT_EQ(GlobalStateFingerprint(recovered), before);
  for (const char* name : {"alice", "bob"}) {
    const PropagationCounters& pc =
        recovered.GetPeer(name)->engine().propagation_counters();
    EXPECT_EQ(pc.resyncs_requested, 0u) << name;
    EXPECT_EQ(pc.snapshots_applied, 0u) << name;
  }
}

// A peer that wrote nothing durable yet must recover as a blank slate
// (no snapshot, no WAL) and work normally afterwards.
TEST(DurabilityRecoveryTest, EmptyDataDirIsAFreshPeer) {
  std::string root = MakeTempRoot();
  { System system(DurableSystemOptions(root)); CreateScriptPeers(system); }
  System again(DurableSystemOptions(root));
  CreateScriptPeers(again);
  Peer* alice = again.GetPeer("alice");
  EXPECT_FALSE(alice->recovered());
  ASSERT_TRUE(alice->durability_status().ok());
  ASSERT_TRUE(
      alice->LoadProgramText("collection ext data@alice(x: int);").ok());
  ASSERT_TRUE(alice->Insert(DataFact("alice", 1)).ok());
  ASSERT_TRUE(again.RunUntilQuiescent().ok());
}

// With snapshot_interval_records = 1 every stage rotates the log, so
// recovery is snapshot-driven with an (almost) empty WAL suffix.
TEST(DurabilityRecoveryTest, SnapshotOnlyRecovery) {
  std::vector<Op> ops = TwoPeerScript();
  std::string root = MakeTempRoot();
  std::string before;
  {
    SystemOptions sys = DurableSystemOptions(root);
    sys.durability.snapshot_interval_records = 1;
    System system(sys);
    CreateScriptPeers(system);
    for (const Op& op : ops) op(system);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    SettleWithHeartbeats(system);
    before = GlobalStateFingerprint(system);
    EXPECT_GT(
        system.GetPeer("alice")->durability()->counters().snapshots_written,
        0u);
  }
  System recovered(DurableSystemOptions(root));
  CreateScriptPeers(recovered);
  ASSERT_TRUE(recovered.GetPeer("alice")->recovered());
  EXPECT_TRUE(recovered.GetPeer("alice")
                  ->durability()
                  ->counters()
                  .snapshot_recovered);
  SettleWithHeartbeats(recovered);
  EXPECT_EQ(GlobalStateFingerprint(recovered), before);
}

// Re-appending an already-replayed WAL suffix (a crash between
// snapshot rename and log rotation can replay covered records) must
// not change the recovered state: every record type is idempotent.
TEST(DurabilityRecoveryTest, DuplicateReplayIsIdempotent) {
  std::vector<Op> ops = TwoPeerScript();
  std::string root = MakeTempRoot();
  std::string before;
  {
    System system(DurableSystemOptions(root));
    CreateScriptPeers(system);
    for (const Op& op : ops) op(system);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    SettleWithHeartbeats(system);
    before = GlobalStateFingerprint(system);
  }
  for (const char* name : {"alice", "bob"}) {
    std::string wal = root + "/" + name + "/wal-0.log";
    Result<WalReadResult> read = ReadWalFile(wal);
    ASSERT_TRUE(read.ok());
    ASSERT_FALSE(read->payloads.empty()) << name;
    auto writer = WalWriter::Open(wal);
    ASSERT_TRUE(writer.ok());
    for (const std::string& payload : read->payloads) {
      ASSERT_TRUE((*writer)->Append(payload).ok());
    }
  }
  System recovered(DurableSystemOptions(root));
  CreateScriptPeers(recovered);
  SettleWithHeartbeats(recovered);
  EXPECT_EQ(GlobalStateFingerprint(recovered), before);
}

// Truncate alice's WAL mid-final-record before recovery: the torn tail
// is dropped, recovery proceeds from the clean prefix, and the
// protocol (heartbeats -> resync) repairs whatever the lost suffix
// covered.
TEST(DurabilityRecoveryTest, TornFinalRecordIsDroppedAndRepaired) {
  std::vector<Op> ops = TwoPeerScript();
  std::string oracle = NeverCrashedFingerprint(ops, /*durable=*/false);
  std::string root = MakeTempRoot();
  {
    System system(DurableSystemOptions(root));
    CreateScriptPeers(system);
    for (const Op& op : ops) op(system);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    SettleWithHeartbeats(system);
  }
  std::string wal = root + "/alice/wal-0.log";
  Result<std::string> bytes = ReadEntireFile(wal);
  ASSERT_TRUE(bytes.ok());
  ASSERT_GT(bytes->size(), 3u);
  ASSERT_TRUE(TruncateFile(wal, bytes->size() - 3).ok());

  System recovered(DurableSystemOptions(root));
  CreateScriptPeers(recovered);
  ASSERT_TRUE(recovered.GetPeer("alice")->durability_status().ok());
  EXPECT_TRUE(recovered.GetPeer("alice")
                  ->durability()
                  ->counters()
                  .torn_tail_truncated);
  SettleWithHeartbeats(recovered);
  EXPECT_EQ(GlobalStateFingerprint(recovered), oracle);
}

// The headline recovery property: a receiver that missed deltas while
// it was "down" (here: a fully lossy link) repairs EXACTLY the gapped
// stream on restart — one resync, one applied snapshot, not a blanket
// re-send of every relation.
TEST(DurabilityRecoveryTest, RecoveryResyncsOnlyTheGappedStream) {
  std::string root = MakeTempRoot();
  auto load = [](System& s) {
    ASSERT_TRUE(s.GetPeer("alice")
                    ->LoadProgramText("collection ext data@alice(x: int);")
                    .ok());
    ASSERT_TRUE(s.GetPeer("bob")
                    ->LoadProgramText("collection int view@bob(x: int);"
                                      "collection int tally@bob(x: int);")
                    .ok());
    ASSERT_TRUE(s.GetPeer("alice")
                    ->AddRuleText("rule view@bob($x) :- data@alice($x);")
                    .ok());
  };
  // Phase 1: converge healthy, shut down cleanly.
  {
    System system(DurableSystemOptions(root));
    CreateScriptPeers(system);
    load(system);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    for (int64_t x = 1; x <= 3; ++x) {
      ASSERT_TRUE(system.GetPeer("alice")->Insert(DataFact("alice", x)).ok());
    }
    ASSERT_TRUE(system.RunUntilQuiescent().ok());
  }
  // Phase 2: alice advances her stream while every frame to bob is
  // lost — bob's applied version falls behind alice's logged one.
  {
    SystemOptions sys = DurableSystemOptions(root);
    sys.heartbeat_interval_rounds = 0;  // heartbeats would never arrive
    System system(sys);
    CreateScriptPeers(system);
    LinkConfig lossy;
    lossy.drop_probability = 1.0;
    system.network().SetLink("alice", "bob", lossy);
    ASSERT_TRUE(system.GetPeer("alice")->Insert(DataFact("alice", 9)).ok());
    for (int i = 0; i < 6; ++i) system.RunRound();
  }
  // Phase 3: healthy restart. Bob heartbeat-detects the one gapped
  // stream and requests exactly one resync.
  System recovered(DurableSystemOptions(root));
  CreateScriptPeers(recovered);
  ASSERT_TRUE(recovered.GetPeer("bob")->recovered());
  SettleWithHeartbeats(recovered);
  const PropagationCounters& bob =
      recovered.GetPeer("bob")->engine().propagation_counters();
  EXPECT_EQ(bob.resyncs_requested, 1u);
  EXPECT_EQ(bob.snapshots_applied, 1u);
  const Relation* view =
      recovered.GetPeer("bob")->engine().catalog().Get("view");
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->size(), 4u);  // 1..3 plus the delayed 9
}

// Delegation control-plane decisions survive: a pending delegation is
// restored into the gate, and an approval is replayed so the rule is
// installed after recovery.
TEST(DurabilityRecoveryTest, PendingDelegationAndApprovalSurvive) {
  std::string root = MakeTempRoot();
  auto create = [](System& s) {
    PeerOptions alice_opts;
    alice_opts.trust_all_delegations = true;
    s.CreatePeer("alice", alice_opts);
    s.CreatePeer("bob");  // untrusting: delegations queue at the gate
  };
  {
    System system(DurableSystemOptions(root));
    create(system);
    ASSERT_TRUE(system.GetPeer("alice")
                    ->LoadProgramText("collection ext data@alice(x: int);"
                                      "collection int both@alice(x: int);")
                    .ok());
    ASSERT_TRUE(system.GetPeer("bob")
                    ->LoadProgramText("collection ext data@bob(x: int);")
                    .ok());
    ASSERT_TRUE(system.GetPeer("alice")
                    ->AddRuleText(
                        "rule both@alice($x) :- data@alice($x), data@bob($x);")
                    .ok());
    ASSERT_TRUE(system.GetPeer("alice")->Insert(DataFact("alice", 1)).ok());
    ASSERT_TRUE(system.GetPeer("bob")->Insert(DataFact("bob", 1)).ok());
    ASSERT_TRUE(system.RunUntilQuiescent().ok());
    ASSERT_EQ(system.GetPeer("bob")->gate().pending_count(), 1u);
  }
  // Crash with the delegation still pending; it must come back.
  uint64_t key = 0;
  {
    System recovered(DurableSystemOptions(root));
    create(recovered);
    Peer* bob = recovered.GetPeer("bob");
    ASSERT_EQ(bob->gate().pending_count(), 1u);
    key = bob->gate().Pending()[0]->Key();
    ASSERT_TRUE(bob->ApproveDelegation(key).ok());
    ASSERT_TRUE(recovered.RunUntilQuiescent().ok());
    const Relation* both =
        recovered.GetPeer("alice")->engine().catalog().Get("both");
    ASSERT_NE(both, nullptr);
    EXPECT_EQ(both->size(), 1u);
  }
  // Crash again after the approval: the installed rule must survive.
  System again(DurableSystemOptions(root));
  create(again);
  EXPECT_EQ(again.GetPeer("bob")->gate().pending_count(), 0u);
  SettleWithHeartbeats(again);
  const Relation* both = again.GetPeer("alice")->engine().catalog().Get("both");
  ASSERT_NE(both, nullptr);
  EXPECT_EQ(both->size(), 1u);
}

// Durable and memory-only must be byte-identical when nothing crashes:
// the WAL is an oracle-pattern addition, not a semantic change.
TEST(DurabilityRecoveryTest, DurableRunMatchesMemoryOnlyRun) {
  std::vector<Op> ops = TwoPeerScript();
  std::string memory_only = NeverCrashedFingerprint(ops, /*durable=*/false);
  std::string durable = NeverCrashedFingerprint(ops, /*durable=*/true);
  ASSERT_FALSE(memory_only.empty());
  EXPECT_EQ(memory_only, durable);
}

// Recovery under immediate churn: new writes racing the repair
// machinery right after restart must not corrupt convergence.
TEST(DurabilityRecoveryTest, RecoveryWithImmediateChurnConverges) {
  std::vector<Op> ops = TwoPeerScript();
  std::string root = MakeTempRoot();
  {
    System system(DurableSystemOptions(root));
    CreateScriptPeers(system);
    for (size_t i = 0; i < 6; ++i) ops[i](system);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
    // Crash with traffic in flight (no settling).
    ops[8](system);
  }
  System recovered(DurableSystemOptions(root));
  CreateScriptPeers(recovered);
  // Churn immediately, before any round has run.
  for (int64_t x = 20; x < 24; ++x) {
    ASSERT_TRUE(recovered.GetPeer("alice")->Insert(DataFact("alice", x)).ok());
  }
  for (size_t i = 6; i < ops.size(); ++i) ops[i](recovered);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  SettleWithHeartbeats(recovered);

  // Twin: same total op set, no crash.
  std::string twin_root = MakeTempRoot();
  System twin(DurableSystemOptions(twin_root));
  CreateScriptPeers(twin);
  for (size_t i = 0; i < 6; ++i) ops[i](twin);
  ops[8](twin);
  for (int64_t x = 20; x < 24; ++x) {
    ASSERT_TRUE(twin.GetPeer("alice")->Insert(DataFact("alice", x)).ok());
  }
  for (size_t i = 6; i < ops.size(); ++i) ops[i](twin);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  SettleWithHeartbeats(twin);
  EXPECT_EQ(GlobalStateFingerprint(recovered), GlobalStateFingerprint(twin));
}

TEST(DurabilityRecoveryTest, GenerationsRotateAndOldFilesAreRemoved) {
  std::string root = MakeTempRoot();
  DurabilityOptions options;
  options.dir = root + "/p";
  options.snapshot_interval_records = 2;
  Result<std::unique_ptr<PeerDurability>> opened =
      PeerDurability::Open(options);
  ASSERT_TRUE(opened.ok());
  PeerDurability& pd = **opened;
  WalRecord record;
  record.type = WalRecordType::kLocalFactInsert;
  record.fact = Fact("data", "p", {I(1)});
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(pd.Append(record).ok());
    if (pd.ShouldSnapshot()) {
      SnapshotData snap;
      snap.peer = "p";
      ASSERT_TRUE(pd.WriteSnapshot(snap).ok());
    }
  }
  EXPECT_EQ(pd.generation(), 2u);
  // Only the current generation's files remain.
  EXPECT_EQ(::access(pd.SnapshotPath(2).c_str(), F_OK), 0);
  EXPECT_NE(::access(pd.SnapshotPath(1).c_str(), F_OK), 0);
  EXPECT_NE(::access((options.dir + "/wal-1.log").c_str(), F_OK), 0);

  // Reopen: the newest snapshot + its (short) log come back.
  opened = PeerDurability::Open(options);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ((*opened)->generation(), 2u);
  EXPECT_TRUE((*opened)->counters().snapshot_recovered);
  EXPECT_EQ((*opened)->counters().wal_records_recovered, 1u);
}

}  // namespace
}  // namespace wdl
