#include "support/rng_check.h"

#include <gtest/gtest.h>

#include "base/rng.h"

namespace wdl {
namespace test {
namespace {

// First four draws of Rng(kTestSeedBase). SplitMix64 is portable, so
// these hold on every platform; a mismatch means the generator (or the
// seed policy) changed and every recorded repro seed is stale.
constexpr uint64_t kGolden[] = {
    0x09f1fd9d03f0a9b4ULL,
    0x553274161bbf8475ULL,
    0x5d5bca4696b343b3ULL,
    0x70d29b6c7d22528dULL,
};

}  // namespace

uint64_t FixedTestSeed(uint64_t index) {
  Rng rng(kTestSeedBase);
  uint64_t seed = kTestSeedBase;
  for (uint64_t i = 0; i <= index; ++i) seed = rng.Next();
  return seed;
}

std::vector<uint64_t> FixedTestSeeds(size_t n) {
  std::vector<uint64_t> seeds;
  seeds.reserve(n);
  Rng rng(kTestSeedBase);
  for (size_t i = 0; i < n; ++i) seeds.push_back(rng.Next());
  return seeds;
}

bool CheckRngGoldenSequence() {
  Rng rng(kTestSeedBase);
  for (size_t i = 0; i < std::size(kGolden); ++i) {
    uint64_t got = rng.Next();
    if (got != kGolden[i]) {
      ADD_FAILURE() << "RNG drifted from golden SplitMix64 sequence at draw "
                    << i << ": got 0x" << std::hex << got << ", want 0x"
                    << kGolden[i]
                    << ". Recorded repro seeds are no longer meaningful.";
      return false;
    }
  }
  return true;
}

}  // namespace test
}  // namespace wdl
