#ifndef WDL_WRAPPERS_EMAIL_SERVICE_H_
#define WDL_WRAPPERS_EMAIL_SERVICE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wdl {

/// In-memory stand-in for the email transport the paper's email wrapper
/// used to deliver pictures: a per-address inbox with append-only
/// delivery. Like FacebookService, it knows nothing about WebdamLog.
class EmailService {
 public:
  struct Email {
    std::string to;
    std::string from;
    std::string subject;
    std::string body;
  };

  void Send(Email email) {
    inboxes_[email.to].push_back(std::move(email));
    ++sent_count_;
  }

  const std::vector<Email>& InboxOf(const std::string& address) const {
    static const std::vector<Email> kEmpty;
    auto it = inboxes_.find(address);
    return it == inboxes_.end() ? kEmpty : it->second;
  }

  uint64_t sent_count() const { return sent_count_; }

 private:
  std::map<std::string, std::vector<Email>> inboxes_;
  uint64_t sent_count_ = 0;
};

}  // namespace wdl

#endif  // WDL_WRAPPERS_EMAIL_SERVICE_H_
