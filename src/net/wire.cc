#include "net/wire.h"

#include <cstring>

#include "base/string_util.h"

namespace wdl {

namespace {
constexpr char kMagic[4] = {'W', 'D', 'L', 'M'};
constexpr uint16_t kVersion = 1;
// Defense against hostile lengths: no single collection in a WebdamLog
// message plausibly exceeds this many elements.
constexpr uint32_t kMaxCount = 1u << 24;

// Smallest possible encodings, used to cap collection counts against
// the bytes actually left in the frame (GetCount). A count that claims
// more elements than the remainder could hold even at minimum size is
// corrupt or hostile, however large kMaxCount is.
constexpr size_t kMinValueBytes = 5;   // tag + u32 len of an empty string
constexpr size_t kMinTermBytes = 5;    // var tag + u32 len
constexpr size_t kMinTupleBytes = 4;   // u32 arity of an empty tuple
constexpr size_t kMinFactBytes = 12;   // two empty strings + empty tuple
constexpr size_t kMinAtomBytes = 15;   // neg tag + two symterms + u32 arity
}  // namespace

void WireEncoder::PutU16(uint16_t v) {
  PutU8(static_cast<uint8_t>(v));
  PutU8(static_cast<uint8_t>(v >> 8));
}

void WireEncoder::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void WireEncoder::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
}

void WireEncoder::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireEncoder::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

void WireEncoder::PutValue(const Value& v) {
  PutU8(static_cast<uint8_t>(v.kind()));
  switch (v.kind()) {
    case ValueKind::kInt:
      PutU64(static_cast<uint64_t>(v.AsInt()));
      break;
    case ValueKind::kDouble:
      PutDouble(v.AsDouble());
      break;
    case ValueKind::kString:
      PutString(v.AsString());
      break;
    case ValueKind::kBlob:
      PutString(v.AsBlob().bytes);
      break;
    case ValueKind::kAny:
      break;  // never a live value; encoded as tag only
  }
}

void WireEncoder::PutTuple(const Tuple& t) {
  PutU32(static_cast<uint32_t>(t.size()));
  for (const Value& v : t) PutValue(v);
}

void WireEncoder::PutFact(const Fact& f) {
  PutString(f.relation);
  PutString(f.peer);
  PutTuple(f.args);
}

void WireEncoder::PutSymTerm(const SymTerm& t) {
  PutU8(t.is_variable() ? 1 : 0);
  PutString(t.is_variable() ? t.var() : t.name());
}

void WireEncoder::PutTerm(const Term& t) {
  PutU8(t.is_variable() ? 1 : 0);
  if (t.is_variable()) {
    PutString(t.var());
  } else {
    PutValue(t.value());
  }
}

void WireEncoder::PutAtom(const Atom& a) {
  PutU8(a.negated ? 1 : 0);
  PutSymTerm(a.relation);
  PutSymTerm(a.peer);
  PutU32(static_cast<uint32_t>(a.args.size()));
  for (const Term& t : a.args) PutTerm(t);
}

void WireEncoder::PutRule(const Rule& r) {
  PutU8(r.head_deletes ? 1 : 0);
  PutAtom(r.head);
  PutU32(static_cast<uint32_t>(r.body.size()));
  for (const Atom& a : r.body) PutAtom(a);
}

void WireEncoder::PutDelegation(const Delegation& d) {
  PutString(d.origin_peer);
  PutString(d.target_peer);
  PutU64(d.origin_rule_hash);
  PutRule(d.rule);
}

void WireEncoder::PutDerivedSet(const DerivedSet& s) {
  PutString(s.target_peer);
  PutString(s.relation);
  PutU32(static_cast<uint32_t>(s.tuples.size()));
  for (const Tuple& t : s.tuples) PutTuple(t);
}

void WireEncoder::PutDerivedDelta(const DerivedDelta& d) {
  PutString(d.target_peer);
  PutString(d.relation);
  PutU64(d.base_version);
  PutU64(d.version);
  PutU8(d.snapshot ? 1 : 0);
  PutU32(static_cast<uint32_t>(d.inserts.size()));
  for (const Tuple& t : d.inserts) PutTuple(t);
  PutU32(static_cast<uint32_t>(d.deletes.size()));
  for (const Tuple& t : d.deletes) PutTuple(t);
}

void WireEncoder::PutMessage(const Message& m) {
  PutU8(static_cast<uint8_t>(m.type));
  switch (m.type) {
    case MessageType::kFactInserts:
    case MessageType::kFactDeletes:
      PutU32(static_cast<uint32_t>(m.facts.size()));
      for (const Fact& f : m.facts) PutFact(f);
      break;
    case MessageType::kDerivedSet:
      PutDerivedSet(m.derived);
      break;
    case MessageType::kDelegationInstall:
      PutDelegation(m.delegation);
      break;
    case MessageType::kDelegationRetract:
      PutU64(m.delegation_key);
      break;
    case MessageType::kHello:
    case MessageType::kResyncRequest:
    case MessageType::kStreamForget:
      PutString(m.text);
      break;
    case MessageType::kDerivedDelta:
      PutDerivedDelta(m.delta);
      break;
  }
}

void WireEncoder::PutEnvelope(const Envelope& e) {
  buf_.append(kMagic, sizeof(kMagic));
  PutU16(kVersion);
  PutString(e.from);
  PutString(e.to);
  PutU64(e.seq);
  PutMessage(e.message);
}

Status WireDecoder::Need(size_t n) const {
  if (data_.size() - pos_ < n) {
    return Status::OutOfRange(StrFormat(
        "wire decode: need %zu bytes, have %zu", n, data_.size() - pos_));
  }
  return Status::OK();
}

Result<uint8_t> WireDecoder::GetU8() {
  WDL_RETURN_IF_ERROR(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint16_t> WireDecoder::GetU16() {
  WDL_RETURN_IF_ERROR(Need(2));
  uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v |= static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  return v;
}

Result<uint32_t> WireDecoder::GetU32() {
  WDL_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  return v;
}

Result<uint64_t> WireDecoder::GetU64() {
  WDL_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  return v;
}

Result<double> WireDecoder::GetDouble() {
  WDL_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

Result<uint32_t> WireDecoder::GetCount(size_t min_element_bytes,
                                       const char* what) {
  WDL_ASSIGN_OR_RETURN(uint32_t n, GetU32());
  if (n > kMaxCount ||
      static_cast<uint64_t>(n) * min_element_bytes > remaining()) {
    return Status::ParseError(StrFormat(
        "%s count %u exceeds frame (%zu bytes remaining)", what, n,
        remaining()));
  }
  return n;
}

Result<std::string> WireDecoder::GetString() {
  WDL_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  WDL_RETURN_IF_ERROR(Need(len));
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

Result<Value> WireDecoder::GetValue() {
  WDL_ASSIGN_OR_RETURN(uint8_t tag, GetU8());
  switch (static_cast<ValueKind>(tag)) {
    case ValueKind::kInt: {
      WDL_ASSIGN_OR_RETURN(uint64_t v, GetU64());
      return Value::Int(static_cast<int64_t>(v));
    }
    case ValueKind::kDouble: {
      WDL_ASSIGN_OR_RETURN(double v, GetDouble());
      return Value::Double(v);
    }
    case ValueKind::kString: {
      WDL_ASSIGN_OR_RETURN(std::string s, GetString());
      return Value::String(std::move(s));
    }
    case ValueKind::kBlob: {
      WDL_ASSIGN_OR_RETURN(std::string s, GetString());
      return Value::MakeBlob(std::move(s));
    }
    default:
      return Status::ParseError(StrFormat("bad value tag %u", tag));
  }
}

Result<Tuple> WireDecoder::GetTuple() {
  WDL_ASSIGN_OR_RETURN(uint32_t n, GetCount(kMinValueBytes, "tuple arity"));
  Tuple t;
  t.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    WDL_ASSIGN_OR_RETURN(Value v, GetValue());
    t.push_back(std::move(v));
  }
  return t;
}

Result<Fact> WireDecoder::GetFact() {
  Fact f;
  WDL_ASSIGN_OR_RETURN(f.relation, GetString());
  WDL_ASSIGN_OR_RETURN(f.peer, GetString());
  WDL_ASSIGN_OR_RETURN(f.args, GetTuple());
  return f;
}

Result<SymTerm> WireDecoder::GetSymTerm() {
  WDL_ASSIGN_OR_RETURN(uint8_t is_var, GetU8());
  WDL_ASSIGN_OR_RETURN(std::string text, GetString());
  if (is_var > 1) return Status::ParseError("bad symterm tag");
  return is_var ? SymTerm::Variable(std::move(text))
                : SymTerm::Name(std::move(text));
}

Result<Term> WireDecoder::GetTerm() {
  WDL_ASSIGN_OR_RETURN(uint8_t is_var, GetU8());
  if (is_var > 1) return Status::ParseError("bad term tag");
  if (is_var) {
    WDL_ASSIGN_OR_RETURN(std::string name, GetString());
    return Term::Variable(std::move(name));
  }
  WDL_ASSIGN_OR_RETURN(Value v, GetValue());
  return Term::Constant(std::move(v));
}

Result<Atom> WireDecoder::GetAtom() {
  Atom a;
  WDL_ASSIGN_OR_RETURN(uint8_t negated, GetU8());
  if (negated > 1) return Status::ParseError("bad atom negation tag");
  a.negated = negated != 0;
  WDL_ASSIGN_OR_RETURN(a.relation, GetSymTerm());
  WDL_ASSIGN_OR_RETURN(a.peer, GetSymTerm());
  WDL_ASSIGN_OR_RETURN(uint32_t n, GetCount(kMinTermBytes, "atom arity"));
  a.args.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    WDL_ASSIGN_OR_RETURN(Term t, GetTerm());
    a.args.push_back(std::move(t));
  }
  return a;
}

Result<Rule> WireDecoder::GetRule() {
  Rule r;
  WDL_ASSIGN_OR_RETURN(uint8_t deletes, GetU8());
  if (deletes > 1) return Status::ParseError("bad rule deletion tag");
  r.head_deletes = deletes != 0;
  WDL_ASSIGN_OR_RETURN(r.head, GetAtom());
  WDL_ASSIGN_OR_RETURN(uint32_t n, GetCount(kMinAtomBytes, "rule body"));
  r.body.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    WDL_ASSIGN_OR_RETURN(Atom a, GetAtom());
    r.body.push_back(std::move(a));
  }
  return r;
}

Result<Delegation> WireDecoder::GetDelegation() {
  Delegation d;
  WDL_ASSIGN_OR_RETURN(d.origin_peer, GetString());
  WDL_ASSIGN_OR_RETURN(d.target_peer, GetString());
  WDL_ASSIGN_OR_RETURN(d.origin_rule_hash, GetU64());
  WDL_ASSIGN_OR_RETURN(d.rule, GetRule());
  return d;
}

Result<DerivedSet> WireDecoder::GetDerivedSet() {
  DerivedSet s;
  WDL_ASSIGN_OR_RETURN(s.target_peer, GetString());
  WDL_ASSIGN_OR_RETURN(s.relation, GetString());
  WDL_ASSIGN_OR_RETURN(uint32_t n, GetCount(kMinTupleBytes, "derived set"));
  s.tuples.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    WDL_ASSIGN_OR_RETURN(Tuple t, GetTuple());
    s.tuples.push_back(std::move(t));
  }
  return s;
}

Result<DerivedDelta> WireDecoder::GetDerivedDelta() {
  DerivedDelta d;
  WDL_ASSIGN_OR_RETURN(d.target_peer, GetString());
  WDL_ASSIGN_OR_RETURN(d.relation, GetString());
  WDL_ASSIGN_OR_RETURN(d.base_version, GetU64());
  WDL_ASSIGN_OR_RETURN(d.version, GetU64());
  WDL_ASSIGN_OR_RETURN(uint8_t snapshot, GetU8());
  if (snapshot > 1) return Status::ParseError("bad delta snapshot tag");
  d.snapshot = snapshot != 0;
  if (!d.snapshot && d.version < d.base_version) {
    return Status::ParseError("delta versions not increasing");
  }
  // version == base_version is the version-only stream heartbeat: it
  // carries no payload and only lets the receiver detect a silent gap.
  if (!d.snapshot && d.version == d.base_version) {
    WDL_ASSIGN_OR_RETURN(uint32_t n_ins, GetU32());
    WDL_ASSIGN_OR_RETURN(uint32_t n_del, GetU32());
    if (n_ins != 0 || n_del != 0) {
      return Status::ParseError("heartbeat delta carries payload");
    }
    return d;
  }
  WDL_ASSIGN_OR_RETURN(uint32_t n_ins,
                       GetCount(kMinTupleBytes, "delta inserts"));
  d.inserts.reserve(n_ins);
  for (uint32_t i = 0; i < n_ins; ++i) {
    WDL_ASSIGN_OR_RETURN(Tuple t, GetTuple());
    d.inserts.push_back(std::move(t));
  }
  WDL_ASSIGN_OR_RETURN(uint32_t n_del,
                       GetCount(kMinTupleBytes, "delta deletes"));
  d.deletes.reserve(n_del);
  for (uint32_t i = 0; i < n_del; ++i) {
    WDL_ASSIGN_OR_RETURN(Tuple t, GetTuple());
    d.deletes.push_back(std::move(t));
  }
  return d;
}

Result<Message> WireDecoder::GetMessage() {
  Message m;
  WDL_ASSIGN_OR_RETURN(uint8_t type, GetU8());
  if (type > static_cast<uint8_t>(MessageType::kStreamForget)) {
    return Status::ParseError(StrFormat("bad message type %u", type));
  }
  m.type = static_cast<MessageType>(type);
  switch (m.type) {
    case MessageType::kFactInserts:
    case MessageType::kFactDeletes: {
      WDL_ASSIGN_OR_RETURN(uint32_t n, GetCount(kMinFactBytes, "fact batch"));
      m.facts.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        WDL_ASSIGN_OR_RETURN(Fact f, GetFact());
        m.facts.push_back(std::move(f));
      }
      break;
    }
    case MessageType::kDerivedSet: {
      WDL_ASSIGN_OR_RETURN(m.derived, GetDerivedSet());
      break;
    }
    case MessageType::kDelegationInstall: {
      WDL_ASSIGN_OR_RETURN(m.delegation, GetDelegation());
      break;
    }
    case MessageType::kDelegationRetract: {
      WDL_ASSIGN_OR_RETURN(m.delegation_key, GetU64());
      break;
    }
    case MessageType::kHello:
    case MessageType::kResyncRequest:
    case MessageType::kStreamForget: {
      WDL_ASSIGN_OR_RETURN(m.text, GetString());
      break;
    }
    case MessageType::kDerivedDelta: {
      WDL_ASSIGN_OR_RETURN(m.delta, GetDerivedDelta());
      break;
    }
  }
  return m;
}

Result<Envelope> WireDecoder::GetEnvelope() {
  WDL_RETURN_IF_ERROR(Need(sizeof(kMagic)));
  if (std::memcmp(data_.data() + pos_, kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("bad wire magic");
  }
  pos_ += sizeof(kMagic);
  WDL_ASSIGN_OR_RETURN(uint16_t version, GetU16());
  if (version != kVersion) {
    return Status::ParseError(StrFormat("unsupported wire version %u",
                                        version));
  }
  Envelope e;
  WDL_ASSIGN_OR_RETURN(e.from, GetString());
  WDL_ASSIGN_OR_RETURN(e.to, GetString());
  WDL_ASSIGN_OR_RETURN(e.seq, GetU64());
  WDL_ASSIGN_OR_RETURN(e.message, GetMessage());
  return e;
}

std::string EncodeEnvelope(const Envelope& e) {
  WireEncoder enc;
  enc.PutEnvelope(e);
  return std::move(enc.TakeBuffer());
}

Result<Envelope> DecodeEnvelope(std::string_view bytes) {
  WireDecoder dec(bytes);
  WDL_ASSIGN_OR_RETURN(Envelope e, dec.GetEnvelope());
  if (!dec.AtEnd()) {
    return Status::ParseError("trailing bytes after envelope");
  }
  return e;
}

}  // namespace wdl
