#ifndef WDL_ENGINE_PLAN_H_
#define WDL_ENGINE_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ast/fact.h"
#include "ast/rule.h"
#include "base/symbol.h"
#include "engine/binding.h"

namespace wdl {

/// Compiled rule plans (DESIGN.md §4). A Rule is compiled once, at
/// install time, into a RulePlan that the evaluator executes directly:
///
///  - every variable is numbered into a dense *slot*, so the runtime
///    binding is a flat array of `const Value*` (O(1) indexed access,
///    no name comparison, no value copies — slots point at resident
///    tuple storage);
///  - constant relation/peer names are pre-resolved to interned Symbols
///    (integer compare against the evaluating peer, O(1) catalog and
///    Δ-set lookup by id);
///  - each atom's unification is a fixed op sequence (compare-constant,
///    compare-slot, bind-slot), and its access path — which column can
///    drive an index probe — is chosen at compile time, because
///    left-to-right evaluation makes "which slots are bound before atom
///    k" a static property.
///
/// Plans are immutable once compiled and self-contained (they own a
/// copy of the source rule, from which delegation residuals are
/// substituted). They are peer-agnostic: the same plan is valid for any
/// evaluating peer; remoteness of an atom is an id compare at runtime.

/// One argument position of a compiled atom.
struct PlanTerm {
  enum class Op : uint8_t {
    kConst,  // tuple value must equal `value`
    kCheck,  // tuple value must equal the value bound in `slot`
    kBind,   // first occurrence: bind `slot` to the tuple's value
  };

  static PlanTerm Const(Value v) {
    PlanTerm t;
    t.op = Op::kConst;
    t.value = std::move(v);
    return t;
  }
  static PlanTerm Check(uint16_t slot) {
    PlanTerm t;
    t.op = Op::kCheck;
    t.slot = slot;
    return t;
  }
  static PlanTerm Bind(uint16_t slot) {
    PlanTerm t;
    t.op = Op::kBind;
    t.slot = slot;
    return t;
  }

  Op op = Op::kConst;
  uint16_t slot = 0;  // kCheck/kBind
  Value value;        // kConst
};

/// A relation- or peer-position reference: a pre-interned constant name
/// or a slot holding the (string) name at runtime. The constant's text
/// is duplicated into the plan so hot paths (head emission, remoteness
/// checks) never touch the symbol table's lock.
struct PlanSym {
  bool is_const = true;
  Symbol sym;         // is_const
  std::string text;   // is_const: == sym.str()
  uint16_t slot = 0;  // !is_const

  static PlanSym Const(Symbol s) {
    PlanSym p;
    p.is_const = true;
    p.sym = s;
    p.text = s.str();
    return p;
  }
  static PlanSym Slot(uint16_t slot) {
    PlanSym p;
    p.is_const = false;
    p.slot = slot;
    return p;
  }
};

/// One compiled body atom.
struct PlanAtom {
  PlanSym relation;
  PlanSym peer;
  bool negated = false;
  /// Statically detected dead branch: a negated atom containing a
  /// variable no positive atom can ever bind is never ground at
  /// evaluation time (the interpreter discovers this per binding and
  /// logs; the plan knows it up front).
  bool negated_unbound = false;

  std::vector<PlanTerm> terms;
  /// Slots this atom's kBind ops fill — nulled after the atom's match
  /// loop returns (the entire backtracking "trail").
  std::vector<uint16_t> bound_slots;

  /// Access path: the first column whose key value is known before the
  /// atom runs (a constant, or a slot bound by an earlier atom) drives
  /// an index probe; -1 means full scan. Chosen at compile time.
  int index_column = -1;
  bool index_key_is_const = false;
  Value index_const;       // index_key_is_const
  uint16_t index_slot = 0; // !index_key_is_const

  /// Bitmask of argument positions (< 64) whose value is known before
  /// the atom's tuple loop starts: constants, plus variables bound by an
  /// earlier atom (in-atom repeats are excluded — their value only
  /// exists per candidate tuple). This is the sideways information the
  /// demand evaluator passes down: when the atom reads an intensional
  /// relation, these positions form the sub-demand's adornment.
  uint64_t prebound_args = 0;
};

/// The compiled head: same shape as an atom minus matching concerns.
struct PlanHead {
  PlanSym relation;
  PlanSym peer;
  std::vector<PlanTerm> terms;  // kConst / kCheck only (heads never bind)
  /// True when a head variable (argument, relation, or peer position)
  /// can never be bound by the body — every emission would fail its
  /// runtime unbound check, so emission is skipped entirely. Only
  /// unsafe rules compile to dead heads; residual delegation still
  /// substitutes whatever is bound.
  bool dead = false;
};

/// Compile-time facts about a rule that the incremental-maintenance
/// driver (DESIGN.md §6) needs to route deltas: which relations the
/// body reads (so a rule is skipped when a stage's Δ cannot touch it),
/// which relation the head writes (so delete/re-derive candidate tuples
/// are checked only against rules that could have produced them), and
/// whether the rule can split into a delegation (so deletions that may
/// invalidate a prefix binding trigger a delegation rebuild).
struct PlanStaticInfo {
  Symbol head_relation;         // invalid when the head relation is a var
  bool head_relation_var = false;
  Symbol head_peer;             // invalid when the head peer is a var
  bool head_peer_var = false;
  /// Distinct positive body atom relation symbols (constant names only).
  std::vector<Symbol> body_relations;
  /// Some positive body atom names its relation with a variable: the
  /// body can read *any* relation, so delta filtering must assume a hit.
  bool body_relation_var = false;
  /// Distinct negated body atom relation symbols (constant names only).
  std::vector<Symbol> negated_relations;
  bool negated_relation_var = false;
  /// Some body atom names its peer with a variable: remoteness (and
  /// hence delegation) is decided per binding at run time.
  bool body_peer_var = false;
  /// Distinct constant body peer symbols. The rule can delegate iff
  /// body_peer_var or any of these differs from the evaluating peer.
  std::vector<Symbol> body_peers;

  bool BodyReads(Symbol relation) const {
    if (body_relation_var) return true;
    for (Symbol s : body_relations) {
      if (s == relation) return true;
    }
    return false;
  }
  bool HeadCanWrite(Symbol relation) const {
    return head_relation_var || head_relation == relation;
  }
  bool CanDelegate(Symbol self_peer) const {
    if (body_peer_var) return true;
    for (Symbol s : body_peers) {
      if (!(s == self_peer)) return true;
    }
    return false;
  }
};

/// Derives the static info from the rule AST. Used by CompileRule and
/// directly by the engine for the interpreter (oracle) path, so both
/// execution engines share one definition of "what can this rule touch".
PlanStaticInfo ComputeStaticInfo(const Rule& rule);

/// An alternative body execution order for one Δ-restricted position:
/// the Δ atom runs first (so the iteration's work is proportional to
/// |Δ|, with every later atom index-probed through the bindings the Δ
/// tuple provides) and the remaining atoms follow in their original
/// relative order (so negated atoms still run after their binders).
/// Only compiled when join order carries no semantics — every body atom
/// names its relation and peer with constants and all atoms live at one
/// common peer, so no delegation split can depend on the order. The
/// evaluator additionally checks at run time that the common peer *is*
/// the evaluating peer; otherwise atom 0 delegates under the original
/// order as always.
struct DeltaVariant {
  bool valid = false;
  std::vector<uint16_t> order;  // variant position -> original body index
  std::vector<PlanAtom> atoms;  // recompiled (bind/check/access) for order
};

/// A fully compiled rule.
struct RulePlan {
  Rule rule;  // owned source; delegation residuals substitute from it
  uint64_t rule_hash = 0;  // rule.Hash(), precomputed
  PlanHead head;
  std::vector<PlanAtom> atoms;
  uint16_t num_slots = 0;
  std::vector<std::string> slot_vars;  // slot -> variable name
  PlanStaticInfo info;
  /// Δ-first body orders, one per body position (invalid entries for
  /// negated positions and non-rotatable bodies). Indexed by the
  /// delta_pos the fixpoint loop evaluates. For demand plans the
  /// positions (and orders) range over the extended body including the
  /// synthetic demand atom at index 0.
  std::vector<DeltaVariant> delta_variants;
  /// The single constant peer every body atom names, when rotatable.
  Symbol common_body_peer;

  /// Binding-pattern (adorned) variants, DESIGN.md §10. `adorned` marks
  /// a plan compiled under a head binding pattern; `adornment` is the
  /// bitmask of bound head argument positions (all of them for the
  /// head-bound flavor). `has_demand_atom` marks the demand flavor:
  /// atoms[0] is a synthetic atom matched against the demand set, whose
  /// terms mirror the head's bound positions.
  bool adorned = false;
  uint64_t adornment = 0;
  bool has_demand_atom = false;

  /// Human-readable plan listing (slots, per-atom ops and access path);
  /// for tests and diagnostics.
  std::string DebugString() const;
};

/// Invokes `fn(Symbol relation, size_t column)` for every compiled
/// index access path of `plan` — the natural atom order plus every
/// valid Δ-first variant — whose atom names its relation with a
/// constant. The parallel round coordinator (DESIGN.md §8) pre-builds
/// exactly these relation indexes before workers probe them
/// concurrently, because the concurrent read path never builds. A
/// variant's leading atom probes the Δ-set rather than the relation;
/// pre-building its relation index anyway is harmless (the same
/// (relation, column) pair typically also occurs in another order).
template <typename Fn>
void ForEachIndexUse(const RulePlan& plan, Fn&& fn) {
  auto visit = [&](const std::vector<PlanAtom>& atoms) {
    for (const PlanAtom& a : atoms) {
      if (a.negated || a.index_column < 0 || !a.relation.is_const) continue;
      fn(a.relation.sym, static_cast<size_t>(a.index_column));
    }
  };
  visit(plan.atoms);
  for (const DeltaVariant& v : plan.delta_variants) {
    if (v.valid) visit(v.atoms);
  }
}

/// Compiles `rule` into an executable plan. Never fails: rules that
/// safety analysis would reject compile to plans whose dead branches
/// mirror the interpreter's runtime checks (unbound head -> no
/// emission, never-ground negation -> logged dead branch).
RulePlan CompileRule(const Rule& rule);

/// Compiles `rule` with every head variable (arguments, relation, and
/// peer positions) pre-seeded as bound: the caller supplies their
/// values before executing the body, so first occurrences in the body
/// compile to checks and drive index probes instead of binding. This is
/// the DRed re-derive existence check as a compiled plan — seed the
/// slots from the target fact, then ask whether any body match reaches
/// the end. No Δ variants are compiled (existence checks run the
/// natural order).
RulePlan CompileRuleHeadBound(const Rule& rule);

/// The synthetic relation name of a demand plan's seed atom. Never
/// resolved against a catalog — the demand evaluator routes extended
/// atom index 0 to its demand set — but it shows up in DebugString,
/// and its symbol is interned exactly once, up front (query.cc), so
/// per-query symbol-table growth stays zero.
inline constexpr char kDemandAtomName[] = "__demand__";

/// Compiles the demand (magic-set) variant of `rule` for a binding
/// pattern: `adornment` bit j set means head argument position j is
/// bound by the demand. The plan's atom list is the rule body prefixed
/// with a synthetic demand atom whose terms mirror the head's bound
/// positions — executing it against the demand set seeds exactly the
/// bindings the adornment promises (head constants at bound positions
/// filter demands that cannot match). Δ-first variants cover the
/// extended body; for a Δ position in the real body the demand atom is
/// moved *last*, so it is an index probe through the bindings the Δ
/// tuple provides rather than a scan of all outstanding demands.
RulePlan CompileRuleDemand(const Rule& rule, uint64_t adornment);

/// Applies the current slot bindings to `src` (the source atom the
/// compiled `rel`/`peer`/`terms` were built from): bound slots become
/// constants (string bindings in sym position become names), unbound
/// variables stay. Returns false when a sym-position slot holds a
/// non-string value — such a residual cannot name a relation or peer.
/// Used for delegation residuals; equivalent to SubstituteAtom on the
/// interpreter path.
bool SubstituteCompiled(const PlanSym& rel, const PlanSym& peer,
                        const std::vector<PlanTerm>& terms, const Atom& src,
                        const Value* const* slots, Atom* out);

/// Unifies `rule`'s head with a concrete fact, accumulating variable
/// bindings into `binding` (relation/peer variables bind to string
/// values). Returns false when they cannot unify (different constant
/// relation/peer/argument, arity mismatch, or one variable forced to
/// two different values). On success the binding seeds a body
/// evaluation restricted to derivations of exactly `fact` — the
/// delete/re-derive existence check of incremental maintenance.
bool UnifyHeadWithFact(const Rule& rule, const Fact& fact,
                       Binding* binding);

}  // namespace wdl

#endif  // WDL_ENGINE_PLAN_H_
