#ifndef WDL_ACL_DELEGATION_GATE_H_
#define WDL_ACL_DELEGATION_GATE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "base/result.h"
#include "engine/delegation.h"

namespace wdl {

/// The paper's demonstrated model for control of delegation (§3):
/// "each delegation sent by an untrusted peer will be pending in a
/// queue until the user explicitly accepts it via the Web interface.
/// By default, all peers except the sigmod peer will be considered
/// untrusted."
///
/// The gate screens arriving delegations: trusted origins pass through,
/// untrusted ones are queued for an explicit Approve/Reject decision.
/// Every decision is recorded in an audit log.
class DelegationGate {
 public:
  enum class Decision : uint8_t {
    kAccepted = 0,  // trusted origin: install immediately
    kPending = 1,   // queued, awaiting explicit approval
    kRejected = 2,  // origin is blocked
  };

  struct AuditEntry {
    std::string origin_peer;
    uint64_t delegation_key;
    Decision decision;
    std::string rule_text;
  };

  DelegationGate() = default;

  /// Marks `peer` as trusted: its delegations install without approval.
  void TrustPeer(const std::string& peer) {
    trusted_.insert(peer);
    blocked_.erase(peer);
  }
  void UntrustPeer(const std::string& peer) { trusted_.erase(peer); }
  /// Blocks `peer`: its delegations are rejected outright.
  void BlockPeer(const std::string& peer) {
    blocked_.insert(peer);
    trusted_.erase(peer);
  }
  bool IsTrusted(const std::string& peer) const {
    return trusted_.count(peer) > 0;
  }
  bool IsBlocked(const std::string& peer) const {
    return blocked_.count(peer) > 0;
  }

  /// Screens an arriving delegation. kPending stores it in the queue.
  Decision OnArrival(const Delegation& delegation);

  /// Handles a retraction for a delegation that may still be pending;
  /// returns true when a queued entry was removed (nothing to retract
  /// from the engine in that case).
  bool OnRetraction(uint64_t delegation_key);

  /// Pending delegations, oldest first — the paper's Figure 3
  /// notification list.
  std::vector<const Delegation*> Pending() const;
  size_t pending_count() const { return pending_.size(); }

  /// Pops and returns the pending delegation so the caller can install
  /// it. NotFound when the key is not pending.
  Result<Delegation> Approve(uint64_t delegation_key);

  /// Drops the pending delegation without installing.
  Status Reject(uint64_t delegation_key);

  /// Re-enqueues a pending delegation from a durability snapshot —
  /// exactly the queue entry OnArrival would have created, but without
  /// an audit entry (the original arrival was already audited in the
  /// crashed process; recovery is not a new decision). Idempotent by
  /// key.
  void RestorePending(const Delegation& delegation);

  const std::vector<AuditEntry>& audit_log() const { return audit_log_; }

  /// Human-readable queue rendering for the textual UI.
  std::string RenderPending() const;

 private:
  std::set<std::string> trusted_;
  std::set<std::string> blocked_;
  // Keyed by Delegation::Key(); std::map keeps deterministic order,
  // arrival order preserved separately.
  std::map<uint64_t, Delegation> pending_;
  std::vector<uint64_t> pending_order_;
  std::vector<AuditEntry> audit_log_;
};

const char* DecisionToString(DelegationGate::Decision decision);

}  // namespace wdl

#endif  // WDL_ACL_DELEGATION_GATE_H_
