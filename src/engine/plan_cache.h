#ifndef WDL_ENGINE_PLAN_CACHE_H_
#define WDL_ENGINE_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "ast/rule.h"
#include "engine/plan.h"

namespace wdl {

/// α-invariant content hash of `rule`: variables are renamed to their
/// first-occurrence index (head first, then body left to right, term by
/// term), so two rules that differ only in variable names hash equal.
/// Constants — including peer and relation names — hash by content, so
/// per-peer rule instantiations ("feed@alice(...)") remain distinct.
uint64_t CanonicalRuleHash(const Rule& rule);

/// True when `a` and `b` are equal up to a bijective renaming of their
/// variables (argument, relation, and peer positions alike).
bool AlphaEquivalent(const Rule& a, const Rule& b);

/// Process-global compiled-plan cache, shared by every RuleEvaluator in
/// the process (DESIGN.md §9). Plans are peer-agnostic and immutable
/// once compiled (see plan.h), so the identical rule set installed at
/// 100k peers compiles exactly once; each evaluator keeps a strong
/// reference for the rules it has installed, and this cache holds only
/// weak references — a plan's storage dies with its last evaluator, so
/// churning ad-hoc rules (scratch queries, delegation residuals) do not
/// accumulate for the process lifetime.
///
/// Keyed by CanonicalRuleHash with per-entry AlphaEquivalent
/// verification, so α-renamed copies of one rule (delegation residuals
/// regenerated with fresh variable names, user-written variants) share
/// one plan. The shared plan's owned `rule` is the first-compiled
/// variant; delegation residuals substitute from it, so residual
/// variable names are canonical-per-process rather than
/// per-installing-peer — semantically identical, and deterministic for
/// a deterministic installation order.
///
/// Thread-safety follows the global Symbol table's pattern (base/
/// symbol.h): a shared_mutex with shared-locked lookups and an
/// exclusive-locked first-time compile; evaluators call Acquire once
/// per installed rule and then run lock-free off their local strong
/// reference.
class SharedPlanCache {
 public:
  struct Stats {
    uint64_t compiles = 0;  // distinct rules compiled process-wide
    uint64_t hits = 0;      // Acquire calls served by an existing plan
  };

  static SharedPlanCache& Instance();

  /// The compiled plan for `rule`, compiling on first acquisition.
  /// α-equivalent rules return the same plan object.
  std::shared_ptr<const RulePlan> Acquire(const Rule& rule);

  /// The head-bound (fully adorned) plan for `rule`: every head
  /// variable pre-seeded bound, for DRed existence checks. Cached
  /// alongside the natural plans but never aliased with them.
  std::shared_ptr<const RulePlan> AcquireHeadBound(const Rule& rule);

  /// The demand (magic-set) plan for `rule` under a binding pattern:
  /// `adornment` bit j marks head argument position j as bound by the
  /// demand. Keyed by (rule, adornment), so each binding pattern of a
  /// hot rule compiles once process-wide across queries and peers.
  std::shared_ptr<const RulePlan> AcquireDemand(const Rule& rule,
                                                uint64_t adornment);

  /// Global compile/hit tallies (the "one compile per distinct rule at
  /// N peers" acceptance instrument).
  Stats stats() const;

  /// Number of live (non-expired) cached plans. Expired weak entries
  /// are pruned opportunistically on the exclusive-locked miss path.
  size_t LiveCountForTesting() const;

  void ResetStatsForTesting();

 private:
  // The three compiled flavors of a rule live in one map but never
  // alias: the flavor is mixed into the bucket key and re-verified on
  // the plan itself at match time.
  enum class Flavor : uint8_t { kNatural, kHeadBound, kDemand };

  SharedPlanCache() = default;

  std::shared_ptr<const RulePlan> AcquireVariant(const Rule& rule,
                                                 Flavor flavor,
                                                 uint64_t adornment);

  // Full expired-entry sweeps run every this-many insertions, bounding
  // the map's tombstone growth under plan churn.
  static constexpr size_t kSweepInterval = 1024;

  mutable std::shared_mutex mu_;
  std::unordered_map<uint64_t, std::vector<std::weak_ptr<const RulePlan>>>
      entries_;
  size_t inserts_since_sweep_ = 0;  // guarded by mu_ (exclusive)
  // Relaxed atomics: tallies only, never synchronize anything.
  std::atomic<uint64_t> compiles_{0};
  std::atomic<uint64_t> hits_{0};
};

}  // namespace wdl

#endif  // WDL_ENGINE_PLAN_CACHE_H_
