#include "durability/snapshot.h"

#include "durability/wal.h"
#include "net/wire.h"

namespace wdl {

namespace {

constexpr char kMagic[4] = {'W', 'D', 'L', 'S'};
constexpr uint16_t kFormatVersion = 1;

void PutDecl(WireEncoder* enc, const RelationDecl& decl) {
  enc->PutString(decl.relation);
  enc->PutString(decl.peer);
  enc->PutU8(static_cast<uint8_t>(decl.kind));
  enc->PutU32(static_cast<uint32_t>(decl.columns.size()));
  for (const ColumnSpec& col : decl.columns) {
    enc->PutString(col.name);
    enc->PutU8(static_cast<uint8_t>(col.type));
  }
}

Result<RelationDecl> GetDecl(WireDecoder* dec) {
  RelationDecl decl;
  WDL_ASSIGN_OR_RETURN(decl.relation, dec->GetString());
  WDL_ASSIGN_OR_RETURN(decl.peer, dec->GetString());
  WDL_ASSIGN_OR_RETURN(uint8_t kind, dec->GetU8());
  decl.kind = static_cast<RelationKind>(kind);
  WDL_ASSIGN_OR_RETURN(uint32_t ncols, dec->GetU32());
  for (uint32_t i = 0; i < ncols; ++i) {
    ColumnSpec col;
    WDL_ASSIGN_OR_RETURN(col.name, dec->GetString());
    WDL_ASSIGN_OR_RETURN(uint8_t type, dec->GetU8());
    col.type = static_cast<ValueKind>(type);
    decl.columns.push_back(std::move(col));
  }
  return decl;
}

void PutTuples(WireEncoder* enc, const std::vector<Tuple>& tuples) {
  enc->PutU32(static_cast<uint32_t>(tuples.size()));
  for (const Tuple& t : tuples) enc->PutTuple(t);
}

Result<std::vector<Tuple>> GetTuples(WireDecoder* dec) {
  WDL_ASSIGN_OR_RETURN(uint32_t n, dec->GetU32());
  std::vector<Tuple> out;
  // No reserve by count: a corrupt count fails at the first missing
  // element instead of sizing an allocation (the wire-decoder rule).
  for (uint32_t i = 0; i < n; ++i) {
    WDL_ASSIGN_OR_RETURN(Tuple t, dec->GetTuple());
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace

std::string EncodeSnapshot(const SnapshotData& snap) {
  WireEncoder enc;
  enc.PutString(snap.peer);
  enc.PutU64(snap.next_rule_id);
  enc.PutU64(snap.next_seq);
  enc.PutU32(static_cast<uint32_t>(snap.known_peers.size()));
  for (const std::string& p : snap.known_peers) enc.PutString(p);

  enc.PutU32(static_cast<uint32_t>(snap.relations.size()));
  for (const SnapshotData::RelationState& rs : snap.relations) {
    PutDecl(&enc, rs.decl);
    PutTuples(&enc, rs.tuples);
  }

  enc.PutU32(static_cast<uint32_t>(snap.rules.size()));
  for (const SnapshotData::RuleState& r : snap.rules) {
    enc.PutU64(r.id);
    enc.PutString(r.origin_peer);
    enc.PutU64(r.delegation_key);
    enc.PutRule(r.rule);
  }

  enc.PutU32(static_cast<uint32_t>(snap.slices.size()));
  for (const SnapshotData::StreamState& ss : snap.slices) {
    enc.PutString(ss.relation);
    enc.PutString(ss.sender);
    enc.PutU64(ss.version);
    PutTuples(&enc, ss.tuples);
  }

  enc.PutU32(static_cast<uint32_t>(snap.sent.size()));
  for (const SnapshotData::SentState& s : snap.sent) {
    enc.PutString(s.target_peer);
    enc.PutString(s.relation);
    enc.PutU64(s.version);
    PutTuples(&enc, s.tuples);
  }

  enc.PutU32(static_cast<uint32_t>(snap.sent_delegations.size()));
  for (const Delegation& d : snap.sent_delegations) enc.PutDelegation(d);
  enc.PutU32(static_cast<uint32_t>(snap.pending_delegations.size()));
  for (const Delegation& d : snap.pending_delegations) enc.PutDelegation(d);

  std::string payload = enc.TakeBuffer();
  std::string out;
  out.reserve(payload.size() + 14);
  out.append(kMagic, 4);
  WireEncoder header;
  header.PutU16(kFormatVersion);
  header.PutU32(Crc32(payload));
  header.PutU32(static_cast<uint32_t>(payload.size()));
  out += header.TakeBuffer();
  out += payload;
  return out;
}

Result<SnapshotData> DecodeSnapshot(std::string_view bytes) {
  if (bytes.size() < 14 || std::string_view(bytes.data(), 4) !=
                               std::string_view(kMagic, 4)) {
    return Status::InvalidArgument("not a WDLS snapshot");
  }
  WireDecoder header(bytes.substr(4, 10));
  WDL_ASSIGN_OR_RETURN(uint16_t version, header.GetU16());
  if (version != kFormatVersion) {
    return Status::InvalidArgument("unsupported snapshot format version " +
                                   std::to_string(version));
  }
  WDL_ASSIGN_OR_RETURN(uint32_t crc, header.GetU32());
  WDL_ASSIGN_OR_RETURN(uint32_t length, header.GetU32());
  std::string_view payload = bytes.substr(14);
  if (payload.size() != length) {
    return Status::InvalidArgument("snapshot payload length mismatch");
  }
  if (Crc32(payload) != crc) {
    return Status::InvalidArgument("snapshot CRC mismatch");
  }

  WireDecoder dec(payload);
  SnapshotData snap;
  WDL_ASSIGN_OR_RETURN(snap.peer, dec.GetString());
  WDL_ASSIGN_OR_RETURN(snap.next_rule_id, dec.GetU64());
  WDL_ASSIGN_OR_RETURN(snap.next_seq, dec.GetU64());
  WDL_ASSIGN_OR_RETURN(uint32_t npeers, dec.GetU32());
  for (uint32_t i = 0; i < npeers; ++i) {
    WDL_ASSIGN_OR_RETURN(std::string p, dec.GetString());
    snap.known_peers.push_back(std::move(p));
  }

  WDL_ASSIGN_OR_RETURN(uint32_t nrels, dec.GetU32());
  for (uint32_t i = 0; i < nrels; ++i) {
    SnapshotData::RelationState rs;
    WDL_ASSIGN_OR_RETURN(rs.decl, GetDecl(&dec));
    WDL_ASSIGN_OR_RETURN(rs.tuples, GetTuples(&dec));
    snap.relations.push_back(std::move(rs));
  }

  WDL_ASSIGN_OR_RETURN(uint32_t nrules, dec.GetU32());
  for (uint32_t i = 0; i < nrules; ++i) {
    SnapshotData::RuleState r;
    WDL_ASSIGN_OR_RETURN(r.id, dec.GetU64());
    WDL_ASSIGN_OR_RETURN(r.origin_peer, dec.GetString());
    WDL_ASSIGN_OR_RETURN(r.delegation_key, dec.GetU64());
    WDL_ASSIGN_OR_RETURN(r.rule, dec.GetRule());
    snap.rules.push_back(std::move(r));
  }

  WDL_ASSIGN_OR_RETURN(uint32_t nslices, dec.GetU32());
  for (uint32_t i = 0; i < nslices; ++i) {
    SnapshotData::StreamState ss;
    WDL_ASSIGN_OR_RETURN(ss.relation, dec.GetString());
    WDL_ASSIGN_OR_RETURN(ss.sender, dec.GetString());
    WDL_ASSIGN_OR_RETURN(ss.version, dec.GetU64());
    WDL_ASSIGN_OR_RETURN(ss.tuples, GetTuples(&dec));
    snap.slices.push_back(std::move(ss));
  }

  WDL_ASSIGN_OR_RETURN(uint32_t nsent, dec.GetU32());
  for (uint32_t i = 0; i < nsent; ++i) {
    SnapshotData::SentState s;
    WDL_ASSIGN_OR_RETURN(s.target_peer, dec.GetString());
    WDL_ASSIGN_OR_RETURN(s.relation, dec.GetString());
    WDL_ASSIGN_OR_RETURN(s.version, dec.GetU64());
    WDL_ASSIGN_OR_RETURN(s.tuples, GetTuples(&dec));
    snap.sent.push_back(std::move(s));
  }

  WDL_ASSIGN_OR_RETURN(uint32_t nsentdel, dec.GetU32());
  for (uint32_t i = 0; i < nsentdel; ++i) {
    WDL_ASSIGN_OR_RETURN(Delegation d, dec.GetDelegation());
    snap.sent_delegations.push_back(std::move(d));
  }
  WDL_ASSIGN_OR_RETURN(uint32_t npending, dec.GetU32());
  for (uint32_t i = 0; i < npending; ++i) {
    WDL_ASSIGN_OR_RETURN(Delegation d, dec.GetDelegation());
    snap.pending_delegations.push_back(std::move(d));
  }
  if (!dec.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after snapshot payload");
  }
  return snap;
}

}  // namespace wdl
