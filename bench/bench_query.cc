// Experiment S4b — ad-hoc query cost (the §4 Query tab).
//
// Measures end-to-end ad-hoc queries: local single-relation scans,
// local joins, and distributed queries whose body crosses to another
// peer (one delegation install + teardown per query).
//
// Expected shape: local queries scale with data size; a distributed
// query adds a constant delegation round-trip (install + retract), so
// the local/distributed gap shrinks relatively as data grows.

#include <benchmark/benchmark.h>

#include "runtime/query.h"

namespace wdl {
namespace {

Value I(int64_t v) { return Value::Int(v); }

void Setup(System* system, int facts) {
  Peer* a = system->CreatePeer("a");
  Peer* b = system->CreatePeer("b");
  a->gate().TrustPeer("b");
  b->gate().TrustPeer("a");
  (void)a->LoadProgramText("collection ext data@a(k: int, v: int);");
  (void)b->LoadProgramText("collection ext data@b(k: int, v: int);");
  for (int64_t i = 0; i < facts; ++i) {
    (void)a->Insert(Fact("data", "a", {I(i), I(i * 2)}));
    (void)b->Insert(Fact("data", "b", {I(i), I(i * 3)}));
  }
  (void)system->RunUntilQuiescent(10000);
}

void BM_Query_LocalScan(benchmark::State& state) {
  System system;
  Setup(&system, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Result<QueryResult> r = RunQuery(&system, "a", "data@a($k, $v)");
    benchmark::DoNotOptimize(r);
    state.counters["rows"] =
        r.ok() ? static_cast<double>(r->rows.size()) : -1;
  }
}
BENCHMARK(BM_Query_LocalScan)->Arg(100)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

void BM_Query_LocalJoin(benchmark::State& state) {
  System system;
  Setup(&system, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Result<QueryResult> r =
        RunQuery(&system, "a", "data@a($k, $v), data@a($v, $w)");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Query_LocalJoin)->Arg(100)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

void BM_Query_Distributed(benchmark::State& state) {
  System system;
  Setup(&system, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Result<QueryResult> r =
        RunQuery(&system, "a", "data@a($k, $v), data@b($k, $w)");
    benchmark::DoNotOptimize(r);
    state.counters["rows"] =
        r.ok() ? static_cast<double>(r->rows.size()) : -1;
    state.counters["rounds"] = r.ok() ? r->rounds : -1;
  }
}
BENCHMARK(BM_Query_Distributed)->Arg(100)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace wdl

BENCHMARK_MAIN();
