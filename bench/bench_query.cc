// Experiment S4b — ad-hoc query cost (the §4 Query tab).
//
// Measures end-to-end ad-hoc queries: local single-relation scans,
// local joins, distributed queries whose body crosses to another peer
// (one delegation install + teardown per query), and bound point
// lookups against a recursive view in both evaluation modes — the
// demand-driven magic-set path vs the full-fixpoint scratch-rule path
// (DESIGN.md §10).
//
// Expected shape: local queries scale with data size; a distributed
// query adds a constant delegation round-trip (install + retract), so
// the local/distributed gap shrinks relatively as data grows. Bound
// point lookups under demand evaluation touch O(relevant) tuples and
// stay flat as the view grows; the full-fixpoint path scales with the
// view size.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/query.h"

namespace wdl {
namespace {

Value I(int64_t v) { return Value::Int(v); }

void Setup(System* system, int facts) {
  Peer* a = system->CreatePeer("a");
  Peer* b = system->CreatePeer("b");
  a->gate().TrustPeer("b");
  b->gate().TrustPeer("a");
  (void)a->LoadProgramText("collection ext data@a(k: int, v: int);");
  (void)b->LoadProgramText("collection ext data@b(k: int, v: int);");
  for (int64_t i = 0; i < facts; ++i) {
    (void)a->Insert(Fact("data", "a", {I(i), I(i * 2)}));
    (void)b->Insert(Fact("data", "b", {I(i), I(i * 3)}));
  }
  (void)system->RunUntilQuiescent(10000);
}

void BM_Query_LocalScan(benchmark::State& state) {
  System system;
  Setup(&system, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Result<QueryResult> r = RunQuery(&system, "a", "data@a($k, $v)");
    benchmark::DoNotOptimize(r);
    state.counters["rows"] =
        r.ok() ? static_cast<double>(r->rows.size()) : -1;
  }
}
BENCHMARK(BM_Query_LocalScan)->Arg(100)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

void BM_Query_LocalJoin(benchmark::State& state) {
  System system;
  Setup(&system, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Result<QueryResult> r =
        RunQuery(&system, "a", "data@a($k, $v), data@a($v, $w)");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Query_LocalJoin)->Arg(100)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

void BM_Query_Distributed(benchmark::State& state) {
  System system;
  Setup(&system, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Result<QueryResult> r =
        RunQuery(&system, "a", "data@a($k, $v), data@b($k, $w)");
    benchmark::DoNotOptimize(r);
    state.counters["rows"] =
        r.ok() ? static_cast<double>(r->rows.size()) : -1;
    state.counters["rounds"] = r.ok() ? r->rounds : -1;
  }
}
BENCHMARK(BM_Query_Distributed)->Arg(100)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

// --- bound point lookups on a recursive view -------------------------
//
// Fixture: K disjoint chains of kChainLen edges each; the transitive
// closure `path` holds K * kChainLen*(kChainLen+1)/2 tuples. The arg
// is the target closure size (10k / 100k / 1M). Built once per size
// and shared across both mode variants: queries tear down completely
// (oracle-tested), so the system is back at its quiescent baseline
// between iterations.

constexpr int64_t kChainLen = 5;  // edges per chain -> 15 path tuples
constexpr int64_t kPathPerChain = kChainLen * (kChainLen + 1) / 2;

System* ChainFixture(int64_t path_tuples) {
  static auto* cache = new std::map<int64_t, std::unique_ptr<System>>();
  auto it = cache->find(path_tuples);
  if (it != cache->end()) return it->second.get();

  auto system = std::make_unique<System>();
  Peer* a = system->CreatePeer("a");
  (void)a->LoadProgramText(R"(
    collection ext edge@a(x: int, y: int);
    collection int path@a(x: int, y: int);
    rule path@a($x, $y) :- edge@a($x, $y);
    rule path@a($x, $z) :- edge@a($x, $y), path@a($y, $z);
  )");
  int64_t chains = path_tuples / kPathPerChain;
  for (int64_t c = 0; c < chains; ++c) {
    int64_t base = c * (kChainLen + 1);  // node ids disjoint per chain
    for (int64_t i = 0; i < kChainLen; ++i) {
      (void)a->Insert(Fact("edge", "a", {I(base + i), I(base + i + 1)}));
    }
  }
  (void)system->RunUntilQuiescent(100000);
  System* out = system.get();
  (*cache)[path_tuples] = std::move(system);
  return out;
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(p / 100.0 * (sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

void BM_Query_BoundPoint(benchmark::State& state, bool demand) {
  System* system = ChainFixture(state.range(0));
  // Probe the head of a mid-fixture chain: 5 reachable nodes out of
  // the whole closure, so a demand evaluation has O(chain) work.
  int64_t chains = state.range(0) / kPathPerChain;
  std::string body =
      "path@a(" + std::to_string((chains / 2) * (kChainLen + 1)) + ", $y)";
  QueryOptions options;
  options.use_demand_evaluation = demand;
  options.max_rounds = 100000;

  // One untimed warm-up query: the first lookup after fixture build
  // pays one-time per-column index construction over the whole view
  // (O(n), both modes); steady-state serving latency is the metric.
  (void)RunQuery(system, "a", body, options);

  // Per-iteration wall times, for tail latency: Google Benchmark's
  // aggregate percentiles need --benchmark_repetitions, which reruns
  // the whole fixture; recording laps inside the loop gets p50/p95/p99
  // from a single run instead. bench_compare.py --latency reads them.
  std::vector<double> laps_ns;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    Result<QueryResult> r = RunQuery(system, "a", body, options);
    auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(r);
    laps_ns.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count());
    state.counters["rows"] =
        r.ok() ? static_cast<double>(r->rows.size()) : -1;
    state.counters["demand_path"] = r.ok() && r->demand_path ? 1 : 0;
    state.counters["tuples_examined"] =
        r.ok() ? static_cast<double>(r->tuples_examined) : -1;
  }
  std::sort(laps_ns.begin(), laps_ns.end());
  state.counters["p50_ns"] = Percentile(laps_ns, 50);
  state.counters["p95_ns"] = Percentile(laps_ns, 95);
  state.counters["p99_ns"] = Percentile(laps_ns, 99);
}
BENCHMARK_CAPTURE(BM_Query_BoundPoint, demand, true)
    ->Arg(10000)->Arg(100000)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_Query_BoundPoint, full, false)
    ->Arg(10000)->Arg(100000)->Unit(benchmark::kMicrosecond);

}  // namespace wdl

int main(int argc, char** argv) {
  // The 1M-tuple closure costs minutes of fixture build; keep it out
  // of routine smoke runs, in reach of the manual baseline job
  // (WDL_BENCH_BIG=1, same knob as bench_topology's footprint point).
  if (std::getenv("WDL_BENCH_BIG") != nullptr) {
    benchmark::RegisterBenchmark(
        "BM_Query_BoundPoint/demand", [](benchmark::State& s) {
          wdl::BM_Query_BoundPoint(s, true);
        })->Arg(1000000)->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        "BM_Query_BoundPoint/full", [](benchmark::State& s) {
          wdl::BM_Query_BoundPoint(s, false);
        })->Arg(1000000)->Unit(benchmark::kMicrosecond);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
