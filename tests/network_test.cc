#include "net/network.h"

#include <gtest/gtest.h>

namespace wdl {
namespace {

Envelope Env(const std::string& from, const std::string& to,
             const std::string& text) {
  Envelope e;
  e.from = from;
  e.to = to;
  e.message = Message::Hello(text);
  return e;
}

TEST(NetworkTest, DeliversAfterLatency) {
  SimulatedNetwork net(1, LinkConfig{.latency = 0.5});
  ASSERT_TRUE(net.Submit(Env("a", "b", "m1"), 0.0).ok());
  EXPECT_TRUE(net.HasInFlight());
  EXPECT_TRUE(net.DeliverDue(0.4).empty());
  std::vector<Envelope> due = net.DeliverDue(0.5);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].message.text, "m1");
  EXPECT_FALSE(net.HasInFlight());
}

TEST(NetworkTest, DeliveryOrderIsTimeThenSubmission) {
  SimulatedNetwork net(1, LinkConfig{.latency = 1.0});
  net.SetLink("a", "b", LinkConfig{.latency = 2.0});
  ASSERT_TRUE(net.Submit(Env("a", "b", "slow"), 0.0).ok());
  ASSERT_TRUE(net.Submit(Env("a", "c", "fast"), 0.0).ok());
  std::vector<Envelope> due = net.DeliverDue(5.0);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].message.text, "fast");
  EXPECT_EQ(due[1].message.text, "slow");
}

TEST(NetworkTest, SameTimeTieBrokenBySubmissionOrder) {
  SimulatedNetwork net(1, LinkConfig{.latency = 0.5});
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(net.Submit(Env("a", "b", std::to_string(i)), 0.0).ok());
  }
  std::vector<Envelope> due = net.DeliverDue(1.0);
  ASSERT_EQ(due.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(due[i].message.text, std::to_string(i));
  }
}

TEST(NetworkTest, DropProbabilityLosesRoughlyThatFraction) {
  SimulatedNetwork net(99, LinkConfig{.latency = 0.1,
                                      .drop_probability = 0.3});
  const int kMessages = 2000;
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_TRUE(net.Submit(Env("a", "b", "m"), 0.0).ok());
  }
  size_t delivered = net.DeliverDue(10.0).size();
  EXPECT_EQ(delivered + net.stats().messages_dropped,
            static_cast<size_t>(kMessages));
  double drop_rate =
      static_cast<double>(net.stats().messages_dropped) / kMessages;
  EXPECT_NEAR(drop_rate, 0.3, 0.05);
}

TEST(NetworkTest, DeterministicAcrossRunsWithSameSeed) {
  auto run = [](uint64_t seed) {
    SimulatedNetwork net(seed, LinkConfig{.latency = 0.5, .jitter = 1.0,
                                          .drop_probability = 0.2});
    std::vector<std::string> order;
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE(net.Submit(Env("a", "b", std::to_string(i)),
                             static_cast<double>(i) * 0.1).ok());
    }
    for (const Envelope& e : net.DeliverDue(100.0)) {
      order.push_back(e.message.text);
    }
    return order;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // and the seed actually matters
}

TEST(NetworkTest, PartitionDropsBothDirections) {
  SimulatedNetwork net(1);
  net.SetPartitioned("a", "b", true);
  ASSERT_TRUE(net.Submit(Env("a", "b", "x"), 0.0).ok());
  ASSERT_TRUE(net.Submit(Env("b", "a", "y"), 0.0).ok());
  ASSERT_TRUE(net.Submit(Env("a", "c", "z"), 0.0).ok());
  EXPECT_EQ(net.stats().messages_partitioned, 2u);
  EXPECT_EQ(net.DeliverDue(10.0).size(), 1u);
}

TEST(NetworkTest, HealingRestoresDelivery) {
  SimulatedNetwork net(1);
  net.SetPartitioned("a", "b", true);
  net.SetPartitioned("a", "b", false);
  ASSERT_TRUE(net.Submit(Env("a", "b", "x"), 0.0).ok());
  EXPECT_EQ(net.DeliverDue(10.0).size(), 1u);
}

TEST(NetworkTest, BytesAccountedFromRealEncoding) {
  SimulatedNetwork net(1);
  Envelope e = Env("a", "b", "hello");
  ASSERT_TRUE(net.Submit(e, 0.0).ok());
  // Byte count equals the codec's output size exactly.
  EXPECT_GT(net.stats().bytes_sent, 0u);
  EXPECT_LT(net.stats().bytes_sent, 100u);
}

TEST(NetworkTest, EdgeCountsTrackTopology) {
  SimulatedNetwork net(1);
  ASSERT_TRUE(net.Submit(Env("a", "b", "1"), 0.0).ok());
  ASSERT_TRUE(net.Submit(Env("a", "b", "2"), 0.0).ok());
  ASSERT_TRUE(net.Submit(Env("b", "a", "3"), 0.0).ok());
  auto counts = net.edge_message_counts();
  EXPECT_EQ((counts[{"a", "b"}]), 2u);
  EXPECT_EQ((counts[{"b", "a"}]), 1u);
}

TEST(NetworkTest, DuplicatedFramesAreAccountedSeparately) {
  // With p=1 every frame is delivered twice. The sender only shipped
  // each frame once, so bytes_sent must count it once; the injected
  // copies land byte-for-byte in bytes_duplicated instead.
  SimulatedNetwork net(1, LinkConfig{.latency = 0.1,
                                     .duplicate_probability = 1.0});
  const int kMessages = 5;
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_TRUE(net.Submit(Env("a", "b", "payload"), 0.0).ok());
  }
  EXPECT_EQ(net.DeliverDue(10.0).size(), 2u * kMessages);
  NetworkStats s = net.stats();
  EXPECT_EQ(s.messages_duplicated, static_cast<uint64_t>(kMessages));
  EXPECT_EQ(s.bytes_sent % kMessages, 0u);  // identical frames, each once
  EXPECT_EQ(s.bytes_duplicated, s.bytes_sent);
}

TEST(NetworkTest, DefaultLinkShapesUnconfiguredEdges) {
  SimulatedNetwork net(1);
  // Reshaping the default is O(1) and reaches every edge that has no
  // SetLink override — the scale path (no all-pairs loop).
  net.SetDefaultLink(LinkConfig{.latency = 3.0});
  net.SetLink("a", "c", LinkConfig{.latency = 0.5});
  ASSERT_TRUE(net.Submit(Env("a", "b", "slow"), 0.0).ok());
  ASSERT_TRUE(net.Submit(Env("a", "c", "fast"), 0.0).ok());
  std::vector<Envelope> early = net.DeliverDue(0.5);
  ASSERT_EQ(early.size(), 1u);  // the override still wins
  EXPECT_EQ(early[0].message.text, "fast");
  EXPECT_TRUE(net.DeliverDue(2.9).empty());
  EXPECT_EQ(net.DeliverDue(3.0).size(), 1u);
}

TEST(NetworkTest, IsolationCutsBothDirectionsAndHeals) {
  SimulatedNetwork net(1);
  net.SetIsolated("b", true);
  ASSERT_TRUE(net.Submit(Env("a", "b", "in"), 0.0).ok());
  ASSERT_TRUE(net.Submit(Env("b", "c", "out"), 0.0).ok());
  EXPECT_EQ(net.stats().messages_partitioned, 2u);
  EXPECT_TRUE(net.DeliverDue(100.0).empty());
  // Unrelated traffic is untouched.
  ASSERT_TRUE(net.Submit(Env("a", "c", "aside"), 0.0).ok());
  EXPECT_EQ(net.DeliverDue(100.0).size(), 1u);
  net.SetIsolated("b", false);
  ASSERT_TRUE(net.Submit(Env("a", "b", "healed"), 100.0).ok());
  EXPECT_EQ(net.DeliverDue(200.0).size(), 1u);
}

TEST(NetworkTest, EdgeCountTrackingCanBeDisabled) {
  SimulatedNetwork net(1);
  net.set_track_edge_counts(false);
  ASSERT_TRUE(net.Submit(Env("a", "b", "m1"), 0.0).ok());
  // Aggregate stats still flow; only the per-edge map is suppressed.
  EXPECT_TRUE(net.edge_message_counts().empty());
  EXPECT_EQ(net.stats().messages_submitted, 1u);
  net.set_track_edge_counts(true);
  ASSERT_TRUE(net.Submit(Env("a", "b", "m2"), 0.0).ok());
  EXPECT_EQ(net.edge_message_counts().size(), 1u);
}

TEST(NetworkTest, JitterReordersMessages) {
  // With heavy jitter, submission order and delivery order diverge for
  // some seed (deterministically, given the seed).
  SimulatedNetwork net(3, LinkConfig{.latency = 0.1, .jitter = 5.0});
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(net.Submit(Env("a", "b", std::to_string(i)), 0.0).ok());
  }
  std::vector<Envelope> due = net.DeliverDue(100.0);
  ASSERT_EQ(due.size(), 20u);
  bool reordered = false;
  for (size_t i = 1; i < due.size(); ++i) {
    if (std::stoi(due[i].message.text) <
        std::stoi(due[i - 1].message.text)) {
      reordered = true;
    }
  }
  EXPECT_TRUE(reordered);
}

}  // namespace
}  // namespace wdl
