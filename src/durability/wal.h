#ifndef WDL_DURABILITY_WAL_H_
#define WDL_DURABILITY_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"

namespace wdl {

/// When appended log records reach the disk (DESIGN.md §11). The knob
/// trades durability window against append throughput: kNever leaves
/// flushing to the OS (a host crash can lose recent records; a process
/// crash cannot, since write(2) completed), kBatch syncs once per
/// evaluation stage, kAlways syncs every record.
enum class FsyncPolicy : uint8_t {
  kNever = 0,
  kBatch = 1,
  kAlways = 2,
};

const char* FsyncPolicyToString(FsyncPolicy policy);
Result<FsyncPolicy> ParseFsyncPolicy(std::string_view text);

/// CRC-32 (IEEE 802.3 polynomial) over `data`; the per-record and
/// per-snapshot checksum of the durability layer.
uint32_t Crc32(std::string_view data);

/// Append-only writer of length-prefixed, checksummed log frames:
///
///   u32 payload length | u32 CRC-32(payload) | payload bytes
///
/// One WalWriter per open log file; appends go straight to the file
/// descriptor (no buffering beyond the OS page cache), so a process
/// crash after Append returns loses nothing. Not thread-safe — owned
/// by one peer and driven from whichever thread runs that peer's
/// stage, like everything else per-peer.
class WalWriter {
 public:
  /// Opens `path` for appending, creating it if absent.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  Status Append(std::string_view payload);
  /// fsync(2) the file; the caller implements the FsyncPolicy schedule.
  Status Sync();

  const std::string& path() const { return path_; }
  uint64_t records_written() const { return records_; }
  uint64_t bytes_written() const { return bytes_; }

 private:
  WalWriter(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}
  std::string path_;
  int fd_ = -1;
  uint64_t records_ = 0;
  uint64_t bytes_ = 0;
};

/// Everything a log file yielded on open. `valid_bytes` is the length
/// of the prefix that parsed cleanly; anything past it (a frame cut
/// short by a crash mid-append, or a frame whose CRC does not match)
/// is a torn tail the caller should truncate away before appending.
struct WalReadResult {
  std::vector<std::string> payloads;
  /// Byte offset where payload i's frame starts (offsets[i] <
  /// valid_bytes); lets recovery map records back to file positions.
  std::vector<uint64_t> offsets;
  uint64_t valid_bytes = 0;
  bool torn_tail = false;
  uint64_t dropped_bytes = 0;
};

/// Reads every valid frame of `path`. A missing file is an empty log,
/// not an error (a fresh peer, or a generation whose log was never
/// created before the crash). Corruption never fails the read — it
/// ends it: the result carries the clean prefix plus torn-tail info.
Result<WalReadResult> ReadWalFile(const std::string& path);

// --- small file helpers shared by the WAL and snapshot layers --------

Status TruncateFile(const std::string& path, uint64_t length);
/// Writes `path` via a temp file + rename so readers never observe a
/// half-written file; fsyncs the data and the containing directory.
Status AtomicWriteFile(const std::string& path, std::string_view bytes);
Result<std::string> ReadEntireFile(const std::string& path);
Status SyncDir(const std::string& dir);

}  // namespace wdl

#endif  // WDL_DURABILITY_WAL_H_
