#include "parser/parser.h"

#include <utility>

#include "base/string_util.h"
#include "parser/lexer.h"

namespace wdl {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& PeekAt(size_t off) const {
    size_t i = pos_ + off;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEof; }

  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool CheckIdent(std::string_view text) const {
    return Peek().kind == TokenKind::kIdent && Peek().text == text;
  }
  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    Advance();
    return true;
  }
  bool MatchIdent(std::string_view text) {
    if (!CheckIdent(text)) return false;
    Advance();
    return true;
  }

  Status Error(const std::string& msg) const {
    const Token& t = Peek();
    return Status::ParseError(StrFormat("%d:%d: %s (found %s)", t.line,
                                        t.column, msg.c_str(),
                                        t.Describe().c_str()));
  }

  Status Expect(TokenKind kind) {
    if (Match(kind)) return Status::OK();
    return Error(StrFormat("expected %s", TokenKindToString(kind)));
  }

  // --- Grammar productions -------------------------------------------

  // symterm := IDENT | VARIABLE
  Result<SymTerm> ParseSymTerm() {
    if (Check(TokenKind::kIdent)) {
      return SymTerm::Name(Advance().text);
    }
    if (Check(TokenKind::kVariable)) {
      return SymTerm::Variable(NormalizeVar(Advance().text));
    }
    return Error("expected relation/peer name or variable");
  }

  // term := VARIABLE | INT | DOUBLE | STRING | BLOB
  Result<Term> ParseTerm() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kVariable:
        return Term::Variable(NormalizeVar(Advance().text));
      case TokenKind::kInt:
        return Term::Constant(Value::Int(Advance().int_value));
      case TokenKind::kDouble:
        return Term::Constant(Value::Double(Advance().double_value));
      case TokenKind::kString:
        return Term::Constant(Value::String(Advance().text));
      case TokenKind::kBlob:
        return Term::Constant(Value::MakeBlob(Advance().text));
      case TokenKind::kIdent:
        // Bare identifiers in argument positions are a common user error
        // (unquoted strings); reject with a helpful message.
        return Error("bare identifier in argument position; quote it as a "
                     "string or prefix with '$' for a variable");
      default:
        return Error("expected a term (constant or variable)");
    }
  }

  // atom := ['not'] symterm '@' symterm '(' [term (',' term)*] ')'
  Result<Atom> ParseAtom() {
    bool negated = MatchIdent("not");
    WDL_ASSIGN_OR_RETURN(SymTerm relation, ParseSymTerm());
    WDL_RETURN_IF_ERROR(Expect(TokenKind::kAt));
    WDL_ASSIGN_OR_RETURN(SymTerm peer, ParseSymTerm());
    WDL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    std::vector<Term> args;
    if (!Check(TokenKind::kRParen)) {
      while (true) {
        WDL_ASSIGN_OR_RETURN(Term term, ParseTerm());
        args.push_back(std::move(term));
        if (!Match(TokenKind::kComma)) break;
      }
    }
    WDL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return Atom(std::move(relation), std::move(peer), std::move(args),
                negated);
  }

  // rule := ['-'] atom ':-' atom (',' atom)*  (head must not be negated;
  // a leading '-' makes it a deletion rule)
  Result<Rule> ParseRuleFromHead(Atom head, bool head_deletes) {
    if (head.negated) {
      return Status::ParseError("rule head must not be negated");
    }
    WDL_RETURN_IF_ERROR(Expect(TokenKind::kColonDash));
    std::vector<Atom> body;
    while (true) {
      WDL_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
      body.push_back(std::move(atom));
      if (!Match(TokenKind::kComma)) break;
    }
    Rule rule(std::move(head), std::move(body));
    rule.head_deletes = head_deletes;
    return rule;
  }

  Result<Fact> FactFromAtom(const Atom& atom) {
    if (atom.negated) {
      return Status::ParseError("a fact cannot be negated");
    }
    if (!atom.IsGround()) {
      return Status::ParseError(
          "fact must be ground (no variables): " + atom.ToString());
    }
    return atom.ToFact();
  }

  // decl := 'collection' ('ext'|'int') ['persistent'] IDENT '@' IDENT
  //         '(' col (',' col)* ')'
  // col  := IDENT [':' ('int'|'double'|'string'|'blob'|'any')]
  Result<RelationDecl> ParseDecl() {
    RelationDecl decl;
    if (MatchIdent("ext")) {
      decl.kind = RelationKind::kExtensional;
    } else if (MatchIdent("int") || MatchIdent("intensional")) {
      decl.kind = RelationKind::kIntensional;
    } else {
      return Error("expected 'ext' or 'int' after 'collection'");
    }
    MatchIdent("persistent");  // accepted for compatibility, implied by ext
    if (!Check(TokenKind::kIdent)) return Error("expected relation name");
    decl.relation = Advance().text;
    WDL_RETURN_IF_ERROR(Expect(TokenKind::kAt));
    if (!Check(TokenKind::kIdent)) return Error("expected peer name");
    decl.peer = Advance().text;
    WDL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    if (!Check(TokenKind::kRParen)) {
      while (true) {
        if (!Check(TokenKind::kIdent)) return Error("expected column name");
        ColumnSpec col;
        col.name = Advance().text;
        if (Match(TokenKind::kColon)) {
          if (!Check(TokenKind::kIdent)) return Error("expected column type");
          std::string type = Advance().text;
          if (type == "int") {
            col.type = ValueKind::kInt;
          } else if (type == "double") {
            col.type = ValueKind::kDouble;
          } else if (type == "string") {
            col.type = ValueKind::kString;
          } else if (type == "blob") {
            col.type = ValueKind::kBlob;
          } else if (type == "any") {
            col.type = ValueKind::kAny;
          } else {
            return Status::ParseError("unknown column type '" + type + "'");
          }
        }
        decl.columns.push_back(std::move(col));
        if (!Match(TokenKind::kComma)) break;
      }
    }
    WDL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return decl;
  }

  Result<Program> ParseProgram() {
    Program program;
    while (!AtEnd()) {
      if (Match(TokenKind::kSemicolon)) continue;  // stray ';' tolerated
      if (MatchIdent("collection")) {
        WDL_ASSIGN_OR_RETURN(RelationDecl decl, ParseDecl());
        program.declarations.push_back(std::move(decl));
      } else if (MatchIdent("rule")) {
        bool deletes = Match(TokenKind::kMinus);
        WDL_ASSIGN_OR_RETURN(Atom head, ParseAtom());
        WDL_ASSIGN_OR_RETURN(Rule rule,
                             ParseRuleFromHead(std::move(head), deletes));
        program.rules.push_back(std::move(rule));
      } else if (MatchIdent("fact")) {
        WDL_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
        WDL_ASSIGN_OR_RETURN(Fact fact, FactFromAtom(atom));
        program.facts.push_back(std::move(fact));
      } else if (Match(TokenKind::kMinus)) {
        // Bare deletion rule: -head :- body.
        WDL_ASSIGN_OR_RETURN(Atom head, ParseAtom());
        WDL_ASSIGN_OR_RETURN(Rule rule,
                             ParseRuleFromHead(std::move(head), true));
        program.rules.push_back(std::move(rule));
      } else {
        // Bare statement: an atom, then ':-' decides rule vs fact.
        WDL_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
        if (Check(TokenKind::kColonDash)) {
          WDL_ASSIGN_OR_RETURN(Rule rule,
                               ParseRuleFromHead(std::move(atom), false));
          program.rules.push_back(std::move(rule));
        } else {
          WDL_ASSIGN_OR_RETURN(Fact fact, FactFromAtom(atom));
          program.facts.push_back(std::move(fact));
        }
      }
      if (!AtEnd()) {
        WDL_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
      }
    }
    return program;
  }

 private:
  // '$_' is an anonymous variable: each occurrence becomes a fresh name
  // so two underscores never accidentally join.
  std::string NormalizeVar(const std::string& name) {
    if (name == "_") return "_anon" + std::to_string(anon_counter_++);
    return name;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int anon_counter_ = 0;
};

}  // namespace

Result<Program> ParseProgram(std::string_view src) {
  WDL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(src));
  Parser parser(std::move(tokens));
  return parser.ParseProgram();
}

Result<Rule> ParseRule(std::string_view src) {
  WDL_ASSIGN_OR_RETURN(Program program, ParseProgram(src));
  if (program.rules.size() != 1 || !program.facts.empty() ||
      !program.declarations.empty()) {
    return Status::ParseError("expected exactly one rule");
  }
  return std::move(program.rules[0]);
}

Result<Fact> ParseFact(std::string_view src) {
  WDL_ASSIGN_OR_RETURN(Program program, ParseProgram(src));
  if (program.facts.size() != 1 || !program.rules.empty() ||
      !program.declarations.empty()) {
    return Status::ParseError("expected exactly one fact");
  }
  return std::move(program.facts[0]);
}

Result<Atom> ParseAtom(std::string_view src) {
  WDL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(src));
  Parser parser(std::move(tokens));
  WDL_ASSIGN_OR_RETURN(Atom atom, parser.ParseAtom());
  parser.Match(TokenKind::kSemicolon);
  if (!parser.AtEnd()) {
    return parser.Error("trailing input after atom");
  }
  return atom;
}

}  // namespace wdl
