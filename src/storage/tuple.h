#ifndef WDL_STORAGE_TUPLE_H_
#define WDL_STORAGE_TUPLE_H_

#include <string>
#include <vector>

#include "ast/value.h"
#include "base/hash.h"

namespace wdl {

/// A stored row: the argument vector of a fact, without its location
/// (the relation it lives in supplies relation and peer names).
using Tuple = std::vector<Value>;

struct TupleHasher {
  size_t operator()(const Tuple& t) const {
    uint64_t h = 0x100001b3;
    for (const Value& v : t) h = HashCombine(h, v.Hash());
    return static_cast<size_t>(h);
  }
};

/// "(v1, v2, ...)" — used in diagnostics and snapshot printing.
std::string TupleToString(const Tuple& t);

}  // namespace wdl

#endif  // WDL_STORAGE_TUPLE_H_
