#ifndef WDL_ENGINE_ENGINE_H_
#define WDL_ENGINE_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analysis/analysis.h"
#include "ast/program.h"
#include "base/result.h"
#include "engine/delegation.h"
#include "engine/derivation.h"
#include "engine/eval.h"
#include "storage/catalog.h"
#include "storage/slice_store.h"

namespace wdl {

/// Fixpoint strategy. Semi-naive is the production path; naive exists
/// for the A1 ablation (bench_fixpoint) and as a differential-testing
/// oracle (both must produce identical relations).
enum class EvalMode : uint8_t {
  kSemiNaive = 0,
  kNaive = 1,
};

/// Process-wide default for EngineOptions::eval_threads: the
/// WDL_EVAL_THREADS environment variable (read once), else 1. Lets CI
/// drive existing suites through the parallel paths without touching
/// their code.
int DefaultEvalThreads();

struct EngineOptions {
  EvalMode mode = EvalMode::kSemiNaive;
  bool use_indexes = true;
  /// Compile rules to RulePlans (production) vs interpret the rule AST
  /// (the seed semantics, kept as a differential-testing oracle).
  bool use_compiled_plans = true;
  /// Ship per-(peer, relation) contribution *changes* (DerivedDelta
  /// messages with stream versions; production) vs re-sending the full
  /// contribution on every change (the seed semantics, kept as a
  /// differential-testing oracle — see DESIGN.md §5). Both converge to
  /// identical state; the delta path's per-round cost is proportional
  /// to the change size, not the view size.
  bool use_differential_propagation = true;
  /// Maintain intensional relations *incrementally* across stages
  /// (production): views persist, per-stage Δ-sets (local EDB changes
  /// plus slice-store support transitions) drive semi-naive evaluation
  /// forward from the changed tuples only, and deletions retract by
  /// support-counted DRed-style over-delete/re-derive (DESIGN.md §6).
  /// When false, every stage clears views and recomputes the fixpoint
  /// from scratch — the seed semantics, kept as the differential-
  /// testing oracle like the plan/propagation oracles above. Stages an
  /// incremental engine cannot serve soundly (rule-set changes, changes
  /// touching negated relations, naive mode) fall back to a full
  /// recompute transparently; both modes converge byte-identically.
  bool use_incremental_maintenance = true;
  Dialect dialect = Dialect::kExtended;
  int max_fixpoint_iterations = 1 << 20;  // safety net; datalog terminates
  /// Intra-peer parallelism (DESIGN.md §8): partition each semi-naive
  /// round's Δ by tuple hash across this many workers, evaluate Δ-first
  /// plan variants per partition into per-worker emit buffers, and
  /// merge the buffers in stable partition order at the round barrier.
  /// 1 (the default unless WDL_EVAL_THREADS overrides it) preserves
  /// today's exact serial code path as the oracle; any thread count
  /// yields bit-identical relation state. Rounds whose active rule set
  /// is not eligible (interpreter mode, missing Δ-first variants,
  /// delegation-capable rules) fall back to the serial path
  /// transparently.
  int eval_threads = DefaultEvalThreads();
  /// Durable-peer mode (DESIGN.md §11): on a link reset, keep the
  /// inbound stream versions and skip the blanket outbound contribution
  /// re-serve. A durable peer restarts with its stream state intact, so
  /// the first reconnect needs no amnesty — gaps that do exist (deltas
  /// shipped while this peer was down) surface through heartbeats and
  /// are repaired by per-stream resyncs, which is exactly the narrow
  /// recovery the WAL buys. Only sound when every peer in the cluster
  /// is durable too (a memory-only peer that restarts really has lost
  /// its state and needs the amnesty); see OPERATIONS.md.
  bool preserve_streams_on_reset = false;
};

/// The full current contribution of one sender to a remote relation.
/// Receivers apply it by relation kind: extensional targets union-insert
/// the tuples (updates are persistent); intensional targets replace the
/// sender's previous slice (continuous view maintenance).
struct DerivedSet {
  std::string target_peer;
  std::string relation;
  std::vector<Tuple> tuples;
};

/// One differential update of a sender's contribution to a remote
/// relation (DESIGN.md §5). Versions order one (sender, target,
/// relation) stream: the delta moves it `base_version -> version`, so a
/// receiver can drop duplicates and detect lost predecessors (and then
/// ask for a resync). A `snapshot` carries the whole contribution in
/// `inserts` (deletes empty) and repairs any gap.
struct DerivedDelta {
  std::string target_peer;
  std::string relation;
  uint64_t base_version = 0;
  uint64_t version = 0;
  bool snapshot = false;
  std::vector<Tuple> inserts;
  std::vector<Tuple> deletes;
};

/// Everything a stage wants delivered to one remote peer.
struct Outbound {
  std::vector<DerivedSet> derived_sets;      // full-slice protocol
  std::vector<DerivedDelta> derived_deltas;  // differential protocol
  /// Relations whose contribution *from the target peer* must be re-sent
  /// in full (this peer detected a gap in the inbound delta stream).
  std::vector<std::string> resync_requests;
  std::vector<Fact> fact_deletes;  // from deletion rules (-head :- body)
  std::vector<Delegation> delegation_installs;
  std::vector<uint64_t> delegation_retracts;  // Delegation::Key()s
  /// Relations this peer dropped; the target peer should discard its
  /// contribution-stream state toward us for them (see DESIGN §9).
  std::vector<std::string> stream_forgets;

  bool empty() const {
    return derived_sets.empty() && derived_deltas.empty() &&
           resync_requests.empty() && fact_deletes.empty() &&
           delegation_installs.empty() && delegation_retracts.empty() &&
           stream_forgets.empty();
  }
  size_t MessageCount() const {
    return derived_sets.size() + derived_deltas.size() +
           resync_requests.size() + (fact_deletes.empty() ? 0 : 1) +
           delegation_installs.size() + delegation_retracts.size() +
           stream_forgets.size();
  }
};

struct StageStats {
  int strata = 1;
  int iterations = 0;            // fixpoint iterations across strata
  uint64_t tuples_examined = 0;  // join work
  uint64_t local_derivations = 0;  // intensional tuples inserted
  size_t active_rules = 0;
  size_t delegations_active = 0;
  size_t messages_out = 0;
  /// Tuples shipped in derived sets and deltas this stage — the wire
  /// payload of step 3. Under differential propagation this tracks the
  /// change size; under full-slice it tracks the view size.
  uint64_t derived_tuples_out = 0;
};

/// Cumulative propagation-plane telemetry of one engine, across every
/// stage it has run. Benches surface these next to EvalCounters so perf
/// work can attribute wire-cost wins (ISSUE: bytes/delta telemetry).
struct PropagationCounters {
  uint64_t full_sets_shipped = 0;     // full-slice DerivedSet messages
  uint64_t full_tuples_shipped = 0;   // tuples inside them
  uint64_t deltas_shipped = 0;        // DerivedDelta messages
  uint64_t delta_inserts_shipped = 0;
  uint64_t delta_deletes_shipped = 0;
  uint64_t snapshots_shipped = 0;     // resync responses served
  uint64_t resyncs_requested = 0;     // gaps this engine detected
  uint64_t heartbeats_shipped = 0;    // version-only stream heartbeats
  uint64_t heartbeat_gaps_detected = 0;  // resyncs triggered by heartbeats
  /// Inbound versioned snapshots applied (i.e. full re-sends this engine
  /// accepted). The durability acceptance metric: a cleanly recovered
  /// peer converges with zero of these — every stream resumes from its
  /// restored version.
  uint64_t snapshots_applied = 0;
};

struct StageResult {
  /// True when this stage changed local state, produced messages, or
  /// left deferred self-updates — i.e. the peer is not yet quiescent.
  bool changed = false;
  std::map<std::string, Outbound> outbound;  // by target peer
  StageStats stats;
};

/// A rule active at this peer, either authored locally or installed by
/// a remote peer through delegation.
struct InstalledRule {
  uint64_t id = 0;             // engine-local handle
  Rule rule;
  std::string origin_peer;     // == self for locally authored rules
  uint64_t delegation_key = 0; // nonzero iff installed via delegation
  uint64_t rule_hash = 0;      // rule.Hash(), cached at install
  /// What the rule can read/write/delegate, derived at install; routes
  /// Δ-sets to affected rules in incremental stages (DESIGN.md §6).
  PlanStaticInfo info;
};

/// The WebdamLog engine of a single peer: catalog + active rule set +
/// the three-step stage of §2 — (1) load inputs received since the
/// previous stage, (2) run a local fixpoint, (3) emit facts (updates)
/// and rules (delegations) for other peers.
///
/// Not thread-safe; one Engine per peer, driven by the runtime.
class Engine {
 public:
  explicit Engine(std::string self_peer, EngineOptions options = {});
  ~Engine();  // out-of-line: ParallelEval is incomplete here

  // Neither copyable nor movable: evaluator_ holds &catalog_, so a
  // moved Engine would evaluate against the moved-from catalog. (The
  // deleted copy already suppressed implicit moves; spelling the move
  // deletions out documents the self-reference.)
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  Engine(Engine&&) = delete;
  Engine& operator=(Engine&&) = delete;

  const std::string& self_peer() const { return self_peer_; }
  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  const EngineOptions& options() const { return options_; }

  /// Declares relations, loads base facts, installs rules; validates the
  /// whole program under the configured dialect first. When `rule_ids`
  /// is non-null it receives the engine-local id of each installed rule
  /// in program order (durable peers log the decomposed program as
  /// individual WAL records and need the ids the rules landed on).
  Status LoadProgram(const Program& program,
                     std::vector<uint64_t>* rule_ids = nullptr);

  Status DeclareRelation(const RelationDecl& decl);

  /// Installs a locally authored rule after safety/dialect validation.
  /// Returns an engine-local id usable with RemoveRule.
  Result<uint64_t> AddRule(const Rule& rule);
  Status RemoveRule(uint64_t id);

  /// Installs a rule delegated by a remote peer (access control happens
  /// above the engine, in the runtime's DelegationGate).
  Status InstallDelegatedRule(const Delegation& delegation);
  /// Removes the rule installed for `delegation_key`; idempotent.
  void RetractDelegatedRule(uint64_t delegation_key);

  /// Immediate base-fact update of a local extensional relation (the
  /// user API: "Upload a picture", ratings, annotations...).
  Result<bool> InsertFact(const Fact& fact);
  Result<bool> RemoveFact(const Fact& fact);

  // --- Step-1 inputs, queued by the runtime between stages -----------
  void EnqueueFactInserts(std::vector<Fact> facts);
  void EnqueueFactDeletes(std::vector<Fact> facts);
  void EnqueueDerivedSet(const std::string& sender, DerivedSet set);
  void EnqueueDerivedDelta(const std::string& sender, DerivedDelta delta);
  /// `peer` lost part of our contribution stream to `relation`@peer and
  /// asks for a full snapshot; served in the next stage's step 3.
  void EnqueueResyncRequest(const std::string& peer,
                            const std::string& relation);

  /// The transport link to `peer` was reset (connection dropped and/or
  /// re-established — on a real network that usually means `peer`
  /// crashed, restarted, or was unreachable for a while). Heals both
  /// directions through the existing resync machinery:
  ///  - outbound: every contribution stream and delegation we hold for
  ///    `peer` is re-shipped (snapshots / idempotent installs), exactly
  ///    as if `peer` had sent a resync request per stream;
  ///  - inbound: the stream positions of everything `peer` sends us are
  ///    forgotten (a restarted sender renumbers from 1, which the gate
  ///    would otherwise drop as stale) and a resync request per stream
  ///    goes out.
  void NoteLinkReset(const std::string& peer);

  /// Runs one computation stage and returns what must be shipped.
  StageResult RunStage();

  /// Version-only DerivedDelta heartbeats for every contribution stream
  /// this engine has shipped (differential protocol only): the receiver
  /// compares the carried version against its applied stream version
  /// and requests a resync on mismatch, bounding the staleness window
  /// of a stream that went silent right after a dropped frame. Pure
  /// observation — emitting heartbeats neither changes state nor marks
  /// the engine dirty; the runtime schedules them periodically.
  std::vector<DerivedDelta> CollectHeartbeats();

  /// True when queued inputs or deferred self-updates exist, i.e. the
  /// next stage has guaranteed work.
  bool HasPendingWork() const;

  /// Active rules in installation order (stable ids).
  std::vector<const InstalledRule*> rules() const;

  /// Evaluator telemetry accumulated across every stage this engine has
  /// run: plan-cache behavior, access-path choices, join work. Benches
  /// surface these in their JSON so perf work can attribute wins.
  const EvalCounters& eval_counters() const { return evaluator_.counters(); }

  /// Propagation-plane telemetry (tuples shipped full vs differential,
  /// resync traffic), accumulated like eval_counters().
  const PropagationCounters& propagation_counters() const {
    return prop_counters_;
  }

  /// Receiver-side contribution store (observability for tests: slices,
  /// support counts, stream versions).
  const SliceStore& slice_store() const { return slice_store_; }

  /// Removes an ad-hoc scratch relation: catalog entry plus any remote
  /// contribution slices, so a recycled `__query_<n>` name starts
  /// clean. Every remote peer that streamed a contribution here is
  /// queued a kStreamForget so the recycled name starts from version 0
  /// on both ends (no gap->resync round trip on first reuse). The
  /// caller must have removed every rule referencing it.
  Status DropScratchRelation(const std::string& relation);

  /// Handles an inbound kStreamForget: `target_peer` dropped `relation`,
  /// so discard the contribution stream we were maintaining toward it
  /// (our next contribution, if any, restarts as a fresh version-1
  /// snapshot instead of a delta the receiver would reject).
  void ForgetSentStream(const std::string& target_peer,
                        const std::string& relation);

  // --- durability restore / WAL replay (DESIGN.md §11) ----------------
  // Called only by a recovering Peer, between construction and its
  // first stage. Restore* methods rebuild state verbatim from a
  // snapshot (no validation beyond structural checks, no dirty-marking
  // beyond what a fresh engine already carries — a fresh engine always
  // recomputes its first stage, which rebuilds intensional views from
  // the restored slices). ApplyShipped* methods replay kStageOutbound
  // WAL records, advancing the emission diff bases to what receivers
  // actually hold; they are idempotent under re-replay because versions
  // only move forward.

  /// Reinstalls a rule under a fixed engine-local id (bumps the id
  /// allocator past it). `delegation_key` nonzero marks a rule that
  /// arrived via delegation.
  Status RestoreInstalledRule(uint64_t id, const Rule& rule,
                              const std::string& origin_peer,
                              uint64_t delegation_key);
  void SetNextRuleId(uint64_t id);
  uint64_t next_rule_id() const { return next_rule_id_; }
  /// Rebuilds one inbound contribution stream: the sender's slice and
  /// its applied version.
  void RestoreSliceStream(const std::string& relation,
                          const std::string& sender, uint64_t version,
                          const std::vector<Tuple>& tuples);
  /// Rebuilds one outbound diff base: what `target_peer` holds of our
  /// contribution to `relation`, at `version`.
  void RestoreSentContribution(const std::string& target_peer,
                               const std::string& relation, uint64_t version,
                               const std::vector<Tuple>& tuples);
  void RestoreSentDelegation(const Delegation& delegation);
  /// Replays one shipped delta from a kStageOutbound WAL record against
  /// the sent-contribution state (never against local relations — the
  /// receiver holds those tuples, not us).
  void ApplyShippedDelta(const DerivedDelta& delta);
  void ApplyShippedDelegationRetract(uint64_t delegation_key);
  /// Current stream version of our contribution to `relation` at
  /// `target_peer` (0 when no stream exists).
  uint64_t SentStreamVersion(const std::string& target_peer,
                             const std::string& relation) const;
  /// Visits every outbound contribution stream as (target_peer,
  /// relation, tuple set, version) — snapshot writers iterate this.
  template <typename Fn>
  void ForEachSentContribution(Fn&& fn) const {
    for (const auto& [key, sent] : sent_contributions_) {
      fn(key.target_peer, key.relation, sent.tuples, sent.version);
    }
  }
  template <typename Fn>
  void ForEachSentDelegation(Fn&& fn) const {
    for (const auto& [key, d] : sent_delegations_) fn(d);
  }

  /// Human-readable program listing with provenance markers — the
  /// per-peer program view of the paper's Figure 3.
  std::string ProgramListing() const;

  /// Serializes this peer's durable state — declarations, extensional
  /// facts, and locally authored rules — as parseable WebdamLog source.
  /// Loading the text into a fresh Engine reproduces the peer (views
  /// rebuild on the first stage; delegated rules re-arrive from their
  /// origins). This is how "users launch their customized peers on
  /// their machines with their own personal data" persists across runs.
  std::string DumpAsProgramText() const;

 private:
  struct ContributionKey {
    std::string target_peer;
    std::string relation;
    bool operator<(const ContributionKey& o) const {
      if (target_peer != o.target_peer) return target_peer < o.target_peer;
      return relation < o.relation;
    }
  };
  using TupleSet = std::unordered_set<Tuple, TupleHasher>;

  /// What we last shipped for one (target peer, relation): the full
  /// tuple set (the diffing base of differential propagation, and the
  /// direct-comparison change detector of both modes — hashes are never
  /// trusted for suppression) plus the stream version.
  struct SentContribution {
    TupleSet tuples;
    uint64_t version = 0;
  };

  /// One queued inbound contribution update. Full-slice DerivedSets
  /// arrive as version-less snapshots, so both protocols flow through
  /// one queue in arrival order.
  struct InboundDerived {
    std::string sender;
    bool versioned = false;
    DerivedDelta delta;
  };

  /// Program-level facts the incremental driver needs per stage,
  /// recomputed when the rule set changes.
  struct ProgramInfo {
    /// False when no incremental stage can be sound for this program /
    /// configuration (variable-named negated atoms, derivations that
    /// can write negated relations, naive-mode ablation).
    bool incremental_ok = true;
    /// Interned ids of relations appearing in (constant-named) negated
    /// atoms; a stage whose Δ touches one falls back to recompute.
    std::unordered_set<uint32_t> negated_ids;
  };

  Status ValidateNewRule(const Rule& rule) const;
  void NoteRuleSetChanged();
  void RefreshProgramInfo();
  bool ChangesEligible(const StageChangeLog& log) const;
  void ApplyInputs(StageStats* stats, bool* changed, StageChangeLog* log);
  void ApplyInboundDerived(InboundDerived& in, bool* changed,
                           StageChangeLog* log);
  void ClearIntensionalRelations();
  void SeedIntensionalFromContributions(bool track_support);
  /// Erases the ship-once suppression entry for a fact this stage
  /// re-ships as an insert, and schedules the next stage to re-derive
  /// (and re-ship) any deletion-rule verdict on it.
  void ClearDeleteSuppression(const std::string& relation,
                              const std::string& peer, const Tuple& tuple);
  void EmitContributions(
      std::map<ContributionKey, TupleSet>* contributions,
      StageResult* result);
  void EmitContributionsIncremental(
      std::map<ContributionKey, TupleSet>* contrib_added,
      std::map<ContributionKey, TupleSet>* contrib_removed,
      StageResult* result);
  void ServeResyncs(StageResult* result);
  void EmitDelegationDiff(std::map<uint64_t, Delegation> delegations,
                          StageResult* result);
  void FinalizeOutbound(StageResult* result);
  void RunFixpoint(StageStats* stats,
                   std::map<ContributionKey, TupleSet>* contributions,
                   std::map<uint64_t, Delegation>* delegations,
                   std::unordered_set<Fact, FactHasher>* self_updates,
                   std::unordered_set<Fact, FactHasher>* self_deletes,
                   std::unordered_set<Fact, FactHasher>* remote_deletes,
                   DerivationTracker* tracker);
  /// The seed semantics: clear views, reseed from slices, recompute the
  /// fixpoint. Serves recompute-mode stages and doubles as the init /
  /// fallback path of incremental mode (`rebuild_derived_state`).
  void RunStageRecompute(StageResult* result, bool changed_local,
                         bool rebuild_derived_state);
  /// The Δ-driven stage: deletion cascade (over-delete / re-derive),
  /// then semi-naive forward evaluation from the change seeds only.
  void RunStageIncremental(StageResult* result, bool changed_local,
                           StageChangeLog* log);
  bool HasLocalDerivation(const Fact& target);
  uint64_t IntensionalContentHash() const;

  /// Parallel Δ-round machinery (engine.cc): the engine's thread pool,
  /// per-worker evaluators, partitions, and emit buffers. Created
  /// lazily on the first eligible round when eval_threads > 1; null
  /// forever at eval_threads == 1, so the serial oracle path carries
  /// zero parallel state.
  struct ParallelEval;
  ParallelEval* EnsureParallelEval();

  std::string self_peer_;
  Symbol self_sym_;  // interned self name (delegation-capability checks)
  EngineOptions options_;
  Catalog catalog_;
  // Owned across stages so the plan cache persists: a rule is compiled
  // once per engine, not once per fixpoint.
  RuleEvaluator evaluator_;
  std::unique_ptr<ParallelEval> parallel_;

  std::vector<InstalledRule> rules_;
  uint64_t next_rule_id_ = 1;

  // Step-1 queues.
  std::vector<Fact> inbound_inserts_;
  std::vector<Fact> inbound_deletes_;
  std::vector<InboundDerived> inbound_derived_;
  // Resync requests received from peers, served next stage.
  std::set<std::pair<std::string, std::string>> pending_resync_serves_;
  // Delegation keys to re-ship next stage (link reset to their target;
  // installs are idempotent by key at the receiver).
  std::set<uint64_t> pending_delegation_reships_;
  // (sender, relation) stream-forget notices to emit next stage: the
  // relation was dropped here, the sender should clear its
  // SentContribution toward us.
  std::set<std::pair<std::string, std::string>> pending_stream_forgets_;
  // Gaps detected while applying inbound deltas this stage: (sender,
  // relation) -> highest update version we failed to apply. Turned into
  // outbound resync requests in step 3, unless a later message in the
  // batch (duplicate, reordered original, snapshot) already moved the
  // stream to that version — then the gap healed itself and a request
  // would only buy a redundant full snapshot.
  std::map<std::pair<std::string, std::string>, uint64_t> resync_needed_;

  // Deferred local extensional derivations (visible next stage, like
  // Bud's deferred <+ operator), and deferred deletions from deletion
  // rules (Bud's <- operator).
  std::unordered_set<Fact, FactHasher> pending_self_updates_;
  std::unordered_set<Fact, FactHasher> pending_self_deletes_;

  // Remote contributions to local intensional relations: per-sender
  // slices with support counts and delta-stream versions. Under the
  // recompute oracle the union is re-seeded into the view relations at
  // every stage start; under incremental maintenance only support
  // transitions flow into the views.
  SliceStore slice_store_;

  // What we already shipped, for change detection and delta diffing.
  std::map<ContributionKey, SentContribution> sent_contributions_;
  std::map<uint64_t, Delegation> sent_delegations_;
  // Remote deletions already shipped (deletion is idempotent; ship once
  // — until the same fact is re-shipped as an insert, which clears the
  // entry so a later deletion verdict ships again).
  std::unordered_set<Fact, FactHasher> sent_remote_deletes_;

  // --- incremental-maintenance state (DESIGN.md §6) -------------------
  // Per-tuple support records of resident derived tuples.
  DerivationTracker tracker_;
  // Net direct InsertFact/RemoveFact changes since the last stage
  // (incremental mode records them; recompute re-reads everything).
  StageChangeLog direct_changes_;
  // The current derived contribution per (target peer, relation) and
  // the current delegation set — maintained across stages so emission
  // diffs are O(change); the recompute oracle rebuilds them per stage.
  std::map<ContributionKey, TupleSet> current_contributions_;
  std::map<uint64_t, Delegation> current_delegations_;
  // Facts whose delete-suppression entry was cleared by an insert
  // re-ship: next stage re-checks active deletion rules against them.
  std::unordered_set<Fact, FactHasher> pending_delete_rechecks_;
  // True once a full stage has populated tracker_ and the current_*
  // maps; until then every stage recomputes.
  bool derived_state_ready_ = false;
  // Rule set changed since the last stage: the next stage recomputes
  // (and refreshes program_info_).
  bool rules_changed_ = true;
  ProgramInfo program_info_;

  PropagationCounters prop_counters_;

  uint64_t prev_intensional_hash_ = 0;
  bool ran_any_stage_ = false;
  // Set by every mutating API call (rule/fact changes) so the runtime
  // knows a stage is needed; cleared by RunStage.
  bool dirty_ = true;
};

}  // namespace wdl

#endif  // WDL_ENGINE_ENGINE_H_
