// rss_run: runs a command and records its peak resident set size.
//
//   rss_run OUTFILE COMMAND [ARGS...]
//
// Forks, execs COMMAND, waits, then writes the child's peak RSS in
// megabytes (getrusage RUSAGE_CHILDREN, one line, e.g. "42.50") to
// OUTFILE and exits with the child's exit code. The bench harness
// (bench/run_bench.cmake) wraps every bench binary with this so the
// merged baseline JSON carries a measured peak-RSS column per suite —
// memory regressions show up in bench_compare.py --memory next to the
// throughput ratios.

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: rss_run OUTFILE COMMAND [ARGS...]\n");
    return 2;
  }
  pid_t pid = fork();
  if (pid < 0) {
    std::perror("rss_run: fork");
    return 2;
  }
  if (pid == 0) {
    execvp(argv[2], &argv[2]);
    std::perror("rss_run: execvp");
    _exit(127);
  }
  int wait_status = 0;
  if (waitpid(pid, &wait_status, 0) < 0) {
    std::perror("rss_run: waitpid");
    return 2;
  }
  struct rusage usage = {};
  getrusage(RUSAGE_CHILDREN, &usage);
  // ru_maxrss is kilobytes on Linux.
  double peak_mb = static_cast<double>(usage.ru_maxrss) / 1024.0;
  std::FILE* out = std::fopen(argv[1], "w");
  if (out == nullptr) {
    std::perror("rss_run: fopen");
    return 2;
  }
  std::fprintf(out, "%.2f\n", peak_mb);
  std::fclose(out);
  if (WIFEXITED(wait_status)) return WEXITSTATUS(wait_status);
  if (WIFSIGNALED(wait_status)) return 128 + WTERMSIG(wait_status);
  return 2;
}
