#include "base/symbol.h"

#include <atomic>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

namespace wdl {
namespace {

struct Entry {
  std::string text;
  uint64_t hash;
};

// Entries live in fixed-size chunks that never move once published, so
// id -> entry resolution (str()/hash(), the evaluator's inner-loop
// path) is lock-free: two relaxed/acquire loads and an index. 4096
// entries/chunk x 65536 chunks bounds the table at ~268M symbols —
// unreachable in practice (interning is program identifiers, not data).
constexpr size_t kChunkShift = 12;
constexpr size_t kChunkSize = size_t{1} << kChunkShift;
constexpr size_t kChunkMask = kChunkSize - 1;
constexpr size_t kMaxChunks = size_t{1} << 16;

// Append-only intern table, shared by every peer in the process.
// Writers (Intern on a miss) take the mutex exclusively; Find takes it
// shared. Readers holding a valid Symbol never take it at all: the id
// they hold was published either by the same thread's Intern/Find
// (whose lock release/acquire orders the entry write before the read)
// or handed across a thread boundary whose own synchronization (e.g.
// the ThreadPool barrier) carries the same happens-before edge.
struct Table {
  std::shared_mutex mu;
  std::unordered_map<std::string_view, uint32_t> ids;  // guarded by mu
  std::atomic<Entry*> chunks[kMaxChunks] = {};
  std::atomic<uint32_t> count{0};
};

Table& GlobalTable() {
  static Table* table = new Table();  // leaked: symbols outlive everything
  return *table;
}

const Entry& EntryFor(uint32_t id) {
  Entry* chunk =
      GlobalTable().chunks[id >> kChunkShift].load(std::memory_order_acquire);
  return chunk[id & kChunkMask];
}

const std::string& EmptyString() {
  static const std::string* empty = new std::string();
  return *empty;
}

}  // namespace

Symbol Symbol::Intern(std::string_view text) {
  Table& t = GlobalTable();
  {
    // Fast path: already interned (the common case after load time).
    std::shared_lock<std::shared_mutex> lock(t.mu);
    auto it = t.ids.find(text);
    if (it != t.ids.end()) return Symbol(it->second);
  }
  std::unique_lock<std::shared_mutex> lock(t.mu);
  auto it = t.ids.find(text);  // re-check: raced with another interner
  if (it != t.ids.end()) return Symbol(it->second);
  uint32_t id = t.count.load(std::memory_order_relaxed);
  size_t chunk_index = id >> kChunkShift;
  Entry* chunk = t.chunks[chunk_index].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Entry[kChunkSize];
    t.chunks[chunk_index].store(chunk, std::memory_order_release);
  }
  Entry& e = chunk[id & kChunkMask];
  e.text = std::string(text);
  e.hash = HashString(text);
  t.ids.emplace(std::string_view(e.text), id);
  t.count.store(id + 1, std::memory_order_release);
  return Symbol(id);
}

Symbol Symbol::Find(std::string_view text) {
  Table& t = GlobalTable();
  std::shared_lock<std::shared_mutex> lock(t.mu);
  auto it = t.ids.find(text);
  return it == t.ids.end() ? Symbol() : Symbol(it->second);
}

size_t Symbol::TableSizeForTesting() {
  return GlobalTable().count.load(std::memory_order_acquire);
}

const std::string& Symbol::str() const {
  if (!valid()) return EmptyString();
  return EntryFor(id_).text;
}

uint64_t Symbol::hash() const {
  if (!valid()) return HashString(std::string_view());
  return EntryFor(id_).hash;
}

}  // namespace wdl
