#include "base/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace wdl {

std::vector<std::string> StrSplit(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      return out;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         (s[begin] == ' ' || s[begin] == '\t' || s[begin] == '\n' ||
          s[begin] == '\r')) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         (s[end - 1] == ' ' || s[end - 1] == '\t' || s[end - 1] == '\n' ||
          s[end - 1] == '\r')) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string EscapeString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

bool UnescapeString(std::string_view s, std::string* out) {
  out->clear();
  out->reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (i + 1 >= s.size()) return false;
    ++i;
    switch (s[i]) {
      case '\\': out->push_back('\\'); break;
      case '"': out->push_back('"'); break;
      case 'n': out->push_back('\n'); break;
      case 't': out->push_back('\t'); break;
      case 'r': out->push_back('\r'); break;
      default: return false;
    }
  }
  return true;
}

bool IsIdentifier(std::string_view s) {
  if (s.empty()) return false;
  auto alpha = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  auto alnum = [&](char c) { return alpha(c) || (c >= '0' && c <= '9'); };
  if (!alpha(s[0])) return false;
  for (size_t i = 1; i < s.size(); ++i) {
    if (!alnum(s[i])) return false;
  }
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace wdl
