#include "storage/relation.h"

#include <algorithm>

#include "base/string_util.h"

namespace wdl {

Status Relation::CheckTuple(const Tuple& tuple) const {
  if (tuple.size() != decl_.arity()) {
    return Status::OutOfRange(StrFormat(
        "tuple %s has arity %zu; relation %s expects %zu",
        TupleToString(tuple).c_str(), tuple.size(),
        decl_.PredicateId().c_str(), decl_.arity()));
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    ValueKind want = decl_.columns[i].type;
    if (want != ValueKind::kAny && tuple[i].kind() != want) {
      return Status::InvalidArgument(StrFormat(
          "tuple %s: column %zu (%s) of %s expects %s but got %s",
          TupleToString(tuple).c_str(), i, decl_.columns[i].name.c_str(),
          decl_.PredicateId().c_str(), ValueKindToString(want),
          ValueKindToString(tuple[i].kind())));
    }
  }
  return Status::OK();
}

Result<bool> Relation::Insert(Tuple tuple) {
  WDL_RETURN_IF_ERROR(CheckTuple(tuple));
  auto [it, inserted] = tuples_.insert(std::move(tuple));
  if (inserted && !indexes_.empty()) IndexInsert(&*it);
  return inserted;
}

Result<bool> Relation::Remove(const Tuple& tuple) {
  WDL_RETURN_IF_ERROR(CheckTuple(tuple));
  auto it = tuples_.find(tuple);
  if (it == tuples_.end()) return false;
  if (!indexes_.empty()) IndexRemove(&*it);
  tuples_.erase(it);
  return true;
}

void Relation::Clear() {
  tuples_.clear();
  for (auto& [col, index] : indexes_) index.clear();
}

void Relation::ForEach(const std::function<void(const Tuple&)>& fn) const {
  // `fn` may insert into this very relation: recursive rules (e.g.
  // same-generation) derive into a relation while joining against it,
  // and an insert can rehash `tuples_`, invalidating live iterators.
  // Snapshot node pointers first — nodes are stable across rehash, so
  // the snapshot stays valid. Tuples inserted by `fn` are not visited
  // (iteration-start semantics); removal during iteration stays
  // unsupported.
  std::vector<const Tuple*> snapshot;
  snapshot.reserve(tuples_.size());
  for (const Tuple& t : tuples_) snapshot.push_back(&t);
  for (const Tuple* t : snapshot) fn(*t);
}

void Relation::LookupEqual(size_t column, const Value& value,
                           const std::function<void(const Tuple&)>& fn) {
  if (column >= decl_.arity()) return;
  auto it = indexes_.find(column);
  if (it == indexes_.end()) {
    // Build the index on first use.
    auto& index = indexes_[column];
    for (const Tuple& t : tuples_) {
      index.emplace(t[column].Hash(), &t);
    }
    it = indexes_.find(column);
  }
  // Same hazard as ForEach: `fn` may insert into this relation, and
  // IndexInsert then grows the multimap mid-iteration. Snapshot the
  // matching tuple pointers before invoking the callback. This sits in
  // the innermost join loop, so the common small result set stays on
  // the stack; only oversized ranges pay for a heap spill.
  auto [begin, end] = it->second.equal_range(value.Hash());
  constexpr size_t kInlineMatches = 16;
  const Tuple* inline_buf[kInlineMatches];
  size_t count = 0;
  std::vector<const Tuple*> spill;
  for (auto entry = begin; entry != end; ++entry) {
    const Tuple& t = *entry->second;
    // Hash collisions are possible; confirm equality.
    if (t[column] != value) continue;
    if (count < kInlineMatches) {
      inline_buf[count++] = &t;
    } else {
      spill.push_back(&t);
    }
  }
  for (size_t i = 0; i < count; ++i) fn(*inline_buf[i]);
  for (const Tuple* t : spill) fn(*t);
}

void Relation::ScanEqual(size_t column, const Value& value,
                         const std::function<void(const Tuple&)>& fn) const {
  if (column >= decl_.arity()) return;
  std::vector<const Tuple*> matches;  // snapshot; see ForEach
  for (const Tuple& t : tuples_) {
    if (t[column] == value) matches.push_back(&t);
  }
  for (const Tuple* t : matches) fn(*t);
}

std::vector<Tuple> Relation::SortedTuples() const {
  std::vector<Tuple> out(tuples_.begin(), tuples_.end());
  std::sort(out.begin(), out.end());
  return out;
}

void Relation::IndexInsert(const Tuple* stored) {
  for (auto& [col, index] : indexes_) {
    index.emplace((*stored)[col].Hash(), stored);
  }
}

void Relation::IndexRemove(const Tuple* stored) {
  for (auto& [col, index] : indexes_) {
    auto [begin, end] = index.equal_range((*stored)[col].Hash());
    for (auto it = begin; it != end; ++it) {
      if (it->second == stored) {
        index.erase(it);
        break;
      }
    }
  }
}

}  // namespace wdl
