// Experiment A3 / S4 — distribution scaling (DESIGN.md §3).
//
// Scales the Wepic-shaped workload from 2 to 64 attendee peers: every
// attendee uploads one picture (published to the sigmod hub) and
// selects one neighbor (one delegation each). Reports rounds to
// convergence, messages, and bytes.
//
// Expected shape: rounds to convergence stay flat (the topology depth,
// not the peer count, drives stage count); messages and bytes grow
// linearly in the number of peers.

#include <benchmark/benchmark.h>

#include "base/string_util.h"
#include "runtime/system.h"

namespace wdl {
namespace {

Value I(int64_t v) { return Value::Int(v); }
Value S(const std::string& v) { return Value::String(v); }

void BM_WepicShapedScaling(benchmark::State& state) {
  int peers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    System system;
    Peer* hub = system.CreatePeer("hub");
    (void)hub->LoadProgramText(
        "collection ext pictures@hub(id: int, name: string, "
        "owner: string);");
    std::vector<Peer*> attendees;
    for (int i = 0; i < peers; ++i) {
      std::string name = "peer" + std::to_string(i);
      Peer* p = system.CreatePeer(name);
      attendees.push_back(p);
      (void)p->LoadProgramText(StrFormat(
          "collection ext pictures@%s(id: int, name: string, "
          "owner: string);"
          "collection ext selectedAttendee@%s(a: string);"
          "collection int attendeePictures@%s(id: int, name: string, "
          "owner: string);"
          "rule attendeePictures@%s($i, $n, $o) :- "
          "selectedAttendee@%s($a), pictures@$a($i, $n, $o);"
          "rule pictures@hub($i, $n, $o) :- pictures@%s($i, $n, $o);",
          name.c_str(), name.c_str(), name.c_str(), name.c_str(),
          name.c_str(), name.c_str()));
    }
    // Everyone trusts everyone (scaling, not ACL, is under test).
    for (Peer* p : attendees) {
      for (int i = 0; i < peers; ++i) {
        p->gate().TrustPeer("peer" + std::to_string(i));
      }
    }
    for (int i = 0; i < peers; ++i) {
      (void)attendees[i]->Insert(
          Fact("pictures", "peer" + std::to_string(i),
               {I(i), S("pic" + std::to_string(i)),
                S("peer" + std::to_string(i))}));
      (void)attendees[i]->Insert(
          Fact("selectedAttendee", "peer" + std::to_string(i),
               {S("peer" + std::to_string((i + 1) % peers))}));
    }
    state.ResumeTiming();

    Result<int> rounds = system.RunUntilQuiescent(10000);
    benchmark::DoNotOptimize(rounds);
    state.PauseTiming();
    const NetworkStats& stats = system.network().stats();
    state.counters["rounds"] = rounds.ok() ? *rounds : -1;
    state.counters["messages"] =
        static_cast<double>(stats.messages_submitted);
    state.counters["bytes"] = static_cast<double>(stats.bytes_sent);
    state.counters["hub_pictures"] = static_cast<double>(
        hub->engine().catalog().Get("pictures")->size());
    uint64_t delta_tuples = 0;
    uint64_t full_tuples = 0;
    for (const std::string& name : system.PeerNames()) {
      const PropagationCounters& pc =
          system.GetPeer(name)->engine().propagation_counters();
      delta_tuples += pc.delta_inserts_shipped + pc.delta_deletes_shipped;
      full_tuples += pc.full_tuples_shipped;
    }
    state.counters["delta_tuples"] = static_cast<double>(delta_tuples);
    state.counters["full_tuples"] = static_cast<double>(full_tuples);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_WepicShapedScaling)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Arg(64)->Unit(benchmark::kMillisecond);

// S4: dynamic membership — K audience peers join an already-converged
// conference and upload; time to re-converge.
void BM_AudienceJoin(benchmark::State& state) {
  int joiners = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    System system;
    Peer* hub = system.CreatePeer("hub");
    (void)hub->LoadProgramText(
        "collection ext pictures@hub(id: int, name: string, "
        "owner: string);"
        "collection ext attendees@hub(name: string);");
    (void)system.RunUntilQuiescent(10000);
    state.ResumeTiming();

    for (int i = 0; i < joiners; ++i) {
      std::string name = "guest" + std::to_string(i);
      Peer* p = system.CreatePeer(name);
      (void)p->LoadProgramText(StrFormat(
          "collection ext pictures@%s(id: int, name: string, "
          "owner: string);"
          "rule pictures@hub($i, $n, $o) :- pictures@%s($i, $n, $o);",
          name.c_str(), name.c_str()));
      (void)hub->Insert(Fact("attendees", "hub", {S(name)}));
      (void)p->Insert(Fact("pictures", name,
                           {I(i), S("phone.jpg"), S(name)}));
    }
    Result<int> rounds = system.RunUntilQuiescent(10000);
    benchmark::DoNotOptimize(rounds);
    state.counters["hub_pictures"] = static_cast<double>(
        hub->engine().catalog().Get("pictures")->size());
  }
}
BENCHMARK(BM_AudienceJoin)->Arg(1)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

// Inter-peer worker pool (DESIGN.md §8): the 32-attendee Wepic-shaped
// workload with stages scheduled across worker_threads 1/2/4/8. The /1
// run is the serial oracle path; `bench_compare.py --speedup` reads
// the scaling from one baseline. hub_pictures cross-checks that every
// configuration converged to the same state.
void BM_WepicShapedWorkers(benchmark::State& state) {
  constexpr int kPeers = 32;
  int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    SystemOptions sys_opts;
    sys_opts.worker_threads = threads;
    System system(sys_opts);
    Peer* hub = system.CreatePeer("hub");
    (void)hub->LoadProgramText(
        "collection ext pictures@hub(id: int, name: string, "
        "owner: string);");
    std::vector<Peer*> attendees;
    for (int i = 0; i < kPeers; ++i) {
      std::string name = "peer" + std::to_string(i);
      Peer* p = system.CreatePeer(name);
      attendees.push_back(p);
      (void)p->LoadProgramText(StrFormat(
          "collection ext pictures@%s(id: int, name: string, "
          "owner: string);"
          "collection ext selectedAttendee@%s(a: string);"
          "collection int attendeePictures@%s(id: int, name: string, "
          "owner: string);"
          "rule attendeePictures@%s($i, $n, $o) :- "
          "selectedAttendee@%s($a), pictures@$a($i, $n, $o);"
          "rule pictures@hub($i, $n, $o) :- pictures@%s($i, $n, $o);",
          name.c_str(), name.c_str(), name.c_str(), name.c_str(),
          name.c_str(), name.c_str()));
    }
    for (Peer* p : attendees) {
      for (int i = 0; i < kPeers; ++i) {
        p->gate().TrustPeer("peer" + std::to_string(i));
      }
    }
    for (int i = 0; i < kPeers; ++i) {
      (void)attendees[i]->Insert(
          Fact("pictures", "peer" + std::to_string(i),
               {I(i), S("pic" + std::to_string(i)),
                S("peer" + std::to_string(i))}));
      (void)attendees[i]->Insert(
          Fact("selectedAttendee", "peer" + std::to_string(i),
               {S("peer" + std::to_string((i + 1) % kPeers))}));
    }
    state.ResumeTiming();
    Result<int> rounds = system.RunUntilQuiescent(10000);
    benchmark::DoNotOptimize(rounds);
    state.counters["rounds"] = rounds.ok() ? *rounds : -1;
    state.counters["hub_pictures"] = static_cast<double>(
        hub->engine().catalog().Get("pictures")->size());
  }
}
BENCHMARK(BM_WepicShapedWorkers)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wdl

BENCHMARK_MAIN();
