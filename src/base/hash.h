#ifndef WDL_BASE_HASH_H_
#define WDL_BASE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace wdl {

/// 64-bit FNV-1a over raw bytes; stable across platforms and runs, so
/// hashes may participate in wire-format checksums and provenance ids.
inline uint64_t Fnv1a64(const void* data, size_t len,
                        uint64_t seed = 1469598103934665603ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

inline uint64_t HashString(std::string_view s, uint64_t seed = 0) {
  return Fnv1a64(s.data(), s.size(), 1469598103934665603ULL ^ seed);
}

/// Order-dependent combiner (boost-style with a 64-bit constant).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  a ^= b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4);
  return a;
}

}  // namespace wdl

#endif  // WDL_BASE_HASH_H_
