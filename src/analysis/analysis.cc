#include "analysis/analysis.h"

#include <map>
#include <set>
#include <string>

#include "base/string_util.h"

namespace wdl {

Status CheckRuleSafety(const Rule& rule) {
  if (rule.head.negated) {
    return Status::InvalidArgument("rule head must not be negated: " +
                                   rule.ToString());
  }

  std::set<std::string> bound;
  for (size_t i = 0; i < rule.body.size(); ++i) {
    const Atom& atom = rule.body[i];

    // Relation/peer variables must be bound before this atom is reached:
    // the engine must know *where* to evaluate it.
    auto check_sym = [&](const SymTerm& sym, const char* what) -> Status {
      if (sym.is_variable() && bound.count(sym.var()) == 0) {
        return Status::InvalidArgument(StrFormat(
            "%s variable $%s of body atom %zu is not bound by previous "
            "atoms (bodies evaluate left to right) in rule: %s",
            what, sym.var().c_str(), i + 1, rule.ToString().c_str()));
      }
      return Status::OK();
    };
    WDL_RETURN_IF_ERROR(check_sym(atom.relation, "relation"));
    WDL_RETURN_IF_ERROR(check_sym(atom.peer, "peer"));

    if (atom.negated) {
      // Safe negation: all argument variables already bound.
      for (const Term& t : atom.args) {
        if (t.is_variable() && bound.count(t.var()) == 0) {
          return Status::InvalidArgument(StrFormat(
              "variable $%s of negated atom %s is not bound by previous "
              "positive atoms in rule: %s",
              t.var().c_str(), atom.ToString().c_str(),
              rule.ToString().c_str()));
        }
      }
      continue;  // negated atoms bind nothing
    }

    for (const Term& t : atom.args) {
      if (t.is_variable()) bound.insert(t.var());
    }
    if (atom.relation.is_variable()) bound.insert(atom.relation.var());
    if (atom.peer.is_variable()) bound.insert(atom.peer.var());
  }

  // Head range restriction.
  std::set<std::string> head_vars;
  rule.head.CollectVariables(&head_vars);
  for (const std::string& v : head_vars) {
    if (bound.count(v) == 0) {
      return Status::InvalidArgument(StrFormat(
          "head variable $%s is not bound by the positive body in rule: %s",
          v.c_str(), rule.ToString().c_str()));
    }
  }
  return Status::OK();
}

namespace {

// Predicate id for dependency purposes; variable positions collapse to
// the wildcard "*".
std::string DependencyId(const Atom& atom) {
  std::string rel = atom.relation.is_name() ? atom.relation.name() : "*";
  std::string peer = atom.peer.is_name() ? atom.peer.name() : "*";
  if (rel == "*" || peer == "*") return "*";
  return rel + "@" + peer;
}

struct Edge {
  int from;  // body predicate node
  int to;    // head predicate node
  bool negative;
};

// Tarjan SCC over a small adjacency-list graph.
class SccFinder {
 public:
  explicit SccFinder(int n) : n_(n), adj_(n) {}

  void AddEdge(int from, int to) { adj_[from].push_back(to); }

  // Returns component id per node; ids are in reverse topological order
  // of the condensation (successors have smaller ids than predecessors
  // is NOT guaranteed; we only use equality of ids).
  std::vector<int> Run() {
    index_.assign(n_, -1);
    low_.assign(n_, 0);
    on_stack_.assign(n_, false);
    comp_.assign(n_, -1);
    for (int v = 0; v < n_; ++v) {
      if (index_[v] < 0) Strongconnect(v);
    }
    return comp_;
  }

 private:
  void Strongconnect(int v) {
    // Iterative Tarjan to avoid deep recursion on long rule chains.
    struct Frame {
      int v;
      size_t next_child;
    };
    std::vector<Frame> stack_frames;
    stack_frames.push_back({v, 0});
    while (!stack_frames.empty()) {
      Frame& f = stack_frames.back();
      if (f.next_child == 0) {
        index_[f.v] = low_[f.v] = next_index_++;
        stack_.push_back(f.v);
        on_stack_[f.v] = true;
      }
      bool descended = false;
      while (f.next_child < adj_[f.v].size()) {
        int w = adj_[f.v][f.next_child++];
        if (index_[w] < 0) {
          stack_frames.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack_[w] && index_[w] < low_[f.v]) low_[f.v] = index_[w];
      }
      if (descended) continue;
      if (low_[f.v] == index_[f.v]) {
        while (true) {
          int w = stack_.back();
          stack_.pop_back();
          on_stack_[w] = false;
          comp_[w] = num_components_;
          if (w == f.v) break;
        }
        ++num_components_;
      }
      int finished = f.v;
      stack_frames.pop_back();
      if (!stack_frames.empty()) {
        int parent = stack_frames.back().v;
        if (low_[finished] < low_[parent]) low_[parent] = low_[finished];
      }
    }
  }

  int n_;
  std::vector<std::vector<int>> adj_;
  std::vector<int> index_, low_, comp_;
  std::vector<bool> on_stack_;
  std::vector<int> stack_;
  int next_index_ = 0;
  int num_components_ = 0;
};

}  // namespace

Result<Stratification> Stratify(const std::vector<Rule>& rules) {
  // Map predicate ids to dense node ids.
  std::map<std::string, int> node_of;
  auto node = [&](const std::string& id) {
    auto [it, inserted] = node_of.emplace(id, node_of.size());
    (void)inserted;
    return it->second;
  };

  std::vector<Edge> edges;
  for (const Rule& rule : rules) {
    int head = node(DependencyId(rule.head));
    for (const Atom& atom : rule.body) {
      // Negated atoms with a variable relation/peer (resolved only at
      // evaluation time) depend on the wildcard node; they stratify
      // unless the wildcard itself participates in a cycle. The
      // engine's runtime fallback (single stratum + log) covers the
      // residual unsoundness when a delegated rule later closes a loop.
      edges.push_back({node(DependencyId(atom)), head, atom.negated});
    }
  }

  int n = static_cast<int>(node_of.size());
  SccFinder scc(n);
  for (const Edge& e : edges) scc.AddEdge(e.from, e.to);
  std::vector<int> comp = n > 0 ? scc.Run() : std::vector<int>();

  for (const Edge& e : edges) {
    if (e.negative && comp[e.from] == comp[e.to]) {
      return Status::FailedPrecondition(
          "program is not stratifiable: negation occurs inside a "
          "recursive cycle");
    }
  }

  // Longest-path layering over the condensation, counting only negative
  // edges as level increments (classic stratified datalog strata).
  // Iterate to fixpoint; the condensation is a DAG so this terminates.
  std::vector<int> comp_stratum(n > 0 ? n : 0, 0);
  bool changed = true;
  int guard = n + 2;
  while (changed && guard-- > 0) {
    changed = false;
    for (const Edge& e : edges) {
      int needed = comp_stratum[comp[e.from]] + (e.negative ? 1 : 0);
      if (comp_stratum[comp[e.to]] < needed) {
        comp_stratum[comp[e.to]] = needed;
        changed = true;
      }
    }
  }

  Stratification out;
  out.rule_stratum.reserve(rules.size());
  int max_stratum = 0;
  for (const Rule& rule : rules) {
    int head_comp = comp[node_of.at(DependencyId(rule.head))];
    int s = comp_stratum[head_comp];
    out.rule_stratum.push_back(s);
    if (s > max_stratum) max_stratum = s;
  }
  out.num_strata = rules.empty() ? 1 : max_stratum + 1;
  return out;
}

Status ValidateProgram(const Program& program, Dialect dialect) {
  // Declarations: no duplicates.
  std::map<std::string, const RelationDecl*> decls;
  for (const RelationDecl& d : program.declarations) {
    auto [it, inserted] = decls.emplace(d.PredicateId(), &d);
    if (!inserted) {
      return Status::AlreadyExists("duplicate declaration of relation " +
                                   d.PredicateId());
    }
  }

  // Facts: respect a matching declaration when present.
  for (const Fact& f : program.facts) {
    auto it = decls.find(f.PredicateId());
    if (it == decls.end()) continue;  // undeclared: schema set on insert
    const RelationDecl& d = *it->second;
    if (f.arity() != d.arity()) {
      return Status::OutOfRange(StrFormat(
          "fact %s has arity %zu but relation %s is declared with arity %zu",
          f.ToString().c_str(), f.arity(), d.PredicateId().c_str(),
          d.arity()));
    }
    for (size_t i = 0; i < f.args.size(); ++i) {
      if (!ValueMatchesType(f.args[i], d.columns[i].type)) {
        return Status::InvalidArgument(StrFormat(
            "fact %s: column %zu (%s) expects %s but got %s",
            f.ToString().c_str(), i, d.columns[i].name.c_str(),
            ValueKindToString(d.columns[i].type),
            ValueKindToString(f.args[i].kind())));
      }
    }
  }

  // Rules: safety, dialect gating, stratification.
  bool has_negation = false;
  for (const Rule& r : program.rules) {
    WDL_RETURN_IF_ERROR(CheckRuleSafety(r));
    for (const Atom& a : r.body) {
      if (a.negated) has_negation = true;
    }
  }
  if (has_negation) {
    if (dialect == Dialect::kPaper2013) {
      return Status::Unimplemented(
          "negation is supported by the language but not by the 2013 "
          "system (dialect kPaper2013); use Dialect::kExtended");
    }
    WDL_ASSIGN_OR_RETURN(Stratification strat, Stratify(program.rules));
    (void)strat;
  }
  return Status::OK();
}

bool ValueMatchesType(const Value& value, ValueKind type) {
  return type == ValueKind::kAny || value.kind() == type;
}

}  // namespace wdl
