#ifndef WDL_RUNTIME_QUERY_H_
#define WDL_RUNTIME_QUERY_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "runtime/system.h"
#include "storage/tuple.h"

namespace wdl {

/// Result of an ad-hoc query: one column per distinct variable of the
/// query body, in order of first occurrence, plus the rows.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Tuple> rows;
  int rounds = 0;  // system rounds the evaluation took

  std::string ToString() const;
};

/// Runs an ad-hoc WebdamLog query at `peer` — the §4 "Query tab":
/// "they will be able to use the Query tab to launch one of the
/// pre-defined queries, or to write their own WebdamLog queries".
///
/// `body` is a comma-separated list of body atoms, e.g.
///   "selectedAttendee@Jules($a), pictures@$a($id, $name, $o, $d)".
///
/// Mechanically: a temporary intensional relation and rule
///   __query_K@peer($v1, ..., $vn) :- body
/// are installed, the system runs to quiescence (distributed bodies
/// delegate as usual, subject to the targets' delegation gates), the
/// view is snapshotted, and the rule and relation are removed again —
/// including a second convergence pass so remote residuals retract.
///
/// The query must satisfy the usual left-to-right safety conditions.
Result<QueryResult> RunQuery(System* system, const std::string& peer,
                             const std::string& body, int max_rounds = 300);

}  // namespace wdl

#endif  // WDL_RUNTIME_QUERY_H_
