#ifndef WDL_TESTS_SUPPORT_BUILDERS_H_
#define WDL_TESTS_SUPPORT_BUILDERS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ast/fact.h"
#include "ast/program.h"
#include "ast/rule.h"
#include "ast/value.h"
#include "engine/engine.h"

namespace wdl {
namespace test {

/// Value shorthands shared by every test. `I(1)`, `S("a")`, `D(0.5)`
/// instead of the Value::Int/String/Double ceremony.
Value I(int64_t v);
Value S(const std::string& v);
Value D(double v);

/// Parses a program / rule, recording a gtest failure (with the parser
/// status) on error and returning an empty AST so the test keeps going
/// to its own assertions.
Program P(const std::string& text);
Rule R(const std::string& text);

/// Fact builder: F("edge", "alice", {I(1), I(2)}).
Fact F(const std::string& relation, const std::string& peer,
       std::vector<Value> args);

/// Runs local stages until the engine settles (no network involved, so
/// only deferred self-updates keep it going).
void Settle(Engine* engine, int max_stages = 50);

}  // namespace test
}  // namespace wdl

#endif  // WDL_TESTS_SUPPORT_BUILDERS_H_
