#!/usr/bin/env python3
"""Compare two merged bench baselines (schema wdl-bench-baseline-v1).

Usage:
  bench_compare.py BASELINE.json CURRENT.json [--suite SUITE]
                   [--fail-below R] [--counters PREFIX[,PREFIX...]]
                   [--latency] [--memory] [--speedup]

Prints a per-benchmark throughput table: baseline and current wall time
per iteration, and the throughput ratio current-vs-baseline (>1 means
the current tree is faster: throughput in tuples/sec scales as
1/real_time for a fixed workload). A per-suite and overall geometric
mean follows. Exit status is 0 unless --fail-below is given and the
overall geomean ratio falls below it (informational by default: bench
boxes are noisy, especially CI runners).

--counters adds a second table of custom benchmark counters whose names
start with one of the given prefixes (default when the flag is given
bare: the propagation-plane set "bytes,wire_,delta_,full_,resyncs") —
how the tree's wire traffic moved, next to how its wall time moved.
"""

import argparse
import json
import math
import sys


def load_suites(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "wdl-bench-baseline-v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    suites = {}
    for suite, report in doc.get("suites", {}).items():
        for bench in report.get("benchmarks", []):
            if bench.get("run_type") != "iteration":
                continue
            suites.setdefault(suite, {})[bench["name"]] = bench["real_time"]
    return suites


# Google Benchmark emits custom counters as extra numeric keys on each
# benchmark object, next to its standard fields.
STANDARD_KEYS = {
    "real_time", "cpu_time", "iterations", "threads",
    "repetitions", "repetition_index", "family_index",
    "per_family_instance_index", "time_unit",
}


def load_counters(path, prefixes):
    with open(path) as f:
        doc = json.load(f)
    suites = {}
    for suite, report in doc.get("suites", {}).items():
        for bench in report.get("benchmarks", []):
            if bench.get("run_type") != "iteration":
                continue
            for key, value in bench.items():
                if key in STANDARD_KEYS or not isinstance(value, (int, float)):
                    continue
                if not any(key.startswith(p) for p in prefixes):
                    continue
                suites.setdefault(suite, {})[(bench["name"], key)] = value
    return suites


def print_counters(base_path, curr_path, prefixes, suite_filter):
    base = load_counters(base_path, prefixes)
    curr = load_counters(curr_path, prefixes)
    suites = sorted(set(base) | set(curr))
    if suite_filter:
        suites = [s for s in suites if s in set(suite_filter)]
    rows = []
    for suite in suites:
        for key in sorted(set(base.get(suite, {})) | set(curr.get(suite, {}))):
            name, counter = key
            b = base.get(suite, {}).get(key)
            c = curr.get(suite, {}).get(key)
            rows.append((f"{name}:{counter}", b, c))
    if not rows:
        return
    name_w = max(len(r[0]) for r in rows) + 2
    print()
    print(f"counters ({','.join(prefixes)})")
    print(f"{'benchmark:counter':<{name_w}} {'baseline':>14} {'current':>14} "
          f"{'ratio':>8}")
    print("-" * (name_w + 40))
    for label, b, c in rows:
        b_s = f"{b:,.0f}" if b is not None else "(absent)"
        c_s = f"{c:,.0f}" if c is not None else "(absent)"
        if b and c is not None and b > 0:
            ratio = f"{c / b:>7.2f}x"
        else:
            ratio = f"{'-':>8}"
        print(f"{label:<{name_w}} {b_s:>14} {c_s:>14} {ratio}")


LATENCY_KEYS = ("p50_ns", "p95_ns", "p99_ns")


def load_latency(path):
    """Per-benchmark tail-latency counters (p50_ns/p95_ns/p99_ns),
    recorded by benches that time each iteration by hand (bench_query's
    bound-point lookups); absent elsewhere."""
    with open(path) as f:
        doc = json.load(f)
    suites = {}
    for suite, report in doc.get("suites", {}).items():
        for bench in report.get("benchmarks", []):
            if bench.get("run_type") != "iteration":
                continue
            if not all(k in bench for k in LATENCY_KEYS):
                continue
            suites.setdefault(suite, {})[bench["name"]] = tuple(
                bench[k] for k in LATENCY_KEYS)
    return suites


def print_latency(base_path, curr_path, suite_filter):
    base = load_latency(base_path)
    curr = load_latency(curr_path)
    suites = sorted(set(base) | set(curr))
    if suite_filter:
        suites = [s for s in suites if s in set(suite_filter)]
    rows = []
    for suite in suites:
        for name in sorted(set(base.get(suite, {})) | set(curr.get(suite, {}))):
            rows.append((name, base.get(suite, {}).get(name),
                         curr.get(suite, {}).get(name)))
    print()
    if not rows:
        print("latency: no p50/p95/p99 counters in either file")
        return
    name_w = max(len(r[0]) for r in rows) + 2
    print("latency percentiles (per-iteration wall time)")
    print(f"{'benchmark':<{name_w}} {'':>9} {'p50':>10} {'p95':>10} "
          f"{'p99':>10}")
    print("-" * (name_w + 42))
    for name, b, c in rows:
        for label, values in (("baseline", b), ("current", c)):
            if values is None:
                print(f"{name:<{name_w}} {label:>9} {'(absent)':>32}")
            else:
                p50, p95, p99 = (fmt_time(v) for v in values)
                print(f"{name:<{name_w}} {label:>9} {p50:>10} {p95:>10} "
                      f"{p99:>10}")


def load_memory(path):
    """Suite-level peak RSS recorded by run_bench.cmake's rss_run
    wrapper; absent in baselines taken before the wrapper existed."""
    with open(path) as f:
        doc = json.load(f)
    return {suite: report.get("peak_rss_mb")
            for suite, report in doc.get("suites", {}).items()}


def print_memory(base_path, curr_path, suite_filter):
    base = load_memory(base_path)
    curr = load_memory(curr_path)
    suites = sorted(set(base) | set(curr))
    if suite_filter:
        suites = [s for s in suites if s in set(suite_filter)]
    rows = [(s, base.get(s), curr.get(s)) for s in suites
            if base.get(s) is not None or curr.get(s) is not None]
    print()
    if not rows:
        print("memory: no peak_rss_mb data in either file "
              "(benches ran without the rss_run wrapper)")
        return
    name_w = max(len(r[0]) for r in rows) + 2
    print("memory (peak RSS of each bench process, MB)")
    print(f"{'suite':<{name_w}} {'baseline':>10} {'current':>10} "
          f"{'ratio':>8}")
    print("-" * (name_w + 32))
    for suite, b, c in rows:
        b_s = f"{b:,.1f}" if b is not None else "(absent)"
        c_s = f"{c:,.1f}" if c is not None else "(absent)"
        if b and c is not None and b > 0:
            ratio = f"{c / b:>7.2f}x"
        else:
            ratio = f"{'-':>8}"
        print(f"{suite:<{name_w}} {b_s:>10} {c_s:>10} {ratio}")


def print_speedup(path, suite_filter):
    """Thread-scaling table within one baseline: benchmarks whose name
    ends in "/N" are grouped by the prefix, and each variant is shown
    as a speedup over its "/1" sibling (the serial-oracle run)."""
    suites = load_suites(path)
    names = sorted(set(suite_filter) & set(suites)) if suite_filter \
        else sorted(suites)
    rows = []
    for suite in names:
        families = {}
        for name, t in suites[suite].items():
            head, _, arg = name.rpartition("/")
            if head and arg.isdigit():
                families.setdefault(head, {})[int(arg)] = t
        for head in sorted(families):
            variants = families[head]
            if 1 not in variants or len(variants) < 2:
                continue
            t1 = variants[1]
            for n in sorted(variants):
                rows.append((f"{head}/{n}", variants[n], t1 / variants[n]))
    if not rows:
        return
    name_w = max(len(r[0]) for r in rows) + 2
    print()
    print(f"thread scaling ({path})")
    print(f"{'benchmark':<{name_w}} {'time':>10} {'speedup vs /1':>14}")
    print("-" * (name_w + 26))
    for label, t, speedup in rows:
        print(f"{label:<{name_w}} {fmt_time(t):>10} {speedup:>13.2f}x")


def fmt_time(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.2f}{unit}"
    return f"{ns:.0f}ns"


def geomean(ratios):
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--suite", action="append",
                        help="restrict to these suites (repeatable)")
    parser.add_argument("--fail-below", type=float, default=None,
                        help="exit 1 when the overall geomean throughput "
                             "ratio is below this value")
    parser.add_argument("--counters", nargs="?", const="bytes,wire_,delta_,"
                        "full_,resyncs", default=None, metavar="PREFIXES",
                        help="also print custom counters whose names start "
                             "with one of these comma-separated prefixes")
    parser.add_argument("--latency", action="store_true",
                        help="also print p50/p95/p99 per-iteration wall "
                             "times for benches that record them "
                             "(bench_query bound-point lookups)")
    parser.add_argument("--memory", action="store_true",
                        help="also print the per-suite peak-RSS column "
                             "recorded by the rss_run wrapper")
    parser.add_argument("--speedup", action="store_true",
                        help="also print a thread-scaling table from the "
                             "current file: benchmarks named NAME/N shown "
                             "as speedup over their NAME/1 sibling")
    args = parser.parse_args()

    base = load_suites(args.baseline)
    curr = load_suites(args.current)
    suites = sorted(set(base) & set(curr))
    if args.suite:
        suites = [s for s in suites if s in set(args.suite)]
    if not suites:
        sys.exit("no common suites to compare")

    name_w = max((len(n) for s in suites for n in base[s]), default=30) + 2
    all_ratios = []
    print(f"{'benchmark':<{name_w}} {'baseline':>10} {'current':>10} "
          f"{'throughput':>11}")
    print("-" * (name_w + 34))
    for suite in suites:
        common = sorted(set(base[suite]) & set(curr[suite]))
        only_base = sorted(set(base[suite]) - set(curr[suite]))
        only_curr = sorted(set(curr[suite]) - set(base[suite]))
        if not common and not only_base and not only_curr:
            continue
        ratios = []
        print(f"[{suite}]")
        for name in common:
            b, c = base[suite][name], curr[suite][name]
            ratio = b / c if c > 0 else float("inf")
            ratios.append(ratio)
            all_ratios.append(ratio)
            print(f"  {name:<{name_w - 2}} {fmt_time(b):>10} "
                  f"{fmt_time(c):>10} {ratio:>10.2f}x")
        for name in only_base:
            print(f"  {name:<{name_w - 2}} {'(removed)':>10}")
        for name in only_curr:
            print(f"  {name:<{name_w - 2}} {'(new)':>32}")
        if ratios:
            print(f"  {'geomean':<{name_w - 2}} {'':>21} "
                  f"{geomean(ratios):>10.2f}x")
    if all_ratios:
        overall = geomean(all_ratios)
        print("-" * (name_w + 34))
        print(f"{'overall geomean':<{name_w}} {'':>21} {overall:>10.2f}x "
              f"({len(all_ratios)} benchmarks)")
        if args.fail_below is not None and overall < args.fail_below:
            print(f"FAIL: overall geomean {overall:.2f}x is below "
                  f"{args.fail_below:.2f}x")
            return 1
    if args.counters:
        print_counters(args.baseline, args.current,
                       [p for p in args.counters.split(",") if p],
                       args.suite)
    if args.latency:
        print_latency(args.baseline, args.current, args.suite)
    if args.memory:
        print_memory(args.baseline, args.current, args.suite)
    if args.speedup:
        print_speedup(args.current, args.suite)
    return 0


if __name__ == "__main__":
    sys.exit(main())
