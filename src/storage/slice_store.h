#ifndef WDL_STORAGE_SLICE_STORE_H_
#define WDL_STORAGE_SLICE_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/tuple.h"

namespace wdl {

/// Receiver-side store of remote contributions to local relations.
///
/// A WebdamLog peer's intensional relations are views fed by several
/// remote senders at once: each sender continuously maintains its own
/// *slice* (the tuples it currently derives into the relation), and the
/// view is the union of all slices. The store keeps, per (relation,
/// sender):
///
///  - the sender's current slice,
///  - the applied *stream version* of the differential-propagation
///    protocol (see DESIGN.md §5) — how many updates of that sender's
///    contribution have been applied here;
///
/// and per relation an aggregate **support count** per tuple (how many
/// senders currently contribute it). Seeding a view iterates the
/// support map once, so multi-sender overlap costs one insert instead
/// of one per sender, and a tuple leaves the view exactly when its last
/// supporter withdraws it — the counting flavor of DRed-style deletion
/// handling, without rederivation.
///
/// Mutations are idempotent at the tuple level (an insert already in
/// the slice, or a delete of an absent tuple, changes nothing and does
/// not disturb support counts), so replayed messages cannot skew the
/// union. Ordering across messages is the caller's job via the version
/// gate below.
///
/// Not thread-safe; one store per engine, like everything per-peer.
class SliceStore {
 public:
  using TupleSet = std::unordered_set<Tuple, TupleHasher>;

  /// Version-gate verdict for one arriving versioned message.
  enum class Gate : uint8_t {
    kApply = 0,  // in-order: apply and commit the new version
    kStale = 1,  // duplicate or reordered-old: drop silently
    kGap = 2,    // a preceding update was lost: request a resync
  };

  /// Gates a differential update moving the stream `base_version ->
  /// version`. Pure check; commit happens in the Apply* calls (or
  /// CommitVersion for slice-less streams).
  Gate CheckDelta(const std::string& relation, const std::string& sender,
                  uint64_t base_version, uint64_t version) const;

  /// Gates a full snapshot stamped `version`. A snapshot repairs gaps,
  /// so anything at-or-ahead-of the current stream applies; only a
  /// reordered old snapshot is stale.
  Gate CheckSnapshot(const std::string& relation, const std::string& sender,
                     uint64_t version) const;

  /// Advances the stream version without touching slice content — the
  /// bookkeeping path for extensional targets, where arriving tuples
  /// union-insert straight into the relation and no slice is kept.
  void CommitVersion(const std::string& relation, const std::string& sender,
                     uint64_t version);

  /// Replaces `sender`'s slice wholesale (the full-slice protocol; no
  /// version attached). Returns true when the slice actually changed —
  /// decided by direct set comparison, never by hash.
  ///
  /// When non-null, `gained`/`lost` receive the tuples whose aggregate
  /// support crossed zero (0 -> 1 senders, last sender withdrew): the
  /// per-tuple view-membership transitions that drive incremental view
  /// maintenance (DESIGN.md §6). Tuples whose support merely moved
  /// between positive counts are not reported.
  bool ReplaceSlice(const std::string& relation, const std::string& sender,
                    TupleSet slice, std::vector<Tuple>* gained = nullptr,
                    std::vector<Tuple>* lost = nullptr);

  /// Replaces the slice and commits `version` (a differential-protocol
  /// snapshot / resync response). Transition reporting as ReplaceSlice.
  bool ApplySnapshot(const std::string& relation, const std::string& sender,
                     TupleSet slice, uint64_t version,
                     std::vector<Tuple>* gained = nullptr,
                     std::vector<Tuple>* lost = nullptr);

  /// Applies one differential update to `sender`'s slice and commits
  /// `version`; the inserts are consumed (moved into the slice).
  /// Returns true when any tuple was actually added or removed.
  /// Transition reporting as ReplaceSlice.
  bool ApplyDelta(const std::string& relation, const std::string& sender,
                  std::vector<Tuple> inserts,
                  const std::vector<Tuple>& deletes, uint64_t version,
                  std::vector<Tuple>* gained = nullptr,
                  std::vector<Tuple>* lost = nullptr);

  /// Invokes `fn(const Tuple&)` on every tuple contributed by at least
  /// one sender to `relation` (each distinct tuple once).
  template <typename Fn>
  void ForEachContribution(const std::string& relation, Fn&& fn) const {
    auto it = support_.find(relation);
    if (it == support_.end()) return;
    for (const auto& [tuple, count] : it->second) fn(tuple);
  }

  /// Invokes `fn(const std::string&)` for every relation with at least
  /// one contributed tuple, in name order.
  template <typename Fn>
  void ForEachContributedRelation(Fn&& fn) const {
    for (const auto& [relation, tuples] : support_) {
      if (!tuples.empty()) fn(relation);
    }
  }

  /// Drops every slice, stream, and support entry of `relation` (used
  /// when a scratch relation's name is recycled).
  void DropRelation(const std::string& relation);

  /// Relations for which `sender` has a stream here, in name order.
  std::vector<std::string> RelationsFromSender(
      const std::string& sender) const;

  /// Senders with a stream for `relation` here, in name order (used to
  /// tell them to forget their side of the stream when the relation is
  /// dropped).
  std::vector<std::string> SendersForRelation(
      const std::string& relation) const;

  /// Forgets the stream *positions* of every stream from `sender`
  /// (slices stay). After a transport link reset the sender may have
  /// restarted and begun renumbering its streams from 1; resetting to
  /// version 0 lets its fresh snapshots pass the version gate instead
  /// of being dropped as stale.
  void ResetStreamVersions(const std::string& sender);

  /// Rebuilds one stream verbatim from a durability snapshot: slice
  /// content and applied version, with support counts re-derived.
  /// Restore-only — replaces whatever stream exists, reporting no
  /// transitions (the recovering engine rebuilds views from scratch on
  /// its first stage anyway).
  void RestoreStream(const std::string& relation, const std::string& sender,
                     uint64_t version, TupleSet slice);

  /// Visits every stream as fn(relation, sender, version, slice) in
  /// (relation, sender) order — durability snapshot writers iterate
  /// this, so determinism matters.
  template <typename Fn>
  void ForEachStream(Fn&& fn) const {
    for (const auto& [relation, senders] : streams_) {
      for (const auto& [sender, stream] : senders) {
        fn(relation, sender, stream.version, stream.slice);
      }
    }
  }

  // --- observability (tests, listings) -------------------------------
  uint64_t StreamVersion(const std::string& relation,
                         const std::string& sender) const;
  /// Senders currently contributing at least one tuple to `relation`.
  size_t ContributorCount(const std::string& relation) const;
  /// How many senders currently contribute `tuple` to `relation`.
  uint32_t SupportCount(const std::string& relation,
                        const Tuple& tuple) const;
  /// nullptr when the sender has no stream for `relation`.
  const TupleSet* Slice(const std::string& relation,
                        const std::string& sender) const;

 private:
  struct Stream {
    TupleSet slice;
    uint64_t version = 0;
  };
  using SupportMap = std::unordered_map<Tuple, uint32_t, TupleHasher>;

  /// Returns true when the tuple's aggregate support crossed zero.
  bool AddSupport(const std::string& relation, const Tuple& tuple);
  bool DropSupport(const std::string& relation, const Tuple& tuple);

  // Outer maps are ordered so relation/sender iteration is
  // deterministic; the per-relation SupportMap is hash-ordered, so
  // ForEachContribution visits tuples in unspecified order (consumers
  // feed sets, where order is immaterial — don't add order-sensitive
  // logic on top of it).
  std::map<std::string, std::map<std::string, Stream>> streams_;
  std::map<std::string, SupportMap> support_;
};

}  // namespace wdl

#endif  // WDL_STORAGE_SLICE_STORE_H_
