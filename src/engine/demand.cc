#include "engine/demand.h"

#include <algorithm>
#include <string>
#include <utility>

#include "engine/engine.h"
#include "engine/plan_cache.h"

namespace wdl {

Status DemandEvaluator::Prepare(const Rule& query_rule) {
  catalog_ = &engine_->catalog();
  const std::string& self = engine_->self_peer();
  self_sym_ = Symbol::Intern(self);
  query_rule_ = query_rule;

  if (query_rule.body.empty()) {
    return Status::FailedPrecondition("demand: empty query body");
  }
  bool any_bound = false;
  for (const Atom& atom : query_rule.body) {
    if (atom.negated) {
      return Status::FailedPrecondition("demand: negated query atom");
    }
    if (atom.relation.is_variable()) {
      return Status::FailedPrecondition("demand: variable query relation");
    }
    if (atom.peer.is_variable() || atom.peer.name() != self) {
      return Status::FailedPrecondition("demand: query atom not local");
    }
    for (const Term& t : atom.args) {
      if (t.is_constant()) any_bound = true;
    }
  }
  if (!any_bound) {
    return Status::FailedPrecondition("demand: no bound argument");
  }

  // Walk the local rule graph from the query's relations. Extensional
  // relations terminate a branch (their catalog content is complete at
  // quiescence — deferred self-inserts and deletion-rule effects have
  // all been applied). Intensional relations get a fragment and pull in
  // their local writers, which must stay inside the fragment model:
  // insert-only, positive, every atom constant-named and local.
  const std::vector<const InstalledRule*> rules = engine_->rules();
  std::vector<Symbol> work;
  std::set<Symbol> visited;
  auto enqueue = [&](Symbol s) {
    if (visited.insert(s).second) work.push_back(s);
  };
  for (const Atom& atom : query_rule.body) {
    enqueue(Symbol::Intern(atom.relation.name()));
  }
  while (!work.empty()) {
    const Symbol rel = work.back();
    work.pop_back();
    const Relation* existing =
        static_cast<const Catalog&>(*catalog_).Get(rel);
    if (existing != nullptr &&
        existing->kind() == RelationKind::kExtensional) {
      continue;
    }
    fragments_[rel];
    for (const InstalledRule* installed : rules) {
      const PlanStaticInfo& info = installed->info;
      if (!info.HeadCanWrite(rel)) continue;
      const bool writes_here =
          info.head_peer_var || info.head_peer == self_sym_;
      if (!writes_here) continue;
      if (info.head_relation_var) {
        return Status::FailedPrecondition(
            "demand: variable head relation writes " + rel.str());
      }
      if (info.head_peer_var) {
        return Status::FailedPrecondition(
            "demand: variable head peer may write " + rel.str());
      }
      if (installed->rule.head_deletes) {
        return Status::FailedPrecondition(
            "demand: deletion rule targets " + rel.str());
      }
      for (const Atom& a : installed->rule.body) {
        if (a.negated) {
          return Status::FailedPrecondition(
              "demand: negation in a rule deriving " + rel.str());
        }
        if (a.relation.is_variable()) {
          return Status::FailedPrecondition(
              "demand: variable body relation in a rule deriving " +
              rel.str());
        }
        if (a.peer.is_variable() || a.peer.name() != self) {
          return Status::FailedPrecondition(
              "demand: a rule deriving " + rel.str() +
              " reads a remote atom");
        }
      }
      writers_[rel].push_back(&installed->rule);
      for (const Atom& a : installed->rule.body) {
        enqueue(Symbol::Intern(a.relation.name()));
      }
    }
  }

  root_plan_ = CompileRule(query_rule_);
  return Status::OK();
}

std::vector<Tuple> DemandEvaluator::Run() {
  // The root pass joins extensional atoms directly and registers the
  // query's initial demands. Fragments are empty at this point, so
  // intensional atoms contribute bindings only through later Δ rounds.
  Activation root;
  root.plan = &root_plan_;
  root.is_root = true;
  activations_.push_back(std::move(root));
  for (size_t i = 0; i < root_plan_.atoms.size(); ++i) {
    const PlanAtom& a = root_plan_.atoms[i];
    if (a.relation.is_const && fragments_.count(a.relation.sym) != 0) {
      subs_[a.relation.sym].emplace_back(0, i);
    }
  }
  ExecActivation(0, -1, nullptr);

  // Seed fragments with cross-peer contributions (remote derived sets
  // and delegation results materialized in the slice store) — received
  // state the local writers cannot recompute.
  for (auto it = fragments_.begin(); it != fragments_.end(); ++it) {
    Fragment& frag = it->second;
    engine_->slice_store().ForEachContribution(
        it->first.str(), [&](const Tuple& t) {
          if (frag.pending.Insert(t)) ++stats_.fragment_tuples;
        });
  }

  while (true) {
    // New (relation, adornment) pairs activate their writers' demand
    // plans before the rotation, so the first Δ pass over the new
    // demand set already runs them.
    for (const MagicKey& key : pending_activations_) EnsureActivations(key);
    pending_activations_.clear();

    // The rotation is the only place `all` grows (EmitHead and
    // RegisterDemand checked membership without inserting), so no pass
    // ever mutates a DeltaSet it may be iterating or probing.
    bool any_delta = false;
    auto rotate = [&](Fragment& f) {
      f.delta = std::move(f.pending);
      f.pending = DeltaSet();
      for (const Tuple& t : f.delta.tuples()) f.all.Insert(t);
      if (!f.delta.empty()) any_delta = true;
    };
    for (auto it = fragments_.begin(); it != fragments_.end(); ++it) {
      rotate(it->second);
    }
    for (auto it = magic_.begin(); it != magic_.end(); ++it) {
      rotate(it->second);
    }
    if (!any_delta) break;
    ++stats_.rounds;

    for (auto it = magic_.begin(); it != magic_.end(); ++it) {
      if (it->second.delta.empty()) continue;
      auto subs = magic_subs_.find(it->first);
      if (subs == magic_subs_.end()) continue;
      for (size_t index : subs->second) {
        ExecActivation(index, 0, &it->second.delta);
      }
    }
    for (auto it = fragments_.begin(); it != fragments_.end(); ++it) {
      if (it->second.delta.empty()) continue;
      auto subs = subs_.find(it->first);
      if (subs == subs_.end()) continue;
      for (const std::pair<size_t, size_t>& sub : subs->second) {
        ExecActivation(sub.first, static_cast<int>(sub.second),
                       &it->second.delta);
      }
    }
  }
  return std::vector<Tuple>(results_.begin(), results_.end());
}

void DemandEvaluator::EnsureActivations(const MagicKey& key) {
  auto w = writers_.find(key.first);
  if (w == writers_.end()) return;
  for (const Rule* rule : w->second) {
    const size_t arity = rule->head.args.size();
    // A demand binding positions this head does not have can never
    // match a tuple this rule derives.
    if (arity < 64 && (key.second >> arity) != 0) continue;
    Activation act;
    act.shared_plan = SharedPlanCache::Instance().AcquireDemand(*rule,
                                                               key.second);
    act.plan = act.shared_plan.get();
    act.head_relation = key.first;
    act.magic_key = key;
    const size_t index = activations_.size();
    activations_.push_back(std::move(act));
    ++stats_.activations;
    magic_subs_[key].push_back(index);
    const RulePlan& plan = *activations_[index].plan;
    for (size_t i = 1; i < plan.atoms.size(); ++i) {
      const PlanAtom& a = plan.atoms[i];
      if (a.relation.is_const && fragments_.count(a.relation.sym) != 0) {
        subs_[a.relation.sym].emplace_back(index, i);
      }
    }
  }
}

void DemandEvaluator::ExecActivation(size_t index, int delta_orig,
                                     const DeltaSet* delta_set) {
  const Activation& act = activations_[index];
  const RulePlan& plan = *act.plan;
  slots_.assign(plan.num_slots, nullptr);
  if (delta_orig >= 0 &&
      static_cast<size_t>(delta_orig) < plan.delta_variants.size() &&
      plan.delta_variants[delta_orig].valid) {
    const DeltaVariant& v = plan.delta_variants[delta_orig];
    ExecStep(act, v.atoms, &v.order, 0, delta_orig, delta_set);
  } else {
    ExecStep(act, plan.atoms, nullptr, 0, delta_orig, delta_set);
  }
}

void DemandEvaluator::ExecStep(const Activation& act,
                               const std::vector<PlanAtom>& atoms,
                               const std::vector<uint16_t>* order,
                               size_t atom_index, int delta_orig,
                               const DeltaSet* delta_set) {
  if (atom_index == atoms.size()) {
    EmitHead(act);
    return;
  }
  const PlanAtom& atom = atoms[atom_index];
  const size_t orig = order != nullptr ? (*order)[atom_index] : atom_index;
  const bool is_delta =
      delta_orig >= 0 && orig == static_cast<size_t>(delta_orig);

  auto visit = [&](const Tuple& tuple) {
    if (tuple.size() == atom.terms.size()) {
      ++stats_.tuples_examined;
      if (UnifyTuple(atom, tuple)) {
        ExecStep(act, atoms, order, atom_index + 1, delta_orig, delta_set);
      }
    }
    for (uint16_t s : atom.bound_slots) slots_[s] = nullptr;
  };
  auto probe_set = [&](const DeltaSet& src) {
    if (atom.index_column >= 0) {
      const Value* key = atom.index_key_is_const ? &atom.index_const
                                                 : slots_[atom.index_slot];
      if (key != nullptr) {
        src.LookupEqual(static_cast<size_t>(atom.index_column), *key, visit);
        return;
      }
    }
    for (const Tuple& t : src.tuples()) visit(t);
  };

  if (act.plan->has_demand_atom && orig == 0) {
    const Fragment& magic = magic_.find(act.magic_key)->second;
    probe_set(is_delta ? *delta_set : magic.all);
    return;
  }
  const Symbol rel = atom.relation.sym;  // constant-named by eligibility
  auto frag = fragments_.find(rel);
  if (frag != fragments_.end()) {
    if (is_delta) {
      // Δ tuples are given, not demanded — registering a demand here
      // would be mask-of-constants broad and defeat the restriction.
      probe_set(*delta_set);
      return;
    }
    RegisterDemand(rel, atom);
    probe_set(frag->second.all);
    return;
  }
  if (is_delta) return;  // extensional atoms have no Δ subscriptions
  Relation* relation = catalog_->Get(rel);
  if (relation == nullptr) return;
  if (atom.index_column >= 0) {
    const Value* key = atom.index_key_is_const ? &atom.index_const
                                               : slots_[atom.index_slot];
    if (key != nullptr) {
      relation->LookupEqual(static_cast<size_t>(atom.index_column), *key,
                            visit);
      return;
    }
  }
  relation->ForEach(visit);
}

bool DemandEvaluator::UnifyTuple(const PlanAtom& atom, const Tuple& tuple) {
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    const PlanTerm& pt = atom.terms[i];
    switch (pt.op) {
      case PlanTerm::Op::kConst:
        if (!(tuple[i] == pt.value)) return false;
        break;
      case PlanTerm::Op::kCheck: {
        const Value* v = slots_[pt.slot];
        if (v == nullptr || !(tuple[i] == *v)) return false;
        break;
      }
      case PlanTerm::Op::kBind:
        slots_[pt.slot] = &tuple[i];
        break;
    }
  }
  return true;
}

void DemandEvaluator::EmitHead(const Activation& act) {
  const PlanHead& head = act.plan->head;
  if (head.dead) return;
  Tuple out;
  out.reserve(head.terms.size());
  for (const PlanTerm& pt : head.terms) {
    if (pt.op == PlanTerm::Op::kConst) {
      out.push_back(pt.value);
    } else {
      const Value* v = slots_[pt.slot];
      if (v == nullptr) return;
      out.push_back(*v);
    }
  }
  if (act.is_root) {
    results_.insert(std::move(out));
    return;
  }
  // Semi-naive discipline: a pass may be iterating (or holding a lazy
  // index into) frag.all right now — e.g. nonlinear recursion probing
  // its own head's fragment — so only the membership check touches it;
  // the insert lands in `pending` and reaches `all` at the rotation.
  Fragment& frag = fragments_[act.head_relation];
  if (!frag.all.Contains(out) && frag.pending.Insert(std::move(out))) {
    ++stats_.fragment_tuples;
  }
}

void DemandEvaluator::RegisterDemand(Symbol relation, const PlanAtom& atom) {
  uint64_t mask = 0;
  Tuple keys;
  const size_t limit = std::min<size_t>(atom.terms.size(), 64);
  for (size_t j = 0; j < limit; ++j) {
    if (((atom.prebound_args >> j) & 1) == 0) continue;
    const PlanTerm& pt = atom.terms[j];
    if (pt.op == PlanTerm::Op::kConst) {
      keys.push_back(pt.value);
    } else {
      const Value* v = slots_[pt.slot];
      if (v == nullptr) continue;  // defensively widen the demand
      keys.push_back(*v);
    }
    mask |= uint64_t{1} << j;
  }
  const MagicKey key{relation, mask};
  // Same no-mutation discipline as EmitHead: the demand-atom probe of
  // `magic.all` may be live on the stack (a writer's body demanding its
  // own head's adornment), so new demands go to `pending` only.
  Fragment& magic = magic_[key];
  if (magic.all.Contains(keys)) return;  // already demanded
  if (!magic.pending.Insert(std::move(keys))) return;
  ++stats_.demands_registered;
  if (activated_.insert(key).second) pending_activations_.push_back(key);
}

}  // namespace wdl
