#include "runtime/query.h"

#include <mutex>
#include <vector>

#include "parser/parser.h"

namespace wdl {

namespace {

// Scratch relation names are recycled through a free pool: every name
// ever minted interns one permanent symbol-table entry (base/symbol.h),
// so a long-lived System issuing millions of ad-hoc queries must reuse
// a bounded set of names instead of minting "__query_<n>" forever. The
// pool is process-wide (names must be unique across concurrent queries
// on any System in the process, like the old atomic counter).
std::mutex g_query_names_mu;
std::vector<std::string>& QueryNamePool() {
  static std::vector<std::string> pool;
  return pool;
}

std::string AcquireQueryName() {
  static uint64_t counter = 0;
  std::lock_guard<std::mutex> lock(g_query_names_mu);
  std::vector<std::string>& pool = QueryNamePool();
  if (!pool.empty()) {
    std::string name = std::move(pool.back());
    pool.pop_back();
    return name;
  }
  return "__query_" + std::to_string(counter++);
}

void ReleaseQueryName(std::string name) {
  std::lock_guard<std::mutex> lock(g_query_names_mu);
  QueryNamePool().push_back(std::move(name));
}

}  // namespace

std::string QueryResult::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ", ";
    out += "$" + columns[i];
  }
  out += ")\n";
  for (const Tuple& row : rows) {
    out += "  " + TupleToString(row) + "\n";
  }
  if (rows.empty()) out += "  (no rows)\n";
  return out;
}

Result<QueryResult> RunQuery(System* system, const std::string& peer_name,
                             const std::string& body, int max_rounds) {
  Peer* peer = system->GetPeer(peer_name);
  if (peer == nullptr) {
    return Status::NotFound("no peer named " + peer_name);
  }

  // Unique while in use (concurrent/nested queries never collide),
  // recycled afterwards so the symbol table stays bounded.
  std::string relation = AcquireQueryName();

  // Parse the body by wrapping it in a placeholder rule, then rebuild
  // the head from the variables in order of first occurrence.
  Result<Rule> skeleton_result =
      ParseRule(relation + "@" + peer_name + "() :- " + body);
  if (!skeleton_result.ok()) {
    ReleaseQueryName(std::move(relation));  // nothing was declared
    return skeleton_result.status();
  }
  Rule skeleton = std::move(skeleton_result).value();

  std::vector<std::string> columns;
  auto note_var = [&](const std::string& v) {
    for (const std::string& existing : columns) {
      if (existing == v) return;
    }
    columns.push_back(v);
  };
  for (const Atom& atom : skeleton.body) {
    if (atom.relation.is_variable()) note_var(atom.relation.var());
    if (atom.peer.is_variable()) note_var(atom.peer.var());
    for (const Term& t : atom.args) {
      if (t.is_variable()) note_var(t.var());
    }
  }

  Rule query_rule = skeleton;
  query_rule.head.args.clear();
  for (const std::string& v : columns) {
    query_rule.head.args.push_back(Term::Variable(v));
  }

  RelationDecl decl;
  decl.relation = relation;
  decl.peer = peer_name;
  decl.kind = RelationKind::kIntensional;
  decl.columns.resize(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) {
    decl.columns[i].name = columns[i];
    decl.columns[i].type = ValueKind::kAny;
  }
  Status declared = peer->engine().DeclareRelation(decl);
  if (!declared.ok()) {
    ReleaseQueryName(std::move(relation));
    return declared;
  }
  Result<uint64_t> rule_id = peer->engine().AddRule(query_rule);
  if (!rule_id.ok()) {
    if (peer->engine().DropScratchRelation(relation).ok()) {
      ReleaseQueryName(std::move(relation));
    }
    return rule_id.status();
  }

  int rounds_before = system->rounds_run();
  Result<int> converged = system->RunUntilQuiescent(max_rounds);

  QueryResult result;
  result.columns = columns;
  const Relation* rel = peer->engine().catalog().Get(relation);
  if (rel != nullptr) result.rows = rel->SortedTuples();
  result.rounds =
      (converged.ok() ? *converged : system->rounds_run()) - rounds_before;

  // Tear down: remove the rule and converge again so any delegated
  // residuals are retracted at remote peers, then drop the scratch
  // relation and recycle its name. A system that failed to quiesce may
  // still have scratch traffic in flight, so the name is abandoned
  // (leaked, like the pre-recycling behavior) rather than reused.
  // Remote senders keep their contribution-stream versions for the
  // dropped name, so a recycled name's first remote contribution takes
  // one gap->resync round trip before it lands (self-healing, costs
  // two extra rounds on distributed queries only).
  Status removed = peer->engine().RemoveRule(*rule_id);
  bool torn_down = system->RunUntilQuiescent(max_rounds).ok();
  if (removed.ok() && torn_down &&
      peer->engine().DropScratchRelation(relation).ok()) {
    ReleaseQueryName(std::move(relation));
  }
  WDL_RETURN_IF_ERROR(removed);
  if (!converged.ok()) return converged.status();
  return result;
}

}  // namespace wdl
