#ifndef WDL_WRAPPERS_FACEBOOK_WRAPPER_H_
#define WDL_WRAPPERS_FACEBOOK_WRAPPER_H_

#include <cstdint>
#include <string>

#include "runtime/peer.h"
#include "runtime/wrapper.h"
#include "wrappers/facebook_service.h"

namespace wdl {

/// Wrapper for a Facebook *group* wall, bound to a peer such as
/// SigmodFB. Exports (all extensional):
///
///   pictures@<peer>(id: int, name: string, owner: string, data: blob)
///   comments@<peer>(picId: int, author: string, text: string)
///
/// Sync is bidirectional:
///  - inbound: pictures/comments that appeared on the group wall become
///    fact insertions ("the sigmod peer will automatically retrieve the
///    pictures with their comments ... from the Facebook group");
///  - outbound: tuples that WebdamLog rules derived into pictures@<peer>
///    are posted to the wall ("a photo ... is instantly published to
///    pictures@sigmod, and then propagated to pictures@SigmodFB").
///    Posts by non-members are rejected by the service and reported in
///    rejected_posts().
class FacebookGroupWrapper : public Wrapper {
 public:
  FacebookGroupWrapper(std::string peer_name, FacebookService* service,
                       std::string group);

  const std::string& peer_name() const override { return peer_name_; }
  Status Setup(Peer* peer) override;
  Status Sync(Peer* peer) override;

  uint64_t pictures_imported() const { return pictures_imported_; }
  uint64_t pictures_posted() const { return pictures_posted_; }
  uint64_t rejected_posts() const { return rejected_posts_; }

 private:
  std::string peer_name_;
  FacebookService* service_;
  std::string group_;
  uint64_t last_seen_version_ = ~uint64_t{0};  // force first sync
  uint64_t pictures_imported_ = 0;
  uint64_t pictures_posted_ = 0;
  uint64_t rejected_posts_ = 0;
};

/// Wrapper for a Facebook *user account*, bound to a peer such as
/// ÉmilienFB. Exports read-only views of the account (§2):
///
///   friends@<peer>(userID: string, friendName: string)
///   pictures@<peer>(picID: int, owner: string, url: string)
class FacebookUserWrapper : public Wrapper {
 public:
  FacebookUserWrapper(std::string peer_name, FacebookService* service,
                      std::string user);

  const std::string& peer_name() const override { return peer_name_; }
  Status Setup(Peer* peer) override;
  Status Sync(Peer* peer) override;

 private:
  std::string peer_name_;
  FacebookService* service_;
  std::string user_;
  uint64_t last_seen_version_ = ~uint64_t{0};
};

}  // namespace wdl

#endif  // WDL_WRAPPERS_FACEBOOK_WRAPPER_H_
