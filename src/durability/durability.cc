#include "durability/durability.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "base/logging.h"
#include "net/wire.h"

namespace wdl {

namespace {

constexpr char kSnapshotPrefix[] = "snap-";
constexpr char kSnapshotSuffix[] = ".wdls";
constexpr char kWalPrefix[] = "wal-";
constexpr char kWalSuffix[] = ".log";

/// mkdir -p: an operator's --data-dir should not require pre-created
/// parents.
Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  if (errno == ENOENT) {
    size_t slash = dir.find_last_of('/');
    if (slash != std::string::npos && slash > 0) {
      WDL_RETURN_IF_ERROR(EnsureDir(dir.substr(0, slash)));
      if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
        return Status::OK();
      }
    }
  }
  return Status::Unavailable("mkdir " + dir + ": " + std::strerror(errno));
}

/// Parses "<prefix><number><suffix>" into the number; nullopt when the
/// name has a different shape.
bool ParseGeneration(const std::string& name, const char* prefix,
                     const char* suffix, uint64_t* generation) {
  size_t plen = std::strlen(prefix);
  size_t slen = std::strlen(suffix);
  if (name.size() <= plen + slen) return false;
  if (name.compare(0, plen, prefix) != 0) return false;
  if (name.compare(name.size() - slen, slen, suffix) != 0) return false;
  std::string digits = name.substr(plen, name.size() - plen - slen);
  if (digits.empty()) return false;
  uint64_t g = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    g = g * 10 + static_cast<uint64_t>(c - '0');
  }
  *generation = g;
  return true;
}

Result<std::vector<uint64_t>> ListGenerations(const std::string& dir,
                                              const char* prefix,
                                              const char* suffix) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::Unavailable("opendir " + dir + ": " + std::strerror(errno));
  }
  std::vector<uint64_t> out;
  while (struct dirent* ent = ::readdir(d)) {
    uint64_t g = 0;
    if (ParseGeneration(ent->d_name, prefix, suffix, &g)) out.push_back(g);
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

void RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    WDL_LOG(Warning) << "durability: could not remove " << path << ": "
                  << std::strerror(errno);
  }
}

}  // namespace

const char* WalRecordTypeToString(WalRecordType type) {
  switch (type) {
    case WalRecordType::kEnvelope:
      return "envelope";
    case WalRecordType::kLocalFactInsert:
      return "local-fact-insert";
    case WalRecordType::kLocalFactDelete:
      return "local-fact-delete";
    case WalRecordType::kLocalDecl:
      return "local-decl";
    case WalRecordType::kLocalRuleAdd:
      return "local-rule-add";
    case WalRecordType::kLocalRuleRemove:
      return "local-rule-remove";
    case WalRecordType::kStageOutbound:
      return "stage-outbound";
    case WalRecordType::kDelegationApprove:
      return "delegation-approve";
    case WalRecordType::kDelegationReject:
      return "delegation-reject";
  }
  return "unknown";
}

std::string EncodeWalRecord(const WalRecord& record) {
  WireEncoder enc;
  enc.PutU8(static_cast<uint8_t>(record.type));
  switch (record.type) {
    case WalRecordType::kEnvelope:
      enc.PutEnvelope(record.envelope);
      break;
    case WalRecordType::kLocalFactInsert:
    case WalRecordType::kLocalFactDelete:
      enc.PutFact(record.fact);
      break;
    case WalRecordType::kLocalDecl: {
      enc.PutString(record.decl.relation);
      enc.PutString(record.decl.peer);
      enc.PutU8(static_cast<uint8_t>(record.decl.kind));
      enc.PutU32(static_cast<uint32_t>(record.decl.columns.size()));
      for (const ColumnSpec& col : record.decl.columns) {
        enc.PutString(col.name);
        enc.PutU8(static_cast<uint8_t>(col.type));
      }
      break;
    }
    case WalRecordType::kLocalRuleAdd:
      enc.PutU64(record.id);
      enc.PutRule(record.rule);
      break;
    case WalRecordType::kLocalRuleRemove:
    case WalRecordType::kDelegationApprove:
    case WalRecordType::kDelegationReject:
      enc.PutU64(record.id);
      break;
    case WalRecordType::kStageOutbound:
      enc.PutU32(static_cast<uint32_t>(record.shipped_deltas.size()));
      for (const DerivedDelta& d : record.shipped_deltas) {
        enc.PutDerivedDelta(d);
      }
      enc.PutU32(static_cast<uint32_t>(record.shipped_delegations.size()));
      for (const Delegation& d : record.shipped_delegations) {
        enc.PutDelegation(d);
      }
      enc.PutU32(
          static_cast<uint32_t>(record.shipped_delegation_retracts.size()));
      for (uint64_t key : record.shipped_delegation_retracts) {
        enc.PutU64(key);
      }
      break;
  }
  return enc.TakeBuffer();
}

Result<WalRecord> DecodeWalRecord(std::string_view bytes) {
  WireDecoder dec(bytes);
  WalRecord record;
  WDL_ASSIGN_OR_RETURN(uint8_t type, dec.GetU8());
  if (type < 1 || type > 9) {
    return Status::InvalidArgument("unknown WAL record type " +
                                   std::to_string(type));
  }
  record.type = static_cast<WalRecordType>(type);
  switch (record.type) {
    case WalRecordType::kEnvelope: {
      WDL_ASSIGN_OR_RETURN(record.envelope, dec.GetEnvelope());
      break;
    }
    case WalRecordType::kLocalFactInsert:
    case WalRecordType::kLocalFactDelete: {
      WDL_ASSIGN_OR_RETURN(record.fact, dec.GetFact());
      break;
    }
    case WalRecordType::kLocalDecl: {
      WDL_ASSIGN_OR_RETURN(record.decl.relation, dec.GetString());
      WDL_ASSIGN_OR_RETURN(record.decl.peer, dec.GetString());
      WDL_ASSIGN_OR_RETURN(uint8_t kind, dec.GetU8());
      record.decl.kind = static_cast<RelationKind>(kind);
      WDL_ASSIGN_OR_RETURN(uint32_t ncols, dec.GetU32());
      for (uint32_t i = 0; i < ncols; ++i) {
        ColumnSpec col;
        WDL_ASSIGN_OR_RETURN(col.name, dec.GetString());
        WDL_ASSIGN_OR_RETURN(uint8_t vtype, dec.GetU8());
        col.type = static_cast<ValueKind>(vtype);
        record.decl.columns.push_back(std::move(col));
      }
      break;
    }
    case WalRecordType::kLocalRuleAdd: {
      WDL_ASSIGN_OR_RETURN(record.id, dec.GetU64());
      WDL_ASSIGN_OR_RETURN(record.rule, dec.GetRule());
      break;
    }
    case WalRecordType::kLocalRuleRemove:
    case WalRecordType::kDelegationApprove:
    case WalRecordType::kDelegationReject: {
      WDL_ASSIGN_OR_RETURN(record.id, dec.GetU64());
      break;
    }
    case WalRecordType::kStageOutbound: {
      WDL_ASSIGN_OR_RETURN(uint32_t ndeltas, dec.GetU32());
      for (uint32_t i = 0; i < ndeltas; ++i) {
        WDL_ASSIGN_OR_RETURN(DerivedDelta d, dec.GetDerivedDelta());
        record.shipped_deltas.push_back(std::move(d));
      }
      WDL_ASSIGN_OR_RETURN(uint32_t ndels, dec.GetU32());
      for (uint32_t i = 0; i < ndels; ++i) {
        WDL_ASSIGN_OR_RETURN(Delegation d, dec.GetDelegation());
        record.shipped_delegations.push_back(std::move(d));
      }
      WDL_ASSIGN_OR_RETURN(uint32_t nretracts, dec.GetU32());
      for (uint32_t i = 0; i < nretracts; ++i) {
        WDL_ASSIGN_OR_RETURN(uint64_t key, dec.GetU64());
        record.shipped_delegation_retracts.push_back(key);
      }
      break;
    }
  }
  if (!dec.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after WAL record");
  }
  return record;
}

std::string PeerDurability::WalPath() const {
  return options_.dir + "/" + kWalPrefix + std::to_string(generation_) +
         kWalSuffix;
}

std::string PeerDurability::SnapshotPath(uint64_t generation) const {
  return options_.dir + "/" + kSnapshotPrefix + std::to_string(generation) +
         kSnapshotSuffix;
}

Result<std::unique_ptr<PeerDurability>> PeerDurability::Open(
    DurabilityOptions options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("durability dir must not be empty");
  }
  WDL_RETURN_IF_ERROR(EnsureDir(options.dir));
  auto pd = std::unique_ptr<PeerDurability>(
      new PeerDurability(std::move(options)));

  // Pick the newest snapshot that decodes cleanly; a snapshot that
  // fails its CRC (a crash mid-rotation cannot cause this — tmp+rename
  // is atomic — but bit rot can) falls back a generation.
  WDL_ASSIGN_OR_RETURN(
      std::vector<uint64_t> snap_gens,
      ListGenerations(pd->options_.dir, kSnapshotPrefix, kSnapshotSuffix));
  for (auto it = snap_gens.rbegin(); it != snap_gens.rend(); ++it) {
    Result<std::string> bytes = ReadEntireFile(pd->SnapshotPath(*it));
    if (!bytes.ok()) {
      WDL_LOG(Warning) << "durability: unreadable snapshot generation " << *it
                    << ": " << bytes.status().ToString();
      continue;
    }
    Result<SnapshotData> snap = DecodeSnapshot(*bytes);
    if (!snap.ok()) {
      WDL_LOG(Warning) << "durability: invalid snapshot generation " << *it
                    << ": " << snap.status().ToString();
      continue;
    }
    pd->generation_ = *it;
    pd->snapshot_ = std::move(*snap);
    pd->counters_.snapshot_recovered = true;
    break;
  }

  // Read this generation's WAL (generation 0 when no snapshot exists),
  // truncating any torn tail so the writer appends after the last
  // valid record.
  WDL_ASSIGN_OR_RETURN(WalReadResult wal, ReadWalFile(pd->WalPath()));
  if (wal.torn_tail) {
    WDL_LOG(Warning) << "durability: truncating torn WAL tail ("
                  << wal.dropped_bytes << " bytes) in " << pd->WalPath();
    WDL_RETURN_IF_ERROR(TruncateFile(pd->WalPath(), wal.valid_bytes));
    pd->counters_.torn_tail_truncated = true;
    pd->counters_.torn_bytes_dropped = wal.dropped_bytes;
  }
  for (const std::string& payload : wal.payloads) {
    Result<WalRecord> record = DecodeWalRecord(payload);
    if (!record.ok()) {
      // A frame whose CRC matched but whose payload does not decode
      // means a writer bug or a format change, not a torn write. Stop
      // replay here — applying later records against a state missing
      // this one would diverge — and truncate so the log stays
      // consistent with what was replayed.
      WDL_LOG(Warning) << "durability: undecodable WAL record after "
                    << pd->recovered_records_.size() << " good records: "
                    << record.status().ToString();
      uint64_t offset = wal.offsets[pd->recovered_records_.size()];
      WDL_RETURN_IF_ERROR(TruncateFile(pd->WalPath(), offset));
      pd->counters_.torn_tail_truncated = true;
      pd->counters_.torn_bytes_dropped += wal.valid_bytes - offset;
      break;
    }
    pd->recovered_records_.push_back(std::move(*record));
  }
  pd->records_in_log_ = pd->recovered_records_.size();
  pd->counters_.wal_records_recovered = pd->recovered_records_.size();
  pd->counters_.generation = pd->generation_;

  // Older generations are garbage once a newer snapshot is chosen; a
  // crash during a previous rotation can leave them behind.
  for (uint64_t g : snap_gens) {
    if (g < pd->generation_) RemoveFileIfExists(pd->SnapshotPath(g));
  }
  WDL_ASSIGN_OR_RETURN(
      std::vector<uint64_t> wal_gens,
      ListGenerations(pd->options_.dir, kWalPrefix, kWalSuffix));
  for (uint64_t g : wal_gens) {
    if (g != pd->generation_) {
      RemoveFileIfExists(pd->options_.dir + "/" + kWalPrefix +
                         std::to_string(g) + kWalSuffix);
    }
  }

  WDL_ASSIGN_OR_RETURN(pd->writer_, WalWriter::Open(pd->WalPath()));
  return pd;
}

void PeerDurability::FinishRecovery() {
  snapshot_.reset();
  recovered_records_.clear();
  recovered_records_.shrink_to_fit();
}

Status PeerDurability::Append(const WalRecord& record) {
  std::string payload = EncodeWalRecord(record);
  WDL_RETURN_IF_ERROR(writer_->Append(payload));
  ++records_in_log_;
  ++counters_.records_appended;
  counters_.bytes_appended += payload.size() + 8;
  if (options_.fsync_policy == FsyncPolicy::kAlways) {
    WDL_RETURN_IF_ERROR(writer_->Sync());
    ++counters_.fsyncs;
  } else if (options_.fsync_policy == FsyncPolicy::kBatch) {
    batch_dirty_ = true;
  }
  return Status::OK();
}

Status PeerDurability::EndBatch() {
  if (!batch_dirty_) return Status::OK();
  batch_dirty_ = false;
  WDL_RETURN_IF_ERROR(writer_->Sync());
  ++counters_.fsyncs;
  return Status::OK();
}

bool PeerDurability::ShouldSnapshot() const {
  return options_.snapshot_interval_records > 0 &&
         records_in_log_ >= options_.snapshot_interval_records;
}

Status PeerDurability::WriteSnapshot(const SnapshotData& snap) {
  uint64_t next = generation_ + 1;
  std::string bytes = EncodeSnapshot(snap);
  WDL_RETURN_IF_ERROR(AtomicWriteFile(SnapshotPath(next), bytes));
  ++counters_.snapshots_written;
  counters_.snapshot_bytes += bytes.size();

  // The new snapshot is durable; switch generations. If the process
  // dies between the rename above and the writes below, recovery finds
  // snap-<next> plus the old log — the log's records are all covered
  // by the snapshot and replaying them is idempotent, but the stale
  // log is keyed to the old generation, so it is simply deleted at the
  // next Open.
  std::string old_wal = WalPath();
  uint64_t old_generation = generation_;
  generation_ = next;
  counters_.generation = next;
  WDL_ASSIGN_OR_RETURN(writer_, WalWriter::Open(WalPath()));
  records_in_log_ = 0;
  batch_dirty_ = false;
  RemoveFileIfExists(old_wal);
  RemoveFileIfExists(SnapshotPath(old_generation));
  return Status::OK();
}

}  // namespace wdl
