#ifndef WDL_NET_WIRE_H_
#define WDL_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"
#include "net/message.h"

namespace wdl {

/// Binary wire format, version 1.
///
/// Every envelope is framed as:
///   magic "WDLM" (4 bytes) | version u16 | payload...
/// Integers are little-endian fixed width; strings and blobs are u32
/// length + bytes; vectors are u32 count + elements. The format is
/// self-contained per envelope (no streaming state), so a transport can
/// deliver frames out of order. Decoding is fully bounds-checked and
/// never trusts lengths without verifying remaining input — messages
/// come from other peers.
///
/// The simulated network round-trips every envelope through this codec
/// so the format (and its byte accounting) is exercised by every test
/// and experiment, not just the wire unit tests.

/// Append-only encoder over a byte buffer.
class WireEncoder {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutDouble(double v);
  void PutString(std::string_view s);
  void PutValue(const Value& v);
  void PutTuple(const Tuple& t);
  void PutFact(const Fact& f);
  void PutSymTerm(const SymTerm& t);
  void PutTerm(const Term& t);
  void PutAtom(const Atom& a);
  void PutRule(const Rule& r);
  void PutDelegation(const Delegation& d);
  void PutDerivedSet(const DerivedSet& s);
  void PutDerivedDelta(const DerivedDelta& d);
  void PutMessage(const Message& m);
  void PutEnvelope(const Envelope& e);

  const std::string& buffer() const { return buf_; }
  std::string&& TakeBuffer() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked decoder over an input span.
class WireDecoder {
 public:
  explicit WireDecoder(std::string_view data) : data_(data) {}

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<double> GetDouble();
  Result<std::string> GetString();
  Result<Value> GetValue();
  Result<Tuple> GetTuple();
  Result<Fact> GetFact();
  Result<SymTerm> GetSymTerm();
  Result<Term> GetTerm();
  Result<Atom> GetAtom();
  Result<Rule> GetRule();
  Result<Delegation> GetDelegation();
  Result<DerivedSet> GetDerivedSet();
  Result<DerivedDelta> GetDerivedDelta();
  Result<Message> GetMessage();
  Result<Envelope> GetEnvelope();

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  Status Need(size_t n) const;
  /// Reads a u32 element count and validates it against the bytes that
  /// are actually left in the frame: every element of the collection
  /// being decoded occupies at least `min_element_bytes`, so any count
  /// exceeding remaining()/min_element_bytes is corrupt or hostile and
  /// fails here — before a reserve() or decode loop sized by it runs.
  Result<uint32_t> GetCount(size_t min_element_bytes, const char* what);
  std::string_view data_;
  size_t pos_ = 0;
};

/// Convenience: one-shot envelope (de)serialization.
std::string EncodeEnvelope(const Envelope& e);
Result<Envelope> DecodeEnvelope(std::string_view bytes);

}  // namespace wdl

#endif  // WDL_NET_WIRE_H_
