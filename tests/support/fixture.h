#ifndef WDL_TESTS_SUPPORT_FIXTURE_H_
#define WDL_TESTS_SUPPORT_FIXTURE_H_

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/system.h"

namespace wdl {
namespace test {

/// Canonical rendering of every peer's relations and program listing.
/// Two systems that converged to the same global state produce the
/// same fingerprint regardless of how the network scheduled delivery.
std::string GlobalStateFingerprint(const System& system);

/// In-memory multi-peer network fixture: a System plus the peer setup
/// boilerplate (creation, mutual trust, quiescence with asserted
/// success) that the runtime tests otherwise re-clone.
class MultiPeerFixture : public ::testing::Test {
 protected:
  /// Creates and registers a peer.
  Peer* AddPeer(const std::string& name, PeerOptions options = {});

  /// Creates the named peers and makes every pair trust each other's
  /// delegations (skips the approval queue, like the engine tests do).
  std::vector<Peer*> AddTrustedPeers(const std::vector<std::string>& names);

  System system_;
};

}  // namespace test
}  // namespace wdl

#endif  // WDL_TESTS_SUPPORT_FIXTURE_H_
