#ifndef WDL_NET_MESSAGE_H_
#define WDL_NET_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ast/fact.h"
#include "engine/engine.h"

namespace wdl {

/// Wire message taxonomy. The first three carry data (facts/updates),
/// the next two carry programs (delegations) — the paper's step 3:
/// "the peer sends facts (updates) and rules (delegations) to other
/// peers". kHello is peer discovery.
enum class MessageType : uint8_t {
  kFactInserts = 0,       // base-fact updates, persistent at receiver
  kFactDeletes = 1,       // base-fact deletions
  kDerivedSet = 2,        // sender's full derived contribution (see Engine)
  kDelegationInstall = 3, // install a residual rule at the receiver
  kDelegationRetract = 4, // retract a previously installed delegation
  kHello = 5,             // peer announcement (discovery)
  kDerivedDelta = 6,      // differential contribution update (DESIGN §5)
  kResyncRequest = 7,     // "re-send your contribution to <relation> in full"
  kStreamForget = 8,      // "I dropped <relation>; forget your stream to me"
};

const char* MessageTypeToString(MessageType type);

/// One message. Exactly the payload fields for `type` are meaningful.
struct Message {
  MessageType type = MessageType::kHello;
  std::vector<Fact> facts;     // kFactInserts / kFactDeletes
  DerivedSet derived;          // kDerivedSet
  DerivedDelta delta;          // kDerivedDelta
  Delegation delegation;       // kDelegationInstall
  uint64_t delegation_key = 0; // kDelegationRetract
  /// kHello: peer name; kResyncRequest / kStreamForget: relation.
  std::string text;

  static Message FactInserts(std::vector<Fact> facts);
  static Message FactDeletes(std::vector<Fact> facts);
  static Message MakeDerivedSet(DerivedSet set);
  static Message MakeDerivedDelta(DerivedDelta delta);
  static Message ResyncRequest(std::string relation);
  static Message StreamForget(std::string relation);
  static Message DelegationInstall(Delegation d);
  static Message DelegationRetract(uint64_t key);
  static Message Hello(std::string peer_name);

  std::string ToString() const;
};

/// A routed message: source and destination peer plus a per-sender
/// sequence number (used for deterministic tie-breaking in the
/// simulator and for debugging).
struct Envelope {
  std::string from;
  std::string to;
  uint64_t seq = 0;
  Message message;

  std::string ToString() const;
};

}  // namespace wdl

#endif  // WDL_NET_MESSAGE_H_
