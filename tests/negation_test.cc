#include <gtest/gtest.h>

#include "runtime/system.h"

#include "support/builders.h"

namespace wdl {
namespace {

using test::I;
using test::S;

// Distributed stratified negation: the extension the 2013 prototype
// lacked, exercised across peer boundaries where the negated atom is
// evaluated at the *remote* peer via a ground residual rule.

TEST(NegationSystemTest, RemoteNegatedAtomEvaluatesAtTarget) {
  System system;
  Peer* a = system.CreatePeer("a");
  Peer* b = system.CreatePeer("b");
  a->gate().TrustPeer("b");
  b->gate().TrustPeer("a");
  // a wants its items that b has NOT banned. The negated atom lives at
  // b, so each candidate item ships as a ground negation check.
  ASSERT_TRUE(a->LoadProgramText(R"(
    collection ext items@a(x: int);
    collection int allowed@a(x: int);
    fact items@a(1); fact items@a(2); fact items@a(3);
    rule allowed@a($x) :- items@a($x), not banned@b($x);
  )").ok());
  ASSERT_TRUE(b->LoadProgramText(R"(
    collection ext banned@b(x: int);
    fact banned@b(2);
  )").ok());

  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  const Relation* allowed = a->engine().catalog().Get("allowed");
  EXPECT_EQ(allowed->size(), 2u);
  EXPECT_TRUE(allowed->Contains({I(1)}));
  EXPECT_FALSE(allowed->Contains({I(2)}));
  EXPECT_TRUE(allowed->Contains({I(3)}));
}

TEST(NegationSystemTest, BanningLaterRevokesDerivedFact) {
  System system;
  Peer* a = system.CreatePeer("a");
  Peer* b = system.CreatePeer("b");
  a->gate().TrustPeer("b");
  b->gate().TrustPeer("a");
  ASSERT_TRUE(a->LoadProgramText(R"(
    collection ext items@a(x: int);
    collection int allowed@a(x: int);
    fact items@a(1);
    rule allowed@a($x) :- items@a($x), not banned@b($x);
  )").ok());
  ASSERT_TRUE(b->LoadProgramText(
      "collection ext banned@b(x: int);").ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  ASSERT_EQ(a->engine().catalog().Get("allowed")->size(), 1u);

  // b bans item 1: the delegated residual at b stops deriving, so b's
  // contribution slice to allowed@a empties and the view shrinks.
  ASSERT_TRUE(b->Insert(Fact("banned", "b", {I(1)})).ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  EXPECT_EQ(a->engine().catalog().Get("allowed")->size(), 0u);
}

TEST(NegationSystemTest, Paper2013PeerRejectsDelegatedNegation) {
  // A 2013-dialect peer must refuse a delegated rule carrying negation,
  // exactly as the prototype would have ("not yet implemented").
  SystemOptions system_options;
  System system(system_options);
  PeerOptions legacy;
  legacy.engine.dialect = Dialect::kPaper2013;
  Peer* a = system.CreatePeer("a");  // extended dialect
  Peer* b = system.CreatePeer("b", legacy);
  a->gate().TrustPeer("b");
  b->gate().TrustPeer("a");

  ASSERT_TRUE(a->LoadProgramText(R"(
    collection ext items@a(x: int);
    collection int ok@a(x: int);
    fact items@a(1);
    rule ok@a($x) :- items@a($x), not banned@b($x);
  )").ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());

  // The install was refused at b, so no rule of a's runs there and the
  // view stays empty; the system still converges.
  for (const InstalledRule* r : b->engine().rules()) {
    EXPECT_EQ(r->delegation_key, 0u);
  }
  EXPECT_EQ(a->engine().catalog().Get("ok")->size(), 0u);
}

TEST(NegationSystemTest, LocalStrataRespectRemoteContributions) {
  // Stratification interacts with remote views: unreach is computed
  // over reach, which is partly fed by a remote peer's contribution.
  System system;
  Peer* a = system.CreatePeer("a");
  Peer* b = system.CreatePeer("b");
  a->gate().TrustPeer("b");
  b->gate().TrustPeer("a");
  ASSERT_TRUE(a->LoadProgramText(R"(
    collection ext node@a(x: int);
    collection int reach@a(x: int);
    collection int unreach@a(x: int);
    fact node@a(1); fact node@a(2); fact node@a(3);
    rule unreach@a($x) :- node@a($x), not reach@a($x);
  )").ok());
  ASSERT_TRUE(b->LoadProgramText(R"(
    collection ext seen@b(x: int);
    fact seen@b(1); fact seen@b(3);
    rule reach@a($x) :- seen@b($x);
  )").ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());

  const Relation* unreach = a->engine().catalog().Get("unreach");
  ASSERT_EQ(unreach->size(), 1u);
  EXPECT_TRUE(unreach->Contains({I(2)}));

  // b un-sees 3: reach@a shrinks, unreach@a grows — non-monotone
  // maintenance across the wire.
  ASSERT_TRUE(b->Remove(Fact("seen", "b", {I(3)})).ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  EXPECT_EQ(unreach->size(), 2u);
  EXPECT_TRUE(unreach->Contains({I(3)}));
}

TEST(NegationSystemTest, WepicHideFilterWithNegation) {
  // An audience-style customization using negation: show pictures of
  // selected attendees EXCEPT those the owner hid.
  System system;
  Peer* jules = system.CreatePeer("jules");
  Peer* emilien = system.CreatePeer("emilien");
  jules->gate().TrustPeer("emilien");
  emilien->gate().TrustPeer("jules");
  ASSERT_TRUE(jules->LoadProgramText(R"(
    collection ext selectedAttendee@jules(a: string);
    collection int frame@jules(id: int, name: string);
    fact selectedAttendee@jules("emilien");
    rule frame@jules($i, $n) :-
      selectedAttendee@jules($a), pictures@$a($i, $n),
      not hidden@$a($i);
  )").ok());
  ASSERT_TRUE(emilien->LoadProgramText(R"(
    collection ext pictures@emilien(id: int, name: string);
    collection ext hidden@emilien(id: int);
    fact pictures@emilien(1, "public.jpg");
    fact pictures@emilien(2, "private.jpg");
    fact hidden@emilien(2);
  )").ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());

  const Relation* frame = jules->engine().catalog().Get("frame");
  ASSERT_EQ(frame->size(), 1u);
  EXPECT_TRUE(frame->Contains({I(1), S("public.jpg")}));
}

}  // namespace
}  // namespace wdl
