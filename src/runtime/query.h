#ifndef WDL_RUNTIME_QUERY_H_
#define WDL_RUNTIME_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/result.h"
#include "runtime/system.h"
#include "storage/tuple.h"

namespace wdl {

/// Result of an ad-hoc query: one column per distinct variable of the
/// query body, in order of first occurrence, plus the rows.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Tuple> rows;
  int rounds = 0;  // system rounds the evaluation took
  /// True when the demand-driven (magic-set) path answered the query;
  /// false for the full-fixpoint scratch-rule path.
  bool demand_path = false;
  /// Candidate tuples the evaluation unified against — the "how much
  /// did this query touch" instrument. On the demand path this is
  /// O(tuples reachable from the query's constants); the full path
  /// reports the query peer's whole-fixpoint count.
  uint64_t tuples_examined = 0;

  std::string ToString() const;
};

/// Per-query knobs. `use_demand_evaluation` defaults from the
/// WDL_QUERY_DEMAND environment variable (unset/1/on → true; 0/off →
/// false), read once per process. When true, bound queries whose
/// reachable rule cone is local, positive, and insert-only are answered
/// by the demand-driven evaluator (engine/demand.h) without touching
/// the installed program; everything else — and everything when false —
/// runs the full scratch-rule fixpoint, which also serves as the
/// differential oracle for the demand path.
struct QueryOptions {
  bool use_demand_evaluation;
  int max_rounds = 300;

  QueryOptions();
};

/// Runs an ad-hoc WebdamLog query at `peer` — the §4 "Query tab":
/// "they will be able to use the Query tab to launch one of the
/// pre-defined queries, or to write their own WebdamLog queries".
///
/// `body` is a comma-separated list of body atoms, e.g.
///   "selectedAttendee@Jules($a), pictures@$a($id, $name, $o, $d)".
///
/// Demand-eligible bound queries (see QueryOptions) are evaluated
/// in-place over the quiescent engine. Otherwise, mechanically: a
/// temporary intensional relation and rule
///   __query_K@peer($v1, ..., $vn) :- body
/// are installed, the system runs to quiescence (distributed bodies
/// delegate as usual, subject to the targets' delegation gates), the
/// view is snapshotted, and the rule and relation are removed again —
/// including a second convergence pass so remote residuals retract.
///
/// The query must satisfy the usual left-to-right safety conditions.
Result<QueryResult> RunQuery(System* system, const std::string& peer,
                             const std::string& body,
                             const QueryOptions& options);
Result<QueryResult> RunQuery(System* system, const std::string& peer,
                             const std::string& body, int max_rounds = 300);

}  // namespace wdl

#endif  // WDL_RUNTIME_QUERY_H_
