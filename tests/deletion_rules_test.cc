#include <gtest/gtest.h>

#include "net/wire.h"
#include "parser/parser.h"
#include "runtime/system.h"

#include "support/builders.h"

namespace wdl {
namespace {

using test::I;
using test::S;

TEST(DeletionParseTest, BareAndKeywordForms) {
  Result<Rule> bare = ParseRule("-junk@p($x) :- flagged@p($x)");
  ASSERT_TRUE(bare.ok()) << bare.status();
  EXPECT_TRUE(bare->head_deletes);

  Result<Program> kw =
      ParseProgram("rule -junk@p($x) :- flagged@p($x);");
  ASSERT_TRUE(kw.ok()) << kw.status();
  ASSERT_EQ(kw->rules.size(), 1u);
  EXPECT_TRUE(kw->rules[0].head_deletes);
}

TEST(DeletionParseTest, MinusBindsToRuleNotNumber) {
  // Negative literals must still lex as numbers.
  Result<Fact> f = ParseFact("r@p(-5)");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->args[0], I(-5));
}

TEST(DeletionParseTest, RoundTripsThroughPrinter) {
  Result<Rule> r = ParseRule("-junk@p($x) :- flagged@p($x)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToString(), "-junk@p($x) :- flagged@p($x)");
  Result<Rule> again = ParseRule(r->ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *r);
}

TEST(DeletionParseTest, DeletionFlagChangesIdentity) {
  Rule ins = *ParseRule("r@p($x) :- b@p($x)");
  Rule del = *ParseRule("-r@p($x) :- b@p($x)");
  EXPECT_NE(ins, del);
  EXPECT_NE(ins.Hash(), del.Hash());
}

TEST(DeletionWireTest, FlagSurvivesRoundTrip) {
  Rule del = *ParseRule("-r@p($x) :- b@p($x)");
  WireEncoder enc;
  enc.PutRule(del);
  WireDecoder dec(enc.buffer());
  Result<Rule> back = dec.GetRule();
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->head_deletes);
  EXPECT_EQ(*back, del);
}

TEST(DeletionEngineTest, LocalDeletionAppliesNextStage) {
  System system;
  Peer* p = system.CreatePeer("p");
  ASSERT_TRUE(p->LoadProgramText(R"(
    collection ext inbox@p(x: int);
    collection ext junk@p(x: int);
    fact inbox@p(1); fact inbox@p(2); fact inbox@p(3);
    fact junk@p(2);
    rule -inbox@p($x) :- junk@p($x);
  )").ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  const Relation* inbox = p->engine().catalog().Get("inbox");
  EXPECT_EQ(inbox->size(), 2u);
  EXPECT_FALSE(inbox->Contains({I(2)}));
}

TEST(DeletionEngineTest, RemoteDeletionPropagates) {
  System system;
  Peer* admin = system.CreatePeer("admin");
  Peer* node = system.CreatePeer("node");
  ASSERT_TRUE(node->LoadProgramText(R"(
    collection ext data@node(x: int);
    fact data@node(1); fact data@node(2);
  )").ok());
  ASSERT_TRUE(admin->LoadProgramText(R"(
    collection ext revoked@admin(x: int);
    fact revoked@admin(2);
    rule -data@node($x) :- revoked@admin($x);
  )").ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  const Relation* data = node->engine().catalog().Get("data");
  EXPECT_EQ(data->size(), 1u);
  EXPECT_TRUE(data->Contains({I(1)}));
}

TEST(DeletionEngineTest, DeletionIntoViewRejectedAtInstall) {
  System system;
  Peer* p = system.CreatePeer("p");
  ASSERT_TRUE(p->LoadProgramText(R"(
    collection int view@p(x: int);
    collection ext src@p(x: int);
  )").ok());
  Result<uint64_t> r = p->AddRuleText("-view@p($x) :- src@p($x)");
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DeletionEngineTest, InsertAndDeleteRulesReachSteadyState) {
  // A "retention policy" pair: everything flows into archive, flagged
  // entries get deleted from it. Deletion wins at steady state because
  // the insert rule re-derives only what the *source* still has, and
  // deletes target the archive — this also exercises that insert + its
  // matching delete do not livelock the system.
  System system;
  Peer* p = system.CreatePeer("p");
  ASSERT_TRUE(p->LoadProgramText(R"(
    collection ext src@p(x: int);
    collection ext archive@p(x: int);
    collection ext flagged@p(x: int);
    fact src@p(1); fact src@p(2);
    fact flagged@p(2);
    rule archive@p($x) :- src@p($x);
    rule -archive@p($x) :- flagged@p($x), archive@p($x);
  )").ok());
  // This pair oscillates: insert re-adds what delete removed. The run
  // must hit the round cap rather than loop forever silently.
  Result<int> r = system.RunUntilQuiescent(50);
  if (r.ok()) {
    // If it converged, the flagged tuple must be gone.
    EXPECT_FALSE(
        p->engine().catalog().Get("archive")->Contains({I(2)}));
  } else {
    // Oscillation detected and bounded — acceptable, documented
    // semantics for contradictory update rules (Dedalus-style).
    EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  }
  EXPECT_TRUE(p->engine().catalog().Get("archive")->Contains({I(1)}));
}

TEST(DeletionEngineTest, DeletionOfAbsentFactIsNoOp) {
  System system;
  Peer* p = system.CreatePeer("p");
  ASSERT_TRUE(p->LoadProgramText(R"(
    collection ext data@p(x: int);
    collection ext junk@p(x: int);
    fact junk@p(9);
    rule -data@p($x) :- junk@p($x);
  )").ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  EXPECT_EQ(p->engine().catalog().Get("data")->size(), 0u);
}

}  // namespace
}  // namespace wdl
