// Quickstart: two peers, one rule with a variable peer name, one
// delegation. Shows the minimal WebdamLog workflow:
//   1. create a System (simulated network + peers),
//   2. load programs written in WebdamLog surface syntax,
//   3. run to quiescence,
//   4. read the results out of a relation.
//
// Run:  ./build/examples/quickstart

#include <cstdio>

#include "runtime/system.h"

int main() {
  wdl::System system;

  // Two peers on a simulated LAN. alice will ask bob for his data via
  // delegation; they trust each other so the rule installs unattended.
  wdl::Peer* alice = system.CreatePeer("alice");
  wdl::Peer* bob = system.CreatePeer("bob");
  alice->gate().TrustPeer("bob");
  bob->gate().TrustPeer("alice");

  wdl::Status st = alice->LoadProgramText(R"(
    // Who alice is interested in.
    collection ext contacts@alice(peer: string);
    // The view this program maintains.
    collection int news@alice(headline: string);

    fact contacts@alice("bob");

    // The peer position of the second atom is a *variable*: WebdamLog's
    // signature feature. Evaluation reaches posts@bob, so a residual
    // rule is delegated to bob at run time.
    rule news@alice($h) :- contacts@alice($p), posts@$p($h);
  )");
  if (!st.ok()) {
    std::fprintf(stderr, "alice program: %s\n", st.ToString().c_str());
    return 1;
  }

  st = bob->LoadProgramText(R"(
    collection ext posts@bob(headline: string);
    fact posts@bob("bob got a dog");
    fact posts@bob("bob learned datalog");
  )");
  if (!st.ok()) {
    std::fprintf(stderr, "bob program: %s\n", st.ToString().c_str());
    return 1;
  }

  wdl::Result<int> rounds = system.RunUntilQuiescent();
  if (!rounds.ok()) {
    std::fprintf(stderr, "did not converge: %s\n",
                 rounds.status().ToString().c_str());
    return 1;
  }

  std::printf("converged in %d rounds\n", *rounds);
  std::printf("%s", alice->RenderRelation("news").c_str());
  std::printf("\nbob's program now contains the delegated rule:\n%s",
              bob->engine().ProgramListing().c_str());

  // Live update: bob posts again; the delegated rule pushes it to
  // alice without any new delegation traffic.
  (void)bob->Insert(wdl::Fact("posts", "bob",
                              {wdl::Value::String("bob wrote a paper")}));
  (void)system.RunUntilQuiescent();
  std::printf("\nafter bob's new post:\n%s",
              alice->RenderRelation("news").c_str());
  return 0;
}
