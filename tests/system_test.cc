#include "runtime/system.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "support/builders.h"
#include "support/counters.h"
#include "support/fixture.h"

namespace wdl {
namespace {

using test::F;
using test::I;
using test::S;

// The System plus peer/trust boilerplate lives in the shared fixture;
// `system_` and the AddPeer/AddTrustedPeers helpers come from there.
using SystemTest = test::MultiPeerFixture;

TEST_F(SystemTest, SinglePeerLocalView) {
  Peer* p = system_.CreatePeer("alice");
  ASSERT_TRUE(p->LoadProgramText(R"(
    collection ext edge@alice(src: string, dst: string);
    collection int reach@alice(src: string, dst: string);
    fact edge@alice("a", "b");
    fact edge@alice("b", "c");
    rule reach@alice($x, $y) :- edge@alice($x, $y);
    rule reach@alice($x, $z) :- reach@alice($x, $y), edge@alice($y, $z);
  )").ok());

  ASSERT_TRUE(system_.RunUntilQuiescent().ok());
  const Relation* reach = p->engine().catalog().Get("reach");
  ASSERT_NE(reach, nullptr);
  EXPECT_EQ(reach->size(), 3u);  // ab bc ac
  EXPECT_TRUE(reach->Contains({S("a"), S("c")}));
}

TEST_F(SystemTest, RemoteHeadDerivesPersistentFactsAtTarget) {
  Peer* alice = system_.CreatePeer("alice");
  Peer* bob = system_.CreatePeer("bob");
  ASSERT_TRUE(alice->LoadProgramText(R"(
    collection ext local@alice(x: int);
    fact local@alice(1);
    fact local@alice(2);
    rule copy@bob($x) :- local@alice($x);
  )").ok());

  ASSERT_TRUE(system_.RunUntilQuiescent().ok());
  const Relation* copy = bob->engine().catalog().Get("copy");
  ASSERT_NE(copy, nullptr);  // auto-declared on arrival
  EXPECT_EQ(copy->kind(), RelationKind::kExtensional);
  EXPECT_TRUE(copy->Contains({I(1)}));
  EXPECT_TRUE(copy->Contains({I(2)}));
}

TEST_F(SystemTest, DelegationInstallsResidualRuleAtRemotePeer) {
  // The paper's selection rule shape: jules asks each selected attendee
  // for their pictures. The second body atom lives at $attendee, so a
  // residual rule is delegated there.
  // AddTrustedPeers skips the approval queue for this engine-level test.
  auto peers = AddTrustedPeers({"jules", "emilien"});
  Peer* jules = peers[0];
  Peer* emilien = peers[1];

  ASSERT_TRUE(jules->LoadProgramText(R"(
    collection ext selectedAttendee@jules(attendee: string);
    collection int attendeePictures@jules(id: int, name: string);
    fact selectedAttendee@jules("emilien");
    rule attendeePictures@jules($id, $name) :-
      selectedAttendee@jules($attendee), pictures@$attendee($id, $name);
  )").ok());
  ASSERT_TRUE(emilien->LoadProgramText(R"(
    collection ext pictures@emilien(id: int, name: string);
    fact pictures@emilien(1, "sea.jpg");
    fact pictures@emilien(2, "boat.jpg");
  )").ok());

  ASSERT_TRUE(system_.RunUntilQuiescent().ok());

  // The residual rule is installed at emilien, marked as delegated.
  bool found_delegated = false;
  for (const InstalledRule* r : emilien->engine().rules()) {
    if (r->delegation_key != 0) {
      found_delegated = true;
      EXPECT_EQ(r->origin_peer, "jules");
    }
  }
  EXPECT_TRUE(found_delegated);

  // And the view at jules contains emilien's pictures.
  const Relation* view = jules->engine().catalog().Get("attendeePictures");
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->size(), 2u);
  EXPECT_TRUE(view->Contains({I(1), S("sea.jpg")}));
}

TEST_F(SystemTest, NewFactsAtDelegateeFlowWithoutReDelegation) {
  auto peers = AddTrustedPeers({"jules", "emilien"});
  Peer* jules = peers[0];
  Peer* emilien = peers[1];

  ASSERT_TRUE(jules->LoadProgramText(R"(
    collection ext selectedAttendee@jules(attendee: string);
    collection int attendeePictures@jules(id: int, name: string);
    fact selectedAttendee@jules("emilien");
    rule attendeePictures@jules($id, $name) :-
      selectedAttendee@jules($attendee), pictures@$attendee($id, $name);
  )").ok());
  ASSERT_TRUE(emilien->LoadProgramText(R"(
    collection ext pictures@emilien(id: int, name: string);
    fact pictures@emilien(1, "sea.jpg");
  )").ok());
  ASSERT_TRUE(system_.RunUntilQuiescent().ok());

  // Upload a new picture at emilien only; the already-installed
  // delegated rule must push it to jules' view.
  ASSERT_TRUE(
      emilien->Insert(F("pictures", "emilien", {I(9), S("new.jpg")})).ok());
  ASSERT_TRUE(system_.RunUntilQuiescent().ok());

  const Relation* view = jules->engine().catalog().Get("attendeePictures");
  EXPECT_EQ(view->size(), 2u);
  EXPECT_TRUE(view->Contains({I(9), S("new.jpg")}));
}

TEST_F(SystemTest, DeselectionRetractsDelegationAndClearsView) {
  auto peers = AddTrustedPeers({"jules", "emilien"});
  Peer* jules = peers[0];
  Peer* emilien = peers[1];

  ASSERT_TRUE(jules->LoadProgramText(R"(
    collection ext selectedAttendee@jules(attendee: string);
    collection int attendeePictures@jules(id: int, name: string);
    fact selectedAttendee@jules("emilien");
    rule attendeePictures@jules($id, $name) :-
      selectedAttendee@jules($attendee), pictures@$attendee($id, $name);
  )").ok());
  ASSERT_TRUE(emilien->LoadProgramText(R"(
    collection ext pictures@emilien(id: int, name: string);
    fact pictures@emilien(1, "sea.jpg");
  )").ok());
  ASSERT_TRUE(system_.RunUntilQuiescent().ok());
  ASSERT_EQ(jules->engine().catalog().Get("attendeePictures")->size(), 1u);

  // Deselect: the prefix binding disappears, so the delegation must be
  // retracted at emilien and the view must empty at jules.
  ASSERT_TRUE(
      jules->Remove(F("selectedAttendee", "jules", {S("emilien")})).ok());
  ASSERT_TRUE(system_.RunUntilQuiescent().ok());

  EXPECT_EQ(jules->engine().catalog().Get("attendeePictures")->size(), 0u);
  for (const InstalledRule* r : emilien->engine().rules()) {
    EXPECT_EQ(r->delegation_key, 0u)
        << "stale delegated rule: " << r->rule.ToString();
  }
}

TEST_F(SystemTest, ChainedDelegationAcrossThreePeers) {
  // a's rule walks through b then c: delegation to b, then residual
  // delegation from b to c, with results flowing back to a.
  auto peers = AddTrustedPeers({"a", "b", "c"});
  Peer* a = peers[0];
  Peer* b = peers[1];
  Peer* c = peers[2];
  ASSERT_TRUE(a->LoadProgramText(R"(
    collection ext start@a(x: string);
    collection int out@a(x: string, y: string, z: string);
    fact start@a("s");
    rule out@a($x, $y, $z) :- start@a($x), mid@b($x, $y), end@c($y, $z);
  )").ok());
  ASSERT_TRUE(b->LoadProgramText(R"(
    collection ext mid@b(x: string, y: string);
    fact mid@b("s", "m1");
    fact mid@b("s", "m2");
  )").ok());
  ASSERT_TRUE(c->LoadProgramText(R"(
    collection ext end@c(y: string, z: string);
    fact end@c("m1", "e1");
    fact end@c("m2", "e2");
  )").ok());

  ASSERT_TRUE(system_.RunUntilQuiescent().ok());

  const Relation* out = a->engine().catalog().Get("out");
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->size(), 2u);
  EXPECT_TRUE(out->Contains({S("s"), S("m1"), S("e1")}));
  EXPECT_TRUE(out->Contains({S("s"), S("m2"), S("e2")}));

  // b holds one delegated rule from a; c holds residuals from b
  // (one per binding of $y).
  size_t delegated_at_c = 0;
  for (const InstalledRule* r : c->engine().rules()) {
    if (r->delegation_key != 0) {
      ++delegated_at_c;
      EXPECT_EQ(r->origin_peer, "b");
    }
  }
  EXPECT_EQ(delegated_at_c, 2u);
}

TEST_F(SystemTest, QuiescentSystemStopsSendingMessages) {
  auto peers = AddTrustedPeers({"alice", "bob"});
  ASSERT_TRUE(peers[0]->LoadProgramText(R"(
    collection ext data@alice(x: int);
    fact data@alice(1);
    rule mirror@bob($x) :- data@alice($x);
  )").ok());
  ASSERT_TRUE(system_.RunUntilQuiescent().ok());

  test::NetworkCounters before(system_.network());
  // Ten more rounds must produce zero traffic.
  for (int i = 0; i < 10; ++i) system_.RunRound();
  test::NetworkCounters delta =
      test::NetworkCounters(system_.network()) - before;
  EXPECT_EQ(delta.messages_submitted, 0u) << delta;
}

TEST_F(SystemTest, UpdateRuleDefersLocalExtensionalInsertToNextStage) {
  Peer* p = system_.CreatePeer("alice");
  ASSERT_TRUE(p->LoadProgramText(R"(
    collection ext a@alice(x: int);
    collection ext b@alice(x: int);
    fact a@alice(7);
    rule b@alice($x) :- a@alice($x);
  )").ok());
  // After one stage, b is still empty (deferred); after convergence it
  // holds the fact.
  system_.RunRound();
  const Relation* b_rel = p->engine().catalog().Get("b");
  EXPECT_EQ(b_rel->size(), 0u);
  ASSERT_TRUE(system_.RunUntilQuiescent().ok());
  EXPECT_TRUE(b_rel->Contains({I(7)}));
}

TEST_F(SystemTest, PartitionLosesTrafficAndHealsOnNewUpdates) {
  Peer* alice = system_.CreatePeer("alice");
  Peer* bob = system_.CreatePeer("bob");
  (void)bob;
  ASSERT_TRUE(alice->LoadProgramText(R"(
    collection ext data@alice(x: int);
    rule mirror@bob($x) :- data@alice($x);
  )").ok());
  ASSERT_TRUE(system_.RunUntilQuiescent().ok());

  system_.network().SetPartitioned("alice", "bob", true);
  ASSERT_TRUE(alice->Insert(F("data", "alice", {I(1)})).ok());
  ASSERT_TRUE(system_.RunUntilQuiescent().ok());
  const Relation* mirror =
      system_.GetPeer("bob")->engine().catalog().Get("mirror");
  EXPECT_TRUE(mirror == nullptr || mirror->size() == 0u);
  EXPECT_GT(system_.network().stats().messages_partitioned, 0u);

  // Heal and trigger a re-send with a new fact: the derived set
  // changes, so the full set (both tuples) is retransmitted.
  system_.network().SetPartitioned("alice", "bob", false);
  ASSERT_TRUE(alice->Insert(F("data", "alice", {I(2)})).ok());
  ASSERT_TRUE(system_.RunUntilQuiescent().ok());
  mirror = system_.GetPeer("bob")->engine().catalog().Get("mirror");
  ASSERT_NE(mirror, nullptr);
  EXPECT_EQ(mirror->size(), 2u);
}

}  // namespace
}  // namespace wdl
