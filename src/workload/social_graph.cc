#include "workload/social_graph.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "base/rng.h"
#include "base/string_util.h"
#include "runtime/system.h"

namespace wdl {
namespace {

/// Inverse-CDF sampler over ranks 0..n-1 with weight 1/(rank+1)^s.
/// O(n) doubles to build, O(log n) per sample.
class ZipfSampler {
 public:
  ZipfSampler(uint32_t n, double s) {
    cdf_.reserve(n);
    double total = 0.0;
    for (uint32_t r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r) + 1.0, s);
      cdf_.push_back(total);
    }
  }

  uint32_t Sample(Rng& rng) const {
    double x = rng.NextDouble() * cdf_.back();
    auto it = std::upper_bound(cdf_.begin(), cdf_.end(), x);
    if (it == cdf_.end()) --it;
    return static_cast<uint32_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

std::string SocialPeerName(uint32_t id) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "u%08u", id);
  return buf;
}

SocialGraph GenerateSocialGraph(const SocialGraphOptions& options) {
  SocialGraph graph;
  graph.num_peers = options.num_peers;
  graph.followers.resize(options.num_peers);
  if (options.num_peers < 2) return graph;

  Rng rng(options.seed);
  ZipfSampler zipf(options.num_peers, options.zipf_exponent);
  const uint64_t target_edges =
      static_cast<uint64_t>(options.num_peers) * options.mean_followers;
  for (uint64_t e = 0; e < target_edges; ++e) {
    uint32_t followee = zipf.Sample(rng);
    uint32_t follower = static_cast<uint32_t>(rng.NextBelow(options.num_peers));
    if (follower == followee) continue;
    graph.followers[followee].push_back(follower);
  }
  for (std::vector<uint32_t>& fs : graph.followers) {
    std::sort(fs.begin(), fs.end());
    fs.erase(std::unique(fs.begin(), fs.end()), fs.end());
    graph.edge_count += fs.size();
  }
  return graph;
}

std::string SocialProgramText(const std::string& peer) {
  const char* n = peer.c_str();
  std::string out;
  out += StrFormat("collection ext follows@%s(who: string);\n", n);
  out += StrFormat("collection ext post@%s(id: int);\n", n);
  out += StrFormat("collection int feed@%s(id: int, author: string);\n", n);
  // Following someone delegates the residual "feed@me($id, <them>) :-
  // post@<them>($id)" to them; their posts then stream back as feed
  // deltas. Exactly the paper's selection-rule shape (§3), at social
  // fan-in instead of a photo album.
  out += StrFormat(
      "rule feed@%s($id, $who) :- follows@%s($who), post@$who($id);\n", n, n);
  return out;
}

PeerOptions SocialPeerOptions() {
  PeerOptions options;
  options.trust_all_delegations = true;
  return options;
}

std::vector<SocialOp> MakeChurnScript(uint32_t num_peers,
                                      uint32_t num_actors, size_t num_ops,
                                      double zipf_exponent, uint64_t seed) {
  std::vector<SocialOp> ops;
  ops.reserve(num_ops);
  if (num_peers < 2 || num_actors == 0) return ops;
  num_actors = std::min(num_actors, num_peers);

  Rng rng(seed);
  ZipfSampler zipf(num_peers, zipf_exponent);
  // Live edges per actor, so unfollows always retract a real follow.
  std::vector<std::vector<uint32_t>> following(num_actors);
  int64_t next_post_id = 1;

  for (size_t i = 0; i < num_ops; ++i) {
    uint32_t actor = static_cast<uint32_t>(rng.NextBelow(num_actors));
    uint64_t roll = rng.NextBelow(4);
    SocialOp op;
    if (roll == 2 && !following[actor].empty()) {
      // Unfollow a random live edge.
      std::vector<uint32_t>& fs = following[actor];
      size_t pick = rng.NextBelow(fs.size());
      op.kind = SocialOp::Kind::kUnfollow;
      op.actor = actor;
      op.target = fs[pick];
      fs[pick] = fs.back();
      fs.pop_back();
    } else if (roll == 3) {
      // Post as a popularity-weighted author: hub posts fan out wide.
      op.kind = SocialOp::Kind::kPost;
      op.actor = zipf.Sample(rng);
      op.post_id = next_post_id++;
    } else {
      // Follow a popularity-weighted target (bounded retries keep the
      // script deterministic; a failed draw degrades into a post).
      std::vector<uint32_t>& fs = following[actor];
      uint32_t target = actor;
      for (int attempt = 0; attempt < 8; ++attempt) {
        uint32_t t = zipf.Sample(rng);
        if (t != actor &&
            std::find(fs.begin(), fs.end(), t) == fs.end()) {
          target = t;
          break;
        }
      }
      if (target == actor) {
        op.kind = SocialOp::Kind::kPost;
        op.actor = actor;
        op.post_id = next_post_id++;
      } else {
        op.kind = SocialOp::Kind::kFollow;
        op.actor = actor;
        op.target = target;
        fs.push_back(target);
      }
    }
    ops.push_back(op);
  }
  return ops;
}

Status SocialDriver::EnsurePeer(uint32_t id) {
  if (id >= programmed_.size()) programmed_.resize(id + 1, false);
  if (programmed_[id]) return Status::OK();
  std::string name = SocialPeerName(id);
  Peer* peer = system_->GetPeer(name);
  if (peer == nullptr) peer = system_->CreatePeer(name, SocialPeerOptions());
  WDL_RETURN_IF_ERROR(peer->LoadProgramText(SocialProgramText(name)));
  programmed_[id] = true;
  return Status::OK();
}

Status SocialDriver::SeedFollows(const SocialGraph& graph) {
  for (uint32_t v = 0; v < graph.num_peers; ++v) {
    for (uint32_t f : graph.followers[v]) {
      WDL_RETURN_IF_ERROR(Follow(f, v));
    }
  }
  return Status::OK();
}

Status SocialDriver::Follow(uint32_t follower, uint32_t followee) {
  WDL_RETURN_IF_ERROR(EnsurePeer(follower));
  WDL_RETURN_IF_ERROR(EnsurePeer(followee));
  std::string name = SocialPeerName(follower);
  Result<bool> r = system_->GetPeer(name)->Insert(
      Fact("follows", name, {Value::String(SocialPeerName(followee))}));
  return r.ok() ? Status::OK() : r.status();
}

Status SocialDriver::Unfollow(uint32_t follower, uint32_t followee) {
  WDL_RETURN_IF_ERROR(EnsurePeer(follower));
  std::string name = SocialPeerName(follower);
  Result<bool> r = system_->GetPeer(name)->Remove(
      Fact("follows", name, {Value::String(SocialPeerName(followee))}));
  return r.ok() ? Status::OK() : r.status();
}

Status SocialDriver::Post(uint32_t author, int64_t post_id) {
  WDL_RETURN_IF_ERROR(EnsurePeer(author));
  std::string name = SocialPeerName(author);
  Result<bool> r = system_->GetPeer(name)->Insert(
      Fact("post", name, {Value::Int(post_id)}));
  return r.ok() ? Status::OK() : r.status();
}

Status SocialDriver::Apply(const SocialOp& op) {
  switch (op.kind) {
    case SocialOp::Kind::kFollow:
      return Follow(op.actor, op.target);
    case SocialOp::Kind::kUnfollow:
      return Unfollow(op.actor, op.target);
    case SocialOp::Kind::kPost:
      return Post(op.actor, op.post_id);
  }
  return Status::InvalidArgument("unknown social op");
}

}  // namespace wdl
