#ifndef WDL_RUNTIME_PEER_H_
#define WDL_RUNTIME_PEER_H_

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "acl/delegation_gate.h"
#include "engine/engine.h"
#include "net/message.h"

namespace wdl {

struct PeerOptions {
  EngineOptions engine;
  /// When true, every origin is treated as trusted and delegations
  /// install without approval (the behavior of peers that opted out of
  /// delegation control; the default mirrors the paper: untrusted).
  bool trust_all_delegations = false;
};

/// One WebdamLog peer: an engine plus the delegation gate and the glue
/// that turns engine stage output into network envelopes and inbound
/// envelopes into engine inputs. Peers are driven by a System but can
/// also be used standalone in tests.
///
/// Concurrency contract (DESIGN.md §8): a Peer's state is touched by
/// exactly one thread at a time, but *different* peers' RunStage calls
/// may run concurrently — everything a stage reads or writes is owned
/// by this peer (engine, catalog, gate, sequence numbers) or is one of
/// the process-wide thread-safe structures (the Symbol intern table).
/// Envelope delivery (HandleEnvelope) and the returned envelopes'
/// submission stay on the System's driving thread.
class Peer {
 public:
  explicit Peer(std::string name, PeerOptions options = {});

  Peer(const Peer&) = delete;
  Peer& operator=(const Peer&) = delete;

  const std::string& name() const { return name_; }
  Engine& engine() { return engine_; }
  const Engine& engine() const { return engine_; }
  DelegationGate& gate() { return gate_; }
  const DelegationGate& gate() const { return gate_; }

  /// Parses `source` as WebdamLog text and loads it into the engine.
  Status LoadProgramText(std::string_view source);
  Status LoadProgram(const Program& program);

  /// Convenience passthroughs for the user API.
  Result<bool> Insert(const Fact& fact) { return engine_.InsertFact(fact); }
  Result<bool> Remove(const Fact& fact) { return engine_.RemoveFact(fact); }
  Result<uint64_t> AddRuleText(std::string_view rule_text);

  /// Routes one arriving envelope into the engine / delegation gate.
  void HandleEnvelope(const Envelope& envelope);

  /// Runs one engine stage and returns the envelopes to transmit.
  std::vector<Envelope> RunStage();

  /// Version-only heartbeat envelopes for every contribution stream
  /// this peer has shipped (see Engine::CollectHeartbeats). The runtime
  /// submits these periodically so a receiver that lost the last frame
  /// of a then-silent stream detects the gap within one heartbeat
  /// interval instead of waiting for the next organic change.
  std::vector<Envelope> MakeHeartbeats();

  bool HasPendingWork() const { return engine_.HasPendingWork(); }

  /// Approves a pending delegation: installs the rule ("the program of
  /// Jules is changed once the approval is granted", §4).
  Status ApproveDelegation(uint64_t delegation_key);
  Status RejectDelegation(uint64_t delegation_key);

  /// Peers this peer has heard of (populated by the System registry
  /// and by Hello messages).
  const std::set<std::string>& known_peers() const { return known_peers_; }
  void AddKnownPeer(const std::string& peer) { known_peers_.insert(peer); }

  /// Textual UI: program listing plus the pending-delegation queue
  /// (the paper's Figure 3 view).
  std::string RenderProgramView() const;

  /// Textual UI: contents of one relation as a table-ish frame
  /// (the paper's Figure 1 frames).
  std::string RenderRelation(const std::string& relation) const;

 private:
  std::string name_;
  PeerOptions options_;
  Engine engine_;
  DelegationGate gate_;
  std::set<std::string> known_peers_;
  uint64_t next_seq_ = 0;
};

}  // namespace wdl

#endif  // WDL_RUNTIME_PEER_H_
