#ifndef WDL_PARSER_PARSER_H_
#define WDL_PARSER_PARSER_H_

#include <string_view>

#include "ast/program.h"
#include "base/result.h"

namespace wdl {

/// Parses a full WebdamLog source text: a sequence of statements, each
/// terminated by ';'. Statements are:
///
///   collection ext|int name@peer(col[: type], ...);
///   [fact] name@peer(v1, ..., vn);                  // ground fact
///   [rule] head :- atom, not atom, ...;             // rule
///
/// The `fact`/`rule` keywords are optional — the paper writes both bare;
/// a statement with ':-' is a rule, a ground atom is a fact. Relation
/// and peer positions accept variables ($R@$P). Anonymous variables
/// `$_` are renamed apart ("_anon0", "_anon1", ...).
Result<Program> ParseProgram(std::string_view src);

/// Parses a single rule, with or without the `rule` keyword / trailing ';'.
Result<Rule> ParseRule(std::string_view src);

/// Parses a single ground fact, with or without `fact` / trailing ';'.
Result<Fact> ParseFact(std::string_view src);

/// Parses a single (possibly non-ground, possibly negated) atom.
Result<Atom> ParseAtom(std::string_view src);

}  // namespace wdl

#endif  // WDL_PARSER_PARSER_H_
