#include "base/symbol.h"

#include <deque>
#include <mutex>
#include <unordered_map>

namespace wdl {
namespace {

struct Entry {
  std::string text;
  uint64_t hash;
};

// Append-only intern table. Entries live in a deque so the strings'
// addresses are stable across growth; the lookup map keys are views
// into those strings.
struct Table {
  std::mutex mu;
  std::deque<Entry> entries;
  std::unordered_map<std::string_view, uint32_t> ids;
};

Table& GlobalTable() {
  static Table* table = new Table();  // leaked: symbols outlive everything
  return *table;
}

const std::string& EmptyString() {
  static const std::string* empty = new std::string();
  return *empty;
}

}  // namespace

Symbol Symbol::Intern(std::string_view text) {
  Table& t = GlobalTable();
  std::lock_guard<std::mutex> lock(t.mu);
  auto it = t.ids.find(text);
  if (it != t.ids.end()) return Symbol(it->second);
  uint32_t id = static_cast<uint32_t>(t.entries.size());
  t.entries.push_back(Entry{std::string(text), HashString(text)});
  t.ids.emplace(std::string_view(t.entries.back().text), id);
  return Symbol(id);
}

Symbol Symbol::Find(std::string_view text) {
  Table& t = GlobalTable();
  std::lock_guard<std::mutex> lock(t.mu);
  auto it = t.ids.find(text);
  return it == t.ids.end() ? Symbol() : Symbol(it->second);
}

size_t Symbol::TableSizeForTesting() {
  Table& t = GlobalTable();
  std::lock_guard<std::mutex> lock(t.mu);
  return t.entries.size();
}

const std::string& Symbol::str() const {
  if (!valid()) return EmptyString();
  Table& t = GlobalTable();
  std::lock_guard<std::mutex> lock(t.mu);
  return t.entries[id_].text;
}

uint64_t Symbol::hash() const {
  if (!valid()) return HashString(std::string_view());
  Table& t = GlobalTable();
  std::lock_guard<std::mutex> lock(t.mu);
  return t.entries[id_].hash;
}

}  // namespace wdl
