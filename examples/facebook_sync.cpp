// The §4 "Interaction via Facebook" scenario in both directions, plus
// the §2 user-account wrapper (friends@ÉmilienFB / pictures@ÉmilienFB)
// used from a rule — showing that a Wepic user can see and publish
// Facebook content "even without having a Facebook account".
//
// Run:  ./build/examples/facebook_sync

#include <cstdio>

#include "wepic/wepic.h"
#include "wrappers/facebook_wrapper.h"

int main() {
  wdl::WepicApp app;
  if (!app.SetupConference().ok()) return 1;
  if (!app.AddAttendee("Emilien").ok()) return 1;
  if (!app.AddAttendee("Jules").ok()) return 1;

  // Direction 1: local upload -> pictures@sigmod -> (authorized) ->
  // pictures@SigmodFB -> the actual wall.
  (void)app.UploadPicture("Emilien", 1, "sea.jpg", "...");
  (void)app.AuthorizeFacebook("Emilien", 1);
  (void)app.Converge();
  std::printf("wall after Emilien's authorized upload:\n");
  for (const auto& pic : app.facebook().GroupPictures(wdl::kFacebookGroup)) {
    std::printf("  #%lld %s by %s\n", static_cast<long long>(pic.id),
                pic.name.c_str(), pic.owner.c_str());
  }

  // Direction 2: someone posts straight on the wall; the sigmod peer
  // retrieves it, so every Wepic user can see it without a Facebook
  // account.
  (void)app.facebook().PostPicture(
      wdl::kFacebookGroup, {42, "banquet.jpg", "Jules", "wallbytes"});
  (void)app.Converge();
  std::printf("\npictures@sigmod after a direct wall post:\n%s",
              app.sigmod()->RenderRelation("pictures").c_str());

  // The §2 user-account wrapper: Émilien's Facebook account as two
  // relations, joined by an ordinary WebdamLog rule.
  app.facebook().AddFriendship("Emilien", "Jules");
  app.facebook().AddFriendship("Emilien", "Serge");
  wdl::Peer* emilien_fb = app.system().CreatePeer("EmilienFB");
  (void)app.system().AttachWrapper(
      std::make_unique<wdl::FacebookUserWrapper>("EmilienFB",
                                                 &app.facebook(),
                                                 "Emilien"));
  wdl::Status st = emilien_fb->LoadProgramText(R"(
    collection int fofNames@EmilienFB(name: string);
    rule fofNames@EmilienFB($f) :- friends@EmilienFB($me, $f);
  )");
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  (void)app.Converge();
  std::printf("\nfriends exported by the account wrapper:\n%s",
              emilien_fb->RenderRelation("fofNames").c_str());
  return 0;
}
