#include "parser/lexer.h"

#include <gtest/gtest.h>

namespace wdl {
namespace {

std::vector<Token> Lex(std::string_view src) {
  Result<std::vector<Token>> r = Tokenize(src);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? std::move(r).value() : std::vector<Token>{};
}

TEST(LexerTest, EmptyInputYieldsOnlyEof) {
  std::vector<Token> tokens = Lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEof);
}

TEST(LexerTest, PunctuationAndColonDash) {
  std::vector<Token> tokens = Lex("@(),;:-:");
  ASSERT_EQ(tokens.size(), 8u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kAt);
  EXPECT_EQ(tokens[1].kind, TokenKind::kLParen);
  EXPECT_EQ(tokens[2].kind, TokenKind::kRParen);
  EXPECT_EQ(tokens[3].kind, TokenKind::kComma);
  EXPECT_EQ(tokens[4].kind, TokenKind::kSemicolon);
  EXPECT_EQ(tokens[5].kind, TokenKind::kColonDash);
  EXPECT_EQ(tokens[6].kind, TokenKind::kColon);
  EXPECT_EQ(tokens[7].kind, TokenKind::kEof);
}

TEST(LexerTest, Identifiers) {
  std::vector<Token> tokens = Lex("pictures sigmod _internal x2");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].text, "pictures");
  EXPECT_EQ(tokens[1].text, "sigmod");
  EXPECT_EQ(tokens[2].text, "_internal");
  EXPECT_EQ(tokens[3].text, "x2");
}

TEST(LexerTest, Variables) {
  std::vector<Token> tokens = Lex("$x $owner $_");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kVariable);
  EXPECT_EQ(tokens[0].text, "x");
  EXPECT_EQ(tokens[1].text, "owner");
  EXPECT_EQ(tokens[2].text, "_");
}

TEST(LexerTest, DollarWithoutNameIsError) {
  EXPECT_FALSE(Tokenize("$ x").ok());
}

TEST(LexerTest, IntegerLiterals) {
  std::vector<Token> tokens = Lex("0 42 -7");
  EXPECT_EQ(tokens[0].int_value, 0);
  EXPECT_EQ(tokens[1].int_value, 42);
  EXPECT_EQ(tokens[2].int_value, -7);
  EXPECT_EQ(tokens[2].kind, TokenKind::kInt);
}

TEST(LexerTest, DoubleLiterals) {
  std::vector<Token> tokens = Lex("3.5 -0.25 1e3 2.5e-2");
  EXPECT_EQ(tokens[0].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ(tokens[0].double_value, 3.5);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, -0.25);
  EXPECT_DOUBLE_EQ(tokens[2].double_value, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[3].double_value, 0.025);
}

TEST(LexerTest, IntegerFollowedByIdentifierEIsNotADouble) {
  // "12e" must lex as integer 12 then identifier "e" (no exponent
  // digits), not die or mis-lex.
  std::vector<Token> tokens = Lex("12e");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kInt);
  EXPECT_EQ(tokens[0].int_value, 12);
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[1].text, "e");
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  std::vector<Token> tokens = Lex(R"("sea.jpg" "a\"b" "tab\there")");
  EXPECT_EQ(tokens[0].text, "sea.jpg");
  EXPECT_EQ(tokens[1].text, "a\"b");
  EXPECT_EQ(tokens[2].text, "tab\there");
}

TEST(LexerTest, UnterminatedStringIsError) {
  EXPECT_FALSE(Tokenize("\"oops").ok());
}

TEST(LexerTest, NewlineInStringIsError) {
  EXPECT_FALSE(Tokenize("\"line\nbreak\"").ok());
}

TEST(LexerTest, BadEscapeIsError) {
  EXPECT_FALSE(Tokenize(R"("\q")").ok());
}

TEST(LexerTest, BlobLiterals) {
  std::vector<Token> tokens = Lex("0xdeadBEEF 0x00");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kBlob);
  EXPECT_EQ(tokens[0].text, std::string("\xde\xad\xbe\xef", 4));
  EXPECT_EQ(tokens[1].text, std::string("\0", 1));
}

TEST(LexerTest, OddLengthBlobIsError) {
  EXPECT_FALSE(Tokenize("0xabc").ok());
}

TEST(LexerTest, EmptyBlobIsError) {
  EXPECT_FALSE(Tokenize("0x ").ok());
}

TEST(LexerTest, LineComments) {
  std::vector<Token> tokens = Lex("a // comment\nb # another\nc");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[2].text, "c");
}

TEST(LexerTest, BlockComments) {
  std::vector<Token> tokens = Lex("a /* x\ny */ b");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(LexerTest, UnterminatedBlockCommentIsError) {
  EXPECT_FALSE(Tokenize("a /* never closed").ok());
}

TEST(LexerTest, PositionsTrackLinesAndColumns) {
  std::vector<Token> tokens = Lex("abc\n  def");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(LexerTest, ErrorsCarryPosition) {
  Result<std::vector<Token>> r = Tokenize("ok\n  ^bad");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("2:3"), std::string::npos)
      << r.status();
}

TEST(LexerTest, UnexpectedCharacterIsError) {
  EXPECT_FALSE(Tokenize("%").ok());
  EXPECT_FALSE(Tokenize("[").ok());
}

TEST(LexerTest, IntegerOverflowIsError) {
  EXPECT_FALSE(Tokenize("999999999999999999999999999").ok());
}

}  // namespace
}  // namespace wdl
