// The §4 "Customizing rules" scenario: the most novel trait of Wepic is
// that users can replace the application's rules. Here Jules swaps the
// default selection rule for the rating-5 filter and the frame changes
// content; then he customizes further (pictures where "Serge" appears),
// exactly the follow-up the demo invites the audience to try.
//
// Run:  ./build/examples/customize_rules

#include <cstdio>

#include "wepic/wepic.h"

int main() {
  wdl::WepicApp app;
  if (!app.SetupConference().ok()) return 1;
  if (!app.AddAttendee("Emilien").ok()) return 1;
  if (!app.AddAttendee("Jules").ok()) return 1;
  app.attendee("Emilien")->gate().TrustPeer("Jules");
  app.attendee("Jules")->gate().TrustPeer("Emilien");

  (void)app.UploadPicture("Emilien", 1, "panel.jpg", "b1");
  (void)app.UploadPicture("Emilien", 2, "coffee.jpg", "b2");
  (void)app.UploadPicture("Emilien", 3, "keynote.jpg", "b3");
  (void)app.RatePicture("Emilien", 1, 5);
  (void)app.RatePicture("Emilien", 2, 3);
  (void)app.RatePicture("Emilien", 3, 5);
  (void)app.TagPicture("Emilien", 1, "Serge");
  (void)app.SelectAttendee("Jules", "Emilien");
  (void)app.Converge();

  std::printf("---- default rule: all pictures of selected attendees\n%s\n",
              app.RenderAttendeePicturesFrame("Jules").c_str());

  // Customization 1 (§4 verbatim): only pictures rated 5.
  if (!app.InstallRatingFilter("Jules", 5).ok()) return 1;
  (void)app.Converge();
  std::printf("---- customized: only pictures rated 5\n%s\n",
              app.RenderAttendeePicturesFrame("Jules").c_str());

  // Customization 2 (the audience's follow-up): only pictures in which
  // a certain attendee appears, via the owner's tag relation.
  wdl::Peer* jules = app.attendee("Jules");
  for (const wdl::InstalledRule* r : jules->engine().rules()) {
    if (r->rule.head.relation.is_name() &&
        r->rule.head.relation.name() == "attendeePictures") {
      (void)jules->engine().RemoveRule(r->id);
      break;
    }
  }
  wdl::Result<uint64_t> added = jules->AddRuleText(R"(
    attendeePictures@Jules($id, $name, $owner, $data) :-
        selectedAttendee@Jules($attendee),
        pictures@$attendee($id, $name, $owner, $data),
        tag@$owner($id, "Serge")
  )");
  if (!added.ok()) {
    std::fprintf(stderr, "%s\n", added.status().ToString().c_str());
    return 1;
  }
  (void)app.Converge();
  std::printf("---- customized further: only pictures tagged \"Serge\"\n%s",
              app.RenderAttendeePicturesFrame("Jules").c_str());
  return 0;
}
