// TcpNetwork unit tests: framing, loopback, hostile frames, and the
// link-reset signals the runtime turns into resyncs. Everything runs
// against real sockets on 127.0.0.1 with ephemeral ports.

#include "net/tcp_network.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/wire.h"

namespace wdl {
namespace {

bool WaitUntil(const std::function<bool()>& pred, int timeout_ms = 5000) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

Envelope Hello(const std::string& from, const std::string& to,
               uint64_t seq = 1) {
  Envelope e;
  e.from = from;
  e.to = to;
  e.seq = seq;
  e.message = Message::Hello(from);
  return e;
}

// Raw client socket for speaking (mis)framed bytes at a listener.
int RawConnect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

std::string Framed(const std::string& payload) {
  std::string frame;
  uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) frame.push_back(static_cast<char>(len >> (8 * i)));
  return frame + payload;
}

/// True when the remote closed the connection (recv sees EOF).
bool SeesEof(int fd, int timeout_ms = 5000) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  char c;
  return ::recv(fd, &c, 1, 0) == 0;
}

TEST(TcpNetworkTest, StartPicksEphemeralPortAndSubmitBeforeStartFails) {
  TcpNetwork net;
  Status st = net.Submit(Hello("a", "b"), 0.0);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(net.Start().ok());
  EXPECT_NE(net.port(), 0);
}

TEST(TcpNetworkTest, LocalPeerLoopsBackThroughTheCodec) {
  TcpNetwork net;
  ASSERT_TRUE(net.Start().ok());
  net.AddLocalPeer("alice");

  ASSERT_TRUE(net.Submit(Hello("alice", "alice", 3), 0.0).ok());
  std::vector<Envelope> got = net.DeliverDue(0.0);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].from, "alice");
  EXPECT_EQ(got[0].seq, 3u);
  NetworkStats stats = net.StatsSnapshot();
  EXPECT_EQ(stats.messages_delivered, 1u);
  EXPECT_GT(stats.bytes_sent, 0u);  // loopback still counts wire bytes
}

TEST(TcpNetworkTest, SubmitToUnknownPeerIsNotFound) {
  TcpNetwork net;
  ASSERT_TRUE(net.Start().ok());
  Status st = net.Submit(Hello("alice", "nobody"), 0.0);
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

TEST(TcpNetworkTest, DeliversAcrossRealSockets) {
  TcpNetwork a, b;
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  a.AddLocalPeer("alice");
  b.AddLocalPeer("bob");
  a.SetPeerAddress("bob", "127.0.0.1", b.port());

  ASSERT_TRUE(a.Submit(Hello("alice", "bob", 11), 0.0).ok());
  std::vector<Envelope> got;
  ASSERT_TRUE(WaitUntil([&] {
    for (Envelope& e : b.DeliverDue(0.0)) got.push_back(std::move(e));
    return !got.empty();
  }));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].from, "alice");
  EXPECT_EQ(got[0].to, "bob");
  EXPECT_EQ(got[0].seq, 11u);
  // A clean first connect is not a reset.
  EXPECT_TRUE(a.TakePeerResets().empty());
  EXPECT_EQ(b.TcpStatsSnapshot().frames_received, 1u);
  EXPECT_TRUE(WaitUntil([&] { return !a.HasInFlight(); }));
}

TEST(TcpNetworkTest, GarbageFrameDropsTheConnection) {
  TcpNetwork net;
  ASSERT_TRUE(net.Start().ok());
  net.AddLocalPeer("bob");

  int fd = RawConnect(net.port());
  std::string frame = Framed("this is not an envelope");
  ASSERT_EQ(::send(fd, frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));
  EXPECT_TRUE(WaitUntil(
      [&] { return net.TcpStatsSnapshot().decode_failures == 1; }));
  // The reader refuses to resynchronize a corrupt stream: it hangs up.
  EXPECT_TRUE(SeesEof(fd));
  EXPECT_EQ(net.TcpStatsSnapshot().frames_received, 0u);
  EXPECT_TRUE(net.DeliverDue(0.0).empty());
  ::close(fd);
}

TEST(TcpNetworkTest, HostileLengthPrefixIsRejectedBeforeAllocation) {
  TcpNetworkOptions options;
  options.max_frame_bytes = 1 << 16;
  TcpNetwork net(options);
  ASSERT_TRUE(net.Start().ok());

  int fd = RawConnect(net.port());
  const char huge[4] = {'\xff', '\xff', '\xff', '\xff'};  // 4 GiB claim
  ASSERT_EQ(::send(fd, huge, 4, 0), 4);
  EXPECT_TRUE(WaitUntil(
      [&] { return net.TcpStatsSnapshot().oversized_frames == 1; }));
  EXPECT_TRUE(SeesEof(fd));
  ::close(fd);

  // Zero-length frames are equally meaningless and equally fatal.
  fd = RawConnect(net.port());
  const char zero[4] = {0, 0, 0, 0};
  ASSERT_EQ(::send(fd, zero, 4, 0), 4);
  EXPECT_TRUE(WaitUntil(
      [&] { return net.TcpStatsSnapshot().oversized_frames == 2; }));
  EXPECT_TRUE(SeesEof(fd));
  ::close(fd);
}

TEST(TcpNetworkTest, TruncatedFrameAtEofDeliversNothing) {
  TcpNetwork net;
  ASSERT_TRUE(net.Start().ok());

  int fd = RawConnect(net.port());
  // Claim 100 bytes, provide 10, hang up mid-frame.
  std::string partial = Framed(std::string(100, 'x')).substr(0, 4 + 10);
  ASSERT_EQ(::send(fd, partial.data(), partial.size(), 0),
            static_cast<ssize_t>(partial.size()));
  ::close(fd);
  ASSERT_TRUE(WaitUntil(
      [&] { return net.TcpStatsSnapshot().connections_accepted == 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(net.TcpStatsSnapshot().frames_received, 0u);
  EXPECT_TRUE(net.DeliverDue(0.0).empty());
}

TEST(TcpNetworkTest, InboundCloseSignalsResetOfTheSender) {
  TcpNetwork b;
  ASSERT_TRUE(b.Start().ok());
  b.AddLocalPeer("bob");
  {
    TcpNetwork a;
    ASSERT_TRUE(a.Start().ok());
    a.AddLocalPeer("alice");
    a.SetPeerAddress("bob", "127.0.0.1", b.port());
    ASSERT_TRUE(a.Submit(Hello("alice", "bob"), 0.0).ok());
    ASSERT_TRUE(WaitUntil(
        [&] { return b.TcpStatsSnapshot().frames_received == 1; }));
  }  // alice's process "dies"
  std::vector<std::string> resets;
  ASSERT_TRUE(WaitUntil([&] {
    for (std::string& r : b.TakePeerResets()) resets.push_back(std::move(r));
    return !resets.empty();
  }));
  EXPECT_EQ(resets, std::vector<std::string>{"alice"});
}

TEST(TcpNetworkTest, ReconnectsThroughAddressFileAndSignalsReset) {
  std::string addr_file =
      ::testing::TempDir() + "/tcp_network_test_bob.addr";
  auto write_addr = [&](uint16_t port) {
    std::string tmp = addr_file + ".tmp";
    FILE* f = ::fopen(tmp.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "127.0.0.1:%u\n", port);
    ::fclose(f);
    ASSERT_EQ(::rename(tmp.c_str(), addr_file.c_str()), 0);
  };

  TcpNetworkOptions fast_retry;
  fast_retry.connect_retry_initial_ms = 5;
  fast_retry.connect_retry_max_ms = 40;
  TcpNetwork a(fast_retry);
  ASSERT_TRUE(a.Start().ok());
  a.AddLocalPeer("alice");
  a.SetPeerAddressFile("bob", addr_file);

  auto b1 = std::make_unique<TcpNetwork>();
  ASSERT_TRUE(b1->Start().ok());
  b1->AddLocalPeer("bob");
  write_addr(b1->port());

  ASSERT_TRUE(a.Submit(Hello("alice", "bob", 1), 0.0).ok());
  ASSERT_TRUE(WaitUntil(
      [&] { return b1->TcpStatsSnapshot().frames_received == 1; }));
  EXPECT_TRUE(a.TakePeerResets().empty());

  // Kill bob's first incarnation; bring up a second one on a fresh
  // ephemeral port and republish the address file — exactly what a
  // restarted wdl_peerd does.
  b1.reset();
  TcpNetwork b2;
  ASSERT_TRUE(b2.Start().ok());
  b2.AddLocalPeer("bob");
  write_addr(b2.port());

  // Keep offering traffic: the first send after the death may be
  // swallowed by a kernel buffer, the next one errors, the link
  // reconnects — to the *new* port — and redelivers from the queue.
  uint64_t seq = 2;
  std::vector<std::string> resets;
  ASSERT_TRUE(WaitUntil([&] {
    (void)a.Submit(Hello("alice", "bob", seq++), 0.0);
    for (std::string& r : a.TakePeerResets()) resets.push_back(std::move(r));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    return !resets.empty() && b2.TcpStatsSnapshot().frames_received > 0;
  }, 10000));
  EXPECT_EQ(resets[0], "bob");
  EXPECT_GE(a.TcpStatsSnapshot().reconnects, 1u);
  ::unlink(addr_file.c_str());
}

}  // namespace
}  // namespace wdl
