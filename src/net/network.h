#ifndef WDL_NET_NETWORK_H_
#define WDL_NET_NETWORK_H_

#include <map>
#include <queue>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "base/result.h"
#include "base/rng.h"
#include "net/message.h"

namespace wdl {

/// Delivery characteristics of one directed link. Latency is measured
/// in stage-time units (1.0 = one system round); the default 0.5 means
/// "arrives before the next round", matching a LAN where message
/// delivery is faster than a computation stage.
struct LinkConfig {
  double latency = 0.5;
  double jitter = 0.0;           // uniform extra latency in [0, jitter)
  double drop_probability = 0.0; // iid per message
  /// iid per message: the frame is delivered twice (with independent
  /// latency draws, so the copies can reorder around later traffic).
  /// Exercises the at-least-once tolerance of the delta protocol.
  double duplicate_probability = 0.0;
};

struct NetworkStats {
  uint64_t messages_submitted = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped = 0;    // random loss
  uint64_t messages_partitioned = 0; // lost to a partition
  uint64_t messages_duplicated = 0;  // extra copies injected by links
  uint64_t bytes_sent = 0;           // frames the sender actually emitted
  /// Wire bytes of the *extra* copies injected by duplicate_probability.
  /// Kept out of bytes_sent so protocol byte accounting (BENCH_pr3/pr4
  /// comparisons) measures what the sender shipped, not the link fault
  /// injection; total wire occupancy is the sum of both.
  uint64_t bytes_duplicated = 0;

  void Reset() { *this = NetworkStats(); }
};

/// Abstract transport between peers, addressed by peer name.
class Network {
 public:
  virtual ~Network() = default;
  /// Queues an envelope for delivery; `now` is current system time.
  virtual Status Submit(Envelope envelope, double now) = 0;
  /// Pops every envelope whose delivery time is <= `now`, in delivery
  /// order (time, then submission sequence).
  virtual std::vector<Envelope> DeliverDue(double now) = 0;
  virtual bool HasInFlight() const = 0;
  /// Point-in-time copy of the transport counters (a copy because an
  /// asynchronous transport updates them from its own threads).
  virtual NetworkStats StatsSnapshot() const = 0;
  /// Peers whose link to this endpoint was reset (connection dropped or
  /// re-established) since the last call. The runtime reacts by
  /// re-shipping its streams to — and re-requesting the streams from —
  /// those peers, so a restarted process heals like a gap-detected
  /// stream. A simulated network never resets links.
  virtual std::vector<std::string> TakePeerResets() { return {}; }
};

/// Deterministic in-process network simulator. Every envelope is
/// round-tripped through the binary wire codec (encode on submit,
/// decode on delivery), so byte accounting is exact and the codec is on
/// the hot path of every experiment. Jitter and drops come from a
/// seeded PRNG: identical seeds replay identical executions.
///
/// This is the paper-substitution for the live LAN + cloud deployment;
/// see DESIGN.md §2. Latency/jitter/drop/duplicate/partition knobs let
/// tests exercise reorderings and failures that a demo floor never
/// shows.
class SimulatedNetwork : public Network {
 public:
  explicit SimulatedNetwork(uint64_t seed = 42,
                            LinkConfig default_link = LinkConfig{});

  /// Overrides the link from `from` to `to` (directed). Per-link state
  /// exists only for links configured here — a default-config link
  /// costs nothing until (or unless) traffic crosses it, so an N-peer
  /// system carries O(configured links), never O(N²). To shape *every*
  /// link, use SetDefaultLink instead of an all-pairs SetLink loop.
  void SetLink(const std::string& from, const std::string& to,
               LinkConfig config);

  /// Replaces the config that links without a SetLink override use —
  /// O(1) however many peers exist. Affects frames submitted from now
  /// on; in-flight frames keep the latency they were assigned.
  void SetDefaultLink(LinkConfig config) { default_link_ = config; }

  /// Severs (or heals) both directions between `a` and `b`. Messages
  /// submitted while partitioned are lost, as over a real WAN cut.
  void SetPartitioned(const std::string& a, const std::string& b,
                      bool partitioned);

  /// Severs (or heals) `peer` from *everyone* in O(1) — the building
  /// block for regional partitions at scale: cutting a 5k-peer region
  /// off a 100k-peer world is 5k isolations, not 5k×95k pair entries.
  /// Messages to or from an isolated peer are lost (counted as
  /// partitioned), exactly as with SetPartitioned.
  void SetIsolated(const std::string& peer, bool isolated);

  Status Submit(Envelope envelope, double now) override;
  std::vector<Envelope> DeliverDue(double now) override;
  bool HasInFlight() const override { return !in_flight_.empty(); }
  NetworkStats StatsSnapshot() const override { return stats_; }

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  /// Per-directed-edge message counts, for topology experiments (F2).
  const std::map<std::pair<std::string, std::string>, uint64_t>&
  edge_message_counts() const {
    return edge_messages_;
  }

  /// Per-edge counting grows one map entry per active directed edge —
  /// fine for topology experiments, unwanted bookkeeping for 100k-peer
  /// scale runs. Disabled, Submit keeps aggregate stats only. Default
  /// on (the seed behavior).
  void set_track_edge_counts(bool track) { track_edge_counts_ = track; }

 private:
  struct InFlight {
    double deliver_at;
    uint64_t seq;
    std::string bytes;

    bool operator>(const InFlight& o) const {
      if (deliver_at != o.deliver_at) return deliver_at > o.deliver_at;
      return seq > o.seq;
    }
  };

  const LinkConfig& LinkFor(const std::string& from,
                            const std::string& to) const;

  Rng rng_;
  LinkConfig default_link_;
  std::map<std::pair<std::string, std::string>, LinkConfig> links_;
  std::set<std::pair<std::string, std::string>> partitions_;
  std::set<std::string> isolated_;
  bool track_edge_counts_ = true;
  std::priority_queue<InFlight, std::vector<InFlight>, std::greater<>>
      in_flight_;
  uint64_t next_seq_ = 0;
  NetworkStats stats_;
  std::map<std::pair<std::string, std::string>, uint64_t> edge_messages_;
};

}  // namespace wdl

#endif  // WDL_NET_NETWORK_H_
