// Differential-vs-full-slice oracle suite (ISSUE PR3).
//
// The differential propagation protocol (DerivedDelta streams with
// versions + resync, DESIGN.md §5) must converge every multi-peer run
// to *exactly* the state the full-slice protocol reaches — including
// deletions, delegation retracts, and messy links (loss with healing,
// duplication). Each scenario runs once per mode and compares the
// GlobalStateFingerprint (every relation of every peer, canonically
// rendered) byte for byte.

#include <functional>
#include <string>

#include <gtest/gtest.h>

#include "runtime/query.h"
#include "runtime/system.h"
#include "support/builders.h"
#include "support/counters.h"
#include "support/fixture.h"

namespace wdl {
namespace {

using test::GlobalStateFingerprint;
using test::I;
using test::NetworkCounters;
using test::S;

PeerOptions Mode(bool differential) {
  PeerOptions o;
  o.engine.use_differential_propagation = differential;
  return o;
}

/// Runs `scenario` against a fresh System whose peers all use the given
/// propagation mode, then returns the converged global state.
std::string RunScenario(
    bool differential, const SystemOptions& sys_opts,
    const std::function<void(System&, PeerOptions)>& scenario) {
  System system(sys_opts);
  scenario(system, Mode(differential));
  return GlobalStateFingerprint(system);
}

void ExpectModesAgree(
    const std::function<void(System&, PeerOptions)>& scenario,
    SystemOptions sys_opts = {}) {
  std::string full = RunScenario(false, sys_opts, scenario);
  std::string differential = RunScenario(true, sys_opts, scenario);
  EXPECT_EQ(full, differential);
}

// Two senders feed one intensional board with overlapping tuples; facts
// are later deleted, including one whose twin survives at the other
// sender (support counts must keep it alive).
void OverlappingViewScenario(System& system, PeerOptions mode) {
  Peer* hub = system.CreatePeer("hub", mode);
  Peer* a = system.CreatePeer("a", mode);
  Peer* b = system.CreatePeer("b", mode);
  ASSERT_TRUE(hub->LoadProgramText(
      "collection int board@hub(x: int);").ok());
  ASSERT_TRUE(a->LoadProgramText(R"(
    collection ext data@a(x: int);
    rule board@hub($x) :- data@a($x);
  )").ok());
  ASSERT_TRUE(b->LoadProgramText(R"(
    collection ext data@b(x: int);
    rule board@hub($x) :- data@b($x);
  )").ok());
  for (int64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(a->Insert(Fact("data", "a", {I(i)})).ok());
  }
  for (int64_t i = 4; i < 10; ++i) {  // 4 and 5 overlap with a
    ASSERT_TRUE(b->Insert(Fact("data", "b", {I(i)})).ok());
  }
  ASSERT_TRUE(system.RunUntilQuiescent().ok());

  // Deletions: 4 stays supported by b; 0 vanishes outright; 9 vanishes
  // from b's side.
  ASSERT_TRUE(a->Remove(Fact("data", "a", {I(4)})).ok());
  ASSERT_TRUE(a->Remove(Fact("data", "a", {I(0)})).ok());
  ASSERT_TRUE(b->Remove(Fact("data", "b", {I(9)})).ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
}

TEST(PropagationOracleTest, OverlappingViewsWithDeletions) {
  ExpectModesAgree(OverlappingViewScenario);

  // Sanity on the converged content itself (differential run).
  System system;
  OverlappingViewScenario(system, Mode(true));
  const Relation* board =
      system.GetPeer("hub")->engine().catalog().Get("board");
  ASSERT_NE(board, nullptr);
  EXPECT_EQ(board->size(), 8u);                  // 1..8
  EXPECT_TRUE(board->Contains({I(4)}));          // still supported by b
  EXPECT_FALSE(board->Contains({I(0)}));
  EXPECT_FALSE(board->Contains({I(9)}));
  EXPECT_EQ(system.GetPeer("hub")->engine().slice_store().SupportCount(
                "board", {I(4)}),
            1u);
}

// A rule whose body crosses to a remote peer delegates a residual; when
// the rule is removed, the delegation retracts and the remote peer's
// contribution must drain from the view.
void DelegationRetractScenario(System& system, PeerOptions mode) {
  Peer* a = system.CreatePeer("a", mode);
  Peer* b = system.CreatePeer("b", mode);
  a->gate().TrustPeer("b");
  b->gate().TrustPeer("a");
  ASSERT_TRUE(a->LoadProgramText(R"(
    collection ext friends@a(who: string);
    collection int spotted@a(who: string);
    fact friends@a("carol");
    fact friends@a("dave");
  )").ok());
  ASSERT_TRUE(b->LoadProgramText(R"(
    collection ext seen@b(who: string);
    fact seen@b("carol");
    fact seen@b("erin");
  )").ok());
  Result<uint64_t> rule = a->AddRuleText(
      "spotted@a($w) :- friends@a($w), seen@b($w)");
  ASSERT_TRUE(rule.ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  ASSERT_TRUE(
      a->engine().catalog().Get("spotted")->Contains({S("carol")}));

  ASSERT_TRUE(a->engine().RemoveRule(*rule).ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
}

TEST(PropagationOracleTest, DelegationRetractDrainsContribution) {
  ExpectModesAgree(DelegationRetractScenario);

  System system;
  DelegationRetractScenario(system, Mode(true));
  EXPECT_EQ(system.GetPeer("a")->engine().catalog().Get("spotted")->size(),
            0u);
  // The residual at b is gone too.
  for (const InstalledRule* r : system.GetPeer("b")->engine().rules()) {
    EXPECT_EQ(r->delegation_key, 0u);
  }
}

// Total loss on the propagation path, then heal + touch: both modes
// must repair the receiver to the true view (full-slice by re-sending
// everything on the next change; differential by detecting the version
// gap and resyncing).
void LossyThenHealScenario(System& system, PeerOptions mode) {
  Peer* a = system.CreatePeer("a", mode);
  Peer* hub = system.CreatePeer("hub", mode);
  ASSERT_TRUE(hub->LoadProgramText(
      "collection int board@hub(x: int);").ok());
  ASSERT_TRUE(a->LoadProgramText(R"(
    collection ext data@a(x: int);
    rule board@hub($x) :- data@a($x);
    rule mirror@hub($x) :- data@a($x);
  )").ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());

  LinkConfig dead;
  dead.drop_probability = 1.0;
  system.network().SetLink("a", "hub", dead);
  for (int64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(a->Insert(Fact("data", "a", {I(i)})).ok());
  }
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  const Relation* board = hub->engine().catalog().Get("board");
  ASSERT_TRUE(board == nullptr || board->empty());  // everything lost

  system.network().SetLink("a", "hub", LinkConfig{});
  ASSERT_TRUE(a->Insert(Fact("data", "a", {I(8)})).ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
}

TEST(PropagationOracleTest, LossHealsOnNextChange) {
  ExpectModesAgree(LossyThenHealScenario);

  System system;
  LossyThenHealScenario(system, Mode(true));
  Peer* hub = system.GetPeer("hub");
  EXPECT_EQ(hub->engine().catalog().Get("board")->size(), 9u);
  // The extensional mirror heals through the same resync snapshot.
  EXPECT_EQ(hub->engine().catalog().Get("mirror")->size(), 9u);
  // And the repair really went through the gap->resync path.
  EXPECT_GE(hub->engine().propagation_counters().resyncs_requested, 1u);
}

// Every message delivered twice: version gates must drop the replayed
// deltas, and install/retract/delete messages are idempotent.
TEST(PropagationOracleTest, DuplicatingLinksConvergeIdentically) {
  SystemOptions duplicating;
  duplicating.default_link.duplicate_probability = 1.0;

  std::string clean_full = RunScenario(false, {}, OverlappingViewScenario);
  std::string dup_full =
      RunScenario(false, duplicating, OverlappingViewScenario);
  std::string dup_diff =
      RunScenario(true, duplicating, OverlappingViewScenario);
  EXPECT_EQ(clean_full, dup_full);
  EXPECT_EQ(clean_full, dup_diff);

  std::string clean_deleg =
      RunScenario(false, {}, DelegationRetractScenario);
  EXPECT_EQ(clean_deleg,
            RunScenario(true, duplicating, DelegationRetractScenario));
}

// The point of the whole protocol: after a large view converged, a
// one-tuple change must cost O(change) wire bytes under differential
// propagation, not O(view).
TEST(PropagationOracleTest, IncrementalChangeShipsChangeNotView) {
  auto build = [](System& system, PeerOptions mode) {
    Peer* a = system.CreatePeer("a", mode);
    Peer* hub = system.CreatePeer("hub", mode);
    ASSERT_TRUE(hub->LoadProgramText(
        "collection int board@hub(x: int);").ok());
    ASSERT_TRUE(a->LoadProgramText(R"(
      collection ext data@a(x: int);
      rule board@hub($x) :- data@a($x);
    )").ok());
    for (int64_t i = 0; i < 500; ++i) {
      ASSERT_TRUE(a->Insert(Fact("data", "a", {I(i)})).ok());
    }
    ASSERT_TRUE(system.RunUntilQuiescent().ok());
  };

  auto incremental_bytes = [&](bool differential) {
    System system;
    build(system, Mode(differential));
    NetworkCounters before(system.network());
    EXPECT_TRUE(
        system.GetPeer("a")->Insert(Fact("data", "a", {I(1000)})).ok());
    EXPECT_TRUE(system.RunUntilQuiescent().ok());
    return (NetworkCounters(system.network()) - before).bytes_sent;
  };

  uint64_t full = incremental_bytes(false);
  uint64_t diff = incremental_bytes(true);
  // Full-slice re-ships all 501 tuples; differential ships 1 insert.
  EXPECT_LT(diff * 50, full);

  // And the per-engine telemetry attributes it.
  System system;
  build(system, Mode(true));
  const PropagationCounters& pc =
      system.GetPeer("a")->engine().propagation_counters();
  EXPECT_EQ(pc.full_sets_shipped, 0u);
  EXPECT_EQ(pc.delta_inserts_shipped, 500u);
}

// Regression (ISSUE PR4): the ship-once suppression of remote deletes
// must lift when the same fact is re-shipped as an insert. Before the
// fix, a fact deleted, re-asserted through a fresh contribution, then
// deleted again never re-shipped the delete — the receiver kept the
// zombie fact forever.
TEST(PropagationOracleTest, RemoteDeleteReshipsAfterInsertReship) {
  for (bool differential : {false, true}) {
    for (bool incremental : {false, true}) {
      SCOPED_TRACE(testing::Message() << "differential=" << differential
                                      << " incremental=" << incremental);
      PeerOptions mode;
      mode.engine.use_differential_propagation = differential;
      mode.engine.use_incremental_maintenance = incremental;
      System system;
      Peer* a = system.CreatePeer("a", mode);
      Peer* b = system.CreatePeer("b", mode);
      ASSERT_TRUE(a->LoadProgramText(R"(
        collection ext src@a(x: int);
        collection ext kill@a(x: int);
        rule p@b($x) :- src@a($x);
        rule -p@b($x) :- src@a($x), kill@a($x);
      )").ok());
      ASSERT_TRUE(b->LoadProgramText(
          "collection ext p@b(x: int);").ok());
      const Relation* p = b->engine().catalog().Get("p");

      // Ship p(1), then delete it through the deletion rule.
      ASSERT_TRUE(a->Insert(Fact("src", "a", {I(1)})).ok());
      ASSERT_TRUE(system.RunUntilQuiescent().ok());
      ASSERT_TRUE(p->Contains({I(1)}));
      ASSERT_TRUE(a->Insert(Fact("kill", "a", {I(1)})).ok());
      ASSERT_TRUE(system.RunUntilQuiescent().ok());
      ASSERT_FALSE(p->Contains({I(1)}));

      // Drain the contribution, then re-assert: p(1) ships as an
      // insert again, which must clear the delete suppression.
      ASSERT_TRUE(a->Remove(Fact("src", "a", {I(1)})).ok());
      ASSERT_TRUE(a->Remove(Fact("kill", "a", {I(1)})).ok());
      ASSERT_TRUE(system.RunUntilQuiescent().ok());
      ASSERT_TRUE(a->Insert(Fact("src", "a", {I(1)})).ok());
      ASSERT_TRUE(system.RunUntilQuiescent().ok());
      ASSERT_TRUE(p->Contains({I(1)}));

      // Second deletion of the same fact: must ship (and delete) again.
      ASSERT_TRUE(a->Insert(Fact("kill", "a", {I(1)})).ok());
      ASSERT_TRUE(system.RunUntilQuiescent().ok());
      EXPECT_FALSE(p->Contains({I(1)}));
    }
  }
}

// Companion regression: a resync *snapshot* also re-ships facts as
// inserts, so it must lift delete suppression the same way organic
// contribution traffic does — otherwise a receiver repaired through a
// snapshot keeps a zombie fact whose deletion verdict never re-ships.
TEST(PropagationOracleTest, ResyncSnapshotAlsoLiftsDeleteSuppression) {
  for (bool incremental : {false, true}) {
    SCOPED_TRACE(testing::Message() << "incremental=" << incremental);
    PeerOptions mode;
    mode.engine.use_incremental_maintenance = incremental;
    System system;
    Peer* a = system.CreatePeer("a", mode);
    Peer* b = system.CreatePeer("b", mode);
    ASSERT_TRUE(a->LoadProgramText(R"(
      collection ext src@a(x: int);
      collection ext kill@a(x: int);
      rule p@b($x) :- src@a($x);
      rule -p@b($x) :- src@a($x), kill@a($x);
    )").ok());
    ASSERT_TRUE(b->LoadProgramText("collection ext p@b(x: int);").ok());
    const Relation* p = b->engine().catalog().Get("p");

    // p(1) shipped and then deleted; the suppression entry is armed and
    // the contribution still carries p(1) (src(1) holds).
    ASSERT_TRUE(a->Insert(Fact("src", "a", {I(1)})).ok());
    ASSERT_TRUE(system.RunUntilQuiescent().ok());
    ASSERT_TRUE(a->Insert(Fact("kill", "a", {I(1)})).ok());
    ASSERT_TRUE(system.RunUntilQuiescent().ok());
    ASSERT_FALSE(p->Contains({I(1)}));

    // Lose a frame, then heal: the next change exposes the gap, b
    // resyncs, and the snapshot re-delivers p(1) among the rest.
    LinkConfig dead;
    dead.drop_probability = 1.0;
    system.network().SetLink("a", "b", dead);
    ASSERT_TRUE(a->Insert(Fact("src", "a", {I(2)})).ok());
    ASSERT_TRUE(system.RunUntilQuiescent().ok());
    system.network().SetLink("a", "b", LinkConfig{});
    ASSERT_TRUE(a->Insert(Fact("src", "a", {I(3)})).ok());
    ASSERT_TRUE(system.RunUntilQuiescent().ok());

    // The snapshot resurrected p(1) at b; the re-armed deletion verdict
    // must have shipped right behind it.
    EXPECT_TRUE(p->Contains({I(2)}));
    EXPECT_TRUE(p->Contains({I(3)}));
    EXPECT_FALSE(p->Contains({I(1)}));
    EXPECT_GE(b->engine().propagation_counters().resyncs_requested, 1u);
  }
}

// Stream heartbeats (ROADMAP): a contribution stream that goes silent
// right after a dropped frame stays stale only until the next heartbeat
// — the version-only probe exposes the gap, the receiver requests a
// resync, and the snapshot repairs the view without any organic
// traffic on the stream.
TEST(PropagationOracleTest, HeartbeatBoundsStalenessAfterSilentLoss) {
  SystemOptions opts;
  opts.heartbeat_interval_rounds = 4;
  System system(opts);
  PeerOptions mode;  // differential propagation (default)
  Peer* a = system.CreatePeer("a", mode);
  Peer* hub = system.CreatePeer("hub", mode);
  ASSERT_TRUE(hub->LoadProgramText(
      "collection int board@hub(x: int);").ok());
  ASSERT_TRUE(a->LoadProgramText(R"(
    collection ext data@a(x: int);
    rule board@hub($x) :- data@a($x);
  )").ok());
  ASSERT_TRUE(a->Insert(Fact("data", "a", {I(1)})).ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  const Relation* board = hub->engine().catalog().Get("board");
  ASSERT_EQ(board->size(), 1u);

  // Lose exactly the last frame of the stream, then go silent.
  LinkConfig dead;
  dead.drop_probability = 1.0;
  system.network().SetLink("a", "hub", dead);
  ASSERT_TRUE(a->Insert(Fact("data", "a", {I(2)})).ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  ASSERT_EQ(board->size(), 1u);  // receiver is stale and doesn't know
  system.network().SetLink("a", "hub", LinkConfig{});

  // No organic traffic follows. Within one heartbeat interval plus the
  // resync round trip the receiver must repair itself.
  size_t heartbeats = 0;
  for (int round = 0; round < 12 && board->size() != 2u; ++round) {
    heartbeats += system.RunRound().heartbeats_sent;
  }
  EXPECT_EQ(board->size(), 2u);
  EXPECT_GE(heartbeats, 1u);
  EXPECT_GE(hub->engine().propagation_counters().heartbeat_gaps_detected,
            1u);
  EXPECT_GE(a->engine().propagation_counters().heartbeats_shipped, 1u);

  // Heartbeats are pure observation: once the streams agree they create
  // no lasting work — no further resyncs fire and the system keeps
  // reaching quiescence despite the periodic probes.
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  uint64_t resyncs_after_repair =
      hub->engine().propagation_counters().resyncs_requested;
  for (int i = 0; i < 8; ++i) (void)system.RunRound();
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  EXPECT_EQ(hub->engine().propagation_counters().resyncs_requested,
            resyncs_after_repair);
  EXPECT_EQ(board->size(), 2u);
}

// Regression: a stream whose every frame was lost and whose
// contribution then netted out to empty repairs through an *empty*
// snapshot to a relation the receiver never learned about. The empty
// snapshot must still commit its version — otherwise the receiver's
// applied version stays behind forever and every heartbeat re-requests
// the same resync, round after round.
TEST(PropagationOracleTest, EmptySnapshotToUnknownRelationCommitsVersion) {
  SystemOptions opts;
  opts.heartbeat_interval_rounds = 3;
  System system(opts);
  Peer* a = system.CreatePeer("a", PeerOptions{});
  Peer* hub = system.CreatePeer("hub", PeerOptions{});
  ASSERT_TRUE(a->LoadProgramText(R"(
    collection ext data@a(x: int);
    rule board@hub($x) :- data@a($x);
  )").ok());

  // Every frame of the stream is lost; the contribution then empties,
  // so the sender's memory is "version 2, zero tuples" while hub never
  // auto-declared board at all.
  LinkConfig dead;
  dead.drop_probability = 1.0;
  system.network().SetLink("a", "hub", dead);
  ASSERT_TRUE(a->Insert(Fact("data", "a", {I(1)})).ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  ASSERT_TRUE(a->Remove(Fact("data", "a", {I(1)})).ok());
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  system.network().SetLink("a", "hub", LinkConfig{});
  ASSERT_EQ(hub->engine().catalog().Get("board"), nullptr);

  // First heartbeat exposes the gap; the (empty) snapshot must settle
  // the stream so later heartbeats stay silent.
  for (int i = 0; i < 8; ++i) (void)system.RunRound();
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  uint64_t resyncs_after_repair =
      hub->engine().propagation_counters().resyncs_requested;
  EXPECT_GE(resyncs_after_repair, 1u);
  for (int i = 0; i < 9; ++i) (void)system.RunRound();
  ASSERT_TRUE(system.RunUntilQuiescent().ok());
  EXPECT_EQ(hub->engine().propagation_counters().resyncs_requested,
            resyncs_after_repair);
}

}  // namespace
}  // namespace wdl
