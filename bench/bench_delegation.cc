// Experiment A2 — the cost of delegation (DESIGN.md §3).
//
// Delegation is the paper's headline feature: rules are installed at
// remote peers at run time. This bench quantifies
//   (a) delegation fan-out: one rule whose prefix has N bindings
//       installs N residual rules at the target, measured end to end;
//   (b) steady-state evaluation: once installed, delegated rules cost
//       the same as locally authored rules (the paper's design intent —
//       delegation is a setup cost, not a per-stage tax);
//   (c) churn: flipping the prefix on and off installs and retracts
//       delegations every stage.
//
// Expected shape: (a) grows linearly in N; (b) delegated ≈ local;
// (c) two messages (install + retract) per flip, constant per cycle.

#include <benchmark/benchmark.h>

#include "runtime/system.h"

namespace wdl {
namespace {

Value I(int64_t v) { return Value::Int(v); }
Value S(const std::string& v) { return Value::String(v); }

// (a) N prefix bindings -> N residual rules at the target.
void BM_DelegationFanout(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    System system;
    Peer* origin = system.CreatePeer("origin");
    Peer* target = system.CreatePeer("target");
    target->gate().TrustPeer("origin");
    origin->gate().TrustPeer("target");
    (void)origin->LoadProgramText(
        "collection ext keys@origin(k: int);"
        "collection int got@origin(k: int, v: int);"
        "rule got@origin($k, $v) :- keys@origin($k), "
        "store@target($k, $v);");
    (void)target->LoadProgramText("collection ext store@target(k: int, "
                                  "v: int);");
    for (int64_t i = 0; i < n; ++i) {
      (void)origin->Insert(Fact("keys", "origin", {I(i)}));
      (void)target->Insert(Fact("store", "target", {I(i), I(i * 10)}));
    }
    state.ResumeTiming();

    benchmark::DoNotOptimize(system.RunUntilQuiescent(10000));
    state.counters["delegated_rules"] = static_cast<double>(
        target->engine().rules().size());
    state.counters["rounds"] = system.rounds_run();
  }
}
BENCHMARK(BM_DelegationFanout)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

// (b) Delegated versus locally authored rule at steady state: cost of
// one stage that re-derives the same view.
void SteadyState(benchmark::State& state, bool delegated) {
  int facts = static_cast<int>(state.range(0));
  System system;
  Peer* a = system.CreatePeer("a");
  Peer* b = system.CreatePeer("b");
  a->gate().TrustPeer("b");
  b->gate().TrustPeer("a");
  (void)b->LoadProgramText("collection ext data@b(x: int);");
  for (int64_t i = 0; i < facts; ++i) {
    (void)b->Insert(Fact("data", "b", {I(i)}));
  }
  if (delegated) {
    // a's rule reads b's data: the residual installs at b.
    (void)a->LoadProgramText(
        "collection ext who@a(p: string);"
        "collection int view@a(x: int);"
        "fact who@a(\"b\");"
        "rule view@a($x) :- who@a($p), data@$p($x);");
  } else {
    // The same dataflow authored directly at b.
    (void)b->AddRuleText("view@a($x) :- data@b($x)");
  }
  (void)system.RunUntilQuiescent(10000);

  for (auto _ : state) {
    // Force one full stage at b (the evaluating peer either way).
    StageResult r = b->engine().RunStage();
    benchmark::DoNotOptimize(r);
  }
  state.counters["facts"] = facts;
}

void BM_SteadyState_DelegatedRule(benchmark::State& state) {
  SteadyState(state, true);
}
void BM_SteadyState_LocalRule(benchmark::State& state) {
  SteadyState(state, false);
}
BENCHMARK(BM_SteadyState_DelegatedRule)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_SteadyState_LocalRule)->Arg(100)->Arg(1000)->Arg(10000);

// (c) Churn: select/deselect flips delegations on and off.
void BM_DelegationChurn(benchmark::State& state) {
  System system;
  Peer* a = system.CreatePeer("a");
  Peer* b = system.CreatePeer("b");
  a->gate().TrustPeer("b");
  b->gate().TrustPeer("a");
  (void)a->LoadProgramText(
      "collection ext sel@a(p: string);"
      "collection int view@a(x: int);"
      "rule view@a($x) :- sel@a($p), data@$p($x);");
  (void)b->LoadProgramText(
      "collection ext data@b(x: int); fact data@b(1);");
  (void)system.RunUntilQuiescent(10000);

  Fact selection("sel", "a", {S("b")});
  for (auto _ : state) {
    (void)a->Insert(selection);
    benchmark::DoNotOptimize(system.RunUntilQuiescent(10000));
    (void)a->Remove(selection);
    benchmark::DoNotOptimize(system.RunUntilQuiescent(10000));
  }
  state.counters["msgs_per_cycle"] = benchmark::Counter(
      static_cast<double>(system.network().stats().messages_submitted),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_DelegationChurn);

}  // namespace
}  // namespace wdl

BENCHMARK_MAIN();
