// Experiment A1 — fixpoint strategy ablation (DESIGN.md §3).
//
// The paper's engine (§2) runs "a fixpoint computation of its program"
// every stage; our production path is semi-naive, with naive kept as
// the ablation baseline. This bench regenerates the classic result the
// choice rests on: on recursive programs (transitive closure over a
// chain / a random graph, same-generation), semi-naive evaluation
// scales roughly linearly in the output while naive re-derives
// everything every iteration.
//
// Expected shape: SemiNaive beats Naive, and the gap widens with input
// size (superlinear in chain length for TC).

#include <benchmark/benchmark.h>

#include "engine/engine.h"
#include "parser/parser.h"

namespace wdl {
namespace {

constexpr char kTcProgram[] =
    "collection ext edge@p(x: int, y: int);"
    "collection int tc@p(x: int, y: int);"
    "rule tc@p($x, $y) :- edge@p($x, $y);"
    "rule tc@p($x, $z) :- tc@p($x, $y), edge@p($y, $z);";

void LoadChain(Engine* e, int n) {
  for (int64_t i = 0; i < n; ++i) {
    benchmark::DoNotOptimize(
        e->InsertFact(Fact("edge", "p", {Value::Int(i), Value::Int(i + 1)})));
  }
}

/// Plan-cache and access-path telemetry for the bench JSON: future perf
/// PRs can attribute wins (index vs scan vs Δ-probe mix, cache reuse).
void ExportEvalCounters(benchmark::State& state, const EvalCounters& c) {
  state.counters["plans_compiled"] = static_cast<double>(c.plans_compiled);
  state.counters["plan_cache_hits"] =
      static_cast<double>(c.plan_cache_hits);
  state.counters["slot_bindings"] = static_cast<double>(c.slot_bindings);
  state.counters["index_lookups"] = static_cast<double>(c.index_lookups);
  state.counters["full_scans"] = static_cast<double>(c.full_scans);
  state.counters["delta_index_probes"] =
      static_cast<double>(c.delta_index_probes);
  state.counters["delta_scans"] = static_cast<double>(c.delta_scans);
}

void BM_TransitiveClosureChain(benchmark::State& state, EvalMode mode) {
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    EngineOptions opts;
    opts.mode = mode;
    Engine e("p", opts);
    Program program = *ParseProgram(kTcProgram);
    (void)e.LoadProgram(program);
    LoadChain(&e, n);
    state.ResumeTiming();

    StageResult r = e.RunStage();
    benchmark::DoNotOptimize(r.stats.local_derivations);
    state.counters["derived"] = static_cast<double>(
        e.catalog().Get("tc")->size());
    state.counters["iterations"] = r.stats.iterations;
    state.counters["tuples_examined"] =
        static_cast<double>(r.stats.tuples_examined);
    ExportEvalCounters(state, e.eval_counters());
  }
}

void BM_TcChain_SemiNaive(benchmark::State& state) {
  BM_TransitiveClosureChain(state, EvalMode::kSemiNaive);
}
void BM_TcChain_Naive(benchmark::State& state) {
  BM_TransitiveClosureChain(state, EvalMode::kNaive);
}
BENCHMARK(BM_TcChain_SemiNaive)->Arg(16)->Arg(32)->Arg(64)->Arg(128);
BENCHMARK(BM_TcChain_Naive)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_TcRandomGraph(benchmark::State& state, EvalMode mode) {
  int nodes = static_cast<int>(state.range(0));
  int edges = nodes * 3;
  for (auto _ : state) {
    state.PauseTiming();
    EngineOptions opts;
    opts.mode = mode;
    Engine e("p", opts);
    (void)e.LoadProgram(*ParseProgram(kTcProgram));
    uint64_t s = 42;
    for (int i = 0; i < edges; ++i) {
      s = s * 6364136223846793005ULL + 1442695040888963407ULL;
      int64_t a = (s >> 33) % nodes;
      s = s * 6364136223846793005ULL + 1442695040888963407ULL;
      int64_t b = (s >> 33) % nodes;
      (void)e.InsertFact(Fact("edge", "p", {Value::Int(a), Value::Int(b)}));
    }
    state.ResumeTiming();
    StageResult r = e.RunStage();
    benchmark::DoNotOptimize(r);
    state.counters["derived"] =
        static_cast<double>(e.catalog().Get("tc")->size());
    ExportEvalCounters(state, e.eval_counters());
  }
}

void BM_TcGraph_SemiNaive(benchmark::State& state) {
  BM_TcRandomGraph(state, EvalMode::kSemiNaive);
}
void BM_TcGraph_Naive(benchmark::State& state) {
  BM_TcRandomGraph(state, EvalMode::kNaive);
}
BENCHMARK(BM_TcGraph_SemiNaive)->Arg(32)->Arg(64)->Arg(128);
BENCHMARK(BM_TcGraph_Naive)->Arg(32)->Arg(64)->Arg(128);

// Same-generation: a second recursion shape (bushier deltas).
void BM_SameGeneration(benchmark::State& state, EvalMode mode) {
  int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    EngineOptions opts;
    opts.mode = mode;
    Engine e("p", opts);
    (void)e.LoadProgram(*ParseProgram(
        "collection ext par@p(c: int, d: int);"
        "collection int sg@p(x: int, y: int);"
        "rule sg@p($x, $x) :- par@p($x, $_);"
        "rule sg@p($x, $y) :- par@p($x, $xp), sg@p($xp, $yp), "
        "par@p($y, $yp);"));
    // Complete binary tree: par(child, parent).
    int id = 1;
    for (int level = 0; level < depth; ++level) {
      int level_start = 1 << level;
      for (int i = 0; i < (1 << level); ++i) {
        int parent = level_start + i;
        (void)e.InsertFact(Fact(
            "par", "p", {Value::Int(2 * parent), Value::Int(parent)}));
        (void)e.InsertFact(Fact(
            "par", "p", {Value::Int(2 * parent + 1), Value::Int(parent)}));
        id += 2;
      }
    }
    benchmark::DoNotOptimize(id);
    state.ResumeTiming();
    StageResult r = e.RunStage();
    benchmark::DoNotOptimize(r);
    state.counters["derived"] =
        static_cast<double>(e.catalog().Get("sg")->size());
    ExportEvalCounters(state, e.eval_counters());
  }
}

void BM_SameGen_SemiNaive(benchmark::State& state) {
  BM_SameGeneration(state, EvalMode::kSemiNaive);
}
void BM_SameGen_Naive(benchmark::State& state) {
  BM_SameGeneration(state, EvalMode::kNaive);
}
BENCHMARK(BM_SameGen_SemiNaive)->Arg(4)->Arg(6)->Arg(8);
BENCHMARK(BM_SameGen_Naive)->Arg(4)->Arg(6)->Arg(8);

// Multi-core Δ-rounds (DESIGN.md §8): the same fixpoints at
// eval_threads 1/2/4/8 on fixed workloads. The /1 run takes the exact
// serial code path, so `bench_compare.py --speedup` reads the parallel
// scaling straight out of one baseline file. parallel_rounds > 0
// proves the partitioned path actually engaged.
void BM_TcChainThreads(benchmark::State& state) {
  int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    EngineOptions opts;
    opts.mode = EvalMode::kSemiNaive;
    opts.eval_threads = threads;
    Engine e("p", opts);
    (void)e.LoadProgram(*ParseProgram(kTcProgram));
    LoadChain(&e, 512);
    state.ResumeTiming();
    StageResult r = e.RunStage();
    benchmark::DoNotOptimize(r);
    state.counters["derived"] =
        static_cast<double>(e.catalog().Get("tc")->size());
    state.counters["parallel_rounds"] =
        static_cast<double>(e.eval_counters().parallel_rounds);
  }
}
BENCHMARK(BM_TcChainThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SameGenThreads(benchmark::State& state) {
  int threads = static_cast<int>(state.range(0));
  constexpr int kDepth = 8;
  for (auto _ : state) {
    state.PauseTiming();
    EngineOptions opts;
    opts.mode = EvalMode::kSemiNaive;
    opts.eval_threads = threads;
    Engine e("p", opts);
    (void)e.LoadProgram(*ParseProgram(
        "collection ext par@p(c: int, d: int);"
        "collection int sg@p(x: int, y: int);"
        "rule sg@p($x, $x) :- par@p($x, $_);"
        "rule sg@p($x, $y) :- par@p($x, $xp), sg@p($xp, $yp), "
        "par@p($y, $yp);"));
    for (int parent = 1; parent < (1 << kDepth); ++parent) {
      (void)e.InsertFact(Fact(
          "par", "p", {Value::Int(2 * parent), Value::Int(parent)}));
      (void)e.InsertFact(Fact(
          "par", "p", {Value::Int(2 * parent + 1), Value::Int(parent)}));
    }
    state.ResumeTiming();
    StageResult r = e.RunStage();
    benchmark::DoNotOptimize(r);
    state.counters["derived"] =
        static_cast<double>(e.catalog().Get("sg")->size());
    state.counters["parallel_rounds"] =
        static_cast<double>(e.eval_counters().parallel_rounds);
  }
}
BENCHMARK(BM_SameGenThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace wdl

BENCHMARK_MAIN();
