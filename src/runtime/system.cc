#include "runtime/system.h"

#include <cassert>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "base/logging.h"

namespace wdl {

int DefaultWorkerThreads() {
  static const int v = [] {
    const char* s = std::getenv("WDL_WORKER_THREADS");
    if (s == nullptr) return 1;
    int n = std::atoi(s);
    return n >= 1 ? n : 1;
  }();
  return v;
}

System::System(SystemOptions options)
    : options_(options),
      network_(std::make_unique<SimulatedNetwork>(options.network_seed,
                                                  options.default_link)) {
  simulated_ = static_cast<SimulatedNetwork*>(network_.get());
}

System::System(std::unique_ptr<Network> network, SystemOptions options)
    : options_(options), network_(std::move(network)) {}

SimulatedNetwork& System::network() {
  assert(simulated_ != nullptr && "system runs on a non-simulated network");
  return *simulated_;
}

const SimulatedNetwork& System::network() const {
  assert(simulated_ != nullptr && "system runs on a non-simulated network");
  return *simulated_;
}

Peer* System::CreatePeer(const std::string& name, PeerOptions options) {
  options.lazy_engine = options_.lazy_peer_state;
  if (options.durability.dir.empty() && !options_.durability_root.empty()) {
    options.durability = options_.durability;
    options.durability.dir = options_.durability_root + "/" + name;
  }
  auto [it, inserted] =
      peers_.emplace(name, std::make_unique<Peer>(name, options));
  if (!inserted) {
    WDL_LOG(Warning) << "peer " << name << " already exists";
    return it->second.get();
  }
  return it->second.get();
}

size_t System::MaterializedPeerCount() const {
  size_t n = 0;
  for (const auto& [name, peer] : peers_) {
    if (peer->has_engine()) ++n;
  }
  return n;
}

size_t System::ApproxPeerBytes(const std::string& name) const {
  const Peer* peer = GetPeer(name);
  if (peer == nullptr) return 0;
  // Registry cost: one map node (rb-tree: three pointers + color) with
  // its key string and unique_ptr, plus the Peer's own bookkeeping.
  size_t bytes = 4 * sizeof(void*) + sizeof(std::string) +
                 sizeof(std::unique_ptr<Peer>);
  if (name.capacity() > sizeof(std::string)) bytes += name.capacity() + 1;
  return bytes + peer->ApproxIdleBytes();
}

Peer* System::GetPeer(const std::string& name) {
  auto it = peers_.find(name);
  return it == peers_.end() ? nullptr : it->second.get();
}

const Peer* System::GetPeer(const std::string& name) const {
  auto it = peers_.find(name);
  return it == peers_.end() ? nullptr : it->second.get();
}

std::vector<std::string> System::PeerNames() const {
  std::vector<std::string> names;
  names.reserve(peers_.size());
  for (const auto& [name, peer] : peers_) names.push_back(name);
  return names;
}

Status System::AttachWrapper(std::unique_ptr<Wrapper> wrapper) {
  Peer* peer = GetPeer(wrapper->peer_name());
  if (peer == nullptr) {
    return Status::NotFound("wrapper's peer " + wrapper->peer_name() +
                            " does not exist");
  }
  WDL_RETURN_IF_ERROR(wrapper->Setup(peer));
  wrappers_.push_back(std::move(wrapper));
  return Status::OK();
}

RoundReport System::RunRound() {
  RoundReport report;
  now_ += 1.0;
  report.round = ++rounds_run_;

  // Deliver everything due by now.
  for (Envelope& e : network_->DeliverDue(now_)) {
    Peer* target = GetPeer(e.to);
    if (target == nullptr) {
      WDL_LOG(Warning) << "dropping envelope to unknown peer: "
                       << e.ToString();
      continue;
    }
    target->HandleEnvelope(e);
    ++report.envelopes_delivered;
  }

  // Link resets (an asynchronous transport lost and/or re-established
  // a connection): every local peer re-establishes its streams with
  // the affected remote through the resync machinery.
  // (Engine-less peers have no streams to heal — NoteLinkReset no-ops
  // on them without materializing anything.)
  for (const std::string& reset : network_->TakePeerResets()) {
    for (auto& [name, peer] : peers_) {
      if (name != reset) peer->NoteLinkReset(reset);
    }
  }

  // Wrappers move external data in/out before the stages.
  SyncWrappers();

  // Run a stage at every peer with pending work. Pending peers are
  // collected in map (name) order; with worker_threads > 1 their
  // stages run concurrently on the pool (peers are share-nothing
  // except the thread-safe Symbol table), but outbound envelopes are
  // buffered and submitted serially below in that same name order —
  // byte-identical traffic, and on the simulated transport an
  // identical RNG stream, to the serial loop.
  uint64_t bytes_before = network_->StatsSnapshot().bytes_sent;
  std::vector<Peer*> pending;
  for (auto& [name, peer] : peers_) {
    if (peer->HasPendingWork()) pending.push_back(peer.get());
  }
  report.stages_run = pending.size();
  std::vector<std::vector<Envelope>> stage_out(pending.size());
  if (options_.worker_threads > 1 && pending.size() > 1) {
    if (pool_ == nullptr) {
      pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
    }
    pool_->ParallelFor(static_cast<int>(pending.size()), [&](int i) {
      stage_out[static_cast<size_t>(i)] =
          pending[static_cast<size_t>(i)]->RunStage();
    });
  } else {
    for (size_t i = 0; i < pending.size(); ++i) {
      stage_out[i] = pending[i]->RunStage();
    }
  }
  for (std::vector<Envelope>& envs : stage_out) {
    for (Envelope& e : envs) {
      switch (e.message.type) {
        case MessageType::kDerivedSet:
          ++report.full_set_messages;
          report.derived_tuples_sent += e.message.derived.tuples.size();
          break;
        case MessageType::kDerivedDelta:
          ++report.delta_messages;
          report.delta_tuples_sent += e.message.delta.inserts.size() +
                                      e.message.delta.deletes.size();
          break;
        case MessageType::kResyncRequest:
          ++report.resync_requests;
          break;
        default:
          break;
      }
      Status st = network_->Submit(std::move(e), now_);
      if (!st.ok()) WDL_LOG(Error) << "submit failed: " << st;
      ++report.envelopes_sent;
    }
  }
  // Periodic stream heartbeats: emitted outside the stage machinery (a
  // heartbeat is pure observation — it neither changes engine state nor
  // marks peers dirty), so a converged system stays quiescent between
  // intervals and RunUntilQuiescent still terminates.
  if (options_.heartbeat_interval_rounds > 0 &&
      rounds_run_ % options_.heartbeat_interval_rounds == 0) {
    for (auto& [name, peer] : peers_) {
      for (Envelope& e : peer->MakeHeartbeats()) {
        ++report.heartbeats_sent;
        Status st = network_->Submit(std::move(e), now_);
        if (!st.ok()) WDL_LOG(Error) << "heartbeat submit failed: " << st;
        ++report.envelopes_sent;
      }
    }
  }
  report.bytes_sent = network_->StatsSnapshot().bytes_sent - bytes_before;
  return report;
}

bool System::IsQuiescent() const {
  if (network_->HasInFlight()) return false;
  for (const auto& [name, peer] : peers_) {
    if (peer->HasPendingWork()) return false;
  }
  return true;
}

void System::SyncWrappers() {
  for (auto& wrapper : wrappers_) {
    Peer* peer = GetPeer(wrapper->peer_name());
    if (peer == nullptr) continue;
    Status st = wrapper->Sync(peer);
    if (!st.ok()) {
      WDL_LOG(Error) << "wrapper sync failed for " << wrapper->peer_name()
                     << ": " << st;
    }
  }
}

Result<int> System::RunUntilQuiescent(int max_rounds) {
  for (int i = 0; i < max_rounds; ++i) {
    if (IsQuiescent()) {
      // The engines are done, but the last stage may have materialized
      // tuples a wrapper still has to drain to its external service —
      // and that drain may in turn create engine work.
      SyncWrappers();
      if (IsQuiescent()) return rounds_run_;
    }
    RunRound();
  }
  if (IsQuiescent()) return rounds_run_;
  return Status::FailedPrecondition(
      "system did not quiesce within " + std::to_string(max_rounds) +
      " rounds");
}

Result<int> System::RunUntilIdle(int idle_rounds, int max_wall_ms,
                                 int sleep_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(max_wall_ms);
  int idle = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    RoundReport r = RunRound();
    // Heartbeats are pure observation; they must not keep an otherwise
    // idle system looking busy.
    bool worked = r.envelopes_delivered > 0 || r.stages_run > 0 ||
                  r.envelopes_sent > r.heartbeats_sent;
    if (worked) {
      idle = 0;
      continue;
    }
    if (IsQuiescent() && ++idle >= idle_rounds) return rounds_run_;
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
  return Status::FailedPrecondition(
      "system did not go idle within " + std::to_string(max_wall_ms) +
      " ms");
}

}  // namespace wdl
