#include "engine/plan_cache.h"

#include <algorithm>
#include <mutex>
#include <string>

#include "base/hash.h"

namespace wdl {
namespace {

/// Numbers variables by first occurrence. Traversal order is fixed
/// (head, then body atoms left to right, relation/peer before args), so
/// α-renamed rules produce identical numberings.
class VarNumbering {
 public:
  uint64_t IdFor(const std::string& name) {
    auto [it, inserted] = ids_.try_emplace(name, ids_.size());
    return it->second;
  }

 private:
  std::unordered_map<std::string, uint64_t> ids_;
};

uint64_t HashTermCanon(const Term& t, VarNumbering* vars) {
  return t.is_variable() ? HashCombine(1, vars->IdFor(t.var()))
                         : HashCombine(2, t.value().Hash());
}

uint64_t HashSymCanon(const SymTerm& s, VarNumbering* vars) {
  return s.is_variable() ? HashCombine(3, vars->IdFor(s.var()))
                         : HashCombine(4, HashString(s.name()));
}

uint64_t HashAtomCanon(const Atom& a, VarNumbering* vars) {
  uint64_t h = a.negated ? 0x6e65676174656421ULL : 0x61746f6d00000000ULL;
  h = HashCombine(h, HashSymCanon(a.relation, vars));
  h = HashCombine(h, HashSymCanon(a.peer, vars));
  h = HashCombine(h, a.args.size());
  for (const Term& t : a.args) h = HashCombine(h, HashTermCanon(t, vars));
  return h;
}

/// Incremental variable bijection for AlphaEquivalent: every pairing is
/// recorded both ways, so "x↦y" and "z↦y" cannot coexist.
class VarBijection {
 public:
  bool Match(const std::string& a, const std::string& b) {
    auto [ita, ins_a] = a_to_b_.try_emplace(a, b);
    auto [itb, ins_b] = b_to_a_.try_emplace(b, a);
    return ita->second == b && itb->second == a;
  }

 private:
  std::unordered_map<std::string, std::string> a_to_b_;
  std::unordered_map<std::string, std::string> b_to_a_;
};

bool TermsAlphaEqual(const Term& a, const Term& b, VarBijection* vars) {
  if (a.is_variable() != b.is_variable()) return false;
  if (!a.is_variable()) return a.value() == b.value();
  return vars->Match(a.var(), b.var());
}

bool SymsAlphaEqual(const SymTerm& a, const SymTerm& b, VarBijection* vars) {
  if (a.is_variable() != b.is_variable()) return false;
  if (!a.is_variable()) return a.name() == b.name();
  return vars->Match(a.var(), b.var());
}

bool AtomsAlphaEqual(const Atom& a, const Atom& b, VarBijection* vars) {
  if (a.negated != b.negated || a.args.size() != b.args.size()) return false;
  if (!SymsAlphaEqual(a.relation, b.relation, vars)) return false;
  if (!SymsAlphaEqual(a.peer, b.peer, vars)) return false;
  for (size_t i = 0; i < a.args.size(); ++i) {
    if (!TermsAlphaEqual(a.args[i], b.args[i], vars)) return false;
  }
  return true;
}

}  // namespace

uint64_t CanonicalRuleHash(const Rule& rule) {
  VarNumbering vars;
  uint64_t h = HashAtomCanon(rule.head, &vars);
  if (rule.head_deletes) h = HashCombine(h, 0xde1e7e0000000001ULL);
  h = HashCombine(h, rule.body.size());
  for (const Atom& a : rule.body) h = HashCombine(h, HashAtomCanon(a, &vars));
  return h;
}

bool AlphaEquivalent(const Rule& a, const Rule& b) {
  if (a.head_deletes != b.head_deletes) return false;
  if (a.body.size() != b.body.size()) return false;
  VarBijection vars;
  if (!AtomsAlphaEqual(a.head, b.head, &vars)) return false;
  for (size_t i = 0; i < a.body.size(); ++i) {
    if (!AtomsAlphaEqual(a.body[i], b.body[i], &vars)) return false;
  }
  return true;
}

SharedPlanCache& SharedPlanCache::Instance() {
  // Intentionally leaked: evaluators anywhere in the process (including
  // static-storage test fixtures) may hold plan references at exit.
  static SharedPlanCache* instance = new SharedPlanCache();
  return *instance;
}

std::shared_ptr<const RulePlan> SharedPlanCache::Acquire(const Rule& rule) {
  return AcquireVariant(rule, Flavor::kNatural, 0);
}

std::shared_ptr<const RulePlan> SharedPlanCache::AcquireHeadBound(
    const Rule& rule) {
  return AcquireVariant(rule, Flavor::kHeadBound, 0);
}

std::shared_ptr<const RulePlan> SharedPlanCache::AcquireDemand(
    const Rule& rule, uint64_t adornment) {
  return AcquireVariant(rule, Flavor::kDemand, adornment);
}

std::shared_ptr<const RulePlan> SharedPlanCache::AcquireVariant(
    const Rule& rule, Flavor flavor, uint64_t adornment) {
  uint64_t key = CanonicalRuleHash(rule);
  if (flavor != Flavor::kNatural) {
    key = HashCombine(key, static_cast<uint64_t>(flavor));
    key = HashCombine(key, adornment);
  }
  // A match must agree on flavor and adornment, not just the rule:
  // natural, head-bound, and per-pattern demand plans of one rule are
  // distinct objects sharing this map.
  auto matches = [&](const RulePlan& plan) {
    if (plan.adorned != (flavor != Flavor::kNatural)) return false;
    if (plan.has_demand_atom != (flavor == Flavor::kDemand)) return false;
    if (flavor == Flavor::kDemand && plan.adornment != adornment) {
      return false;
    }
    return AlphaEquivalent(plan.rule, rule);
  };
  auto compile = [&]() {
    switch (flavor) {
      case Flavor::kHeadBound:
        return CompileRuleHeadBound(rule);
      case Flavor::kDemand:
        return CompileRuleDemand(rule, adornment);
      case Flavor::kNatural:
        break;
    }
    return CompileRule(rule);
  };
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      for (const std::weak_ptr<const RulePlan>& weak : it->second) {
        std::shared_ptr<const RulePlan> plan = weak.lock();
        if (plan != nullptr && matches(*plan)) {
          hits_.fetch_add(1, std::memory_order_relaxed);
          return plan;
        }
      }
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::vector<std::weak_ptr<const RulePlan>>& bucket = entries_[key];
  // Re-check under the exclusive lock (another evaluator may have
  // compiled the same rule between the two lock scopes) and prune this
  // bucket's expired entries while here.
  for (auto it = bucket.begin(); it != bucket.end();) {
    std::shared_ptr<const RulePlan> plan = it->lock();
    if (plan == nullptr) {
      it = bucket.erase(it);
      continue;
    }
    if (matches(*plan)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return plan;
    }
    ++it;
  }
  auto plan = std::make_shared<const RulePlan>(compile());
  bucket.push_back(plan);
  compiles_.fetch_add(1, std::memory_order_relaxed);
  if (++inserts_since_sweep_ >= kSweepInterval) {
    inserts_since_sweep_ = 0;
    for (auto it = entries_.begin(); it != entries_.end();) {
      std::vector<std::weak_ptr<const RulePlan>>& b = it->second;
      b.erase(std::remove_if(b.begin(), b.end(),
                             [](const std::weak_ptr<const RulePlan>& w) {
                               return w.expired();
                             }),
              b.end());
      it = b.empty() ? entries_.erase(it) : std::next(it);
    }
  }
  return plan;
}

SharedPlanCache::Stats SharedPlanCache::stats() const {
  Stats s;
  s.compiles = compiles_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  return s;
}

size_t SharedPlanCache::LiveCountForTesting() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t live = 0;
  for (const auto& [key, bucket] : entries_) {
    for (const std::weak_ptr<const RulePlan>& w : bucket) {
      if (!w.expired()) ++live;
    }
  }
  return live;
}

void SharedPlanCache::ResetStatsForTesting() {
  compiles_.store(0, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
}

}  // namespace wdl
