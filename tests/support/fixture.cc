#include "support/fixture.h"

#include "runtime/fingerprint.h"

namespace wdl {
namespace test {

std::string GlobalStateFingerprint(const System& system) {
  // The canonical renderer lives in the runtime now (wdl_peerd and the
  // TCP convergence tests share it); this alias keeps the historical
  // test-support name working.
  return wdl::GlobalStateFingerprint(system);
}

Peer* MultiPeerFixture::AddPeer(const std::string& name,
                                PeerOptions options) {
  return system_.CreatePeer(name, std::move(options));
}

std::vector<Peer*> MultiPeerFixture::AddTrustedPeers(
    const std::vector<std::string>& names) {
  std::vector<Peer*> peers;
  peers.reserve(names.size());
  for (const std::string& name : names) {
    peers.push_back(AddPeer(name));
  }
  for (Peer* a : peers) {
    for (const std::string& other : names) {
      if (other != a->name()) a->gate().TrustPeer(other);
    }
  }
  return peers;
}

}  // namespace test
}  // namespace wdl
