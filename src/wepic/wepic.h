#ifndef WDL_WEPIC_WEPIC_H_
#define WDL_WEPIC_WEPIC_H_

#include <memory>
#include <string>
#include <vector>

#include "runtime/system.h"
#include "wrappers/email_service.h"
#include "wrappers/facebook_service.h"

namespace wdl {

/// Names fixed by the demonstration setup (§4, Figure 2).
inline constexpr char kSigmodPeer[] = "sigmod";
inline constexpr char kSigmodFBPeer[] = "SigmodFB";
inline constexpr char kFacebookGroup[] = "sigmod";

struct WepicOptions {
  uint64_t network_seed = 42;
  EngineOptions engine;  // dialect/eval mode for every peer
};

/// The Wepic conference picture manager of §3, as a library: it builds
/// the Figure 2 topology (attendee peers + the sigmod peer + Facebook
/// and email wrappers), loads the paper's rules from their surface
/// syntax, and exposes the user actions of the §3 feature list.
class WepicApp {
 public:
  explicit WepicApp(WepicOptions options = {});

  /// Creates the sigmod registry peer and the SigmodFB group peer with
  /// its wall wrapper. Must be called before adding attendees.
  Status SetupConference();

  /// Creates an attendee peer, loads the standard attendee program
  /// (pictures, selections, ratings, the attendeePictures rule and the
  /// publication/transfer rules), subscribes it at the sigmod peer,
  /// joins it to the Facebook group, and attaches its email wrapper.
  /// Every peer trusts sigmod ("all peers except the sigmod peer will
  /// be considered untrusted").
  Status AddAttendee(const std::string& name);

  // --- The user actions of §3 ----------------------------------------
  /// (1) Upload a picture from a file or a URL.
  Status UploadPicture(const std::string& attendee, int64_t id,
                       const std::string& picture_name,
                       const std::string& data);
  /// (2) View pictures provided by a particular attendee: highlight the
  /// attendee; the selection rule populates attendeePictures.
  Status SelectAttendee(const std::string& who, const std::string& selected);
  Status DeselectAttendee(const std::string& who,
                          const std::string& selected);
  /// (3) Transfer: mark pictures for sending and choose a protocol.
  Status SelectPicture(const std::string& who,
                       const std::string& picture_name, int64_t id,
                       const std::string& owner);
  Status SetCommunicationProtocol(const std::string& attendee,
                                  const std::string& protocol);
  /// (4) Annotate with ratings, comments, or name tags.
  Status RatePicture(const std::string& attendee, int64_t id, int rating);
  Status CommentPicture(const std::string& attendee, int64_t id,
                        const std::string& author, const std::string& text);
  Status TagPicture(const std::string& attendee, int64_t id,
                    const std::string& person);
  /// Authorizes publication of picture `id` to Facebook (§4).
  Status AuthorizeFacebook(const std::string& attendee, int64_t id);

  /// Replaces the attendeePictures selection rule with the rating-5
  /// filter variant (§4 "Customizing rules"). Returns the new rule id.
  Result<uint64_t> InstallRatingFilter(const std::string& attendee,
                                       int min_rating = 5);

  /// Runs the system to quiescence; returns rounds taken.
  Result<int> Converge(int max_rounds = 300);

  /// The "Attendee pictures" frame of Figure 1 for `who`.
  std::string RenderAttendeePicturesFrame(const std::string& who) const;

  System& system() { return system_; }
  FacebookService& facebook() { return facebook_; }
  EmailService& email() { return email_; }
  Peer* attendee(const std::string& name) { return system_.GetPeer(name); }
  Peer* sigmod() { return system_.GetPeer(kSigmodPeer); }
  const std::vector<std::string>& attendees() const { return attendees_; }

  /// The standard attendee program in WebdamLog surface syntax — what
  /// the demo's "program" tab shows before customization.
  static std::string AttendeeProgramText(const std::string& name);
  /// The sigmod peer's program (registry + Facebook publication rules).
  static std::string SigmodProgramText();

 private:
  Status InsertAt(const std::string& peer_name, const Fact& fact);

  WepicOptions options_;
  System system_;
  FacebookService facebook_;
  EmailService email_;
  std::vector<std::string> attendees_;
  // Rule id of the default attendeePictures rule per attendee, so
  // InstallRatingFilter can swap it out.
  std::map<std::string, uint64_t> selection_rule_id_;
  bool conference_ready_ = false;
};

}  // namespace wdl

#endif  // WDL_WEPIC_WEPIC_H_
