#ifndef WDL_RUNTIME_FINGERPRINT_H_
#define WDL_RUNTIME_FINGERPRINT_H_

#include <string>

#include "runtime/peer.h"
#include "runtime/system.h"

namespace wdl {

/// Canonical rendering of one peer's converged state: every relation
/// (sorted tuples) plus the active rule set. Rule ids are omitted and
/// rules are sorted — ids encode arrival order, which a real network
/// does not make deterministic — so a peer that reached the same state
/// through any delivery schedule (simulator, TCP, restart + resync)
/// produces the same fingerprint. This is what wdl_peerd publishes and
/// what the multi-process convergence tests compare against the
/// simulator oracle.
std::string PeerStateFingerprint(const Peer& peer);

/// Concatenation of PeerStateFingerprint over every peer of a system,
/// in name order: two systems that converged to the same global state
/// produce the same fingerprint regardless of scheduling.
std::string GlobalStateFingerprint(const System& system);

}  // namespace wdl

#endif  // WDL_RUNTIME_FINGERPRINT_H_
