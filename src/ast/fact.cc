#include "ast/fact.h"

namespace wdl {

std::string Fact::ToString() const {
  std::string out = relation + "@" + peer + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString();
  }
  out += ")";
  return out;
}

uint64_t Fact::Hash() const {
  uint64_t h = HashString(relation);
  h = HashCombine(h, HashString(peer));
  for (const Value& v : args) h = HashCombine(h, v.Hash());
  return h;
}

bool Fact::operator<(const Fact& o) const {
  if (peer != o.peer) return peer < o.peer;
  if (relation != o.relation) return relation < o.relation;
  return args < o.args;
}

}  // namespace wdl
