#include "analysis/lineage.h"

namespace wdl {

namespace {

std::string PredicateOf(const Atom& atom) {
  if (!atom.HasConcreteLocation()) return kWildcardPredicate;
  return atom.PredicateId();
}

}  // namespace

LineageMap ComputeLineage(const std::vector<Rule>& rules) {
  // Direct dependencies per head predicate.
  std::map<std::string, std::set<std::string>> direct;
  std::set<std::string> defined;
  for (const Rule& rule : rules) {
    std::string head = PredicateOf(rule.head);
    defined.insert(head);
    for (const Atom& atom : rule.body) {
      direct[head].insert(PredicateOf(atom));
    }
  }

  // Transitive closure down to base predicates (not defined by any
  // rule). Iterate to fixpoint; the dependency graph is small (one node
  // per predicate), so the simple loop is fine even with cycles.
  LineageMap lineage;
  for (const auto& [head, deps] : direct) {
    lineage[head] = {};
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [head, bases] : lineage) {
      for (const std::string& dep : direct[head]) {
        if (defined.count(dep) && dep != head) {
          // Derived dependency: absorb its (current) base set.
          for (const std::string& base : lineage[dep]) {
            changed |= bases.insert(base).second;
          }
        } else if (!defined.count(dep)) {
          changed |= bases.insert(dep).second;
        }
        // Self-recursive heads contribute no *base* by themselves.
      }
    }
  }
  return lineage;
}

std::set<std::string> LineageOf(const LineageMap& lineage,
                                const std::string& predicate) {
  auto it = lineage.find(predicate);
  return it == lineage.end() ? std::set<std::string>{} : it->second;
}

}  // namespace wdl
