#ifndef WDL_STORAGE_RELATION_H_
#define WDL_STORAGE_RELATION_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ast/program.h"
#include "base/result.h"
#include "base/symbol.h"
#include "storage/hash_index.h"
#include "storage/tuple.h"

namespace wdl {

/// An in-memory stored relation: a set of tuples with a fixed schema and
/// lazily built per-column hash indexes. The container is node-based
/// (unordered_set), so pointers to resident tuples stay valid until that
/// tuple is erased — indexes store such pointers.
///
/// Iteration (ForEach/LookupEqual/ScanEqual) takes the visitor as a
/// template parameter, so the steady-state join loop never constructs a
/// std::function; snapshots go into per-nesting-depth scratch buffers
/// that are reused across calls, so resident iteration performs no heap
/// allocation once the buffers have grown to working-set size.
///
/// Not thread-safe for mutation: a Relation belongs to exactly one
/// Peer, and peers are share-nothing (see DESIGN.md §1). During a
/// parallel Δ-round (DESIGN.md §8) the owning engine freezes every
/// relation — no inserts, removes, or index builds until the round
/// barrier — and worker threads read concurrently through the *Shared
/// methods, which bypass the single-threaded scratch/snapshot buffers
/// the ordinary ForEach/LookupEqual lease.
class Relation {
 public:
  explicit Relation(RelationDecl decl)
      : decl_(std::move(decl)), symbol_(Symbol::Intern(decl_.relation)) {}

  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  const RelationDecl& decl() const { return decl_; }
  const std::string& name() const { return decl_.relation; }
  /// The relation name's interned symbol, cached at construction so
  /// per-derivation paths (Δ-map keys) never touch the intern table.
  Symbol symbol() const { return symbol_; }
  const std::string& peer() const { return decl_.peer; }
  RelationKind kind() const { return decl_.kind; }
  size_t arity() const { return decl_.arity(); }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Inserts a tuple after checking arity and column types.
  /// Returns true when the tuple was new, false when already present.
  Result<bool> Insert(Tuple tuple);

  /// Removes a tuple; returns true when it was present.
  Result<bool> Remove(const Tuple& tuple);

  bool Contains(const Tuple& tuple) const {
    return tuples_.count(tuple) > 0;
  }

  /// Drops all tuples (used for intensional relations at stage start).
  void Clear();

  /// Invokes `fn` on every tuple resident at call time, in unspecified
  /// order. `fn` may insert into this relation (new tuples are not
  /// visited); it must not remove from it. Re-entrant: `fn` may itself
  /// iterate this relation (self-joins).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    // `fn` may insert into this very relation: recursive rules (e.g.
    // same-generation) derive into a relation while joining against it,
    // and an insert can rehash `tuples_`, invalidating live iterators.
    // Iterate a snapshot of node pointers instead — nodes are stable
    // across rehash, so the snapshot stays valid. Tuples inserted by
    // `fn` are not visited (iteration-start semantics); removal during
    // iteration stays unsupported.
    //
    // The snapshot is cached: it is rebuilt only when the relation's
    // version moved, so a scan atom probed once per outer binding (the
    // nested-loop-join inner side) reuses one buffer with zero per-call
    // work. A mid-iteration insert bumps the version; the running loop
    // keeps its (still valid) iteration-start view, and the next scan
    // at this depth rebuilds.
    ScanLease lease(this);
    ScanBuffer& buf = lease.buffer();
    if (buf.version != version_) {
      buf.tuples.clear();
      buf.tuples.reserve(tuples_.size());
      for (const Tuple& t : tuples_) buf.tuples.push_back(&t);
      buf.version = version_;
    }
    for (const Tuple* t : buf.tuples) fn(*t);
  }

  /// Invokes `fn` on tuples whose `column`-th value equals `value`,
  /// using (and if needed building) a hash index on that column. The
  /// same callback contract as ForEach applies.
  template <typename Fn>
  void LookupEqual(size_t column, const Value& value, Fn&& fn) {
    if (column >= decl_.arity()) return;
    const HashIndex& index = EnsureIndex(column);
    // Same hazard as ForEach: `fn` may insert into this relation, and
    // the insert then grows the index mid-probe. Snapshot the matching
    // tuple pointers before invoking the callback; the scratch buffer
    // is reused across calls, so the steady-state probe allocates
    // nothing. ProbeEqual re-confirms equality on each hash hit.
    ScratchLease lease(this);
    std::vector<const Tuple*>& matches = lease.buf();
    LazyColumnIndexes::ProbeEqual(
        index, column, value,
        [&](const Tuple& t) { matches.push_back(&t); });
    for (const Tuple* t : matches) fn(*t);
  }

  /// Index-free variant of LookupEqual, for benchmarking the index
  /// ablation (bench_join): always scans.
  template <typename Fn>
  void ScanEqual(size_t column, const Value& value, Fn&& fn) const {
    if (column >= decl_.arity()) return;
    ScratchLease lease(this);
    std::vector<const Tuple*>& matches = lease.buf();
    for (const Tuple& t : tuples_) {
      if (t[column] == value) matches.push_back(&t);
    }
    for (const Tuple* t : matches) fn(*t);
  }

  /// Builds the hash index on `column` now if absent. The parallel
  /// round coordinator calls this for every column its plans will
  /// probe, before workers start reading concurrently — the Shared
  /// read paths never build.
  void PrebuildIndex(size_t column) {
    if (column < decl_.arity()) EnsureIndex(column);
  }

  /// Concurrent-read variant of ForEach: iterates the tuple set
  /// directly, with no snapshot buffer. Safe for any number of threads
  /// *only* while the relation is frozen (no mutation, no index
  /// builds); `fn` must not insert or remove.
  template <typename Fn>
  void ForEachShared(Fn&& fn) const {
    for (const Tuple& t : tuples_) fn(t);
  }

  /// Concurrent-read variant of LookupEqual: probes the index on
  /// `column` if one was pre-built (PrebuildIndex), else scans. Same
  /// freeze contract as ForEachShared; `fn` must not mutate.
  template <typename Fn>
  void LookupEqualShared(size_t column, const Value& value, Fn&& fn) const {
    if (column >= decl_.arity()) return;
    const HashIndex* index = indexes_.Built(column);
    if (index != nullptr) {
      LazyColumnIndexes::ProbeEqual(*index, column, value, fn);
      return;
    }
    for (const Tuple& t : tuples_) {
      if (t[column] == value) fn(t);
    }
  }

  /// Snapshot of the contents sorted into canonical order; used by
  /// tests, examples, and the textual "UI frames".
  std::vector<Tuple> SortedTuples() const;

  /// Validates a tuple against the schema without inserting.
  Status CheckTuple(const Tuple& tuple) const;

  /// True when a hash index exists on `column` (observability for tests).
  bool HasIndex(size_t column) const { return indexes_.Has(column); }

 private:
  /// A cached full-scan snapshot, valid while `version` matches the
  /// relation's.
  struct ScanBuffer {
    std::vector<const Tuple*> tuples;
    uint64_t version = 0;  // relation versions start at 1: never valid
  };

  /// RAII lease of the per-nesting-depth buffer of a pool. Buffers are
  /// lazily created per depth (self-joins nest a handful deep) and keep
  /// their capacity across leases, so steady-state iteration allocates
  /// nothing. Scans and keyed lookups draw from separate pools: scan
  /// buffers carry a version and are reused wholesale, lookup buffers
  /// are cleared per probe.
  template <typename Buffer>
  class Lease {
   public:
    // The pools are mutable members, so access through a const Relation
    // already yields non-const lvalues — no cast needed.
    Lease(std::vector<std::unique_ptr<Buffer>>* pool, size_t* depth)
        : pool_(pool), depth_(depth) {
      if (*depth_ == pool_->size()) {
        pool_->push_back(std::make_unique<Buffer>());
      }
      buf_ = (*pool_)[(*depth_)++].get();
    }
    ~Lease() { --*depth_; }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Buffer& buffer() { return *buf_; }

   private:
    std::vector<std::unique_ptr<Buffer>>* pool_;
    size_t* depth_;
    Buffer* buf_;
  };

  class ScanLease : public Lease<ScanBuffer> {
   public:
    explicit ScanLease(const Relation* rel)
        : Lease(&rel->scan_bufs_, &rel->scan_depth_) {}
  };

  class ScratchLease : public Lease<std::vector<const Tuple*>> {
   public:
    explicit ScratchLease(const Relation* rel)
        : Lease(&rel->match_bufs_, &rel->match_depth_) {}
    std::vector<const Tuple*>& buf() {
      buffer().clear();
      return buffer();
    }
  };

  /// Returns the index on `column`, building it on first use.
  const HashIndex& EnsureIndex(size_t column) {
    return indexes_.Ensure(column, tuples_);
  }

  RelationDecl decl_;
  Symbol symbol_;
  std::unordered_set<Tuple, TupleHasher> tuples_;
  LazyColumnIndexes indexes_;
  // Bumped by every successful Insert/Remove/Clear; cached scan
  // snapshots are valid only for the version they were built at.
  uint64_t version_ = 1;
  // Per-depth iteration buffers (mutable: a const scan still leases
  // scratch space).
  mutable std::vector<std::unique_ptr<ScanBuffer>> scan_bufs_;
  mutable size_t scan_depth_ = 0;
  mutable std::vector<std::unique_ptr<std::vector<const Tuple*>>>
      match_bufs_;
  mutable size_t match_depth_ = 0;
};

}  // namespace wdl

#endif  // WDL_STORAGE_RELATION_H_
