#ifndef WDL_ENGINE_DELEGATION_H_
#define WDL_ENGINE_DELEGATION_H_

#include <cstdint>
#include <string>

#include "ast/rule.h"
#include "base/hash.h"

namespace wdl {

/// A rule delegation: the residual rule that peer `origin_peer` installs
/// at `target_peer` when left-to-right evaluation of `origin_rule_hash`
/// reaches an atom located at the target. The residual's variables that
/// were bound by the already-evaluated prefix have been substituted with
/// constants, so distinct prefix bindings yield distinct residuals.
struct Delegation {
  std::string origin_peer;
  std::string target_peer;
  Rule rule;                  // the residual rule to install
  uint64_t origin_rule_hash = 0;

  /// Stable identity used for install/retract matching across stages and
  /// peers: same origin, target, source rule, and residual content.
  uint64_t Key() const {
    uint64_t h = HashString(origin_peer);
    h = HashCombine(h, HashString(target_peer));
    h = HashCombine(h, origin_rule_hash);
    h = HashCombine(h, rule.Hash());
    return h;
  }

  std::string ToString() const {
    return "delegation[" + origin_peer + " -> " + target_peer +
           "]: " + rule.ToString();
  }

  bool operator==(const Delegation& o) const {
    return origin_peer == o.origin_peer && target_peer == o.target_peer &&
           origin_rule_hash == o.origin_rule_hash && rule == o.rule;
  }
};

}  // namespace wdl

#endif  // WDL_ENGINE_DELEGATION_H_
