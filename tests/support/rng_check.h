#ifndef WDL_TESTS_SUPPORT_RNG_CHECK_H_
#define WDL_TESTS_SUPPORT_RNG_CHECK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wdl {
namespace test {

/// Base seed for every randomized test in the suite. Fixed — never
/// derived from time, GTEST_SHARD_INDEX, or GTEST_RANDOM_SEED — so a
/// test case draws the same values whether it runs alone, in a full
/// suite, or in any ctest shard, and a failure log names a seed that
/// reproduces exactly.
inline constexpr uint64_t kTestSeedBase = 0x5EED;

/// The i-th derived test seed. Seeds are decorrelated by running the
/// base through one SplitMix64 step per index, not by `base + i`,
/// so adjacent cases don't share low-bit structure.
uint64_t FixedTestSeed(uint64_t index);

/// The first `n` derived seeds, for INSTANTIATE_TEST_SUITE_P lists.
std::vector<uint64_t> FixedTestSeeds(size_t n);

/// Verifies that wdl::Rng reproduces the golden SplitMix64 sequence
/// for kTestSeedBase. Returns true and leaves gtest state untouched on
/// success; records a fatal-level EXPECT failure naming the first
/// divergent draw otherwise. Randomized suites call this up front: if
/// the generator ever changes (platform quirk, accidental edit), the
/// suite fails with "RNG drifted" instead of a cryptic property-test
/// counterexample that no seed can reproduce.
bool CheckRngGoldenSequence();

}  // namespace test
}  // namespace wdl

#endif  // WDL_TESTS_SUPPORT_RNG_CHECK_H_
