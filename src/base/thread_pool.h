#ifndef WDL_BASE_THREAD_POOL_H_
#define WDL_BASE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wdl {

/// A persistent fork-join worker pool for the two parallel-evaluation
/// levels (DESIGN.md §8): System::RunRound fans peer stages out over
/// one, and each Engine fans a semi-naive round's Δ-partitions out over
/// another. Workers are spawned once and parked on a condition variable
/// between jobs, so a fixpoint that runs thousands of tiny rounds pays
/// thread-creation cost zero times, not thousands.
///
/// The only primitive is ParallelFor(n, fn): run fn(0..n-1), stealing
/// indices from a shared atomic counter, and return when all n are
/// done. The caller participates as a worker, so ThreadPool(k) applies
/// k-way parallelism with k-1 spawned threads, and ThreadPool(1) spawns
/// nothing and degenerates to a plain loop.
///
/// Not reentrant: ParallelFor must not be called from inside a task on
/// the same pool (the engine- and system-level pools are distinct
/// objects, so nested use across levels is fine). One job runs at a
/// time per pool.
class ThreadPool {
 public:
  /// `threads` = total parallelism including the calling thread;
  /// clamped to >= 1. Spawns threads-1 workers.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(i) for every i in [0, n), distributed over the workers and
  /// the calling thread; returns after all n calls complete. Tasks must
  /// not throw and must not call back into this pool.
  void ParallelFor(int n, const std::function<void(int)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* job_ = nullptr;  // guarded by mu_
  int job_n_ = 0;                                  // guarded by mu_
  uint64_t epoch_ = 0;                             // guarded by mu_
  int outstanding_ = 0;                            // guarded by mu_
  bool stop_ = false;                              // guarded by mu_
  std::atomic<int> next_{0};  // index dispenser for the current job
  std::vector<std::thread> workers_;
};

}  // namespace wdl

#endif  // WDL_BASE_THREAD_POOL_H_
