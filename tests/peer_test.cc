#include "runtime/peer.h"

#include <gtest/gtest.h>

#include "parser/parser.h"

#include "support/builders.h"

namespace wdl {
namespace {

using test::I;
using test::S;

Envelope Env(const std::string& from, const std::string& to, Message m) {
  Envelope e;
  e.from = from;
  e.to = to;
  e.message = std::move(m);
  return e;
}

TEST(PeerTest, HandleFactInsertsQueuesIntoEngine) {
  Peer p("alice");
  p.HandleEnvelope(Env("bob", "alice",
                       Message::FactInserts({Fact("r", "alice", {I(1)})})));
  EXPECT_TRUE(p.HasPendingWork());
  (void)p.RunStage();
  EXPECT_TRUE(p.engine().catalog().Get("r")->Contains({I(1)}));
}

TEST(PeerTest, HandleFactDeletes) {
  Peer p("alice");
  ASSERT_TRUE(p.Insert(Fact("r", "alice", {I(1)})).ok());
  p.HandleEnvelope(Env("bob", "alice",
                       Message::FactDeletes({Fact("r", "alice", {I(1)})})));
  (void)p.RunStage();
  EXPECT_EQ(p.engine().catalog().Get("r")->size(), 0u);
}

TEST(PeerTest, UntrustedDelegationGoesPendingAndApprovalInstalls) {
  Peer p("alice");
  Delegation d;
  d.origin_peer = "mallory";
  d.target_peer = "alice";
  d.rule = *ParseRule("out@mallory($x) :- data@alice($x)");
  d.origin_rule_hash = d.rule.Hash();
  p.HandleEnvelope(Env("mallory", "alice", Message::DelegationInstall(d)));
  EXPECT_EQ(p.gate().pending_count(), 1u);
  EXPECT_EQ(p.engine().rules().size(), 0u);

  ASSERT_TRUE(p.ApproveDelegation(d.Key()).ok());
  EXPECT_EQ(p.engine().rules().size(), 1u);
}

TEST(PeerTest, TrustAllOptionSkipsGate) {
  PeerOptions options;
  options.trust_all_delegations = true;
  Peer p("alice", options);
  Delegation d;
  d.origin_peer = "anyone";
  d.target_peer = "alice";
  d.rule = *ParseRule("out@anyone($x) :- data@alice($x)");
  p.HandleEnvelope(Env("anyone", "alice", Message::DelegationInstall(d)));
  EXPECT_EQ(p.gate().pending_count(), 0u);
  EXPECT_EQ(p.engine().rules().size(), 1u);
}

TEST(PeerTest, RetractOfPendingDelegationRemovesFromQueue) {
  Peer p("alice");
  Delegation d;
  d.origin_peer = "mallory";
  d.target_peer = "alice";
  d.rule = *ParseRule("out@mallory($x) :- data@alice($x)");
  p.HandleEnvelope(Env("mallory", "alice", Message::DelegationInstall(d)));
  ASSERT_EQ(p.gate().pending_count(), 1u);
  p.HandleEnvelope(Env("mallory", "alice",
                       Message::DelegationRetract(d.Key())));
  EXPECT_EQ(p.gate().pending_count(), 0u);
  EXPECT_EQ(p.engine().rules().size(), 0u);
}

TEST(PeerTest, RetractOfInstalledDelegationRemovesRule) {
  Peer p("alice");
  p.gate().TrustPeer("friend");
  Delegation d;
  d.origin_peer = "friend";
  d.target_peer = "alice";
  d.rule = *ParseRule("out@friend($x) :- data@alice($x)");
  p.HandleEnvelope(Env("friend", "alice", Message::DelegationInstall(d)));
  ASSERT_EQ(p.engine().rules().size(), 1u);
  p.HandleEnvelope(Env("friend", "alice",
                       Message::DelegationRetract(d.Key())));
  EXPECT_EQ(p.engine().rules().size(), 0u);
}

TEST(PeerTest, HelloRegistersKnownPeer) {
  Peer p("alice");
  p.HandleEnvelope(Env("bob", "alice", Message::Hello("charlie")));
  EXPECT_TRUE(p.known_peers().count("bob"));      // sender
  EXPECT_TRUE(p.known_peers().count("charlie"));  // announced
}

TEST(PeerTest, AddRuleTextParsesAndValidates) {
  Peer p("alice");
  EXPECT_TRUE(p.AddRuleText("v@alice($x) :- b@alice($x)").ok());
  EXPECT_FALSE(p.AddRuleText("v@alice($x, $y) :- b@alice($x)").ok());
  EXPECT_FALSE(p.AddRuleText("not a rule at all").ok());
}

TEST(PeerTest, RenderRelationHandlesMissingAndPresent) {
  Peer p("alice");
  EXPECT_NE(p.RenderRelation("ghost").find("not declared"),
            std::string::npos);
  ASSERT_TRUE(p.Insert(Fact("r", "alice", {I(7)})).ok());
  std::string rendered = p.RenderRelation("r");
  EXPECT_NE(rendered.find("(7)"), std::string::npos);
  EXPECT_NE(rendered.find("ext"), std::string::npos);
}

TEST(PeerTest, DumpAndRestoreStateRoundTrips) {
  Peer original("alice");
  ASSERT_TRUE(original.LoadProgramText(R"(
    collection ext pictures@alice(id: int, name: string);
    collection int view@alice(id: int);
    fact pictures@alice(1, "sea.jpg");
    fact pictures@alice(2, "boat.jpg");
    rule view@alice($i) :- pictures@alice($i, $n);
  )").ok());
  (void)original.RunStage();

  std::string dumped = original.engine().DumpAsProgramText();
  Peer restored("alice");
  ASSERT_TRUE(restored.LoadProgramText(dumped).ok()) << dumped;
  (void)restored.RunStage();

  EXPECT_EQ(restored.engine().catalog().Get("pictures")->SortedTuples(),
            original.engine().catalog().Get("pictures")->SortedTuples());
  EXPECT_EQ(restored.engine().catalog().Get("view")->SortedTuples(),
            original.engine().catalog().Get("view")->SortedTuples());
  EXPECT_EQ(restored.engine().rules().size(),
            original.engine().rules().size());
}

TEST(PeerTest, DumpExcludesDelegatedRules) {
  Peer p("alice");
  p.gate().TrustPeer("bob");
  Delegation d;
  d.origin_peer = "bob";
  d.target_peer = "alice";
  d.rule = *ParseRule("out@bob($x) :- data@alice($x)");
  p.HandleEnvelope(Env("bob", "alice", Message::DelegationInstall(d)));
  std::string dumped = p.engine().DumpAsProgramText();
  EXPECT_EQ(dumped.find("out@bob"), std::string::npos)
      << "delegated rules re-arrive from their origin; they must not be "
         "persisted as local program";
}

}  // namespace
}  // namespace wdl
