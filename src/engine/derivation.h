#ifndef WDL_ENGINE_DERIVATION_H_
#define WDL_ENGINE_DERIVATION_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "storage/tuple.h"

namespace wdl {

/// Per-tuple support record of one resident derived tuple (DESIGN.md
/// §6). Support is counted at *source* granularity:
///
///  - `external`: at least one remote sender currently contributes the
///    tuple through the slice store (whose per-sender counts make this
///    bit exact);
///  - `derived`: at least one local rule derivation currently exists.
///
/// The count is the number of live sources. Retraction cascades only
/// when it reaches zero: a view tuple that loses its last remote
/// contribution but is still rule-derivable (or vice versa) stays put
/// and its consumers are never disturbed. The `derived` bit is kept
/// honest by the DRed-style over-delete/re-derive pass — counting
/// individual rule derivations exactly is unsound under multi-Δ
/// semi-naive evaluation (one new derivation joining two Δ tuples fires
/// once per Δ position), so the engine counts sources and re-checks
/// derivability only for tuples the deletion cascade actually reaches.
struct TupleSupport {
  bool derived = false;
  bool external = false;

  int count() const {
    return static_cast<int>(derived) + static_cast<int>(external);
  }
};

/// Support records for every resident derived tuple, per relation —
/// the persistent state that lets intensional relations survive across
/// stages. Owned by the engine; rebuilt wholesale on full (init or
/// fallback) stages, maintained tuple-by-tuple on incremental ones.
class DerivationTracker {
 public:
  using SupportMap = std::unordered_map<Tuple, TupleSupport, TupleHasher>;

  TupleSupport& Ensure(const std::string& relation, const Tuple& tuple) {
    return by_relation_[relation][tuple];
  }

  /// nullptr when the tuple has no record.
  TupleSupport* Find(const std::string& relation, const Tuple& tuple) {
    auto rel_it = by_relation_.find(relation);
    if (rel_it == by_relation_.end()) return nullptr;
    auto it = rel_it->second.find(tuple);
    return it == rel_it->second.end() ? nullptr : &it->second;
  }

  void Erase(const std::string& relation, const Tuple& tuple) {
    auto rel_it = by_relation_.find(relation);
    if (rel_it == by_relation_.end()) return;
    rel_it->second.erase(tuple);
  }

  /// Live-source count; 0 when untracked (tests, listings).
  int Count(const std::string& relation, const Tuple& tuple) const {
    auto rel_it = by_relation_.find(relation);
    if (rel_it == by_relation_.end()) return 0;
    auto it = rel_it->second.find(tuple);
    return it == rel_it->second.end() ? 0 : it->second.count();
  }

  void Clear() { by_relation_.clear(); }
  void DropRelation(const std::string& relation) {
    by_relation_.erase(relation);
  }

 private:
  std::map<std::string, SupportMap> by_relation_;
};

/// The net state changes one stage must react to: extensional tuples
/// that actually entered/left relations (queued inserts and deletes,
/// deferred self-updates, direct InsertFact/RemoveFact calls between
/// stages), and view tuples whose slice-store support crossed zero.
/// Everything is netted — an insert that revokes a recorded remove (or
/// vice versa) cancels instead of recording both — so the Δ-seeds built
/// from a log are minimal and a no-op batch yields an empty log.
class StageChangeLog {
 public:
  using TupleSet = std::unordered_set<Tuple, TupleHasher>;
  using PerRelation = std::map<std::string, TupleSet>;

  void RecordInsert(const std::string& relation, const Tuple& tuple) {
    RecordNet(&removed_, &added_, relation, tuple);
  }
  void RecordRemove(const std::string& relation, const Tuple& tuple) {
    RecordNet(&added_, &removed_, relation, tuple);
  }
  void RecordSliceGain(const std::string& relation, const Tuple& tuple) {
    RecordNet(&slice_lost_, &slice_gained_, relation, tuple);
  }
  void RecordSliceLoss(const std::string& relation, const Tuple& tuple) {
    RecordNet(&slice_gained_, &slice_lost_, relation, tuple);
  }

  const PerRelation& added() const { return added_; }
  const PerRelation& removed() const { return removed_; }
  const PerRelation& slice_gained() const { return slice_gained_; }
  const PerRelation& slice_lost() const { return slice_lost_; }

  bool empty() const {
    return Empty(added_) && Empty(removed_) && Empty(slice_gained_) &&
           Empty(slice_lost_);
  }

  /// Invokes `fn` once per relation name with a recorded net change.
  template <typename Fn>
  void ForEachChangedRelation(Fn&& fn) const {
    for (const PerRelation* m :
         {&added_, &removed_, &slice_gained_, &slice_lost_}) {
      for (const auto& [relation, tuples] : *m) {
        if (!tuples.empty()) fn(relation);
      }
    }
  }

  void Clear() {
    added_.clear();
    removed_.clear();
    slice_gained_.clear();
    slice_lost_.clear();
  }

 private:
  static bool Empty(const PerRelation& m) {
    for (const auto& [relation, tuples] : m) {
      if (!tuples.empty()) return false;
    }
    return true;
  }

  /// Nets a change: revoking an opposite-direction record cancels it;
  /// otherwise the change is recorded.
  static void RecordNet(PerRelation* opposite, PerRelation* target,
                        const std::string& relation, const Tuple& tuple) {
    auto it = opposite->find(relation);
    if (it != opposite->end() && it->second.erase(tuple) > 0) return;
    (*target)[relation].insert(tuple);
  }

  PerRelation added_;
  PerRelation removed_;
  PerRelation slice_gained_;
  PerRelation slice_lost_;
};

}  // namespace wdl

#endif  // WDL_ENGINE_DERIVATION_H_
