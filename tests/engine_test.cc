#include "engine/engine.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "support/builders.h"

namespace wdl {
namespace {

using test::I;
using test::P;
using test::R;
using test::S;
using test::Settle;

TEST(EngineTest, TransitiveClosureLocalFixpoint) {
  Engine e("p");
  ASSERT_TRUE(e.LoadProgram(P(R"(
    collection ext edge@p(x: int, y: int);
    collection int tc@p(x: int, y: int);
    fact edge@p(1, 2); fact edge@p(2, 3); fact edge@p(3, 4);
    rule tc@p($x, $y) :- edge@p($x, $y);
    rule tc@p($x, $z) :- tc@p($x, $y), edge@p($y, $z);
  )")).ok());
  Settle(&e);
  EXPECT_EQ(e.catalog().Get("tc")->size(), 6u);  // all pairs i<j
  EXPECT_TRUE(e.catalog().Get("tc")->Contains({I(1), I(4)}));
}

TEST(EngineTest, NaiveAndSemiNaiveAgreeOnChain) {
  auto run = [](EvalMode mode) {
    EngineOptions opts;
    opts.mode = mode;
    Engine e("p", opts);
    std::string program =
        "collection ext edge@p(x: int, y: int);\n"
        "collection int tc@p(x: int, y: int);\n"
        "rule tc@p($x, $y) :- edge@p($x, $y);\n"
        "rule tc@p($x, $z) :- tc@p($x, $y), edge@p($y, $z);\n";
    EXPECT_TRUE(e.LoadProgram(P(program)).ok());
    for (int64_t i = 0; i < 30; ++i) {
      EXPECT_TRUE(e.InsertFact(Fact("edge", "p", {I(i), I(i + 1)})).ok());
    }
    Settle(&e);
    return e.catalog().Get("tc")->SortedTuples();
  };
  std::vector<Tuple> semi = run(EvalMode::kSemiNaive);
  std::vector<Tuple> naive = run(EvalMode::kNaive);
  EXPECT_EQ(semi.size(), 30u * 31u / 2u);
  EXPECT_EQ(semi, naive);
}

TEST(EngineTest, SemiNaiveDoesLessWorkThanNaive) {
  auto work = [](EvalMode mode) {
    EngineOptions opts;
    opts.mode = mode;
    opts.use_indexes = false;  // make examined-tuple counts comparable
    Engine e("p", opts);
    EXPECT_TRUE(e.LoadProgram(P(
        "collection ext edge@p(x: int, y: int);"
        "collection int tc@p(x: int, y: int);"
        "rule tc@p($x, $y) :- edge@p($x, $y);"
        "rule tc@p($x, $z) :- tc@p($x, $y), edge@p($y, $z);")).ok());
    for (int64_t i = 0; i < 40; ++i) {
      EXPECT_TRUE(e.InsertFact(Fact("edge", "p", {I(i), I(i + 1)})).ok());
    }
    StageResult r = e.RunStage();
    return r.stats.tuples_examined;
  };
  EXPECT_LT(work(EvalMode::kSemiNaive), work(EvalMode::kNaive));
}

TEST(EngineTest, IntensionalRelationsRecomputeAfterBaseDeletion) {
  Engine e("p");
  ASSERT_TRUE(e.LoadProgram(P(R"(
    collection ext b@p(x: int);
    collection int v@p(x: int);
    fact b@p(1); fact b@p(2);
    rule v@p($x) :- b@p($x);
  )")).ok());
  Settle(&e);
  EXPECT_EQ(e.catalog().Get("v")->size(), 2u);
  ASSERT_TRUE(e.RemoveFact(Fact("b", "p", {I(1)})).ok());
  Settle(&e);
  EXPECT_EQ(e.catalog().Get("v")->size(), 1u);
  EXPECT_TRUE(e.catalog().Get("v")->Contains({I(2)}));
}

TEST(EngineTest, InsertIntoIntensionalRelationRejected) {
  Engine e("p");
  ASSERT_TRUE(e.LoadProgram(P("collection int v@p(x: int);")).ok());
  EXPECT_EQ(e.InsertFact(Fact("v", "p", {I(1)})).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(EngineTest, StratifiedNegationComplement) {
  Engine e("p");
  ASSERT_TRUE(e.LoadProgram(P(R"(
    collection ext node@p(x: int);
    collection ext edge@p(x: int, y: int);
    collection int reach@p(x: int);
    collection int unreach@p(x: int);
    fact node@p(1); fact node@p(2); fact node@p(3);
    fact edge@p(1, 2);
    rule reach@p(1) :- node@p(1);
    rule reach@p($y) :- reach@p($x), edge@p($x, $y);
    rule unreach@p($x) :- node@p($x), not reach@p($x);
  )")).ok());
  Settle(&e);
  EXPECT_EQ(e.catalog().Get("reach")->size(), 2u);
  ASSERT_EQ(e.catalog().Get("unreach")->size(), 1u);
  EXPECT_TRUE(e.catalog().Get("unreach")->Contains({I(3)}));
}

TEST(EngineTest, Paper2013DialectRejectsNegatedRule) {
  EngineOptions opts;
  opts.dialect = Dialect::kPaper2013;
  Engine e("p", opts);
  Result<uint64_t> r = e.AddRule(R("h@p($x) :- a@p($x), not b@p($x)"));
  EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented);
}

TEST(EngineTest, UnsafeRuleRejected) {
  Engine e("p");
  EXPECT_FALSE(e.AddRule(R("h@p($x, $y) :- a@p($x)")).ok());
}

TEST(EngineTest, UnstratifiableDelegatedRuleRejectedAtInstall) {
  Engine e("p");
  ASSERT_TRUE(
      e.AddRule(R("a@p($x) :- s@p($x), not b@p($x)")).ok());
  Delegation d;
  d.origin_peer = "q";
  d.target_peer = "p";
  d.rule = R("b@p($x) :- s@p($x), not a@p($x)");
  EXPECT_FALSE(e.InstallDelegatedRule(d).ok());
}

TEST(EngineTest, RemoveRuleRetractsItsDelegationsNextStage) {
  Engine e("p");
  ASSERT_TRUE(e.LoadProgram(P(R"(
    collection ext sel@p(a: string);
    fact sel@p("q");
  )")).ok());
  Result<uint64_t> id = e.AddRule(R("h@p($x) :- sel@p($a), data@$a($x)"));
  ASSERT_TRUE(id.ok());
  StageResult first = e.RunStage();
  ASSERT_EQ(first.outbound.count("q"), 1u);
  ASSERT_EQ(first.outbound["q"].delegation_installs.size(), 1u);
  uint64_t key = first.outbound["q"].delegation_installs[0].Key();

  ASSERT_TRUE(e.RemoveRule(*id).ok());
  StageResult second = e.RunStage();
  ASSERT_EQ(second.outbound.count("q"), 1u);
  ASSERT_EQ(second.outbound["q"].delegation_retracts.size(), 1u);
  EXPECT_EQ(second.outbound["q"].delegation_retracts[0], key);
}

TEST(EngineTest, DelegationInstallIsIdempotent) {
  Engine e("p");
  Delegation d;
  d.origin_peer = "q";
  d.target_peer = "p";
  d.rule = R("h@q($x) :- data@p($x)");
  ASSERT_TRUE(e.InstallDelegatedRule(d).ok());
  ASSERT_TRUE(e.InstallDelegatedRule(d).ok());
  EXPECT_EQ(e.rules().size(), 1u);
}

TEST(EngineTest, DelegationForWrongTargetRejected) {
  Engine e("p");
  Delegation d;
  d.origin_peer = "q";
  d.target_peer = "r";  // not us
  d.rule = R("h@q($x) :- data@r($x)");
  EXPECT_FALSE(e.InstallDelegatedRule(d).ok());
}

TEST(EngineTest, DerivedSetToExtensionalIsPersistentUnion) {
  Engine e("p");
  ASSERT_TRUE(
      e.LoadProgram(P("collection ext inbox@p(x: int);")).ok());
  DerivedSet set;
  set.target_peer = "p";
  set.relation = "inbox";
  set.tuples = {Tuple{I(1)}, Tuple{I(2)}};
  e.EnqueueDerivedSet("q", set);
  e.RunStage();
  EXPECT_EQ(e.catalog().Get("inbox")->size(), 2u);

  // A shrunk set later does NOT delete: updates are persistent.
  set.tuples = {Tuple{I(1)}};
  e.EnqueueDerivedSet("q", set);
  e.RunStage();
  EXPECT_EQ(e.catalog().Get("inbox")->size(), 2u);
}

TEST(EngineTest, DerivedSetToIntensionalReplacesSenderSlice) {
  Engine e("p");
  ASSERT_TRUE(
      e.LoadProgram(P("collection int view@p(x: int);")).ok());
  DerivedSet set;
  set.target_peer = "p";
  set.relation = "view";
  set.tuples = {Tuple{I(1)}, Tuple{I(2)}};
  e.EnqueueDerivedSet("q", set);
  e.RunStage();
  EXPECT_EQ(e.catalog().Get("view")->size(), 2u);

  set.tuples = {Tuple{I(3)}};
  e.EnqueueDerivedSet("q", set);
  e.RunStage();
  const Relation* view = e.catalog().Get("view");
  EXPECT_EQ(view->size(), 1u);
  EXPECT_TRUE(view->Contains({I(3)}));
}

TEST(EngineTest, SlicesFromDistinctSendersAreIndependent) {
  Engine e("p");
  ASSERT_TRUE(
      e.LoadProgram(P("collection int view@p(x: int);")).ok());
  DerivedSet from_q{.target_peer = "p", .relation = "view",
                    .tuples = {Tuple{I(1)}}};
  DerivedSet from_r{.target_peer = "p", .relation = "view",
                    .tuples = {Tuple{I(2)}}};
  e.EnqueueDerivedSet("q", from_q);
  e.EnqueueDerivedSet("r", from_r);
  e.RunStage();
  EXPECT_EQ(e.catalog().Get("view")->size(), 2u);

  // q empties its slice; r's contribution survives.
  from_q.tuples.clear();
  e.EnqueueDerivedSet("q", from_q);
  e.RunStage();
  const Relation* view = e.catalog().Get("view");
  EXPECT_EQ(view->size(), 1u);
  EXPECT_TRUE(view->Contains({I(2)}));
}

TEST(EngineTest, UnchangedContributionIsNotResent) {
  Engine e("p");
  ASSERT_TRUE(e.LoadProgram(P(R"(
    collection ext data@p(x: int);
    fact data@p(1);
    rule mirror@q($x) :- data@p($x);
  )")).ok());
  StageResult first = e.RunStage();
  ASSERT_EQ(first.outbound.count("q"), 1u);
  // Force extra stages: nothing new must be shipped.
  e.InsertFact(Fact("data", "p", {I(1)})).value();  // duplicate, no-op
  StageResult second = e.RunStage();
  EXPECT_EQ(second.outbound.count("q"), 0u);
}

TEST(EngineTest, EmptiedContributionIsSentOnceAsEmptySet) {
  // Full-slice oracle mode: an emptied contribution ships as one empty
  // DerivedSet (the differential twin of this test ships the deletes).
  EngineOptions opts;
  opts.use_differential_propagation = false;
  Engine e("p", opts);
  ASSERT_TRUE(e.LoadProgram(P(R"(
    collection ext data@p(x: int);
    collection int view@p(x: int);
    fact data@p(1);
    rule view@p($x) :- data@p($x);
    rule mirror@q($x) :- view@p($x);
  )")).ok());
  StageResult first = e.RunStage();
  ASSERT_EQ(first.outbound.count("q"), 1u);
  ASSERT_EQ(first.outbound["q"].derived_sets.size(), 1u);

  ASSERT_TRUE(e.RemoveFact(Fact("data", "p", {I(1)})).ok());
  StageResult second = e.RunStage();
  ASSERT_EQ(second.outbound.count("q"), 1u);
  ASSERT_EQ(second.outbound["q"].derived_sets.size(), 1u);
  EXPECT_TRUE(second.outbound["q"].derived_sets[0].tuples.empty());

  // And only once: a third stage is silent.
  StageResult third = e.RunStage();
  EXPECT_EQ(third.outbound.count("q"), 0u);
}

TEST(EngineTest, DifferentialShipsOnlyTheChange) {
  Engine e("p");  // differential propagation is the default
  ASSERT_TRUE(e.LoadProgram(P(R"(
    collection ext data@p(x: int);
    fact data@p(1);
    rule mirror@q($x) :- data@p($x);
  )")).ok());
  StageResult first = e.RunStage();
  ASSERT_EQ(first.outbound.count("q"), 1u);
  ASSERT_EQ(first.outbound["q"].derived_deltas.size(), 1u);
  {
    const DerivedDelta& dd = first.outbound["q"].derived_deltas[0];
    EXPECT_EQ(dd.base_version, 0u);
    EXPECT_EQ(dd.version, 1u);
    EXPECT_EQ(dd.inserts.size(), 1u);
    EXPECT_TRUE(dd.deletes.empty());
  }

  // One more base fact: the delta carries exactly the one new tuple,
  // not the whole two-tuple contribution.
  ASSERT_TRUE(e.InsertFact(Fact("data", "p", {I(2)})).ok());
  StageResult second = e.RunStage();
  ASSERT_EQ(second.outbound["q"].derived_deltas.size(), 1u);
  {
    const DerivedDelta& dd = second.outbound["q"].derived_deltas[0];
    EXPECT_EQ(dd.base_version, 1u);
    EXPECT_EQ(dd.version, 2u);
    ASSERT_EQ(dd.inserts.size(), 1u);
    EXPECT_EQ(dd.inserts[0], Tuple{I(2)});
    EXPECT_TRUE(dd.deletes.empty());
  }

  // Removing one fact ships its deletion only.
  ASSERT_TRUE(e.RemoveFact(Fact("data", "p", {I(1)})).ok());
  StageResult third = e.RunStage();
  ASSERT_EQ(third.outbound["q"].derived_deltas.size(), 1u);
  {
    const DerivedDelta& dd = third.outbound["q"].derived_deltas[0];
    EXPECT_EQ(dd.base_version, 2u);
    EXPECT_EQ(dd.version, 3u);
    EXPECT_TRUE(dd.inserts.empty());
    ASSERT_EQ(dd.deletes.size(), 1u);
    EXPECT_EQ(dd.deletes[0], Tuple{I(1)});
  }

  // Unchanged contribution: silent.
  StageResult fourth = e.RunStage();
  EXPECT_EQ(fourth.outbound.count("q"), 0u);
}

TEST(EngineTest, DifferentialEmptiedContributionShipsDeletes) {
  Engine e("p");
  ASSERT_TRUE(e.LoadProgram(P(R"(
    collection ext data@p(x: int);
    collection int view@p(x: int);
    fact data@p(1);
    rule view@p($x) :- data@p($x);
    rule mirror@q($x) :- view@p($x);
  )")).ok());
  (void)e.RunStage();
  ASSERT_TRUE(e.RemoveFact(Fact("data", "p", {I(1)})).ok());
  StageResult second = e.RunStage();
  ASSERT_EQ(second.outbound["q"].derived_deltas.size(), 1u);
  const DerivedDelta& dd = second.outbound["q"].derived_deltas[0];
  EXPECT_TRUE(dd.inserts.empty());
  ASSERT_EQ(dd.deletes.size(), 1u);

  StageResult third = e.RunStage();
  EXPECT_EQ(third.outbound.count("q"), 0u);
}

TEST(EngineTest, ResyncRequestIsServedWithSnapshot) {
  Engine e("p");
  ASSERT_TRUE(e.LoadProgram(P(R"(
    collection ext data@p(x: int);
    fact data@p(1); fact data@p(2);
    rule mirror@q($x) :- data@p($x);
  )")).ok());
  (void)e.RunStage();

  // q claims it lost part of the stream; the next stage ships the full
  // contribution as a snapshot at the current version, even though the
  // contribution itself did not change.
  e.EnqueueResyncRequest("q", "mirror");
  ASSERT_TRUE(e.HasPendingWork());
  StageResult served = e.RunStage();
  ASSERT_EQ(served.outbound["q"].derived_deltas.size(), 1u);
  const DerivedDelta& dd = served.outbound["q"].derived_deltas[0];
  EXPECT_TRUE(dd.snapshot);
  EXPECT_EQ(dd.version, 1u);
  EXPECT_EQ(dd.inserts.size(), 2u);
  EXPECT_EQ(e.propagation_counters().snapshots_shipped, 1u);
}

TEST(EngineTest, GappedDeltaTriggersResyncRequest) {
  Engine e("p");
  ASSERT_TRUE(
      e.LoadProgram(P("collection int view@p(x: int);")).ok());

  DerivedDelta d1;
  d1.target_peer = "p";
  d1.relation = "view";
  d1.base_version = 0;
  d1.version = 1;
  d1.inserts = {Tuple{I(1)}};
  e.EnqueueDerivedDelta("q", d1);
  (void)e.RunStage();
  EXPECT_TRUE(e.catalog().Get("view")->Contains({I(1)}));
  EXPECT_EQ(e.slice_store().StreamVersion("view", "q"), 1u);

  // Version 2 is lost; version 3 arrives. The slice must not apply it,
  // and a resync request must go back to q.
  DerivedDelta d3;
  d3.target_peer = "p";
  d3.relation = "view";
  d3.base_version = 2;
  d3.version = 3;
  d3.inserts = {Tuple{I(3)}};
  e.EnqueueDerivedDelta("q", d3);
  StageResult r = e.RunStage();
  EXPECT_FALSE(e.catalog().Get("view")->Contains({I(3)}));
  ASSERT_EQ(r.outbound.count("q"), 1u);
  ASSERT_EQ(r.outbound["q"].resync_requests.size(), 1u);
  EXPECT_EQ(r.outbound["q"].resync_requests[0], "view");
  EXPECT_EQ(e.propagation_counters().resyncs_requested, 1u);

  // The snapshot response repairs the slice wholesale.
  DerivedDelta snap;
  snap.target_peer = "p";
  snap.relation = "view";
  snap.snapshot = true;
  snap.version = 3;
  snap.inserts = {Tuple{I(1)}, Tuple{I(3)}};
  e.EnqueueDerivedDelta("q", snap);
  (void)e.RunStage();
  EXPECT_EQ(e.catalog().Get("view")->size(), 2u);
  EXPECT_EQ(e.slice_store().StreamVersion("view", "q"), 3u);

  // A late duplicate of the gapped delta is now stale: no double-apply,
  // no new resync.
  e.EnqueueDerivedDelta("q", d3);
  StageResult dup = e.RunStage();
  EXPECT_EQ(e.catalog().Get("view")->size(), 2u);
  EXPECT_EQ(dup.outbound.count("q"), 0u);
}

TEST(EngineTest, SelfHealedGapDoesNotRequestResync) {
  // A reordered batch [v2, v1, v2-duplicate] momentarily looks gapped,
  // but the stream is whole by the end of input application — no
  // resync (and its O(|view|) snapshot answer) may be requested.
  Engine e("p");
  ASSERT_TRUE(
      e.LoadProgram(P("collection int view@p(x: int);")).ok());

  DerivedDelta d1;
  d1.target_peer = "p";
  d1.relation = "view";
  d1.base_version = 0;
  d1.version = 1;
  d1.inserts = {Tuple{I(1)}};
  DerivedDelta d2;
  d2.target_peer = "p";
  d2.relation = "view";
  d2.base_version = 1;
  d2.version = 2;
  d2.inserts = {Tuple{I(2)}};

  e.EnqueueDerivedDelta("q", d2);  // early copy: gap at arrival time
  e.EnqueueDerivedDelta("q", d1);
  e.EnqueueDerivedDelta("q", d2);  // duplicate heals the stream
  StageResult r = e.RunStage();
  EXPECT_EQ(e.catalog().Get("view")->size(), 2u);
  EXPECT_EQ(e.slice_store().StreamVersion("view", "q"), 2u);
  EXPECT_EQ(r.outbound.count("q"), 0u);
  EXPECT_EQ(e.propagation_counters().resyncs_requested, 0u);
}

TEST(EngineTest, ProgramListingMarksDelegatedRules) {
  Engine e("p");
  ASSERT_TRUE(e.AddRule(R("local@p($x) :- base@p($x)")).ok());
  Delegation d;
  d.origin_peer = "julia";
  d.target_peer = "p";
  d.rule = R("spy@julia($x) :- base@p($x)");
  ASSERT_TRUE(e.InstallDelegatedRule(d).ok());
  std::string listing = e.ProgramListing();
  EXPECT_NE(listing.find("delegated by julia"), std::string::npos);
}

TEST(EngineTest, StageStatsReportRulesAndDerivations) {
  Engine e("p");
  ASSERT_TRUE(e.LoadProgram(P(R"(
    collection ext b@p(x: int);
    collection int v@p(x: int);
    fact b@p(1); fact b@p(2);
    rule v@p($x) :- b@p($x);
  )")).ok());
  StageResult r = e.RunStage();
  EXPECT_EQ(r.stats.active_rules, 1u);
  EXPECT_EQ(r.stats.local_derivations, 2u);
  EXPECT_GE(r.stats.iterations, 1);
}

// Differential property: semi-naive and naive must agree on random
// graphs of various shapes.
class DifferentialTest
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(DifferentialTest, SemiNaiveMatchesNaiveOnRandomGraphs) {
  auto [nodes, edges, seed] = GetParam();
  std::vector<std::pair<int64_t, int64_t>> edge_list;
  uint64_t state = seed;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int i = 0; i < edges; ++i) {
    edge_list.emplace_back(next() % nodes, next() % nodes);
  }

  auto run = [&](EvalMode mode) {
    EngineOptions opts;
    opts.mode = mode;
    Engine e("p", opts);
    EXPECT_TRUE(e.LoadProgram(P(
        "collection ext edge@p(x: int, y: int);"
        "collection int tc@p(x: int, y: int);"
        "rule tc@p($x, $y) :- edge@p($x, $y);"
        "rule tc@p($x, $z) :- tc@p($x, $y), edge@p($y, $z);")).ok());
    for (auto [a, b] : edge_list) {
      EXPECT_TRUE(e.InsertFact(Fact("edge", "p", {I(a), I(b)})).ok());
    }
    Settle(&e);
    return e.catalog().Get("tc")->SortedTuples();
  };
  EXPECT_EQ(run(EvalMode::kSemiNaive), run(EvalMode::kNaive));
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, DifferentialTest,
    ::testing::Values(std::make_tuple(5, 8, 1ull),
                      std::make_tuple(10, 20, 2ull),
                      std::make_tuple(20, 60, 3ull),
                      std::make_tuple(8, 30, 4ull),
                      std::make_tuple(30, 45, 5ull)));

}  // namespace
}  // namespace wdl
