#ifndef WDL_BASE_RESULT_H_
#define WDL_BASE_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "base/status.h"

namespace wdl {

/// Result<T> holds either a value of type T or a non-OK Status.
/// It is the return type of every fallible operation that produces a
/// value (parsing, lookups, evaluation). Accessing value() on an error
/// Result is a programming error and asserts in debug builds.
template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error Status keeps call
  // sites readable: `return tuple;` / `return Status::NotFound(...)`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "use Result(T) for success");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when this is an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Evaluates `expr` (a Result<T>), propagating errors; on success binds
// the value to `lhs`. `lhs` may include a declaration:
//   WDL_ASSIGN_OR_RETURN(auto rule, ParseRule(text));
#define WDL_ASSIGN_OR_RETURN(lhs, expr)                     \
  WDL_ASSIGN_OR_RETURN_IMPL_(                               \
      WDL_RESULT_CONCAT_(_wdl_result_, __LINE__), lhs, expr)

#define WDL_RESULT_CONCAT_INNER_(a, b) a##b
#define WDL_RESULT_CONCAT_(a, b) WDL_RESULT_CONCAT_INNER_(a, b)
#define WDL_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

}  // namespace wdl

#endif  // WDL_BASE_RESULT_H_
