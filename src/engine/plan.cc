#include "engine/plan.h"

#include <cstdio>
#include <unordered_map>

namespace wdl {
namespace {

/// Compile-time state: variable -> slot numbering plus which slots are
/// statically bound. Left-to-right evaluation binds exactly the same
/// slots on every path that reaches atom k, so boundness before an atom
/// is a static property of the rule, not of the data.
struct Compiler {
  RulePlan* plan;
  std::unordered_map<std::string, uint16_t> slot_of;
  std::vector<bool> bound;

  uint16_t SlotFor(const std::string& var) {
    auto [it, inserted] =
        slot_of.try_emplace(var, static_cast<uint16_t>(plan->slot_vars.size()));
    if (inserted) {
      plan->slot_vars.push_back(var);
      bound.push_back(false);
    }
    return it->second;
  }

  PlanSym CompileSym(const SymTerm& sym) {
    if (sym.is_name()) return PlanSym::Const(Symbol::Intern(sym.name()));
    return PlanSym::Slot(SlotFor(sym.var()));
  }
};

/// Appends `sym` to `out` once (the vectors stay tiny — rule bodies
/// read a handful of relations — so linear dedup beats a set).
void AddUnique(std::vector<Symbol>* out, Symbol sym) {
  for (Symbol s : *out) {
    if (s == sym) return;
  }
  out->push_back(sym);
}

/// Compiles one body atom under the boundness state `bound`, advancing
/// it. Shared by the natural-order pass, the Δ-first variants, and the
/// adorned flavors: slot numbering lives in `c` and is identical
/// everywhere; only which occurrence binds vs checks (and hence the
/// access path) depends on the order atoms execute in and on which
/// slots were pre-seeded.
PlanAtom CompileAtom(Compiler& c, const Atom& atom,
                     std::vector<bool>* bound) {
  PlanAtom pa;
  pa.relation = c.CompileSym(atom.relation);
  pa.peer = c.CompileSym(atom.peer);
  pa.negated = atom.negated;

  // Snapshot of boundness before this atom: in-atom binds (repeated
  // variables) satisfy later positions of the same atom but cannot
  // seed its access path — the key must exist before the tuple loop
  // starts, exactly like the interpreter's per-call probe choice.
  std::vector<bool> bound_before = *bound;

  pa.terms.reserve(atom.args.size());
  for (size_t j = 0; j < atom.args.size(); ++j) {
    const Term& t = atom.args[j];
    if (t.is_constant()) {
      if (j < 64) pa.prebound_args |= uint64_t{1} << j;
      if (pa.index_column < 0) {
        pa.index_column = static_cast<int>(j);
        pa.index_key_is_const = true;
        pa.index_const = t.value();
      }
      pa.terms.push_back(PlanTerm::Const(t.value()));
      continue;
    }
    uint16_t s = c.SlotFor(t.var());
    if (s >= bound->size()) {
      bound->resize(s + 1, false);
      bound_before.resize(s + 1, false);
    }
    if ((*bound)[s]) {
      if (s < bound_before.size() && bound_before[s]) {
        if (j < 64) pa.prebound_args |= uint64_t{1} << j;
        if (pa.index_column < 0) {
          pa.index_column = static_cast<int>(j);
          pa.index_key_is_const = false;
          pa.index_slot = s;
        }
      }
      pa.terms.push_back(PlanTerm::Check(s));
    } else if (atom.negated) {
      // Negated atoms never bind; a variable that reaches one unbound
      // can never become ground — statically dead branch.
      pa.negated_unbound = true;
      pa.terms.push_back(PlanTerm::Check(s));
    } else {
      (*bound)[s] = true;
      pa.bound_slots.push_back(s);
      pa.terms.push_back(PlanTerm::Bind(s));
    }
  }
  return pa;
}

/// Compiles the head under the current boundness state and finalizes
/// the slot count and static info.
void CompileHead(Compiler& c, const Rule& rule) {
  RulePlan& plan = *c.plan;
  plan.head.relation = c.CompileSym(rule.head.relation);
  plan.head.peer = c.CompileSym(rule.head.peer);
  plan.head.terms.reserve(rule.head.args.size());
  for (const Term& t : rule.head.args) {
    if (t.is_constant()) {
      plan.head.terms.push_back(PlanTerm::Const(t.value()));
      continue;
    }
    uint16_t s = c.SlotFor(t.var());
    if (!c.bound[s]) plan.head.dead = true;
    plan.head.terms.push_back(PlanTerm::Check(s));
  }
  if (!plan.head.relation.is_const && !c.bound[plan.head.relation.slot]) {
    plan.head.dead = true;
  }
  if (!plan.head.peer.is_const && !c.bound[plan.head.peer.slot]) {
    plan.head.dead = true;
  }
  plan.num_slots = static_cast<uint16_t>(plan.slot_vars.size());
  plan.info = ComputeStaticInfo(rule);
}

/// True when every body atom names relation and peer with constants and
/// all atoms share one peer; sets `common_body_peer`. Join order then
/// carries no semantics, so Δ-first variants may reorder the body.
bool BodyRotatable(const Rule& rule, RulePlan* plan) {
  if (rule.body.empty()) return false;
  for (const Atom& atom : rule.body) {
    if (!atom.relation.is_name() || !atom.peer.is_name()) return false;
    Symbol peer_sym = Symbol::Intern(atom.peer.name());
    if (!plan->common_body_peer.valid()) {
      plan->common_body_peer = peer_sym;
    } else if (!(plan->common_body_peer == peer_sym)) {
      return false;
    }
  }
  return true;
}

}  // namespace

PlanStaticInfo ComputeStaticInfo(const Rule& rule) {
  PlanStaticInfo info;
  if (rule.head.relation.is_name()) {
    info.head_relation = Symbol::Intern(rule.head.relation.name());
  } else {
    info.head_relation_var = true;
  }
  if (rule.head.peer.is_name()) {
    info.head_peer = Symbol::Intern(rule.head.peer.name());
  } else {
    info.head_peer_var = true;
  }
  for (const Atom& atom : rule.body) {
    if (atom.relation.is_name()) {
      Symbol s = Symbol::Intern(atom.relation.name());
      AddUnique(atom.negated ? &info.negated_relations
                             : &info.body_relations,
                s);
    } else if (atom.negated) {
      info.negated_relation_var = true;
    } else {
      info.body_relation_var = true;
    }
    if (atom.peer.is_name()) {
      AddUnique(&info.body_peers, Symbol::Intern(atom.peer.name()));
    } else {
      info.body_peer_var = true;
    }
  }
  return info;
}

RulePlan CompileRule(const Rule& rule) {
  RulePlan plan;
  plan.rule = rule;
  plan.rule_hash = rule.Hash();
  Compiler c{&plan, {}, {}};

  plan.atoms.reserve(rule.body.size());
  for (const Atom& atom : rule.body) {
    plan.atoms.push_back(CompileAtom(c, atom, &c.bound));
  }
  CompileHead(c, rule);

  // Δ-first variants: only when join order is provably semantics-free —
  // every body atom names relation and peer with constants and all
  // atoms live at one common peer (no delegation split can move, no
  // name resolution depends on binding order). The order keeps the
  // non-Δ atoms in their original relative sequence, so every negated
  // atom still runs after the positive atoms that ground it.
  if (BodyRotatable(rule, &plan) && rule.body.size() > 1) {
    plan.delta_variants.resize(rule.body.size());
    for (size_t pos = 0; pos < rule.body.size(); ++pos) {
      if (rule.body[pos].negated) continue;  // never a Δ position
      DeltaVariant& v = plan.delta_variants[pos];
      v.order.push_back(static_cast<uint16_t>(pos));
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (i != pos) v.order.push_back(static_cast<uint16_t>(i));
      }
      std::vector<bool> bound(plan.slot_vars.size(), false);
      v.atoms.reserve(v.order.size());
      for (uint16_t original : v.order) {
        v.atoms.push_back(CompileAtom(c, rule.body[original], &bound));
      }
      v.valid = true;
    }
  }
  return plan;
}

RulePlan CompileRuleHeadBound(const Rule& rule) {
  RulePlan plan;
  plan.rule = rule;
  plan.rule_hash = rule.Hash();
  plan.adorned = true;
  size_t nargs = rule.head.args.size();
  plan.adornment = nargs >= 64 ? ~uint64_t{0} : (uint64_t{1} << nargs) - 1;
  Compiler c{&plan, {}, {}};

  // Every head variable is seeded by the caller before execution, so
  // body occurrences compile to checks and index probes.
  auto seed = [&](const std::string& var) { c.bound[c.SlotFor(var)] = true; };
  if (!rule.head.relation.is_name()) seed(rule.head.relation.var());
  if (!rule.head.peer.is_name()) seed(rule.head.peer.var());
  for (const Term& t : rule.head.args) {
    if (!t.is_constant()) seed(t.var());
  }

  plan.atoms.reserve(rule.body.size());
  for (const Atom& atom : rule.body) {
    plan.atoms.push_back(CompileAtom(c, atom, &c.bound));
  }
  CompileHead(c, rule);
  return plan;  // existence checks run the natural order: no Δ variants
}

RulePlan CompileRuleDemand(const Rule& rule, uint64_t adornment) {
  RulePlan plan;
  plan.rule = rule;
  plan.rule_hash = rule.Hash();
  plan.adorned = true;
  plan.adornment = adornment;
  plan.has_demand_atom = true;
  Compiler c{&plan, {}, {}};

  // The synthetic demand atom: one term per bound head position,
  // mirroring the head's term there — a head constant filters demand
  // keys that can never match, a head variable binds its slot from the
  // demand key. Compiled like any atom, so repeated variables and
  // access paths fall out of the existing machinery. Its relation/peer
  // names are placeholders; the evaluator routes extended atom index 0
  // to the demand set, never to a catalog.
  Atom demand_atom;
  demand_atom.relation = SymTerm::Name(kDemandAtomName);
  demand_atom.peer = SymTerm::Name(kDemandAtomName);
  for (size_t j = 0; j < rule.head.args.size() && j < 64; ++j) {
    if ((adornment >> j) & 1) demand_atom.args.push_back(rule.head.args[j]);
  }

  plan.atoms.reserve(rule.body.size() + 1);
  plan.atoms.push_back(CompileAtom(c, demand_atom, &c.bound));
  for (const Atom& atom : rule.body) {
    plan.atoms.push_back(CompileAtom(c, atom, &c.bound));
  }
  CompileHead(c, rule);

  // Δ-first variants over the extended body. A new-demand Δ (position
  // 0) keeps the natural order — demand first is exactly right. A body
  // Δ moves the demand atom *last*: by then the Δ tuple has bound the
  // join variables, so outstanding demands are index-probed instead of
  // scanned. Reordering across a negated atom could strand it before
  // its binder, so bodies with negation keep natural order only (the
  // demand evaluator falls back to the full-fixpoint path for negation
  // anyway).
  bool has_negation = false;
  for (const Atom& atom : rule.body) has_negation |= atom.negated;
  if (BodyRotatable(rule, &plan) && !has_negation) {
    size_t n = plan.atoms.size();
    plan.delta_variants.resize(n);
    for (size_t pos = 0; pos < n; ++pos) {
      DeltaVariant& v = plan.delta_variants[pos];
      v.order.push_back(static_cast<uint16_t>(pos));
      for (size_t i = 1; i < n; ++i) {
        if (i != pos) v.order.push_back(static_cast<uint16_t>(i));
      }
      if (pos != 0) v.order.push_back(0);
      std::vector<bool> bound(plan.slot_vars.size(), false);
      v.atoms.reserve(v.order.size());
      for (uint16_t original : v.order) {
        const Atom& src =
            original == 0 ? demand_atom : rule.body[original - 1];
        v.atoms.push_back(CompileAtom(c, src, &bound));
      }
      v.valid = true;
    }
  }
  return plan;
}

bool UnifyHeadWithFact(const Rule& rule, const Fact& fact,
                       Binding* binding) {
  auto unify_sym = [&](const SymTerm& sym, const std::string& name) {
    if (sym.is_name()) return sym.name() == name;
    const Value* bound = binding->Get(sym.var());
    if (bound != nullptr) {
      return bound->is_string() && bound->AsString() == name;
    }
    binding->Bind(sym.var(), Value::String(name));
    return true;
  };
  if (!unify_sym(rule.head.relation, fact.relation)) return false;
  if (!unify_sym(rule.head.peer, fact.peer)) return false;
  if (rule.head.args.size() != fact.args.size()) return false;
  for (size_t i = 0; i < fact.args.size(); ++i) {
    const Term& t = rule.head.args[i];
    if (t.is_constant()) {
      if (!(t.value() == fact.args[i])) return false;
      continue;
    }
    const Value* bound = binding->Get(t.var());
    if (bound != nullptr) {
      if (!(*bound == fact.args[i])) return false;
    } else {
      binding->Bind(t.var(), fact.args[i]);
    }
  }
  return true;
}

bool SubstituteCompiled(const PlanSym& rel, const PlanSym& peer,
                        const std::vector<PlanTerm>& terms, const Atom& src,
                        const Value* const* slots, Atom* out) {
  auto sub_sym = [&](const PlanSym& ps, const SymTerm& src_sym,
                     SymTerm* dst) {
    if (ps.is_const) {
      *dst = src_sym;
      return true;
    }
    const Value* v = slots[ps.slot];
    if (v == nullptr) {
      *dst = src_sym;  // unbound: variable stays
      return true;
    }
    if (!v->is_string()) return false;
    *dst = SymTerm::Name(v->AsString());
    return true;
  };

  Atom result;
  result.negated = src.negated;
  if (!sub_sym(rel, src.relation, &result.relation)) return false;
  if (!sub_sym(peer, src.peer, &result.peer)) return false;
  result.args.reserve(terms.size());
  for (size_t j = 0; j < terms.size(); ++j) {
    const PlanTerm& pt = terms[j];
    if (pt.op == PlanTerm::Op::kConst) {
      result.args.push_back(src.args[j]);
      continue;
    }
    const Value* v = slots[pt.slot];
    result.args.push_back(v != nullptr ? Term::Constant(*v) : src.args[j]);
  }
  *out = std::move(result);
  return true;
}

std::string RulePlan::DebugString() const {
  std::string out = "plan for: " + rule.ToString() + "\n";
  if (adorned) {
    out += "adorned: mask=0x";
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llx",
                  static_cast<unsigned long long>(adornment));
    out += buf;
    if (has_demand_atom) out += " demand-atom";
    out += "\n";
  }
  out += "slots:";
  for (size_t s = 0; s < slot_vars.size(); ++s) {
    out += " " + std::to_string(s) + "=$" + slot_vars[s];
  }
  out += "\n";

  auto sym_str = [](const PlanSym& ps) {
    return ps.is_const ? ps.sym.str() : "s" + std::to_string(ps.slot);
  };
  auto ops_str = [](const std::vector<PlanTerm>& terms) {
    std::string s = "[";
    for (size_t j = 0; j < terms.size(); ++j) {
      if (j > 0) s += ", ";
      const PlanTerm& pt = terms[j];
      switch (pt.op) {
        case PlanTerm::Op::kConst:
          s += "const " + pt.value.ToString();
          break;
        case PlanTerm::Op::kCheck:
          s += "check s" + std::to_string(pt.slot);
          break;
        case PlanTerm::Op::kBind:
          s += "bind s" + std::to_string(pt.slot);
          break;
      }
    }
    return s + "]";
  };

  for (size_t i = 0; i < atoms.size(); ++i) {
    const PlanAtom& a = atoms[i];
    out += "atom " + std::to_string(i) + ": ";
    if (a.negated) out += "not ";
    out += sym_str(a.relation) + "@" + sym_str(a.peer);
    out += " ops=" + ops_str(a.terms);
    if (a.negated) {
      out += a.negated_unbound ? " probe=never-ground" : " probe=contains";
    } else if (a.index_column >= 0) {
      out += " access=index col " + std::to_string(a.index_column) +
             (a.index_key_is_const
                  ? " key=" + a.index_const.ToString()
                  : " key=s" + std::to_string(a.index_slot));
    } else {
      out += " access=scan";
    }
    out += "\n";
  }

  out += "head: " + sym_str(head.relation) + "@" + sym_str(head.peer) +
         " ops=" + ops_str(head.terms);
  if (head.dead) out += " (dead: unbound head variable)";
  out += "\n";
  return out;
}

}  // namespace wdl
