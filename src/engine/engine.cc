#include "engine/engine.h"

#include <algorithm>

#include "base/logging.h"
#include "base/string_util.h"

namespace wdl {

Engine::Engine(std::string self_peer, EngineOptions options)
    : self_peer_(std::move(self_peer)),
      options_(options),
      catalog_(self_peer_),
      evaluator_(&catalog_, self_peer_,
                 EvalOptions{options_.use_indexes,
                             options_.use_compiled_plans}) {}

Status Engine::LoadProgram(const Program& program) {
  WDL_RETURN_IF_ERROR(ValidateProgram(program, options_.dialect));
  for (const RelationDecl& d : program.declarations) {
    WDL_RETURN_IF_ERROR(DeclareRelation(d));
  }
  for (const Fact& f : program.facts) {
    WDL_RETURN_IF_ERROR(InsertFact(f).status());
  }
  for (const Rule& r : program.rules) {
    WDL_RETURN_IF_ERROR(AddRule(r).status());
  }
  return Status::OK();
}

Status Engine::DeclareRelation(const RelationDecl& decl) {
  return catalog_.Declare(decl);
}

Status Engine::ValidateNewRule(const Rule& rule) const {
  WDL_RETURN_IF_ERROR(CheckRuleSafety(rule));
  if (rule.head_deletes && rule.head.HasConcreteLocation() &&
      rule.head.peer.name() == self_peer_) {
    const Relation* rel = catalog_.Get(rule.head.relation.name());
    if (rel != nullptr && rel->kind() == RelationKind::kIntensional) {
      return Status::FailedPrecondition(
          "deletion rule targets intensional relation " +
          rule.head.PredicateId() + "; views cannot be deleted from");
    }
  }
  bool negated = false;
  for (const Atom& a : rule.body) negated |= a.negated;
  if (negated && options_.dialect == Dialect::kPaper2013) {
    return Status::Unimplemented(
        "negation is not implemented in the 2013 system (rule: " +
        rule.ToString() + ")");
  }
  if (negated) {
    // The new rule must stratify together with the existing program.
    std::vector<Rule> all;
    all.reserve(rules_.size() + 1);
    for (const InstalledRule& ir : rules_) all.push_back(ir.rule);
    all.push_back(rule);
    WDL_ASSIGN_OR_RETURN(Stratification s, Stratify(all));
    (void)s;
  }
  return Status::OK();
}

Result<uint64_t> Engine::AddRule(const Rule& rule) {
  WDL_RETURN_IF_ERROR(ValidateNewRule(rule));
  InstalledRule ir;
  ir.id = next_rule_id_++;
  ir.rule = rule;
  ir.origin_peer = self_peer_;
  rules_.push_back(std::move(ir));
  dirty_ = true;
  return rules_.back().id;
}

Status Engine::RemoveRule(uint64_t id) {
  for (auto it = rules_.begin(); it != rules_.end(); ++it) {
    if (it->id == id) {
      evaluator_.EvictPlan(it->rule);
      rules_.erase(it);
      dirty_ = true;
      return Status::OK();
    }
  }
  return Status::NotFound("no rule with id " + std::to_string(id));
}

Status Engine::InstallDelegatedRule(const Delegation& delegation) {
  if (delegation.target_peer != self_peer_) {
    return Status::InvalidArgument(StrFormat(
        "delegation targets peer '%s', not '%s'",
        delegation.target_peer.c_str(), self_peer_.c_str()));
  }
  WDL_RETURN_IF_ERROR(ValidateNewRule(delegation.rule));
  uint64_t key = delegation.Key();
  for (const InstalledRule& ir : rules_) {
    if (ir.delegation_key == key) return Status::OK();  // idempotent
  }
  InstalledRule ir;
  ir.id = next_rule_id_++;
  ir.rule = delegation.rule;
  ir.origin_peer = delegation.origin_peer;
  ir.delegation_key = key;
  rules_.push_back(std::move(ir));
  dirty_ = true;
  return Status::OK();
}

void Engine::RetractDelegatedRule(uint64_t delegation_key) {
  dirty_ = true;
  rules_.erase(std::remove_if(rules_.begin(), rules_.end(),
                              [&](const InstalledRule& ir) {
                                if (ir.delegation_key != delegation_key) {
                                  return false;
                                }
                                evaluator_.EvictPlan(ir.rule);
                                return true;
                              }),
               rules_.end());
}

Result<bool> Engine::InsertFact(const Fact& fact) {
  if (fact.peer != self_peer_) {
    return Status::InvalidArgument("InsertFact of remote fact " +
                                   fact.ToString() +
                                   "; route it through the runtime");
  }
  const Relation* rel = catalog_.Get(fact.relation);
  if (rel != nullptr && rel->kind() == RelationKind::kIntensional) {
    return Status::FailedPrecondition(
        "relation " + fact.PredicateId() +
        " is intensional (a view); base updates are not allowed");
  }
  dirty_ = true;
  return catalog_.InsertFact(fact);
}

Result<bool> Engine::RemoveFact(const Fact& fact) {
  if (fact.peer != self_peer_) {
    return Status::InvalidArgument("RemoveFact of remote fact " +
                                   fact.ToString());
  }
  const Relation* rel = catalog_.Get(fact.relation);
  if (rel != nullptr && rel->kind() == RelationKind::kIntensional) {
    return Status::FailedPrecondition(
        "relation " + fact.PredicateId() +
        " is intensional (a view); base updates are not allowed");
  }
  dirty_ = true;
  return catalog_.RemoveFact(fact);
}

void Engine::EnqueueFactInserts(std::vector<Fact> facts) {
  for (Fact& f : facts) inbound_inserts_.push_back(std::move(f));
}

void Engine::EnqueueFactDeletes(std::vector<Fact> facts) {
  for (Fact& f : facts) inbound_deletes_.push_back(std::move(f));
}

void Engine::EnqueueDerivedSet(const std::string& sender, DerivedSet set) {
  // Full-slice sets are version-less snapshots: both protocols flow
  // through one queue so application order matches arrival order.
  InboundDerived in;
  in.sender = sender;
  in.versioned = false;
  in.delta.target_peer = std::move(set.target_peer);
  in.delta.relation = std::move(set.relation);
  in.delta.snapshot = true;
  in.delta.inserts = std::move(set.tuples);
  inbound_derived_.push_back(std::move(in));
}

void Engine::EnqueueDerivedDelta(const std::string& sender,
                                 DerivedDelta delta) {
  InboundDerived in;
  in.sender = sender;
  in.versioned = true;
  in.delta = std::move(delta);
  inbound_derived_.push_back(std::move(in));
}

void Engine::EnqueueResyncRequest(const std::string& peer,
                                  const std::string& relation) {
  pending_resync_serves_.emplace(peer, relation);
  dirty_ = true;  // the snapshot must go out even with no local change
}

bool Engine::HasPendingWork() const {
  return dirty_ || !inbound_inserts_.empty() || !inbound_deletes_.empty() ||
         !inbound_derived_.empty() || !pending_resync_serves_.empty() ||
         !pending_self_updates_.empty() || !pending_self_deletes_.empty() ||
         !ran_any_stage_;
}

void Engine::ApplyInputs(StageStats* stats, bool* changed) {
  (void)stats;
  // Deferred self-updates from the previous stage land first.
  for (const Fact& f : pending_self_updates_) {
    Result<bool> r = catalog_.InsertFact(f);
    if (!r.ok()) {
      WDL_LOG(Error) << "self-update " << f.ToString()
                     << " failed: " << r.status();
    } else if (*r) {
      *changed = true;
    }
  }
  pending_self_updates_.clear();

  for (const Fact& f : pending_self_deletes_) {
    Result<bool> r = catalog_.RemoveFact(f);
    if (r.ok() && *r) *changed = true;
  }
  pending_self_deletes_.clear();

  for (const Fact& f : inbound_inserts_) {
    const Relation* rel = catalog_.Get(f.relation);
    if (rel != nullptr && rel->kind() == RelationKind::kIntensional) {
      WDL_LOG(Warning) << "dropping base insert into intensional relation "
                       << f.PredicateId();
      continue;
    }
    Result<bool> r = catalog_.InsertFact(f);
    if (!r.ok()) {
      WDL_LOG(Error) << "inbound insert " << f.ToString()
                     << " failed: " << r.status();
    } else if (*r) {
      *changed = true;
    }
  }
  inbound_inserts_.clear();

  for (const Fact& f : inbound_deletes_) {
    Result<bool> r = catalog_.RemoveFact(f);
    if (r.ok() && *r) *changed = true;
  }
  inbound_deletes_.clear();

  for (InboundDerived& in : inbound_derived_) {
    ApplyInboundDerived(in, changed);
  }
  inbound_derived_.clear();
}

void Engine::ApplyInboundDerived(InboundDerived& in, bool* changed) {
  DerivedDelta& d = in.delta;
  Relation* rel = catalog_.Get(d.relation);
  if (rel == nullptr) {
    // A peer is telling us about a relation we do not know yet: the
    // paper's "peers may discover new relations". Create it as
    // extensional with inferred arity. A tuple-less update to an
    // unknown relation has nothing to create or apply.
    if (d.inserts.empty()) return;
    RelationDecl decl;
    decl.relation = d.relation;
    decl.peer = self_peer_;
    decl.kind = RelationKind::kExtensional;
    decl.columns.resize(d.inserts[0].size());
    for (size_t i = 0; i < decl.columns.size(); ++i) {
      decl.columns[i].name = "c" + std::to_string(i);
    }
    Status st = catalog_.Declare(decl);
    if (!st.ok()) {
      WDL_LOG(Error) << "auto-declare failed: " << st;
      return;
    }
    rel = catalog_.Get(d.relation);
  }

  if (rel->kind() == RelationKind::kExtensional) {
    // Updates are persistent: union-insert, never delete. Inserts apply
    // regardless of stream position (monotone, so replays and gapped
    // deltas can only add facts the sender really derived); the version
    // gate below only decides bookkeeping and gap repair.
    for (Tuple& t : d.inserts) {
      Result<bool> r = rel->Insert(std::move(t));
      if (!r.ok()) {
        WDL_LOG(Error) << "inbound derived tuple rejected by "
                       << rel->decl().PredicateId() << ": " << r.status();
      } else if (*r) {
        *changed = true;
      }
    }
    if (in.versioned) {
      SliceStore::Gate gate =
          d.snapshot
              ? slice_store_.CheckSnapshot(d.relation, in.sender, d.version)
              : slice_store_.CheckDelta(d.relation, in.sender,
                                        d.base_version, d.version);
      if (gate == SliceStore::Gate::kApply) {
        slice_store_.CommitVersion(d.relation, in.sender, d.version);
      } else if (gate == SliceStore::Gate::kGap) {
        uint64_t& missing = resync_needed_[{in.sender, d.relation}];
        missing = std::max(missing, d.version);
      }
    }
    return;
  }

  // View semantics: the update targets this sender's slice. Only
  // schema-valid tuples enter the slice (invalid ones could never seed
  // the view anyway).
  auto filtered = [&](std::vector<Tuple>& tuples) {
    TupleSet set;
    set.reserve(tuples.size());
    for (Tuple& t : tuples) {
      if (rel->CheckTuple(t).ok()) set.insert(std::move(t));
    }
    return set;
  };

  if (!in.versioned) {
    // Full-slice protocol: replace wholesale. Change detection compares
    // the stored and arriving sets directly — a hash collision must
    // never suppress a real view change.
    *changed |=
        slice_store_.ReplaceSlice(d.relation, in.sender, filtered(d.inserts));
    return;
  }

  SliceStore::Gate gate =
      d.snapshot
          ? slice_store_.CheckSnapshot(d.relation, in.sender, d.version)
          : slice_store_.CheckDelta(d.relation, in.sender, d.base_version,
                                    d.version);
  switch (gate) {
    case SliceStore::Gate::kApply:
      if (d.snapshot) {
        *changed |= slice_store_.ApplySnapshot(d.relation, in.sender,
                                               filtered(d.inserts),
                                               d.version);
      } else {
        // Validate in place; ApplyDelta dedups per tuple itself.
        d.inserts.erase(
            std::remove_if(d.inserts.begin(), d.inserts.end(),
                           [&](const Tuple& t) {
                             return !rel->CheckTuple(t).ok();
                           }),
            d.inserts.end());
        *changed |= slice_store_.ApplyDelta(d.relation, in.sender,
                                            std::move(d.inserts),
                                            d.deletes, d.version);
      }
      break;
    case SliceStore::Gate::kStale:
      break;  // duplicate or reordered-old update: already reflected
    case SliceStore::Gate::kGap: {
      // A predecessor was lost; applying would corrupt the slice. Ask
      // the sender for a snapshot instead (step 3 ships the request).
      uint64_t& missing = resync_needed_[{in.sender, d.relation}];
      missing = std::max(missing, d.version);
      break;
    }
  }
}

void Engine::SeedIntensionalFromContributions() {
  slice_store_.ForEachContributedRelation([&](const std::string& name) {
    Relation* rel = catalog_.Get(name);
    if (rel == nullptr || rel->kind() != RelationKind::kIntensional) return;
    slice_store_.ForEachContribution(name, [&](const Tuple& t) {
      Result<bool> r = rel->Insert(t);
      if (!r.ok()) {
        WDL_LOG(Warning) << "contribution tuple rejected: " << r.status();
      }
    });
  });
}

void Engine::RunFixpoint(
    StageStats* stats, std::map<ContributionKey, TupleSet>* contributions,
    std::map<uint64_t, Delegation>* delegations,
    std::unordered_set<Fact, FactHasher>* self_updates,
    std::unordered_set<Fact, FactHasher>* self_deletes,
    std::unordered_set<Fact, FactHasher>* remote_deletes) {
  // Stratify the active rule set (single stratum when negation-free).
  std::vector<Rule> rule_bodies;
  rule_bodies.reserve(rules_.size());
  for (const InstalledRule& ir : rules_) rule_bodies.push_back(ir.rule);
  Stratification strat;
  Result<Stratification> strat_result = Stratify(rule_bodies);
  if (strat_result.ok()) {
    strat = std::move(strat_result).value();
  } else {
    // A delegated rule may have broken stratification after install
    // validation (dynamic arrivals); fall back to one stratum and log.
    WDL_LOG(Error) << "stratification failed; evaluating in one stratum: "
                   << strat_result.status();
    strat.rule_stratum.assign(rules_.size(), 0);
    strat.num_strata = 1;
  }
  stats->strata = strat.num_strata;

  // The evaluator (and its plan cache) lives across stages; stage stats
  // report the delta of its cumulative counters.
  uint64_t tuples_before = evaluator_.counters().tuples_examined;

  for (int stratum = 0; stratum < strat.num_strata; ++stratum) {
    // Resolve each active rule's compiled plan once per stage; the
    // iteration loops below re-drive the plan directly instead of
    // re-hashing the rule through the cache every call. `plan` stays
    // null on the interpreter path.
    struct ActiveRule {
      const Rule* rule;
      const RulePlan* plan;
    };
    std::vector<ActiveRule> active;
    for (size_t i = 0; i < rules_.size(); ++i) {
      if (strat.rule_stratum[i] != stratum) continue;
      const Rule& rule = rules_[i].rule;
      active.push_back(ActiveRule{
          &rule, options_.use_compiled_plans ? &evaluator_.PlanFor(rule)
                                             : nullptr});
    }
    if (active.empty()) continue;

    DeltaMap delta;      // tuples new in the previous iteration
    DeltaMap next_delta; // tuples new in this iteration

    // Set per evaluation: whether the rule being evaluated is a
    // deletion rule (its head derivations remove instead of insert).
    bool current_rule_deletes = false;

    RuleEvaluator::Sinks sinks;
    sinks.on_local_fact = [&](const Fact& f) {
      Relation* rel = catalog_.Get(f.relation);
      bool intensional =
          rel != nullptr && rel->kind() == RelationKind::kIntensional;
      if (current_rule_deletes) {
        if (intensional) {
          WDL_LOG(Warning) << "deletion rule derived into view "
                           << f.PredicateId() << "; dropped";
        } else if (rel != nullptr && rel->Contains(f.args)) {
          self_deletes->insert(f);  // deferred, Bud's <-
        }
        return;
      }
      if (intensional) {
        Result<bool> r = rel->Insert(f.args);
        if (r.ok() && *r) {
          next_delta[rel->symbol()].Insert(f.args);
          ++stats->local_derivations;
        }
      } else {
        // Local update rule: deferred to the next stage (Bud's <+).
        if (rel == nullptr || !rel->Contains(f.args)) {
          self_updates->insert(f);
        }
      }
    };
    sinks.on_remote_fact = [&](const Fact& f) {
      if (current_rule_deletes) {
        remote_deletes->insert(f);
      } else {
        (*contributions)[ContributionKey{f.peer, f.relation}].insert(
            f.args);
      }
    };
    sinks.on_delegation = [&](const Delegation& d) {
      delegations->emplace(d.Key(), d);
    };

    auto evaluate = [&](const ActiveRule& ar, const DeltaMap* d, int pos) {
      current_rule_deletes = ar.rule->head_deletes;
      if (ar.plan != nullptr) {
        evaluator_.EvaluatePlan(*ar.plan, d, pos, sinks);
      } else {
        evaluator_.Evaluate(*ar.rule, d, pos, sinks);
      }
    };

    // Iteration 1: full evaluation.
    int iterations = 1;
    for (const ActiveRule& ar : active) evaluate(ar, nullptr, -1);

    if (options_.mode == EvalMode::kNaive) {
      // Naive: re-run everything until no new local facts appear.
      while (!next_delta.empty() &&
             iterations < options_.max_fixpoint_iterations) {
        next_delta.clear();
        ++iterations;
        for (const ActiveRule& ar : active) evaluate(ar, nullptr, -1);
      }
    } else {
      // Semi-naive: only join against the Δ of the previous iteration.
      while (!next_delta.empty() &&
             iterations < options_.max_fixpoint_iterations) {
        delta = std::move(next_delta);
        next_delta = DeltaMap();
        ++iterations;
        for (const ActiveRule& ar : active) {
          for (size_t pos = 0; pos < ar.rule->body.size(); ++pos) {
            if (ar.rule->body[pos].negated) continue;
            evaluate(ar, &delta, static_cast<int>(pos));
          }
        }
      }
    }
    if (iterations >= options_.max_fixpoint_iterations) {
      WDL_LOG(Error) << "fixpoint iteration limit reached at peer "
                     << self_peer_;
    }
    stats->iterations += iterations;
  }
  stats->tuples_examined =
      evaluator_.counters().tuples_examined - tuples_before;
}

namespace {
std::vector<Tuple> SortedVector(
    const std::unordered_set<Tuple, TupleHasher>& set) {
  std::vector<Tuple> out(set.begin(), set.end());
  std::sort(out.begin(), out.end());  // deterministic wire
  return out;
}
}  // namespace

/// Contribution sets ship only when they changed — decided by direct
/// set comparison against what was last sent (hash-collision-proof).
/// Under full-slice the whole contribution is re-sent; under the
/// differential protocol only the inserts/deletes against the last-sent
/// state go out, with stream versions so the receiver can order them.
/// An emptied contribution ships once (as an empty set, or as a delta
/// deleting the remainder) so the receiver clears its slice.
void Engine::EmitContributions(
    std::map<ContributionKey, TupleSet>* contributions,
    StageResult* result) {
  const bool differential = options_.use_differential_propagation;

  // Vanished contributions first: keys we shipped before that this
  // stage derived nothing for.
  for (auto& [key, sent] : sent_contributions_) {
    if (contributions->count(key) || sent.tuples.empty()) continue;
    if (differential) {
      DerivedDelta dd;
      dd.target_peer = key.target_peer;
      dd.relation = key.relation;
      dd.base_version = sent.version;
      dd.version = sent.version + 1;
      dd.deletes = SortedVector(sent.tuples);
      result->stats.derived_tuples_out += dd.deletes.size();
      prop_counters_.delta_deletes_shipped += dd.deletes.size();
      ++prop_counters_.deltas_shipped;
      result->outbound[key.target_peer].derived_deltas.push_back(
          std::move(dd));
    } else {
      DerivedSet empty_set;
      empty_set.target_peer = key.target_peer;
      empty_set.relation = key.relation;
      ++prop_counters_.full_sets_shipped;
      result->outbound[key.target_peer].derived_sets.push_back(
          std::move(empty_set));
    }
    sent.tuples.clear();
    ++sent.version;
  }

  // Changed contributions.
  for (auto& [key, set] : *contributions) {
    SentContribution& sent = sent_contributions_[key];
    if (sent.tuples == set) continue;  // unchanged, stay silent
    if (differential) {
      DerivedDelta dd;
      dd.target_peer = key.target_peer;
      dd.relation = key.relation;
      dd.base_version = sent.version;
      dd.version = sent.version + 1;
      for (const Tuple& t : set) {
        if (!sent.tuples.count(t)) dd.inserts.push_back(t);
      }
      for (const Tuple& t : sent.tuples) {
        if (!set.count(t)) dd.deletes.push_back(t);
      }
      std::sort(dd.inserts.begin(), dd.inserts.end());
      std::sort(dd.deletes.begin(), dd.deletes.end());
      result->stats.derived_tuples_out +=
          dd.inserts.size() + dd.deletes.size();
      prop_counters_.delta_inserts_shipped += dd.inserts.size();
      prop_counters_.delta_deletes_shipped += dd.deletes.size();
      ++prop_counters_.deltas_shipped;
      result->outbound[key.target_peer].derived_deltas.push_back(
          std::move(dd));
    } else {
      DerivedSet ds;
      ds.target_peer = key.target_peer;
      ds.relation = key.relation;
      ds.tuples = SortedVector(set);
      result->stats.derived_tuples_out += ds.tuples.size();
      prop_counters_.full_tuples_shipped += ds.tuples.size();
      ++prop_counters_.full_sets_shipped;
      result->outbound[key.target_peer].derived_sets.push_back(
          std::move(ds));
    }
    sent.tuples = std::move(set);
    ++sent.version;
  }

  // Serve resync requests: a full snapshot of the current contribution
  // at its current version (possibly just updated above — if a regular
  // delta for the same key also shipped this stage, the snapshot
  // subsumes it at the receiver).
  for (const auto& [peer, relation] : pending_resync_serves_) {
    ContributionKey key{peer, relation};
    DerivedDelta dd;
    dd.snapshot = true;
    dd.target_peer = peer;
    dd.relation = relation;
    auto it = sent_contributions_.find(key);
    if (it != sent_contributions_.end()) {
      dd.version = it->second.version;
      dd.inserts = SortedVector(it->second.tuples);
    }
    result->stats.derived_tuples_out += dd.inserts.size();
    ++prop_counters_.snapshots_shipped;
    result->outbound[peer].derived_deltas.push_back(std::move(dd));
  }
  pending_resync_serves_.clear();

  // And raise our own: gaps detected while applying inbound deltas —
  // unless a later message of the same batch (duplicate, reordered
  // original, snapshot) already advanced the stream past the missing
  // update, in which case the gap healed itself.
  for (const auto& [key, missing_version] : resync_needed_) {
    const auto& [sender, relation] = key;
    if (slice_store_.StreamVersion(relation, sender) >= missing_version) {
      continue;
    }
    result->outbound[sender].resync_requests.push_back(relation);
    ++prop_counters_.resyncs_requested;
  }
  resync_needed_.clear();
}

uint64_t Engine::IntensionalContentHash() const {
  uint64_t h = 0;
  TupleHasher hasher;
  for (const std::string& name : catalog_.RelationNames()) {
    const Relation* rel = catalog_.Get(name);
    if (rel->kind() != RelationKind::kIntensional) continue;
    uint64_t rel_hash = HashString(name);
    rel->ForEach([&](const Tuple& t) { rel_hash ^= hasher(t) | 1; });
    h = HashCombine(h, rel_hash);
  }
  return h;
}

StageResult Engine::RunStage() {
  StageResult result;
  result.stats.active_rules = rules_.size();
  ran_any_stage_ = true;
  dirty_ = false;

  // Step 1: load inputs received since the previous stage.
  bool changed_local = false;
  ApplyInputs(&result.stats, &changed_local);

  // Step 2: local fixpoint. Intensional relations are views: reset, then
  // re-seed with remote contributions, then derive.
  catalog_.ClearIntensional();
  SeedIntensionalFromContributions();

  std::map<ContributionKey, TupleSet> contributions;
  std::map<uint64_t, Delegation> delegations;
  std::unordered_set<Fact, FactHasher> self_updates;
  std::unordered_set<Fact, FactHasher> self_deletes;
  std::unordered_set<Fact, FactHasher> remote_deletes;
  RunFixpoint(&result.stats, &contributions, &delegations, &self_updates,
              &self_deletes, &remote_deletes);

  pending_self_updates_ = std::move(self_updates);
  pending_self_deletes_ = std::move(self_deletes);

  // Remote deletions ship once per unique fact (idempotent at the
  // receiver; re-sending is pure waste).
  for (const Fact& f : remote_deletes) {
    if (sent_remote_deletes_.insert(f).second) {
      result.outbound[f.peer].fact_deletes.push_back(f);
    }
  }

  // Step 3: emit facts (updates) and rules (delegations) to other peers.
  EmitContributions(&contributions, &result);

  // Delegation diff: install the new, retract the vanished.
  for (const auto& [key, d] : delegations) {
    if (!sent_delegations_.count(key)) {
      result.outbound[d.target_peer].delegation_installs.push_back(d);
    }
  }
  for (const auto& [key, d] : sent_delegations_) {
    if (!delegations.count(key)) {
      result.outbound[d.target_peer].delegation_retracts.push_back(key);
    }
  }
  sent_delegations_ = std::move(delegations);
  result.stats.delegations_active = sent_delegations_.size();

  // Drop empty outbound buckets.
  for (auto it = result.outbound.begin(); it != result.outbound.end();) {
    if (it->second.empty()) {
      it = result.outbound.erase(it);
    } else {
      result.stats.messages_out += it->second.MessageCount();
      ++it;
    }
  }

  uint64_t intensional_hash = IntensionalContentHash();
  bool views_changed = intensional_hash != prev_intensional_hash_;
  prev_intensional_hash_ = intensional_hash;

  result.changed = changed_local || views_changed ||
                   !result.outbound.empty() ||
                   !pending_self_updates_.empty() ||
                   !pending_self_deletes_.empty();
  return result;
}

Status Engine::DropScratchRelation(const std::string& relation) {
  for (const InstalledRule& ir : rules_) {
    auto mentions = [&](const Atom& a) {
      return !a.relation.is_variable() && a.relation.name() == relation;
    };
    bool referenced = mentions(ir.rule.head);
    for (const Atom& a : ir.rule.body) referenced |= mentions(a);
    if (referenced) {
      return Status::FailedPrecondition(
          "relation " + relation + " is still referenced by rule " +
          ir.rule.ToString());
    }
  }
  slice_store_.DropRelation(relation);
  if (!catalog_.Undeclare(relation)) {
    return Status::NotFound("relation " + relation + " is not declared");
  }
  return Status::OK();
}

std::string Engine::DumpAsProgramText() const {
  Program program;
  for (const std::string& name : catalog_.RelationNames()) {
    const Relation* rel = catalog_.Get(name);
    if (StartsWith(name, "__query_")) continue;  // ad-hoc query scratch
    program.declarations.push_back(rel->decl());
    if (rel->kind() == RelationKind::kExtensional) {
      for (Tuple& t : rel->SortedTuples()) {
        program.facts.emplace_back(name, self_peer_, std::move(t));
      }
    }
  }
  for (const InstalledRule& ir : rules_) {
    if (ir.delegation_key == 0) program.rules.push_back(ir.rule);
  }
  return program.ToString();
}

std::vector<const InstalledRule*> Engine::rules() const {
  std::vector<const InstalledRule*> out;
  out.reserve(rules_.size());
  for (const InstalledRule& ir : rules_) out.push_back(&ir);
  return out;
}

std::string Engine::ProgramListing() const {
  std::string out = "program of peer " + self_peer_ + ":\n";
  for (const InstalledRule& ir : rules_) {
    out += "  [" + std::to_string(ir.id) + "] ";
    out += ir.rule.ToString();
    if (ir.delegation_key != 0) {
      out += "   (delegated by " + ir.origin_peer + ")";
    }
    out += "\n";
  }
  if (rules_.empty()) out += "  (no rules)\n";
  return out;
}

}  // namespace wdl
