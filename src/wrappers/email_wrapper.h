#ifndef WDL_WRAPPERS_EMAIL_WRAPPER_H_
#define WDL_WRAPPERS_EMAIL_WRAPPER_H_

#include <string>
#include <unordered_set>

#include "runtime/peer.h"
#include "runtime/wrapper.h"
#include "storage/tuple.h"
#include "wrappers/email_service.h"

namespace wdl {

/// Email wrapper: watches the extensional relation `email@<peer>` and
/// turns every new tuple into an actual delivery through EmailService.
///
/// This implements the Wepic transfer path where an attendee's
/// `communicate` preference is "email": the rule
///   $protocol@$attendee($attendee, $name, $id, $owner) :- ...
/// materializes facts in email@<attendee>, and this wrapper drains them
/// to the attendee's inbox. Tuples are delivered exactly once (the
/// relation keeps them; the wrapper remembers what it already sent).
class EmailWrapper : public Wrapper {
 public:
  EmailWrapper(std::string peer_name, EmailService* service,
               std::string address);

  const std::string& peer_name() const override { return peer_name_; }
  Status Setup(Peer* peer) override;
  Status Sync(Peer* peer) override;

  uint64_t emails_sent() const { return emails_sent_; }

 private:
  std::string peer_name_;
  EmailService* service_;
  std::string address_;
  std::unordered_set<Tuple, TupleHasher> delivered_;
  uint64_t emails_sent_ = 0;
};

}  // namespace wdl

#endif  // WDL_WRAPPERS_EMAIL_WRAPPER_H_
